package kdtune

import (
	"bytes"
	"kdtune/internal/bvh"
	"math"
	"testing"
)

// TestFacadeEndToEnd drives the whole public surface: scene, build, query,
// render, tune.
func TestFacadeEndToEnd(t *testing.T) {
	sc, err := SceneByName("WoodDoll")
	if err != nil {
		t.Fatal(err)
	}
	if len(SceneNames()) != 6 {
		t.Fatal("expected six scenes")
	}

	cfg := BaseConfig(AlgoLazy)
	cfg.Workers = 4
	tree := Build(sc.Triangles(0), cfg)
	if tree.Stats().NumTris != sc.NumTriangles() {
		t.Fatal("tree lost triangles")
	}

	ray := NewRay(sc.View.Eye, sc.View.LookAt.Sub(sc.View.Eye))
	if _, ok := IntersectClosest(tree, ray); !ok {
		t.Fatal("camera axis ray missed the scene")
	}

	im, stats := Render(tree, sc.View, sc.Lights, RenderOptions{Width: 32, Height: 24})
	if im.W != 32 || stats.PrimaryRays != 32*24 {
		t.Fatal("render wrong size")
	}
}

func TestFacadeTunerWorkflow(t *testing.T) {
	tuner := NewTuner(TunerOptions{Seed: 9})
	n := 0
	if err := tuner.RegisterNamedParameter("N", &n, 1, 32, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120 && !tuner.Converged(); i++ {
		tuner.Start()
		d := float64(n - 12)
		tuner.StopWithCost(10 + d*d)
	}
	best, _, ok := tuner.Best()
	if !ok || math.Abs(float64(best[0]-12)) > 4 {
		t.Fatalf("facade tuner found %v, want near 12", best)
	}
}

func TestFacadeCustomScene(t *testing.T) {
	tris := []Triangle{
		Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0)),
		Tri(V(2, 0, 0), V(3, 0, 0), V(2, 1, 0)),
	}
	sc := NewStaticScene("custom", tris, View{
		Eye: V(0.3, 0.3, -2), LookAt: V(0.3, 0.3, 0), Up: V(0, 1, 0), FOV: 40,
	}, []Vec3{V(0, 5, -3)})

	res := RunExperiment(RunConfig{
		Scene: sc, Algorithm: AlgoNodeLevel, Search: SearchFixed,
		Width: 16, Height: 12, MaxIterations: 3,
	})
	if len(res.Frames) != 3 {
		t.Fatalf("experiment recorded %d frames", len(res.Frames))
	}
}

func TestFacadeAlgorithmsComplete(t *testing.T) {
	if len(Algorithms) != 4 {
		t.Fatal("expected 4 algorithms")
	}
	want := []Algorithm{AlgoNodeLevel, AlgoNested, AlgoInPlace, AlgoLazy}
	for i, a := range want {
		if Algorithms[i] != a {
			t.Fatalf("algorithm order changed at %d", i)
		}
	}
}

func TestFacadeSerializeRoundTrip(t *testing.T) {
	tris := []Triangle{
		Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0)),
		Tri(V(2, 0, 0), V(3, 0, 0), V(2, 1, 0)),
	}
	tree := Build(tris, BaseConfig(AlgoSortOnce))
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ray := NewRay(V(0.2, 0.2, -1), V(0, 0, 1))
	h1, ok1 := IntersectClosest(tree, ray)
	h2, ok2 := IntersectClosest(back, ray)
	if ok1 != ok2 || h1.T != h2.T {
		t.Fatal("round-tripped tree answers differently")
	}
}

func TestFacadeQueries(t *testing.T) {
	tris := []Triangle{
		Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0)),
		Tri(V(5, 0, 0), V(6, 0, 0), V(5, 1, 0)),
	}
	tree := Build(tris, BaseConfig(AlgoMedian))
	got := RangeQuery(tree, AABB{Min: V(-1, -1, -1), Max: V(2, 2, 2)})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("RangeQuery = %v", got)
	}
	tri, dist, ok := NearestNeighbor(tree, V(5.2, 0.2, 3))
	if !ok || tri != 1 || dist > 3.01 {
		t.Fatalf("NearestNeighbor = %d %v %v", tri, dist, ok)
	}
}

// TestDifferentialKDTreeVsBVH cross-validates every kD-tree builder against
// the independent BVH implementation on a real scene — the test that
// originally caught two traversal boundary bugs (hits exactly on split
// planes, rays lying in split planes).
func TestDifferentialKDTreeVsBVH(t *testing.T) {
	sc, err := SceneByName("WoodDoll")
	if err != nil {
		t.Fatal(err)
	}
	tris := sc.Triangles(0)
	bv := bvh.Build(tris, bvh.Config{Workers: 2})
	for _, algo := range []Algorithm{AlgoNodeLevel, AlgoNested, AlgoInPlace, AlgoLazy, AlgoSortOnce, AlgoMedian} {
		cfg := BaseConfig(algo)
		cfg.Workers = 2
		cfg.R = 128
		kd := Build(tris, cfg)
		for i := 0; i < 4000; i++ {
			h := uint64(i)
			h = h*0x9E3779B97F4A7C15 + 1
			f := func() float64 { h ^= h >> 29; h *= 0xBF58476D1CE4E5B9; return float64(h%2000)/1000 - 1 }
			// Include axis-aligned directions: the historic failure mode.
			var r Ray
			switch i % 4 {
			case 0:
				r = NewRay(V(-4, 1.0+f(), f()), V(1, 0, 0))
			case 1:
				r = NewRay(V(f(), 4, f()), V(0, -1, 0))
			default:
				r = NewRay(V(-4, 1+f(), f()), V(1, f()*0.4, f()*0.4))
			}
			hk, okK := kd.Intersect(r, 1e-9, math.Inf(1))
			hb, okB := bv.Intersect(r, 1e-9, math.Inf(1))
			if okK != okB || (okK && math.Abs(hk.T-hb.T) > 1e-9*(1+hk.T)) {
				t.Fatalf("%v: ray %d: kd %v/%v, bvh %v/%v", algo, i, hk.T, okK, hb.T, okB)
			}
		}
	}
}
