// Command kdrender renders one frame of an evaluation scene to a PPM image,
// useful for eyeballing the procedural stand-in scenes and for quick timing
// of a single configuration.
//
//	kdrender -scene Sibenik -algo lazy -o sibenik.ppm
//	kdrender -scene Toasters -frame 120 -ci 40 -cb 5 -s 4 -width 640
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kdtune/internal/kdtree"
	"kdtune/internal/render"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

func algoByName(name string) (kdtree.Algorithm, error) {
	for _, a := range kdtree.Algorithms {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q (have node-level, nested, in-place, lazy)", name)
}

func main() {
	var (
		sceneName = flag.String("scene", "Sibenik", "scene name (see kdbench)")
		objPath   = flag.String("obj", "", "render a Wavefront OBJ file instead of a named scene")
		algoName  = flag.String("algo", "in-place", "builder: node-level|nested|in-place|lazy")
		frame     = flag.Int("frame", 0, "animation frame index")
		width     = flag.Int("width", 480, "image width (height = 3/4 width)")
		out       = flag.String("o", "", "output PPM path (default <scene>.ppm)")
		workers   = flag.Int("workers", 0, "parallelism budget; 0 = all cores")
		ci        = flag.Int("ci", 17, "SAH triangle intersection cost CI")
		cb        = flag.Int("cb", 10, "SAH duplication cost CB")
		s         = flag.Int("s", 3, "max subtrees per thread S")
		r         = flag.Int("r", 4096, "lazy minimal node resolution R")
	)
	flag.Parse()

	var sc *scene.Scene
	var err error
	if *objPath != "" {
		sc, err = sceneFromOBJ(*objPath)
	} else {
		sc, err = scene.ByName(*sceneName)
	}
	if err != nil {
		fail(err)
	}
	algo, err := algoByName(*algoName)
	if err != nil {
		fail(err)
	}

	cfg := kdtree.Config{
		Algorithm: algo,
		CI:        float64(*ci), CB: float64(*cb), S: *s, R: *r,
		Workers: *workers,
	}
	tris := sc.Triangles(*frame)

	t0 := time.Now()
	tree, err := kdtree.NewBuilder().BuildGuarded(tris, cfg, kdtree.Guard{})
	if err != nil {
		fail(err)
	}
	build := time.Since(t0)

	t0 = time.Now()
	im, stats := render.Render(tree, sc.View, sc.Lights, render.Options{
		Width: *width, Height: *width * 3 / 4, Workers: *workers,
	})
	rt := time.Since(t0)

	path := *out
	if path == "" {
		path = *sceneName + ".ppm"
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := im.WritePPM(f); err != nil {
		fail(err)
	}

	st := tree.Stats()
	fmt.Printf("%s frame %d, %s: build %v, render %v (%d rays, %d hits)\n",
		sc, *frame, algo, build.Round(time.Millisecond), rt.Round(time.Millisecond),
		stats.PrimaryRays+stats.ShadowRays, stats.Hits)
	fmt.Printf("tree: %s\n", st)
	fmt.Printf("image written to %s\n", path)
}

// sceneFromOBJ loads a triangle soup and frames it with an automatic
// camera: eye on the bounds diagonal, looking at the centre.
func sceneFromOBJ(path string) (*scene.Scene, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tris, err := scene.ReadOBJ(f)
	if err != nil {
		return nil, err
	}
	b := vecmath.EmptyAABB()
	for _, tr := range tris {
		b = b.Union(tr.Bounds())
	}
	center := b.Center()
	// Offset along a fixed oblique direction scaled by the scene size, so
	// flat scenes (zero extent on some axis) still get a working viewpoint.
	eye := center.Add(vecmath.V(1, 0.6, 1).Normalize().Scale(b.Diagonal().Len() * 1.2))
	return scene.NewStatic(path, tris, scene.View{
		Eye: eye, LookAt: center, Up: vecmath.V(0, 1, 0), FOV: 45,
	}, []vecmath.Vec3{b.Max.Add(b.Diagonal())}), nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "kdrender: %v\n", err)
	os.Exit(1)
}
