// Command kdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	kdbench -experiment fig6                  # speedup matrix, all scenes
//	kdbench -experiment fig5 -iters 150       # paper-scale budgets
//	kdbench -experiment all -repeats 5        # everything, reduced repeats
//
// Experiments: tableI, tableII, fig5, fig6, fig7, fig7c, fig8, fig9, all.
// The defaults are scaled down from the paper's protocol so a full run
// completes in minutes; raise -repeats/-iters/-width for paper fidelity
// (see EXPERIMENTS.md for the settings used there).
//
// Benchmark records (DESIGN.md §8):
//
//	kdbench -bench-json BENCH_x.json -bench-tag x   # machine-readable report
//	kdbench -compare old.json new.json              # regression gate
//
// -compare exits non-zero when any scene x algorithm cell's tuned frame
// time regressed by more than -threshold percent, or when a cell present in
// the old report is missing from the new one.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"kdtune/internal/harness"
	"kdtune/internal/kdtree"
	"kdtune/internal/scene"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "tableI|tableII|fig5|fig6|fig7|fig7c|fig8|fig9|all")
		repeats    = flag.Int("repeats", 5, "tuning repetitions per configuration (paper: 15)")
		iters      = flag.Int("iters", 80, "max tuning iterations per run (paper: until convergence, ~150)")
		width      = flag.Int("width", 160, "render width in pixels (height = 3/4 width)")
		workers    = flag.Int("workers", 0, "parallelism budget; 0 = all cores")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		measure    = flag.String("measure-file", "", "CSV of scene,algo,ci,cb,s,r rows for -experiment measure")
		csvDir     = flag.String("csv", "", "also write results as CSV files into this directory")

		benchJSON   = flag.String("bench-json", "", "write a machine-readable benchmark report to this path and exit")
		benchTag    = flag.String("bench-tag", "", "free-form label stored in the -bench-json report")
		benchScenes = flag.String("bench-scenes", "", "comma-separated scene names for -bench-json (default: all)")
		benchFrames = flag.Int("bench-frames", 9, "measured frames per cell for -bench-json (after warmup)")
		benchDF     = flag.Int("deadline-factor", 0, "build watchdog multiple for -bench-json: abort builds slower than this many times the incumbent frame (0 = default 10)")
		compare     = flag.Bool("compare", false, "compare two bench reports: kdbench -compare old.json new.json")
		threshold   = flag.Float64("threshold", 10, "regression threshold in percent for -compare")
	)
	flag.Parse()

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "kdbench: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			fmt.Fprintf(os.Stderr, "kdbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		err := runBenchJSON(benchConfig{
			path: *benchJSON, tag: *benchTag, sceneList: *benchScenes,
			frames: *benchFrames, iters: *iters, width: *width,
			workers: *workers, seed: *seed, deadlineFactor: *benchDF,
			progress: progress,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kdbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	opts := harness.Opts{
		Workers: *workers, Width: *width,
		Repeats: *repeats, MaxIterations: *iters,
		Seed: *seed, Progress: progress,
	}

	writeCSV := func(name string, write func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(*csvDir + "/" + name + ".csv")
		if err != nil {
			return err
		}
		defer f.Close()
		return write(f)
	}

	run := func(name string) error {
		switch name {
		case "tableI":
			harness.PrintTableI(os.Stdout)
		case "tableII":
			harness.PrintTableII(os.Stdout)
		case "fig5":
			cells, err := harness.SpeedupExperiment(
				[]string{"Sibenik", "Sponza", "FairyForest"}, kdtree.Algorithms, opts)
			if err != nil {
				return err
			}
			harness.PrintFigure5(os.Stdout, cells)
			if err := writeCSV("fig5", func(w io.Writer) error { return harness.WriteSpeedupCSV(w, cells) }); err != nil {
				return err
			}
		case "fig6":
			cells, err := harness.SpeedupExperiment(
				[]string{"Bunny", "FairyForest", "Sibenik", "Sponza", "Toasters", "WoodDoll"},
				kdtree.Algorithms, opts)
			if err != nil {
				return err
			}
			harness.PrintFigure6(os.Stdout, cells)
			if err := writeCSV("fig6", func(w io.Writer) error { return harness.WriteSpeedupCSV(w, cells) }); err != nil {
				return err
			}
		case "fig7":
			static, err := harness.TunedDistribution([]string{"Sponza", "Sibenik"}, kdtree.AlgoInPlace, opts)
			if err != nil {
				return err
			}
			harness.PrintFigure7(os.Stdout, "Figure 7a: tuned configurations, in-place algorithm, static scenes", static)
			dynamic, err := harness.TunedDistribution([]string{"Toasters", "WoodDoll"}, kdtree.AlgoInPlace, opts)
			if err != nil {
				return err
			}
			harness.PrintFigure7(os.Stdout, "Figure 7b: tuned configurations, in-place algorithm, dynamic scenes", dynamic)
			if err := writeCSV("fig7", func(w io.Writer) error {
				return harness.WriteDistributionCSV(w, append(append([]harness.ParamDistribution{}, static...), dynamic...))
			}); err != nil {
				return err
			}
		case "fig7c":
			dists, err := harness.TunedDistributionPlatforms("Sibenik", kdtree.AlgoInPlace, opts)
			if err != nil {
				return err
			}
			harness.PrintFigure7(os.Stdout, "Figure 7c: tuned configurations, Sibenik, four platforms (simulated by thread budget)", dists)
			if err := writeCSV("fig7c", func(w io.Writer) error { return harness.WriteDistributionCSV(w, dists) }); err != nil {
				return err
			}
		case "fig8":
			for _, sc := range []string{"Sponza", "WoodDoll"} {
				pts, err := harness.ConvergenceTrace(sc, kdtree.AlgoInPlace, opts)
				if err != nil {
					return err
				}
				harness.PrintFigure8(os.Stdout, sc, pts)
				if err := writeCSV("fig8_"+sc, func(w io.Writer) error { return harness.WriteConvergenceCSV(w, pts) }); err != nil {
					return err
				}
			}
		case "fig9":
			// Strided grid: 9 CI x 7 CB x 4 S (x 5 R for lazy) points; the
			// stride per parameter is documented in DESIGN.md §4.
			strides := []int{12, 10, 2, 2}
			cmps, err := harness.CompareSearches("Sibenik", kdtree.Algorithms, strides, opts)
			if err != nil {
				return err
			}
			harness.PrintFigure9(os.Stdout, "Sibenik", cmps)
		case "measure":
			// Re-measure explicit configurations under the fixed protocol
			// (each CSV row: scene,algo,ci,cb,s,r). Useful for verifying
			// previously tuned configurations without re-running the search.
			cells, err := measureFile(*measure, opts)
			if err != nil {
				return err
			}
			harness.PrintFigure5(os.Stdout, cells)
			harness.PrintFigure6(os.Stdout, cells)
		case "select":
			// Beyond the paper: tune every algorithm and pick the winner
			// (the conclusion's proposed handling of the nominal algorithm
			// parameter).
			for _, scName := range []string{"Sibenik", "FairyForest"} {
				sc, err := scene.ByName(scName)
				if err != nil {
					return err
				}
				sel := harness.SelectAlgorithm(sc, opts)
				harness.PrintSelection(os.Stdout, sel)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"tableI", "tableII", "fig5", "fig6", "fig7", "fig7c", "fig8", "fig9"}
	}
	for _, n := range names {
		fmt.Println(strings.Repeat("=", 72))
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "kdbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// benchConfig carries the -bench-json settings into runBenchJSON.
type benchConfig struct {
	path, tag, sceneList string
	frames, iters, width int
	workers              int
	deadlineFactor       int
	seed                 int64
	progress             io.Writer
}

// runBenchJSON produces a machine-readable benchmark report (DESIGN.md §8).
func runBenchJSON(bc benchConfig) error {
	var scenes []*scene.Scene
	if bc.sceneList != "" {
		for _, name := range strings.Split(bc.sceneList, ",") {
			sc, err := scene.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			scenes = append(scenes, sc)
		}
	}
	rep := harness.RunBench(harness.BenchOptions{
		Scenes: scenes,
		Tag:    bc.tag,
		Settings: harness.BenchSettings{
			Width: bc.width, Workers: bc.workers,
			MaxIterations: bc.iters, MeasureFrames: bc.frames, Seed: bc.seed,
			DeadlineFactor: bc.deadlineFactor,
		},
		Progress: bc.progress,
	})
	if err := harness.WriteBenchReportFile(bc.path, rep); err != nil {
		return err
	}
	if bc.progress != nil {
		fmt.Fprintf(bc.progress, "wrote %d results to %s\n", len(rep.Results), bc.path)
	}
	return nil
}

// runCompare diffs two bench reports and returns an error (non-zero exit)
// on regressions or missing cells.
func runCompare(oldPath, newPath string, thresholdPct float64) error {
	oldRep, err := harness.ReadBenchReportFile(oldPath)
	if err != nil {
		return err
	}
	newRep, err := harness.ReadBenchReportFile(newPath)
	if err != nil {
		return err
	}
	res := harness.CompareBenchReports(oldRep, newRep, thresholdPct)
	res.Format(os.Stdout)
	if !res.OK() {
		return fmt.Errorf("%d regressions, %d missing cells", len(res.Regressions), len(res.Missing))
	}
	return nil
}

// measureFile measures base vs explicit configurations listed in a CSV
// (scene,algo,ci,cb,s,r per row) and returns cells for the Figure 5/6
// printers.
func measureFile(path string, opts harness.Opts) ([]harness.SpeedupCell, error) {
	if path == "" {
		return nil, fmt.Errorf("-experiment measure needs -measure-file")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	frames := opts.BaseFrames
	if frames <= 0 {
		frames = 9
	}
	var cells []harness.SpeedupCell
	for ri, row := range rows {
		if len(row) != 6 {
			return nil, fmt.Errorf("row %d: want scene,algo,ci,cb,s,r", ri+1)
		}
		sc, err := scene.ByName(strings.TrimSpace(row[0]))
		if err != nil {
			return nil, err
		}
		var algo kdtree.Algorithm
		found := false
		for _, a := range kdtree.Algorithms {
			if a.String() == strings.TrimSpace(row[1]) {
				algo, found = a, true
			}
		}
		if !found {
			return nil, fmt.Errorf("row %d: unknown algorithm %q", ri+1, row[1])
		}
		nums := make([]int, 4)
		for i := 0; i < 4; i++ {
			n, err := strconv.Atoi(strings.TrimSpace(row[2+i]))
			if err != nil {
				return nil, fmt.Errorf("row %d: %v", ri+1, err)
			}
			nums[i] = n
		}
		rc := harness.RunConfig{
			Scene: sc, Algorithm: algo, Workers: opts.Workers,
			Width: opts.Width, Height: opts.Width * 3 / 4,
		}
		base := harness.MeasureFixed(rc, frames)
		rc.Base = kdtree.Config{
			Algorithm: algo,
			CI:        float64(nums[0]), CB: float64(nums[1]), S: nums[2], R: nums[3],
			Workers: opts.Workers,
		}
		tuned := harness.MeasureFixed(rc, frames)
		cell := harness.SpeedupCell{
			Scene: sc.Name, Algorithm: algo, Base: base, Tuned: tuned,
			TunedCI: nums[0], TunedCB: nums[1], TunedS: nums[2], TunedR: nums[3],
			ConvergedAt: -1,
		}
		cells = append(cells, cell)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "measured %-12s %-10s base %v tuned %v speedup %.2fx\n",
				cell.Scene, cell.Algorithm, base, tuned, cell.Speedup())
		}
	}
	return cells, nil
}
