// Command kdserve runs the multi-tenant render/query service over the
// kD-tree substrate (internal/serve): guarded builds behind a generation-
// aware tree cache, end-to-end request deadlines, per-tenant admission
// control and circuit breaking, and a degradation ladder that turns every
// overload into an explicit cheaper answer instead of a hang.
//
//	kdserve -addr :7474
//	kdserve -addr :7474 -faults drill      # with the standing fault drill
//
//	curl 'localhost:7474/build?scene=Bunny'
//	curl -H 'X-Deadline-Ms: 250' 'localhost:7474/render?scene=Bunny&width=160'
//	curl 'localhost:7474/metrics'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kdtune/internal/faultinject"
	"kdtune/internal/kdtree"
	"kdtune/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":7474", "listen address")
		workers  = flag.Int("workers", 0, "build/render parallelism per request; 0 = all cores")
		slots    = flag.Int("slots", 4, "global concurrent work slots")
		maxQueue = flag.Int("max-queue", 8, "per-tenant pending ceiling before 429 shedding")
		trip     = flag.Int("breaker-trip", 5, "consecutive failures that open a tenant's breaker")
		cooldown = flag.Int("breaker-cooldown", 10, "sheds while open before the half-open probe")
		deadline = flag.Duration("default-deadline", 2*time.Second, "deadline for requests that carry none")
		maxDL    = flag.Duration("max-deadline", 30*time.Second, "ceiling on requested deadlines")
		maxDepth = flag.Int("guard-depth", 0, "build guard: abort past this recursion depth (0 = off)")
		maxArena = flag.Int64("guard-arena-mb", 0, "build guard: abort past this many MiB of live arena (0 = off)")
		logSize  = flag.Int("log-size", 512, "request ring-log capacity")
		faults   = flag.String("faults", "", "fault plan: empty or 'drill' (the standing server-side drill)")
	)
	flag.Parse()

	switch *faults {
	case "":
	case "drill":
		faultinject.Activate(serve.DrillPlan()...)
		fmt.Fprintln(os.Stderr, "kdserve: drill fault plan active")
	default:
		fmt.Fprintf(os.Stderr, "kdserve: unknown -faults %q (want empty or 'drill')\n", *faults)
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		Workers:         *workers,
		Slots:           *slots,
		MaxQueue:        *maxQueue,
		BreakerTrip:     *trip,
		BreakerCooldown: *cooldown,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDL,
		Guard: kdtree.Guard{
			MaxDepth:      *maxDepth,
			MaxArenaBytes: *maxArena << 20,
		},
		LogSize: *logSize,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown: stop accepting, let in-flight requests finish
	// inside their own deadlines, then exit.
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "kdserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "kdserve: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "kdserve:", err)
		os.Exit(1)
	}
	<-done
}
