// Command kdlint is the repository's static-analysis driver. It enforces
// the invariants the kd-tree builders' correctness and performance
// arguments depend on — see the rule packages under internal/lint/ — and
// gates the compiler's escape analysis over the hot packages against a
// committed baseline.
//
// Usage:
//
//	kdlint [-json|-sarif] [-tests] [-rules fam,...] [packages]
//	kdlint -escapes [-baseline lint/escapes.baseline] [-update] [-hot pkg,...]
//
// Exit status: 0 when clean, 1 when findings (or new escapes) are reported,
// 2 on a load or usage error. The implementation lives in
// internal/lint/driver so the exit-code contract is covered by tests.
package main

import (
	"os"

	"kdtune/internal/lint/driver"
)

func main() { os.Exit(driver.Main(os.Args[1:], os.Stdout, os.Stderr)) }
