// Command kdlint is the repository's static-analysis driver. It enforces
// the invariants the kd-tree builders' correctness and performance
// arguments depend on — see the rule packages under internal/lint/ — and
// gates the compiler's escape analysis over the hot packages against a
// committed baseline.
//
// Usage:
//
//	kdlint [-json] [-tests] [packages]
//	kdlint -escapes [-baseline lint/escapes.baseline] [-update] [-hot pkg,...]
//
// Exit status: 0 when clean, 1 when findings (or new escapes) are reported,
// 2 on a load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kdtune/internal/lint"
	"kdtune/internal/lint/arena"
	"kdtune/internal/lint/determinism"
	"kdtune/internal/lint/escapes"
	"kdtune/internal/lint/guard"
	"kdtune/internal/lint/hotpath"
	"kdtune/internal/lint/tunable"
)

// defaultHot are the packages whose allocations the cost model treats as
// per-ray or per-node costs; the escape gate holds their heap behavior to
// the committed baseline.
var defaultHot = []string{
	"kdtune/internal/kdtree",
	"kdtune/internal/sah",
	"kdtune/internal/render",
	"kdtune/internal/vecmath",
}

func main() { os.Exit(run()) }

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	tests := flag.Bool("tests", false, "also lint _test.go files (loads test variants)")
	escapesMode := flag.Bool("escapes", false, "run the escape-analysis gate instead of the AST rules")
	baseline := flag.String("baseline", "lint/escapes.baseline", "escape baseline file (with -escapes)")
	update := flag.Bool("update", false, "rewrite the baseline from the current escape set (with -escapes)")
	hot := flag.String("hot", strings.Join(defaultHot, ","), "comma-separated hot packages to gate (with -escapes)")
	flag.Parse()

	if *escapesMode {
		return runEscapes(*baseline, *update, strings.Split(*hot, ","))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := lint.DefaultConfig()
	cfg.IncludeTests = *tests
	pkgs, err := lint.Load("", patterns, cfg.IncludeTests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kdlint:", err)
		return 2
	}
	rules := []lint.Rule{determinism.Rule(), guard.Rule(), arena.Rule(), hotpath.Rule(), tunable.Rule()}
	diags := lint.Run(pkgs, cfg, rules)
	if cwd, err := os.Getwd(); err == nil {
		lint.Relativize(diags, cwd)
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "kdlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func runEscapes(baseline string, update bool, hot []string) int {
	esc, err := escapes.Collect(escapes.Options{Packages: hot})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kdlint:", err)
		return 2
	}
	if update {
		if err := escapes.WriteBaseline(baseline, esc); err != nil {
			fmt.Fprintln(os.Stderr, "kdlint:", err)
			return 2
		}
		fmt.Printf("kdlint: baseline %s updated: %d escapes across %s\n", baseline, len(esc), strings.Join(hot, ", "))
		return 0
	}
	base, err := escapes.ReadBaseline(baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kdlint:", err)
		return 2
	}
	news, stale := escapes.Diff(esc, base)
	for _, e := range news {
		fmt.Printf("%s: new heap escape: %s (in %s, %s)\n", e.Pos, e.Msg, e.Func, e.Pkg)
	}
	for _, k := range stale {
		fmt.Printf("kdlint: note: baseline entry no longer observed: %s (fold in with -escapes -update)\n", k)
	}
	if len(news) > 0 {
		fmt.Printf("kdlint: %d new escape(s) not in %s; fix them or regenerate the baseline with -escapes -update\n", len(news), baseline)
		return 1
	}
	fmt.Printf("kdlint: escape gate clean: %d baselined escapes, %d observed\n", len(base), len(esc))
	return 0
}
