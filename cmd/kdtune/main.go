// Command kdtune runs the online-autotuned frame loop of the paper's
// Figure 4 on one scene and algorithm, printing the per-iteration trace:
// the configuration under test, the measured frame time, and convergence.
//
//	kdtune -scene Sponza -algo in-place -iters 100
//	kdtune -scene FairyForest -algo lazy -search exhaustive
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kdtune/internal/harness"
	"kdtune/internal/kdtree"
	"kdtune/internal/scene"
)

func main() {
	var (
		sceneName = flag.String("scene", "Sponza", "scene name")
		algoName  = flag.String("algo", "in-place", "builder: node-level|nested|in-place|lazy")
		iters     = flag.Int("iters", 100, "max measurement cycles")
		width     = flag.Int("width", 192, "render width (height = 3/4 width)")
		workers   = flag.Int("workers", 0, "parallelism budget; 0 = all cores")
		seed      = flag.Int64("seed", 1, "tuner RNG seed")
		search    = flag.String("search", "nelder-mead", "nelder-mead|exhaustive|fixed")
	)
	flag.Parse()

	sc, err := scene.ByName(*sceneName)
	if err != nil {
		fail(err)
	}
	var algo kdtree.Algorithm
	found := false
	for _, a := range kdtree.Algorithms {
		if a.String() == *algoName {
			algo, found = a, true
		}
	}
	if !found {
		fail(fmt.Errorf("unknown algorithm %q", *algoName))
	}

	rc := harness.RunConfig{
		Scene: sc, Algorithm: algo, Workers: *workers,
		Width: *width, MaxIterations: *iters, Seed: *seed,
	}
	switch *search {
	case "nelder-mead":
		rc.Search = harness.SearchNelderMead
	case "exhaustive":
		rc.Search = harness.SearchExhaustive
		rc.ExhaustiveStrides = []int{12, 10, 2, 2}
	case "fixed":
		rc.Search = harness.SearchFixed
	default:
		fail(fmt.Errorf("unknown search %q", *search))
	}

	fmt.Printf("tuning %s with the %s builder (%s search)\n", sc, algo, *search)
	base := harness.MeasureFixed(rc, 5)
	fmt.Printf("base configuration C=(17,10,3,4096): median frame %v\n\n", base.Round(time.Millisecond))

	res := harness.Run(rc)
	for _, f := range res.Frames {
		marker := ""
		if res.ConvergedAt >= 0 && f.Iteration == res.ConvergedAt {
			marker = "   <- converged"
		}
		fmt.Printf("iter %3d  frame %3d  C=(%3d,%2d,%d,%4d)  P=%2d T=%2d  build %8s  render %8s  total %8s  speedup %.2fx%s\n",
			f.Iteration, f.FrameIndex, f.CI, f.CB, f.S, f.R, f.P, f.T,
			f.Build.Round(time.Millisecond), f.Render.Round(time.Millisecond),
			f.Total.Round(time.Millisecond),
			float64(base)/float64(f.Total), marker)
	}

	fmt.Printf("\nbest configuration C=(%d,%d,%d,%d) P=%d T=%d, steady-state frame %v, speedup %.2fx\n",
		res.BestCI, res.BestCB, res.BestS, res.BestR, res.BestP, res.BestT,
		res.BestTotal.Round(time.Millisecond),
		float64(base)/float64(res.BestTotal))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "kdtune: %v\n", err)
	os.Exit(1)
}
