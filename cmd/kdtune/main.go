// Command kdtune runs the online-autotuned frame loop of the paper's
// Figure 4 on one scene and algorithm, printing the per-iteration trace:
// the configuration under test, the measured frame time, and convergence.
//
//	kdtune -scene Sponza -algo in-place -iters 100
//	kdtune -scene FairyForest -algo lazy -search exhaustive
//	kdtune -list-params
//	kdtune -scene Bunny -search fixed -params B=64,G=512,SB=2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"kdtune/internal/autotune"
	"kdtune/internal/harness"
	"kdtune/internal/kdtree"
	"kdtune/internal/scene"
)

func main() {
	var (
		sceneName  = flag.String("scene", "Sponza", "scene name")
		algoName   = flag.String("algo", "in-place", "builder: node-level|nested|in-place|lazy")
		iters      = flag.Int("iters", 100, "max measurement cycles")
		width      = flag.Int("width", 192, "render width (height = 3/4 width)")
		workers    = flag.Int("workers", 0, "parallelism budget; 0 = all cores")
		seed       = flag.Int64("seed", 1, "tuner RNG seed")
		search     = flag.String("search", "nelder-mead", "nelder-mead|exhaustive|fixed")
		listParams = flag.Bool("list-params", false, "print the registered tunables as a markdown table and exit")
		params     = flag.String("params", "", "comma-separated name=value overrides for the base vector, e.g. B=64,G=512,SB=2")
	)
	flag.Parse()

	var algo kdtree.Algorithm
	found := false
	for _, a := range kdtree.Algorithms {
		if a.String() == *algoName {
			algo, found = a, true
		}
	}
	if !found {
		fail(fmt.Errorf("unknown algorithm %q", *algoName))
	}

	if *listParams {
		if err := printParamTable(os.Stdout, algo); err != nil {
			fail(err)
		}
		return
	}

	sc, err := scene.ByName(*sceneName)
	if err != nil {
		fail(err)
	}

	rc := harness.RunConfig{
		Scene: sc, Algorithm: algo, Workers: *workers,
		Width: *width, MaxIterations: *iters, Seed: *seed,
	}
	switch *search {
	case "nelder-mead":
		rc.Search = harness.SearchNelderMead
	case "exhaustive":
		rc.Search = harness.SearchExhaustive
		rc.ExhaustiveStrides = []int{12, 10, 2, 2}
	case "fixed":
		rc.Search = harness.SearchFixed
	default:
		fail(fmt.Errorf("unknown search %q", *search))
	}
	if err := applyParamOverrides(&rc, algo, *params); err != nil {
		fail(err)
	}

	fmt.Printf("tuning %s with the %s builder (%s search)\n", sc, algo, *search)
	base := harness.MeasureFixed(rc, 5)
	fmt.Printf("base configuration C=(17,10,3,4096): median frame %v\n\n", base.Round(time.Millisecond))

	res := harness.Run(rc)
	for _, f := range res.Frames {
		marker := ""
		if res.ConvergedAt >= 0 && f.Iteration == res.ConvergedAt {
			marker = "   <- converged"
		}
		fmt.Printf("iter %3d  frame %3d  [%s]  build %8s  render %8s  total %8s  speedup %.2fx%s\n",
			f.Iteration, f.FrameIndex, formatVector(res.ParamNames, f.Params),
			f.Build.Round(time.Millisecond), f.Render.Round(time.Millisecond),
			f.Total.Round(time.Millisecond),
			float64(base)/float64(f.Total), marker)
	}

	fmt.Printf("\nbest configuration [%s], steady-state frame %v, speedup %.2fx\n",
		formatNamed(res.ParamNames, res.TunedParams),
		res.BestTotal.Round(time.Millisecond),
		float64(base)/float64(res.BestTotal))
}

// formatVector renders a positional parameter vector as name=value pairs in
// registration order.
func formatVector(names []string, values []int) string {
	var b strings.Builder
	for i, name := range names {
		if i >= len(values) {
			break
		}
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", name, values[i])
	}
	return b.String()
}

// formatNamed renders a name-keyed vector in registration order.
func formatNamed(names []string, values map[string]int) string {
	var b strings.Builder
	for _, name := range names {
		v, ok := values[name]
		if !ok {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", name, v)
	}
	return b.String()
}

// printParamTable renders the full tunable registry of one run as a markdown
// table — the source of the README "Tunables" section.
func printParamTable(w *os.File, algo kdtree.Algorithm) error {
	var vars harness.TunedVars
	reg, err := harness.ComposeRegistry(algo, &vars)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "| Name | Range | Scale | Description |")
	fmt.Fprintln(w, "|------|-------|-------|-------------|")
	for _, tn := range reg.Tunables() {
		rng := fmt.Sprintf("[%d, %d]", tn.Min, tn.Max)
		scale := tn.Scale.String()
		if tn.Scale == autotune.ScaleLinear && tn.Step > 1 {
			scale = fmt.Sprintf("linear, step %d", tn.Step)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n", tn.Name, rng, scale, tn.Desc)
	}
	return nil
}

// applyParamOverrides parses "name=value,..." and writes each value into the
// run's base configuration through the registry, so a deliberately
// non-default vector (CI smoke legs, experiments) rides the same named
// mechanism as the tuner.
func applyParamOverrides(rc *harness.RunConfig, algo kdtree.Algorithm, spec string) error {
	if spec == "" {
		return nil
	}
	if rc.Base.CI == 0 {
		rc.Base = kdtree.BaseConfig(algo)
	}
	vars := harness.TunedVars{
		CI: int(rc.Base.CI), CB: int(rc.Base.CB), S: rc.Base.S, R: rc.Base.R,
		Bins: rc.Base.Bins, ScatterGrain: rc.Base.ScatterGrain,
		BinGrain: rc.Base.BinGrain, SplitBias: rc.Base.SplitBias,
		PacketWidth: rc.PacketWidth, TileSize: rc.TileSize,
	}
	reg, err := harness.ComposeRegistry(algo, &vars)
	if err != nil {
		return err
	}
	for _, kv := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return fmt.Errorf("-params: %q is not name=value", kv)
		}
		tn, found := reg.Lookup(name)
		if !found {
			return fmt.Errorf("-params: unknown tunable %q (see -list-params)", name)
		}
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("-params: %s: %v", name, err)
		}
		if v < tn.Min || v > tn.Max {
			return fmt.Errorf("-params: %s=%d outside [%d, %d]", name, v, tn.Min, tn.Max)
		}
		*tn.Target = v
	}
	rc.Base.CI = float64(vars.CI)
	rc.Base.CB = float64(vars.CB)
	rc.Base.S = vars.S
	rc.Base.R = vars.R
	rc.Base.Bins = vars.Bins
	rc.Base.ScatterGrain = vars.ScatterGrain
	rc.Base.BinGrain = vars.BinGrain
	rc.Base.SplitBias = vars.SplitBias
	rc.PacketWidth = vars.PacketWidth
	rc.TileSize = vars.TileSize
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "kdtune: %v\n", err)
	os.Exit(1)
}
