// Command kdsoak soaks a running kdserve with a mixed-tenant, mixed-endpoint
// workload and asserts the service's robustness contract: zero hung
// requests, a p99 under the given bound, and (when a fault drill is active
// server-side) a nonzero degraded count proving the ladder actually ran.
// Exit status is nonzero when any assertion fails, so CI can gate on it.
//
//	kdserve -addr :7474 -faults drill &
//	kdsoak -addr http://127.0.0.1:7474 -requests 300 -expect-degraded
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kdtune/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:7474", "kdserve base URL")
		requests    = flag.Int("requests", 200, "total requests across all workers")
		concurrency = flag.Int("concurrency", 8, "parallel client workers")
		tenants     = flag.String("tenants", "alpha,beta,gamma", "comma-separated tenant mix")
		scenes      = flag.String("scenes", "Bunny", "comma-separated scene mix")
		deadlineMS  = flag.Int("deadline-ms", 500, "per-request server deadline")
		grace       = flag.Duration("grace", 10*time.Second, "client slack past the deadline before a request counts as hung")
		attempts    = flag.Int("max-attempts", 4, "attempts per request when shed")
		seed        = flag.Int64("seed", 1, "workload RNG seed")
		width       = flag.Int("width", 96, "render width")
		packet      = flag.Int("packet", 4, "render packet width")
		p99ms       = flag.Int("p99-ms", 0, "fail if served p99 exceeds this many ms (0 = no bound)")
		expectDeg   = flag.Bool("expect-degraded", false, "fail unless at least one request was served degraded")
		waitReady   = flag.Duration("wait-ready", 15*time.Second, "how long to poll /healthz before starting")
		timeout     = flag.Duration("timeout", 10*time.Minute, "overall run budget")
	)
	flag.Parse()

	if err := serve.WaitReady(*addr, *waitReady); err != nil {
		fail(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	rep, err := serve.RunSoak(ctx, serve.SoakOptions{
		BaseURL:     *addr,
		Scenes:      splitList(*scenes),
		Tenants:     splitList(*tenants),
		Requests:    *requests,
		Concurrency: *concurrency,
		DeadlineMS:  *deadlineMS,
		Grace:       *grace,
		MaxAttempts: *attempts,
		Seed:        *seed,
		Width:       *width,
		Height:      *width * 3 / 4,
		Packet:      *packet,
	})
	if rep != nil {
		fmt.Println(rep)
	}
	if err != nil {
		fail(err)
	}

	bad := false
	if rep.Hung > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d hung requests (contract requires zero)\n", rep.Hung)
		bad = true
	}
	if rep.Served+rep.Degraded == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: no request was served at all")
		bad = true
	}
	if *p99ms > 0 && rep.P99 > time.Duration(*p99ms)*time.Millisecond {
		fmt.Fprintf(os.Stderr, "FAIL: served p99 %v exceeds bound %dms\n", rep.P99, *p99ms)
		bad = true
	}
	if *expectDeg && rep.Degraded == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: -expect-degraded set but no degraded responses observed")
		bad = true
	}
	if bad {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "kdsoak:", err)
	os.Exit(1)
}
