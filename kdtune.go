// Package kdtune is a Go reproduction of "Online-Autotuning of Parallel SAH
// kD-Trees" (Tillmann, Pfaffe, Kaag, Tichy; IPPS 2016): four parallel
// construction algorithms for Surface-Area-Heuristic kD-trees, an
// application-agnostic online autotuner in the style of AtuneRT, a
// ray-casting renderer, the paper's six evaluation scenes (procedural
// stand-ins with matching triangle counts), and an experiment harness that
// regenerates every table and figure of the paper's evaluation.
//
// This package is the stable public facade; it re-exports the pieces a
// downstream user composes:
//
//	sc, _ := kdtune.SceneByName("Sibenik")
//	cfg := kdtune.BaseConfig(kdtune.AlgoInPlace)
//	tree := kdtune.Build(sc.Triangles(0), cfg)
//	hit, ok := kdtune.IntersectClosest(tree, ray)
//
// and the online tuning loop of the paper's Figure 1, with subsystems
// contributing their tunables through a shared registry:
//
//	reg := kdtune.NewTunableRegistry()
//	reg.Register(kdtune.Tunable{Name: "CI", Target: &ci, Min: 3, Max: 101, Step: 1})
//	tuner := kdtune.NewTuner(kdtune.TunerOptions{})
//	tuner.RegisterAll(reg)
//	for running {
//		tuner.Start()
//		doTunedWork(ci)
//		tuner.Stop()
//	}
//
// (The paper's original RegisterParameter(&v, min, max, step) methods remain
// available on Tuner for clients that do not need named registration.)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// paper-vs-reproduction results.
package kdtune

import (
	"io"
	"math"

	"kdtune/internal/autotune"
	"kdtune/internal/harness"
	"kdtune/internal/kdtree"
	"kdtune/internal/render"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// Geometry primitives.
type (
	// Vec3 is a 3-component double-precision vector.
	Vec3 = vecmath.Vec3
	// Ray is a parametric ray Origin + t*Dir.
	Ray = vecmath.Ray
	// Triangle is the geometric primitive stored in trees.
	Triangle = vecmath.Triangle
	// AABB is an axis-aligned bounding box.
	AABB = vecmath.AABB
)

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return vecmath.V(x, y, z) }

// Tri constructs a Triangle.
func Tri(a, b, c Vec3) Triangle { return vecmath.Tri(a, b, c) }

// NewRay constructs a Ray.
func NewRay(origin, dir Vec3) Ray { return vecmath.NewRay(origin, dir) }

// kD-tree construction.
type (
	// Tree is an SAH kD-tree over a triangle slice.
	Tree = kdtree.Tree
	// Config selects the algorithm and its Table-I parameters.
	Config = kdtree.Config
	// Algorithm identifies one of the paper's four builder variants.
	Algorithm = kdtree.Algorithm
	// Hit describes a ray-triangle intersection.
	Hit = kdtree.Hit
	// BuildStats summarises a finished construction.
	BuildStats = kdtree.BuildStats
)

// The four construction algorithms of the paper's §IV, plus two extensions:
// AlgoSortOnce (the full Wald–Havran O(N log N) event-splicing build) and
// AlgoMedian (the non-SAH spatial-median baseline).
const (
	AlgoNodeLevel = kdtree.AlgoNodeLevel
	AlgoNested    = kdtree.AlgoNested
	AlgoInPlace   = kdtree.AlgoInPlace
	AlgoLazy      = kdtree.AlgoLazy
	AlgoSortOnce  = kdtree.AlgoSortOnce
	AlgoMedian    = kdtree.AlgoMedian
)

// Algorithms lists all four builder variants in paper order.
var Algorithms = kdtree.Algorithms

// Build constructs an SAH kD-tree.
func Build(tris []Triangle, cfg Config) *Tree {
	//kdlint:noguard thin facade over the documented plain entry; kdtree.Build already arms the guard for panic containment, and callers wanting errors use BuildGuarded
	return kdtree.Build(tris, cfg)
}

// Guarded construction: builds that can be bounded and aborted instead of
// running away on hostile input or pathological configurations.
type (
	// Builder owns reusable build arenas; see NewBuilder.
	Builder = kdtree.Builder
	// Guard bounds one build (deadline, depth, arena bytes).
	Guard = kdtree.Guard
	// BuildAborted is the error a guarded build returns when stopped.
	BuildAborted = kdtree.BuildAborted
	// AbortCause classifies why a guarded build stopped.
	AbortCause = kdtree.AbortCause
)

// The abort causes a BuildAborted reports.
const (
	AbortDeadline    = kdtree.AbortDeadline
	AbortDepth       = kdtree.AbortDepth
	AbortMemory      = kdtree.AbortMemory
	AbortWorkerPanic = kdtree.AbortWorkerPanic
)

// NewBuilder creates a Builder whose arenas are reused across builds, so a
// frame loop's steady-state rebuild allocates (almost) nothing.
func NewBuilder() *Builder { return kdtree.NewBuilder() }

// BuildGuarded constructs a tree under the guard's limits. On abort it
// returns (nil, *BuildAborted) and the builder stays reusable — the caller
// can immediately rebuild, e.g. with AlgoMedian as a cheap fallback.
func BuildGuarded(tris []Triangle, cfg Config, g Guard) (*Tree, error) {
	return kdtree.NewBuilder().BuildGuarded(tris, cfg, g)
}

// Mesh sanitisation.
type (
	// SanitizePolicy selects per defect class what Sanitize does.
	SanitizePolicy = scene.SanitizePolicy
	// SanitizeAction is one policy choice (drop, reject, keep).
	SanitizeAction = scene.SanitizeAction
	// SanitizeReport tallies a Sanitize pass.
	SanitizeReport = scene.SanitizeReport
)

// The sanitize actions.
const (
	SanitizeDrop   = scene.SanitizeDrop
	SanitizeReject = scene.SanitizeReject
	SanitizeKeep   = scene.SanitizeKeep
)

// Sanitize filters NaN/Inf-vertex and zero-area triangles out of a mesh
// (in place) according to the policy, before they reach the SAH sweeps.
func Sanitize(tris []Triangle, policy SanitizePolicy) ([]Triangle, SanitizeReport, error) {
	return scene.Sanitize(tris, policy)
}

// BaseConfig returns the paper's manually crafted base configuration
// C_base = (CI, CB, S, R) = (17, 10, 3, 4096).
func BaseConfig(a Algorithm) Config { return kdtree.BaseConfig(a) }

// IntersectClosest finds the closest intersection of r with the tree over
// t in (1e-9, +inf).
func IntersectClosest(t *Tree, r Ray) (Hit, bool) {
	return t.Intersect(r, 1e-9, math.Inf(1))
}

// RangeQuery returns the indices of all triangles whose bounds overlap the
// query box, sorted and de-duplicated.
func RangeQuery(t *Tree, box AABB) []int { return t.RangeQuery(box) }

// NearestNeighbor returns the triangle closest to point p and its distance.
func NearestNeighbor(t *Tree, p Vec3) (tri int, dist float64, ok bool) {
	return t.NearestNeighbor(p)
}

// LoadTree deserialises a tree previously written with Tree.Serialize.
func LoadTree(r io.Reader) (*Tree, error) { return kdtree.ReadTree(r) }

// Online autotuning (AtuneRT-style).
type (
	// Tuner is the online autotuner of the paper's §III-A.
	Tuner = autotune.Tuner
	// TunerOptions configures a Tuner.
	TunerOptions = autotune.Options
	// TuneSample records one measurement cycle.
	TuneSample = autotune.Sample
	// TunableRegistry collects named tunables from any number of
	// subsystems; feed it to a Tuner with RegisterAll.
	TunableRegistry = autotune.Registry
	// Tunable is one named tuning parameter: target variable, range, and
	// scale hint.
	Tunable = autotune.Tunable
	// TunableScale is the search-space shaping hint of a Tunable.
	TunableScale = autotune.Scale
)

// The tunable scale hints: a plain integer interval, or the powers of two in
// the range (grains, bin counts, resolutions).
const (
	ScaleLinear = autotune.ScaleLinear
	ScalePow2   = autotune.ScalePow2
)

// NewTuner creates an online autotuner.
func NewTuner(opts TunerOptions) *Tuner { return autotune.New(opts) }

// NewTunableRegistry creates an empty tunable registry.
func NewTunableRegistry() *TunableRegistry { return autotune.NewRegistry() }

// Scenes.
type (
	// Scene is one of the evaluation scenes (or a user-built one).
	Scene = scene.Scene
	// View is a camera placement.
	View = scene.View
)

// SceneByName builds one of the six evaluation scenes ("Bunny", "Sponza",
// "Sibenik", "Toasters", "WoodDoll", "FairyForest").
func SceneByName(name string) (*Scene, error) { return scene.ByName(name) }

// SceneNames lists the six evaluation scenes in the paper's order.
func SceneNames() []string { return scene.Names() }

// NewStaticScene wraps a user triangle soup as a static scene.
func NewStaticScene(name string, tris []Triangle, view View, lights []Vec3) *Scene {
	return scene.NewStatic(name, tris, view, lights)
}

// Rendering.
type (
	// RenderOptions controls a render pass.
	RenderOptions = render.Options
	// Image is the framebuffer returned by Render.
	Image = render.Image
	// RenderStats counts the rays a render pass traced.
	RenderStats = render.RenderStats
)

// Render ray-casts a scene through a tree (the paper's §V-A renderer).
func Render(tree *Tree, view View, lights []Vec3, opt RenderOptions) (*Image, RenderStats) {
	return render.Render(tree, view, lights, opt)
}

// Experiments.
type (
	// RunConfig describes one Figure-4 tuning/measurement run.
	RunConfig = harness.RunConfig
	// RunResult aggregates a run.
	RunResult = harness.RunResult
	// ExperimentOpts are the shared experiment knobs.
	ExperimentOpts = harness.Opts
)

// The configuration-search policies compared in the paper.
const (
	SearchFixed      = harness.SearchFixed
	SearchNelderMead = harness.SearchNelderMead
	SearchExhaustive = harness.SearchExhaustive
)

// RunExperiment executes the Figure-4 workflow (build, render, measure,
// adapt) for one scene and algorithm.
func RunExperiment(rc RunConfig) *RunResult { return harness.Run(rc) }

// Selection is the result of SelectAlgorithm: each variant's tuned frame
// time and the winner.
type Selection = harness.Selection

// SelectAlgorithm tunes every construction algorithm on the scene, one
// after another, and picks the best — the treatment the paper's conclusion
// proposes for the nominal "which algorithm" parameter.
func SelectAlgorithm(sc *Scene, o ExperimentOpts) Selection {
	return harness.SelectAlgorithm(sc, o)
}
