// Benchmarks regenerating the paper's tables and figures at reduced scale.
//
// Each paper artefact has a bench: Table I/II and Figures 5-9. The benches
// run the same code paths as cmd/kdbench but with smaller scenes, lower
// resolutions and tighter iteration budgets so `go test -bench=.` finishes
// in minutes; cmd/kdbench regenerates the full-scale numbers recorded in
// EXPERIMENTS.md. The ablation benches at the bottom cover the design
// choices called out in DESIGN.md §5.
package kdtune

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"kdtune/internal/bvh"
	"kdtune/internal/harness"
	"kdtune/internal/kdtree"
	"kdtune/internal/oracle"
	"kdtune/internal/parallel"
	"kdtune/internal/sah"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// sceneCache avoids regenerating procedural scenes per bench.
var sceneCache sync.Map

func cachedScene(b *testing.B, name string) *scene.Scene {
	if sc, ok := sceneCache.Load(name); ok {
		return sc.(*scene.Scene)
	}
	sc, err := scene.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	sceneCache.Store(name, sc)
	return sc
}

// tunedCache holds one tuned configuration per (scene, algorithm), found
// once by a reduced-budget Nelder-Mead run.
var tunedCache sync.Map

func tunedConfig(b *testing.B, sc *scene.Scene, algo kdtree.Algorithm) kdtree.Config {
	key := sc.Name + "/" + algo.String()
	if c, ok := tunedCache.Load(key); ok {
		return c.(kdtree.Config)
	}
	res := harness.Run(harness.RunConfig{
		Scene: sc, Algorithm: algo, Search: harness.SearchNelderMead,
		Width: 96, Height: 72, MaxIterations: 40, Seed: 7,
	})
	cfg := kdtree.Config{
		Algorithm: algo,
		CI:        float64(res.BestCI), CB: float64(res.BestCB),
		S: res.BestS, R: res.BestR,
	}
	tunedCache.Store(key, cfg)
	return cfg
}

// frame executes one Figure-4 frame: rebuild the tree, render.
func frame(sc *scene.Scene, frameIdx int, cfg kdtree.Config) {
	tris := sc.Triangles(frameIdx)
	tree := kdtree.Build(tris, cfg)
	renderFrame(tree, sc)
}

func renderFrame(tree *kdtree.Tree, sc *scene.Scene) {
	Render(tree, sc.View, sc.Lights, RenderOptions{Width: 96, Height: 72})
}

// BenchmarkTableI builds each of the four algorithm variants (Table I lists
// their tunable parameters; this bench shows the per-variant construction
// cost those parameters act on) over the Toasters scene.
func BenchmarkTableI(b *testing.B) {
	sc := cachedScene(b, "Toasters")
	tris := sc.Triangles(0)
	for _, algo := range kdtree.Algorithms {
		b.Run(algo.String(), func(b *testing.B) {
			cfg := kdtree.BaseConfig(algo)
			for i := 0; i < b.N; i++ {
				kdtree.Build(tris, cfg)
			}
		})
	}
}

// BenchmarkTableII measures the per-cycle overhead of the online tuner over
// the Table-II search space — the paper's "little runtime overhead" claim.
// The tuned region is a no-op, so ns/op is pure tuner cost.
func BenchmarkTableII(b *testing.B) {
	tuner := NewTuner(TunerOptions{Seed: 1})
	var ci, cb, s, r int
	reg := NewTunableRegistry()
	for _, tn := range []Tunable{
		{Name: "CI", Target: &ci, Min: 3, Max: 101, Step: 1},
		{Name: "CB", Target: &cb, Min: 0, Max: 60, Step: 1},
		{Name: "S", Target: &s, Min: 1, Max: 8, Step: 1},
		{Name: "R", Target: &r, Min: 16, Max: 8192, Scale: ScalePow2},
	} {
		if err := reg.Register(tn); err != nil {
			b.Fatal(err)
		}
	}
	if err := tuner.RegisterAll(reg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner.Start()
		tuner.StopWithCost(float64(ci + cb + s + r))
	}
}

// BenchmarkFigure5 reports absolute frame time under the base and the tuned
// configuration (Figure 5's bars) for the bench-sized scenes. The full
// three-scene version runs via `kdbench -experiment fig5`.
func BenchmarkFigure5(b *testing.B) {
	for _, name := range []string{"WoodDoll", "Toasters"} {
		sc := cachedScene(b, name)
		for _, algo := range kdtree.Algorithms {
			b.Run(fmt.Sprintf("%s/%s/base", name, algo), func(b *testing.B) {
				cfg := kdtree.BaseConfig(algo)
				for i := 0; i < b.N; i++ {
					frame(sc, i%sc.Frames, cfg)
				}
			})
			b.Run(fmt.Sprintf("%s/%s/tuned", name, algo), func(b *testing.B) {
				cfg := tunedConfig(b, sc, algo)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					frame(sc, i%sc.Frames, cfg)
				}
			})
		}
	}
}

// BenchmarkFigure6 reports the Figure 6 statistic — tuned-vs-base speedup —
// as a custom metric per scene/algorithm pair.
func BenchmarkFigure6(b *testing.B) {
	for _, name := range []string{"WoodDoll", "Toasters"} {
		sc := cachedScene(b, name)
		for _, algo := range kdtree.Algorithms {
			b.Run(fmt.Sprintf("%s/%s", name, algo), func(b *testing.B) {
				base := harness.MeasureFixed(harness.RunConfig{
					Scene: sc, Algorithm: algo, Width: 96, Height: 72,
				}, 5)
				cfg := tunedConfig(b, sc, algo)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					frame(sc, i%sc.Frames, cfg)
				}
				b.StopTimer()
				tuned := b.Elapsed() / time.Duration(max(1, b.N))
				if tuned > 0 {
					b.ReportMetric(float64(base)/float64(tuned), "speedup")
				}
			})
		}
	}
}

// BenchmarkFigure7 runs one full tuning run per iteration (the unit Figure
// 7's distributions are built from: 15 tuned configurations per scene).
func BenchmarkFigure7(b *testing.B) {
	sc := cachedScene(b, "WoodDoll")
	for i := 0; i < b.N; i++ {
		harness.Run(harness.RunConfig{
			Scene: sc, Algorithm: kdtree.AlgoInPlace, Search: harness.SearchNelderMead,
			Width: 64, Height: 48, MaxIterations: 25, Seed: int64(i + 1),
		})
	}
}

// BenchmarkFigure8 measures the tuner's convergence speed (Figure 8: stable
// state "after just about 40 iterations"): one op = driving the 4-D tuner
// to convergence on a smooth synthetic surface; the iterations metric is
// the paper-comparable number.
func BenchmarkFigure8(b *testing.B) {
	totalIters := 0
	for i := 0; i < b.N; i++ {
		tuner := NewTuner(TunerOptions{Seed: int64(i + 1)})
		var ci, cb, s, r int
		_ = tuner.RegisterNamedParameter("CI", &ci, 3, 101, 1)
		_ = tuner.RegisterNamedParameter("CB", &cb, 0, 60, 1)
		_ = tuner.RegisterNamedParameter("S", &s, 1, 8, 1)
		_ = tuner.RegisterPow2Parameter("R", &r, 16, 8192)
		for iter := 0; iter < 300 && !tuner.Converged(); iter++ {
			tuner.Start()
			cost := math.Abs(float64(ci)-40)/40 + math.Abs(float64(cb)-15)/15 +
				math.Abs(float64(s)-5)/5 + math.Abs(math.Log2(float64(r))-9)
			tuner.StopWithCost(1 + cost)
			totalIters++
		}
	}
	b.ReportMetric(float64(totalIters)/float64(b.N), "iters/convergence")
}

// BenchmarkFigure9 compares the three configuration policies of §V-D4 on
// the bench-sized scene: one op = one frame under the configuration each
// policy chose (default / Nelder-Mead / strided exhaustive).
func BenchmarkFigure9(b *testing.B) {
	sc := cachedScene(b, "WoodDoll")
	algo := kdtree.AlgoInPlace

	configs := map[string]kdtree.Config{
		"default": kdtree.BaseConfig(algo),
	}
	var once sync.Once
	prepare := func(b *testing.B) {
		once.Do(func() {
			configs["nelder-mead"] = tunedConfig(b, sc, algo)
			res := harness.Run(harness.RunConfig{
				Scene: sc, Algorithm: algo, Search: harness.SearchExhaustive,
				ExhaustiveStrides: []int{25, 20, 4},
				Width:             64, Height: 48, MaxIterations: 1 << 20, PostConverge: 1,
			})
			configs["exhaustive"] = kdtree.Config{
				Algorithm: algo,
				CI:        float64(res.BestCI), CB: float64(res.BestCB),
				S: res.BestS, R: res.BestR,
			}
		})
	}
	for _, policy := range []string{"default", "nelder-mead", "exhaustive"} {
		b.Run(policy, func(b *testing.B) {
			prepare(b)
			cfg := configs[policy]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				frame(sc, i%sc.Frames, cfg)
			}
		})
	}
}

// --- Ablation benches (DESIGN.md §5) ---

func randomBoxes(n int) (vecmath.AABB, []vecmath.AABB) {
	node := vecmath.NewAABB(vecmath.V(0, 0, 0), vecmath.V(10, 10, 10))
	boxes := make([]vecmath.AABB, n)
	for i := range boxes {
		h := uint64(i)*0x9E3779B97F4A7C15 + 12345
		f := func() float64 { h ^= h >> 29; h *= 0xBF58476D1CE4E5B9; return float64(h%10000) / 1000 }
		c := vecmath.V(f(), f(), f())
		d := vecmath.V(f()/20+0.01, f()/20+0.01, f()/20+0.01)
		boxes[i] = vecmath.NewAABB(c.Sub(d), c.Add(d)).Intersect(node)
	}
	return node, boxes
}

// BenchmarkSplitSweepVsBinned contrasts the exact event-sweep split search
// with the binned approximation on identical inputs.
func BenchmarkSplitSweepVsBinned(b *testing.B) {
	node, boxes := randomBoxes(20000)
	p := sah.DefaultParams()
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sah.FindBestSplitSweep(p, node, boxes)
		}
	})
	b.Run("binned32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sah.FindBestSplitBinned(p, node, boxes, 32)
		}
	})
	b.Run("binned128", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sah.FindBestSplitBinned(p, node, boxes, 128)
		}
	})
}

// BenchmarkSpawnDepth sweeps the S parameter (task spawn budget) for the
// node-level builder: the knob Figure 7 shows shifting across platforms.
func BenchmarkSpawnDepth(b *testing.B) {
	sc := cachedScene(b, "Toasters")
	tris := sc.Triangles(0)
	for _, s := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			cfg := kdtree.BaseConfig(kdtree.AlgoNodeLevel)
			cfg.S = s
			for i := 0; i < b.N; i++ {
				kdtree.Build(tris, cfg)
			}
		})
	}
}

// BenchmarkParallelForChunk sweeps the grain size of the parallel-for
// substrate under a cheap body, exposing dispatch overhead.
func BenchmarkParallelForChunk(b *testing.B) {
	data := make([]float64, 1<<20)
	for _, grain := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("grain=%d", grain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parallel.ForGrain(len(data), 0, grain, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						data[j] = data[j]*0.5 + 1
					}
				})
			}
		})
	}
}

// BenchmarkScan measures the parallel exclusive prefix sum against its
// sequential fallback (the nested/in-place builders' core primitive).
func BenchmarkScan(b *testing.B) {
	src := make([]int, 1<<20)
	dst := make([]int, len(src))
	for i := range src {
		src[i] = i & 7
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallel.ExclusiveScan(dst, src, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallel.ExclusiveScan(dst, src, 0)
		}
	})
}

// BenchmarkLazyOcclusion sweeps the lazy threshold R on the occluded Fairy
// Forest scene — the paper's motivating case for the R parameter. One op is
// a full frame (build + render), so the metric includes the expansion work
// rays actually trigger.
func BenchmarkLazyOcclusion(b *testing.B) {
	sc := cachedScene(b, "FairyForest")
	tris := sc.Triangles(0)
	for _, r := range []int{16, 256, 4096, 8192} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			cfg := kdtree.BaseConfig(kdtree.AlgoLazy)
			cfg.R = r
			for i := 0; i < b.N; i++ {
				tree := kdtree.Build(tris, cfg)
				renderFrame(tree, sc)
			}
		})
	}
}

// BenchmarkSeedCount sweeps the random-sampling budget that seeds the
// Nelder-Mead simplex, reporting the achieved optimum quality.
func BenchmarkSeedCount(b *testing.B) {
	for _, seeds := range []int{5, 10, 20, 40} {
		b.Run(fmt.Sprintf("seeds=%d", seeds), func(b *testing.B) {
			totalBest := 0.0
			for i := 0; i < b.N; i++ {
				tuner := NewTuner(TunerOptions{Seed: int64(i + 1), SeedSamples: seeds})
				var x, y int
				_ = tuner.RegisterNamedParameter("x", &x, 0, 100, 1)
				_ = tuner.RegisterNamedParameter("y", &y, 0, 100, 1)
				for iter := 0; iter < 150 && !tuner.Converged(); iter++ {
					tuner.Start()
					dx, dy := float64(x-70), float64(y-30)
					tuner.StopWithCost(1 + dx*dx + dy*dy + 50*math.Sin(float64(x)/7)*math.Sin(float64(y)/9))
				}
				_, best, _ := tuner.Best()
				totalBest += best
			}
			b.ReportMetric(totalBest/float64(b.N), "avg-best-cost")
		})
	}
}

// BenchmarkTraversal measures closest-hit queries on a prebuilt tree, the
// t_r half of the paper's objective function.
func BenchmarkTraversal(b *testing.B) {
	sc := cachedScene(b, "Sponza")
	tree := kdtree.Build(sc.Triangles(0), kdtree.BaseConfig(kdtree.AlgoInPlace))
	rays := make([]vecmath.Ray, 1024)
	for i := range rays {
		h := uint64(i)*0x9E3779B97F4A7C15 + 99
		f := func() float64 { h ^= h >> 29; h *= 0xBF58476D1CE4E5B9; return float64(h%2000)/1000 - 1 }
		rays[i] = vecmath.NewRay(vecmath.V(-10, 4, 0), vecmath.V(1, f()*0.5, f()*0.5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rays[i%len(rays)]
		tree.Intersect(r, 1e-9, math.Inf(1))
	}
}

// BenchmarkPacketTraversal puts the packet walk next to the scalar walk on
// the same ray load: one op traces 1024 camera-coherent rays, at width 1
// (the scalar loop) and packet widths 4/8/16. The demotions/ray metric
// shows how much of the packet win survives the scene's divergence.
func BenchmarkPacketTraversal(b *testing.B) {
	sc := cachedScene(b, "Sponza")
	tree := kdtree.Build(sc.Triangles(0), kdtree.BaseConfig(kdtree.AlgoInPlace))
	rays := make([]vecmath.Ray, 1024)
	for i := range rays {
		// A coherent 32x32 fan, raster order — the renderer's packet shape.
		u := float64(i%32)/32 - 0.5
		v := float64(i/32)/32 - 0.5
		rays[i] = vecmath.NewRay(vecmath.V(-10, 4, 0), vecmath.V(1, u*0.6, v*0.6))
	}
	for _, w := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) {
			var ps kdtree.PacketScratch
			demoted := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if w == 1 {
					for _, r := range rays {
						tree.Intersect(r, 1e-9, math.Inf(1))
					}
					continue
				}
				for s := 0; s < len(rays); s += w {
					demoted += tree.IntersectPacket(&ps, rays[s:s+w], 1e-9, math.Inf(1))
				}
			}
			if w > 1 {
				b.ReportMetric(float64(demoted)/float64(b.N*len(rays)), "demotions/ray")
			}
		})
	}
}

// BenchmarkIntersectSoA isolates the leaf kernel change: Möller–Trumbore
// with edges recomputed per test (the old AoS Triangle.IntersectRay) versus
// the precomputed SoA form the tree's leaves now store. One op tests one ray
// against every triangle in the scene.
func BenchmarkIntersectSoA(b *testing.B) {
	sc := cachedScene(b, "Toasters")
	tris := sc.Triangles(0)
	a := make([]vecmath.Vec3, len(tris))
	e1 := make([]vecmath.Vec3, len(tris))
	e2 := make([]vecmath.Vec3, len(tris))
	for i, t := range tris {
		a[i] = t.A
		e1[i] = t.B.Sub(t.A)
		e2[i] = t.C.Sub(t.A)
	}
	ray := vecmath.NewRay(vecmath.V(-12, 3, 0), vecmath.V(1, 0.05, 0.02))
	b.Run("aos-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range tris {
				tris[j].IntersectRay(ray, 1e-9, math.Inf(1))
			}
		}
	})
	b.Run("soa-precomputed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range a {
				vecmath.IntersectRayPre(a[j], e1[j], e2[j], ray, 1e-9, math.Inf(1))
			}
		}
	})
}

// BenchmarkMedianVsSAH ablates the SAH itself: frame time (build + render)
// with the SAH node-level builder vs the naive spatial-median baseline.
// The SAH pays cost-model evaluation per split and earns it back both in
// traversal and in avoided duplication — the trade-off the CI/CB
// parameters (and hence the autotuner) steer.
func BenchmarkMedianVsSAH(b *testing.B) {
	sc := cachedScene(b, "Sponza")
	for _, algo := range []kdtree.Algorithm{kdtree.AlgoNodeLevel, kdtree.AlgoMedian} {
		b.Run(algo.String()+"/build", func(b *testing.B) {
			cfg := kdtree.BaseConfig(algo)
			tris := sc.Triangles(0)
			for i := 0; i < b.N; i++ {
				kdtree.Build(tris, cfg)
			}
		})
		b.Run(algo.String()+"/render", func(b *testing.B) {
			cfg := kdtree.BaseConfig(algo)
			tree := kdtree.Build(sc.Triangles(0), cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				renderFrame(tree, sc)
			}
		})
	}
}

// BenchmarkSortOnceVsPerNode contrasts the two Wald–Havran formulations:
// the per-node-sort recursion the paper's node-level variant uses (§IV-A,
// O(N log² N)) against the sort-once event-splicing O(N log N) build.
func BenchmarkSortOnceVsPerNode(b *testing.B) {
	sc := cachedScene(b, "Sponza")
	tris := sc.Triangles(0)
	for _, algo := range []kdtree.Algorithm{kdtree.AlgoNodeLevel, kdtree.AlgoSortOnce} {
		b.Run(algo.String(), func(b *testing.B) {
			cfg := kdtree.BaseConfig(algo)
			for i := 0; i < b.N; i++ {
				kdtree.Build(tris, cfg)
			}
		})
	}
}

// BenchmarkKDTreeVsBVH puts the paper's structure next to the other
// standard acceleration structure (the related work's BVH): build cost and
// closest-hit traversal cost on the same scene.
func BenchmarkKDTreeVsBVH(b *testing.B) {
	sc := cachedScene(b, "Toasters")
	tris := sc.Triangles(0)
	rays := make([]vecmath.Ray, 1024)
	for i := range rays {
		h := uint64(i)*0x9E3779B97F4A7C15 + 7
		f := func() float64 { h ^= h >> 29; h *= 0xBF58476D1CE4E5B9; return float64(h%2000)/1000 - 1 }
		rays[i] = vecmath.NewRay(vecmath.V(-12, 3, 0), vecmath.V(1, f()*0.4, f()*0.4))
	}
	b.Run("kdtree/build", func(b *testing.B) {
		cfg := kdtree.BaseConfig(kdtree.AlgoInPlace)
		for i := 0; i < b.N; i++ {
			kdtree.Build(tris, cfg)
		}
	})
	b.Run("bvh/build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bvh.Build(tris, bvh.Config{})
		}
	})
	kd := kdtree.Build(tris, kdtree.BaseConfig(kdtree.AlgoInPlace))
	bv := bvh.Build(tris, bvh.Config{})
	b.Run("kdtree/intersect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kd.Intersect(rays[i%len(rays)], 1e-9, math.Inf(1))
		}
	})
	b.Run("bvh/intersect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bv.Intersect(rays[i%len(rays)], 1e-9, math.Inf(1))
		}
	})
}

// BenchmarkOracleReference measures the linear-scan reference intersector
// of the differential oracle (internal/oracle): the cost ceiling any
// kD-tree traversal must beat, and the price of one oracle validation ray.
func BenchmarkOracleReference(b *testing.B) {
	sc := cachedScene(b, "Toasters")
	tris := sc.Triangles(0)
	opts := oracle.Options{CameraRays: 128, RandomRays: 128, Seed: 1}
	rays := oracle.SceneRays(sc, 0, oracle.BoundsOf(tris), opts)
	ref := oracle.NewReference(tris, rays, 1e-9, math.Inf(1), opts)
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			oracle.NewReference(tris, rays, 1e-9, math.Inf(1), opts)
		}
	})
	b.Run("check-tree", func(b *testing.B) {
		tree := kdtree.Build(tris, kdtree.BaseConfig(kdtree.AlgoInPlace))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ref.CheckTree(tree, "bench"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
