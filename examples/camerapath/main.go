// Camera path: the paper notes that "camera positioning, system load and
// other environment effects all influence the optimal configuration", which
// is why it tunes online even for static geometry. This example walks the
// camera through the Sibenik stand-in — wide nave view, then pressed up
// against a column (heavy occlusion) — with the lazy builder and drift
// detection enabled, and reports how the tuner reacts when the context
// flips.
package main

import (
	"fmt"
	"math"
	"time"

	"kdtune"
)

func main() {
	sc, err := kdtune.SceneByName("Sibenik")
	if err != nil {
		panic(err)
	}
	base := sc.View

	// 40 frames: the first half sweeps down the nave, the second half sits
	// almost inside a column so nearly everything is occluded.
	const frames = 40
	sc.WithCameraPath(frames, func(f int) kdtune.View {
		v := base
		if f < frames/2 {
			t := float64(f) / (frames / 2)
			v.Eye = base.Eye.Add(kdtune.V(8*t, 0.5*math.Sin(t*3), 0))
		} else {
			// Hard against the first column row: the occlusion regime.
			v.Eye = kdtune.V(-9.5, 2.0, -2.6)
			v.LookAt = kdtune.V(-9.0, 2.0, -2.75)
		}
		return v
	})

	fmt.Println("scene:", sc, "with a 2-phase camera path (nave sweep, then occluded close-up)")
	res := kdtune.RunExperiment(kdtune.RunConfig{
		Scene:     sc,
		Algorithm: kdtune.AlgoLazy,
		Search:    kdtune.SearchNelderMead,
		Width:     128, Height: 96,
		MaxIterations:   60,
		Seed:            5,
		RetuneThreshold: 1.5, RetuneWindow: 4,
	})

	for i, f := range res.Frames {
		if i%6 != 0 {
			continue
		}
		phase := "nave sweep "
		if f.FrameIndex >= frames/2 {
			phase = "occluded   "
		}
		fmt.Printf("iter %2d  frame %2d  %s C=(%3d,%2d,%d,%4d)  total %8s\n",
			f.Iteration, f.FrameIndex, phase, f.CI, f.CB, f.S, f.R,
			f.Total.Round(time.Millisecond))
	}
	fmt.Printf("\nbest configuration found: C=(%d,%d,%d,%d)\n",
		res.BestCI, res.BestCB, res.BestS, res.BestR)
	fmt.Println("note how the occluded phase favours large R (lazier trees):")
	fmt.Println("rays never reach most of the cathedral, so unbuilt subtrees are free.")
}
