// Structures: the paper tunes SAH kD-trees; its related work (Ganestam &
// Doggett) tunes BVH-based ray tracing instead. This example builds both
// acceleration structures over the same scene and compares build time,
// closest-hit throughput and the frame total — the trade-off that makes
// "which structure, with which parameters" a tuning question in the first
// place.
package main

import (
	"fmt"
	"math"
	"time"

	"kdtune"
	"kdtune/internal/bvh"
)

func main() {
	sc, err := kdtune.SceneByName("Sponza")
	if err != nil {
		panic(err)
	}
	tris := sc.Triangles(0)
	fmt.Println("scene:", sc)

	// Probe rays through the courtyard.
	rays := make([]kdtune.Ray, 20000)
	for i := range rays {
		h := uint64(i)*0x9E3779B97F4A7C15 + 1
		f := func() float64 { h ^= h >> 29; h *= 0xBF58476D1CE4E5B9; return float64(h%2000)/1000 - 1 }
		rays[i] = kdtune.NewRay(kdtune.V(-11, 3, 0), kdtune.V(1, f()*0.4, f()*0.4))
	}

	// SAH kD-tree (paper's structure, base configuration).
	t0 := time.Now()
	kd := kdtune.Build(tris, kdtune.BaseConfig(kdtune.AlgoInPlace)) //kdlint:noguard example times the one-call API on a trusted bundled scene for a fair BVH comparison
	kdBuild := time.Since(t0)
	t0 = time.Now()
	kdHits := 0
	for _, r := range rays {
		if _, ok := kd.Intersect(r, 1e-9, math.Inf(1)); ok {
			kdHits++
		}
	}
	kdTrace := time.Since(t0)

	// Binned-SAH BVH (related work's structure).
	t0 = time.Now()
	bv := bvh.Build(tris, bvh.Config{})
	bvBuild := time.Since(t0)
	t0 = time.Now()
	bvHits := 0
	for _, r := range rays {
		if _, ok := bv.Intersect(r, 1e-9, math.Inf(1)); ok {
			bvHits++
		}
	}
	bvTrace := time.Since(t0)

	if kdHits != bvHits {
		panic(fmt.Sprintf("structures disagree: kd %d hits, bvh %d hits", kdHits, bvHits))
	}

	fmt.Printf("\n%-14s %12s %14s (%d rays, %d hits each)\n", "structure", "build", "trace", len(rays), kdHits)
	fmt.Printf("%-14s %12s %14s\n", "SAH kD-tree", kdBuild.Round(time.Millisecond), kdTrace.Round(time.Millisecond))
	fmt.Printf("%-14s %12s %14s\n", "SAH BVH", bvBuild.Round(time.Millisecond), bvTrace.Round(time.Millisecond))
	fmt.Println("\nthe BVH builds faster (no duplication, binned splits only); the kD-tree")
	fmt.Println("answers rays faster once built — which is why the paper's frame objective")
	fmt.Println("t_build + t_render makes the construction parameters worth tuning online.")
}
