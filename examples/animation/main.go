// Animation: the paper's core use case — online-autotuning the kD-tree
// build inside an animated frame loop. The geometry changes every frame, so
// the tree is rebuilt per frame and the tuner adapts CI/CB/S while frames
// play (Figure 4 workflow, on the Wood Doll stand-in).
package main

import (
	"fmt"
	"time"

	"kdtune"
)

func main() {
	sc, err := kdtune.SceneByName("WoodDoll")
	if err != nil {
		panic(err)
	}
	fmt.Println("scene:", sc)

	// Register the Table-I parameters through a tunable registry, exactly as
	// a client application would (paper Figure 1): each subsystem declares
	// its tunables (name, target, range, scale hint) against the registry,
	// and the tuner composes its search space from it.
	ci, cb, s := 17, 10, 3
	reg := kdtune.NewTunableRegistry()
	must(reg.Register(kdtune.Tunable{Name: "CI", Target: &ci, Min: 3, Max: 101, Step: 1,
		Desc: "SAH triangle intersection cost"}))
	must(reg.Register(kdtune.Tunable{Name: "CB", Target: &cb, Min: 0, Max: 60, Step: 1,
		Desc: "SAH primitive duplication cost"}))
	must(reg.Register(kdtune.Tunable{Name: "S", Target: &s, Min: 1, Max: 8, Step: 1,
		Desc: "max subtrees per thread"}))
	tuner := kdtune.NewTuner(kdtune.TunerOptions{Seed: 42})
	must(tuner.RegisterAll(reg))

	lights := sc.Lights

	// One retained Builder for the whole animation: its arenas are reused
	// across frames, so steady-state rebuilds allocate (almost) nothing, and
	// the guarded entry keeps a pathological configuration from wedging the
	// frame loop.
	builder := kdtune.NewBuilder()

	const cycles = 60
	for iter := 0; iter < cycles; iter++ {
		frame := (iter / 2) % sc.Frames // each frame shown twice

		tuner.Start() // applies the configuration under test to ci/cb/s

		cfg := kdtune.Config{
			Algorithm: kdtune.AlgoNested,
			CI:        float64(ci), CB: float64(cb), S: s,
		}
		tris := sc.Triangles(frame)
		tree, err := builder.BuildGuarded(tris, cfg, kdtune.Guard{})
		if err != nil {
			panic(err)
		}
		_, _ = kdtune.Render(tree, sc.View, lights,
			kdtune.RenderOptions{Width: 96, Height: 72})

		tuner.Stop() // records t_build + t_render, picks the next config

		if iter%10 == 9 {
			conv := ""
			if tuner.Converged() {
				conv = " (converged)"
			}
			fmt.Printf("cycle %2d: trying C=(CI=%d, CB=%d, S=%d)%s\n", iter+1, ci, cb, s, conv)
		}
	}

	if best, cost, ok := tuner.Best(); ok {
		fmt.Printf("\nafter %d cycles: best C=(CI=%d, CB=%d, S=%d), frame time %v\n",
			tuner.Iterations(), best[0], best[1], best[2],
			time.Duration(cost).Round(time.Millisecond))
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
