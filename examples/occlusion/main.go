// Occlusion: the lazy builder's corner case (paper §IV-D and the Fairy
// Forest scene). With the camera pressed against one object, almost no rays
// reach the rest of the scene, so deferring subtree construction until a
// ray actually arrives skips most of the build. This example contrasts the
// eager in-place builder with the lazy one on the Fairy Forest stand-in and
// shows how many suspended subtrees a frame actually expands.
package main

import (
	"fmt"
	"time"

	"kdtune"
)

func main() {
	sc, err := kdtune.SceneByName("FairyForest")
	if err != nil {
		panic(err)
	}
	fmt.Println("scene:", sc)
	tris := sc.Triangles(0)
	opts := kdtune.RenderOptions{Width: 160, Height: 120}

	// Eager baseline: the in-place parallel builder constructs everything.
	eager := kdtune.BaseConfig(kdtune.AlgoInPlace)
	t0 := time.Now()
	eagerTree := kdtune.Build(tris, eager) //kdlint:noguard example times the one-call API on trusted bundled scenes; guarding is the animation example's subject
	eagerBuild := time.Since(t0)
	t0 = time.Now()
	kdtune.Render(eagerTree, sc.View, sc.Lights, opts)
	eagerRender := time.Since(t0)
	fmt.Printf("\nin-place: build %8s  render %8s  total %8s\n",
		eagerBuild.Round(time.Millisecond), eagerRender.Round(time.Millisecond),
		(eagerBuild + eagerRender).Round(time.Millisecond))

	// Lazy: nodes under R primitives stay suspended until a ray hits them.
	for _, r := range []int{256, 1024, 4096} {
		lazy := kdtune.BaseConfig(kdtune.AlgoLazy)
		lazy.R = r
		t0 = time.Now()
		lazyTree := kdtune.Build(tris, lazy) //kdlint:noguard example times the one-call API on trusted bundled scenes; guarding is the animation example's subject
		lazyBuild := time.Since(t0)
		t0 = time.Now()
		kdtune.Render(lazyTree, sc.View, sc.Lights, opts)
		lazyRender := time.Since(t0)
		fmt.Printf("lazy R=%4d: build %8s  render %8s  total %8s  (expanded %d of %d deferred subtrees)\n",
			r, lazyBuild.Round(time.Millisecond), lazyRender.Round(time.Millisecond),
			(lazyBuild + lazyRender).Round(time.Millisecond),
			lazyTree.NumExpanded(), lazyTree.NumDeferred())
	}

	fmt.Println("\nmost of the forest is occluded by the mushroom cap, so the")
	fmt.Println("lazy builder never pays for subtrees no ray ever enters.")
}
