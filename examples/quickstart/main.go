// Quickstart: build an SAH kD-tree over a small scene, shoot a few rays,
// and render a thumbnail — the minimal tour of the kdtune public API.
package main

import (
	"fmt"
	"math"
	"os"

	"kdtune"
)

func main() {
	// A tiny scene: a pyramid over a ground quad.
	tris := []kdtune.Triangle{
		// ground
		kdtune.Tri(kdtune.V(-2, 0, -2), kdtune.V(2, 0, -2), kdtune.V(2, 0, 2)),
		kdtune.Tri(kdtune.V(-2, 0, -2), kdtune.V(2, 0, 2), kdtune.V(-2, 0, 2)),
		// pyramid sides
		kdtune.Tri(kdtune.V(-1, 0, -1), kdtune.V(1, 0, -1), kdtune.V(0, 1.5, 0)),
		kdtune.Tri(kdtune.V(1, 0, -1), kdtune.V(1, 0, 1), kdtune.V(0, 1.5, 0)),
		kdtune.Tri(kdtune.V(1, 0, 1), kdtune.V(-1, 0, 1), kdtune.V(0, 1.5, 0)),
		kdtune.Tri(kdtune.V(-1, 0, 1), kdtune.V(-1, 0, -1), kdtune.V(0, 1.5, 0)),
	}

	// Build with the paper's base configuration and the in-place builder.
	cfg := kdtune.BaseConfig(kdtune.AlgoInPlace)
	tree := kdtune.Build(tris, cfg) //kdlint:noguard quickstart shows the simplest one-call API; the animation example demonstrates the guarded frame loop
	fmt.Println("built:", tree.Stats())

	// Closest-hit query.
	ray := kdtune.NewRay(kdtune.V(0, 0.5, -5), kdtune.V(0, 0, 1))
	if hit, ok := kdtune.IntersectClosest(tree, ray); ok {
		fmt.Printf("ray hit triangle %d at t=%.3f\n", hit.Tri, hit.T)
	}

	// Occlusion query (shadow ray): a point inside the pyramid looking up
	// through the sloped east face.
	shadow := kdtune.NewRay(kdtune.V(0.3, 0.1, 0), kdtune.V(0, 1, 0))
	fmt.Println("point under the pyramid is shadowed:",
		tree.Occluded(shadow, 1e-9, math.Inf(1)))

	// Render a thumbnail to PPM.
	view := kdtune.View{
		Eye: kdtune.V(3, 2.5, -3), LookAt: kdtune.V(0, 0.4, 0),
		Up: kdtune.V(0, 1, 0), FOV: 45,
	}
	im, stats := kdtune.Render(tree, view, []kdtune.Vec3{kdtune.V(4, 6, -2)},
		kdtune.RenderOptions{Width: 160, Height: 120})
	f, err := os.Create("quickstart.ppm")
	if err != nil {
		panic(err)
	}
	defer f.Close()
	if err := im.WritePPM(f); err != nil {
		panic(err)
	}
	fmt.Printf("rendered %d rays (%d hits) to quickstart.ppm\n",
		stats.PrimaryRays, stats.Hits)
}
