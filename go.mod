module kdtune

go 1.22
