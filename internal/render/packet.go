package render

import (
	"math"
	"sync"
	"sync/atomic"

	"kdtune/internal/faultinject"
	"kdtune/internal/kdtree"
	"kdtune/internal/parallel"
	"kdtune/internal/vecmath"
)

// Packet rendering: the image is decomposed into TileSize×TileSize tiles,
// each tile's pixels are walked in row-major order, and every PacketWidth
// consecutive primary rays are traced through the tree as one coherent
// packet (kdtree.IntersectPacket); shadow rays are likewise bundled per
// light across the packet's hit lanes. Per-pixel arithmetic — ray setup,
// shading terms, accumulation order — is exactly the scalar path's, and
// packet traversal is bitwise-identical to scalar traversal per lane, so
// the framebuffer is bitwise equal to a scalar render of the same options.
// Tiles are distributed across workers exactly like scalar rows, and every
// pixel belongs to exactly one tile, so output is also independent of the
// worker count.

// packetCtx is the per-goroutine scratch of the packet path, pooled so the
// steady state of a frame loop allocates nothing (precedent: the pooled SAH
// bin sets). All arrays are lane-indexed.
type packetCtx struct {
	ps     kdtree.PacketScratch
	rays   [kdtree.MaxPacketWidth]vecmath.Ray
	px, py [kdtree.MaxPacketWidth]int

	hits  [kdtree.MaxPacketWidth]kdtree.Hit
	ok    [kdtree.MaxPacketWidth]bool
	point [kdtree.MaxPacketWidth]vecmath.Vec3
	norm  [kdtree.MaxPacketWidth]vecmath.Vec3
	shade [kdtree.MaxPacketWidth]float64
	cosv  [kdtree.MaxPacketWidth]float64

	sRays [kdtree.MaxPacketWidth]vecmath.Ray
	sLane [kdtree.MaxPacketWidth]int
}

var packetCtxPool = sync.Pool{New: func() any { return new(packetCtx) }}

func renderPackets(im *Image, tree *kdtree.Tree, cam Camera, lights []vecmath.Vec3, opt Options, eps float64) RenderStats {
	tris := tree.Triangles()
	tile := opt.TileSize
	tilesX := (opt.Width + tile - 1) / tile
	tilesY := (opt.Height + tile - 1) / tile

	var primary, shadow, hits, packets, demotions, packetRays atomic.Int64

	// Parallelise across tiles: like the scalar path's rows, tiles are a
	// disjoint partition of the image, so worker count cannot change pixels.
	// A nil opt.Cancel never cancels; a linked one drains at the next tile.
	parallel.ForCancel(opt.Cancel, tilesX*tilesY, opt.Workers, func(lo, hi int) {
		ctx := packetCtxPool.Get().(*packetCtx)
		local := RenderStats{}
		for ti := lo; ti < hi; ti++ {
			if opt.Cancel.Canceled() {
				break
			}
			if faultinject.Active() {
				faultinject.Check(faultinject.SiteRenderTile, ti)
			}
			x0 := (ti % tilesX) * tile
			y0 := (ti / tilesX) * tile
			x1 := min(x0+tile, opt.Width)
			y1 := min(y0+tile, opt.Height)
			renderTile(im, tree, tris, cam, lights, opt, eps, ctx, &local, x0, y0, x1, y1)
		}
		primary.Add(int64(local.PrimaryRays))
		shadow.Add(int64(local.ShadowRays))
		hits.Add(int64(local.Hits))
		packets.Add(int64(local.Packets))
		demotions.Add(int64(local.Demotions))
		packetRays.Add(int64(local.PacketRays))
		packetCtxPool.Put(ctx)
	})
	return RenderStats{
		PrimaryRays: int(primary.Load()),
		ShadowRays:  int(shadow.Load()),
		Hits:        int(hits.Load()),
		Packets:     int(packets.Load()),
		Demotions:   int(demotions.Load()),
		PacketRays:  int(packetRays.Load()),
		Canceled:    opt.Cancel.Canceled(),
	}
}

// renderTile gathers the tile's pixels into packets of opt.PacketWidth
// consecutive rays (row-major within the tile; the last packet of a tile is
// ragged) and shades each packet.
func renderTile(im *Image, tree *kdtree.Tree, tris []vecmath.Triangle, cam Camera, lights []vecmath.Vec3, opt Options, eps float64, ctx *packetCtx, local *RenderStats, x0, y0, x1, y1 int) {
	w := opt.PacketWidth
	n := 0
	for y := y0; y < y1; y++ {
		// Same sub-pixel arithmetic as the scalar path with Samples == 1.
		t := (float64(y) + 0.5) / float64(opt.Height)
		rowBase := cam.RowBase(t)
		for x := x0; x < x1; x++ {
			s := (float64(x) + 0.5) / float64(opt.Width)
			ctx.rays[n] = cam.RayAt(rowBase, s)
			ctx.px[n], ctx.py[n] = x, y
			n++
			if n == w {
				shadePacket(im, tree, tris, lights, opt, eps, ctx, local, n)
				n = 0
			}
		}
	}
	if n > 0 {
		shadePacket(im, tree, tris, lights, opt, eps, ctx, local, n)
	}
}

// shadePacket traces one primary packet and shades its lanes, bundling the
// shadow rays of each light into packets over the lanes that need them. The
// per-pixel operations and their order replicate the scalar path exactly.
func shadePacket(im *Image, tree *kdtree.Tree, tris []vecmath.Triangle, lights []vecmath.Vec3, opt Options, eps float64, ctx *packetCtx, local *RenderStats, n int) {
	rays := ctx.rays[:n]
	local.PrimaryRays += n
	local.Packets++
	local.PacketRays += n
	local.Demotions += tree.IntersectPacket(&ctx.ps, rays, 1e-9, math.Inf(1))

	// Snapshot results: ctx.ps is reused by the shadow packets below.
	for l := 0; l < n; l++ {
		ctx.hits[l] = ctx.ps.Hits[l]
		ctx.ok[l] = ctx.ps.Ok[l]
		if !ctx.ok[l] {
			continue
		}
		local.Hits++
		p := rays[l].At(ctx.hits[l].T)
		nrm := tris[ctx.hits[l].Tri].UnitNormal()
		if nrm.Dot(rays[l].Dir) > 0 {
			nrm = nrm.Neg() // two-sided shading
		}
		ctx.point[l] = p
		ctx.norm[l] = nrm
		ctx.shade[l] = opt.Ambient
	}

	// Lambert shading with shadow packets to every light, accumulating
	// contributions per lane in light order (the scalar loop order).
	for _, lgt := range lights {
		m := 0
		for l := 0; l < n; l++ {
			if !ctx.ok[l] {
				continue
			}
			toLight := lgt.Sub(ctx.point[l])
			cos := ctx.norm[l].Dot(toLight.Normalize())
			if cos <= 0 {
				continue
			}
			local.ShadowRays++
			ctx.cosv[l] = cos
			ctx.sRays[m] = vecmath.Towards(ctx.point[l].Add(ctx.norm[l].Scale(eps)), lgt)
			ctx.sLane[m] = l
			m++
		}
		if m == 0 {
			continue
		}
		local.Packets++
		local.PacketRays += m
		local.Demotions += tree.OccludedPacket(&ctx.ps, ctx.sRays[:m], 1e-9, 1-1e-9)
		for k := 0; k < m; k++ {
			l := ctx.sLane[k]
			if !ctx.ps.Occ[k] {
				ctx.shade[l] += ctx.cosv[l] / float64(len(lights)) * 0.9
			}
		}
	}

	for l := 0; l < n; l++ {
		if !ctx.ok[l] {
			im.set(ctx.px[l], ctx.py[l], 0.05, 0.05, 0.08) // background
			continue
		}
		cr, cg, cb := triColor(ctx.hits[l].Tri)
		im.set(ctx.px[l], ctx.py[l], ctx.shade[l]*cr, ctx.shade[l]*cg, ctx.shade[l]*cb)
	}
}
