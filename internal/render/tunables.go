package render

import (
	"kdtune/internal/autotune"
	"kdtune/internal/kdtree"
)

// RegisterTunables registers the render-side tunables — packet width P and
// tile size T — with the registry, so the traversal knobs introduced with
// packet rendering go through the same registration mechanism as the
// build-side parameters. The targets are the caller's ints threaded into
// Options.PacketWidth/TileSize per frame. P=1 disables packets entirely
// (the scalar path), which keeps "no packets" inside the search space.
func RegisterTunables(reg *autotune.Registry, packetWidth, tileSize *int) error {
	if err := reg.Register(autotune.Tunable{
		Name: "P", Target: packetWidth, Min: 1, Max: kdtree.MaxPacketWidth,
		Scale: autotune.ScalePow2,
		Desc:  "coherent rays per traversal packet (1 = scalar path)",
	}); err != nil {
		return err
	}
	return reg.Register(autotune.Tunable{
		Name: "T", Target: tileSize, Min: 8, Max: 64,
		Scale: autotune.ScalePow2,
		Desc:  "square tile edge of the packet renderer's image decomposition",
	})
}
