package render

import (
	"testing"

	"kdtune/internal/kdtree"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// shadowScene is the floor scene plus an off-frustum blocker so packet
// frames exercise both the primary and the shadow packet paths with a mix
// of lit, shadowed and background pixels.
func shadowScene() (*kdtree.Tree, scene.View, []vecmath.Vec3) {
	tris, view, lights := floorScene()
	tris = append(tris,
		vecmath.Tri(vecmath.V(-0.5, 8, -0.5), vecmath.V(0.5, 8, -0.5), vecmath.V(0.5, 8, 0.5)),
		vecmath.Tri(vecmath.V(-0.5, 8, -0.5), vecmath.V(0.5, 8, 0.5), vecmath.V(-0.5, 8, 0.5)),
	)
	return buildTree(tris), view, lights
}

// TestPacketRenderMatchesScalar: the packet path is a pure speed knob — for
// every packet width and tile size (including tiles that do not divide the
// frame, forcing ragged packets) the frame must be bitwise identical to the
// scalar render, and the hit statistics must agree.
func TestPacketRenderMatchesScalar(t *testing.T) {
	tree, view, lights := shadowScene()
	opt := Options{Width: 64, Height: 48, Workers: 4}
	want, wstats := Render(tree, view, lights, opt)

	for _, pw := range []int{4, 8, 16} {
		for _, ts := range []int{7, 16, 64} {
			opt := opt
			opt.PacketWidth = pw
			opt.TileSize = ts
			im, stats := Render(tree, view, lights, opt)
			for i := range want.Pix {
				if im.Pix[i] != want.Pix[i] {
					t.Fatalf("P=%d T=%d: pixel %d differs from scalar render", pw, ts, i)
				}
			}
			if stats.PrimaryRays != wstats.PrimaryRays || stats.Hits != wstats.Hits || stats.ShadowRays != wstats.ShadowRays {
				t.Fatalf("P=%d T=%d: stats %+v disagree with scalar %+v", pw, ts, stats, wstats)
			}
			if stats.Packets == 0 || stats.PacketRays == 0 {
				t.Fatalf("P=%d T=%d: packet path did not run (stats %+v)", pw, ts, stats)
			}
			if stats.PacketRays < stats.PrimaryRays {
				t.Fatalf("P=%d T=%d: PacketRays %d < PrimaryRays %d — primaries escaped the packet path",
					pw, ts, stats.PacketRays, stats.PrimaryRays)
			}
		}
	}
	if wstats.Packets != 0 || wstats.PacketRays != 0 || wstats.Demotions != 0 {
		t.Fatalf("scalar render reported packet counters: %+v", wstats)
	}
}

// TestPacketRenderRealScene repeats the bitwise-identity check on a real
// mesh across all builders, where rays actually diverge and demotion fires.
func TestPacketRenderRealScene(t *testing.T) {
	s := scene.WoodDoll()
	tris := s.Triangles(0)
	for _, a := range kdtree.Algorithms {
		cfg := kdtree.BaseConfig(a)
		cfg.Workers = 4
		tree := kdtree.Build(tris, cfg)
		opt := Options{Width: 48, Height: 36, Workers: 4}
		want, _ := Render(tree, s.View, s.Lights, opt)
		opt.PacketWidth = 8
		opt.TileSize = 16
		im, _ := Render(tree, s.View, s.Lights, opt)
		for i := range want.Pix {
			if im.Pix[i] != want.Pix[i] {
				t.Fatalf("%v: pixel %d differs between packet and scalar render", a, i)
			}
		}
	}
}

// TestPacketRenderDeterministicAcrossWorkers: tile scheduling order must not
// leak into the image.
func TestPacketRenderDeterministicAcrossWorkers(t *testing.T) {
	tree, view, lights := shadowScene()
	opt := Options{Width: 40, Height: 30, PacketWidth: 8, TileSize: 13}
	opt.Workers = 1
	im1, _ := Render(tree, view, lights, opt)
	for _, w := range []int{2, 8} {
		opt.Workers = w
		im, _ := Render(tree, view, lights, opt)
		for i := range im1.Pix {
			if im.Pix[i] != im1.Pix[i] {
				t.Fatalf("workers=%d: pixel %d differs from workers=1", w, i)
			}
		}
	}
}

// TestPacketSupersamplingFallsBackToScalar: packets only apply at Samples==1;
// a supersampled render with PacketWidth set must silently take the scalar
// path and match a plain supersampled render exactly.
func TestPacketSupersamplingFallsBackToScalar(t *testing.T) {
	tree, view, lights := shadowScene()
	want, _ := Render(tree, view, lights, Options{Width: 32, Height: 24, Samples: 2})
	im, stats := Render(tree, view, lights, Options{Width: 32, Height: 24, Samples: 2, PacketWidth: 16})
	if stats.Packets != 0 || stats.PacketRays != 0 {
		t.Fatalf("supersampled render used the packet path: %+v", stats)
	}
	for i := range want.Pix {
		if im.Pix[i] != want.Pix[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
}

// TestPacketRenderIntoReuse: RenderInto with the packet path must be safe to
// call repeatedly into the same image and keep producing identical frames
// (the pooled per-tile scratch must not leak state between frames).
func TestPacketRenderIntoReuse(t *testing.T) {
	tree, view, lights := shadowScene()
	opt := Options{Width: 40, Height: 30, Workers: 4, PacketWidth: 8, TileSize: 16}
	im := NewImage(opt.Width, opt.Height)
	stats0 := RenderInto(im, tree, view, lights, opt)
	first := append([]float64(nil), im.Pix...)
	for frame := 0; frame < 3; frame++ {
		stats := RenderInto(im, tree, view, lights, opt)
		if stats != stats0 {
			t.Fatalf("frame %d: stats %+v != first frame %+v", frame, stats, stats0)
		}
		for i := range first {
			if im.Pix[i] != first[i] {
				t.Fatalf("frame %d: pixel %d drifted", frame, i)
			}
		}
	}
}
