package render

import (
	"bytes"
	"image/png"
	"math"
	"testing"

	"kdtune/internal/kdtree"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// floorScene is a single bright quad below a camera looking down.
func floorScene() ([]vecmath.Triangle, scene.View, []vecmath.Vec3) {
	tris := []vecmath.Triangle{
		vecmath.Tri(vecmath.V(-5, 0, -5), vecmath.V(5, 0, -5), vecmath.V(5, 0, 5)),
		vecmath.Tri(vecmath.V(-5, 0, -5), vecmath.V(5, 0, 5), vecmath.V(-5, 0, 5)),
	}
	view := scene.View{
		Eye: vecmath.V(0, 5, 0.01), LookAt: vecmath.V(0, 0, 0), Up: vecmath.V(0, 1, 0), FOV: 60,
	}
	lights := []vecmath.Vec3{vecmath.V(0, 10, 0)}
	return tris, view, lights
}

func buildTree(tris []vecmath.Triangle) *kdtree.Tree {
	cfg := kdtree.BaseConfig(kdtree.AlgoNodeLevel)
	cfg.Workers = 4
	return kdtree.Build(tris, cfg)
}

func TestCameraRaysSpanFrustum(t *testing.T) {
	view := scene.View{Eye: vecmath.V(0, 0, 0), LookAt: vecmath.V(0, 0, -1), Up: vecmath.V(0, 1, 0), FOV: 90}
	cam := NewCamera(view, 1)
	center := cam.Ray(0.5, 0.5)
	if !center.Dir.Normalize().ApproxEq(vecmath.V(0, 0, -1), 1e-9) {
		t.Fatalf("center ray direction %v", center.Dir.Normalize())
	}
	// At 90° vertical FOV, the top-center ray makes 45° with the view axis.
	top := cam.Ray(0.5, 1.0).Dir.Normalize()
	if math.Abs(top.Y-math.Sqrt(0.5)) > 1e-9 {
		t.Fatalf("top ray Y = %v, want ~%v", top.Y, math.Sqrt(0.5))
	}
	left := cam.Ray(0, 0.5).Dir.Normalize()
	if left.X >= 0 {
		t.Fatalf("left ray should point left, got %v", left)
	}
}

func TestRenderFloorLitAboveBackgroundElsewhere(t *testing.T) {
	tris, view, lights := floorScene()
	tree := buildTree(tris)
	im, stats := Render(tree, view, lights, Options{Width: 64, Height: 48, Workers: 4})
	if stats.PrimaryRays != 64*48 {
		t.Fatalf("PrimaryRays = %d", stats.PrimaryRays)
	}
	if stats.Hits == 0 {
		t.Fatal("no hits on a floor filling the view")
	}
	// Center pixel sees the lit floor: noticeably brighter than ambient.
	r, g, b := im.At(32, 24)
	if r+g+b < 0.3 {
		t.Fatalf("center pixel too dark: %v %v %v", r, g, b)
	}
}

func TestRenderEmptySceneIsBackground(t *testing.T) {
	tree := buildTree(nil)
	view := scene.View{Eye: vecmath.V(0, 0, 0), LookAt: vecmath.V(0, 0, -1), Up: vecmath.V(0, 1, 0), FOV: 60}
	im, stats := Render(tree, view, nil, Options{Width: 16, Height: 16})
	if stats.Hits != 0 {
		t.Fatalf("hits in empty scene: %d", stats.Hits)
	}
	r, g, b := im.At(8, 8)
	if r != 0.05 || g != 0.05 || b != 0.08 {
		t.Fatalf("background colour wrong: %v %v %v", r, g, b)
	}
}

func TestShadowsDarkenOccludedRegion(t *testing.T) {
	// Floor plus a blocker ABOVE the camera (outside the frustum), between
	// the light at y=10 and the floor: its shadow covers the floor centre
	// (similar triangles: a 1x1 quad at y=8 shades ~5x5 at y=0) while the
	// blocker itself is never visible.
	tris, view, lights := floorScene()
	blocker := []vecmath.Triangle{
		vecmath.Tri(vecmath.V(-0.5, 8, -0.5), vecmath.V(0.5, 8, -0.5), vecmath.V(0.5, 8, 0.5)),
		vecmath.Tri(vecmath.V(-0.5, 8, -0.5), vecmath.V(0.5, 8, 0.5), vecmath.V(-0.5, 8, 0.5)),
	}
	treeNoBlock := buildTree(tris)
	treeBlock := buildTree(append(append([]vecmath.Triangle{}, tris...), blocker...))

	imLit, _ := Render(treeNoBlock, view, lights, Options{Width: 64, Height: 64})
	imShad, _ := Render(treeBlock, view, lights, Options{Width: 64, Height: 64})

	rl, gl, bl := imLit.At(32, 32)
	rs, gs, bs := imShad.At(32, 32)
	if rs+gs+bs >= rl+gl+bl {
		t.Fatalf("centre pixel not darkened by shadow: %v >= %v", rs+gs+bs, rl+gl+bl)
	}
	avg := func(im *Image) float64 {
		s := 0.0
		for _, p := range im.Pix {
			s += p
		}
		return s / float64(len(im.Pix))
	}
	if avg(imShad) >= avg(imLit) {
		t.Fatalf("blocker did not darken the image: %v >= %v", avg(imShad), avg(imLit))
	}
}

func TestRenderDeterministicAcrossWorkerCounts(t *testing.T) {
	tris, view, lights := floorScene()
	tree := buildTree(tris)
	im1, _ := Render(tree, view, lights, Options{Width: 40, Height: 30, Workers: 1})
	im8, _ := Render(tree, view, lights, Options{Width: 40, Height: 30, Workers: 8})
	for i := range im1.Pix {
		if im1.Pix[i] != im8.Pix[i] {
			t.Fatalf("pixel data differs between worker counts at %d", i)
		}
	}
}

func TestRenderOnRealSceneAllAlgorithms(t *testing.T) {
	s := scene.WoodDoll()
	tris := s.Triangles(0)
	for _, a := range kdtree.Algorithms {
		cfg := kdtree.BaseConfig(a)
		cfg.Workers = 4
		cfg.R = 64
		tree := kdtree.Build(tris, cfg)
		_, stats := Render(tree, s.View, s.Lights, Options{Width: 48, Height: 36, Workers: 4})
		if stats.Hits == 0 {
			t.Fatalf("%v: camera sees nothing of WoodDoll", a)
		}
		frac := float64(stats.Hits) / float64(stats.PrimaryRays)
		if frac < 0.2 {
			t.Fatalf("%v: only %.0f%% of rays hit; camera badly placed", a, 100*frac)
		}
	}
}

func TestRendersAgreeAcrossAlgorithms(t *testing.T) {
	s := scene.WoodDoll()
	tris := s.Triangles(3)
	var ref *Image
	for _, a := range kdtree.Algorithms {
		cfg := kdtree.BaseConfig(a)
		cfg.Workers = 4
		cfg.R = 64
		tree := kdtree.Build(tris, cfg)
		im, _ := Render(tree, s.View, s.Lights, Options{Width: 32, Height: 24})
		if ref == nil {
			ref = im
			continue
		}
		diff := 0
		for i := range im.Pix {
			if math.Abs(im.Pix[i]-ref.Pix[i]) > 1e-9 {
				diff++
			}
		}
		// Identical-distance hits may shade with a different triangle's
		// colour; allow a small fraction of differing components.
		if float64(diff) > 0.01*float64(len(im.Pix)) {
			t.Fatalf("%v: %d/%d pixel components differ from node-level render", a, diff, len(im.Pix))
		}
	}
}

func TestWritePPM(t *testing.T) {
	im := NewImage(4, 2)
	im.set(0, 1, 1, 0, 0) // top-left red after flip
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P6\n4 2\n255\n")) {
		t.Fatalf("bad PPM header: %q", data[:12])
	}
	body := data[len("P6\n4 2\n255\n"):]
	if len(body) != 3*4*2 {
		t.Fatalf("PPM body length %d", len(body))
	}
	if body[0] != 255 || body[1] != 0 {
		t.Fatalf("top-left pixel wrong: %v", body[:3])
	}
}

func TestClamp8(t *testing.T) {
	if clamp8(-1) != 0 || clamp8(2) != 255 || clamp8(0.5) != 127 {
		t.Fatal("clamp8 wrong")
	}
}

func TestImageAccessors(t *testing.T) {
	im := NewImage(3, 3)
	im.set(1, 2, 0.1, 0.2, 0.3)
	r, g, b := im.At(1, 2)
	if r != 0.1 || g != 0.2 || b != 0.3 {
		t.Fatal("set/At mismatch")
	}
}

func TestWritePNG(t *testing.T) {
	im := NewImage(8, 6)
	im.set(0, 5, 1, 0, 0) // top-left red in image coordinates
	var buf bytes.Buffer
	if err := im.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 8 || decoded.Bounds().Dy() != 6 {
		t.Fatalf("decoded bounds %v", decoded.Bounds())
	}
	r, g, b, a := decoded.At(0, 0).RGBA()
	if r != 0xFFFF || g != 0 || b != 0 || a != 0xFFFF {
		t.Fatalf("top-left pixel = %v %v %v %v, want opaque red", r, g, b, a)
	}
}

func TestSupersamplingCountsAndSmooths(t *testing.T) {
	tris, view, lights := floorScene()
	tree := buildTree(tris)
	im1, s1 := Render(tree, view, lights, Options{Width: 24, Height: 18, Samples: 1})
	im3, s3 := Render(tree, view, lights, Options{Width: 24, Height: 18, Samples: 3})
	if s3.PrimaryRays != 9*s1.PrimaryRays {
		t.Fatalf("3x3 supersampling traced %d rays, want %d", s3.PrimaryRays, 9*s1.PrimaryRays)
	}
	// Averaging 9 rays of the same flat floor shouldn't change much.
	for i := range im1.Pix {
		if math.Abs(im1.Pix[i]-im3.Pix[i]) > 0.2 {
			t.Fatalf("supersampled pixel %d deviates: %v vs %v", i, im3.Pix[i], im1.Pix[i])
		}
	}
}

func TestRenderOptionDefaults(t *testing.T) {
	tris, view, lights := floorScene()
	tree := buildTree(tris)
	im, stats := Render(tree, view, lights, Options{})
	if im.W != 256 || im.H != 192 {
		t.Fatalf("default size %dx%d", im.W, im.H)
	}
	if stats.PrimaryRays != 256*192 {
		t.Fatalf("default sampling traced %d rays", stats.PrimaryRays)
	}
	// Custom ambient brightens unlit pixels.
	imA, _ := Render(tree, view, nil, Options{Width: 8, Height: 8, Ambient: 0.9})
	imB, _ := Render(tree, view, nil, Options{Width: 8, Height: 8, Ambient: 0.1})
	ra, _, _ := imA.At(4, 4)
	rb, _, _ := imB.At(4, 4)
	if ra <= rb {
		t.Fatalf("ambient had no effect: %v <= %v", ra, rb)
	}
}
