package render

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"kdtune/internal/faultinject"
	"kdtune/internal/kdtree"
	"kdtune/internal/parallel"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// Image is a simple float RGB framebuffer.
type Image struct {
	W, H int
	Pix  []float64 // 3*W*H, row-major, bottom row first
}

// NewImage allocates a black framebuffer.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, 3*w*h)}
}

// reshape resizes the framebuffer in place, reallocating only on growth —
// the frame loop renders into the same Image every frame.
func (im *Image) reshape(w, h int) {
	im.W, im.H = w, h
	n := 3 * w * h
	if cap(im.Pix) < n {
		im.Pix = make([]float64, n)
		return
	}
	im.Pix = im.Pix[:n]
}

// set stores an RGB triple at pixel (x, y).
func (im *Image) set(x, y int, r, g, b float64) {
	i := 3 * (y*im.W + x)
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// At returns the RGB triple at pixel (x, y).
func (im *Image) At(x, y int) (r, g, b float64) {
	i := 3 * (y*im.W + x)
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// WritePPM encodes the framebuffer as a binary PPM (P6) with simple
// clamping; enough to eyeball renders without third-party codecs.
func (im *Image) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	row := make([]byte, 3*im.W)
	// PPM stores top row first; the framebuffer is bottom-first.
	for y := im.H - 1; y >= 0; y-- {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			row[3*x] = clamp8(r)
			row[3*x+1] = clamp8(g)
			row[3*x+2] = clamp8(b)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func clamp8(v float64) byte {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return byte(v * 255)
}

// Options controls a render pass.
type Options struct {
	Width, Height int
	Workers       int     // parallelism across rays; <=0 = GOMAXPROCS
	Ambient       float64 // ambient light term (default 0.1)
	Epsilon       float64 // shadow-ray offset (default 1e-6 of scene diagonal)

	// Samples is the supersampling factor per pixel axis (1 = one centred
	// ray per pixel, n = n*n stratified rays averaged). The paper keeps a
	// "fixed quality setting"; raising Samples is how a client would trade
	// quality against the frame time the tuner is minimising.
	Samples int

	// PacketWidth bundles up to this many coherent rays per kD-tree
	// traversal (see kdtree.IntersectPacket). 0 or 1 selects the scalar
	// path; values above kdtree.MaxPacketWidth are clamped. Packets apply
	// only when Samples == 1 (the paper's quality setting); pixels are
	// bitwise identical to the scalar path either way, so this is purely a
	// speed knob — which is why the autotuner co-tunes it with the tree
	// parameters.
	PacketWidth int

	// TileSize is the square tile edge the packet path decomposes the
	// image into (default 16). Rays are packed in row-major order within a
	// tile, so the tile shape controls packet coherence; it is the second
	// render-side tunable.
	TileSize int

	// Cancel, when non-nil, makes the render cooperatively cancelable: the
	// workers check it at every pixel row (scalar path) or tile (packet
	// path) and drain early once it fires. A canceled render leaves the
	// framebuffer partially written — callers that care must check
	// Cancel.Canceled() (or RenderStats.Canceled) before using the pixels.
	// This is how a request deadline propagates into the traversal
	// kernels: link the Canceler to the request context with
	// parallel.LinkContext. nil keeps the previous run-to-completion
	// behaviour.
	Cancel *parallel.Canceler
}

// RenderStats reports what the ray caster did — used by tests and by the
// occlusion experiments (how much of the tree a frame actually touched).
type RenderStats struct {
	PrimaryRays int
	ShadowRays  int
	Hits        int

	// Packet-path counters (zero under scalar rendering): Packets counts
	// packet traversals (primary and shadow), Demotions counts lanes that
	// fell back to scalar traversal mid-walk. Demotions/PacketRays is the
	// demotion rate the bench report records.
	Packets    int
	Demotions  int
	PacketRays int // rays traced through packets (primary + shadow)

	// Canceled reports that Options.Cancel fired while the frame was in
	// flight: some rows/tiles were skipped and the framebuffer is partial.
	Canceled bool
}

// Render ray-casts the scene geometry through tree from the given view and
// returns a freshly allocated framebuffer. The tree must have been built
// over exactly the triangles of the frame being rendered; lights and camera
// come from the scene view (§V-A). Frame loops should allocate one Image
// and call RenderInto instead.
func Render(tree *kdtree.Tree, view scene.View, lights []vecmath.Vec3, opt Options) (*Image, RenderStats) {
	opt, eps := opt.normalized(tree)
	im := NewImage(opt.Width, opt.Height)
	stats := renderCore(im, tree, view, lights, opt, eps)
	return im, stats
}

// RenderInto renders into a caller-owned framebuffer, resizing it in place
// when the requested dimensions differ. Reusing one Image across frames
// removes the largest per-frame render allocation.
func RenderInto(im *Image, tree *kdtree.Tree, view scene.View, lights []vecmath.Vec3, opt Options) RenderStats {
	opt, eps := opt.normalized(tree)
	im.reshape(opt.Width, opt.Height)
	return renderCore(im, tree, view, lights, opt, eps)
}

// normalized applies the option defaults and derives the shadow epsilon.
func (opt Options) normalized(tree *kdtree.Tree) (Options, float64) {
	if opt.Width <= 0 {
		opt.Width = 256
	}
	if opt.Height <= 0 {
		opt.Height = opt.Width * 3 / 4
	}
	if opt.Ambient == 0 {
		opt.Ambient = 0.1
	}
	if opt.Samples < 1 {
		opt.Samples = 1
	}
	if opt.PacketWidth < 1 {
		opt.PacketWidth = 1
	}
	if opt.PacketWidth > kdtree.MaxPacketWidth {
		opt.PacketWidth = kdtree.MaxPacketWidth
	}
	if opt.TileSize < 1 {
		opt.TileSize = 16
	}
	eps := opt.Epsilon
	if eps <= 0 {
		eps = 1e-6 * (1 + tree.Bounds().Diagonal().Len())
	}
	return opt, eps
}

func renderCore(im *Image, tree *kdtree.Tree, view scene.View, lights []vecmath.Vec3, opt Options, eps float64) RenderStats {
	cam := NewCamera(view, float64(opt.Width)/float64(opt.Height))
	if opt.PacketWidth > 1 && opt.Samples == 1 {
		return renderPackets(im, tree, cam, lights, opt, eps)
	}
	tris := tree.Triangles()

	// Each worker accumulates stats privately and folds them in with three
	// atomic adds when its rows are done — no lock, no cache-line ping-pong
	// on the hot path.
	var primary, shadow, hits atomic.Int64

	// Parallelise across rows of pixels — "as the tree can be traversed
	// independently for every ray, we parallelize intersection testing
	// across different rays". A nil opt.Cancel is never canceled, so the
	// unguarded frame loop pays one atomic load per row.
	parallel.ForCancel(opt.Cancel, opt.Height, opt.Workers, func(yLo, yHi int) {
		local := RenderStats{}
		samples := opt.Samples
		inv := 1.0 / float64(samples*samples)
		// The t-dependent part of the ray direction is shared by a whole row
		// of sub-pixel samples; hoist it out of the x loop (one RowBase per
		// (row, sub-row) instead of per sample).
		rowBases := make([]vecmath.Vec3, samples)
		for y := yLo; y < yHi; y++ {
			if opt.Cancel.Canceled() {
				break
			}
			if faultinject.Active() {
				faultinject.Check(faultinject.SiteRenderTile, y)
			}
			for sy := 0; sy < samples; sy++ {
				t := (float64(y) + (float64(sy)+0.5)/float64(samples)) / float64(opt.Height)
				rowBases[sy] = cam.RowBase(t)
			}
			for x := 0; x < opt.Width; x++ {
				var accR, accG, accB float64
				for sy := 0; sy < samples; sy++ {
					for sx := 0; sx < samples; sx++ {
						// Stratified sub-pixel positions.
						s := (float64(x) + (float64(sx)+0.5)/float64(samples)) / float64(opt.Width)
						ray := cam.RayAt(rowBases[sy], s)
						local.PrimaryRays++

						hit, ok := tree.Intersect(ray, 1e-9, math.Inf(1))
						if !ok {
							accR += 0.05
							accG += 0.05
							accB += 0.08 // background
							continue
						}
						local.Hits++

						p := ray.At(hit.T)
						n := tris[hit.Tri].UnitNormal()
						if n.Dot(ray.Dir) > 0 {
							n = n.Neg() // two-sided shading
						}

						// Lambert shading with shadow rays to every light.
						shade := opt.Ambient
						for _, l := range lights {
							toLight := l.Sub(p)
							cos := n.Dot(toLight.Normalize())
							if cos <= 0 {
								continue
							}
							local.ShadowRays++
							shadow := vecmath.Towards(p.Add(n.Scale(eps)), l)
							if !tree.Occluded(shadow, 1e-9, 1-1e-9) {
								shade += cos / float64(len(lights)) * 0.9
							}
						}
						// Colour keyed to the primitive index so structure
						// stays visible without materials.
						cr, cg, cb := triColor(hit.Tri)
						accR += shade * cr
						accG += shade * cg
						accB += shade * cb
					}
				}
				im.set(x, y, accR*inv, accG*inv, accB*inv)
			}
		}
		primary.Add(int64(local.PrimaryRays))
		shadow.Add(int64(local.ShadowRays))
		hits.Add(int64(local.Hits))
	})
	return RenderStats{
		PrimaryRays: int(primary.Load()),
		ShadowRays:  int(shadow.Load()),
		Hits:        int(hits.Load()),
		Canceled:    opt.Cancel.Canceled(),
	}
}

// triColor hashes a triangle index into a stable pastel colour.
func triColor(i int) (r, g, b float64) {
	h := uint32(i) * 2654435761
	return 0.5 + 0.5*float64(h&255)/255,
		0.5 + 0.5*float64((h>>8)&255)/255,
		0.5 + 0.5*float64((h>>16)&255)/255
}
