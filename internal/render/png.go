package render

import (
	"image"
	"image/color"
	"image/png"
	"io"
)

// ToImage converts the float framebuffer to a stdlib image.Image with
// simple clamping (no tone mapping), top row first as image conventions
// expect.
func (im *Image) ToImage() *image.NRGBA {
	out := image.NewNRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			out.SetNRGBA(x, im.H-1-y, color.NRGBA{
				R: clamp8(r), G: clamp8(g), B: clamp8(b), A: 255,
			})
		}
	}
	return out
}

// WritePNG encodes the framebuffer as a PNG.
func (im *Image) WritePNG(w io.Writer) error {
	return png.Encode(w, im.ToImage())
}
