package render

import (
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// CameraRays samples n primary rays from the view's pinhole camera on a
// uniform grid over the image plane (the same rays Render shoots, minus
// shading). The grid is chosen as close to the aspect ratio as possible so
// the sample covers the whole frame; n <= 0 returns nil.
//
// The oracle uses this to cross-check tree traversal against brute force on
// exactly the ray distribution the paper's objective function measures.
func CameraRays(view scene.View, aspect float64, n int) []vecmath.Ray {
	if n <= 0 {
		return nil
	}
	if aspect <= 0 {
		aspect = 4.0 / 3.0
	}
	cam := NewCamera(view, aspect)

	// Pick grid dims w*h >= n with w/h ~ aspect.
	h := 1
	for ; ; h++ {
		w := int(float64(h)*aspect + 0.5)
		if w < 1 {
			w = 1
		}
		if w*h >= n {
			break
		}
	}
	w := int(float64(h)*aspect + 0.5)
	if w < 1 {
		w = 1
	}

	rays := make([]vecmath.Ray, 0, n)
	for y := 0; y < h && len(rays) < n; y++ {
		for x := 0; x < w && len(rays) < n; x++ {
			s := (float64(x) + 0.5) / float64(w)
			t := (float64(y) + 0.5) / float64(h)
			rays = append(rays, cam.Ray(s, t))
		}
	}
	return rays
}
