package render

import (
	"testing"

	"kdtune/internal/scene"
)

// TestRenderIntoMatchesRender: the buffer-reusing entry point must produce
// exactly the pixels of the allocating one, including after a resize that
// shrinks and then regrows the framebuffer.
func TestRenderIntoMatchesRender(t *testing.T) {
	tris, view, lights := floorScene()
	tree := buildTree(tris)
	opt := Options{Width: 64, Height: 48, Workers: 2}

	want, wantStats := Render(tree, view, lights, opt)

	im := NewImage(96, 60) // deliberately wrong shape: reshape must fix it
	stats := RenderInto(im, tree, view, lights, opt)
	if im.W != 64 || im.H != 48 {
		t.Fatalf("reshape to %dx%d, want 64x48", im.W, im.H)
	}
	if stats != wantStats {
		t.Fatalf("stats %+v, want %+v", stats, wantStats)
	}
	for i := range want.Pix {
		if im.Pix[i] != want.Pix[i] {
			t.Fatalf("pixel %d: %g != %g", i, im.Pix[i], want.Pix[i])
		}
	}

	// A second frame into the same image must not leave stale pixels: shrink
	// below the old size and check the buffer was truncated, not reallocated.
	prev := &im.Pix[0]
	small := Options{Width: 32, Height: 24, Workers: 2}
	RenderInto(im, tree, view, lights, small)
	if im.W != 32 || im.H != 24 || len(im.Pix) != 3*32*24 {
		t.Fatalf("second reshape wrong: %dx%d len %d", im.W, im.H, len(im.Pix))
	}
	if &im.Pix[0] != prev {
		t.Error("shrinking reshape reallocated the pixel buffer")
	}
}

// BenchmarkRenderInto measures the steady-state frame render with a retained
// framebuffer — the render half of the zero-allocation frame loop. Run with
// -benchmem.
func BenchmarkRenderInto(b *testing.B) {
	sc := scene.WoodDoll()
	tree := buildTree(sc.Triangles(0))
	im := NewImage(96, 72)
	opt := Options{Width: 96, Height: 72, Workers: 1}
	view, lights := sc.ViewAt(0), sc.Lights
	RenderInto(im, tree, view, lights, opt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RenderInto(im, tree, view, lights, opt)
	}
}
