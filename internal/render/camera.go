// Package render implements the ray-casting renderer of the paper's §V-A:
// for every pixel a primary ray is cast into the scene to find the first
// intersecting primitive via the kD-tree, a shadow ray is cast from the hit
// point to each light, and the pixel receives the Lambert-shaded primitive
// colour. Intersection testing is parallelised across rays (image tiles),
// exactly as the paper describes.
package render

import (
	"math"

	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// Camera generates primary rays for a pinhole projection.
type Camera struct {
	eye                    vecmath.Vec3
	lowerLeft, horiz, vert vecmath.Vec3
}

// NewCamera derives a pinhole camera from a scene view and the target
// aspect ratio (width/height).
func NewCamera(v scene.View, aspect float64) Camera {
	dir := v.LookAt.Sub(v.Eye).Normalize()
	right := dir.Cross(v.Up).Normalize()
	up := right.Cross(dir)

	halfH := math.Tan(v.FOV * math.Pi / 360)
	halfW := aspect * halfH

	return Camera{
		eye:       v.Eye,
		lowerLeft: dir.Sub(right.Scale(halfW)).Sub(up.Scale(halfH)),
		horiz:     right.Scale(2 * halfW),
		vert:      up.Scale(2 * halfH),
	}
}

// Ray returns the primary ray through the normalised image position
// (s, t) ∈ [0,1]^2 with (0,0) at the lower-left corner.
func (c Camera) Ray(s, t float64) vecmath.Ray {
	d := c.lowerLeft.Add(c.horiz.Scale(s)).Add(c.vert.Scale(t))
	return vecmath.NewRay(c.eye, d)
}
