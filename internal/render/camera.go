// Package render implements the ray-casting renderer of the paper's §V-A:
// for every pixel a primary ray is cast into the scene to find the first
// intersecting primitive via the kD-tree, a shadow ray is cast from the hit
// point to each light, and the pixel receives the Lambert-shaded primitive
// colour. Intersection testing is parallelised across rays (image tiles),
// exactly as the paper describes.
package render

import (
	"math"

	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// Camera generates primary rays for a pinhole projection.
type Camera struct {
	eye                    vecmath.Vec3
	lowerLeft, horiz, vert vecmath.Vec3
}

// NewCamera derives a pinhole camera from a scene view and the target
// aspect ratio (width/height).
func NewCamera(v scene.View, aspect float64) Camera {
	dir := v.LookAt.Sub(v.Eye).Normalize()
	right := dir.Cross(v.Up).Normalize()
	up := right.Cross(dir)

	halfH := math.Tan(v.FOV * math.Pi / 360)
	halfW := aspect * halfH

	return Camera{
		eye:       v.Eye,
		lowerLeft: dir.Sub(right.Scale(halfW)).Sub(up.Scale(halfH)),
		horiz:     right.Scale(2 * halfW),
		vert:      up.Scale(2 * halfH),
	}
}

// Ray returns the primary ray through the normalised image position
// (s, t) ∈ [0,1]^2 with (0,0) at the lower-left corner.
func (c Camera) Ray(s, t float64) vecmath.Ray {
	return c.RayAt(c.RowBase(t), s)
}

// RowBase precomputes the t-dependent part of the primary-ray direction.
// All rays of one image row share it, so the render loop hoists this out of
// the per-pixel loop and pays only one Scale+Add per ray via RayAt.
func (c Camera) RowBase(t float64) vecmath.Vec3 {
	return c.lowerLeft.Add(c.vert.Scale(t))
}

// RayAt completes a primary ray from a RowBase and the horizontal position s.
func (c Camera) RayAt(base vecmath.Vec3, s float64) vecmath.Ray {
	return vecmath.NewRay(c.eye, base.Add(c.horiz.Scale(s)))
}
