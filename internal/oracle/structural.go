package oracle

import (
	"fmt"
	"math"

	"kdtune/internal/kdtree"
	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

// expItem mirrors the builders' item: a triangle index plus its bounds
// narrowed to the node currently holding it.
type expItem struct {
	tri    int32
	bounds vecmath.AABB
}

// CheckStructure runs the structural oracle against a tree built over tris
// with params (the SAH parameters the build used):
//
//  1. kdtree.Validate's invariants (tree-shaped graph, no lost triangles,
//     no stray leaf references),
//  2. exact leaf coverage: replaying the split planes from the root with
//     the builders' partition semantics — narrow each triangle's AABB (or
//     clipped AABB, for clipping builds) into every child cell it overlaps,
//     planar primitives to the left — must reproduce every leaf's triangle
//     set exactly (no missing, no extra, order ignored),
//  3. SAH cost: the cost recomputed node-by-node from the public Walk must
//     equal Tree.SAHCost within floating-point tolerance.
//
// Lazy trees are fully expanded first. The replay is an independent
// reimplementation of the partition rules working only through the public
// Walk API, so drift between the builders, the flattened arena and the cost
// model is caught regardless of which of the three regressed.
func CheckStructure(tree *kdtree.Tree, params sah.Params) error {
	tree.ExpandAll()
	if err := tree.Validate(); err != nil {
		return fmt.Errorf("oracle: structural: %w", err)
	}
	if err := checkLeafCoverage(tree); err != nil {
		return err
	}
	return checkCost(tree, params)
}

// checkLeafCoverage replays the partition along the walk's pre-order. The
// walk visits children left-first, so a stack of expected item sets —
// pushed right child first — stays aligned with the traversal.
func checkLeafCoverage(tree *kdtree.Tree) error {
	tris := tree.Triangles()
	clip := tree.UsesClipping()

	// Root set: every triangle with finite bounds (builders skip the rest).
	root := make([]expItem, 0, len(tris))
	for i, tr := range tris {
		b := tr.Bounds()
		if !b.Min.IsFinite() || !b.Max.IsFinite() {
			continue
		}
		root = append(root, expItem{tri: int32(i), bounds: b})
	}

	// childBounds mirrors buildCtx.childBounds.
	childBounds := func(it expItem, child vecmath.AABB) (vecmath.AABB, bool) {
		if clip {
			return vecmath.ClipTriangleBounds(tris[it.tri], child)
		}
		b := it.bounds.Intersect(child)
		if b.IsEmpty() {
			return b, false
		}
		return b, true
	}

	stack := [][]expItem{root}
	var firstErr error
	leafIdx := 0
	tree.Walk(func(v kdtree.NodeView) bool {
		if firstErr != nil {
			return false
		}
		if len(stack) == 0 {
			firstErr = fmt.Errorf("oracle: structural: walk order diverged from expected-set stack")
			return false
		}
		expected := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		switch {
		case v.Deferred:
			firstErr = fmt.Errorf("oracle: structural: unexpanded deferred node at depth %d (ExpandAll failed?)", v.Depth)
			return false

		case v.Leaf:
			defer func() { leafIdx++ }()
			if err := compareLeafSet(v, expected, leafIdx); err != nil {
				firstErr = err
				return false
			}

		default: // inner: partition expected into the two child cells.
			lb, rb := v.Region.Split(v.Axis, v.Pos)
			var left, right []expItem
			for _, it := range expected {
				lo := it.bounds.Min.Axis(v.Axis)
				hi := it.bounds.Max.Axis(v.Axis)
				switch {
				case hi <= v.Pos && lo < v.Pos, lo == hi && lo == v.Pos:
					if b, ok := childBounds(it, lb); ok {
						left = append(left, expItem{it.tri, b})
					}
				case lo >= v.Pos:
					if b, ok := childBounds(it, rb); ok {
						right = append(right, expItem{it.tri, b})
					}
				default:
					if b, ok := childBounds(it, lb); ok {
						left = append(left, expItem{it.tri, b})
					}
					if b, ok := childBounds(it, rb); ok {
						right = append(right, expItem{it.tri, b})
					}
				}
			}
			// Right pushed first: the walk descends left before right.
			stack = append(stack, right, left)
		}
		return true
	})
	if firstErr != nil {
		return firstErr
	}
	if len(stack) != 0 {
		return fmt.Errorf("oracle: structural: %d expected sets left over after walk", len(stack))
	}
	return nil
}

// compareLeafSet checks set equality between a leaf's stored triangles and
// the replayed expectation.
func compareLeafSet(v kdtree.NodeView, expected []expItem, leafIdx int) error {
	want := make(map[int32]bool, len(expected))
	for _, it := range expected {
		want[it.tri] = true
	}
	got := make(map[int32]bool, len(v.Tris))
	for _, ti := range v.Tris {
		if got[ti] {
			return fmt.Errorf("oracle: structural: leaf %d (region %v) references triangle %d twice", leafIdx, v.Region, ti)
		}
		got[ti] = true
		if !want[ti] {
			return fmt.Errorf("oracle: structural: leaf %d (region %v) holds stray triangle %d (replay says it cannot reach this cell)",
				leafIdx, v.Region, ti)
		}
	}
	for ti := range want {
		if !got[ti] {
			return fmt.Errorf("oracle: structural: leaf %d (region %v) is missing triangle %d (replay says its box overlaps this cell)",
				leafIdx, v.Region, ti)
		}
	}
	return nil
}

// checkCost recomputes the SAH cost from the walk and compares it with the
// tree's own accounting.
func checkCost(tree *kdtree.Tree, params sah.Params) error {
	rootArea := tree.Bounds().SurfaceArea()
	if rootArea <= 0 {
		return nil // degenerate/empty scene: SAHCost defines this as 0
	}
	sum := 0.0
	tree.Walk(func(v kdtree.NodeView) bool {
		area := v.Region.SurfaceArea()
		switch {
		case v.Leaf, v.Deferred:
			sum += area * params.LeafCost(len(v.Tris))
		default:
			sum += area * params.CT
		}
		return true
	})
	want := sum / rootArea
	got := tree.SAHCost(params)
	if diff := math.Abs(got - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
		return fmt.Errorf("oracle: cost: Tree.SAHCost=%.17g but walk recomputation=%.17g (Δ=%g)", got, want, diff)
	}
	return nil
}
