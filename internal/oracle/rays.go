package oracle

import (
	"math"
	"math/rand"

	"kdtune/internal/render"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// RandomRays generates n deterministic randomized rays exercising a bounds
// volume from angles a camera never takes: half originate outside the
// (grown) bounds aiming at random interior targets, half originate inside
// with uniform random directions. Degenerate direction draws are rejected.
func RandomRays(bounds vecmath.AABB, n int, seed int64) []vecmath.Ray {
	if n <= 0 || bounds.IsEmpty() {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	// Grow flat scenes into a volume so origins don't collapse onto the
	// geometry plane.
	diag := bounds.Diagonal().Len()
	if diag == 0 {
		diag = 1
	}
	inner := bounds.Grow(1e-3 * diag)
	outer := bounds.Grow(0.7 * diag)

	inBox := func(b vecmath.AABB) vecmath.Vec3 {
		d := b.Diagonal()
		return vecmath.V(
			b.Min.X+r.Float64()*d.X,
			b.Min.Y+r.Float64()*d.Y,
			b.Min.Z+r.Float64()*d.Z,
		)
	}
	unitDir := func() vecmath.Vec3 {
		for {
			v := vecmath.V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
			if l := v.Len(); l > 1e-6 {
				return v.Scale(1 / l)
			}
		}
	}

	rays := make([]vecmath.Ray, 0, n)
	for len(rays) < n {
		var ray vecmath.Ray
		if len(rays)%2 == 0 {
			from := inBox(outer)
			to := inBox(inner)
			d := to.Sub(from)
			if d.Len() < 1e-9 {
				continue
			}
			ray = vecmath.NewRay(from, d)
		} else {
			ray = vecmath.NewRay(inBox(inner), unitDir())
		}
		rays = append(rays, ray)
	}
	return rays
}

// SceneRays assembles the oracle's ray set for a scene frame: camera rays
// on the paper's viewing frustum plus randomized rays through the scene
// bounds.
func SceneRays(sc *scene.Scene, frame int, bounds vecmath.AABB, o Options) []vecmath.Ray {
	o = o.normalized()
	rays := render.CameraRays(sc.ViewAt(frame), 4.0/3.0, o.CameraRays)
	return append(rays, RandomRays(bounds, o.RandomRays, o.Seed)...)
}

// BoundsOf returns the union of finite triangle bounds — the same world
// bounds the builders compute.
func BoundsOf(tris []vecmath.Triangle) vecmath.AABB {
	b := vecmath.EmptyAABB()
	for _, tr := range tris {
		tb := tr.Bounds()
		if tb.Min.IsFinite() && tb.Max.IsFinite() {
			b = b.Union(tb)
		}
	}
	return b
}

// defaultInterval is the parametric interval the renderer uses for primary
// rays; the oracle adopts it so differential results transfer.
func defaultInterval() (float64, float64) { return 1e-9, math.Inf(1) }
