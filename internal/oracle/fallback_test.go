package oracle

import (
	"bytes"
	"testing"
	"time"

	"kdtune/internal/kdtree"
)

// TestFallbackTreeOracle validates the exact tree the guarded frame loop
// renders after an abort: a median-split build on a Builder whose previous
// guarded build was stopped mid-flight. The fallback tree must agree with
// brute force on real scene geometry and be bitwise-identical to a median
// build on a fresh Builder — an abort may not leave arena residue that
// changes what the fallback produces.
func TestFallbackTreeOracle(t *testing.T) {
	for _, sc := range testScenes() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			tris := sc.Triangles(0)
			o := Options{CameraRays: 64, RandomRays: 64}
			rays := SceneRays(sc, 0, BoundsOf(tris), o)
			tMin, tMax := defaultInterval()
			ref := NewReference(tris, rays, tMin, tMax, o)

			for _, algo := range kdtree.Algorithms {
				cfg := kdtree.BaseConfig(algo)
				cfg.Workers = 4
				b := kdtree.NewBuilder()
				// Stop the primary build mid-flight, exactly like a
				// watchdog/limit trip in the harness would.
				if _, err := b.BuildGuarded(tris, cfg, kdtree.Guard{Deadline: time.Nanosecond}); err == nil {
					t.Fatalf("%v: 1ns deadline did not abort", algo)
				}

				fcfg := cfg
				fcfg.Algorithm = kdtree.AlgoMedian
				fallback, err := b.BuildGuarded(tris, fcfg, kdtree.Guard{})
				if err != nil {
					t.Fatalf("%v: fallback build aborted: %v", algo, err)
				}
				label := "median-fallback-after-" + algo.String()
				if err := ref.CheckTree(fallback, label); err != nil {
					t.Fatal(err)
				}
				var got, want bytes.Buffer
				if err := fallback.Serialize(&got); err != nil {
					t.Fatal(err)
				}
				if err := kdtree.NewBuilder().Build(tris, fcfg).Serialize(&want); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("%s: fallback tree differs from a fresh median build", label)
				}
			}
		})
	}
}
