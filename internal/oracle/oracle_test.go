package oracle

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"kdtune/internal/kdtree"
	"kdtune/internal/sah"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// testOptions picks ray budgets: full defaults in normal runs, reduced in
// short mode so `go test -short ./...` stays fast.
func testOptions() Options {
	if testing.Short() {
		return Options{CameraRays: 48, RandomRays: 48}
	}
	return Options{}
}

// testScenes selects the evaluation scenes to run the full battery on.
func testScenes() []*scene.Scene {
	if testing.Short() {
		return []*scene.Scene{scene.WoodDoll(), scene.Toasters()}
	}
	return scene.All()
}

// TestSceneOracle is the tentpole acceptance check: every paper builder at
// workers {1, 2, N} against brute force on every evaluation scene, plus
// worker invariance, pairwise builder agreement, structural replay and
// query cross-checks. See CheckScene.
func TestSceneOracle(t *testing.T) {
	for _, sc := range testScenes() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			so := SceneOptions{Options: testOptions(), Extras: true}
			if testing.Short() {
				so.QueryBoxes, so.QueryPoints = 12, 24
			}
			rep, err := CheckScene(sc, so)
			if err != nil {
				t.Fatal(err)
			}
			if rep.HitRays == 0 {
				t.Fatalf("oracle ray set never hits %s (%d rays) — the check is vacuous", sc.Name, rep.Rays)
			}
			t.Logf("%s: %d trees validated against %d rays (%d hitting)", sc.Name, rep.Trees, rep.Rays, rep.HitRays)
		})
	}
}

// TestSceneOracleDynamicFrame re-runs a reduced battery on a mid-animation
// frame of a dynamic scene, so the oracle also covers deformed geometry.
func TestSceneOracleDynamicFrame(t *testing.T) {
	sc := scene.Toasters()
	if !sc.IsDynamic() {
		t.Fatalf("expected %s to be dynamic", sc.Name)
	}
	so := SceneOptions{
		Options:      Options{CameraRays: 64, RandomRays: 64},
		Frame:        sc.Frames / 2,
		WorkerCounts: []int{1, 3},
	}
	if _, err := CheckScene(sc, so); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationInvariance(t *testing.T) {
	sc := scene.WoodDoll()
	tris := sc.Triangles(0)
	o := testOptions()
	rays := SceneRays(sc, 0, BoundsOf(tris), o)
	for _, algo := range []kdtree.Algorithm{kdtree.AlgoInPlace, kdtree.AlgoLazy} {
		cfg := kdtree.BaseConfig(algo)
		if err := CheckPermutationInvariance(tris, cfg, rays, o); err != nil {
			t.Errorf("%v: %v", algo, err)
		}
	}
}

func TestTransformInvariance(t *testing.T) {
	sc := scene.WoodDoll()
	tris := sc.Triangles(0)
	o := testOptions()
	rays := SceneRays(sc, 0, BoundsOf(tris), o)

	rot := vecmath.RotateAround(vecmath.AxisY, 0.7, vecmath.V(1, 2, 3))
	move := vecmath.Translate(vecmath.V(-40, 13, 8)).MulMat(rot)
	cfg := kdtree.BaseConfig(kdtree.AlgoNested)
	if err := CheckTransformInvariance(tris, cfg, rays, move, 1, o); err != nil {
		t.Fatal(err)
	}

	scaled := vecmath.ScaleUniform(2.5).MulMat(move)
	if err := CheckTransformInvariance(tris, cfg, rays, scaled, 2.5, o); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerInvarianceDirect exercises the standalone bitwise check across
// worker counts not covered by the scene battery, including the extension
// builders and the clipping configuration.
func TestWorkerInvarianceDirect(t *testing.T) {
	tris := scene.WoodDoll().Triangles(0)
	algos := append([]kdtree.Algorithm{}, kdtree.Algorithms...)
	algos = append(algos, kdtree.AlgoMedian, kdtree.AlgoSortOnce)
	for _, algo := range algos {
		cfg := kdtree.BaseConfig(algo)
		if err := CheckWorkerInvariance(tris, cfg, []int{1, 3, 7}); err != nil {
			t.Errorf("%v: %v", algo, err)
		}
	}
	cfg := kdtree.BaseConfig(kdtree.AlgoInPlace)
	cfg.UseClipping = true
	if err := CheckWorkerInvariance(tris, cfg, []int{1, 5}); err != nil {
		t.Errorf("clipping: %v", err)
	}
}

// TestStructuralClipping runs the exact-coverage replay against trees built
// with Wald–Havran perfect-split clipping, which narrows straddler bounds
// differently from plain box intersection.
func TestStructuralClipping(t *testing.T) {
	tris := scene.WoodDoll().Triangles(0)
	for _, algo := range []kdtree.Algorithm{kdtree.AlgoNodeLevel, kdtree.AlgoNested, kdtree.AlgoInPlace} {
		cfg := kdtree.BaseConfig(algo)
		cfg.UseClipping = true
		tree := kdtree.Build(tris, cfg)
		params := sah.Params{CT: sah.FixedCT, CI: cfg.CI, CB: cfg.CB}
		if err := CheckStructure(tree, params); err != nil {
			t.Errorf("%v: %v", algo, err)
		}
	}
}

// TestRayOracleCatchesGeometryDrift is the negative control: a tree built
// over perturbed geometry must fail the ray oracle against the unperturbed
// reference.
func TestRayOracleCatchesGeometryDrift(t *testing.T) {
	sc := scene.WoodDoll()
	tris := sc.Triangles(0)
	o := Options{CameraRays: 128, RandomRays: 128}
	rays := SceneRays(sc, 0, BoundsOf(tris), o)
	ref := NewReference(tris, rays, 1e-9, math.Inf(1), o)

	shift := vecmath.Translate(BoundsOf(tris).Diagonal().Scale(0.25))
	moved := make([]vecmath.Triangle, len(tris))
	for i, tr := range tris {
		moved[i] = tr.Transform(shift)
	}
	tree := kdtree.Build(moved, kdtree.BaseConfig(kdtree.AlgoInPlace))
	if err := ref.CheckTree(tree, "perturbed"); err == nil {
		t.Fatal("ray oracle accepted a tree built over shifted geometry")
	}
}

// TestStructuralOracleCatchesTampering is the structural negative control:
// deserializing a tree whose leaf references were swapped at the byte level
// must fail CheckStructure.
func TestStructuralOracleCatchesTampering(t *testing.T) {
	tris := scene.WoodDoll().Triangles(0)
	tree := kdtree.Build(tris, kdtree.BaseConfig(kdtree.AlgoNested))
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Walk the serialized layout (see kdtree/serialize.go) to the leaf
	// triangle array and rewrite its entries, leaving structure intact.
	off := 4 + 4 // magic + version
	numTris := binary.LittleEndian.Uint64(raw[off:])
	off += 8 + int(numTris)*9*8 // vertices
	off += 6 * 8                // bounds
	numNodes := binary.LittleEndian.Uint64(raw[off:])
	off += 8 + int(numNodes)*(1+1+8+4+4+4+4)
	numLeafTris := binary.LittleEndian.Uint64(raw[off:])
	off += 8
	if numLeafTris < 2 {
		t.Fatal("tree too small to tamper with")
	}
	// Point every leaf reference at triangle 0: tree shape and counts stay
	// valid, contents are wrong.
	for i := 0; i < int(numLeafTris); i++ {
		binary.LittleEndian.PutUint32(raw[off+4*i:], 0)
	}

	bad, err := kdtree.ReadTree(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("tampered bytes should still deserialize (structure is intact): %v", err)
	}
	params := sah.Params{CT: sah.FixedCT, CI: 17, CB: 10}
	if err := CheckStructure(bad, params); err == nil {
		t.Fatal("structural oracle accepted a tree with rewritten leaf contents")
	}
}

// TestReferenceStable sanity-checks the stability classifier on a scene
// with exactly coincident duplicate surfaces.
func TestReferenceStable(t *testing.T) {
	quad := []vecmath.Triangle{
		vecmath.Tri(vecmath.V(-1, -1, 5), vecmath.V(1, -1, 5), vecmath.V(0, 1, 5)),
	}
	dup := append(append([]vecmath.Triangle{}, quad...), quad...)
	ray := vecmath.NewRay(vecmath.V(0, 0, 0), vecmath.V(0, 0, 1))
	miss := vecmath.NewRay(vecmath.V(0, 0, 0), vecmath.V(0, 0, -1))

	ref := NewReference(dup, []vecmath.Ray{ray, miss}, 1e-9, math.Inf(1), Options{})
	if ref.HitCount() != 1 {
		t.Fatalf("HitCount = %d, want 1", ref.HitCount())
	}
	if !ref.Stable(0) {
		// Exactly coincident duplicates share one t, so there is no second
		// distinct surface: the hit is stable.
		t.Error("coincident duplicate surface misclassified as unstable")
	}
	if !ref.Stable(1) {
		t.Error("clean miss must be stable")
	}

	// A second surface makes the hit unstable when it is distinct (farther
	// than epsilon) but within the 10x-epsilon guard band: here tol is
	// 5e-9, so a surface 1e-8 behind the hit lands in the unstable zone.
	near := vecmath.Tri(
		vecmath.V(-1, -1, 5+1e-8), vecmath.V(1, -1, 5+1e-8), vecmath.V(0, 1, 5+1e-8))
	ref2 := NewReference(append(quad, near), []vecmath.Ray{ray}, 1e-9, math.Inf(1), Options{})
	if ref2.Stable(0) {
		t.Error("near-coincident second surface misclassified as stable")
	}
}

// TestCameraRayBudget verifies SceneRays honors the configured budgets.
func TestCameraRayBudget(t *testing.T) {
	sc := scene.WoodDoll()
	o := Options{CameraRays: 37, RandomRays: 11}
	rays := SceneRays(sc, 0, BoundsOf(sc.Triangles(0)), o)
	if len(rays) != 37+11 {
		t.Fatalf("SceneRays produced %d rays, want %d", len(rays), 37+11)
	}
}
