package oracle

import (
	"fmt"
	"hash/fnv"
	"sort"

	"kdtune/internal/kdtree"
	"kdtune/internal/parallel"
	"kdtune/internal/sah"
	"kdtune/internal/scene"
)

// SceneOptions configures a full per-scene oracle run.
type SceneOptions struct {
	Options

	// Frame selects the animation frame (0 for static scenes).
	Frame int

	// WorkerCounts are the parallelism levels every builder is exercised
	// at; empty selects {1, 2, GOMAXPROCS}. Ray and structural oracles run
	// per (algorithm, workers) pair; serialized trees must additionally be
	// bitwise identical across the counts.
	WorkerCounts []int

	// Extras additionally checks the median and sort-once builders (at the
	// highest worker count) and includes them in the pairwise cross-check.
	Extras bool

	// QueryBoxes/QueryPoints are the range/nearest-neighbor query budgets
	// for the kd-vs-bvh-vs-linear cross-check (defaults 24 and 48; the
	// check runs on one representative tree).
	QueryBoxes  int
	QueryPoints int
}

// SceneReport summarizes what a CheckScene run covered.
type SceneReport struct {
	Trees   int // trees built and checked
	Rays    int // rays in the oracle set
	HitRays int // rays whose brute-force result is a hit
}

func (so SceneOptions) normalized() SceneOptions {
	so.Options = so.Options.normalized()
	if len(so.WorkerCounts) == 0 {
		so.WorkerCounts = []int{1, 2, parallel.DefaultWorkers()}
	}
	sort.Ints(so.WorkerCounts)
	uniq := so.WorkerCounts[:0]
	for _, w := range so.WorkerCounts {
		if w < 1 || (len(uniq) > 0 && uniq[len(uniq)-1] == w) {
			continue
		}
		uniq = append(uniq, w)
	}
	so.WorkerCounts = uniq
	if so.QueryBoxes <= 0 {
		so.QueryBoxes = 24
	}
	if so.QueryPoints <= 0 {
		so.QueryPoints = 48
	}
	return so
}

// CheckScene runs the complete oracle battery for one scene frame: a single
// brute-force Reference is computed once, then every paper builder is built
// at every worker count and validated against it (ray + structural oracles),
// serialized bytes are required to be worker-invariant, the builders'
// highest-worker trees are cross-checked pairwise, and range/nearest
// queries are cross-checked against the BVH and a linear scan.
//
// The first failing check aborts the run and its error names the scene,
// builder and worker count.
func CheckScene(sc *scene.Scene, so SceneOptions) (SceneReport, error) {
	so = so.normalized()
	o := so.Options

	tris := sc.Triangles(so.Frame)
	bounds := BoundsOf(tris)
	rays := SceneRays(sc, so.Frame, bounds, o)
	tMin, tMax := defaultInterval()
	ref := NewReference(tris, rays, tMin, tMax, o)

	rep := SceneReport{Rays: len(rays), HitRays: ref.HitCount()}
	maxW := so.WorkerCounts[len(so.WorkerCounts)-1]

	type built struct {
		label string
		tree  *kdtree.Tree
	}
	var atMax []built

	check := func(cfg kdtree.Config, label string) (*kdtree.Tree, uint64, error) {
		tree := kdtree.Build(tris, cfg) //kdlint:noguard oracle builds must be raw and deterministic; a panic should fail the test loudly, not degrade
		rep.Trees++
		// Ray oracle first: on lazy trees this exercises on-demand
		// expansion during traversal before anything forces ExpandAll.
		if err := ref.CheckTree(tree, label); err != nil {
			return nil, 0, fmt.Errorf("%s: %w", sc.Name, err)
		}
		h := fnv.New64a()
		if err := tree.Serialize(h); err != nil {
			return nil, 0, fmt.Errorf("%s/%s: serialize: %w", sc.Name, label, err)
		}
		params := sah.Params{CT: sah.FixedCT, CI: cfg.CI, CB: cfg.CB}
		if err := CheckStructure(tree, params); err != nil {
			return nil, 0, fmt.Errorf("%s/%s: %w", sc.Name, label, err)
		}
		return tree, h.Sum64(), nil
	}

	for _, algo := range kdtree.Algorithms {
		var wantSum uint64
		var wantW int
		for i, w := range so.WorkerCounts {
			cfg := kdtree.BaseConfig(algo)
			cfg.Workers = w
			label := fmt.Sprintf("%v/workers=%d", algo, w)
			tree, sum, err := check(cfg, label)
			if err != nil {
				return rep, err
			}
			if i == 0 {
				wantSum, wantW = sum, w
			} else if sum != wantSum {
				return rep, fmt.Errorf("oracle: %s/%v: serialized tree differs between workers=%d and workers=%d",
					sc.Name, algo, wantW, w)
			}
			if w == maxW {
				atMax = append(atMax, built{algo.String(), tree})
			}
		}
	}

	if so.Extras {
		for _, algo := range []kdtree.Algorithm{kdtree.AlgoMedian, kdtree.AlgoSortOnce} {
			cfg := kdtree.BaseConfig(algo)
			cfg.Workers = maxW
			label := fmt.Sprintf("%v/workers=%d", algo, maxW)
			tree, _, err := check(cfg, label)
			if err != nil {
				return rep, err
			}
			atMax = append(atMax, built{algo.String(), tree})
		}
	}

	for i := 0; i < len(atMax); i++ {
		for j := i + 1; j < len(atMax); j++ {
			if err := CheckPairwise(atMax[i].tree, atMax[j].tree, atMax[i].label, atMax[j].label, rays, o); err != nil {
				return rep, fmt.Errorf("%s: %w", sc.Name, err)
			}
		}
	}

	// Packet-vs-scalar differential oracle: bitwise lane identity at every
	// packet width, on every builder's tree. The atMax lazy tree is already
	// fully expanded by the ray oracle above, so a fresh lazy tree joins
	// the check: its suspended nodes are first touched by packet traversal
	// itself, covering packet-triggered expansion.
	for _, b := range atMax {
		if err := CheckPackets(b.tree, b.label, rays, o); err != nil {
			return rep, fmt.Errorf("%s: %w", sc.Name, err)
		}
	}
	lazyCfg := kdtree.BaseConfig(kdtree.AlgoLazy)
	lazyCfg.Workers = maxW
	lazyFresh := kdtree.Build(tris, lazyCfg) //kdlint:noguard oracle builds must be raw and deterministic; a panic should fail the test loudly, not degrade
	rep.Trees++
	if err := CheckPackets(lazyFresh, "lazy/packet-first-touch", rays, o); err != nil {
		return rep, fmt.Errorf("%s: %w", sc.Name, err)
	}

	boxes := RandomBoxes(bounds, so.QueryBoxes, o.Seed+7)
	points := RandomPoints(bounds, so.QueryPoints, o.Seed+13)
	if err := CheckQueries(atMax[0].tree, boxes, points, o); err != nil {
		return rep, fmt.Errorf("%s/%s: %w", sc.Name, atMax[0].label, err)
	}
	return rep, nil
}
