package oracle

import (
	"math"
	"math/rand"

	"kdtune/internal/bvh"
	"kdtune/internal/kdtree"
	"kdtune/internal/vecmath"
)

// Query oracles: the kD-tree's range and nearest-neighbor queries must
// agree with both a linear scan and the independently implemented BVH
// (internal/bvh) over the same triangles.

// RandomBoxes generates n deterministic query boxes inside (and straddling
// the edges of) bounds, with volumes spanning several orders of magnitude.
func RandomBoxes(bounds vecmath.AABB, n int, seed int64) []vecmath.AABB {
	if n <= 0 || bounds.IsEmpty() {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	d := bounds.Diagonal()
	scale := math.Max(d.X, math.Max(d.Y, d.Z))
	if scale == 0 {
		scale = 1
	}
	out := make([]vecmath.AABB, n)
	for i := range out {
		c := vecmath.V(
			bounds.Min.X+r.Float64()*d.X,
			bounds.Min.Y+r.Float64()*d.Y,
			bounds.Min.Z+r.Float64()*d.Z,
		)
		// Half-extent from 0.1% to ~half the scene scale.
		h := scale * math.Pow(10, -3+2.7*r.Float64()) / 2
		he := vecmath.V(h*(0.5+r.Float64()), h*(0.5+r.Float64()), h*(0.5+r.Float64()))
		out[i] = vecmath.NewAABB(c.Sub(he), c.Add(he))
	}
	return out
}

// RandomPoints generates n deterministic query points in the grown bounds
// (some outside the geometry, exercising far-field nearest-neighbor).
func RandomPoints(bounds vecmath.AABB, n int, seed int64) []vecmath.Vec3 {
	if n <= 0 || bounds.IsEmpty() {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	grown := bounds.Grow(0.3 * (1 + bounds.Diagonal().Len()))
	d := grown.Diagonal()
	out := make([]vecmath.Vec3, n)
	for i := range out {
		out[i] = vecmath.V(
			grown.Min.X+r.Float64()*d.X,
			grown.Min.Y+r.Float64()*d.Y,
			grown.Min.Z+r.Float64()*d.Z,
		)
	}
	return out
}

// CheckQueries cross-checks RangeQuery and NearestNeighbor on the kD-tree
// against the BVH and a linear scan. Triangles without finite bounds are
// excluded from the linear reference (no spatial structure indexes them).
func CheckQueries(tree *kdtree.Tree, boxes []vecmath.AABB, points []vecmath.Vec3, o Options) error {
	o = o.normalized()
	tris := tree.Triangles()
	bv := bvh.Build(tris, bvh.Config{})

	var m mismatch
	for bi, box := range boxes {
		var linear []int
		for i, tr := range tris {
			b := tr.Bounds()
			if !b.Min.IsFinite() || !b.Max.IsFinite() {
				continue
			}
			if b.Overlaps(box) {
				linear = append(linear, i)
			}
		}
		kd := tree.RangeQuery(box)
		bq := bv.RangeQuery(box)
		if !equalInts(kd, linear) {
			m.addf("box %d %v: kdtree range %d tris, linear %d tris (first divergence %v)",
				bi, box, len(kd), len(linear), firstDiff(kd, linear))
		}
		if !equalInts(bq, linear) {
			m.addf("box %d %v: bvh range %d tris, linear %d tris (first divergence %v)",
				bi, box, len(bq), len(linear), firstDiff(bq, linear))
		}
	}

	for pi, p := range points {
		linTri, linDist := -1, math.Inf(1)
		for i, tr := range tris {
			if tr.IsDegenerate() {
				continue
			}
			if d := vecmath.DistToTriangle(p, tr); d < linDist {
				linDist, linTri = d, i
			}
		}
		kdTri, kdDist, kdOK := tree.NearestNeighbor(p)
		bvTri, bvDist, bvOK := bv.NearestNeighbor(p)
		if kdOK != (linTri >= 0) || bvOK != (linTri >= 0) {
			m.addf("point %d %v: found flags disagree (kd=%v bvh=%v linear=%v)", pi, p, kdOK, bvOK, linTri >= 0)
			continue
		}
		if linTri < 0 {
			continue
		}
		tol := o.tolerance(linDist)
		if math.Abs(kdDist-linDist) > tol {
			m.addf("point %d %v: kdtree NN dist %.17g (tri %d), linear %.17g (tri %d)",
				pi, p, kdDist, kdTri, linDist, linTri)
		}
		if math.Abs(bvDist-linDist) > tol {
			m.addf("point %d %v: bvh NN dist %.17g (tri %d), linear %.17g (tri %d)",
				pi, p, bvDist, bvTri, linDist, linTri)
		}
		// Whatever index was returned must actually be at the reported
		// distance (ties between equidistant triangles may pick either).
		if kdTri < 0 || kdTri >= len(tris) || vecmath.DistToTriangle(p, tris[kdTri]) != kdDist {
			m.addf("point %d: kdtree NN tri %d does not reproduce dist %g", pi, kdTri, kdDist)
		}
	}
	return m.err("query oracle")
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// firstDiff reports the first index present in exactly one of the sorted
// slices, for error messages.
func firstDiff(a, b []int) int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			return a[i]
		default:
			return b[j]
		}
	}
	if i < len(a) {
		return a[i]
	}
	if j < len(b) {
		return b[j]
	}
	return -1
}
