package oracle

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"kdtune/internal/kdtree"
	"kdtune/internal/vecmath"
)

// Metamorphic properties: transformations of the input that must not change
// what rays hit. Each check builds fresh trees, so these are the expensive
// oracles — callers pick budgets via Options.

// CheckPermutationInvariance builds one tree over tris and one over a
// seeded random permutation of tris, then requires identical hit results
// for every ray (indices mapped through the permutation; equal-t duplicate
// surfaces may swap indices). Triangle data is bit-identical in both
// builds, so matching triangles must produce bitwise-equal t.
func CheckPermutationInvariance(tris []vecmath.Triangle, cfg kdtree.Config, rays []vecmath.Ray, o Options) error {
	o = o.normalized()
	perm := rand.New(rand.NewSource(o.Seed + 0x5eed)).Perm(len(tris))
	shuffled := make([]vecmath.Triangle, len(tris))
	for i, p := range perm {
		shuffled[p] = tris[i] // triangle i moves to slot perm[i]
	}

	a := kdtree.Build(tris, cfg)     //kdlint:noguard oracle builds must be raw and deterministic; a panic should fail the test loudly, not degrade
	b := kdtree.Build(shuffled, cfg) //kdlint:noguard oracle builds must be raw and deterministic; a panic should fail the test loudly, not degrade

	tMin, tMax := defaultInterval()
	var m mismatch
	for i, r := range rays {
		ha, hitA := a.Intersect(r, tMin, tMax)
		hb, hitB := b.Intersect(r, tMin, tMax)
		switch {
		case hitA != hitB:
			m.addf("ray %d %v: original hit=%v, permuted hit=%v", i, r, hitA, hitB)
		case hitA:
			if perm[ha.Tri] == hb.Tri {
				if ha.T != hb.T {
					m.addf("ray %d: same triangle, different t: %.17g vs %.17g", i, ha.T, hb.T)
				}
			} else if math.Abs(ha.T-hb.T) > o.tolerance(ha.T) {
				m.addf("ray %d: tri %d t=%.17g vs permuted tri %d t=%.17g (not a duplicate surface)",
					i, ha.Tri, ha.T, hb.Tri, hb.T)
			}
		}
		if a.Occluded(r, tMin, tMax) != b.Occluded(r, tMin, tMax) {
			m.addf("ray %d %v: occlusion differs between original and permuted build", i, r)
		}
	}
	return m.err("permutation invariance")
}

// CheckTransformInvariance applies a rigid-body (or uniformly scaled)
// transform to the scene and the rays together, rebuilds, and checks two
// things:
//
//  1. differential exactness in the transformed frame: the transformed tree
//     must agree with a linear scan over the transformed triangles (this
//     part is floating-point-exact, like CheckTree), and
//  2. invariance across frames: on rays whose original-frame result is
//     stable (no second surface within epsilon of the closest hit), the
//     hit/miss verdict must survive the transform, and hit distances must
//     match up to scale within a loose tolerance (coordinate permutation
//     changes summation order, so exact equality is not required).
func CheckTransformInvariance(tris []vecmath.Triangle, cfg kdtree.Config, rays []vecmath.Ray, m4 vecmath.Mat4, scale float64, o Options) error {
	o = o.normalized()
	if scale <= 0 {
		scale = 1
	}
	moved := make([]vecmath.Triangle, len(tris))
	for i, tr := range tris {
		moved[i] = tr.Transform(m4)
	}
	movedRays := make([]vecmath.Ray, len(rays))
	for i, r := range rays {
		movedRays[i] = vecmath.Ray{Origin: m4.ApplyPoint(r.Origin), Dir: m4.ApplyDir(r.Dir)}
	}

	tMin, tMax := defaultInterval()
	refOrig := NewReference(tris, rays, tMin, tMax, o)
	refMoved := NewReference(moved, movedRays, tMin, tMax, o)

	tree := kdtree.Build(moved, cfg) //kdlint:noguard oracle builds must be raw and deterministic; a panic should fail the test loudly, not degrade
	if err := refMoved.CheckTree(tree, "transformed frame"); err != nil {
		return err
	}

	// Loose cross-frame tolerance: rotation reorders coordinate sums, so
	// allow ~1e-6 relative on distances.
	const crossEps = 1e-6
	var mm mismatch
	for i := range rays {
		if !refOrig.Stable(i) {
			continue
		}
		ho := refOrig.hits[i]
		hm := refMoved.hits[i]
		if ho.hit != hm.hit {
			mm.addf("ray %d: stable original hit=%v (t=%g) but transformed hit=%v", i, ho.hit, ho.t, hm.hit)
			continue
		}
		if ho.hit {
			// Ray.Dir is transformed with the same scale as the geometry, so
			// the parametric t is scale-invariant.
			if d := math.Abs(hm.t - ho.t); d > crossEps*math.Max(1, math.Abs(ho.t)) {
				mm.addf("ray %d: stable hit moved from t=%.17g to t=%.17g under rigid transform", i, ho.t, hm.t)
			}
		}
	}
	return mm.err("transform invariance")
}

// CheckWorkerInvariance builds the same configuration at each worker count
// and requires bitwise-identical serialized trees — the determinism
// guarantee of DESIGN.md §7, restated as a metamorphic property over real
// scenes. Lazy trees are expanded before serialization (Serialize inlines
// deferred subtrees, and expansion order must not leak into the bytes).
func CheckWorkerInvariance(tris []vecmath.Triangle, cfg kdtree.Config, workerCounts []int) error {
	var wantSum uint64
	var wantWorkers int
	for i, w := range workerCounts {
		c := cfg
		c.Workers = w
		tree := kdtree.Build(tris, c) //kdlint:noguard worker-invariance compares raw builds bit-for-bit; guard plumbing must stay out of the hashed path
		h := fnv.New64a()
		if err := tree.Serialize(h); err != nil {
			return fmt.Errorf("oracle: worker invariance: serialize at workers=%d: %w", w, err)
		}
		sum := h.Sum64()
		if i == 0 {
			wantSum, wantWorkers = sum, w
			continue
		}
		if sum != wantSum {
			return fmt.Errorf("oracle: worker invariance: %v tree bytes differ between workers=%d and workers=%d",
				cfg.Algorithm, wantWorkers, w)
		}
	}
	return nil
}

// CheckPairwise cross-checks the hit vectors of two trees built by
// different algorithms over the same triangles: identical hit/miss verdicts
// and t within epsilon (different builders may legitimately pick different
// duplicate indices, and leaf shapes alter nothing about geometry).
func CheckPairwise(a, b *kdtree.Tree, labelA, labelB string, rays []vecmath.Ray, o Options) error {
	o = o.normalized()
	tMin, tMax := defaultInterval()
	var m mismatch
	for i, r := range rays {
		ha, hitA := a.Intersect(r, tMin, tMax)
		hb, hitB := b.Intersect(r, tMin, tMax)
		switch {
		case hitA != hitB:
			m.addf("ray %d %v: %s hit=%v, %s hit=%v", i, r, labelA, hitA, labelB, hitB)
		case hitA && math.Abs(ha.T-hb.T) > o.tolerance(ha.T):
			m.addf("ray %d: %s t=%.17g (tri %d) vs %s t=%.17g (tri %d)",
				i, labelA, ha.T, ha.Tri, labelB, hb.T, hb.Tri)
		}
	}
	return m.err(fmt.Sprintf("pairwise %s vs %s", labelA, labelB))
}
