// Package oracle is the differential + metamorphic correctness subsystem
// for the kD-tree builders: every claim the benchmarks make about speed is
// only meaningful if the four parallel builders produce trees that answer
// queries exactly like brute force.
//
// Three oracle families are provided (see DESIGN.md §8 for the guarantees
// and the epsilon policy):
//
//   - Ray oracle (this file): closest-hit and occlusion results of
//     kdtree.Tree traversal must match a linear Möller–Trumbore scan over
//     all triangles — same hit/miss verdict, t within epsilon, and the same
//     triangle up to duplicates (coincident or edge-sharing primitives may
//     legitimately report either index at the same t).
//   - Structural oracle (structural.go): leaf contents must exactly cover
//     the triangles whose narrowed/clipped AABBs reach each leaf cell, and
//     the SAH cost recomputed from a public Walk must equal Tree.SAHCost.
//   - Metamorphic oracle (metamorphic.go): hit results must be invariant
//     under triangle reordering, rigid-body scene transforms, builder
//     choice and worker count.
//
// Query cross-checks against internal/bvh and linear scan live in
// queries.go; suite.go composes everything per evaluation scene.
package oracle

import (
	"fmt"
	"math"
	"strings"

	"kdtune/internal/kdtree"
	"kdtune/internal/parallel"
	"kdtune/internal/vecmath"
)

// Options bounds the oracle's sampling budgets. The zero value selects the
// defaults below; tests in short mode shrink the budgets instead of
// skipping checks.
type Options struct {
	CameraRays int     // primary rays sampled from the scene camera (default 256)
	RandomRays int     // randomized rays through the scene bounds (default 256)
	Epsilon    float64 // relative t tolerance (default 1e-9)
	Seed       int64   // RNG seed for random rays and permutations (default 1)
	Workers    int     // parallelism for the brute-force reference; <=0 = all
}

func (o Options) normalized() Options {
	if o.CameraRays <= 0 {
		o.CameraRays = 256
	}
	if o.RandomRays <= 0 {
		o.RandomRays = 256
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-9
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// tolerance is the absolute t tolerance for a reference distance.
func (o Options) tolerance(t float64) float64 {
	return o.Epsilon * math.Max(1, math.Abs(t))
}

// refHit is one brute-force result: the closest hit (if any) plus the
// distance of the second-closest *distinct* surface, used to classify
// near-tie hits when metamorphic checks need stability information.
type refHit struct {
	hit     bool
	t       float64
	tri     int32
	secondT float64 // +Inf when no second distinct-t hit exists
}

// Reference is the brute-force ground truth for one (triangle soup, ray
// set) pair: a linear Möller–Trumbore scan per ray, computed once and then
// compared against any number of trees. All rays share the parametric
// interval (TMin, TMax).
type Reference struct {
	Tris       []vecmath.Triangle
	Rays       []vecmath.Ray
	TMin, TMax float64

	opts Options
	hits []refHit
}

// NewReference computes the linear-scan ground truth (parallel over rays).
func NewReference(tris []vecmath.Triangle, rays []vecmath.Ray, tMin, tMax float64, o Options) *Reference {
	o = o.normalized()
	ref := &Reference{
		Tris: tris, Rays: rays, TMin: tMin, TMax: tMax,
		opts: o,
		hits: make([]refHit, len(rays)),
	}
	//kdlint:nocancel oracle ground-truth fan-out runs in tests, never inside a guarded build
	parallel.ForEach(len(rays), o.Workers, func(i int) {
		ref.hits[i] = linearClosest(tris, rays[i], tMin, tMax, o)
	})
	return ref
}

// linearClosest is the reference intersector: test every triangle, keep the
// closest hit and the closest strictly-farther distinct hit.
func linearClosest(tris []vecmath.Triangle, r vecmath.Ray, tMin, tMax float64, o Options) refHit {
	best := refHit{t: math.Inf(1), secondT: math.Inf(1), tri: -1}
	for i, tr := range tris {
		th, _, _, hit := tr.IntersectRay(r, tMin, tMax)
		if !hit {
			continue
		}
		switch {
		case th < best.t:
			if best.hit && best.t-th > o.tolerance(th) {
				best.secondT = best.t
			}
			best.t, best.tri, best.hit = th, int32(i), true
		case th-best.t > o.tolerance(best.t) && th < best.secondT:
			best.secondT = th
		}
	}
	return best
}

// Stable reports whether ray i has an unambiguous outcome: either a clean
// miss, or a closest hit that no other surface approaches within epsilon.
// Metamorphic transform checks restrict hit/miss comparisons to stable rays
// (the unstable ones may legitimately flip under floating-point reordering).
func (ref *Reference) Stable(i int) bool {
	h := ref.hits[i]
	if !h.hit {
		return true
	}
	return h.secondT-h.t > 10*ref.opts.tolerance(h.t)
}

// HitCount returns how many reference rays hit anything.
func (ref *Reference) HitCount() int {
	n := 0
	for _, h := range ref.hits {
		if h.hit {
			n++
		}
	}
	return n
}

// mismatch collects a bounded sample of failures plus the total count, so a
// broken tree produces a readable error instead of a megabyte of output.
type mismatch struct {
	total   int
	details []string
}

const maxMismatchDetails = 8

func (m *mismatch) addf(format string, args ...any) {
	m.total++
	if len(m.details) < maxMismatchDetails {
		m.details = append(m.details, fmt.Sprintf(format, args...))
	}
}

func (m *mismatch) err(what string) error {
	if m.total == 0 {
		return nil
	}
	return fmt.Errorf("oracle: %s: %d mismatches; first %d:\n  %s",
		what, m.total, len(m.details), strings.Join(m.details, "\n  "))
}

// CheckTree runs the ray oracle: for every reference ray, Tree.Intersect
// and Tree.Occluded must agree with the linear scan. label is used in error
// messages ("in-place/workers=2").
func (ref *Reference) CheckTree(tree *kdtree.Tree, label string) error {
	var m mismatch
	for i, r := range ref.Rays {
		want := ref.hits[i]
		got, hit := tree.Intersect(r, ref.TMin, ref.TMax)

		switch {
		case hit != want.hit:
			m.addf("ray %d %v: tree hit=%v, linear hit=%v (linear t=%g tri=%d)",
				i, r, hit, want.hit, want.t, want.tri)
		case hit:
			tol := ref.opts.tolerance(want.t)
			if math.Abs(got.T-want.t) > tol {
				m.addf("ray %d %v: tree t=%.17g (tri %d), linear t=%.17g (tri %d), |Δ|=%g > tol %g",
					i, r, got.T, got.Tri, want.t, want.tri, math.Abs(got.T-want.t), tol)
			} else if int32(got.Tri) != want.tri {
				// Different index is only legitimate for a duplicate surface:
				// the tree's triangle must itself intersect at (tolerably)
				// the same distance — which it does by construction, since
				// got.T was computed from it; verify the index is in range
				// and the triangle really produces this hit.
				if got.Tri < 0 || got.Tri >= len(ref.Tris) {
					m.addf("ray %d: tree returned out-of-range triangle %d", i, got.Tri)
				} else if th, _, _, h2 := ref.Tris[got.Tri].IntersectRay(r, ref.TMin, ref.TMax); !h2 || th != got.T {
					m.addf("ray %d: tree claims tri %d at t=%g but that triangle reports hit=%v t=%g",
						i, got.Tri, got.T, h2, th)
				}
			}
		}

		if occ := tree.Occluded(r, ref.TMin, ref.TMax); occ != want.hit {
			m.addf("ray %d %v: tree occluded=%v, linear=%v", i, r, occ, want.hit)
		}
	}
	return m.err("ray oracle (" + label + ")")
}
