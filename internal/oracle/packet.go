package oracle

import (
	"fmt"
	"math"

	"kdtune/internal/kdtree"
	"kdtune/internal/vecmath"
)

// Packet-vs-scalar differential oracle. Packet traversal
// (kdtree.IntersectPacket / OccludedPacket) promises results bitwise
// identical to the scalar walk for every lane — not merely within epsilon:
// the renderer's packet path claims bitwise-equal frames, and the autotuner
// treats packet width as a pure speed knob, both of which are only sound if
// the hit records (t, triangle id, barycentrics) match exactly. So unlike
// the brute-force ray oracle, this check tolerates nothing.

// packetWidths are the widths every check exercises; the ray sets are not
// multiples of them, so ragged tail packets are always included.
var packetWidths = [...]int{4, 8, 16}

func sameHit(a, b kdtree.Hit) bool {
	return math.Float64bits(a.T) == math.Float64bits(b.T) &&
		a.Tri == b.Tri &&
		math.Float64bits(a.U) == math.Float64bits(b.U) &&
		math.Float64bits(a.V) == math.Float64bits(b.V)
}

// CheckPackets slices rays into packets of each width in packetWidths
// (including a ragged tail) and requires, for every lane, bitwise-identical
// closest-hit records and identical occlusion verdicts between packet and
// scalar traversal of tree. The caller's ray set provides the coherence
// spectrum: camera rays form coherent packets, randomized rays form
// mixed-direction incoherent ones (maximising demotions).
func CheckPackets(tree *kdtree.Tree, label string, rays []vecmath.Ray, o Options) error {
	o = o.normalized()
	tMin, tMax := defaultInterval()
	var ps kdtree.PacketScratch
	for _, w := range packetWidths {
		for start := 0; start < len(rays); start += w {
			end := min(start+w, len(rays))
			pk := rays[start:end]

			tree.IntersectPacket(&ps, pk, tMin, tMax)
			for l, r := range pk {
				sh, sok := tree.Intersect(r, tMin, tMax)
				if ps.Ok[l] != sok || !sameHit(ps.Hits[l], sh) {
					return fmt.Errorf("oracle: %s: packet width %d, rays[%d:%d), lane %d: packet hit %+v (ok=%v) != scalar hit %+v (ok=%v)",
						label, w, start, end, l, ps.Hits[l], ps.Ok[l], sh, sok)
				}
			}

			tree.OccludedPacket(&ps, pk, tMin, tMax)
			for l, r := range pk {
				if socc := tree.Occluded(r, tMin, tMax); ps.Occ[l] != socc {
					return fmt.Errorf("oracle: %s: packet width %d, rays[%d:%d), lane %d: packet occluded=%v != scalar occluded=%v",
						label, w, start, end, l, ps.Occ[l], socc)
				}
			}
		}
	}
	return nil
}
