package kdtree

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestGuardFromContextNoDeadline(t *testing.T) {
	base := Guard{Deadline: time.Second, MaxDepth: 7, MaxArenaBytes: 1 << 20}
	got := GuardFromContext(context.Background(), base)
	if got != base {
		t.Fatalf("background ctx changed the guard: %+v != %+v", got, base)
	}
	if got := GuardFromContext(nil, base); got != base { //nolint — nil ctx must be tolerated
		t.Fatalf("nil ctx changed the guard: %+v != %+v", got, base)
	}
}

func TestGuardFromContextTighterWins(t *testing.T) {
	base := Guard{Deadline: time.Hour, MaxDepth: 9, MaxArenaBytes: 512}

	// Context deadline tighter than the static guard: the context wins,
	// the non-deadline limits survive untouched.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	got := GuardFromContext(ctx, base)
	if got.Deadline <= 0 || got.Deadline > 50*time.Millisecond {
		t.Fatalf("merged deadline %v, want (0, 50ms]", got.Deadline)
	}
	if got.MaxDepth != base.MaxDepth || got.MaxArenaBytes != base.MaxArenaBytes {
		t.Fatalf("non-deadline limits changed: %+v", got)
	}

	// Static guard tighter than the context: the static guard wins.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Hour)
	defer cancel2()
	base2 := Guard{Deadline: time.Millisecond}
	if got := GuardFromContext(ctx2, base2); got.Deadline != time.Millisecond {
		t.Fatalf("merged deadline %v, want the static 1ms", got.Deadline)
	}

	// No static deadline at all: the context supplies one.
	ctx3, cancel3 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel3()
	if got := GuardFromContext(ctx3, Guard{}); got.Deadline <= 0 || got.Deadline > 20*time.Millisecond {
		t.Fatalf("deadline %v, want (0, 20ms]", got.Deadline)
	}
}

func TestGuardFromContextExpiredClampsToArmed(t *testing.T) {
	// An already-expired context must yield a positive (immediately firing)
	// deadline, never zero — zero reads as "unguarded".
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	got := GuardFromContext(ctx, Guard{Deadline: time.Hour})
	if got.Deadline <= 0 || got.Deadline > time.Millisecond {
		t.Fatalf("expired ctx deadline %v, want tiny positive", got.Deadline)
	}
}

func TestGuardFromContextAbortsBuild(t *testing.T) {
	// End-to-end: a build entered with an expired request context aborts
	// with AbortDeadline instead of running to completion.
	tris := randomTriangles(rand.New(rand.NewSource(99)), 4000, 10, 0.2)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()

	b := NewBuilder()
	cfg := BaseConfig(AlgoInPlace)
	cfg.Workers = 2
	_, err := b.BuildGuarded(tris, cfg, GuardFromContext(ctx, Guard{}))
	var ba *BuildAborted
	if !errors.As(err, &ba) || ba.Cause != AbortDeadline {
		t.Fatalf("err = %v, want *BuildAborted{AbortDeadline}", err)
	}
	// The same Builder still produces a healthy tree afterwards.
	tree, err := b.BuildGuarded(tris, cfg, Guard{})
	if err != nil || tree == nil {
		t.Fatalf("rebuild after ctx abort failed: %v", err)
	}
}
