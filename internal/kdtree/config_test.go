package kdtree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	valid := func(c Config) Config { return c } // readability marker
	cases := []struct {
		name    string
		cfg     Config
		wantErr []string // substrings that must all appear; empty = valid
	}{
		{"zero", valid(Config{}), nil},
		{"base", BaseConfig(AlgoInPlace), nil},
		{"table2 extremes", Config{CI: 101, CB: 60, S: 8, R: 8192}, nil},
		{"hard limits", Config{CI: 1e6, CB: 1e6, S: 1024, R: 1 << 24, Workers: 4096, MaxDepth: 128, Bins: 1 << 16}, nil},

		{"nan CI", Config{CI: math.NaN()}, []string{"CI", "not finite"}},
		{"inf CI", Config{CI: math.Inf(1)}, []string{"CI", "not finite"}},
		{"neg inf CB", Config{CB: math.Inf(-1)}, []string{"CB", "not finite"}},
		{"nan CB", Config{CB: math.NaN()}, []string{"CB", "not finite"}},
		{"negative CI", Config{CI: -1}, []string{"CI"}},
		{"huge CI", Config{CI: 1e7}, []string{"CI"}},
		{"negative CB", Config{CB: -0.5}, []string{"CB"}},
		{"negative S", Config{S: -1}, []string{"S -1"}},
		{"huge S", Config{S: 4096}, []string{"S 4096"}},
		{"negative R", Config{R: -8}, []string{"R -8"}},
		{"huge R", Config{R: 1 << 25}, []string{"R"}},
		{"negative workers", Config{Workers: -2}, []string{"Workers"}},
		{"huge workers", Config{Workers: 1 << 20}, []string{"Workers"}},
		{"negative depth", Config{MaxDepth: -1}, []string{"MaxDepth"}},
		{"huge depth", Config{MaxDepth: 1000}, []string{"MaxDepth"}},
		{"huge bins", Config{Bins: 1 << 20}, []string{"Bins"}},
		{"multi-error", Config{CI: math.NaN(), S: -1, MaxDepth: 999},
			[]string{"CI", "S -1", "MaxDepth"}},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if len(tc.wantErr) == 0 {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: no error, want mentions of %v", tc.name, tc.wantErr)
			continue
		}
		for _, want := range tc.wantErr {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q missing %q", tc.name, err, want)
			}
		}
	}
}

func TestConfigClamped(t *testing.T) {
	cases := []struct {
		name string
		in   Config
		want Config
	}{
		{"identity", BaseConfig(AlgoLazy), BaseConfig(AlgoLazy)},
		{"nan costs fall to defaults",
			Config{CI: math.NaN(), CB: math.NaN()},
			Config{CI: 17, CB: 0}},
		{"inf pulled to limits",
			Config{CI: math.Inf(1), CB: math.Inf(-1)},
			Config{CI: maxConfigCI, CB: 0}},
		{"negatives floored",
			Config{CI: -3, CB: -1, S: -4, R: -16, Workers: -1, MaxDepth: -2, Bins: -7},
			Config{}},
		{"overshoot ceilinged",
			Config{CI: 1e9, CB: 1e9, S: 1 << 20, R: 1 << 30, Workers: 1 << 20, MaxDepth: 1 << 20, Bins: 1 << 30},
			Config{CI: maxConfigCI, CB: maxConfigCB, S: maxConfigS, R: maxConfigR,
				Workers: maxConfigWorkers, MaxDepth: maxConfigDepth, Bins: maxConfigBins}},
	}
	for _, tc := range cases {
		got := tc.in.Clamped()
		if got != tc.want {
			t.Errorf("%s: Clamped() = %+v, want %+v", tc.name, got, tc.want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("%s: Clamped output does not validate: %v", tc.name, err)
		}
	}
}

// TestBuildSurvivesHostileConfig: Build must produce a valid tree — not hang,
// not blow the heap — for configs that would be pathological unclamped. The
// clamp-on-entry contract is what lets the tuner apply path hand over raw
// probe vectors.
func TestBuildSurvivesHostileConfig(t *testing.T) {
	tris := randomTriangles(rand.New(rand.NewSource(88)), 300, 10, 0.2)
	hostile := []Config{
		{CI: math.NaN(), CB: math.NaN()},
		{CI: math.Inf(1), CB: math.Inf(-1)},
		{CI: -100, CB: -100, S: -1, R: -1},
		{MaxDepth: 1 << 30},
		{Bins: -5, Workers: -5},
	}
	for _, a := range Algorithms {
		for i, h := range hostile {
			h.Algorithm = a
			tree := Build(tris, h)
			if err := tree.Validate(); err != nil {
				t.Errorf("%v hostile[%d]: %v", a, i, err)
			}
		}
	}
}
