package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"kdtune/internal/vecmath"
)

// packetTestRays mixes the coherence spectrum: common-origin fans (the
// renderer's primary packets), parallel offset rays (shadow-like), and
// fully random incoherent rays (maximal demotion pressure).
func packetTestRays(r *rand.Rand, n int, extent float64) []vecmath.Ray {
	rays := make([]vecmath.Ray, 0, n)
	eye := vecmath.V(-extent, extent/2, -extent)
	for len(rays) < n {
		switch len(rays) % 3 {
		case 0: // coherent fan from a shared eye point
			target := vecmath.V(r.Float64()*extent, r.Float64()*extent, r.Float64()*extent)
			rays = append(rays, vecmath.Towards(eye, target))
		case 1: // axis-aligned-ish parallel rays
			o := vecmath.V(r.Float64()*extent, r.Float64()*extent, -extent)
			rays = append(rays, vecmath.NewRay(o, vecmath.V(0, 0, 1)))
		default: // incoherent: random origin, random direction
			o := vecmath.V(r.Float64()*extent, r.Float64()*extent, r.Float64()*extent)
			d := vecmath.V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
			rays = append(rays, vecmath.NewRay(o, d))
		}
	}
	return rays
}

func checkPacketAgainstScalar(t *testing.T, tree *Tree, rays []vecmath.Ray, width int, label string) {
	t.Helper()
	var ps PacketScratch
	tMin, tMax := 1e-9, math.Inf(1)
	for start := 0; start < len(rays); start += width {
		end := min(start+width, len(rays))
		pk := rays[start:end]

		tree.IntersectPacket(&ps, pk, tMin, tMax)
		for l, r := range pk {
			sh, sok := tree.Intersect(r, tMin, tMax)
			if ps.Ok[l] != sok ||
				math.Float64bits(ps.Hits[l].T) != math.Float64bits(sh.T) ||
				ps.Hits[l].Tri != sh.Tri ||
				math.Float64bits(ps.Hits[l].U) != math.Float64bits(sh.U) ||
				math.Float64bits(ps.Hits[l].V) != math.Float64bits(sh.V) {
				t.Fatalf("%s width=%d rays[%d:%d) lane %d: packet %+v ok=%v != scalar %+v ok=%v",
					label, width, start, end, l, ps.Hits[l], ps.Ok[l], sh, sok)
			}
		}

		tree.OccludedPacket(&ps, pk, tMin, tMax)
		for l, r := range pk {
			if socc := tree.Occluded(r, tMin, tMax); ps.Occ[l] != socc {
				t.Fatalf("%s width=%d rays[%d:%d) lane %d: packet occluded=%v != scalar %v",
					label, width, start, end, l, ps.Occ[l], socc)
			}
		}
	}
}

// TestPacketMatchesScalar: every lane of every packet must reproduce the
// scalar traversal bitwise, for all builders, all widths (ragged tails
// included — 301 rays never divide evenly), and mixed-coherence ray sets.
func TestPacketMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(4711))
	tris := randomTriangles(r, 900, 10, 0.25)
	rays := packetTestRays(r, 301, 10)
	for _, algo := range Algorithms {
		tree := Build(tris, testConfig(algo))
		for _, w := range []int{2, 4, 8, 16} {
			checkPacketAgainstScalar(t, tree, rays, w, algo.String())
		}
	}
}

// TestPacketInPlaneRays aims rays exactly along and inside split planes —
// the d==0, o==pos graze case whose scalar handling (push far with the FULL
// interval) the packet walk must reproduce per lane.
func TestPacketInPlaneRays(t *testing.T) {
	// A z-symmetric scene: triangles mirrored about z=0 force a split at
	// exactly z=0 and planar primitives on it.
	var tris []vecmath.Triangle
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 64; i++ {
		x, y := r.Float64()*8, r.Float64()*8
		tris = append(tris,
			vecmath.Tri(vecmath.V(x, y, 1+r.Float64()), vecmath.V(x+0.4, y, 1.5), vecmath.V(x, y+0.4, 1.2)),
			vecmath.Tri(vecmath.V(x, y, -1-r.Float64()), vecmath.V(x+0.4, y, -1.5), vecmath.V(x, y+0.4, -1.2)),
		)
	}
	// Planar triangles exactly on z=0.
	for i := 0; i < 8; i++ {
		x, y := float64(i), float64(i)/2
		tris = append(tris, vecmath.Tri(vecmath.V(x, y, 0), vecmath.V(x+1, y, 0), vecmath.V(x, y+1, 0)))
	}
	var rays []vecmath.Ray
	for i := 0; i < 48; i++ {
		// In-plane rays (z=0, dz=0), axis-parallel rays, and rays crossing
		// the plane at shallow angles.
		x := r.Float64() * 8
		rays = append(rays,
			vecmath.NewRay(vecmath.V(-2, x/2, 0), vecmath.V(1, 0.1*r.Float64(), 0)),
			vecmath.NewRay(vecmath.V(x, -2, 0.5), vecmath.V(0, 1, 0)),
			vecmath.NewRay(vecmath.V(x, x/2, -3), vecmath.V(0.01*r.NormFloat64(), 0.01*r.NormFloat64(), 1)),
		)
	}
	for _, algo := range Algorithms {
		tree := Build(tris, testConfig(algo))
		for _, w := range []int{4, 16} {
			checkPacketAgainstScalar(t, tree, rays, w, algo.String())
		}
	}
}

// TestPacketPermutationInvariance: a lane's result may not depend on which
// other rays share its packet or in what order — shuffle the packet, trace
// again, and require bitwise-identical per-ray records.
func TestPacketPermutationInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	tris := randomTriangles(r, 600, 10, 0.3)
	tree := Build(tris, testConfig(AlgoInPlace))
	rays := packetTestRays(r, MaxPacketWidth, 10)

	var ps PacketScratch
	tMin, tMax := 1e-9, math.Inf(1)
	tree.IntersectPacket(&ps, rays, tMin, tMax)
	wantHits := ps.Hits
	wantOk := ps.Ok
	tree.OccludedPacket(&ps, rays, tMin, tMax)
	wantOcc := ps.Occ

	for trial := 0; trial < 16; trial++ {
		perm := r.Perm(len(rays))
		shuffled := make([]vecmath.Ray, len(rays))
		for i, p := range perm {
			shuffled[i] = rays[p]
		}
		tree.IntersectPacket(&ps, shuffled, tMin, tMax)
		for i, p := range perm {
			if ps.Ok[i] != wantOk[p] || ps.Hits[i] != wantHits[p] {
				t.Fatalf("trial %d: lane %d (ray %d): %+v ok=%v != %+v ok=%v under permutation",
					trial, i, p, ps.Hits[i], ps.Ok[i], wantHits[p], wantOk[p])
			}
		}
		tree.OccludedPacket(&ps, shuffled, tMin, tMax)
		for i, p := range perm {
			if ps.Occ[i] != wantOcc[p] {
				t.Fatalf("trial %d: lane %d (ray %d): occluded=%v != %v under permutation",
					trial, i, p, ps.Occ[i], wantOcc[p])
			}
		}
	}
}

// TestPacketLazyFirstTouch: packet traversal must expand suspended lazy
// subtrees itself (first contact through IntersectPacket/OccludedPacket,
// not via a prior scalar pass) and still match scalar results bitwise.
func TestPacketLazyFirstTouch(t *testing.T) {
	r := rand.New(rand.NewSource(271828))
	tris := randomTriangles(r, 1200, 10, 0.25)
	rays := packetTestRays(r, 128, 10)

	fresh := Build(tris, testConfig(AlgoLazy))
	if fresh.NumDeferred() == 0 {
		t.Fatal("lazy tree deferred nothing — test exercises no expansion")
	}
	checkPacketAgainstScalar(t, fresh, rays, 8, "lazy-first-touch")
	if fresh.NumExpanded() == 0 {
		t.Fatal("packet traversal expanded nothing")
	}

	// And occlusion-first on a second fresh tree.
	occFirst := Build(tris, testConfig(AlgoLazy))
	var ps PacketScratch
	tree := occFirst
	tree.OccludedPacket(&ps, rays[:16], 1e-9, math.Inf(1))
	for l, ray := range rays[:16] {
		if socc := tree.Occluded(ray, 1e-9, math.Inf(1)); ps.Occ[l] != socc {
			t.Fatalf("occlusion-first lane %d: packet %v != scalar %v", l, ps.Occ[l], socc)
		}
	}
}

// TestPacketZeroAlloc pins the steady-state allocation behaviour of packet
// traversal: after the scratch's first-use stack growth, tracing packets
// allocates nothing.
func TestPacketZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless under -race")
	}
	tree, _ := allocTestTree(t, AlgoSortOnce, 3000)
	r := rand.New(rand.NewSource(77))
	rays := make([]vecmath.Ray, 64)
	for i := range rays {
		origin := vecmath.V(r.Float64()*10, r.Float64()*10, -5)
		target := vecmath.V(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		rays[i] = vecmath.Towards(origin, target)
	}
	var ps PacketScratch
	var hits int
	if avg := testing.AllocsPerRun(200, func() {
		for start := 0; start < len(rays); start += 16 {
			tree.IntersectPacket(&ps, rays[start:start+16], 1e-9, math.Inf(1))
			for l := 0; l < 16; l++ {
				if ps.Ok[l] {
					hits++
				}
			}
		}
	}); avg != 0 {
		t.Errorf("IntersectPacket allocates %.1f objects per batch, want 0", avg)
	}
	if hits == 0 {
		t.Fatal("no packet lane hit anything — the probe exercised nothing")
	}
	if avg := testing.AllocsPerRun(200, func() {
		for start := 0; start < len(rays); start += 16 {
			tree.OccludedPacket(&ps, rays[start:start+16], 1e-9, math.Inf(1))
		}
	}); avg != 0 {
		t.Errorf("OccludedPacket allocates %.1f objects per batch, want 0", avg)
	}
}

// TestPacketDegenerateInputs: empty packets, single-lane packets, rays that
// miss the bounds entirely, and zero-direction rays must not panic and must
// match scalar verdicts.
func TestPacketDegenerateInputs(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tree := Build(randomTriangles(r, 200, 10, 0.3), testConfig(AlgoNodeLevel))
	var ps PacketScratch

	if d := tree.IntersectPacket(&ps, nil, 1e-9, math.Inf(1)); d != 0 {
		t.Fatalf("empty packet demoted %d", d)
	}
	tree.OccludedPacket(&ps, nil, 1e-9, math.Inf(1))

	rays := []vecmath.Ray{
		vecmath.NewRay(vecmath.V(100, 100, 100), vecmath.V(1, 0, 0)), // misses bounds
		vecmath.NewRay(vecmath.V(5, 5, -5), vecmath.V(0, 0, 0)),      // zero direction
		vecmath.NewRay(vecmath.V(5, 5, -5), vecmath.V(0, 0, 1)),      // axis-parallel hit-ish
		vecmath.NewRay(vecmath.V(-5, 5, 5), vecmath.V(1, 0, 0)),      // axis-parallel
	}
	checkPacketAgainstScalar(t, tree, rays, len(rays), "degenerate")
	checkPacketAgainstScalar(t, tree, rays, 1, "degenerate-width-1")

	defer func() {
		if recover() == nil {
			t.Fatal("oversized packet did not panic")
		}
	}()
	tree.IntersectPacket(&ps, make([]vecmath.Ray, MaxPacketWidth+1), 0, 1)
}
