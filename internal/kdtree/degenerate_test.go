package kdtree

import (
	"math"
	"testing"

	"kdtune/internal/vecmath"
)

// degenerateSoup is a mesh with nothing a builder can use: NaN and Inf
// vertices plus collapsed (point and segment) triangles. NaN/Inf triangles
// have non-finite bounds and are skipped at the root; collapsed triangles
// survive into the tree (zero-area is legal input) but must not break any
// query.
func degenerateSoup() []vecmath.Triangle {
	nan, inf := math.NaN(), math.Inf(1)
	p := vecmath.V(1, 2, 3)
	return []vecmath.Triangle{
		vecmath.Tri(vecmath.V(nan, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(inf, 0, 0), vecmath.V(0, 1, 0)),
		vecmath.Tri(vecmath.V(0, 0, -inf), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
		vecmath.Tri(vecmath.V(nan, nan, nan), vecmath.V(nan, nan, nan), vecmath.V(nan, nan, nan)),
		vecmath.Tri(p, p, p),                                                    // point
		vecmath.Tri(p, p, vecmath.V(4, 5, 6)),                                   // segment
		vecmath.Tri(p, vecmath.V(4, 5, 6), p),                                   // segment, other order
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 1, 1), vecmath.V(2, 2, 2)), // collinear
	}
}

// exerciseQueries runs every public query against the tree; the point is
// that none of them panics, loops forever, or fabricates hits out of
// nothing when the tree is (near-)empty.
func exerciseQueries(t *testing.T, label string, tree *Tree) {
	t.Helper()
	if err := tree.Validate(); err != nil {
		t.Fatalf("%s: invalid tree: %v", label, err)
	}
	ray := vecmath.NewRay(vecmath.V(0, 0, -10), vecmath.V(0, 0, 1))
	if _, ok := tree.Intersect(ray, 1e-9, math.Inf(1)); ok {
		// Degenerate triangles are non-intersectable by construction
		// (vecmath rejects zero-area normals), so any hit is phantom.
		t.Errorf("%s: phantom intersection", label)
	}
	if tree.Occluded(ray, 1e-9, math.Inf(1)) {
		t.Errorf("%s: phantom occlusion", label)
	}
	tree.RangeQuery(vecmath.AABB{Min: vecmath.V(-100, -100, -100), Max: vecmath.V(100, 100, 100)})
	tree.NearestNeighbor(vecmath.V(0, 0, 0))
}

func TestBuildNilAndEmptyInput(t *testing.T) {
	for _, a := range allAlgorithms {
		for _, tris := range [][]vecmath.Triangle{nil, {}} {
			tree := Build(tris, testConfig(a))
			if tree == nil {
				t.Fatalf("%v: nil tree", a)
			}
			if n := tree.NumNodes(); n != 1 {
				t.Errorf("%v: empty input built %d nodes, want the single empty leaf", a, n)
			}
			exerciseQueries(t, a.String()+"/empty", tree)
			if got := tree.RangeQuery(vecmath.AABB{Min: vecmath.V(-1, -1, -1), Max: vecmath.V(1, 1, 1)}); len(got) != 0 {
				t.Errorf("%v: RangeQuery on empty tree returned %v", a, got)
			}
			if _, _, ok := tree.NearestNeighbor(vecmath.V(0, 0, 0)); ok {
				t.Errorf("%v: NearestNeighbor found something in an empty tree", a)
			}
		}
	}
}

func TestBuildAllDegenerateInput(t *testing.T) {
	tris := degenerateSoup()
	for _, a := range allAlgorithms {
		tree := Build(tris, testConfig(a))
		exerciseQueries(t, a.String()+"/degenerate", tree)
	}
}

// TestBuildGuardedDegenerateInput: the guarded entry point and the plain one
// must agree on pathological input, and a guard must not misfire on it.
func TestBuildGuardedDegenerateInput(t *testing.T) {
	tris := degenerateSoup()
	g := Guard{MaxDepth: 64, MaxArenaBytes: 1 << 30}
	for _, a := range allAlgorithms {
		tree, err := NewBuilder().BuildGuarded(tris, testConfig(a), g)
		if err != nil {
			t.Fatalf("%v: guarded build of degenerate soup aborted: %v", a, err)
		}
		exerciseQueries(t, a.String()+"/guarded-degenerate", tree)
	}
}

// TestBuilderReuseAcrossDegenerateInput: feeding a Builder garbage must not
// poison subsequent real builds (the frame loop alternates freely).
func TestBuilderReuseAcrossDegenerateInput(t *testing.T) {
	real := []vecmath.Triangle{
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
		vecmath.Tri(vecmath.V(0, 0, 1), vecmath.V(1, 0, 1), vecmath.V(0, 1, 1)),
	}
	for _, a := range allAlgorithms {
		b := NewBuilder()
		want := NewBuilder().Build(real, testConfig(a))
		b.Build(degenerateSoup(), testConfig(a))
		b.Build(nil, testConfig(a))
		got := b.Build(real, testConfig(a))
		if err := sameTree(want, got); err != nil {
			t.Errorf("%v: tree after degenerate interleave differs: %v", a, err)
		}
		hit, ok := got.Intersect(vecmath.NewRay(vecmath.V(0.2, 0.2, -1), vecmath.V(0, 0, 1)), 0, 10)
		if !ok || hit.Tri != 0 {
			t.Errorf("%v: lost the real geometry: hit=%+v ok=%v", a, hit, ok)
		}
	}
}
