package kdtree

import (
	"math"
	"slices"
	"sync"

	"kdtune/internal/parallel"
	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

// AlgoSortOnce is the full O(N log N) construction of Wald & Havran ("On
// building fast kd-trees for ray tracing, and on doing that in O(N log N)",
// §4): candidate-plane events for all primitives and all three axes are
// generated and sorted ONCE; the recursion then classifies primitives
// against the chosen plane and splices the sorted event list into the
// children in linear time, never sorting again (except for the few
// re-clipped straddlers). The paper's node-level variant (§IV-A) uses the
// simpler per-node-sort formulation; this engine is the reference upgrade
// the same work describes, kept as a separate algorithm so the two can be
// benchmarked against each other (BenchmarkSortOnceVsPerNode).
//
// Subtrees parallelise exactly like the node-level builder: every node's
// state (slots, events, classification) is private, so tasks never share
// mutable data.
const AlgoSortOnce Algorithm = 101

// Event kinds and the per-slot classification of the splice step.
const (
	soEnd    uint8 = 0 // primitive extent ends at pos
	soPlanar uint8 = 1 // zero-extent primitive lies at pos
	soStart  uint8 = 2 // primitive extent starts at pos

	clsBoth  uint8 = 0 // straddles the plane: duplicated, events re-generated
	clsLeft  uint8 = 1 // entirely left: events spliced through
	clsRight uint8 = 2 // entirely right
)

// soEvent is one candidate plane: the endpoint of slot's clipped bounds
// along axis. Slots index the node's private item list, not global
// triangle ids, so sibling tasks never alias classification state.
type soEvent struct {
	pos  float64
	slot int32
	axis uint8
	kind uint8
}

// soLess orders events by (pos, axis, kind): the restriction to any single
// axis is then ordered by (pos, kind) with ends before planars before
// starts, which is what the sweep needs; grouping by (pos, axis) lets one
// pass evaluate all three axes.
func soLess(a, b soEvent) int {
	switch {
	case a.pos < b.pos:
		return -1
	case a.pos > b.pos:
		return 1
	}
	if a.axis != b.axis {
		return int(a.axis) - int(b.axis)
	}
	return int(a.kind) - int(b.kind)
}

// buildSortOnce is the entry point: generate + sort all events, recurse.
func (c *buildCtx) buildSortOnce() vecmath.AABB {
	a := &c.b.main
	items, bounds := c.rootItems(a)
	if len(items) == 0 {
		return vecmath.AABB{}
	}
	events := a.allocEvents(6 * len(items))[:0]
	for slot, it := range items {
		events = appendEvents(events, int32(slot), it.bounds)
	}
	parallel.SortFuncCancel(c.canceler(), events, c.cfg.Workers, soLess)
	c.recurseSortOnce(a, items, events, bounds, 0)
	return bounds
}

// appendEvents emits the (up to six) events of one slot's bounds.
func appendEvents(dst []soEvent, slot int32, b vecmath.AABB) []soEvent {
	for axis := vecmath.AxisX; axis <= vecmath.AxisZ; axis++ {
		lo, hi := b.Min.Axis(axis), b.Max.Axis(axis)
		if lo == hi {
			dst = append(dst, soEvent{lo, slot, uint8(axis), soPlanar})
		} else {
			dst = append(dst,
				soEvent{lo, slot, uint8(axis), soStart},
				soEvent{hi, slot, uint8(axis), soEnd})
		}
	}
	return dst
}

// sweepEvents finds the best split with a single pass over the (sorted)
// event list, running the three per-axis sweeps simultaneously.
func (c *buildCtx) sweepEvents(events []soEvent, bounds vecmath.AABB, n int) (sah.Split, bool) {
	best := sah.Split{Cost: math.Inf(1)}
	found := false
	areaNode := bounds.SurfaceArea()
	if areaNode <= 0 || n == 0 {
		return best, false
	}
	var nl [3]int
	nr := [3]int{n, n, n}

	for i := 0; i < len(events); {
		pos, axis := events[i].pos, events[i].axis
		var pEnd, pPlanar, pStart int
		for i < len(events) && events[i].pos == pos && events[i].axis == axis && events[i].kind == soEnd {
			pEnd++
			i++
		}
		for i < len(events) && events[i].pos == pos && events[i].axis == axis && events[i].kind == soPlanar {
			pPlanar++
			i++
		}
		for i < len(events) && events[i].pos == pos && events[i].axis == axis && events[i].kind == soStart {
			pStart++
			i++
		}
		a := vecmath.Axis(axis)
		nr[axis] -= pEnd + pPlanar

		if pos > bounds.Min.Axis(a) && pos < bounds.Max.Axis(a) {
			l, r := bounds.Split(a, pos)
			al, ar := l.SurfaceArea(), r.SurfaceArea()
			cL := c.params.SplitCost(areaNode, al, ar, nl[axis]+pPlanar, nr[axis], n)
			cR := c.params.SplitCost(areaNode, al, ar, nl[axis], nr[axis]+pPlanar, n)
			cost, dl, dr := cL, pPlanar, 0
			if cR < cL {
				cost, dl, dr = cR, 0, pPlanar
			}
			if cost < best.Cost {
				best = sah.Split{Axis: a, Pos: pos, Cost: cost, NL: nl[axis] + dl, NR: nr[axis] + dr}
				found = true
			}
		}
		nl[axis] += pStart + pPlanar
	}
	return best, found
}

// recurseSortOnce is the splice recursion. Items and events are windows on
// the arena stacks; child windows are carved below them and released after
// both children have been emitted.
func (c *buildCtx) recurseSortOnce(a *arena, items []item, events []soEvent, bounds vecmath.AABB, depth int) {
	if c.checkAbort(depth) {
		return
	}
	if len(items) <= 1 || depth >= c.cfg.MaxDepth {
		c.makeLeaf(a, items, depth)
		return
	}
	split, ok := c.sweepEvents(events, bounds, len(items))
	if !ok || c.params.ShouldTerminate(len(items), split) {
		c.makeLeaf(a, items, depth)
		return
	}
	lb, rb := bounds.Split(split.Axis, split.Pos)

	// Classify each slot against the plane using only the chosen axis's
	// events (Wald–Havran's flag pass): default straddling, overridden by
	// events proving the primitive lies entirely on one side.
	a.cls = ensureLen(a.cls, len(items))
	cls := a.cls
	for i := range cls {
		cls[i] = clsBoth
	}
	for _, e := range events {
		if vecmath.Axis(e.axis) != split.Axis {
			continue
		}
		switch e.kind {
		case soEnd:
			if e.pos <= split.Pos {
				cls[e.slot] = clsLeft
			}
		case soStart:
			if e.pos >= split.Pos {
				cls[e.slot] = clsRight
			}
		case soPlanar:
			if e.pos <= split.Pos {
				cls[e.slot] = clsLeft // planar-on-plane goes left
			} else {
				cls[e.slot] = clsRight
			}
		}
	}

	// Size the child windows: item capacities from the classification
	// (straddlers may still drop during re-narrowing, so these are upper
	// bounds), event capacities from the per-side event census.
	var nlCap, nrCap int
	for _, cl := range cls {
		switch cl {
		case clsLeft:
			nlCap++
		case clsRight:
			nrCap++
		default:
			nlCap++
			nrCap++
		}
	}
	var celCap, cerCap int
	for _, e := range events {
		switch cls[e.slot] {
		case clsLeft:
			celCap++
		case clsRight:
			cerCap++
		}
	}

	imark := a.markItems()
	emark := a.markEvents()

	// Build child item lists and slot remaps. Straddlers are re-narrowed
	// (clip or box intersection per configuration); a straddler whose
	// narrowed half vanishes drops out of that child entirely.
	a.slotL = ensureLen(a.slotL, len(items))
	a.slotR = ensureLen(a.slotR, len(items))
	leftSlot, rightSlot := a.slotL, a.slotR
	leftItems := a.allocItems(nlCap)[:0]
	rightItems := a.allocItems(nrCap)[:0]
	leftNew := a.evNewL[:0]
	rightNew := a.evNewR[:0]

	for slot, it := range items {
		leftSlot[slot], rightSlot[slot] = -1, -1
		switch cls[slot] {
		case clsLeft:
			leftSlot[slot] = int32(len(leftItems))
			leftItems = append(leftItems, it)
		case clsRight:
			rightSlot[slot] = int32(len(rightItems))
			rightItems = append(rightItems, it)
		default: // straddler
			if b, ok := c.childBounds(it, lb); ok {
				ns := int32(len(leftItems))
				leftSlot[slot] = ns
				leftItems = append(leftItems, item{it.tri, b})
				leftNew = appendEvents(leftNew, ns, b)
			}
			if b, ok := c.childBounds(it, rb); ok {
				ns := int32(len(rightItems))
				rightSlot[slot] = ns
				rightItems = append(rightItems, item{it.tri, b})
				rightNew = appendEvents(rightNew, ns, b)
			}
		}
	}
	a.evNewL = leftNew[:0]
	a.evNewR = rightNew[:0]
	if len(leftItems) == len(items) && len(rightItems) == len(items) {
		a.releaseEvents(emark)
		a.releaseItems(imark)
		c.makeLeaf(a, items, depth)
		return
	}

	// Splice: one ordered pass distributes surviving events; straddler
	// replacements are sorted (few) and merged in.
	leftEvents := a.allocEvents(celCap)[:0]
	rightEvents := a.allocEvents(cerCap)[:0]
	for _, e := range events {
		switch cls[e.slot] {
		case clsLeft:
			e.slot = leftSlot[e.slot]
			leftEvents = append(leftEvents, e)
		case clsRight:
			e.slot = rightSlot[e.slot]
			rightEvents = append(rightEvents, e)
		}
	}
	leftEvents = mergeNewEvents(a, leftEvents, leftNew)
	rightEvents = mergeNewEvents(a, rightEvents, rightNew)

	c.counters.noteInner()
	self := a.emitInner(split.Axis, split.Pos)
	if depth < c.spawnCap {
		la, ra := c.b.getArena(), c.b.getArena()
		var wg sync.WaitGroup
		wg.Add(2)
		//kdlint:nocancel subtree task polls the build Canceler via checkAbort at every node
		c.pool.Spawn(func() {
			defer wg.Done()
			c.recurseSortOnce(la, leftItems, leftEvents, lb, depth+1)
		})
		//kdlint:nocancel subtree task polls the build Canceler via checkAbort at every node
		c.pool.Spawn(func() {
			defer wg.Done()
			c.recurseSortOnce(ra, rightItems, rightEvents, rb, depth+1)
		})
		wg.Wait()
		a.graft(la)
		a.patchRight(self, a.graft(ra))
		c.b.putArena(la)
		c.b.putArena(ra)
	} else {
		c.recurseSortOnce(a, leftItems, leftEvents, lb, depth+1)
		a.patchRight(self, int32(len(a.nodes)))
		c.recurseSortOnce(a, rightItems, rightEvents, rb, depth+1)
	}
	a.releaseEvents(emark)
	a.releaseItems(imark)
}

// mergeNewEvents sorts the regenerated straddler events and merges them
// with the already-ordered spliced window, returning the merged window
// (carved off the arena's event stack; the spliced window is simply
// abandoned until the node's release).
func mergeNewEvents(a *arena, spliced, fresh []soEvent) []soEvent {
	if len(fresh) == 0 {
		return spliced
	}
	slices.SortFunc(fresh, soLess)
	out := a.allocEvents(len(spliced) + len(fresh))[:0]
	i, j := 0, 0
	for i < len(spliced) && j < len(fresh) {
		if soLess(spliced[i], fresh[j]) <= 0 {
			out = append(out, spliced[i])
			i++
		} else {
			out = append(out, fresh[j])
			j++
		}
	}
	out = append(out, spliced[i:]...)
	out = append(out, fresh[j:]...)
	return out
}
