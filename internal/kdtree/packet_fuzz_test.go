package kdtree

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"kdtune/internal/vecmath"
)

// fuzzPacketRays decodes raw fuzzer bytes into rays: 6 float64 per ray
// (origin, direction), bit-for-bit, so zero, denormal, NaN and infinite
// components — including the axis-parallel and in-plane cases whose ulp
// inversions the scalar traversal's boundary slack exists for — occur
// naturally. At most one full packet is decoded.
func fuzzPacketRays(data []byte) []vecmath.Ray {
	const rayBytes = 6 * 8
	n := len(data) / rayBytes
	if n > MaxPacketWidth {
		n = MaxPacketWidth
	}
	rays := make([]vecmath.Ray, n)
	for i := range rays {
		var c [6]float64
		for j := range c {
			c[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*rayBytes+j*8:]))
		}
		rays[i] = vecmath.NewRay(vecmath.V(c[0], c[1], c[2]), vecmath.V(c[3], c[4], c[5]))
	}
	return rays
}

func fuzzRaySeedBytes(rays ...vecmath.Ray) []byte {
	var buf bytes.Buffer
	for _, r := range rays {
		for _, x := range []float64{r.Origin.X, r.Origin.Y, r.Origin.Z, r.Dir.X, r.Dir.Y, r.Dir.Z} {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
			buf.Write(b[:])
		}
	}
	return buf.Bytes()
}

// FuzzPacketTraverse is the packet-vs-scalar differential fuzzer: whatever
// geometry and ray soup arrive, every packet lane must reproduce the scalar
// traversal's hit record bitwise and its occlusion verdict exactly. The
// seeds aim at the boundary cases scalar traversal historically got wrong
// (in-plane rays on coplanar geometry, axis-parallel rays, degenerate
// directions) plus mixed-direction packets that force demotion.
func FuzzPacketTraverse(f *testing.F) {
	quad := []vecmath.Triangle{
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(2, 0, 0), vecmath.V(0, 2, 0)),
		vecmath.Tri(vecmath.V(2, 2, 0), vecmath.V(0, 2, 0), vecmath.V(2, 0, 0)),
		vecmath.Tri(vecmath.V(0, 0, 1), vecmath.V(2, 0, 1), vecmath.V(0, 2, 1)),
		vecmath.Tri(vecmath.V(1, 1, -1), vecmath.V(1.5, 1, -1), vecmath.V(1, 1.5, -1)),
	}
	// In-plane ray (z=0, dz=0) over coplanar geometry, an axis-parallel ray,
	// a degenerate zero-direction ray, and two opposed rays (forced near/far
	// disagreement -> demotion).
	f.Add(fuzzSeedBytes(quad...), fuzzRaySeedBytes(
		vecmath.NewRay(vecmath.V(-1, 0.5, 0), vecmath.V(1, 0, 0)),
		vecmath.NewRay(vecmath.V(0.5, 0.5, -5), vecmath.V(0, 0, 1)),
		vecmath.NewRay(vecmath.V(0.5, 0.5, 5), vecmath.V(0, 0, -1)),
		vecmath.NewRay(vecmath.V(1, 1, 2), vecmath.V(0, 0, 0)),
	), uint8(0), uint8(4))
	// Shallow grazing directions: tiny components whose tSplit products
	// round near interval endpoints (the ulp-inversion class).
	f.Add(fuzzSeedBytes(quad...), fuzzRaySeedBytes(
		vecmath.NewRay(vecmath.V(0.5, 0.5, -3), vecmath.V(1e-13, -1e-13, 1)),
		vecmath.NewRay(vecmath.V(0.5, 0.5, -3), vecmath.V(-1e-13, 1e-13, 1)),
	), uint8(2), uint8(2))
	f.Add([]byte{}, []byte{}, uint8(1), uint8(8))
	f.Add(fuzzSeedBytes(quad[0]), fuzzRaySeedBytes(
		vecmath.NewRay(vecmath.V(math.NaN(), 0, -1), vecmath.V(0, 0, 1)),
		vecmath.NewRay(vecmath.V(0.5, 0.5, math.Inf(-1)), vecmath.V(0, 0, 1)),
	), uint8(3), uint8(16))

	f.Fuzz(func(t *testing.T, triData, rayData []byte, algoPick, widthPick uint8) {
		tris := fuzzTriangles(triData)
		rays := fuzzPacketRays(rayData)
		if len(rays) == 0 {
			return
		}
		algo := Algorithms[int(algoPick)%len(Algorithms)]
		cfg := testConfig(algo)
		cfg.Workers = 1
		tree := Build(tris, cfg)

		w := 1 + int(widthPick)%MaxPacketWidth
		tMin, tMax := 1e-9, math.Inf(1)
		var ps PacketScratch
		for start := 0; start < len(rays); start += w {
			end := min(start+w, len(rays))
			pk := rays[start:end]
			tree.IntersectPacket(&ps, pk, tMin, tMax)
			for l, r := range pk {
				sh, sok := tree.Intersect(r, tMin, tMax)
				if ps.Ok[l] != sok ||
					math.Float64bits(ps.Hits[l].T) != math.Float64bits(sh.T) ||
					ps.Hits[l].Tri != sh.Tri ||
					math.Float64bits(ps.Hits[l].U) != math.Float64bits(sh.U) ||
					math.Float64bits(ps.Hits[l].V) != math.Float64bits(sh.V) {
					t.Fatalf("%v width=%d lane %d: packet %+v ok=%v != scalar %+v ok=%v",
						algo, w, l, ps.Hits[l], ps.Ok[l], sh, sok)
				}
			}
			tree.OccludedPacket(&ps, pk, tMin, tMax)
			for l, r := range pk {
				if socc := tree.Occluded(r, tMin, tMax); ps.Occ[l] != socc {
					t.Fatalf("%v width=%d lane %d: packet occluded=%v != scalar %v",
						algo, w, l, ps.Occ[l], socc)
				}
			}
		}
	})
}
