package kdtree

import (
	"kdtune/internal/parallel"
	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

// Build constructs an SAH kD-tree over tris with the given configuration,
// dispatching to the algorithm selected in cfg. The triangle slice is
// retained by reference; degenerate triangles are kept in leaves (they are
// harmless: intersection tests reject them) but contribute bounds like any
// other primitive only if finite.
func Build(tris []vecmath.Triangle, cfg Config) *Tree {
	cfg = cfg.normalized(len(tris))
	ctx := newBuildCtx(tris, cfg)

	var root *buildNode
	switch cfg.Algorithm {
	case AlgoNodeLevel:
		root = ctx.buildNodeLevel()
	case AlgoNested:
		root = ctx.buildNested()
	case AlgoInPlace:
		root = ctx.buildBreadthFirst(false)
	case AlgoLazy:
		root = ctx.buildBreadthFirst(true)
	case AlgoMedian:
		root = ctx.buildMedian()
	case AlgoSortOnce:
		root = ctx.buildSortOnce()
	default:
		root = ctx.buildNodeLevel()
	}

	return flatten(root, tris, cfg, ctx.counters.snapshot(cfg.Algorithm, len(tris)))
}

// item pairs a triangle index with the triangle's bounds restricted to the
// node currently holding it. Builders thread []item through the recursion
// so each partition step can reuse the already-narrowed boxes.
type item struct {
	tri    int32
	bounds vecmath.AABB
}

// buildCtx is the per-build shared state: immutable inputs plus the task
// pool and statistics counters.
type buildCtx struct {
	tris     []vecmath.Triangle
	cfg      Config
	params   sah.Params
	pool     *parallel.Pool
	counters buildCounters
	spawnCap int // recursion depth below which subtree tasks are spawned
}

func newBuildCtx(tris []vecmath.Triangle, cfg Config) *buildCtx {
	return &buildCtx{
		tris:     tris,
		cfg:      cfg,
		params:   cfg.sahParams(),
		pool:     parallel.NewPool(cfg.Workers),
		spawnCap: cfg.spawnDepth(),
	}
}

// rootItems computes the world bounds and the initial item list (skipping
// triangles without finite bounds).
func (c *buildCtx) rootItems() ([]item, vecmath.AABB) {
	items := make([]item, 0, len(c.tris))
	bounds := vecmath.EmptyAABB()
	for i, tr := range c.tris {
		b := tr.Bounds()
		if !b.Min.IsFinite() || !b.Max.IsFinite() {
			continue
		}
		items = append(items, item{tri: int32(i), bounds: b})
		bounds = bounds.Union(b)
	}
	return items, bounds
}

// makeLeaf materialises a leaf buildNode and records statistics.
func (c *buildCtx) makeLeaf(items []item, bounds vecmath.AABB, depth int) *buildNode {
	tris := make([]int32, len(items))
	for i, it := range items {
		tris[i] = it.tri
	}
	c.counters.noteLeaf(len(tris), depth)
	return &buildNode{bounds: bounds, tris: tris, leaf: true}
}

// makeDeferred materialises a suspended node (lazy builder).
func (c *buildCtx) makeDeferred(items []item, bounds vecmath.AABB, depth int) *buildNode {
	tris := make([]int32, len(items))
	for i, it := range items {
		tris[i] = it.tri
	}
	c.counters.noteDeferred(depth)
	return &buildNode{bounds: bounds, tris: tris, deferred: true}
}

// childBounds returns the bounds of item it inside child box, either by
// re-clipping the source triangle (perfect splits) or by box intersection.
func (c *buildCtx) childBounds(it item, child vecmath.AABB) (vecmath.AABB, bool) {
	if c.cfg.UseClipping {
		return vecmath.ClipTriangleBounds(c.tris[it.tri], child)
	}
	b := it.bounds.Intersect(child)
	if b.IsEmpty() {
		return b, false
	}
	return b, true
}

// partition splits items across the two child boxes of a split plane.
// Primitives overlapping both sides are duplicated (the (Nl+Nr−Nb)·CB term
// of equation 1); primitives lying exactly on the plane go left.
func (c *buildCtx) partition(items []item, split sah.Split, parent vecmath.AABB) (left, right []item, lb, rb vecmath.AABB) {
	lb, rb = parent.Split(split.Axis, split.Pos)
	left = make([]item, 0, split.NL)
	right = make([]item, 0, split.NR)
	for _, it := range items {
		lo := it.bounds.Min.Axis(split.Axis)
		hi := it.bounds.Max.Axis(split.Axis)
		switch {
		case hi <= split.Pos && lo < split.Pos, lo == hi && lo == split.Pos:
			// Entirely left, or planar on the split plane.
			if b, ok := c.childBounds(it, lb); ok {
				left = append(left, item{it.tri, b})
			}
		case lo >= split.Pos:
			if b, ok := c.childBounds(it, rb); ok {
				right = append(right, item{it.tri, b})
			}
		default:
			// Straddler: duplicate into both children.
			if b, ok := c.childBounds(it, lb); ok {
				left = append(left, item{it.tri, b})
			}
			if b, ok := c.childBounds(it, rb); ok {
				right = append(right, item{it.tri, b})
			}
		}
	}
	return left, right, lb, rb
}

// itemBoxes extracts the bounds column of items for the split-search APIs.
func itemBoxes(items []item) []vecmath.AABB {
	boxes := make([]vecmath.AABB, len(items))
	for i, it := range items {
		boxes[i] = it.bounds
	}
	return boxes
}

// decideSplit runs the event sweep and applies the SAH termination rule
// (equation 2). A nil result means "make a leaf".
func (c *buildCtx) decideSplitSweep(items []item, bounds vecmath.AABB, depth int) (sah.Split, bool) {
	if len(items) <= 1 || depth >= c.cfg.MaxDepth {
		return sah.Split{}, false
	}
	// The event sort dominates the sweep; give the full worker budget to
	// the topmost (huge) nodes where few subtree tasks exist yet.
	workers := 1
	if len(items) >= 32768 {
		workers = c.cfg.Workers
	}
	split, ok := sah.FindBestSplitSweepWorkers(c.params, bounds, itemBoxes(items), workers)
	if !ok || c.params.ShouldTerminate(len(items), split) {
		return sah.Split{}, false
	}
	return split, true
}
