package kdtree

import (
	"kdtune/internal/faultinject"
	"kdtune/internal/parallel"
	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

// Build constructs an SAH kD-tree over tris with the given configuration,
// dispatching to the algorithm selected in cfg. The triangle slice is
// retained by reference; degenerate triangles are kept in leaves (they are
// harmless: intersection tests reject them) but contribute bounds like any
// other primitive only if finite.
//
// Build is the convenience wrapper over a fresh Builder; frame loops that
// rebuild every frame should retain a Builder and call its Build method so
// all construction scratch is reused.
func Build(tris []vecmath.Triangle, cfg Config) *Tree {
	return NewBuilder().Build(tris, cfg)
}

// item pairs a triangle index with the triangle's bounds restricted to the
// node currently holding it. Builders thread []item through the recursion
// so each partition step can reuse the already-narrowed boxes.
type item struct {
	tri    int32
	bounds vecmath.AABB
}

// buildCtx is the per-build shared state: immutable inputs plus the task
// pool, statistics counters, the owning Builder (arena source) and the
// abort guard (nil only transiently inside prepare; every build arms it).
type buildCtx struct {
	tris     []vecmath.Triangle
	cfg      Config
	params   sah.Params
	pool     *parallel.Pool
	counters buildCounters
	spawnCap int // recursion depth below which subtree tasks are spawned
	b        *Builder
	guard    *buildGuard
}

// rootItems computes the world bounds and the initial item list (skipping
// triangles without finite bounds). The list is carved off a's item stack
// and lives for the whole build.
func (c *buildCtx) rootItems(a *arena) ([]item, vecmath.AABB) {
	return c.rootItemsInto(a.allocItems(len(c.tris))[:0])
}

// rootItemsInto is rootItems appending into a caller-provided buffer (the
// breadth-first builders keep root items in their ping-pong level arrays
// rather than on an arena stack).
func (c *buildCtx) rootItemsInto(dst []item) ([]item, vecmath.AABB) {
	items := dst
	bounds := vecmath.EmptyAABB()
	for i, tr := range c.tris {
		b := tr.Bounds()
		if !b.Min.IsFinite() || !b.Max.IsFinite() {
			continue
		}
		items = append(items, item{tri: int32(i), bounds: b})
		bounds = bounds.Union(b)
	}
	return items, bounds
}

// makeLeaf emits a leaf into the arena and records statistics.
func (c *buildCtx) makeLeaf(a *arena, items []item, depth int) {
	if faultinject.Active() && c.guard != nil {
		faultinject.Check(faultinject.SiteBuildLeaf, int(c.guard.leafSeq.Add(1))-1)
	}
	a.emitLeaf(items)
	c.counters.noteLeaf(len(items), depth)
}

// makeDeferred emits a suspended node (lazy builder).
func (c *buildCtx) makeDeferred(a *arena, items []item, bounds vecmath.AABB, depth int) {
	a.emitDeferred(items, bounds)
	c.counters.noteDeferred(depth)
}

// childBounds returns the bounds of item it inside child box, either by
// re-clipping the source triangle (perfect splits) or by box intersection.
func (c *buildCtx) childBounds(it item, child vecmath.AABB) (vecmath.AABB, bool) {
	if c.cfg.UseClipping {
		return vecmath.ClipTriangleBounds(c.tris[it.tri], child)
	}
	b := it.bounds.Intersect(child)
	if b.IsEmpty() {
		return b, false
	}
	return b, true
}

// partitionItems splits items across the two child boxes of the plane
// {axis = pos}. Primitives overlapping both sides are duplicated (the
// (Nl+Nr−Nb)·CB term of equation 1); primitives lying exactly on the plane
// go left. The child lists are carved off a's item stack: a cheap counting
// pass sizes the windows exactly (the side tests are repeated without the
// childBounds narrowing, which can only drop items, so the counts are safe
// upper bounds — the SAH's NL/NR are not, since the sweep may count planar
// primitives on the other side).
//
// The caller brackets the call with markItems/releaseItems around the child
// recursion.
func (c *buildCtx) partitionItems(a *arena, items []item, axis vecmath.Axis, pos float64, lb, rb vecmath.AABB) (left, right []item) {
	var nl, nr int
	for i := range items {
		lo := items[i].bounds.Min.Axis(axis)
		hi := items[i].bounds.Max.Axis(axis)
		if lo < pos || (lo == hi && lo == pos) {
			nl++
		}
		if hi > pos {
			nr++
		}
	}
	left = a.allocItems(nl)[:0]
	right = a.allocItems(nr)[:0]
	for _, it := range items {
		lo := it.bounds.Min.Axis(axis)
		hi := it.bounds.Max.Axis(axis)
		if lo < pos || (lo == hi && lo == pos) {
			if b, ok := c.childBounds(it, lb); ok {
				left = append(left, item{it.tri, b})
			}
		}
		if hi > pos {
			if b, ok := c.childBounds(it, rb); ok {
				right = append(right, item{it.tri, b})
			}
		}
	}
	return left, right
}

// decideSplitSweep runs the event sweep and applies the SAH termination rule
// (equation 2). A false result means "make a leaf". The bounds column is
// staged through a's scratch (dead once the search returns).
func (c *buildCtx) decideSplitSweep(a *arena, items []item, bounds vecmath.AABB, depth int) (sah.Split, bool) {
	if len(items) <= 1 || depth >= c.cfg.MaxDepth {
		return sah.Split{}, false
	}
	// The event sort dominates the sweep; give the full worker budget to
	// the topmost (huge) nodes where few subtree tasks exist yet.
	workers := 1
	if len(items) >= 32768 {
		workers = c.cfg.Workers
	}
	a.boxes = a.boxes[:0]
	for i := range items {
		a.boxes = append(a.boxes, items[i].bounds)
	}
	split, ok := sah.FindBestSplitSweepCancel(c.canceler(), c.params, bounds, a.boxes, workers)
	if !ok || c.params.ShouldTerminate(len(items), split) {
		return sah.Split{}, false
	}
	return split, true
}
