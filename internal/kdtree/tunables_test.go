package kdtree

import (
	"math/rand"
	"testing"

	"kdtune/internal/autotune"
)

// randomBuildVector draws one random build-side tunable vector. The
// scheduling dimensions (Bins, ScatterGrain, BinGrain, SplitBias) are drawn
// from the exact value sets the registry would search — Tunable.Values() —
// so the property test sweeps precisely the space the tuner can reach.
func randomBuildVector(t *testing.T, r *rand.Rand, cfg *Config) {
	t.Helper()
	reg := autotune.NewRegistry()
	if err := RegisterBuildTunables(reg, &cfg.Bins, &cfg.ScatterGrain, &cfg.BinGrain, &cfg.SplitBias); err != nil {
		t.Fatal(err)
	}
	for _, tn := range reg.Tunables() {
		vals, err := tn.Values()
		if err != nil {
			t.Fatal(err)
		}
		*tn.Target = vals[r.Intn(len(vals))]
	}
	cfg.CI = float64(3 + r.Intn(99))
	cfg.CB = float64(r.Intn(61))
	cfg.S = 1 + r.Intn(8)
	cfg.R = 16 << r.Intn(10) // [16, 8192], lazy only
}

// TestRandomVectorsDeterministicAcrossWorkers is the PR 8 determinism
// property: for ANY fixed tunable vector — cost params, bin count, both
// grains, split bias — every worker count must emit the bitwise-identical
// tree. Grains and bias may only reshape the schedule; Bins legitimately
// changes the tree, but identically for every worker count.
func TestRandomVectorsDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(801))
	vectors := 4
	if testing.Short() {
		vectors = 2
	}
	tris := randomTriangles(r, 2500, 10, 0.25)
	for v := 0; v < vectors; v++ {
		cfg := Config{}
		randomBuildVector(t, r, &cfg)
		for _, a := range Algorithms {
			c := cfg
			c.Algorithm = a
			ref := c
			ref.Workers = 1
			want := Build(tris, ref)
			for _, w := range []int{2, 3 + r.Intn(8)} {
				cw := c
				cw.Workers = w
				if err := sameTree(want, Build(tris, cw)); err != nil {
					t.Fatalf("%v workers=%d vector {CI=%v CB=%v S=%d R=%d B=%d G=%d GB=%d SB=%d}: %v",
						a, w, c.CI, c.CB, c.S, c.R, c.Bins, c.ScatterGrain, c.BinGrain, c.SplitBias, err)
				}
			}
		}
	}
}

// TestBinsChangesTree guards against the bin count silently not being
// threaded: an 8-bin and a 128-bin search over irregular geometry must pick
// different planes somewhere. (If this ever starts failing spuriously the
// scene is too regular — make it lumpier, don't widen the assertion.)
func TestBinsChangesTree(t *testing.T) {
	r := rand.New(rand.NewSource(802))
	tris := randomTriangles(r, 3000, 10, 0.4)
	coarse := testConfig(AlgoInPlace)
	coarse.Bins = 8
	fine := testConfig(AlgoInPlace)
	fine.Bins = 128
	if err := sameTree(Build(tris, coarse), Build(tris, fine)); err == nil {
		t.Fatal("8-bin and 128-bin builds produced identical trees; Bins is not reaching the split search")
	}
}

// TestGrainVectorSwitchSteadyStateAllocs pins the pooled-arena budget across
// a tuner step that changes the scheduling vector: warm the Builder under
// vector A, switch to a vector with different Bins/grains/bias, allow ONE
// adaptation build for the pools to re-size, and require the same ≤32-alloc
// steady state as the fixed-config test. A grain or bin change must cost one
// transition, not a permanent leak.
func TestGrainVectorSwitchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless under -race")
	}
	if buildChecks {
		t.Skip("the parallelcheck invariant layer allocates per dispatch; counts are meaningless under -tags parallelcheck")
	}
	const budget = 32.0
	r := rand.New(rand.NewSource(803))
	tris := randomTriangles(r, 4000, 10, 0.2)
	for _, algo := range Algorithms {
		a := BaseConfig(algo)
		a.Workers = 1
		a.S = 1
		a.Bins = 32

		b := a
		b.Bins = 64
		b.ScatterGrain = 1024
		b.BinGrain = 8192
		b.SplitBias = 2

		bd := NewBuilder()
		bd.Build(tris, a)
		bd.Build(tris, a) // steady under A...
		bd.Build(tris, b) // ...one adaptation build under B
		avg := testing.AllocsPerRun(5, func() {
			bd.Build(tris, b)
		})
		if avg > budget {
			t.Errorf("%v: steady-state rebuild after a vector switch allocates %.1f objects, budget %.0f", algo, avg, budget)
		}
	}
}
