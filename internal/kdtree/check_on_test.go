//go:build parallelcheck

package kdtree

import (
	"math/rand"
	"testing"
	"time"

	"kdtune/internal/faultinject"
)

// TestBuildCheckLayerActive fails the -tags parallelcheck CI job loudly if
// the kdtree invariant layer is ever wired out (mirrors the parallel
// package's TestInvariantLayerActive).
func TestBuildCheckLayerActive(t *testing.T) {
	if !buildChecks {
		t.Fatal("built with parallelcheck but buildChecks is false")
	}
}

// TestAbortDrainsArenasUnderInjection cross-validates the static arena
// rule with the runtime layer: every abort cause — injected worker panics,
// depth and memory ceilings, and a deadline riding on injected delays —
// must leave the Builder's pooled arenas fully drained. The assertions
// themselves live inside BuildGuarded (assertAbortDrained); this test just
// drives every abort path through them with warm, previously-used arenas.
func TestAbortDrainsArenasUnderInjection(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	tris := randomTriangles(r, 6000, 10, 0.2)
	for _, a := range allAlgorithms {
		b := NewBuilder()
		b.Build(tris, testConfig(a)) // warm the arenas so drain is non-trivial

		in := faultinject.Activate(faultinject.Fault{
			Site: faultinject.SiteBuildNode, Index: 5, Kind: faultinject.KindPanic, Count: 1,
		})
		abortCause(t, b, a, tris, Guard{MaxDepth: 64}, AbortWorkerPanic)
		in.Deactivate()

		abortCause(t, b, a, tris, Guard{MaxDepth: 1}, AbortDepth)
		abortCause(t, b, a, tris, Guard{MaxArenaBytes: 1 << 10}, AbortMemory)

		// A delay injected into every chunk stretches the build past a short
		// deadline, so the abort arrives via the timer while workers are
		// mid-dispatch — the path where a stranded arena is most likely.
		in = faultinject.Activate(faultinject.Fault{
			Site: faultinject.SiteParallelChunk, Index: -1, Kind: faultinject.KindDelay,
			Delay: 2 * time.Millisecond,
		})
		abortCause(t, b, a, tris, Guard{Deadline: time.Millisecond}, AbortDeadline)
		in.Deactivate()

		// The builder must still produce a valid tree afterwards.
		if err := b.Build(tris, testConfig(a)).Validate(); err != nil {
			t.Fatalf("%v: post-abort tree invalid: %v", a, err)
		}
	}
}
