package kdtree

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kdtune/internal/faultinject"
	"kdtune/internal/parallel"
	"kdtune/internal/vecmath"
)

// Guard bounds one build. Zero values disable the corresponding limit, so
// the zero Guard only protects against worker panics (which are always
// contained).
type Guard struct {
	// Deadline aborts the build if it runs longer than this. The frame-loop
	// harness arms it at a multiple of the incumbent frame time so one
	// pathological tuner probe cannot stall the pipeline.
	Deadline time.Duration

	// MaxDepth aborts when any builder recursion exceeds this depth — a
	// tighter, abort-instead-of-clamp version of Config.MaxDepth for
	// detecting runaway trees (tiny CI drives depth up explosively).
	MaxDepth int

	// MaxArenaBytes aborts when the live item/event stacks across all build
	// arenas exceed this many bytes. It tracks the duplication-driven blowup
	// (the CB term) that dominates build memory; fixed node storage is not
	// counted.
	MaxArenaBytes int64
}

// AbortCause classifies why a guarded build stopped.
type AbortCause uint8

const (
	AbortNone        AbortCause = iota
	AbortDeadline               // Guard.Deadline elapsed
	AbortDepth                  // recursion exceeded Guard.MaxDepth
	AbortMemory                 // live arena bytes exceeded Guard.MaxArenaBytes
	AbortWorkerPanic            // a build worker panicked
)

func (c AbortCause) String() string {
	switch c {
	case AbortNone:
		return "none"
	case AbortDeadline:
		return "deadline"
	case AbortDepth:
		return "depth"
	case AbortMemory:
		return "memory"
	case AbortWorkerPanic:
		return "worker-panic"
	}
	return fmt.Sprintf("AbortCause(%d)", uint8(c))
}

// BuildAborted is the typed error BuildGuarded returns when a build was
// stopped. The Builder remains fully reusable: arenas are drained and reset,
// and the next Build produces a tree bitwise-identical to one from a fresh
// Builder.
type BuildAborted struct {
	Cause     AbortCause
	Algorithm Algorithm
	Guard     Guard
	Panic     *parallel.WorkerPanic // set when Cause == AbortWorkerPanic
}

func (e *BuildAborted) Error() string {
	if e.Panic != nil {
		return fmt.Sprintf("kdtree: %v build aborted (%v): %v", e.Algorithm, e.Cause, e.Panic)
	}
	return fmt.Sprintf("kdtree: %v build aborted (%v)", e.Algorithm, e.Cause)
}

// Unwrap exposes the contained worker panic to errors.As chains.
func (e *BuildAborted) Unwrap() error {
	if e.Panic != nil {
		return e.Panic
	}
	return nil
}

// buildGuard is the Builder-owned abort machinery, reset (not reallocated)
// every build. The canceler is shared with every parallel primitive and
// checked at node/chunk granularity; limit breaches and worker panics funnel
// through fail, which records the first cause and trips the canceler so
// in-flight work drains promptly.
type buildGuard struct {
	cc        parallel.Canceler
	limits    Guard
	liveBytes atomic.Int64 // item/event stack bytes across all arenas
	nodeSeq   atomic.Int64 // faultinject ordinal for SiteBuildNode
	leafSeq   atomic.Int64 // faultinject ordinal for SiteBuildLeaf

	mu    sync.Mutex
	gen   uint64 // bumped on arm and disarm; stale deadline timers compare
	cause AbortCause
	wp    *parallel.WorkerPanic
	timer *time.Timer
}

// arm resets the guard for a new build and starts the deadline timer if one
// is configured. The timer closure captures this arming's generation so a
// stale fire from a previous build can never abort the current one.
func (g *buildGuard) arm(limits Guard) {
	g.mu.Lock()
	g.gen++
	gen := g.gen
	g.limits = limits
	g.cause = AbortNone
	g.wp = nil
	g.mu.Unlock()
	g.cc.Reset()
	g.liveBytes.Store(0)
	g.nodeSeq.Store(0)
	g.leafSeq.Store(0)
	if limits.Deadline > 0 {
		g.timer = time.AfterFunc(limits.Deadline, func() { g.failGen(gen, AbortDeadline) })
	}
}

// disarm stops the deadline timer and invalidates its generation.
func (g *buildGuard) disarm() {
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	g.mu.Lock()
	g.gen++
	g.mu.Unlock()
}

// fail records the first abort cause and cancels the build. Later causes
// lose the race and are dropped (the first one is what the caller acted on).
func (g *buildGuard) fail(cause AbortCause, wp *parallel.WorkerPanic) {
	g.mu.Lock()
	if g.cause == AbortNone {
		g.cause = cause
		g.wp = wp
	}
	g.mu.Unlock()
	g.cc.Cancel(&BuildAborted{Cause: cause, Panic: wp})
}

// failGen is fail gated on the arming generation — the deadline timer's
// entry point.
func (g *buildGuard) failGen(gen uint64, cause AbortCause) {
	g.mu.Lock()
	stale := g.gen != gen
	g.mu.Unlock()
	if !stale {
		g.fail(cause, nil)
	}
}

// failure returns the recorded cause (classifying a bare cancellation as a
// deadline-free worker panic never happens; every cancel path sets a cause
// first).
func (g *buildGuard) failure() (AbortCause, *parallel.WorkerPanic) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cause, g.wp
}

// onWorkerPanic is installed as the Builder pool's panic handler: a subtree
// task crashing on its own goroutine becomes an abort cause instead of a
// process death.
func (g *buildGuard) onWorkerPanic(wp *parallel.WorkerPanic) {
	g.fail(AbortWorkerPanic, wp)
}

// addLive adjusts the live arena byte count. Only wired up (non-nil arena
// pointer) when MaxArenaBytes is set, so unguarded builds skip the atomics.
func (g *buildGuard) addLive(delta int64) { g.liveBytes.Add(delta) }

// checkAbort is the per-node cancellation point every builder recursion
// passes through: it probes fault injection, applies the depth and memory
// ceilings, and reports whether the build is canceled (by any cause,
// including the deadline timer and worker panics). Cost when nothing is
// armed: two atomic loads.
func (c *buildCtx) checkAbort(depth int) bool {
	g := c.guard
	if g == nil {
		return false
	}
	if faultinject.Active() {
		faultinject.Check(faultinject.SiteBuildNode, int(g.nodeSeq.Add(1))-1)
	}
	if g.limits.MaxDepth > 0 && depth > g.limits.MaxDepth {
		g.fail(AbortDepth, nil)
	}
	if g.limits.MaxArenaBytes > 0 {
		live := g.liveBytes.Load() + faultinject.ExtraBytes(faultinject.SiteArena)
		if live > g.limits.MaxArenaBytes {
			g.fail(AbortMemory, nil)
		}
	}
	return g.cc.Canceled()
}

// aborted reports whether the build has been canceled without running the
// limit checks — the cheap form for mid-phase bail-outs.
func (c *buildCtx) aborted() bool {
	return c.guard != nil && c.guard.cc.Canceled()
}

// canceler exposes the guard's canceler for the parallel primitives (nil
// when unguarded, which the primitives treat as "never canceled").
func (c *buildCtx) canceler() *parallel.Canceler {
	if c.guard == nil {
		return nil
	}
	return &c.guard.cc
}

// BuildGuarded is Build with fault containment: the guard's deadline, depth
// and memory ceilings abort the build at node/chunk granularity, and any
// worker panic is contained instead of crashing the process. On abort the
// returned error is a *BuildAborted classifying the cause; the Builder's
// pooled arenas stay intact and reusable, and the next Build on it is
// bitwise-identical to one on a fresh Builder.
//
// The returned Tree borrows the Builder's storage exactly like Build's.
func (b *Builder) BuildGuarded(tris []vecmath.Triangle, cfg Config, g Guard) (*Tree, error) {
	cfg = cfg.Clamped().normalized(len(tris))
	c := b.prepare(tris, cfg)
	gd := &b.guard
	gd.arm(g)
	defer gd.disarm()
	c.guard = gd
	if g.MaxArenaBytes > 0 {
		b.main.live = &gd.liveBytes
	}

	var bounds vecmath.AABB
	func() {
		// Contain panics that unwind the root build goroutine itself — from
		// inline pool tasks, single-chunk parallel bodies, or plain build
		// code. Panics on worker goroutines are recovered at their source
		// and arrive via the pool handler or as re-raised *WorkerPanic from
		// a joined primitive, which this recover also catches.
		defer func() {
			if r := recover(); r != nil {
				gd.fail(AbortWorkerPanic, parallel.AsWorkerPanic(-1, r))
			}
		}()
		switch cfg.Algorithm {
		case AlgoNested:
			bounds = c.buildNested()
		case AlgoInPlace:
			bounds = c.buildBreadthFirst(false)
		case AlgoLazy:
			bounds = c.buildBreadthFirst(true)
		case AlgoMedian:
			bounds = c.buildMedian()
		case AlgoSortOnce:
			bounds = c.buildSortOnce()
		default: // AlgoNodeLevel and unknown values
			bounds = c.buildNodeLevel()
		}
	}()

	if gd.cc.Canceled() {
		// A panic may have unwound past a pending subtree join: drain the
		// pool before touching shared state so no worker is still writing
		// into an arena when the caller sees the error. Also reclaim any
		// breadth-first subtree arenas the unwind stranded.
		b.pool.Wait()
		for _, s := range b.bf.subs {
			b.putArena(s)
		}
		b.bf.subs = b.bf.subs[:0]
		b.main.live = nil
		if buildChecks {
			b.assertAbortDrained()
		}
		cause, wp := gd.failure()
		return nil, &BuildAborted{Cause: cause, Algorithm: cfg.Algorithm, Guard: g, Panic: wp}
	}
	b.main.live = nil
	return b.finish(bounds, len(tris)), nil
}
