package kdtree

import (
	"fmt"
	"io"
	"sort"
)

// TreeShape summarises the distribution of leaf sizes and leaf depths of a
// (fully expanded) tree — the quantities the SAH parameters CI/CB steer:
// raising CI deepens trees and shrinks leaves, raising CB merges straddler
// regions into bigger leaves. Harness reports print these next to tuned
// configurations to make the parameter effects visible.
type TreeShape struct {
	LeafSizes  map[int]int // leaf primitive count -> number of leaves
	LeafDepths map[int]int // leaf depth -> number of leaves
}

// Shape walks the tree (expanding lazy subtrees) and tallies leaf sizes and
// depths.
func (t *Tree) Shape() TreeShape {
	t.ExpandAll()
	s := TreeShape{LeafSizes: map[int]int{}, LeafDepths: map[int]int{}}
	t.shapeNode(t.root, 0, &s)
	return s
}

func (t *Tree) shapeNode(idx int32, depth int, s *TreeShape) {
	n := t.nodes[idx]
	switch n.kind() {
	case kindInner:
		t.shapeNode(idx+1, depth+1, s)
		t.shapeNode(n.right(), depth+1, s)
	case kindLeaf:
		s.LeafSizes[int(n.triCount())]++
		s.LeafDepths[depth]++
	case kindDeferred:
		sub := t.deferred[n.deferredIdx()].sub.Load()
		subShape := sub.Shape()
		//kdlint:allow determinism.maprange accumulating counts into a map commutes; order cannot change the histogram
		for size, c := range subShape.LeafSizes {
			s.LeafSizes[size] += c
		}
		//kdlint:allow determinism.maprange accumulating counts into a map commutes; order cannot change the histogram
		for d, c := range subShape.LeafDepths {
			s.LeafDepths[depth+d] += c
		}
	}
}

// MedianLeafSize returns the median primitive count over leaves (0 for an
// empty tree).
func (s TreeShape) MedianLeafSize() int {
	return medianOfHistogram(s.LeafSizes)
}

// MedianLeafDepth returns the median leaf depth.
func (s TreeShape) MedianLeafDepth() int {
	return medianOfHistogram(s.LeafDepths)
}

func medianOfHistogram(h map[int]int) int {
	total := 0
	keys := make([]int, 0, len(h))
	//kdlint:allow determinism.maprange keys are sorted below before any order-sensitive use; the sum commutes
	for k, c := range h {
		total += c
		keys = append(keys, k)
	}
	if total == 0 {
		return 0
	}
	sort.Ints(keys)
	seen := 0
	for _, k := range keys {
		seen += h[k]
		if seen > total/2 {
			return k
		}
	}
	return keys[len(keys)-1]
}

// Print renders a compact two-line histogram summary.
func (s TreeShape) Print(w io.Writer) {
	fmt.Fprintf(w, "leaf sizes:  median %d, histogram %s\n", s.MedianLeafSize(), histString(s.LeafSizes))
	fmt.Fprintf(w, "leaf depths: median %d, histogram %s\n", s.MedianLeafDepth(), histString(s.LeafDepths))
}

func histString(h map[int]int) string {
	keys := make([]int, 0, len(h))
	//kdlint:allow determinism.maprange keys are sorted below before rendering
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := ""
	for i, k := range keys {
		if i >= 12 {
			out += fmt.Sprintf(" ...(+%d more)", len(keys)-i)
			break
		}
		out += fmt.Sprintf(" %d:%d", k, h[k])
	}
	return out
}
