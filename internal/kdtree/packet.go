package kdtree

import (
	"math"
	"math/bits"

	"kdtune/internal/faultinject"
	"kdtune/internal/vecmath"
)

// Packet traversal walks the tree once for a bundle of up to MaxPacketWidth
// coherent rays instead of once per ray. Lanes (bit l of every mask is ray
// rays[l]) share the descent while they agree on the near/far ordering at
// each inner node; per-lane parametric intervals keep the walk exact, and a
// lane whose ordering diverges from the packet is demoted: the scalar core
// (intersectFrom / occludedFrom) finishes the current subtree for it, after
// which it rejoins the packet at the next pending far-subtree pop.
//
// The contract — checked bitwise by the oracle in internal/oracle — is that
// every lane produces exactly the hit record (t, triangle id, barycentrics)
// the scalar Intersect would. This holds by construction:
//
//   - Per-lane intervals evolve by the same arithmetic as the scalar walk
//     (same tSplit product, same boundarySlack comparisons, same in-plane
//     full-interval push), so each lane visits the same leaves in the same
//     order as its scalar twin.
//   - The scalar walk's loop-top early-out ("subtree entirely beyond the
//     best hit") only changes its verdict when best or curMin change, which
//     happens at leaves and pops; applying it per lane at pop time is
//     therefore exactly equivalent.
//   - Leaf tests call the same vecmath.IntersectRayPre over the same SoA
//     slots in the same order, with the same strict-< best acceptance.
//   - Demotion hands the lane's live (interval, best) state to the scalar
//     core at the divergent node — the continuation a scalar walk would
//     have run from that exact state.

// MaxPacketWidth is the largest number of rays a packet may carry. 16 keeps
// per-entry lane arrays at two cache lines and matches the widest packet
// the autotuner is allowed to pick.
const MaxPacketWidth = 16

// packetStackDepth is the pre-grown shared stack depth; like the scalar
// stack it only grows past this for pathological trees.
const packetStackDepth = traversalStackDepth

// packetEntry is a postponed far-subtree visit shared by every lane whose
// bit is set in mask. t0/t1 are per-lane traversal intervals, valid only at
// lanes in mask (pushes write just those slots, so entries are never copied
// wholesale).
type packetEntry struct {
	node int32
	mask uint32
	t0   [MaxPacketWidth]float64
	t1   [MaxPacketWidth]float64
}

// PacketScratch carries the reusable state of packet traversal. It is the
// caller's per-goroutine scratch — get one, reuse it for every packet that
// goroutine traces (steady state allocates nothing), do not share it
// between goroutines. Results are read from Hits/Ok (IntersectPacket) or
// Occ (OccludedPacket) immediately after a call; the next call overwrites
// them.
type PacketScratch struct {
	Hits [MaxPacketWidth]Hit  // per-lane closest hit (IntersectPacket)
	Ok   [MaxPacketWidth]bool // per-lane hit found (IntersectPacket)
	Occ  [MaxPacketWidth]bool // per-lane occlusion verdict (OccludedPacket)

	// Per-lane unpacked rays and live traversal intervals.
	inv  [MaxPacketWidth]vecmath.Vec3
	org  [MaxPacketWidth][3]float64
	dir  [MaxPacketWidth][3]float64
	idir [MaxPacketWidth][3]float64
	cur0 [MaxPacketWidth]float64
	cur1 [MaxPacketWidth]float64

	stack []packetEntry // shared far-subtree stack, high-water sized
}

// entry returns the stack slot at depth sp, growing the backing array past
// its high-water mark on first use. The slot is written speculatively
// during lane classification and only committed (sp incremented) by the
// caller when some lane actually wants the far child.
func (ps *PacketScratch) entry(sp int) *packetEntry {
	if sp >= len(ps.stack) {
		if ps.stack == nil {
			ps.stack = make([]packetEntry, packetStackDepth)
		}
		for sp >= len(ps.stack) {
			ps.stack = append(ps.stack, packetEntry{})
		}
	}
	return &ps.stack[sp]
}

// load unpacks the rays into lane-indexed form and clips each against the
// tree bounds, returning the mask of lanes that reach the tree at all.
func (ps *PacketScratch) load(t *Tree, rays []vecmath.Ray, tMin, tMax float64) uint32 {
	var mask uint32
	for l := range rays {
		r := rays[l]
		inv := r.EffInvDir()
		ps.inv[l] = inv
		ps.org[l] = [3]float64{r.Origin.X, r.Origin.Y, r.Origin.Z}
		ps.dir[l] = [3]float64{r.Dir.X, r.Dir.Y, r.Dir.Z}
		ps.idir[l] = [3]float64{inv.X, inv.Y, inv.Z}
		t0, t1, ok := t.bounds.IntersectRayInv(r.Origin, r.Dir, inv, tMin, tMax)
		if !ok {
			continue
		}
		mask |= 1 << uint(l)
		ps.cur0[l] = t0
		ps.cur1[l] = t1
	}
	return mask
}

// splitAgreement reports whether every lane in mask orders the children of
// an axis/pos split the same way, and that shared ordering. The ordering
// predicate is the scalar walk's: origin beyond the plane, or on the plane
// heading negative.
func (ps *PacketScratch) splitAgreement(mask uint32, axis int, pos float64) (swap, agree bool) {
	l0 := bits.TrailingZeros32(mask)
	swap = ps.org[l0][axis] > pos || (ps.org[l0][axis] == pos && ps.dir[l0][axis] < 0)
	for m := mask & (mask - 1); m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		if sw := ps.org[l][axis] > pos || (ps.org[l][axis] == pos && ps.dir[l][axis] < 0); sw != swap {
			return swap, false
		}
	}
	return swap, true
}

// IntersectPacket finds, for every ray in rays (at most MaxPacketWidth of
// them), the closest intersection in the open interval (tMin, tMax) —
// results land in ps.Hits[l]/ps.Ok[l], bitwise identical to what
// Tree.Intersect(rays[l], tMin, tMax) returns. It reports the number of
// lane-demotions to scalar traversal (coherent packets demote rarely; the
// renderer's demotion-rate counter is this, summed). Safe for concurrent
// use with distinct PacketScratch values; lazy trees expand under the same
// once-latch as the scalar path.
//
//kdlint:hotpath
func (t *Tree) IntersectPacket(ps *PacketScratch, rays []vecmath.Ray, tMin, tMax float64) (demoted int) {
	if len(rays) > MaxPacketWidth {
		panic("kdtree: packet wider than MaxPacketWidth")
	}
	for l := range rays {
		ps.Hits[l] = Hit{T: math.Inf(1)}
		ps.Ok[l] = false
	}
	mask := ps.load(t, rays, tMin, tMax)
	if mask == 0 {
		for l := range rays {
			ps.Hits[l] = Hit{}
		}
		return 0
	}

	node := t.root
	active := mask
	sp := 0

	for {
		n := t.nodes[node]
		switch n.kind() {
		case kindInner:
			axis := int(n.axis())
			pos := n.pos
			swap, agree := ps.splitAgreement(active, axis, pos)
			if !agree {
				// Lanes disagree on which child is near: shared front-to-back
				// order no longer exists, so every active lane finishes this
				// subtree through the scalar core with its live state.
				for m := active; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if faultinject.Active() {
						faultinject.Check(faultinject.SitePacketDemote, l)
					}
					ps.Hits[l], ps.Ok[l] = t.intersectFrom(rays[l], ps.inv[l], node, ps.cur0[l], ps.cur1[l], tMin, tMax, ps.Hits[l], ps.Ok[l])
					demoted++
				}
				break // pop the next pending subtree
			}
			near, far := node+1, n.right()
			if swap {
				near, far = far, near
			}
			e := ps.entry(sp)
			var nearM, farM uint32
			for m := active; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				bit := uint32(1) << uint(l)
				o := ps.org[l][axis]
				d := ps.dir[l][axis]
				if d == 0 {
					if o == pos {
						// In-plane lane: graze both children with the full
						// interval (see the scalar walk's in-plane case).
						farM |= bit
						e.t0[l] = ps.cur0[l]
						e.t1[l] = ps.cur1[l]
					}
					nearM |= bit
					continue
				}
				tSplit := (pos - o) * ps.idir[l][axis]
				slack := splitSlack(ps.cur0[l], ps.cur1[l])
				switch {
				case tSplit > ps.cur1[l]+slack || tSplit < 0:
					nearM |= bit
				case tSplit < ps.cur0[l]-slack:
					// Far-only: the lane keeps its whole interval but must
					// wait for the shared far visit.
					farM |= bit
					e.t0[l] = ps.cur0[l]
					e.t1[l] = ps.cur1[l]
				default:
					farM |= bit
					e.t0[l] = tSplit
					e.t1[l] = ps.cur1[l]
					nearM |= bit
					ps.cur1[l] = tSplit
				}
			}
			if farM != 0 {
				e.node = far
				e.mask = farM
				sp++
			}
			if nearM != 0 {
				node = near
				active = nearM
				continue
			}
			// All lanes went far-only; the entry just pushed is popped below.

		case kindLeaf:
			for i := n.triStart(); i < n.triStart()+n.triCount(); i++ {
				a, e1, e2 := t.soa.a[i], t.soa.e1[i], t.soa.e2[i]
				ti := int(t.leafTris[i])
				for m := active; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if th, u, v, hit := vecmath.IntersectRayPre(a, e1, e2, rays[l], tMin, tMax); hit && th < ps.Hits[l].T {
						ps.Hits[l] = Hit{T: th, Tri: ti, U: u, V: v}
						ps.Ok[l] = true
					}
				}
			}

		case kindDeferred:
			// Expand once (shared latch), then run each lane through the
			// scalar deferred protocol: fresh best inside the subtree,
			// strict-< merge outside — the packet must not thread its
			// running best into the subtree or it would diverge from the
			// scalar walk's behaviour.
			d := &t.deferred[n.deferredIdx()]
			sub := t.expandDeferred(d)
			for m := active; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				if h, hit := sub.intersectRange(rays[l], ps.inv[l], ps.cur0[l], ps.cur1[l], tMin, tMax); hit && h.T < ps.Hits[l].T {
					ps.Hits[l] = h
					ps.Ok[l] = true
				}
				demoted++
			}
		}

		// Pop the next pending far subtree. A lane rejoins only if the
		// subtree could still contain a closer hit (the scalar loop-top
		// early-out, applied per lane), picking up its stored interval.
		for {
			if sp == 0 {
				for l := range rays {
					if !ps.Ok[l] {
						ps.Hits[l] = Hit{}
					}
				}
				return demoted
			}
			sp--
			e := &ps.stack[sp]
			var next uint32
			for m := e.mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				if ps.Ok[l] && ps.Hits[l].T < e.t0[l] {
					continue
				}
				next |= 1 << uint(l)
				ps.cur0[l] = e.t0[l]
				ps.cur1[l] = e.t1[l]
			}
			if next != 0 {
				node = e.node
				active = next
				break
			}
		}
	}
}

// OccludedPacket answers, for every ray in rays, whether any triangle
// blocks it within (tMin, tMax) — the shadow-packet analogue of
// Tree.Occluded, with verdicts in ps.Occ[l]. Lanes deactivate as soon as
// their verdict is known; the walk ends early once every lane is decided.
// Returns the number of lane-demotions, as IntersectPacket does.
//
//kdlint:hotpath
func (t *Tree) OccludedPacket(ps *PacketScratch, rays []vecmath.Ray, tMin, tMax float64) (demoted int) {
	if len(rays) > MaxPacketWidth {
		panic("kdtree: packet wider than MaxPacketWidth")
	}
	for l := range rays {
		ps.Occ[l] = false
	}
	// undecided holds lanes whose verdict is still open; entries popped off
	// the shared stack are masked against it so a lane occluded in one
	// subtree never traverses another.
	undecided := ps.load(t, rays, tMin, tMax)
	if undecided == 0 {
		return 0
	}

	node := t.root
	active := undecided
	sp := 0

	for {
		n := t.nodes[node]
		switch n.kind() {
		case kindInner:
			axis := int(n.axis())
			pos := n.pos
			swap, agree := ps.splitAgreement(active, axis, pos)
			if !agree {
				for m := active; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if faultinject.Active() {
						faultinject.Check(faultinject.SitePacketDemote, l)
					}
					if t.occludedFrom(rays[l], ps.inv[l], node, ps.cur0[l], ps.cur1[l], tMin, tMax) {
						ps.Occ[l] = true
						undecided &^= 1 << uint(l)
					}
					demoted++
				}
				if undecided == 0 {
					return demoted
				}
				break // pop
			}
			near, far := node+1, n.right()
			if swap {
				near, far = far, near
			}
			e := ps.entry(sp)
			var nearM, farM uint32
			for m := active; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				bit := uint32(1) << uint(l)
				o := ps.org[l][axis]
				d := ps.dir[l][axis]
				if d == 0 {
					if o == pos {
						farM |= bit
						e.t0[l] = ps.cur0[l]
						e.t1[l] = ps.cur1[l]
					}
					nearM |= bit
					continue
				}
				tSplit := (pos - o) * ps.idir[l][axis]
				slack := splitSlack(ps.cur0[l], ps.cur1[l])
				switch {
				case tSplit > ps.cur1[l]+slack || tSplit < 0:
					nearM |= bit
				case tSplit < ps.cur0[l]-slack:
					farM |= bit
					e.t0[l] = ps.cur0[l]
					e.t1[l] = ps.cur1[l]
				default:
					farM |= bit
					e.t0[l] = tSplit
					e.t1[l] = ps.cur1[l]
					nearM |= bit
					ps.cur1[l] = tSplit
				}
			}
			if farM != 0 {
				e.node = far
				e.mask = farM
				sp++
			}
			if nearM != 0 {
				node = near
				active = nearM
				continue
			}

		case kindLeaf:
			for i := n.triStart(); i < n.triStart()+n.triCount(); i++ {
				a, e1, e2 := t.soa.a[i], t.soa.e1[i], t.soa.e2[i]
				for m := active; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if _, _, _, hit := vecmath.IntersectRayPre(a, e1, e2, rays[l], tMin, tMax); hit {
						bit := uint32(1) << uint(l)
						ps.Occ[l] = true
						undecided &^= bit
						active &^= bit
					}
				}
				if active == 0 {
					break
				}
			}
			if undecided == 0 {
				return demoted
			}

		case kindDeferred:
			d := &t.deferred[n.deferredIdx()]
			sub := t.expandDeferred(d)
			for m := active; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				if sub.occludedRange(rays[l], ps.inv[l], ps.cur0[l], ps.cur1[l], tMin, tMax) {
					ps.Occ[l] = true
					undecided &^= 1 << uint(l)
				}
				demoted++
			}
			if undecided == 0 {
				return demoted
			}
		}

		for {
			if sp == 0 {
				return demoted
			}
			sp--
			e := &ps.stack[sp]
			next := e.mask & undecided
			if next == 0 {
				continue
			}
			for m := next; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				ps.cur0[l] = e.t0[l]
				ps.cur1[l] = e.t1[l]
			}
			node = e.node
			active = next
			break
		}
	}
}
