package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"kdtune/internal/vecmath"
)

// randomTriangles scatters n small triangles in the unit-ish cube.
func randomTriangles(r *rand.Rand, n int, extent, size float64) []vecmath.Triangle {
	tris := make([]vecmath.Triangle, n)
	for i := range tris {
		c := vecmath.V(r.Float64()*extent, r.Float64()*extent, r.Float64()*extent)
		tris[i] = vecmath.Tri(
			c.Add(vecmath.V(r.NormFloat64()*size, r.NormFloat64()*size, r.NormFloat64()*size)),
			c.Add(vecmath.V(r.NormFloat64()*size, r.NormFloat64()*size, r.NormFloat64()*size)),
			c.Add(vecmath.V(r.NormFloat64()*size, r.NormFloat64()*size, r.NormFloat64()*size)),
		)
	}
	return tris
}

// bruteForceClosest is the reference intersector.
func bruteForceClosest(tris []vecmath.Triangle, r vecmath.Ray, tMin, tMax float64) (Hit, bool) {
	best := Hit{T: math.Inf(1)}
	found := false
	for i, tr := range tris {
		if th, u, v, hit := tr.IntersectRay(r, tMin, tMax); hit && th < best.T {
			best = Hit{T: th, Tri: i, U: u, V: v}
			found = true
		}
	}
	return best, found
}

func testConfig(a Algorithm) Config {
	c := BaseConfig(a)
	c.Workers = 4
	c.R = 32 // small threshold so lazy trees actually defer in small tests
	return c
}

func TestBuildEmptyScene(t *testing.T) {
	for _, a := range Algorithms {
		tree := Build(nil, testConfig(a))
		if tree == nil {
			t.Fatalf("%v: nil tree for empty scene", a)
		}
		if _, hit := tree.Intersect(vecmath.NewRay(vecmath.V(0, 0, -5), vecmath.V(0, 0, 1)), 0, 100); hit {
			t.Fatalf("%v: hit in empty scene", a)
		}
		if tree.Occluded(vecmath.NewRay(vecmath.V(0, 0, -5), vecmath.V(0, 0, 1)), 0, 100) {
			t.Fatalf("%v: occlusion in empty scene", a)
		}
	}
}

func TestBuildSingleTriangle(t *testing.T) {
	tris := []vecmath.Triangle{
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
	}
	for _, a := range Algorithms {
		tree := Build(tris, testConfig(a))
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		hit, ok := tree.Intersect(vecmath.NewRay(vecmath.V(0.2, 0.2, -1), vecmath.V(0, 0, 1)), 0, 10)
		if !ok || hit.Tri != 0 || math.Abs(hit.T-1) > 1e-12 {
			t.Fatalf("%v: hit = %+v ok=%v", a, hit, ok)
		}
		if _, ok := tree.Intersect(vecmath.NewRay(vecmath.V(5, 5, -1), vecmath.V(0, 0, 1)), 0, 10); ok {
			t.Fatalf("%v: phantom hit", a)
		}
	}
}

func TestAllAlgorithmsValidate(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	tris := randomTriangles(r, 3000, 10, 0.15)
	for _, a := range Algorithms {
		tree := Build(tris, testConfig(a))
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		st := tree.Stats()
		if st.NumTris != len(tris) {
			t.Fatalf("%v: stats NumTris = %d", a, st.NumTris)
		}
		if st.NumNodes == 0 || (st.NumLeaves == 0 && st.NumDefer == 0) {
			t.Fatalf("%v: implausible stats %+v", a, st)
		}
		if st.NumInner != 0 && st.NumInner+1 != st.NumLeaves+st.NumDefer {
			t.Fatalf("%v: binary-tree identity violated: %+v", a, st)
		}
	}
}

func TestTraversalMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	tris := randomTriangles(r, 800, 10, 0.2)
	rays := make([]vecmath.Ray, 400)
	for i := range rays {
		// Mix of rays from outside aiming in, and rays from inside.
		o := vecmath.V(r.Float64()*20-5, r.Float64()*20-5, r.Float64()*20-5)
		target := vecmath.V(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		rays[i] = vecmath.Towards(o, target)
	}
	for _, a := range Algorithms {
		tree := Build(tris, testConfig(a))
		for ri, ray := range rays {
			want, wantHit := bruteForceClosest(tris, ray, 1e-9, math.Inf(1))
			got, gotHit := tree.Intersect(ray, 1e-9, math.Inf(1))
			if wantHit != gotHit {
				t.Fatalf("%v: ray %d hit mismatch: tree=%v brute=%v", a, ri, gotHit, wantHit)
			}
			if !wantHit {
				continue
			}
			if math.Abs(got.T-want.T) > 1e-9*(1+want.T) {
				t.Fatalf("%v: ray %d distance mismatch: tree=%v brute=%v", a, ri, got.T, want.T)
			}
			// Note: got.Tri may differ from want.Tri when two triangles are
			// hit at (numerically) identical distance; the distance check
			// above is the real contract.
		}
	}
}

func TestOccludedMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tris := randomTriangles(r, 500, 8, 0.3)
	for _, a := range Algorithms {
		tree := Build(tris, testConfig(a))
		for i := 0; i < 300; i++ {
			o := vecmath.V(r.Float64()*16-4, r.Float64()*16-4, r.Float64()*16-4)
			p := vecmath.V(r.Float64()*8, r.Float64()*8, r.Float64()*8)
			ray := vecmath.Towards(o, p)
			_, want := bruteForceClosest(tris, ray, 1e-9, 1)
			got := tree.Occluded(ray, 1e-9, 1)
			if want != got {
				t.Fatalf("%v: occlusion mismatch ray %d: tree=%v brute=%v", a, i, got, want)
			}
		}
	}
}

func TestAlgorithmsAgreeWithEachOther(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	tris := randomTriangles(r, 1500, 10, 0.25)
	trees := make([]*Tree, len(Algorithms))
	for i, a := range Algorithms {
		trees[i] = Build(tris, testConfig(a))
	}
	for i := 0; i < 500; i++ {
		o := vecmath.V(-2, r.Float64()*10, r.Float64()*10)
		d := vecmath.V(1, r.NormFloat64()*0.2, r.NormFloat64()*0.2)
		ray := vecmath.NewRay(o, d)
		ref, refHit := trees[0].Intersect(ray, 1e-9, math.Inf(1))
		for ai := 1; ai < len(trees); ai++ {
			got, gotHit := trees[ai].Intersect(ray, 1e-9, math.Inf(1))
			if refHit != gotHit {
				t.Fatalf("ray %d: %v hit=%v but %v hit=%v", i, Algorithms[0], refHit, Algorithms[ai], gotHit)
			}
			if refHit && math.Abs(ref.T-got.T) > 1e-9*(1+ref.T) {
				t.Fatalf("ray %d: %v t=%v but %v t=%v", i, Algorithms[0], ref.T, Algorithms[ai], got.T)
			}
		}
	}
}

func TestLazyDefersAndExpands(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	tris := randomTriangles(r, 4000, 10, 0.1)
	cfg := testConfig(AlgoLazy)
	cfg.R = 256
	tree := Build(tris, cfg)
	if tree.NumDeferred() == 0 {
		t.Fatal("lazy build produced no deferred nodes (R=256 over 4000 tris)")
	}
	if tree.NumExpanded() != 0 {
		t.Fatal("deferred nodes expanded before any ray")
	}
	// One ray expands at most a handful of nodes.
	ray := vecmath.NewRay(vecmath.V(-5, 5, 5), vecmath.V(1, 0.01, 0.01))
	tree.Intersect(ray, 1e-9, math.Inf(1))
	after := tree.NumExpanded()
	if after == 0 {
		t.Fatal("ray through the scene expanded nothing")
	}
	if after == tree.NumDeferred() {
		t.Fatal("single ray expanded every deferred node — laziness is broken")
	}
	tree.ExpandAll()
	if tree.NumExpanded() != tree.NumDeferred() {
		t.Fatal("ExpandAll left suspended nodes")
	}
}

func TestLazyConcurrentExpansion(t *testing.T) {
	// Many goroutines tracing through the same deferred regions: run with
	// -race to check the sync.Once guarding.
	r := rand.New(rand.NewSource(45))
	tris := randomTriangles(r, 3000, 10, 0.15)
	cfg := testConfig(AlgoLazy)
	cfg.R = 128
	tree := Build(tris, cfg)

	rays := make([]vecmath.Ray, 256)
	for i := range rays {
		o := vecmath.V(-2, r.Float64()*10, r.Float64()*10)
		rays[i] = vecmath.NewRay(o, vecmath.V(1, r.NormFloat64()*0.3, r.NormFloat64()*0.3))
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := g; i < len(rays); i += 8 {
				tree.Intersect(rays[i], 1e-9, math.Inf(1))
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	// Expanded trees must agree with brute force afterwards.
	for i := 0; i < 64; i++ {
		want, wantHit := bruteForceClosest(tris, rays[i], 1e-9, math.Inf(1))
		got, gotHit := tree.Intersect(rays[i], 1e-9, math.Inf(1))
		if wantHit != gotHit || (wantHit && math.Abs(got.T-want.T) > 1e-9*(1+want.T)) {
			t.Fatalf("post-expansion mismatch on ray %d", i)
		}
	}
}

func TestDegenerateTrianglesDoNotBreakBuild(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	tris := randomTriangles(r, 200, 5, 0.2)
	// Inject degenerates: a point, a line, and a NaN triangle.
	tris = append(tris,
		vecmath.Tri(vecmath.V(1, 1, 1), vecmath.V(1, 1, 1), vecmath.V(1, 1, 1)),
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 1, 1), vecmath.V(2, 2, 2)),
		vecmath.Tri(vecmath.V(math.NaN(), 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
	)
	for _, a := range Algorithms {
		tree := Build(tris, testConfig(a))
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		// Rays still resolve against the healthy geometry.
		for i := 0; i < 50; i++ {
			o := vecmath.V(r.Float64()*10-2.5, r.Float64()*10-2.5, -3)
			ray := vecmath.NewRay(o, vecmath.V(0, 0, 1))
			want, wantHit := bruteForceClosest(tris, ray, 1e-9, math.Inf(1))
			got, gotHit := tree.Intersect(ray, 1e-9, math.Inf(1))
			if wantHit != gotHit || (wantHit && math.Abs(got.T-want.T) > 1e-9) {
				t.Fatalf("%v: degenerate-scene mismatch", a)
			}
		}
	}
}

func TestCoplanarGeometry(t *testing.T) {
	// A grid of triangles all in the z=0 plane: SAH on Z sees zero-extent;
	// builders must terminate and still answer queries.
	var tris []vecmath.Triangle
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			x, y := float64(i), float64(j)
			tris = append(tris,
				vecmath.Tri(vecmath.V(x, y, 0), vecmath.V(x+1, y, 0), vecmath.V(x, y+1, 0)),
				vecmath.Tri(vecmath.V(x+1, y, 0), vecmath.V(x+1, y+1, 0), vecmath.V(x, y+1, 0)),
			)
		}
	}
	for _, a := range Algorithms {
		tree := Build(tris, testConfig(a))
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		hit, ok := tree.Intersect(vecmath.NewRay(vecmath.V(5.1, 5.1, -2), vecmath.V(0, 0, 1)), 0, 10)
		if !ok || math.Abs(hit.T-2) > 1e-12 {
			t.Fatalf("%v: coplanar grid hit = %+v ok=%v", a, hit, ok)
		}
	}
}

func TestWorkerCountsProduceSameResults(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	tris := randomTriangles(r, 1000, 10, 0.2)
	ray := vecmath.NewRay(vecmath.V(-3, 5, 5), vecmath.V(1, 0.05, -0.03))
	want, wantHit := bruteForceClosest(tris, ray, 1e-9, math.Inf(1))
	for _, a := range Algorithms {
		for _, workers := range []int{1, 2, 8, 32} {
			cfg := testConfig(a)
			cfg.Workers = workers
			tree := Build(tris, cfg)
			got, gotHit := tree.Intersect(ray, 1e-9, math.Inf(1))
			if gotHit != wantHit || (wantHit && math.Abs(got.T-want.T) > 1e-9) {
				t.Fatalf("%v workers=%d: mismatch", a, workers)
			}
		}
	}
}

func TestUseClippingStillCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(48))
	// Large triangles make clipping actually matter.
	tris := randomTriangles(r, 400, 10, 1.5)
	for _, a := range Algorithms {
		cfg := testConfig(a)
		cfg.UseClipping = true
		tree := Build(tris, cfg)
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v clipped: %v", a, err)
		}
		for i := 0; i < 200; i++ {
			o := vecmath.V(r.Float64()*24-7, r.Float64()*24-7, -5)
			ray := vecmath.NewRay(o, vecmath.V(r.NormFloat64()*0.1, r.NormFloat64()*0.1, 1))
			want, wantHit := bruteForceClosest(tris, ray, 1e-9, math.Inf(1))
			got, gotHit := tree.Intersect(ray, 1e-9, math.Inf(1))
			if wantHit != gotHit || (wantHit && math.Abs(got.T-want.T) > 1e-9*(1+want.T)) {
				t.Fatalf("%v clipped: ray %d mismatch", a, i)
			}
		}
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized(1000)
	if c.Workers < 1 || c.CI <= 0 || c.S < 1 || c.R < 1 || c.MaxDepth <= 0 {
		t.Fatalf("normalized config has bad defaults: %+v", c)
	}
	if d := (Config{S: 1, Workers: 1}).spawnDepth(); d != 0 {
		t.Fatalf("spawnDepth(1,1) = %d, want 0", d)
	}
	if d := (Config{S: 4, Workers: 8}).spawnDepth(); d != 5 {
		t.Fatalf("spawnDepth(4,8) = %d, want 5 (2^5=32)", d)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	names := map[Algorithm]string{
		AlgoNodeLevel: "node-level", AlgoNested: "nested",
		AlgoInPlace: "in-place", AlgoLazy: "lazy",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm should still format")
	}
	if AlgoLazy.HasR() != true || AlgoInPlace.HasR() != false {
		t.Error("HasR wrong")
	}
}

func TestBaseConfigMatchesPaper(t *testing.T) {
	c := BaseConfig(AlgoInPlace)
	if c.CI != 17 || c.CB != 10 || c.S != 3 || c.R != 4096 {
		t.Fatalf("C_base = %+v, want (17, 10, 3, 4096)", c)
	}
}

func TestStatsDuplication(t *testing.T) {
	s := BuildStats{NumTris: 100, LeafRefs: 150}
	if s.DuplicationFactor() != 1.5 {
		t.Fatalf("DuplicationFactor = %v", s.DuplicationFactor())
	}
	if (BuildStats{}).DuplicationFactor() != 0 {
		t.Fatal("empty stats duplication should be 0")
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestDeepSceneRespectsMaxDepth(t *testing.T) {
	// Extremely overlapping geometry tempts infinite splitting; MaxDepth
	// and the no-progress guard must hold the line.
	var tris []vecmath.Triangle
	for i := 0; i < 200; i++ {
		f := float64(i) * 1e-4
		tris = append(tris, vecmath.Tri(
			vecmath.V(f, 0, 0), vecmath.V(1+f, 0, 0), vecmath.V(f, 1, 0)))
	}
	for _, a := range Algorithms {
		cfg := testConfig(a)
		cfg.MaxDepth = 10
		tree := Build(tris, cfg)
		tree.ExpandAll()
		if st := tree.Stats(); st.MaxDepth > 10 {
			t.Fatalf("%v: depth %d exceeds cap 10", a, st.MaxDepth)
		}
	}
}

func TestDebugHelpers(t *testing.T) {
	r := rand.New(rand.NewSource(160))
	tris := randomTriangles(r, 300, 8, 0.25)
	tree := Build(tris, testConfig(AlgoNodeLevel))
	p := vecmath.V(4, 4, 4)
	leaf, chain := DebugDescend(tree, p)
	if chain == "" && tree.Stats().NumInner > 0 {
		t.Fatal("descent chain empty on a non-trivial tree")
	}
	// Every triangle in the returned leaf overlaps the leaf's region, so at
	// minimum the indices are valid.
	for _, ti := range leaf {
		if ti < 0 || int(ti) >= len(tris) {
			t.Fatalf("descend returned invalid index %d", ti)
		}
	}
	// DebugIntersect agrees with Intersect on whether a watched triangle's
	// hit is found.
	ray := vecmath.NewRay(vecmath.V(-2, 4, 4), vecmath.V(1, 0.01, 0.02))
	if h, ok := tree.Intersect(ray, 1e-9, math.Inf(1)); ok {
		tested, res := DebugIntersect(tree, ray, 1e-9, math.Inf(1), int32(h.Tri))
		if !tested {
			t.Fatalf("DebugIntersect did not test the winning triangle: %s", res)
		}
	}
}
