package kdtree

import (
	"context"
	"time"
)

// GuardFromContext derives the Guard for one build from a request context
// merged with a static base Guard: the context's deadline (when it has one)
// is converted to a build budget and the tighter of it and base.Deadline
// wins; the depth and memory ceilings always come from base. This makes
// end-to-end deadline plumbing one call at every entry point — an HTTP
// handler passes its request context and the server's static limits, and
// the resulting Guard aborts the build when either boundary is crossed.
//
// A context whose deadline has already passed yields a one-nanosecond
// budget rather than zero: zero would read as "no deadline" and let an
// already-expired request start an unbounded build.
func GuardFromContext(ctx context.Context, base Guard) Guard {
	if ctx == nil {
		return base
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return base
	}
	d := time.Until(dl) //kdlint:allow determinism.time the request deadline is a wall-clock boundary by definition; it bounds when a build stops, never what it builds
	if d <= 0 {
		d = time.Nanosecond
	}
	if base.Deadline <= 0 || d < base.Deadline {
		base.Deadline = d
	}
	return base
}
