package kdtree

import (
	"math/rand"
	"testing"

	"kdtune/internal/sah"
)

func TestSAHCostNeverWorseThanSingleLeaf(t *testing.T) {
	// Each split is only taken when equation (2) says it is profitable, so
	// by induction the finished tree's estimated cost can never exceed the
	// single-leaf estimate N·CI.
	r := rand.New(rand.NewSource(80))
	tris := randomTriangles(r, 2000, 10, 0.2)
	for _, a := range Algorithms {
		cfg := testConfig(a)
		tree := Build(tris, cfg)
		p := sah.Params{CT: sah.FixedCT, CI: cfg.CI, CB: cfg.CB}
		cost := tree.SAHCost(p)
		leaf := p.LeafCost(len(tris))
		if cost <= 0 {
			t.Fatalf("%v: non-positive tree cost %v", a, cost)
		}
		if cost > leaf {
			t.Fatalf("%v: tree cost %v exceeds single-leaf cost %v", a, cost, leaf)
		}
		// A real scene should be drastically cheaper than the flat leaf.
		if cost > leaf/4 {
			t.Errorf("%v: tree cost %v suspiciously close to leaf cost %v", a, cost, leaf)
		}
	}
}

func TestSAHCostRespondsToCI(t *testing.T) {
	// Raising CI makes leaves more expensive relative to traversal, so the
	// builder subdivides deeper; the deeper tree must carry more nodes.
	r := rand.New(rand.NewSource(81))
	tris := randomTriangles(r, 1500, 10, 0.2)

	cheap := testConfig(AlgoNodeLevel)
	cheap.CI = 3
	costly := testConfig(AlgoNodeLevel)
	costly.CI = 101

	tCheap := Build(tris, cheap)
	tCostly := Build(tris, costly)
	if tCostly.Stats().NumNodes <= tCheap.Stats().NumNodes {
		t.Fatalf("CI=101 tree (%d nodes) should be deeper than CI=3 tree (%d nodes)",
			tCostly.Stats().NumNodes, tCheap.Stats().NumNodes)
	}
}

func TestSAHCostEmptyScene(t *testing.T) {
	tree := Build(nil, testConfig(AlgoInPlace))
	if c := tree.SAHCost(sah.DefaultParams()); c != 0 {
		t.Fatalf("empty scene cost = %v", c)
	}
}

func TestHighCBReducesDuplication(t *testing.T) {
	// The CB knob exists to discourage splits that duplicate straddling
	// primitives; cranking it must not increase the duplication factor.
	r := rand.New(rand.NewSource(82))
	tris := randomTriangles(r, 1500, 10, 0.8) // large tris straddle a lot
	lo := testConfig(AlgoNodeLevel)
	lo.CB = 0
	hi := testConfig(AlgoNodeLevel)
	hi.CB = 60
	dupLo := Build(tris, lo).Stats().DuplicationFactor()
	dupHi := Build(tris, hi).Stats().DuplicationFactor()
	if dupHi > dupLo+1e-9 {
		t.Fatalf("CB=60 duplication %.3f exceeds CB=0 duplication %.3f", dupHi, dupLo)
	}
}

func TestSAHCostCountsDeferredAsLeaves(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	tris := randomTriangles(r, 3000, 10, 0.15)
	cfg := testConfig(AlgoLazy)
	cfg.R = 512
	lazy := Build(tris, cfg)
	if lazy.NumDeferred() == 0 {
		t.Skip("no deferred nodes at this R")
	}
	p := sah.Params{CT: sah.FixedCT, CI: cfg.CI, CB: cfg.CB}
	before := lazy.SAHCost(p)
	lazy.ExpandAll()
	after := lazy.SAHCost(p)
	// Expansion subdivides the deferred regions, so the estimated cost
	// must improve (or stay equal if every deferred node became a leaf).
	if after > before+1e-9 {
		t.Fatalf("expansion worsened estimated cost: %v -> %v", before, after)
	}
	if after >= before {
		t.Fatalf("expansion of %d deferred nodes did not reduce cost (%v -> %v)",
			lazy.NumDeferred(), before, after)
	}
}
