package kdtree

import (
	"sync"
	"sync/atomic"

	"kdtune/internal/parallel"
	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

// levelNode is one active node of the breadth-first frontier. Its items
// live in a contiguous range of the level's item array.
type levelNode struct {
	bn     *buildNode // tree node under construction
	bounds vecmath.AABB
	start  int // item range [start, end) in the level array
	end    int
	depth  int
}

// buildBreadthFirst implements the in-place parallel algorithm of §IV-C and
// its lazy variant of §IV-D. The tree is built one level at a time:
//
//  1. For every node of the frontier the best split is found by binning its
//     primitives — parallel across nodes, and within large nodes parallel
//     across primitives (parallel histogram + merge).
//  2. Every (triangle, node) pair is reassigned to the children —
//     embarrassingly parallel across pairs, with duplication for
//     straddlers; offsets come from per-node prefix sums.
//
// Once the frontier is wide enough to keep every worker busy with S
// subtrees each (the S parameter), the remaining nodes are finished as
// independent subtree tasks — the paper's lazy variant describes exactly
// this structure ("parallelized across the primitives in the top-level
// nodes and across subtrees in the lower levels").
//
// When lazy is true, nodes holding fewer than R primitives are suspended
// instead of subdivided; they expand on first ray contact (§IV-D).
func (c *buildCtx) buildBreadthFirst(lazy bool) *buildNode {
	items, bounds := c.rootItems()
	if len(items) == 0 {
		return nil
	}

	root := &buildNode{bounds: bounds}
	frontier := []levelNode{{bn: root, bounds: bounds, start: 0, end: len(items), depth: 0}}
	switchWidth := c.cfg.S * c.cfg.Workers

	for len(frontier) > 0 {
		if len(frontier) >= switchWidth {
			// Enough subtrees for every worker: finish each node as an
			// independent task.
			var wg sync.WaitGroup
			for _, ln := range frontier {
				ln := ln
				sub := items[ln.start:ln.end:ln.end]
				wg.Add(1)
				c.pool.Spawn(func() {
					defer wg.Done()
					c.finishSubtree(ln.bn, sub, ln.bounds, ln.depth, lazy)
				})
			}
			wg.Wait()
			return root
		}
		frontier, items = c.processLevel(frontier, items, lazy)
	}
	return root
}

// finishSubtree completes one frontier node depth-first (sweep-based
// recursion), honouring the lazy threshold.
func (c *buildCtx) finishSubtree(bn *buildNode, items []item, bounds vecmath.AABB, depth int, lazy bool) {
	if lazy && len(items) < c.cfg.R {
		d := c.makeDeferred(items, bounds, depth)
		*bn = *d
		return
	}
	split, ok := c.decideSplitSweep(items, bounds, depth)
	if !ok {
		*bn = *c.makeLeaf(items, bounds, depth)
		return
	}
	left, right, lb, rb := c.partition(items, split, bounds)
	if len(left) == len(items) && len(right) == len(items) {
		*bn = *c.makeLeaf(items, bounds, depth)
		return
	}
	c.counters.noteInner()
	bn.bounds = bounds
	bn.axis = split.Axis
	bn.pos = split.Pos
	bn.left = &buildNode{}
	bn.right = &buildNode{}
	c.finishSubtree(bn.left, left, lb, depth+1, lazy)
	c.finishSubtree(bn.right, right, rb, depth+1, lazy)
}

// levelDecision is the per-node outcome of the split-search phase.
type levelDecision struct {
	split sah.Split
	doit  bool
}

// processLevel performs one breadth-first step over the whole frontier and
// returns the next frontier plus its item array.
func (c *buildCtx) processLevel(frontier []levelNode, items []item, lazy bool) ([]levelNode, []item) {
	workers := c.cfg.Workers

	// Phase 1: best split per node. Parallel across nodes; within a node
	// the histogram is built by per-worker private BinSets merged at the
	// end (the parallel prefix structure of Choi et al.).
	decisions := make([]levelDecision, len(frontier))
	parallel.ForEach(len(frontier), workers, func(ni int) {
		ln := frontier[ni]
		sub := items[ln.start:ln.end]
		if lazy && len(sub) < c.cfg.R {
			return // suspend below
		}
		if len(sub) <= 1 || ln.depth >= c.cfg.MaxDepth {
			return
		}
		split, ok := c.binnedSplitMaybeParallel(sub, ln.bounds)
		if !ok || c.params.ShouldTerminate(len(sub), split) {
			return
		}
		decisions[ni] = levelDecision{split: split, doit: true}
	})

	// Phase 2: classify every (triangle, node) pair and compute per-node
	// child sizes, then scatter into the next level's item array.
	type childPlan struct {
		leftStart, rightStart int // offsets into the next item array
		nl, nr                int
	}
	plans := make([]childPlan, len(frontier))
	counts := make([][2]atomic.Int64, len(frontier))

	parallel.ForEach(len(frontier), workers, func(ni int) {
		if !decisions[ni].doit {
			return
		}
		ln := frontier[ni]
		split := decisions[ni].split
		lb, rb := ln.bounds.Split(split.Axis, split.Pos)
		sub := items[ln.start:ln.end]
		parallel.ForGrain(len(sub), workers, 4096, func(lo, hi int) {
			var nl, nr int64
			for i := lo; i < hi; i++ {
				gl, gr := c.classify(sub[i], split, lb, rb)
				if gl {
					nl++
				}
				if gr {
					nr++
				}
			}
			counts[ni][0].Add(nl)
			counts[ni][1].Add(nr)
		})
	})

	next := 0
	for ni := range frontier {
		if !decisions[ni].doit {
			continue
		}
		plans[ni].nl = int(counts[ni][0].Load())
		plans[ni].nr = int(counts[ni][1].Load())
		plans[ni].leftStart = next
		next += plans[ni].nl
		plans[ni].rightStart = next
		next += plans[ni].nr
	}

	nextItems := make([]item, next)
	nextFrontier := make([]levelNode, 0, 2*len(frontier))
	var cursors []struct{ l, r atomic.Int64 }
	cursors = make([]struct{ l, r atomic.Int64 }, len(frontier))

	parallel.ForEach(len(frontier), workers, func(ni int) {
		ln := frontier[ni]
		sub := items[ln.start:ln.end]
		if !decisions[ni].doit {
			return
		}
		split := decisions[ni].split
		lb, rb := ln.bounds.Split(split.Axis, split.Pos)
		plan := plans[ni]
		parallel.ForGrain(len(sub), workers, 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				it := sub[i]
				gl, gr := c.classify(it, split, lb, rb)
				if gl {
					b, _ := c.childBounds(it, lb)
					dst := plan.leftStart + int(cursors[ni].l.Add(1)-1)
					nextItems[dst] = item{it.tri, b}
				}
				if gr {
					b, _ := c.childBounds(it, rb)
					dst := plan.rightStart + int(cursors[ni].r.Add(1)-1)
					nextItems[dst] = item{it.tri, b}
				}
			}
		})
	})

	// Phase 3: materialise tree nodes and the next frontier; leaves and
	// suspended nodes terminate here.
	for ni, ln := range frontier {
		sub := items[ln.start:ln.end]
		if !decisions[ni].doit {
			if lazy && len(sub) >= 1 && len(sub) < c.cfg.R && ln.depth < c.cfg.MaxDepth && len(sub) > 1 {
				*ln.bn = *c.makeDeferred(sub, ln.bounds, ln.depth)
			} else {
				*ln.bn = *c.makeLeaf(sub, ln.bounds, ln.depth)
			}
			continue
		}
		plan := plans[ni]
		// A split that duplicates everything into both children makes no
		// progress; bail to a leaf exactly like the recursive builders.
		if plan.nl == len(sub) && plan.nr == len(sub) {
			*ln.bn = *c.makeLeaf(sub, ln.bounds, ln.depth)
			continue
		}
		split := decisions[ni].split
		lb, rb := ln.bounds.Split(split.Axis, split.Pos)
		c.counters.noteInner()
		ln.bn.axis = split.Axis
		ln.bn.pos = split.Pos
		ln.bn.left = &buildNode{bounds: lb}
		ln.bn.right = &buildNode{bounds: rb}
		nextFrontier = append(nextFrontier,
			levelNode{bn: ln.bn.left, bounds: lb, start: plan.leftStart, end: plan.leftStart + plan.nl, depth: ln.depth + 1},
			levelNode{bn: ln.bn.right, bounds: rb, start: plan.rightStart, end: plan.rightStart + plan.nr, depth: ln.depth + 1},
		)
	}
	return nextFrontier, nextItems
}

// classify reports whether an item lands in the left and/or right child,
// mirroring the sequential partition rules (planar primitives go left).
// The childBounds check is included so clipped-away straddler halves do not
// get phantom slots.
func (c *buildCtx) classify(it item, split sah.Split, lb, rb vecmath.AABB) (goesLeft, goesRight bool) {
	lo := it.bounds.Min.Axis(split.Axis)
	hi := it.bounds.Max.Axis(split.Axis)
	if lo < split.Pos || (lo == hi && lo == split.Pos) {
		if _, ok := c.childBounds(it, lb); ok {
			goesLeft = true
		}
	}
	if hi > split.Pos {
		if _, ok := c.childBounds(it, rb); ok {
			goesRight = true
		}
	}
	return goesLeft, goesRight
}

// binnedSplitMaybeParallel picks the split for one frontier node, using
// intra-node parallelism only when the node is large enough to amortise it.
func (c *buildCtx) binnedSplitMaybeParallel(sub []item, bounds vecmath.AABB) (sah.Split, bool) {
	if len(sub) < nestedSequentialCutoff {
		return sah.FindBestSplitBinned(c.params, bounds, itemBoxes(sub), c.cfg.Bins)
	}
	return c.parallelBestSplit(sub, bounds)
}
