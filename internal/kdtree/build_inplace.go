package kdtree

import (
	"sync"

	"kdtune/internal/faultinject"
	"kdtune/internal/parallel"
	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

// levelNode is one active node of the breadth-first frontier. Its items
// live in a contiguous range of the level's item array, and its tree node
// under construction is an index into bfScratch.nodes (an index, not a
// pointer: the scaffold slice reallocates as it grows).
type levelNode struct {
	bf     int32 // scaffold node under construction (bfScratch.nodes index)
	bounds vecmath.AABB
	start  int // item range [start, end) in the level array
	end    int
	depth  int
}

// bfNode is one node of the breadth-first scaffold. The breadth-first
// phases cannot emit arena nodes directly (pre-order adjacency is unknown
// until the whole top of the tree exists), so they record the shape here —
// leaf/deferred CONTENT goes straight into the main arena, with p0/p1
// holding the final references — and assembleBF lays the scaffold out in
// one pre-order pass at the end.
type bfNode struct {
	pos    float64
	axis   vecmath.Axis
	kind   uint8
	left   int32 // bfInner: child scaffold indices
	right  int32
	p0, p1 int32 // bfLeaf: triStart/triCount; bfDeferred: defs slot; bfSubtree: subs index
}

const (
	bfInner uint8 = iota
	bfLeaf
	bfDeferred
	bfSubtree
)

// bfScratch is the Builder-owned reusable state of the breadth-first
// builders: the scaffold, the ping-pong level item arrays, the double-
// buffered frontier, and the per-level decision/plan/offset tables.
type bfScratch struct {
	nodes    []bfNode
	items    [2][]item
	frontA   []levelNode
	frontB   []levelNode
	decs     []levelDecision
	plans    []childPlan
	chunkOff [][2]int
	subs     []*arena
}

// The minimum number of (triangle, node) pairs classified or scattered per
// chunk during a breadth-first level step is cfg.ScatterGrain (tunable "G",
// default kdtree.DefaultScatterGrain); both passes of scatterLevel read it
// from the build config so the tuner can search it per build.

// buildBreadthFirst implements the in-place parallel algorithm of §IV-C and
// its lazy variant of §IV-D. The tree is built one level at a time:
//
//  1. For every node of the frontier the best split is found by binning its
//     primitives — parallel across nodes, and within large nodes parallel
//     across primitives (parallel histogram + merge).
//  2. Every (triangle, node) pair is reassigned to the children —
//     embarrassingly parallel across pairs, with duplication for
//     straddlers; offsets come from per-node, per-chunk prefix sums.
//
// Once the frontier is wide enough to keep every worker busy with S
// subtrees each (the S parameter), the remaining nodes are finished as
// independent subtree tasks — the paper's lazy variant describes exactly
// this structure ("parallelized across the primitives in the top-level
// nodes and across subtrees in the lower levels").
//
// When lazy is true, nodes holding fewer than R primitives are suspended
// instead of subdivided; they expand on first ray contact (§IV-D).
//
// The switch point between the two phases depends on the worker count, but
// both phases apply identical split, leaf and suspension rules (see
// shouldDefer and decideSplitLevel), so the resulting tree does not: the
// output is worker-count-independent.
func (c *buildCtx) buildBreadthFirst(lazy bool) vecmath.AABB {
	bf := &c.b.bf
	items, bounds := c.rootItemsInto(bf.items[0][:0])
	bf.items[0] = items
	if len(items) == 0 {
		return vecmath.AABB{}
	}

	bf.nodes = append(bf.nodes[:0], bfNode{})
	fa := append(bf.frontA[:0], levelNode{bf: 0, bounds: bounds, start: 0, end: len(items), depth: 0})
	fb := bf.frontB[:0]
	cur := 0
	switchWidth := c.cfg.S * c.cfg.Workers

	for len(fa) > 0 {
		if c.checkAbort(fa[0].depth) {
			break
		}
		if len(fa) >= switchWidth {
			// Enough subtrees for every worker: finish each node as an
			// independent task emitting into a private arena, grafted into
			// place by assembleBF.
			var wg sync.WaitGroup
			level := bf.items[cur]
			for i := range fa {
				ln := fa[i]
				sub := c.b.getArena()
				bf.nodes[ln.bf] = bfNode{kind: bfSubtree, p0: int32(len(bf.subs))}
				bf.subs = append(bf.subs, sub)
				subItems := level[ln.start:ln.end:ln.end]
				wg.Add(1)
				//kdlint:nocancel subtree task polls the build Canceler via checkAbort at every node
				c.pool.Spawn(func() {
					defer wg.Done()
					c.finishSubtree(sub, subItems, ln.bounds, ln.depth, lazy)
				})
			}
			wg.Wait()
			break
		}
		fb = c.processLevel(fa, fb[:0], cur, lazy)
		fa, fb = fb, fa
		cur = 1 - cur
	}
	bf.frontA, bf.frontB = fa, fb

	// An aborted build leaves the scaffold incomplete; assembling it would
	// chase unset child indices. BuildGuarded reclaims bf.subs after the
	// pool drains (a panic may have stranded them mid-task).
	if c.aborted() {
		return bounds
	}

	c.assembleBF(&c.b.main, 0)
	for _, s := range bf.subs {
		c.b.putArena(s)
	}
	bf.subs = bf.subs[:0]
	return bounds
}

// assembleBF lays the scaffold out into a in pre-order, establishing the
// left-child adjacency, and grafts the subtree-task arenas where the
// scaffold points at them. Leaf and deferred scaffold entries already put
// their content in the main arena; only the 16-byte node records are
// emitted here.
func (c *buildCtx) assembleBF(a *arena, bi int32) {
	n := c.b.bf.nodes[bi]
	switch n.kind {
	case bfLeaf:
		a.nodes = append(a.nodes, leafNode(n.p0, n.p1))
	case bfDeferred:
		a.nodes = append(a.nodes, deferredRef(n.p0))
	case bfSubtree:
		a.graft(c.b.bf.subs[n.p0])
	default: // bfInner
		self := a.emitInner(n.axis, n.pos)
		c.assembleBF(a, n.left)
		a.patchRight(self, int32(len(a.nodes)))
		c.assembleBF(a, n.right)
	}
}

// bfLeafNode emits leaf content into the main arena and returns the
// scaffold record referencing it (phase 3 runs single-threaded).
func (c *buildCtx) bfLeafNode(sub []item, depth int) bfNode {
	if faultinject.Active() && c.guard != nil {
		faultinject.Check(faultinject.SiteBuildLeaf, int(c.guard.leafSeq.Add(1))-1)
	}
	main := &c.b.main
	start := int32(len(main.leafTris))
	for _, it := range sub {
		main.leafTris = append(main.leafTris, it.tri)
	}
	c.counters.noteLeaf(len(sub), depth)
	return bfNode{kind: bfLeaf, p0: start, p1: int32(len(sub))}
}

// bfDeferredNode emits a suspended-subtree record into the main arena and
// returns the scaffold record referencing it.
func (c *buildCtx) bfDeferredNode(sub []item, bounds vecmath.AABB, depth int) bfNode {
	main := &c.b.main
	start := int32(len(main.defTris))
	for _, it := range sub {
		main.defTris = append(main.defTris, it.tri)
	}
	main.defs = append(main.defs, defRec{bounds: bounds, start: start, count: int32(len(sub))})
	c.counters.noteDeferred(depth)
	return bfNode{kind: bfDeferred, p0: int32(len(main.defs) - 1)}
}

// shouldDefer reports whether the lazy builder suspends a node of n
// primitives at the given depth instead of subdividing it (§IV-D). The rule
// must be applied identically by the breadth-first and subtree phases:
// which phase reaches a node depends on the worker count, and determinism
// across worker counts requires both phases to agree.
func (c *buildCtx) shouldDefer(lazy bool, n, depth int) bool {
	return lazy && n > 1 && n < c.cfg.R && depth < c.cfg.MaxDepth
}

// decideSplitLevel picks the SAH split for one node of the breadth-first
// builders or reports that it should terminate (leaf). Node size selects the
// search — the binned histogram above nestedSequentialCutoff, where its O(n)
// pass beats the sweep's sort, and the exact sweep below it, where the
// binned search's fixed per-node cost (bins·axes candidate evaluations plus
// histogram allocation) would dominate the tiny workload. The cutoff depends
// only on the node size and workers only bounds the intra-node parallelism,
// so the returned split is identical for every worker count — a property
// both phases of the breadth-first builders rely on.
func (c *buildCtx) decideSplitLevel(a *arena, sub []item, bounds vecmath.AABB, depth, workers int) (sah.Split, bool) {
	if len(sub) < nestedSequentialCutoff {
		return c.decideSplitSweep(a, sub, bounds, depth)
	}
	if depth >= c.cfg.MaxDepth {
		return sah.Split{}, false
	}
	split, ok := sah.FindBestSplitBinnedChunksCancel(c.canceler(), c.params, bounds, len(sub), c.cfg.Bins, workers, c.cfg.BinGrain,
		func(bs *sah.BinSet, lo, hi int) {
			for i := lo; i < hi; i++ {
				bs.Add(sub[i].bounds)
			}
		})
	if !ok || c.params.ShouldTerminate(len(sub), split) {
		return sah.Split{}, false
	}
	return split, true
}

// finishSubtree completes one frontier node depth-first into its private
// arena. It must reproduce exactly the decisions processLevel would have
// made for the same node — same suspension rule, same size-hybrid split
// search, same degenerate-split bailout — because the worker count decides
// which of the two phases a node lands in.
func (c *buildCtx) finishSubtree(a *arena, items []item, bounds vecmath.AABB, depth int, lazy bool) {
	if c.checkAbort(depth) {
		return
	}
	if c.shouldDefer(lazy, len(items), depth) {
		c.makeDeferred(a, items, bounds, depth)
		return
	}
	split, ok := c.decideSplitLevel(a, items, bounds, depth, 1)
	if !ok {
		c.makeLeaf(a, items, depth)
		return
	}
	mark := a.markItems()
	lb, rb := bounds.Split(split.Axis, split.Pos)
	left, right := c.partitionItems(a, items, split.Axis, split.Pos, lb, rb)
	if len(left) == len(items) && len(right) == len(items) {
		a.releaseItems(mark)
		c.makeLeaf(a, items, depth)
		return
	}
	c.counters.noteInner()
	self := a.emitInner(split.Axis, split.Pos)
	c.finishSubtree(a, left, lb, depth+1, lazy)
	a.patchRight(self, int32(len(a.nodes)))
	c.finishSubtree(a, right, rb, depth+1, lazy)
	a.releaseItems(mark)
}

// levelDecision is the per-node outcome of the split-search phase.
type levelDecision struct {
	split sah.Split
	doit  bool
}

// childPlan describes where one split node's children land in the next
// level's item array. chunkOff holds the exclusive per-chunk write offsets
// (left, right) computed from the classification pass, which makes the
// scatter fully deterministic: chunk geometry is shared between the two
// passes, so every item has a fixed destination slot and the next level's
// item order is the sequential partition order regardless of scheduling.
type childPlan struct {
	leftStart, rightStart int
	nl, nr                int
	chunkOff              [][2]int
}

// processLevel performs one breadth-first step over the whole frontier,
// appending the next frontier to dst (the other ping-pong buffer) and
// scattering its items into the other level array. The worker budget is
// shared between the across-nodes and within-node loops via SplitBudget, so
// nesting them cannot spawn more than Workers goroutines' worth of work.
func (c *buildCtx) processLevel(frontier, dst []levelNode, cur int, lazy bool) []levelNode {
	bf := &c.b.bf
	items := bf.items[cur]
	outerW, innerW := parallel.SplitBudgetBias(c.cfg.Workers, len(frontier), c.cfg.SplitBias)
	cc := c.canceler()

	// Phase 1: best split per node. Parallel across nodes; within a node
	// the histogram is built by per-chunk private BinSets merged at the
	// end (the parallel prefix structure of Choi et al.). Each worker chunk
	// borrows an arena for the sweep search's scratch.
	//
	// Each phase bails at its barrier when the build is canceled: a skipped
	// chunk leaves garbage in the decision/count tables (ensureLen does not
	// zero), and the next phase would act on it — sizing allocations from
	// garbage counts in the worst case.
	bf.decs = ensureLen(bf.decs, len(frontier))
	decisions := bf.decs
	parallel.ForChunksCancel(cc, len(frontier), outerW, 1, func(_, lo, hi int) {
		sa := c.b.getArena()
		for ni := lo; ni < hi; ni++ {
			decisions[ni] = levelDecision{}
			ln := frontier[ni]
			sub := items[ln.start:ln.end]
			if c.shouldDefer(lazy, len(sub), ln.depth) {
				continue // suspend in phase 3
			}
			split, ok := c.decideSplitLevel(sa, sub, ln.bounds, ln.depth, innerW)
			if !ok {
				continue
			}
			decisions[ni] = levelDecision{split: split, doit: true}
		}
		c.b.putArena(sa)
	})
	if c.aborted() {
		return dst
	}

	// Phase 2: classify every (triangle, node) pair, counting per chunk and
	// turning the counts into exclusive per-chunk write offsets. The
	// per-node offset tables are pre-carved sequentially out of one shared
	// backing array so the parallel pass only writes disjoint windows.
	bf.plans = ensureLen(bf.plans, len(frontier))
	plans := bf.plans
	total := 0
	for ni := range frontier {
		plans[ni] = childPlan{}
		if !decisions[ni].doit {
			continue
		}
		total += parallel.ChunkCount(frontier[ni].end-frontier[ni].start, innerW, c.cfg.ScatterGrain)
	}
	bf.chunkOff = ensureLen(bf.chunkOff, total)
	off := 0
	for ni := range frontier {
		if !decisions[ni].doit {
			continue
		}
		cc := parallel.ChunkCount(frontier[ni].end-frontier[ni].start, innerW, c.cfg.ScatterGrain)
		plans[ni].chunkOff = bf.chunkOff[off : off+cc : off+cc]
		off += cc
	}
	parallel.ForChunksCancel(cc, len(frontier), outerW, 1, func(_, lo0, hi0 int) {
		for ni := lo0; ni < hi0; ni++ {
			if !decisions[ni].doit {
				continue
			}
			ln := frontier[ni]
			split := decisions[ni].split
			lb, rb := ln.bounds.Split(split.Axis, split.Pos)
			sub := items[ln.start:ln.end]
			counts := plans[ni].chunkOff
			parallel.ForChunksCancel(cc, len(sub), innerW, c.cfg.ScatterGrain, func(chunk, lo, hi int) {
				var nl, nr int
				for i := lo; i < hi; i++ {
					gl, gr := c.classify(sub[i], split, lb, rb)
					if gl {
						nl++
					}
					if gr {
						nr++
					}
				}
				counts[chunk] = [2]int{nl, nr}
			})
			if cc.Canceled() {
				return
			}
			var nl, nr int
			for ci := range counts {
				cl, cr := counts[ci][0], counts[ci][1]
				counts[ci] = [2]int{nl, nr}
				nl += cl
				nr += cr
			}
			plans[ni].nl = nl
			plans[ni].nr = nr
		}
	})
	if c.aborted() {
		return dst
	}

	next := 0
	for ni := range frontier {
		if !decisions[ni].doit {
			continue
		}
		plans[ni].leftStart = next
		next += plans[ni].nl
		plans[ni].rightStart = next
		next += plans[ni].nr
	}

	// Scatter into the next level's item array at the precomputed offsets.
	// The chunk geometry is identical to phase 2's (same n, workers, grain),
	// so each chunk's writes start exactly where its counts said they would.
	nextItems := ensureLen(bf.items[1-cur], next)
	bf.items[1-cur] = nextItems
	parallel.ForChunksCancel(cc, len(frontier), outerW, 1, func(_, lo0, hi0 int) {
		for ni := lo0; ni < hi0; ni++ {
			if !decisions[ni].doit {
				continue
			}
			ln := frontier[ni]
			split := decisions[ni].split
			lb, rb := ln.bounds.Split(split.Axis, split.Pos)
			sub := items[ln.start:ln.end]
			plan := plans[ni]
			parallel.ForChunksCancel(cc, len(sub), innerW, c.cfg.ScatterGrain, func(chunk, lo, hi int) {
				l := plan.leftStart + plan.chunkOff[chunk][0]
				r := plan.rightStart + plan.chunkOff[chunk][1]
				for i := lo; i < hi; i++ {
					it := sub[i]
					gl, gr := c.classify(it, split, lb, rb)
					if gl {
						b, _ := c.childBounds(it, lb)
						nextItems[l] = item{it.tri, b}
						l++
					}
					if gr {
						b, _ := c.childBounds(it, rb)
						nextItems[r] = item{it.tri, b}
						r++
					}
				}
			})
		}
	})

	if c.aborted() {
		return dst
	}

	// Phase 3: materialise scaffold nodes and the next frontier; leaves and
	// suspended nodes emit their content here (single-threaded).
	for ni := range frontier {
		ln := frontier[ni]
		sub := items[ln.start:ln.end]
		if !decisions[ni].doit {
			if c.shouldDefer(lazy, len(sub), ln.depth) {
				bf.nodes[ln.bf] = c.bfDeferredNode(sub, ln.bounds, ln.depth)
			} else {
				bf.nodes[ln.bf] = c.bfLeafNode(sub, ln.depth)
			}
			continue
		}
		plan := plans[ni]
		// A split that duplicates everything into both children makes no
		// progress; bail to a leaf exactly like the recursive builders.
		if plan.nl == len(sub) && plan.nr == len(sub) {
			bf.nodes[ln.bf] = c.bfLeafNode(sub, ln.depth)
			continue
		}
		split := decisions[ni].split
		lb, rb := ln.bounds.Split(split.Axis, split.Pos)
		c.counters.noteInner()
		li := int32(len(bf.nodes))
		bf.nodes = append(bf.nodes, bfNode{}, bfNode{})
		bf.nodes[ln.bf] = bfNode{kind: bfInner, axis: split.Axis, pos: split.Pos, left: li, right: li + 1}
		dst = append(dst,
			levelNode{bf: li, bounds: lb, start: plan.leftStart, end: plan.leftStart + plan.nl, depth: ln.depth + 1},
			levelNode{bf: li + 1, bounds: rb, start: plan.rightStart, end: plan.rightStart + plan.nr, depth: ln.depth + 1},
		)
	}
	return dst
}

// classify reports whether an item lands in the left and/or right child,
// mirroring the sequential partition rules (planar primitives go left).
// The childBounds check is included so clipped-away straddler halves do not
// get phantom slots.
func (c *buildCtx) classify(it item, split sah.Split, lb, rb vecmath.AABB) (goesLeft, goesRight bool) {
	lo := it.bounds.Min.Axis(split.Axis)
	hi := it.bounds.Max.Axis(split.Axis)
	if lo < split.Pos || (lo == hi && lo == split.Pos) {
		if _, ok := c.childBounds(it, lb); ok {
			goesLeft = true
		}
	}
	if hi > split.Pos {
		if _, ok := c.childBounds(it, rb); ok {
			goesRight = true
		}
	}
	return goesLeft, goesRight
}
