package kdtree

import (
	"sync"

	"kdtune/internal/parallel"
	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

// levelNode is one active node of the breadth-first frontier. Its items
// live in a contiguous range of the level's item array.
type levelNode struct {
	bn     *buildNode // tree node under construction
	bounds vecmath.AABB
	start  int // item range [start, end) in the level array
	end    int
	depth  int
}

// scatterGrain is the minimum number of (triangle, node) pairs classified or
// scattered per chunk during a breadth-first level step.
const scatterGrain = 4096

// buildBreadthFirst implements the in-place parallel algorithm of §IV-C and
// its lazy variant of §IV-D. The tree is built one level at a time:
//
//  1. For every node of the frontier the best split is found by binning its
//     primitives — parallel across nodes, and within large nodes parallel
//     across primitives (parallel histogram + merge).
//  2. Every (triangle, node) pair is reassigned to the children —
//     embarrassingly parallel across pairs, with duplication for
//     straddlers; offsets come from per-node, per-chunk prefix sums.
//
// Once the frontier is wide enough to keep every worker busy with S
// subtrees each (the S parameter), the remaining nodes are finished as
// independent subtree tasks — the paper's lazy variant describes exactly
// this structure ("parallelized across the primitives in the top-level
// nodes and across subtrees in the lower levels").
//
// When lazy is true, nodes holding fewer than R primitives are suspended
// instead of subdivided; they expand on first ray contact (§IV-D).
//
// The switch point between the two phases depends on the worker count, but
// both phases apply identical split, leaf and suspension rules (see
// shouldDefer and decideSplitLevel), so the resulting tree does not: the
// output is worker-count-independent.
func (c *buildCtx) buildBreadthFirst(lazy bool) *buildNode {
	items, bounds := c.rootItems()
	if len(items) == 0 {
		return nil
	}

	root := &buildNode{bounds: bounds}
	frontier := []levelNode{{bn: root, bounds: bounds, start: 0, end: len(items), depth: 0}}
	switchWidth := c.cfg.S * c.cfg.Workers

	for len(frontier) > 0 {
		if len(frontier) >= switchWidth {
			// Enough subtrees for every worker: finish each node as an
			// independent task.
			var wg sync.WaitGroup
			for _, ln := range frontier {
				ln := ln
				sub := items[ln.start:ln.end:ln.end]
				wg.Add(1)
				c.pool.Spawn(func() {
					defer wg.Done()
					c.finishSubtree(ln.bn, sub, ln.bounds, ln.depth, lazy)
				})
			}
			wg.Wait()
			return root
		}
		frontier, items = c.processLevel(frontier, items, lazy)
	}
	return root
}

// shouldDefer reports whether the lazy builder suspends a node of n
// primitives at the given depth instead of subdividing it (§IV-D). The rule
// must be applied identically by the breadth-first and subtree phases:
// which phase reaches a node depends on the worker count, and determinism
// across worker counts requires both phases to agree.
func (c *buildCtx) shouldDefer(lazy bool, n, depth int) bool {
	return lazy && n > 1 && n < c.cfg.R && depth < c.cfg.MaxDepth
}

// decideSplitLevel picks the SAH split for one node of the breadth-first
// builders or reports that it should terminate (leaf). Node size selects the
// search — the binned histogram above nestedSequentialCutoff, where its O(n)
// pass beats the sweep's sort, and the exact sweep below it, where the
// binned search's fixed per-node cost (bins·axes candidate evaluations plus
// histogram allocation) would dominate the tiny workload. The cutoff depends
// only on the node size and workers only bounds the intra-node parallelism,
// so the returned split is identical for every worker count — a property
// both phases of the breadth-first builders rely on.
func (c *buildCtx) decideSplitLevel(sub []item, bounds vecmath.AABB, depth, workers int) (sah.Split, bool) {
	if len(sub) < nestedSequentialCutoff {
		return c.decideSplitSweep(sub, bounds, depth)
	}
	if depth >= c.cfg.MaxDepth {
		return sah.Split{}, false
	}
	split, ok := sah.FindBestSplitBinnedChunks(c.params, bounds, len(sub), c.cfg.Bins, workers,
		func(bs *sah.BinSet, lo, hi int) {
			for i := lo; i < hi; i++ {
				bs.Add(sub[i].bounds)
			}
		})
	if !ok || c.params.ShouldTerminate(len(sub), split) {
		return sah.Split{}, false
	}
	return split, true
}

// finishSubtree completes one frontier node depth-first. It must reproduce
// exactly the decisions processLevel would have made for the same node —
// same suspension rule, same size-hybrid split search, same degenerate-split
// bailout — because the worker count decides which of the two phases a node
// lands in.
func (c *buildCtx) finishSubtree(bn *buildNode, items []item, bounds vecmath.AABB, depth int, lazy bool) {
	if c.shouldDefer(lazy, len(items), depth) {
		*bn = *c.makeDeferred(items, bounds, depth)
		return
	}
	split, ok := c.decideSplitLevel(items, bounds, depth, 1)
	if !ok {
		*bn = *c.makeLeaf(items, bounds, depth)
		return
	}
	left, right, lb, rb := c.partition(items, split, bounds)
	if len(left) == len(items) && len(right) == len(items) {
		*bn = *c.makeLeaf(items, bounds, depth)
		return
	}
	c.counters.noteInner()
	bn.bounds = bounds
	bn.axis = split.Axis
	bn.pos = split.Pos
	bn.left = &buildNode{}
	bn.right = &buildNode{}
	c.finishSubtree(bn.left, left, lb, depth+1, lazy)
	c.finishSubtree(bn.right, right, rb, depth+1, lazy)
}

// levelDecision is the per-node outcome of the split-search phase.
type levelDecision struct {
	split sah.Split
	doit  bool
}

// childPlan describes where one split node's children land in the next
// level's item array. chunkOff holds the exclusive per-chunk write offsets
// (left, right) computed from the classification pass, which makes the
// scatter fully deterministic: chunk geometry is shared between the two
// passes, so every item has a fixed destination slot and the next level's
// item order is the sequential partition order regardless of scheduling.
type childPlan struct {
	leftStart, rightStart int
	nl, nr                int
	chunkOff              [][2]int
}

// processLevel performs one breadth-first step over the whole frontier and
// returns the next frontier plus its item array. The worker budget is
// shared between the across-nodes and within-node loops via SplitBudget, so
// nesting them cannot spawn more than Workers goroutines' worth of work.
func (c *buildCtx) processLevel(frontier []levelNode, items []item, lazy bool) ([]levelNode, []item) {
	outerW, innerW := parallel.SplitBudget(c.cfg.Workers, len(frontier))

	// Phase 1: best split per node. Parallel across nodes; within a node
	// the histogram is built by per-chunk private BinSets merged at the
	// end (the parallel prefix structure of Choi et al.).
	decisions := make([]levelDecision, len(frontier))
	parallel.ForEach(len(frontier), outerW, func(ni int) {
		ln := frontier[ni]
		sub := items[ln.start:ln.end]
		if c.shouldDefer(lazy, len(sub), ln.depth) {
			return // suspend in phase 3
		}
		split, ok := c.decideSplitLevel(sub, ln.bounds, ln.depth, innerW)
		if !ok {
			return
		}
		decisions[ni] = levelDecision{split: split, doit: true}
	})

	// Phase 2: classify every (triangle, node) pair, counting per chunk and
	// turning the counts into exclusive per-chunk write offsets.
	plans := make([]childPlan, len(frontier))
	parallel.ForEach(len(frontier), outerW, func(ni int) {
		if !decisions[ni].doit {
			return
		}
		ln := frontier[ni]
		split := decisions[ni].split
		lb, rb := ln.bounds.Split(split.Axis, split.Pos)
		sub := items[ln.start:ln.end]
		counts := make([][2]int, parallel.ChunkCount(len(sub), innerW, scatterGrain))
		parallel.ForChunks(len(sub), innerW, scatterGrain, func(chunk, lo, hi int) {
			var nl, nr int
			for i := lo; i < hi; i++ {
				gl, gr := c.classify(sub[i], split, lb, rb)
				if gl {
					nl++
				}
				if gr {
					nr++
				}
			}
			counts[chunk] = [2]int{nl, nr}
		})
		var nl, nr int
		for ci := range counts {
			cl, cr := counts[ci][0], counts[ci][1]
			counts[ci] = [2]int{nl, nr}
			nl += cl
			nr += cr
		}
		plans[ni] = childPlan{nl: nl, nr: nr, chunkOff: counts}
	})

	next := 0
	for ni := range frontier {
		if !decisions[ni].doit {
			continue
		}
		plans[ni].leftStart = next
		next += plans[ni].nl
		plans[ni].rightStart = next
		next += plans[ni].nr
	}

	// Scatter into the next level's item array at the precomputed offsets.
	// The chunk geometry is identical to phase 2's (same n, workers, grain),
	// so each chunk's writes start exactly where its counts said they would.
	nextItems := make([]item, next)
	parallel.ForEach(len(frontier), outerW, func(ni int) {
		if !decisions[ni].doit {
			return
		}
		ln := frontier[ni]
		split := decisions[ni].split
		lb, rb := ln.bounds.Split(split.Axis, split.Pos)
		sub := items[ln.start:ln.end]
		plan := plans[ni]
		parallel.ForChunks(len(sub), innerW, scatterGrain, func(chunk, lo, hi int) {
			l := plan.leftStart + plan.chunkOff[chunk][0]
			r := plan.rightStart + plan.chunkOff[chunk][1]
			for i := lo; i < hi; i++ {
				it := sub[i]
				gl, gr := c.classify(it, split, lb, rb)
				if gl {
					b, _ := c.childBounds(it, lb)
					nextItems[l] = item{it.tri, b}
					l++
				}
				if gr {
					b, _ := c.childBounds(it, rb)
					nextItems[r] = item{it.tri, b}
					r++
				}
			}
		})
	})

	// Phase 3: materialise tree nodes and the next frontier; leaves and
	// suspended nodes terminate here.
	nextFrontier := make([]levelNode, 0, 2*len(frontier))
	for ni, ln := range frontier {
		sub := items[ln.start:ln.end]
		if !decisions[ni].doit {
			if c.shouldDefer(lazy, len(sub), ln.depth) {
				*ln.bn = *c.makeDeferred(sub, ln.bounds, ln.depth)
			} else {
				*ln.bn = *c.makeLeaf(sub, ln.bounds, ln.depth)
			}
			continue
		}
		plan := plans[ni]
		// A split that duplicates everything into both children makes no
		// progress; bail to a leaf exactly like the recursive builders.
		if plan.nl == len(sub) && plan.nr == len(sub) {
			*ln.bn = *c.makeLeaf(sub, ln.bounds, ln.depth)
			continue
		}
		split := decisions[ni].split
		lb, rb := ln.bounds.Split(split.Axis, split.Pos)
		c.counters.noteInner()
		ln.bn.axis = split.Axis
		ln.bn.pos = split.Pos
		ln.bn.left = &buildNode{bounds: lb}
		ln.bn.right = &buildNode{bounds: rb}
		nextFrontier = append(nextFrontier,
			levelNode{bn: ln.bn.left, bounds: lb, start: plan.leftStart, end: plan.leftStart + plan.nl, depth: ln.depth + 1},
			levelNode{bn: ln.bn.right, bounds: rb, start: plan.rightStart, end: plan.rightStart + plan.nr, depth: ln.depth + 1},
		)
	}
	return nextFrontier, nextItems
}

// classify reports whether an item lands in the left and/or right child,
// mirroring the sequential partition rules (planar primitives go left).
// The childBounds check is included so clipped-away straddler halves do not
// get phantom slots.
func (c *buildCtx) classify(it item, split sah.Split, lb, rb vecmath.AABB) (goesLeft, goesRight bool) {
	lo := it.bounds.Min.Axis(split.Axis)
	hi := it.bounds.Max.Axis(split.Axis)
	if lo < split.Pos || (lo == hi && lo == split.Pos) {
		if _, ok := c.childBounds(it, lb); ok {
			goesLeft = true
		}
	}
	if hi > split.Pos {
		if _, ok := c.childBounds(it, rb); ok {
			goesRight = true
		}
	}
	return goesLeft, goesRight
}
