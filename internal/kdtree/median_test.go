package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

func TestMedianBuilderValidates(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	tris := randomTriangles(r, 2000, 10, 0.2)
	tree := Build(tris, testConfig(AlgoMedian))
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Stats().Algorithm.String() != "median" {
		t.Fatalf("algorithm name: %v", tree.Stats().Algorithm)
	}
}

func TestMedianTraversalMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	tris := randomTriangles(r, 600, 10, 0.25)
	tree := Build(tris, testConfig(AlgoMedian))
	for i := 0; i < 200; i++ {
		o := vecmath.V(r.Float64()*20-5, r.Float64()*20-5, -4)
		ray := vecmath.NewRay(o, vecmath.V(r.NormFloat64()*0.2, r.NormFloat64()*0.2, 1))
		want, wantHit := bruteForceClosest(tris, ray, 1e-9, math.Inf(1))
		got, gotHit := tree.Intersect(ray, 1e-9, math.Inf(1))
		if wantHit != gotHit || (wantHit && math.Abs(got.T-want.T) > 1e-9*(1+want.T)) {
			t.Fatalf("median tree mismatch on ray %d", i)
		}
	}
}

func TestSAHBeatsMedianOnCost(t *testing.T) {
	// The point of the SAH (and of tuning its parameters): on non-uniform
	// geometry the SAH tree's expected traversal cost beats naive spatial
	// median splitting. Clustered geometry makes the gap obvious.
	r := rand.New(rand.NewSource(92))
	var tris []vecmath.Triangle
	for c := 0; c < 4; c++ {
		cx := vecmath.V(r.Float64()*40, r.Float64()*40, r.Float64()*40)
		for i := 0; i < 400; i++ {
			p := cx.Add(vecmath.V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64()))
			d := vecmath.V(r.NormFloat64()*0.1, r.NormFloat64()*0.1, r.NormFloat64()*0.1)
			e := vecmath.V(r.NormFloat64()*0.1, r.NormFloat64()*0.1, r.NormFloat64()*0.1)
			tris = append(tris, vecmath.Tri(p, p.Add(d), p.Add(e)))
		}
	}
	p := sah.DefaultParams()
	sahTree := Build(tris, testConfig(AlgoNodeLevel))
	medTree := Build(tris, testConfig(AlgoMedian))
	cs, cm := sahTree.SAHCost(p), medTree.SAHCost(p)
	if cs >= cm {
		t.Fatalf("SAH tree cost %v not better than median tree cost %v", cs, cm)
	}
}
