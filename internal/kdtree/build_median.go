package kdtree

import (
	"sync"

	"kdtune/internal/vecmath"
)

// AlgoMedian is the classic non-SAH baseline: spatial-median splitting on
// the longest axis, terminating on a fixed leaf size. It ignores CI/CB (no
// cost model) and exists to quantify what the SAH — and therefore tuning
// the SAH's parameters — buys. It is not part of the paper's four variants
// but is the standard strawman in the kD-tree literature (cf. Wald–Havran
// §2) and backs the BenchmarkMedianVsSAH ablation.
const AlgoMedian Algorithm = 100

// medianLeafSize is the fixed termination threshold of the baseline.
const medianLeafSize = 16

// buildMedian recursively splits at the spatial median of the longest axis,
// parallelised with the same subtree-task scheme as the node-level builder.
func (c *buildCtx) buildMedian() *buildNode {
	items, bounds := c.rootItems()
	if len(items) == 0 {
		return nil
	}
	return c.recurseMedian(items, bounds, 0)
}

func (c *buildCtx) recurseMedian(items []item, bounds vecmath.AABB, depth int) *buildNode {
	if len(items) <= medianLeafSize || depth >= c.cfg.MaxDepth {
		return c.makeLeaf(items, bounds, depth)
	}
	axis := bounds.LongestAxis()
	pos := (bounds.Min.Axis(axis) + bounds.Max.Axis(axis)) / 2
	lb, rb := bounds.Split(axis, pos)

	left := make([]item, 0, len(items)/2)
	right := make([]item, 0, len(items)/2)
	for _, it := range items {
		lo := it.bounds.Min.Axis(axis)
		hi := it.bounds.Max.Axis(axis)
		if lo < pos || (lo == hi && lo == pos) {
			if b, ok := c.childBounds(it, lb); ok {
				left = append(left, item{it.tri, b})
			}
		}
		if hi > pos {
			if b, ok := c.childBounds(it, rb); ok {
				right = append(right, item{it.tri, b})
			}
		}
	}
	if len(left) == len(items) && len(right) == len(items) {
		return c.makeLeaf(items, bounds, depth)
	}

	c.counters.noteInner()
	n := &buildNode{bounds: bounds, axis: axis, pos: pos}
	if depth < c.spawnCap {
		var wg sync.WaitGroup
		wg.Add(2)
		c.pool.Spawn(func() {
			defer wg.Done()
			n.left = c.recurseMedian(left, lb, depth+1)
		})
		c.pool.Spawn(func() {
			defer wg.Done()
			n.right = c.recurseMedian(right, rb, depth+1)
		})
		wg.Wait()
	} else {
		n.left = c.recurseMedian(left, lb, depth+1)
		n.right = c.recurseMedian(right, rb, depth+1)
	}
	return n
}
