package kdtree

import (
	"sync"

	"kdtune/internal/vecmath"
)

// AlgoMedian is the classic non-SAH baseline: spatial-median splitting on
// the longest axis, terminating on a fixed leaf size. It ignores CI/CB (no
// cost model) and exists to quantify what the SAH — and therefore tuning
// the SAH's parameters — buys. It is not part of the paper's four variants
// but is the standard strawman in the kD-tree literature (cf. Wald–Havran
// §2) and backs the BenchmarkMedianVsSAH ablation.
const AlgoMedian Algorithm = 100

// medianLeafSize is the fixed termination threshold of the baseline.
const medianLeafSize = 16

// buildMedian recursively splits at the spatial median of the longest axis,
// parallelised with the same subtree-task scheme as the node-level builder.
func (c *buildCtx) buildMedian() vecmath.AABB {
	a := &c.b.main
	items, bounds := c.rootItems(a)
	if len(items) == 0 {
		return vecmath.AABB{}
	}
	c.recurseMedian(a, items, bounds, 0)
	return bounds
}

func (c *buildCtx) recurseMedian(a *arena, items []item, bounds vecmath.AABB, depth int) {
	if c.checkAbort(depth) {
		return
	}
	if len(items) <= medianLeafSize || depth >= c.cfg.MaxDepth {
		c.makeLeaf(a, items, depth)
		return
	}
	axis := bounds.LongestAxis()
	pos := (bounds.Min.Axis(axis) + bounds.Max.Axis(axis)) / 2
	lb, rb := bounds.Split(axis, pos)

	mark := a.markItems()
	left, right := c.partitionItems(a, items, axis, pos, lb, rb)
	if len(left) == len(items) && len(right) == len(items) {
		a.releaseItems(mark)
		c.makeLeaf(a, items, depth)
		return
	}

	c.counters.noteInner()
	self := a.emitInner(axis, pos)
	if depth < c.spawnCap {
		la, ra := c.b.getArena(), c.b.getArena()
		var wg sync.WaitGroup
		wg.Add(2)
		//kdlint:nocancel subtree task polls the build Canceler via checkAbort at every node
		c.pool.Spawn(func() {
			defer wg.Done()
			c.recurseMedian(la, left, lb, depth+1)
		})
		//kdlint:nocancel subtree task polls the build Canceler via checkAbort at every node
		c.pool.Spawn(func() {
			defer wg.Done()
			c.recurseMedian(ra, right, rb, depth+1)
		})
		wg.Wait()
		a.graft(la)
		a.patchRight(self, a.graft(ra))
		c.b.putArena(la)
		c.b.putArena(ra)
	} else {
		c.recurseMedian(a, left, lb, depth+1)
		a.patchRight(self, int32(len(a.nodes)))
		c.recurseMedian(a, right, rb, depth+1)
	}
	a.releaseItems(mark)
}
