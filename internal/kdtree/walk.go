package kdtree

import (
	"kdtune/internal/vecmath"
)

// NodeView is the read-only view of one tree node handed to Walk visitors.
// Exactly one of the three kinds holds per node: inner (Leaf == false,
// Deferred == false, Axis/Pos valid), leaf (Leaf == true, Tris valid) or
// suspended lazy subtree (Deferred == true, Tris holds the pending primitive
// indices). Slices are shared with the tree and must not be modified.
type NodeView struct {
	Depth  int
	Region vecmath.AABB // node cell, derived from the root bounds and splits

	Leaf     bool
	Deferred bool

	// Inner nodes only.
	Axis vecmath.Axis
	Pos  float64

	// Leaf and deferred nodes: the triangle indices held by the node.
	Tris []int32
}

// Walk visits every node in depth-first pre-order, threading each node's
// spatial region down from the root bounds. The visitor returns false to
// prune the subtree below an inner node (the return value is ignored for
// leaves). Expanded lazy subtrees are descended into transparently;
// suspended ones are reported as Deferred without forcing expansion — call
// ExpandAll first for a fully structural view.
//
// Walk is the support surface for external validators (internal/oracle):
// everything a structural invariant needs — cell geometry, split planes and
// leaf contents — is exposed without reaching into the arena representation.
func (t *Tree) Walk(fn func(NodeView) bool) {
	if len(t.nodes) == 0 {
		return
	}
	t.walkNode(t.root, t.bounds, 0, fn)
}

func (t *Tree) walkNode(idx int32, region vecmath.AABB, depth int, fn func(NodeView) bool) {
	n := t.nodes[idx]
	switch n.kind() {
	case kindInner:
		v := NodeView{Depth: depth, Region: region, Axis: n.axis(), Pos: n.pos}
		if !fn(v) {
			return
		}
		lb, rb := region.Split(n.axis(), n.pos)
		t.walkNode(idx+1, lb, depth+1, fn)
		t.walkNode(n.right(), rb, depth+1, fn)

	case kindLeaf:
		fn(NodeView{
			Depth: depth, Region: region, Leaf: true,
			Tris: t.leafTris[n.triStart() : n.triStart()+n.triCount()],
		})

	case kindDeferred:
		d := &t.deferred[n.deferredIdx()]
		if sub := d.sub.Load(); sub != nil {
			// Expanded: continue into the subtree over this node's region.
			sub.walkNode(sub.root, region, depth, fn)
			return
		}
		fn(NodeView{Depth: depth, Region: region, Deferred: true, Tris: d.tris})
	}
}

// UsesClipping reports whether the tree was built with Wald–Havran perfect
// split re-clipping (Config.UseClipping). External validators need this to
// pick the right containment predicate for leaf contents.
func (t *Tree) UsesClipping() bool { return t.cfg.UseClipping }
