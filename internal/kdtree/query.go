package kdtree

import (
	"math"
	"sort"

	"kdtune/internal/vecmath"
)

// The paper's introduction motivates kD-trees with "fast range or nearest
// neighbor queries on multidimensional data" beyond ray tracing; this file
// provides both query kinds over the same trees the builders produce.
// Suspended lazy subtrees are expanded on demand, exactly as for rays.

// RangeQuery returns the indices of all triangles whose bounds overlap the
// query box, in ascending order without duplicates (straddling primitives
// are referenced by several leaves).
func (t *Tree) RangeQuery(box vecmath.AABB) []int {
	if !box.Overlaps(t.bounds) {
		return nil
	}
	seen := map[int32]struct{}{}
	t.rangeNode(t.root, t.bounds, box, seen)
	out := make([]int, 0, len(seen))
	//kdlint:allow determinism.maprange indices are sorted below before returning
	for ti := range seen {
		out = append(out, int(ti))
	}
	sort.Ints(out)
	return out
}

func (t *Tree) rangeNode(idx int32, region, box vecmath.AABB, seen map[int32]struct{}) {
	n := t.nodes[idx]
	switch n.kind() {
	case kindInner:
		lb, rb := region.Split(n.axis(), n.pos)
		if box.Min.Axis(n.axis()) <= n.pos {
			t.rangeNode(idx+1, lb, box, seen)
		}
		if box.Max.Axis(n.axis()) >= n.pos {
			t.rangeNode(n.right(), rb, box, seen)
		}
	case kindLeaf:
		for i := n.triStart(); i < n.triStart()+n.triCount(); i++ {
			ti := t.leafTris[i]
			if t.tris[ti].Bounds().Overlaps(box) {
				seen[ti] = struct{}{}
			}
		}
	case kindDeferred:
		d := &t.deferred[n.deferredIdx()]
		sub := t.expandDeferred(d)
		sub.rangeNode(sub.root, sub.bounds, box, seen)
	}
}

// NearestNeighbor returns the triangle closest to point p (by Euclidean
// distance to the triangle surface) and that distance. ok is false for
// empty scenes. The search is branch-and-bound: children are visited
// near-side first and subtrees farther than the incumbent are pruned.
func (t *Tree) NearestNeighbor(p vecmath.Vec3) (tri int, dist float64, ok bool) {
	best := math.Inf(1)
	bestTri := -1
	t.nnNode(t.root, t.bounds, p, &bestTri, &best)
	if bestTri < 0 {
		return 0, 0, false
	}
	return bestTri, best, true
}

func (t *Tree) nnNode(idx int32, region vecmath.AABB, p vecmath.Vec3, bestTri *int, best *float64) {
	if vecmath.DistToBox(p, region) >= *best {
		return
	}
	n := t.nodes[idx]
	switch n.kind() {
	case kindInner:
		lb, rb := region.Split(n.axis(), n.pos)
		// Descend into the side containing p first: it tightens the bound
		// fastest and lets the other side be pruned more often.
		if p.Axis(n.axis()) <= n.pos {
			t.nnNode(idx+1, lb, p, bestTri, best)
			t.nnNode(n.right(), rb, p, bestTri, best)
		} else {
			t.nnNode(n.right(), rb, p, bestTri, best)
			t.nnNode(idx+1, lb, p, bestTri, best)
		}
	case kindLeaf:
		for i := n.triStart(); i < n.triStart()+n.triCount(); i++ {
			ti := t.leafTris[i]
			tr := t.tris[ti]
			if tr.IsDegenerate() {
				continue
			}
			if d := vecmath.DistToTriangle(p, tr); d < *best {
				*best = d
				*bestTri = int(ti)
			}
		}
	case kindDeferred:
		d := &t.deferred[n.deferredIdx()]
		sub := t.expandDeferred(d)
		sub.nnNode(sub.root, sub.bounds, p, bestTri, best)
	}
}
