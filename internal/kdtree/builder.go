package kdtree

import (
	"sync"

	"kdtune/internal/parallel"
	"kdtune/internal/vecmath"
)

// Builder owns every byte of build scratch — item and event stacks, node and
// leaf-reference arenas, breadth-first frontier buffers, the worker pool —
// and reuses all of it across Build calls. In the paper's frame loop the
// tree is rebuilt every frame, so a retained Builder makes the steady state
// allocation-free where a fresh Build would re-allocate tens of thousands of
// nodes per frame.
//
// The Tree returned by Build borrows the Builder's storage: it is valid
// until the next Build (or BuildDeferred) call on the same Builder, which
// overwrites it in place. Callers that need overlapping trees use separate
// Builders (or the package-level Build, which allocates a fresh one).
//
// A Builder is not safe for concurrent Build calls, but the Tree it returns
// has the usual concurrency guarantees (read-only traversal plus serialised
// lazy expansion).
type Builder struct {
	ctx  buildCtx
	main arena
	tree Tree
	soa  triSoA         // backing for tree.soa, refilled in place per build
	defs []deferredNode // backing for tree.deferred, reused across builds

	pool        *parallel.Pool
	poolWorkers int

	// Free list of subtree-task arenas, shared by spawned tasks.
	arenaMu   sync.Mutex
	arenaFree []*arena

	bf bfScratch

	// Abort machinery (canceler, deadline timer, cause), reset per build.
	// Every build — guarded or not — runs with it armed so worker panics
	// are always contained and classified; see BuildGuarded.
	guard buildGuard
}

// NewBuilder returns an empty Builder. All storage is grown on first use
// and retained afterwards.
func NewBuilder() *Builder {
	return &Builder{}
}

// Build constructs the tree for tris under cfg, reusing all scratch from
// previous calls. See the Builder type comment for the storage lifetime.
//
// Build runs through the guarded machinery with no limits: a worker panic is
// drained and contained first (no detached goroutine keeps writing into the
// arenas), then re-raised on the caller as a *parallel.WorkerPanic — plain
// builds stay fail-loud. Callers that want an error instead use
// BuildGuarded.
func (b *Builder) Build(tris []vecmath.Triangle, cfg Config) *Tree {
	t, err := b.BuildGuarded(tris, cfg, Guard{})
	if err != nil {
		// With a zero Guard the only abort cause is a worker panic.
		ba := err.(*BuildAborted)
		if ba.Panic != nil {
			panic(ba.Panic)
		}
		panic(ba)
	}
	return t
}

// prepare resets the per-build state. Counter atomics are reset in place
// (they cannot be overwritten wholesale without copying locks).
func (b *Builder) prepare(tris []vecmath.Triangle, cfg Config) *buildCtx {
	b.main.reset()
	if b.pool == nil || b.poolWorkers != cfg.Workers {
		b.pool = parallel.NewPool(cfg.Workers)
		// Task panics become abort causes instead of crashing Wait; the
		// guard is a Builder field, so the handler survives pool reuse.
		b.pool.SetPanicHandler(b.guard.onWorkerPanic)
		b.poolWorkers = cfg.Workers
	}
	c := &b.ctx
	c.tris = tris
	c.cfg = cfg
	c.params = cfg.sahParams()
	c.pool = b.pool
	c.spawnCap = cfg.spawnDepth()
	c.b = b
	c.guard = nil
	c.counters.reset()
	return c
}

// finish assembles the borrowed Tree view over the main arena.
func (b *Builder) finish(bounds vecmath.AABB, numTris int) *Tree {
	if len(b.main.nodes) == 0 {
		// Empty scene: a single empty leaf, zero bounds (matching the
		// historical flatten behaviour; stats count nothing).
		b.main.nodes = append(b.main.nodes, leafNode(0, 0))
	}
	t := &b.tree
	t.tris = b.ctx.tris
	t.bounds = bounds
	t.nodes = b.main.nodes       //kdlint:allow arena.store Tree borrows the main arena by documented contract: valid until the Builder's next Build
	t.leafTris = b.main.leafTris //kdlint:allow arena.store same borrow contract as nodes above
	b.soa.build(t.tris, t.leafTris)
	t.soa = b.soa //kdlint:allow arena.store same borrow contract as nodes above
	t.root = 0
	t.cfg = b.ctx.cfg
	t.stats = b.ctx.counters.snapshot(b.ctx.cfg.Algorithm, numTris)

	b.defs = ensureLen(b.defs, len(b.main.defs))
	for i := range b.main.defs {
		d := &b.main.defs[i]
		dn := &b.defs[i]
		dn.once.done.Store(false)
		dn.bounds = d.bounds
		dn.tris = b.main.defTris[d.start : d.start+d.count : d.start+d.count]
		dn.sub.Store(nil)
	}
	t.deferred = b.defs
	return t
}

// getArena hands out a reset subtree arena, recycling finished ones. The
// arena inherits the main arena's live-byte counter so guarded memory
// accounting covers subtree tasks too.
func (b *Builder) getArena() *arena {
	b.arenaMu.Lock()
	if n := len(b.arenaFree); n > 0 {
		a := b.arenaFree[n-1]
		b.arenaFree = b.arenaFree[:n-1]
		b.arenaMu.Unlock()
		a.live = b.main.live
		return a
	}
	b.arenaMu.Unlock()
	return &arena{live: b.main.live}
}

// putArena returns a grafted (consumed) arena to the free list.
func (b *Builder) putArena(a *arena) {
	a.live = nil
	a.reset()
	b.arenaMu.Lock()
	b.arenaFree = append(b.arenaFree, a)
	b.arenaMu.Unlock()
}

// buildDeferredSubtree expands one suspended lazy node into a fresh tree.
// The Builder is dedicated to the subtree: the returned Tree owns (keeps
// alive) the Builder's storage, which is exactly the "small per-tree
// scratch" a lazy expansion needs.
// The guard is armed (limitless) for the same reason Build arms it: a
// panicking subtree task must be drained and re-raised, never left writing
// arenas behind a silently-degraded tree.
func (b *Builder) buildDeferredSubtree(parent *Tree, d *deferredNode, cfg Config) *Tree {
	cfg = cfg.Clamped().normalized(len(parent.tris))
	c := b.prepare(parent.tris, cfg)
	gd := &b.guard
	gd.arm(Guard{})
	defer gd.disarm()
	c.guard = gd

	a := &b.main
	items := a.allocItems(len(d.tris))[:0]
	for _, ti := range d.tris {
		bb := parent.tris[ti].Bounds().Intersect(d.bounds)
		if bb.IsEmpty() {
			// Can only happen for degenerate input; such triangles cannot
			// intersect rays inside this node anyway.
			continue
		}
		items = append(items, item{ti, bb})
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				gd.fail(AbortWorkerPanic, parallel.AsWorkerPanic(-1, r))
			}
		}()
		c.recurseNodeLevel(a, items, d.bounds, 0)
	}()
	if gd.cc.Canceled() {
		b.pool.Wait()
		_, wp := gd.failure()
		if wp != nil {
			panic(wp)
		}
		panic(&BuildAborted{Cause: AbortWorkerPanic, Algorithm: cfg.Algorithm})
	}
	return b.finish(d.bounds, len(items))
}
