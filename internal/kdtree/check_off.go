//go:build !parallelcheck

package kdtree

// buildChecks disables the build-abort invariant layer in default builds;
// see check_on.go. The call site guards with `if buildChecks`, so the stub
// below is dead code the compiler removes.
const buildChecks = false

func (b *Builder) assertAbortDrained() {}
