package kdtree

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"time"

	"kdtune/internal/vecmath"
)

func TestSerializeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	tris := randomTriangles(r, 1000, 10, 0.2)
	for _, a := range Algorithms {
		orig := Build(tris, testConfig(a))
		var buf bytes.Buffer
		if err := orig.Serialize(&buf); err != nil {
			t.Fatalf("%v: write: %v", a, err)
		}
		back, err := ReadTree(&buf)
		if err != nil {
			t.Fatalf("%v: read: %v", a, err)
		}
		if len(back.Triangles()) != len(tris) {
			t.Fatalf("%v: triangle count changed", a)
		}
		// Deserialised tree must answer rays identically.
		for i := 0; i < 200; i++ {
			o := vecmath.V(r.Float64()*20-5, r.Float64()*20-5, -4)
			ray := vecmath.NewRay(o, vecmath.V(r.NormFloat64()*0.2, r.NormFloat64()*0.2, 1))
			h1, ok1 := orig.Intersect(ray, 1e-9, math.Inf(1))
			h2, ok2 := back.Intersect(ray, 1e-9, math.Inf(1))
			if ok1 != ok2 || (ok1 && math.Abs(h1.T-h2.T) > 1e-12) {
				t.Fatalf("%v: ray %d differs after round trip", a, i)
			}
		}
	}
}

func TestSerializeLazyInlinesDeferred(t *testing.T) {
	r := rand.New(rand.NewSource(96))
	tris := randomTriangles(r, 2000, 10, 0.15)
	cfg := testConfig(AlgoLazy)
	cfg.R = 128
	tree := Build(tris, cfg)
	if tree.NumDeferred() == 0 {
		t.Fatal("precondition: lazy tree has no deferred nodes")
	}
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumDeferred() != 0 {
		t.Fatal("deserialised tree still has deferred nodes")
	}
	// And it still answers queries correctly.
	for i := 0; i < 100; i++ {
		o := vecmath.V(-2, r.Float64()*10, r.Float64()*10)
		ray := vecmath.NewRay(o, vecmath.V(1, r.NormFloat64()*0.2, r.NormFloat64()*0.2))
		want, wantHit := bruteForceClosest(tris, ray, 1e-9, math.Inf(1))
		got, gotHit := back.Intersect(ray, 1e-9, math.Inf(1))
		if wantHit != gotHit || (wantHit && math.Abs(got.T-want.T) > 1e-9*(1+want.T)) {
			t.Fatalf("ray %d wrong after lazy round trip", i)
		}
	}
}

func TestReadTreeRejectsCorruptInput(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	tris := randomTriangles(r, 50, 5, 0.2)
	tree := Build(tris, testConfig(AlgoNodeLevel))
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": append(append([]byte{}, good[:4]...), 0xFF, 0xFF, 0xFF, 0xFF),
		"truncated":   good[:len(good)/2],
		"tiny":        good[:6],
	}
	for name, data := range cases {
		if _, err := ReadTree(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

func TestSerializeEmptyTree(t *testing.T) {
	tree := Build(nil, testConfig(AlgoInPlace))
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Intersect(vecmath.NewRay(vecmath.V(0, 0, -1), vecmath.V(0, 0, 1)), 0, 10); ok {
		t.Fatal("empty tree hit something")
	}
}

func TestSerializePreservesConfig(t *testing.T) {
	r := rand.New(rand.NewSource(98))
	tris := randomTriangles(r, 100, 5, 0.2)
	cfg := testConfig(AlgoNested)
	cfg.CI = 42
	cfg.CB = 7
	tree := Build(tris, cfg)
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.cfg.CI != 42 || back.cfg.CB != 7 || back.cfg.Algorithm != AlgoNested {
		t.Fatalf("config drifted: %+v", back.cfg)
	}
}

// TestReadTreeRejectsSharedChildren pins a fuzzer finding: the DFS-order
// check alone admits DAGs where inner nodes share a child, and traversal
// cost over a shared-child chain grows exponentially (every root-to-leaf
// path is walked separately) — a denial-of-service via a few hundred bytes.
func TestReadTreeRejectsSharedChildren(t *testing.T) {
	var buf bytes.Buffer
	w32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	w64 := func(v uint64) { binary.Write(&buf, binary.LittleEndian, v) }
	wf := func(v float64) { binary.Write(&buf, binary.LittleEndian, math.Float64bits(v)) }
	node := func(kind, axis byte, pos float64, left, right, triStart, triCount uint32) {
		buf.WriteByte(kind)
		buf.WriteByte(axis)
		wf(pos)
		w32(left)
		w32(right)
		w32(triStart)
		w32(triCount)
	}

	buf.WriteString("KDTN")
	w32(1) // version
	w64(0) // no triangles
	for i := 0; i < 6; i++ {
		wf(0) // bounds
	}
	w64(2)                      // two nodes:
	node(0, 0, 0.5, 1, 1, 0, 0) // inner whose children are BOTH node 1
	node(1, 0, 0, 0, 0, 0, 0)   // leaf
	w64(0)                      // no leaf references
	w32(0)                      // root
	w32(0)                      // config: algorithm
	wf(17)
	wf(10)
	w32(3)
	w32(4096)

	if _, err := ReadTree(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("tree with a shared child accepted")
	}
}

// TestReadTreeHugeCountFailsFast pins the companion fuzzer finding: element
// counts are attacker-controlled, so the reader must not pre-allocate from
// them (a declared 2^31 triangles would reserve ~150 GB before noticing the
// stream is 20 bytes long).
func TestReadTreeHugeCountFailsFast(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("KDTN")
	binary.Write(&buf, binary.LittleEndian, uint32(1))
	binary.Write(&buf, binary.LittleEndian, uint64(1<<31)) // numTris at the cap
	buf.WriteString("short")

	done := make(chan error, 1)
	go func() {
		_, err := ReadTree(bytes.NewReader(buf.Bytes()))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("truncated huge-count input accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("huge declared count did not fail fast")
	}
}
