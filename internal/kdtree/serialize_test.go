package kdtree

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"kdtune/internal/vecmath"
)

func TestSerializeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	tris := randomTriangles(r, 1000, 10, 0.2)
	for _, a := range Algorithms {
		orig := Build(tris, testConfig(a))
		var buf bytes.Buffer
		if err := orig.Serialize(&buf); err != nil {
			t.Fatalf("%v: write: %v", a, err)
		}
		back, err := ReadTree(&buf)
		if err != nil {
			t.Fatalf("%v: read: %v", a, err)
		}
		if len(back.Triangles()) != len(tris) {
			t.Fatalf("%v: triangle count changed", a)
		}
		// Deserialised tree must answer rays identically.
		for i := 0; i < 200; i++ {
			o := vecmath.V(r.Float64()*20-5, r.Float64()*20-5, -4)
			ray := vecmath.NewRay(o, vecmath.V(r.NormFloat64()*0.2, r.NormFloat64()*0.2, 1))
			h1, ok1 := orig.Intersect(ray, 1e-9, math.Inf(1))
			h2, ok2 := back.Intersect(ray, 1e-9, math.Inf(1))
			if ok1 != ok2 || (ok1 && math.Abs(h1.T-h2.T) > 1e-12) {
				t.Fatalf("%v: ray %d differs after round trip", a, i)
			}
		}
	}
}

func TestSerializeLazyInlinesDeferred(t *testing.T) {
	r := rand.New(rand.NewSource(96))
	tris := randomTriangles(r, 2000, 10, 0.15)
	cfg := testConfig(AlgoLazy)
	cfg.R = 128
	tree := Build(tris, cfg)
	if tree.NumDeferred() == 0 {
		t.Fatal("precondition: lazy tree has no deferred nodes")
	}
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumDeferred() != 0 {
		t.Fatal("deserialised tree still has deferred nodes")
	}
	// And it still answers queries correctly.
	for i := 0; i < 100; i++ {
		o := vecmath.V(-2, r.Float64()*10, r.Float64()*10)
		ray := vecmath.NewRay(o, vecmath.V(1, r.NormFloat64()*0.2, r.NormFloat64()*0.2))
		want, wantHit := bruteForceClosest(tris, ray, 1e-9, math.Inf(1))
		got, gotHit := back.Intersect(ray, 1e-9, math.Inf(1))
		if wantHit != gotHit || (wantHit && math.Abs(got.T-want.T) > 1e-9*(1+want.T)) {
			t.Fatalf("ray %d wrong after lazy round trip", i)
		}
	}
}

func TestReadTreeRejectsCorruptInput(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	tris := randomTriangles(r, 50, 5, 0.2)
	tree := Build(tris, testConfig(AlgoNodeLevel))
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": append(append([]byte{}, good[:4]...), 0xFF, 0xFF, 0xFF, 0xFF),
		"truncated":   good[:len(good)/2],
		"tiny":        good[:6],
	}
	for name, data := range cases {
		if _, err := ReadTree(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

func TestSerializeEmptyTree(t *testing.T) {
	tree := Build(nil, testConfig(AlgoInPlace))
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Intersect(vecmath.NewRay(vecmath.V(0, 0, -1), vecmath.V(0, 0, 1)), 0, 10); ok {
		t.Fatal("empty tree hit something")
	}
}

func TestSerializePreservesConfig(t *testing.T) {
	r := rand.New(rand.NewSource(98))
	tris := randomTriangles(r, 100, 5, 0.2)
	cfg := testConfig(AlgoNested)
	cfg.CI = 42
	cfg.CB = 7
	tree := Build(tris, cfg)
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.cfg.CI != 42 || back.cfg.CB != 7 || back.cfg.Algorithm != AlgoNested {
		t.Fatalf("config drifted: %+v", back.cfg)
	}
}
