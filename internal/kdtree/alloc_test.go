package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"

	"kdtune/internal/vecmath"
)

// TestNodeSize pins the packed node layout: the traversal hot loop budgets
// four nodes per 64-byte cache line, so any field growth must be deliberate.
func TestNodeSize(t *testing.T) {
	if s := unsafe.Sizeof(node{}); s > 16 {
		t.Fatalf("node is %d bytes, want <= 16", s)
	}
}

// allocTestTree builds a single-worker tree for the allocation probes:
// parallel.SortFunc/ExclusiveScan allocate only on their spawn paths, so
// Workers=1 isolates the traversal/build steady state from scheduler noise.
func allocTestTree(t testing.TB, algo Algorithm, n int) (*Tree, []vecmath.Triangle) {
	r := rand.New(rand.NewSource(1905))
	tris := randomTriangles(r, n, 10, 0.2)
	cfg := BaseConfig(algo)
	cfg.Workers = 1
	cfg.S = 1
	return Build(tris, cfg), tris
}

// TestIntersectZeroAlloc: closest-hit and occlusion queries must not allocate
// as long as the traversal stack stays within its fixed 64-entry array.
func TestIntersectZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless under -race")
	}
	tree, _ := allocTestTree(t, AlgoSortOnce, 3000)
	r := rand.New(rand.NewSource(77))
	rays := make([]vecmath.Ray, 64)
	for i := range rays {
		origin := vecmath.V(r.Float64()*10, r.Float64()*10, -5)
		target := vecmath.V(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		rays[i] = vecmath.Towards(origin, target)
	}
	var hits int
	if avg := testing.AllocsPerRun(200, func() {
		for _, ray := range rays {
			if _, ok := tree.Intersect(ray, 1e-9, math.Inf(1)); ok {
				hits++
			}
		}
	}); avg != 0 {
		t.Errorf("Intersect allocates %.1f objects per batch, want 0", avg)
	}
	if hits == 0 {
		t.Fatal("no ray hit anything — the probe exercised nothing")
	}
	if avg := testing.AllocsPerRun(200, func() {
		for _, ray := range rays {
			tree.Occluded(ray, 1e-9, math.Inf(1))
		}
	}); avg != 0 {
		t.Errorf("Occluded allocates %.1f objects per batch, want 0", avg)
	}
}

// TestBuilderSteadyStateAllocs: after warmup, rebuilding the same geometry on
// a retained Builder must run out of the pooled arenas. The budget is a small
// constant — compare with the thousands of per-node allocations a throwaway
// pointer tree costs.
func TestBuilderSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless under -race")
	}
	if buildChecks {
		t.Skip("the parallelcheck invariant layer allocates per dispatch; counts are meaningless under -tags parallelcheck")
	}
	const budget = 32.0
	r := rand.New(rand.NewSource(42))
	tris := randomTriangles(r, 4000, 10, 0.2)
	for _, algo := range Algorithms {
		cfg := BaseConfig(algo)
		cfg.Workers = 1
		cfg.S = 1
		b := NewBuilder()
		b.Build(tris, cfg)
		b.Build(tris, cfg)
		avg := testing.AllocsPerRun(5, func() {
			b.Build(tris, cfg)
		})
		if avg > budget {
			t.Errorf("%v: steady-state rebuild allocates %.1f objects, budget %.0f", algo, avg, budget)
		}
	}
}

// BenchmarkBuilderRebuild measures the steady-state frame-loop rebuild: one
// retained Builder, same geometry every iteration. Run with -benchmem; the
// allocs/op column is the headline number of the pooled-arena design.
func BenchmarkBuilderRebuild(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	tris := randomTriangles(r, 10000, 10, 0.2)
	for _, algo := range Algorithms {
		b.Run(algo.String(), func(b *testing.B) {
			cfg := BaseConfig(algo)
			cfg.Workers = 1
			bd := NewBuilder()
			bd.Build(tris, cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bd.Build(tris, cfg)
			}
		})
	}
}

// BenchmarkIntersectHot measures the traversal inner loop on a warm tree.
func BenchmarkIntersectHot(b *testing.B) {
	tree, _ := allocTestTree(b, AlgoSortOnce, 10000)
	r := rand.New(rand.NewSource(31))
	rays := make([]vecmath.Ray, 256)
	for i := range rays {
		origin := vecmath.V(r.Float64()*10, r.Float64()*10, -5)
		target := vecmath.V(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		rays[i] = vecmath.Towards(origin, target)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ray := rays[i%len(rays)]
		tree.Intersect(ray, 1e-9, math.Inf(1))
	}
}
