//go:build race

package kdtree

// raceEnabled reports whether the race detector instruments this build; its
// instrumentation allocates, so allocation-count assertions are meaningless
// under -race and skip themselves.
const raceEnabled = true
