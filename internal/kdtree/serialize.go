package kdtree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"kdtune/internal/vecmath"
)

// Binary tree serialisation. A downstream user who tunes a static scene
// once can persist the finished tree and skip construction on later runs —
// the offline complement to the paper's online tuning. The format is
// little-endian, versioned, and self-contained (geometry travels with the
// structure). Lazy trees are expanded before writing: a file is a poor
// place for an unexpanded promise.
//
// The wire format (version 1) predates the packed in-memory node and stays
// unchanged: each node carries explicit left/right child indices. The writer
// expands the implicit left = self+1 adjacency into the wire field; the
// reader re-lays incoming trees out in pre-order so the adjacency invariant
// holds again in memory regardless of how the file ordered its nodes.
//
// Layout:
//
//	magic "KDTN" | u32 version
//	u64 numTris | numTris * 9 float64 (vertices)
//	bounds: 6 float64
//	u64 numNodes | nodes (kind u8, axis u8, pos f64, left u32, right u32,
//	                      triStart u32, triCount u32)
//	u64 numLeafTris | numLeafTris * u32
//	root u32
//	config: algorithm u32, CI f64, CB f64, S u32, R u32

const (
	serialMagic   = "KDTN"
	serialVersion = 1
)

// Serialize writes the tree to w. Lazy trees are fully expanded first.
func (t *Tree) Serialize(w io.Writer) error {
	t.ExpandAll()
	flat := t
	if len(t.deferred) > 0 {
		// Inline the expanded subtrees into one flat arena.
		flat = t.inlineDeferred()
	}

	bw := bufio.NewWriter(w)
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	writeU64 := func(v uint64) { binary.Write(bw, binary.LittleEndian, v) }
	writeF64 := func(v float64) { binary.Write(bw, binary.LittleEndian, math.Float64bits(v)) }
	writeVec := func(v vecmath.Vec3) { writeF64(v.X); writeF64(v.Y); writeF64(v.Z) }

	bw.WriteString(serialMagic)
	writeU32(serialVersion)

	writeU64(uint64(len(flat.tris)))
	for _, tr := range flat.tris {
		writeVec(tr.A)
		writeVec(tr.B)
		writeVec(tr.C)
	}
	writeVec(flat.bounds.Min)
	writeVec(flat.bounds.Max)

	writeU64(uint64(len(flat.nodes)))
	for i, n := range flat.nodes {
		bw.WriteByte(byte(n.kind()))
		bw.WriteByte(byte(n.axis()))
		writeF64(n.pos)
		var left, right, triStart, triCount uint32
		if n.kind() == kindInner {
			left = uint32(i) + 1
			right = uint32(n.right())
		} else {
			triStart = uint32(n.triStart())
			triCount = uint32(n.triCount())
		}
		writeU32(left)
		writeU32(right)
		writeU32(triStart)
		writeU32(triCount)
	}
	writeU64(uint64(len(flat.leafTris)))
	for _, ti := range flat.leafTris {
		writeU32(uint32(ti))
	}
	writeU32(uint32(flat.root))

	writeU32(uint32(flat.cfg.Algorithm))
	writeF64(flat.cfg.CI)
	writeF64(flat.cfg.CB)
	writeU32(uint32(flat.cfg.S))
	writeU32(uint32(flat.cfg.R))
	return bw.Flush()
}

// inlineDeferred rewrites a lazy tree (with every deferred node already
// expanded) into a single flat arena with no deferred entries.
func (t *Tree) inlineDeferred() *Tree {
	var a arena
	t.inlineGraft(&a, t.root)
	return &Tree{
		tris: t.tris, bounds: t.bounds, cfg: t.cfg, stats: t.stats,
		nodes: a.nodes, leafTris: a.leafTris, root: 0,
	}
}

// inlineGraft copies node idx (and its subtree) into a in pre-order,
// splicing expanded deferred subtrees in place of their stub nodes.
func (t *Tree) inlineGraft(a *arena, idx int32) {
	n := t.nodes[idx]
	switch n.kind() {
	case kindInner:
		self := a.emitInner(n.axis(), n.pos)
		t.inlineGraft(a, idx+1)
		a.patchRight(self, int32(len(a.nodes)))
		t.inlineGraft(a, n.right())
	case kindLeaf:
		start := int32(len(a.leafTris))
		a.leafTris = append(a.leafTris, t.leafTris[n.triStart():n.triStart()+n.triCount()]...)
		a.nodes = append(a.nodes, leafNode(start, n.triCount()))
	default: // deferred (already expanded)
		sub := t.deferred[n.deferredIdx()].sub.Load()
		sub.inlineGraft(a, sub.root)
	}
}

// diskNode is the wire representation of one node, held only while ReadTree
// validates the file and re-lays the tree out into the packed arena format.
type diskNode struct {
	pos                             float64
	left, right, triStart, triCount uint32
	kind, axis                      uint8
}

// ReadTree deserialises a tree written by Serialize, validating structure
// bounds as it reads and then re-laying the nodes out in pre-order so the
// in-memory left-child adjacency invariant holds.
func ReadTree(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("kdtree: reading magic: %w", err)
	}
	if string(magic) != serialMagic {
		return nil, fmt.Errorf("kdtree: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != serialVersion {
		return nil, fmt.Errorf("kdtree: unsupported version %d", version)
	}

	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readF64 := func() (float64, error) {
		var v uint64
		err := binary.Read(br, binary.LittleEndian, &v)
		return math.Float64frombits(v), err
	}
	readVec := func() (vecmath.Vec3, error) {
		x, err := readF64()
		if err != nil {
			return vecmath.Vec3{}, err
		}
		y, err := readF64()
		if err != nil {
			return vecmath.Vec3{}, err
		}
		z, err := readF64()
		return vecmath.V(x, y, z), err
	}

	numTris, err := readU64()
	if err != nil {
		return nil, err
	}
	const maxCount = 1 << 31
	// Element counts come from the (possibly corrupt) input, so slices are
	// grown while reading rather than pre-allocated: a bogus multi-billion
	// count then fails with EOF after a few appends instead of attempting a
	// monstrous up-front allocation.
	const maxPrealloc = 1 << 16
	prealloc := func(n uint64) int {
		if n > maxPrealloc {
			return maxPrealloc
		}
		return int(n)
	}
	if numTris > maxCount {
		return nil, fmt.Errorf("kdtree: implausible triangle count %d", numTris)
	}
	t := &Tree{tris: make([]vecmath.Triangle, 0, prealloc(numTris))}
	for i := uint64(0); i < numTris; i++ {
		a, err := readVec()
		if err != nil {
			return nil, err
		}
		b, err := readVec()
		if err != nil {
			return nil, err
		}
		c, err := readVec()
		if err != nil {
			return nil, err
		}
		t.tris = append(t.tris, vecmath.Tri(a, b, c))
	}
	if t.bounds.Min, err = readVec(); err != nil {
		return nil, err
	}
	if t.bounds.Max, err = readVec(); err != nil {
		return nil, err
	}

	numNodes, err := readU64()
	if err != nil {
		return nil, err
	}
	if numNodes > maxCount {
		return nil, fmt.Errorf("kdtree: implausible node count %d", numNodes)
	}
	disk := make([]diskNode, 0, prealloc(numNodes))
	for i := 0; uint64(i) < numNodes; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		axis, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if nodeKind(kind) == kindDeferred {
			return nil, fmt.Errorf("kdtree: node %d: serialised trees cannot contain deferred nodes", i)
		}
		if nodeKind(kind) > kindDeferred || axis > 2 {
			return nil, fmt.Errorf("kdtree: node %d: corrupt kind/axis %d/%d", i, kind, axis)
		}
		pos, err := readF64()
		if err != nil {
			return nil, err
		}
		left, err := readU32()
		if err != nil {
			return nil, err
		}
		right, err := readU32()
		if err != nil {
			return nil, err
		}
		triStart, err := readU32()
		if err != nil {
			return nil, err
		}
		triCount, err := readU32()
		if err != nil {
			return nil, err
		}
		if nodeKind(kind) == kindInner {
			// The writer emits DFS order: children strictly follow their
			// parent. Enforcing that on read guarantees the node graph is
			// acyclic, so corrupt input can never hang traversal.
			if uint64(left) >= numNodes || int(left) <= i {
				return nil, fmt.Errorf("kdtree: node %d: left child %d violates DFS order", i, left)
			}
			if uint64(right) >= numNodes || int(right) <= i {
				return nil, fmt.Errorf("kdtree: node %d: right child %d violates DFS order", i, right)
			}
		}
		if nodeKind(kind) == kindLeaf && triCount > maxLeafCount {
			return nil, fmt.Errorf("kdtree: node %d: leaf count %d overflows node layout", i, triCount)
		}
		disk = append(disk, diskNode{
			kind: kind, axis: axis, pos: pos,
			left: left, right: right, triStart: triStart, triCount: triCount,
		})
	}

	// The DFS-order check above makes the node graph acyclic but still
	// admits DAGs: two inner nodes may share a child. Traversal cost over a
	// shared-child chain grows exponentially in its length (every path is
	// walked separately), so a kilobyte of crafted input could spin a query
	// for hours — found by fuzzing. Requiring a unique parent per node
	// restores the tree shape and with it the linear traversal bound.
	parent := make([]int32, len(disk))
	for i := range parent {
		parent[i] = -1
	}
	for i, n := range disk {
		if nodeKind(n.kind) != kindInner {
			continue
		}
		for _, c := range [2]uint32{n.left, n.right} {
			if parent[c] != -1 {
				return nil, fmt.Errorf("kdtree: node %d has multiple parents (%d and %d)", c, parent[c], i)
			}
			parent[c] = int32(i)
		}
	}

	numLeafTris, err := readU64()
	if err != nil {
		return nil, err
	}
	if numLeafTris > maxCount {
		return nil, fmt.Errorf("kdtree: implausible leaf reference count %d", numLeafTris)
	}
	t.leafTris = make([]int32, 0, prealloc(numLeafTris))
	for i := uint64(0); i < numLeafTris; i++ {
		v, err := readU32()
		if err != nil {
			return nil, err
		}
		if uint64(v) >= numTris {
			return nil, fmt.Errorf("kdtree: leaf reference %d out of range", v)
		}
		t.leafTris = append(t.leafTris, int32(v))
	}
	for i, n := range disk {
		if nodeKind(n.kind) == kindLeaf && uint64(n.triStart)+uint64(n.triCount) > numLeafTris {
			return nil, fmt.Errorf("kdtree: node %d: leaf range out of bounds", i)
		}
	}

	root, err := readU32()
	if err != nil {
		return nil, err
	}
	if uint64(root) >= numNodes {
		return nil, fmt.Errorf("kdtree: root %d out of range", root)
	}

	// Re-layout: walk the validated disk tree from its root in pre-order,
	// packing nodes so every left child lands at parent+1 (the adjacency the
	// traversal relies on). An explicit stack — push right, then left, so the
	// left subtree is emitted first — keeps corrupt-but-deep inputs from
	// exhausting the goroutine stack. Nodes unreachable from the root (legal
	// under the checks above, never produced by the writer) are dropped; no
	// traversal could visit them anyway.
	if len(disk) > 0 {
		type relFrame struct {
			disk   uint32
			parent int32 // arena index of the inner node awaiting its right child; -1 if none
		}
		t.nodes = make([]node, 0, len(disk))
		stack := make([]relFrame, 0, 64)
		stack = append(stack, relFrame{disk: root, parent: -1})
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			d := disk[f.disk]
			ni := int32(len(t.nodes))
			if f.parent >= 0 {
				t.nodes[f.parent].word0 = uint32(ni)
			}
			if nodeKind(d.kind) == kindInner {
				t.nodes = append(t.nodes, innerNode(vecmath.Axis(d.axis), d.pos))
				stack = append(stack,
					relFrame{disk: d.right, parent: ni},
					relFrame{disk: d.left, parent: -1})
			} else {
				t.nodes = append(t.nodes, leafNode(int32(d.triStart), int32(d.triCount)))
			}
		}
	}
	t.root = 0

	algo, err := readU32()
	if err != nil {
		return nil, err
	}
	ci, err := readF64()
	if err != nil {
		return nil, err
	}
	cb, err := readF64()
	if err != nil {
		return nil, err
	}
	s, err := readU32()
	if err != nil {
		return nil, err
	}
	rr, err := readU32()
	if err != nil {
		return nil, err
	}
	t.cfg = Config{Algorithm: Algorithm(algo), CI: ci, CB: cb, S: int(s), R: int(rr)}
	t.stats = BuildStats{Algorithm: Algorithm(algo), NumTris: int(numTris), NumNodes: int(numNodes)}
	t.soa.build(t.tris, t.leafTris)
	return t, nil
}
