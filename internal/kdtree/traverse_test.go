package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kdtune/internal/vecmath"
)

// twoSlabScene: two parallel quads at z=1 and z=3, guaranteed split on Z.
func twoSlabScene() []vecmath.Triangle {
	q := func(z float64) []vecmath.Triangle {
		return []vecmath.Triangle{
			vecmath.Tri(vecmath.V(0, 0, z), vecmath.V(2, 0, z), vecmath.V(2, 2, z)),
			vecmath.Tri(vecmath.V(0, 0, z), vecmath.V(2, 2, z), vecmath.V(0, 2, z)),
		}
	}
	return append(q(1), q(3)...)
}

func TestTraversalFrontToBack(t *testing.T) {
	tree := Build(twoSlabScene(), testConfig(AlgoNodeLevel))
	// Ray from front must hit the z=1 slab, from behind the z=3 slab.
	h, ok := tree.Intersect(vecmath.NewRay(vecmath.V(1, 1, -1), vecmath.V(0, 0, 1)), 0, 100)
	if !ok || math.Abs(h.T-2) > 1e-12 {
		t.Fatalf("front ray: %+v %v", h, ok)
	}
	h, ok = tree.Intersect(vecmath.NewRay(vecmath.V(1, 1, 5), vecmath.V(0, 0, -1)), 0, 100)
	if !ok || math.Abs(h.T-2) > 1e-12 {
		t.Fatalf("back ray: %+v %v", h, ok)
	}
}

func TestTraversalRayAlongSplitPlane(t *testing.T) {
	// A ray travelling exactly in a potential split plane between the two
	// slabs must still see whichever slab it is aimed at.
	tree := Build(twoSlabScene(), testConfig(AlgoInPlace))
	h, ok := tree.Intersect(vecmath.NewRay(vecmath.V(1, -1, 2), vecmath.V(0, 1, 0.999999)), 0, 100)
	_ = h
	_ = ok // direction nearly within the gap plane: must not panic or loop
	// An axis-parallel ray in the gap hits nothing.
	if _, ok := tree.Intersect(vecmath.NewRay(vecmath.V(1, 1, 2), vecmath.V(0, 1, 0)), 0, 100); ok {
		t.Fatal("gap ray reported a hit")
	}
}

func TestTraversalOriginOnSplitPlane(t *testing.T) {
	tree := Build(twoSlabScene(), testConfig(AlgoNodeLevel))
	// Origin exactly at z=2 (inside the gap, plausibly on the split):
	// direction decides which side is visited.
	h, ok := tree.Intersect(vecmath.NewRay(vecmath.V(1, 1, 2), vecmath.V(0, 0, 1)), 0, 100)
	if !ok || math.Abs(h.T-1) > 1e-12 {
		t.Fatalf("forward from gap: %+v %v", h, ok)
	}
	h, ok = tree.Intersect(vecmath.NewRay(vecmath.V(1, 1, 2), vecmath.V(0, 0, -1)), 0, 100)
	if !ok || math.Abs(h.T-1) > 1e-12 {
		t.Fatalf("backward from gap: %+v %v", h, ok)
	}
}

func TestTraversalInvertedInterval(t *testing.T) {
	tree := Build(twoSlabScene(), testConfig(AlgoNodeLevel))
	if _, ok := tree.Intersect(vecmath.NewRay(vecmath.V(1, 1, -1), vecmath.V(0, 0, 1)), 10, 5); ok {
		t.Fatal("inverted interval produced a hit")
	}
	if tree.Occluded(vecmath.NewRay(vecmath.V(1, 1, -1), vecmath.V(0, 0, 1)), 10, 5) {
		t.Fatal("inverted interval reported occlusion")
	}
}

func TestTraversalGrazingBounds(t *testing.T) {
	// Rays that only touch the scene bounds' corner/edge must terminate
	// without phantom hits.
	tree := Build(twoSlabScene(), testConfig(AlgoNested))
	b := tree.Bounds()
	corner := b.Max
	r := vecmath.NewRay(corner.Add(vecmath.V(1, 1, 0)), vecmath.V(-1, -1, 0))
	tree.Intersect(r, 0, math.Inf(1)) // must not hang
}

func TestQuickTraversalNeverFalsePositive(t *testing.T) {
	// Property: any hit the tree reports is a genuine triangle hit at the
	// reported distance (cross-check against direct intersection).
	r := rand.New(rand.NewSource(120))
	tris := randomTriangles(r, 400, 10, 0.3)
	tree := Build(tris, testConfig(AlgoLazy))
	f := func(ox, oy, oz, dx, dy, dz int16) bool {
		o := vecmath.V(float64(ox)/1000, float64(oy)/1000, float64(oz)/1000).Scale(20)
		d := vecmath.V(float64(dx), float64(dy), float64(dz))
		if d.Len2() == 0 {
			return true
		}
		ray := vecmath.NewRay(o, d)
		h, ok := tree.Intersect(ray, 1e-9, math.Inf(1))
		if !ok {
			return true
		}
		th, _, _, hit := tris[h.Tri].IntersectRay(ray, 1e-9, math.Inf(1))
		return hit && math.Abs(th-h.T) < 1e-9*(1+th)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenProducesDFSLayout(t *testing.T) {
	// The arena stores nodes in depth-first pre-order with the left child
	// immediately after its parent — the adjacency the packed node layout
	// encodes implicitly — and the right child somewhere past the left
	// subtree. Every builder (and the grafting of parallel subtree arenas)
	// must maintain this, so check them all.
	r := rand.New(rand.NewSource(121))
	tris := randomTriangles(r, 500, 10, 0.2)
	for _, a := range Algorithms {
		tree := Build(tris, testConfig(a))
		for i, n := range tree.nodes {
			if n.kind() != kindInner {
				continue
			}
			if int(n.right()) <= i+1 {
				t.Fatalf("%v: node %d has right child %d not after its left subtree", a, i, n.right())
			}
		}
	}
}

func TestOccludedRespectsMaxDistance(t *testing.T) {
	tree := Build(twoSlabScene(), testConfig(AlgoNodeLevel))
	ray := vecmath.NewRay(vecmath.V(1, 1, -1), vecmath.V(0, 0, 1))
	if tree.Occluded(ray, 0, 1.5) { // slab at t=2 is beyond max
		t.Fatal("occlusion beyond tMax")
	}
	if !tree.Occluded(ray, 0, 2.5) {
		t.Fatal("occlusion within tMax missed")
	}
}

func TestHitExactlyOnSplitPlane(t *testing.T) {
	// Regression: a planar (zero-extent) triangle exactly on a split plane,
	// hit by a ray whose plane crossing coincides with the node's entry
	// distance, was skipped when the far-only case used a non-strict
	// comparison. Reconstruct the shape directly: two populated slabs force
	// an X split, a planar triangle sits exactly on a likely plane.
	var tris []vecmath.Triangle
	for i := 0; i < 8; i++ {
		y := float64(i) * 0.4
		tris = append(tris,
			vecmath.Tri(vecmath.V(0, y, 0), vecmath.V(1, y, 0), vecmath.V(0, y+0.3, 1)),
			vecmath.Tri(vecmath.V(9, y, 0), vecmath.V(10, y, 0), vecmath.V(9, y+0.3, 1)),
		)
	}
	// Planar triangle exactly at x=5 (a candidate plane: its own bounds).
	planar := vecmath.Tri(vecmath.V(5, 0, 0), vecmath.V(5, 3, 0), vecmath.V(5, 0, 1))
	tris = append(tris, planar)
	for _, a := range Algorithms {
		tree := Build(tris, testConfig(a))
		// Ray crossing x=5 exactly where the planar triangle stands.
		ray := vecmath.NewRay(vecmath.V(-5, 1, 0.25), vecmath.V(1, 0, 0))
		want, wantHit := bruteForceClosest(tris, ray, 1e-9, math.Inf(1))
		got, gotHit := tree.Intersect(ray, 1e-9, math.Inf(1))
		if wantHit != gotHit || (wantHit && math.Abs(got.T-want.T) > 1e-12) {
			t.Fatalf("%v: plane-coincident hit lost: got %v/%v want %v/%v", a, got.T, gotHit, want.T, wantHit)
		}
		if !tree.Occluded(ray, 1e-9, math.Inf(1)) {
			t.Fatalf("%v: occlusion lost on plane-coincident hit", a)
		}
	}
}

func TestRayLyingInSplitPlane(t *testing.T) {
	// Regression: a ray with a zero direction component travelling exactly
	// IN a split plane (o == pos, d == 0 on that axis) grazes both
	// children; visiting only the near side lost hits on primitives
	// assigned to the other child.
	var tris []vecmath.Triangle
	for i := 0; i < 8; i++ {
		x := float64(i)
		// Triangles with z in [0, 0.25]: a z=0 split assigns them right.
		tris = append(tris, vecmath.Tri(
			vecmath.V(x, 0, 0), vecmath.V(x+0.5, 0, 0), vecmath.V(x, 1, 0.25)))
		// And some purely negative-z geometry to make z=0 a plausible plane.
		tris = append(tris, vecmath.Tri(
			vecmath.V(x, 0, -1), vecmath.V(x+0.5, 0, -1), vecmath.V(x, 1, -0.25)))
	}
	ray := vecmath.NewRay(vecmath.V(-1, 0.2, 0), vecmath.V(1, 0, 0)) // z == 0 exactly
	want, wantHit := bruteForceClosest(tris, ray, 1e-9, math.Inf(1))
	for _, a := range Algorithms {
		tree := Build(tris, testConfig(a))
		got, gotHit := tree.Intersect(ray, 1e-9, math.Inf(1))
		if wantHit != gotHit || (wantHit && math.Abs(got.T-want.T) > 1e-12) {
			t.Fatalf("%v: in-plane ray lost its hit: got %v/%v want %v/%v", a, got.T, gotHit, want.T, wantHit)
		}
	}
}
