package kdtree

import "kdtune/internal/vecmath"

// triSoA is the structure-of-arrays intersection layout for leaf triangle
// tests. The three slices run parallel to Tree.leafTris: slot i holds
// vertex A and the precomputed Möller–Trumbore edges (e1 = B-A, e2 = C-A)
// of the triangle leafTris[i] references. Packing in leaf-reference order
// (rather than triangle order) makes every leaf's candidate set a single
// contiguous run — the scalar and packet leaf loops stream three adjacent
// arrays instead of chasing leafTris[i] -> tris[ti] indirections, and
// triangles referenced by several leaves are simply duplicated.
//
// Because e1/e2 come from exactly the subtractions Triangle.IntersectRay
// performs, vecmath.IntersectRayPre over this layout is bitwise identical
// to the AoS path (the packet-vs-scalar oracle depends on this).
//
// A Builder owns the backing arrays like any other arena: the Tree returned
// by Build borrows them, and warm rebuilds refill them in place.
type triSoA struct {
	a  []vecmath.Vec3 // vertex A per leaf reference
	e1 []vecmath.Vec3 // B - A
	e2 []vecmath.Vec3 // C - A
}

// build (re)fills the arrays in leaf-reference order. Storage is reused
// when capacity allows, so a warm rebuild performs no allocation here.
func (s *triSoA) build(tris []vecmath.Triangle, leafTris []int32) {
	n := len(leafTris)
	s.a = ensureLen(s.a, n)
	s.e1 = ensureLen(s.e1, n)
	s.e2 = ensureLen(s.e2, n)
	for i, ti := range leafTris {
		tr := tris[ti]
		s.a[i] = tr.A
		s.e1[i] = tr.B.Sub(tr.A)
		s.e2[i] = tr.C.Sub(tr.A)
	}
}
