package kdtree

import (
	"fmt"
	"math"

	"kdtune/internal/parallel"
)

// Algorithm selects one of the paper's four parallel construction variants.
type Algorithm int

// The four construction algorithms of §IV.
const (
	AlgoNodeLevel Algorithm = iota // §IV-A node-level parallel
	AlgoNested                     // §IV-B nested parallel
	AlgoInPlace                    // §IV-C in-place (breadth-first) parallel
	AlgoLazy                       // §IV-D lazy construction
)

// Algorithms lists all four variants in paper order, for harness sweeps.
var Algorithms = []Algorithm{AlgoNodeLevel, AlgoNested, AlgoInPlace, AlgoLazy}

// String returns the name used in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case AlgoNodeLevel:
		return "node-level"
	case AlgoNested:
		return "nested"
	case AlgoInPlace:
		return "in-place"
	case AlgoLazy:
		return "lazy"
	case AlgoMedian:
		return "median"
	case AlgoSortOnce:
		return "sort-once"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// HasR reports whether the algorithm uses the lazy resolution parameter R
// (Table Ib vs Table Ia).
func (a Algorithm) HasR() bool { return a == AlgoLazy }

// Config carries everything a build needs. The tunable fields mirror
// Table I:
//
//	CI — cost of intersecting a triangle        (τ_CI = [3, 101])
//	CB — cost of duplicating a primitive        (τ_CB = [0, 60])
//	S  — max. number of subtrees per thread     (τ_S  = [1, 8])
//	R  — minimal resolution of a node, lazy only (τ_R = [16, 8192], pow2)
//
// CT is fixed to 10 (§IV-A). The remaining fields configure the substrate
// rather than the cost model and are not tuned in the paper's experiments.
type Config struct {
	Algorithm Algorithm

	CI float64 // SAH triangle intersection cost
	CB float64 // SAH duplication cost
	S  int     // max subtrees per thread (task spawn budget)
	R  int     // lazy minimal node resolution (primitives)

	Workers int // parallelism budget; <=0 means GOMAXPROCS

	// Bins is the per-axis bin count for the binned split search used by
	// the nested, in-place and lazy variants; <2 selects sah.DefaultBins.
	Bins int

	// MaxDepth caps recursion; <=0 selects the usual 8 + 1.3*log2(N).
	MaxDepth int

	// UseClipping enables Wald–Havran "perfect split" re-clipping of
	// triangles to node bounds during partitioning; when false, primitive
	// boxes are merely intersected with node bounds (cheaper, looser).
	UseClipping bool
}

// BaseConfig returns the paper's manually crafted base configuration
// C_base = (CI, CB, S, R) = (17, 10, 3, 2^12) for the given algorithm
// (§V-C), with substrate defaults filled in.
func BaseConfig(a Algorithm) Config {
	return Config{
		Algorithm: a,
		CI:        17,
		CB:        10,
		S:         3,
		R:         1 << 12,
	}
}

// normalized fills defaults and clamps nonsense so builders can trust the
// values.
func (c Config) normalized(numTris int) Config {
	if c.Workers <= 0 {
		c.Workers = parallel.DefaultWorkers()
	}
	if c.CI <= 0 {
		c.CI = 17
	}
	if c.CB < 0 {
		c.CB = 0
	}
	if c.S < 1 {
		c.S = 1
	}
	if c.R < 1 {
		c.R = 1 << 12
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8 + int(1.3*math.Log2(float64(numTris)+1))
	}
	return c
}

// spawnDepth derives the task-spawning depth limit from S: spawning stops
// once the recursion can have produced at least S subtrees per worker, i.e.
// at the first depth d with 2^d >= S*Workers (§IV-A).
func (c Config) spawnDepth() int {
	target := c.S * c.Workers
	d := 0
	for (1 << d) < target {
		d++
	}
	return d
}
