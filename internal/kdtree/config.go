package kdtree

import (
	"errors"
	"fmt"
	"math"

	"kdtune/internal/parallel"
	"kdtune/internal/sah"
)

// Algorithm selects one of the paper's four parallel construction variants.
type Algorithm int

// The four construction algorithms of §IV.
const (
	AlgoNodeLevel Algorithm = iota // §IV-A node-level parallel
	AlgoNested                     // §IV-B nested parallel
	AlgoInPlace                    // §IV-C in-place (breadth-first) parallel
	AlgoLazy                       // §IV-D lazy construction
)

// Algorithms lists all four variants in paper order, for harness sweeps.
var Algorithms = []Algorithm{AlgoNodeLevel, AlgoNested, AlgoInPlace, AlgoLazy}

// String returns the name used in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case AlgoNodeLevel:
		return "node-level"
	case AlgoNested:
		return "nested"
	case AlgoInPlace:
		return "in-place"
	case AlgoLazy:
		return "lazy"
	case AlgoMedian:
		return "median"
	case AlgoSortOnce:
		return "sort-once"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// HasR reports whether the algorithm uses the lazy resolution parameter R
// (Table Ib vs Table Ia).
func (a Algorithm) HasR() bool { return a == AlgoLazy }

// Config carries everything a build needs. The tunable fields mirror
// Table I:
//
//	CI — cost of intersecting a triangle        (τ_CI = [3, 101])
//	CB — cost of duplicating a primitive        (τ_CB = [0, 60])
//	S  — max. number of subtrees per thread     (τ_S  = [1, 8])
//	R  — minimal resolution of a node, lazy only (τ_R = [16, 8192], pow2)
//
// CT is fixed to 10 (§IV-A). The remaining fields configure the substrate
// rather than the cost model and are not tuned in the paper's experiments.
type Config struct {
	Algorithm Algorithm

	CI float64 // SAH triangle intersection cost
	CB float64 // SAH duplication cost
	S  int     // max subtrees per thread (task spawn budget)
	R  int     // lazy minimal node resolution (primitives)

	Workers int // parallelism budget; <=0 means GOMAXPROCS

	// Bins is the per-axis bin count for the binned split search used by
	// the nested, in-place and lazy variants; <2 selects sah.DefaultBins.
	Bins int

	// ScatterGrain is the minimum number of (triangle, node) pairs each
	// chunk of the in-place builder's classify and scatter passes handles;
	// <=0 selects DefaultScatterGrain. Tuned online (tunable "G"): the
	// break-even between fork-join overhead and chunk work is a property of
	// the machine, not of the algorithm. Any value yields the same tree —
	// scatter destinations come from per-chunk exclusive prefix offsets, so
	// item order is the sequential partition order for every chunk geometry.
	ScatterGrain int

	// BinGrain is the minimum number of primitives histogrammed per chunk
	// in the parallel binned split search; <=0 selects sah.DefaultBinGrain.
	// Tuned online (tunable "GB"); deterministic for the same reason the
	// worker count is — the histogram merge runs in ascending chunk order.
	BinGrain int

	// SplitBias biases parallel.SplitBudgetBias toward within-node
	// parallelism in the in-place builder's frontier loops: each +1 halves
	// the outer (across-nodes) width and hands the freed budget to the
	// inner (within-node) loops. 0 is the neutral SplitBudget policy; the
	// registered tunable range is [0, 3]. Scheduling only — never affects
	// the tree.
	SplitBias int

	// MaxDepth caps recursion; <=0 selects the usual 8 + 1.3*log2(N).
	MaxDepth int

	// UseClipping enables Wald–Havran "perfect split" re-clipping of
	// triangles to node bounds during partitioning; when false, primitive
	// boxes are merely intersected with node bounds (cheaper, looser).
	UseClipping bool
}

// BaseConfig returns the paper's manually crafted base configuration
// C_base = (CI, CB, S, R) = (17, 10, 3, 2^12) for the given algorithm
// (§V-C), with substrate defaults filled in.
func BaseConfig(a Algorithm) Config {
	return Config{
		Algorithm: a,
		CI:        17,
		CB:        10,
		S:         3,
		R:         1 << 12,
	}
}

// Limits enforced by Validate and Clamped. The tuner's search ranges
// (Table II) are far inside these; the hard bounds exist so a corrupted or
// adversarial config cannot drive the builders into pathological regimes
// (depth blowup, worker explosion) before the Guard even gets a say.
const (
	maxConfigCI      = 1e6
	maxConfigCB      = 1e6
	maxConfigS       = 1024
	maxConfigR       = 1 << 24
	maxConfigWorkers = 4096
	// maxConfigDepth caps recursion outright. The traversal stack grows
	// dynamically past its fixed 64 entries, so deeper trees would work,
	// but nothing sensible lives beyond 128 levels — only runaway splits.
	maxConfigDepth = 128
	maxConfigBins  = 1 << 16
	maxConfigGrain = 1 << 24
	maxConfigBias  = 8
)

// DefaultScatterGrain is the default minimum chunk size of the in-place
// builder's classify/scatter passes, applied when Config.ScatterGrain <= 0.
const DefaultScatterGrain = 4096

// Validate reports every way the config is out of range. A nil error means
// the builders can run it as-is (after default filling). NaN and ±Inf cost
// parameters are rejected explicitly: a NaN CI would poison every SAH
// comparison (all comparisons false) and silently produce leaf-everything
// trees. Callers that want repair instead of rejection use Clamped.
func (c Config) Validate() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	check(!math.IsNaN(c.CI) && !math.IsInf(c.CI, 0), "CI %v is not finite", c.CI)
	check(!math.IsNaN(c.CB) && !math.IsInf(c.CB, 0), "CB %v is not finite", c.CB)
	check(!(c.CI < 0) && c.CI <= maxConfigCI, "CI %v outside [0, %v]", c.CI, float64(maxConfigCI))
	check(!(c.CB < 0) && c.CB <= maxConfigCB, "CB %v outside [0, %v]", c.CB, float64(maxConfigCB))
	check(c.S >= 0 && c.S <= maxConfigS, "S %d outside [0, %d]", c.S, maxConfigS)
	check(c.R >= 0 && c.R <= maxConfigR, "R %d outside [0, %d]", c.R, maxConfigR)
	check(c.Workers >= 0 && c.Workers <= maxConfigWorkers, "Workers %d outside [0, %d]", c.Workers, maxConfigWorkers)
	check(c.MaxDepth >= 0 && c.MaxDepth <= maxConfigDepth, "MaxDepth %d outside [0, %d]", c.MaxDepth, maxConfigDepth)
	check(c.Bins >= 0 && c.Bins <= maxConfigBins, "Bins %d outside [0, %d]", c.Bins, maxConfigBins)
	check(c.ScatterGrain >= 0 && c.ScatterGrain <= maxConfigGrain, "ScatterGrain %d outside [0, %d]", c.ScatterGrain, maxConfigGrain)
	check(c.BinGrain >= 0 && c.BinGrain <= maxConfigGrain, "BinGrain %d outside [0, %d]", c.BinGrain, maxConfigGrain)
	check(c.SplitBias >= 0 && c.SplitBias <= maxConfigBias, "SplitBias %d outside [0, %d]", c.SplitBias, maxConfigBias)
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("kdtree: invalid config: %w", errors.Join(errs...))
}

// Clamped returns the config with every out-of-range field pulled back to
// the nearest legal value (NaN falls to the field's default). Build and
// BuildGuarded apply it unconditionally, so a tuner probe or a deserialized
// config can never reach a builder out of range.
func (c Config) Clamped() Config {
	c.CI = clampFinite(c.CI, 0, maxConfigCI, 17)
	c.CB = clampFinite(c.CB, 0, maxConfigCB, 0)
	c.S = clampInt(c.S, 0, maxConfigS)
	c.R = clampInt(c.R, 0, maxConfigR)
	c.Workers = clampInt(c.Workers, 0, maxConfigWorkers)
	c.MaxDepth = clampInt(c.MaxDepth, 0, maxConfigDepth)
	c.Bins = clampInt(c.Bins, 0, maxConfigBins)
	c.ScatterGrain = clampInt(c.ScatterGrain, 0, maxConfigGrain)
	c.BinGrain = clampInt(c.BinGrain, 0, maxConfigGrain)
	c.SplitBias = clampInt(c.SplitBias, 0, maxConfigBias)
	return c
}

// clampFinite pulls v into [lo, hi]; NaN (incomparable with everything)
// falls to def.
func clampFinite(v, lo, hi, def float64) float64 {
	if math.IsNaN(v) {
		return def
	}
	return math.Min(math.Max(v, lo), hi)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// normalized fills defaults and clamps nonsense so builders can trust the
// values. Checks are written in negated form (!(x > 0) rather than x <= 0)
// so NaN — for which every comparison is false — lands on the default
// branch instead of slipping through.
func (c Config) normalized(numTris int) Config {
	if c.Workers <= 0 {
		c.Workers = parallel.DefaultWorkers()
	}
	if !(c.CI > 0) {
		c.CI = 17
	}
	if !(c.CB >= 0) {
		c.CB = 0
	}
	if c.S < 1 {
		c.S = 1
	}
	if c.R < 1 {
		c.R = 1 << 12
	}
	if c.ScatterGrain <= 0 {
		c.ScatterGrain = DefaultScatterGrain
	}
	if c.BinGrain <= 0 {
		c.BinGrain = sah.DefaultBinGrain
	}
	if c.SplitBias < 0 {
		c.SplitBias = 0
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8 + int(1.3*math.Log2(float64(numTris)+1))
	}
	if c.MaxDepth > maxConfigDepth {
		c.MaxDepth = maxConfigDepth
	}
	return c
}

// spawnDepth derives the task-spawning depth limit from S: spawning stops
// once the recursion can have produced at least S subtrees per worker, i.e.
// at the first depth d with 2^d >= S*Workers (§IV-A).
func (c Config) spawnDepth() int {
	target := c.S * c.Workers
	d := 0
	for (1 << d) < target {
		d++
	}
	return d
}
