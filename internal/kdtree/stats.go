package kdtree

import (
	"fmt"
	"sync/atomic"
)

// BuildStats summarises a finished construction. The counters are filled by
// the builders through buildCounters (atomics, since subtrees build
// concurrently) and frozen into this snapshot at flatten time.
type BuildStats struct {
	Algorithm  Algorithm
	NumTris    int // input triangles
	NumNodes   int // total nodes (inner + leaf + deferred)
	NumLeaves  int
	NumInner   int
	NumDefer   int // suspended subtrees (lazy)
	LeafRefs   int // triangle references across all leaves (>= NumTris with duplication)
	MaxDepth   int
	EmptyLeafs int
}

// DuplicationFactor returns LeafRefs / NumTris, the reference blow-up caused
// by straddling primitives (1.0 = no duplication). Returns 0 for empty
// scenes.
func (s BuildStats) DuplicationFactor() float64 {
	if s.NumTris == 0 {
		return 0
	}
	return float64(s.LeafRefs) / float64(s.NumTris)
}

// String renders a one-line summary.
func (s BuildStats) String() string {
	return fmt.Sprintf("%s: %d tris, %d nodes (%d inner, %d leaves, %d deferred), depth %d, dup %.2fx",
		s.Algorithm, s.NumTris, s.NumNodes, s.NumInner, s.NumLeaves, s.NumDefer,
		s.MaxDepth, s.DuplicationFactor())
}

// buildCounters collects statistics concurrently during construction.
type buildCounters struct {
	leaves     atomic.Int64
	inner      atomic.Int64
	deferred   atomic.Int64
	leafRefs   atomic.Int64
	emptyLeafs atomic.Int64
	maxDepth   atomic.Int64
}

// reset clears the counters in place for Builder reuse (the struct embeds
// atomics and cannot be overwritten wholesale).
func (c *buildCounters) reset() {
	c.leaves.Store(0)
	c.inner.Store(0)
	c.deferred.Store(0)
	c.leafRefs.Store(0)
	c.emptyLeafs.Store(0)
	c.maxDepth.Store(0)
}

func (c *buildCounters) noteLeaf(refs, depth int) {
	c.leaves.Add(1)
	c.leafRefs.Add(int64(refs))
	if refs == 0 {
		c.emptyLeafs.Add(1)
	}
	c.noteDepth(depth)
}

func (c *buildCounters) noteInner() { c.inner.Add(1) }

func (c *buildCounters) noteDeferred(depth int) {
	c.deferred.Add(1)
	c.noteDepth(depth)
}

func (c *buildCounters) noteDepth(depth int) {
	for {
		cur := c.maxDepth.Load()
		if int64(depth) <= cur || c.maxDepth.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

func (c *buildCounters) snapshot(algo Algorithm, numTris int) BuildStats {
	leaves := int(c.leaves.Load())
	inner := int(c.inner.Load())
	def := int(c.deferred.Load())
	return BuildStats{
		Algorithm:  algo,
		NumTris:    numTris,
		NumNodes:   leaves + inner + def,
		NumLeaves:  leaves,
		NumInner:   inner,
		NumDefer:   def,
		LeafRefs:   int(c.leafRefs.Load()),
		MaxDepth:   int(c.maxDepth.Load()),
		EmptyLeafs: int(c.emptyLeafs.Load()),
	}
}
