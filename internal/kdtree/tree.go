// Package kdtree implements the paper's four parallel construction
// algorithms for SAH kD-trees over triangle soups (§IV), the tree
// representation they share, and the stack-based ray traversal used by the
// ray caster (§V-A, after Ericson, Real-Time Collision Detection,
// pp. 319–321).
//
// The four algorithms are:
//
//	AlgoNodeLevel — §IV-A, Wald–Havran recursion with one task per subtree,
//	                task spawning bounded by the S parameter.
//	AlgoNested    — §IV-B, node-level parallelism plus intra-node parallel
//	                prefix operations over the primitive lists (Choi et al.).
//	AlgoInPlace   — §IV-C, breadth-first level-at-a-time construction with
//	                parallel split evaluation and parallel triangle
//	                reassignment.
//	AlgoLazy      — §IV-D, the in-place algorithm with subtree creation
//	                halted below R primitives; suspended nodes are expanded
//	                on first ray contact.
//
// All builders are configured through Config, whose tunable fields (CI, CB,
// S, R) are exactly the paper's Table I parameters and are what the
// autotuner optimises.
package kdtree

import (
	"sync"
	"sync/atomic"

	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

// nodeKind discriminates the three node states in the flattened tree.
type nodeKind uint8

const (
	kindInner nodeKind = iota
	kindLeaf
	kindDeferred // lazy builder only: subtree not yet constructed
)

// node is one entry of the flattened tree arena. Inner nodes store the
// split plane and the index of their left child (the right child is
// left+1 is NOT guaranteed; both indices are explicit to keep flattening
// trivial for subtrees built in parallel).
type node struct {
	kind nodeKind
	axis vecmath.Axis
	pos  float64 // split position (inner only)

	left, right int32 // children (inner only)

	triStart, triCount int32 // slice of Tree.leafTris (leaf only)

	deferred int32 // index into Tree.deferred (deferred only)
}

// deferredNode is a suspended subtree of the lazy builder. Expansion is
// guarded by a sync.Once — the goroutine-safe analogue of the OpenMP
// critical section the paper uses — so concurrent rays hitting the same
// node expand it exactly once and everyone else blocks until it is ready.
type deferredNode struct {
	once   sync.Once
	bounds vecmath.AABB
	tris   []int32 // triangle indices awaiting subdivision
	sub    atomic.Pointer[Tree]
}

// Tree is an immutable (except for lazy expansion) SAH kD-tree over a
// triangle slice. The triangle data is shared with the caller and must not
// be mutated while the tree is alive.
type Tree struct {
	tris     []vecmath.Triangle
	bounds   vecmath.AABB
	nodes    []node
	leafTris []int32
	deferred []*deferredNode
	root     int32

	cfg   Config // retained for lazy expansion
	stats BuildStats
}

// Triangles returns the triangle slice the tree indexes into.
func (t *Tree) Triangles() []vecmath.Triangle { return t.tris }

// Bounds returns the world bounds the tree was built over.
func (t *Tree) Bounds() vecmath.AABB { return t.bounds }

// Stats returns construction statistics (counts at build time; lazily
// expanded subtrees are not folded in).
func (t *Tree) Stats() BuildStats { return t.stats }

// buildNode is the pointer-shaped node used during construction. Builders
// run concurrently and allocate these privately, so no synchronisation is
// needed until the final flatten pass.
type buildNode struct {
	bounds      vecmath.AABB
	axis        vecmath.Axis
	pos         float64
	left, right *buildNode
	tris        []int32
	leaf        bool
	deferred    bool
}

// flatten converts a pointer tree into the arena representation using an
// explicit stack (scenes produce trees deep enough to threaten goroutine
// stacks only in pathological cases, but the explicit stack also gives us
// DFS layout for cache-friendly traversal).
func flatten(root *buildNode, tris []vecmath.Triangle, cfg Config, stats BuildStats) *Tree {
	t := &Tree{tris: tris, cfg: cfg, stats: stats}
	if root != nil {
		t.bounds = root.bounds
	}
	type frame struct {
		bn  *buildNode
		idx int32
	}
	if root == nil {
		// Represent the empty scene as a single empty leaf.
		t.nodes = []node{{kind: kindLeaf}}
		t.root = 0
		return t
	}
	t.root = t.appendNode(root)
	stack := []frame{{root, t.root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.bn.leaf || f.bn.deferred {
			continue
		}
		li := t.appendNode(f.bn.left)
		ri := t.appendNode(f.bn.right)
		t.nodes[f.idx].left = li
		t.nodes[f.idx].right = ri
		stack = append(stack, frame{f.bn.right, ri}, frame{f.bn.left, li})
	}
	return t
}

// appendNode materialises a single buildNode into the arena and returns its
// index. Children of inner nodes are patched in by flatten.
func (t *Tree) appendNode(bn *buildNode) int32 {
	idx := int32(len(t.nodes))
	switch {
	case bn.deferred:
		d := &deferredNode{bounds: bn.bounds, tris: bn.tris}
		t.deferred = append(t.deferred, d)
		t.nodes = append(t.nodes, node{kind: kindDeferred, deferred: int32(len(t.deferred) - 1)})
	case bn.leaf:
		start := int32(len(t.leafTris))
		t.leafTris = append(t.leafTris, bn.tris...)
		t.nodes = append(t.nodes, node{kind: kindLeaf, triStart: start, triCount: int32(len(bn.tris))})
	default:
		t.nodes = append(t.nodes, node{kind: kindInner, axis: bn.axis, pos: bn.pos})
	}
	return idx
}

// NumNodes returns the number of flattened nodes (excluding nodes inside
// lazily expanded subtrees).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumDeferred returns the number of suspended subtrees (lazy builder only).
func (t *Tree) NumDeferred() int { return len(t.deferred) }

// NumExpanded returns how many deferred subtrees have been expanded so far.
func (t *Tree) NumExpanded() int {
	n := 0
	for _, d := range t.deferred {
		if d.expanded() {
			n++
		}
	}
	return n
}

func (d *deferredNode) expanded() bool { return d.sub.Load() != nil }

// sahParams assembles the cost-model parameters from the configuration.
func (c Config) sahParams() sah.Params {
	return sah.Params{CT: sah.FixedCT, CI: c.CI, CB: c.CB}
}
