// Package kdtree implements the paper's four parallel construction
// algorithms for SAH kD-trees over triangle soups (§IV), the tree
// representation they share, and the stack-based ray traversal used by the
// ray caster (§V-A, after Ericson, Real-Time Collision Detection,
// pp. 319–321).
//
// The four algorithms are:
//
//	AlgoNodeLevel — §IV-A, Wald–Havran recursion with one task per subtree,
//	                task spawning bounded by the S parameter.
//	AlgoNested    — §IV-B, node-level parallelism plus intra-node parallel
//	                prefix operations over the primitive lists (Choi et al.).
//	AlgoInPlace   — §IV-C, breadth-first level-at-a-time construction with
//	                parallel split evaluation and parallel triangle
//	                reassignment.
//	AlgoLazy      — §IV-D, the in-place algorithm with subtree creation
//	                halted below R primitives; suspended nodes are expanded
//	                on first ray contact.
//
// All builders are configured through Config, whose tunable fields (CI, CB,
// S, R) are exactly the paper's Table I parameters and are what the
// autotuner optimises.
//
// Construction emits directly into flat arena storage (see arena and
// Builder): nodes are 16 bytes, laid out in depth-first pre-order with the
// left child adjacent to its parent, and a retained Builder rebuilds frame
// after frame without allocating.
package kdtree

import (
	"sync/atomic"

	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

// nodeKind discriminates the three node states in the flattened tree.
type nodeKind uint8

const (
	kindInner nodeKind = iota
	kindLeaf
	kindDeferred // lazy builder only: subtree not yet constructed
)

// deferredNode is a suspended subtree of the lazy builder. Expansion is
// guarded by expandOnce — the goroutine-safe analogue of the OpenMP
// critical section the paper uses — so concurrent rays hitting the same
// node expand it exactly once and everyone else blocks until it is ready.
type deferredNode struct {
	once   expandOnce
	bounds vecmath.AABB
	tris   []int32 // triangle indices awaiting subdivision
	sub    atomic.Pointer[Tree]
}

// Tree is an immutable (except for lazy expansion) SAH kD-tree over a
// triangle slice. The triangle data is shared with the caller and must not
// be mutated while the tree is alive. Trees produced by a Builder borrow
// the Builder's storage and are valid until its next Build call.
type Tree struct {
	tris     []vecmath.Triangle
	bounds   vecmath.AABB
	nodes    []node
	leafTris []int32
	soa      triSoA // per-leaf-reference precomputed triangles, parallel to leafTris
	deferred []deferredNode
	root     int32

	cfg   Config // retained for lazy expansion
	stats BuildStats
}

// Triangles returns the triangle slice the tree indexes into.
func (t *Tree) Triangles() []vecmath.Triangle { return t.tris }

// Bounds returns the world bounds the tree was built over.
func (t *Tree) Bounds() vecmath.AABB { return t.bounds }

// Stats returns construction statistics (counts at build time; lazily
// expanded subtrees are not folded in).
func (t *Tree) Stats() BuildStats { return t.stats }

// NumNodes returns the number of flattened nodes (excluding nodes inside
// lazily expanded subtrees).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumDeferred returns the number of suspended subtrees (lazy builder only).
func (t *Tree) NumDeferred() int { return len(t.deferred) }

// NumExpanded returns how many deferred subtrees have been expanded so far.
func (t *Tree) NumExpanded() int {
	n := 0
	for i := range t.deferred {
		if t.deferred[i].expanded() {
			n++
		}
	}
	return n
}

func (d *deferredNode) expanded() bool { return d.sub.Load() != nil }

// sahParams assembles the cost-model parameters from the configuration.
func (c Config) sahParams() sah.Params {
	return sah.Params{CT: sah.FixedCT, CI: c.CI, CB: c.CB}
}
