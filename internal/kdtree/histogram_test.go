package kdtree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestShapeAccountsForEveryLeaf(t *testing.T) {
	r := rand.New(rand.NewSource(150))
	tris := randomTriangles(r, 1500, 10, 0.2)
	for _, a := range Algorithms {
		tree := Build(tris, testConfig(a))
		tree.ExpandAll()
		shape := tree.Shape()
		leaves := 0
		refs := 0
		for size, c := range shape.LeafSizes {
			leaves += c
			refs += size * c
		}
		depthLeaves := 0
		for _, c := range shape.LeafDepths {
			depthLeaves += c
		}
		if leaves != depthLeaves {
			t.Fatalf("%v: size histogram has %d leaves, depth histogram %d", a, leaves, depthLeaves)
		}
		if leaves == 0 || refs < len(tris) {
			t.Fatalf("%v: implausible shape: %d leaves, %d refs", a, leaves, refs)
		}
	}
}

func TestShapeRespondsToCI(t *testing.T) {
	r := rand.New(rand.NewSource(151))
	tris := randomTriangles(r, 1500, 10, 0.2)
	lo := testConfig(AlgoNodeLevel)
	lo.CI = 3
	hi := testConfig(AlgoNodeLevel)
	hi.CI = 101
	sLo := Build(tris, lo).Shape()
	sHi := Build(tris, hi).Shape()
	if sHi.MedianLeafSize() > sLo.MedianLeafSize() {
		t.Fatalf("CI=101 median leaf %d should not exceed CI=3 median leaf %d",
			sHi.MedianLeafSize(), sLo.MedianLeafSize())
	}
}

func TestMedianOfHistogram(t *testing.T) {
	if m := medianOfHistogram(map[int]int{1: 3, 5: 1}); m != 1 {
		t.Fatalf("median = %d, want 1", m)
	}
	if m := medianOfHistogram(map[int]int{2: 1, 7: 5}); m != 7 {
		t.Fatalf("median = %d, want 7", m)
	}
	if medianOfHistogram(nil) != 0 {
		t.Fatal("empty histogram median should be 0")
	}
}

func TestShapePrint(t *testing.T) {
	r := rand.New(rand.NewSource(152))
	tris := randomTriangles(r, 300, 8, 0.2)
	var buf bytes.Buffer
	Build(tris, testConfig(AlgoInPlace)).Shape().Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "leaf sizes") || !strings.Contains(out, "leaf depths") {
		t.Fatalf("Print output wrong:\n%s", out)
	}
}
