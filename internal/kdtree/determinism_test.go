package kdtree

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"kdtune/internal/scene"
)

// sameTree checks that two trees are structurally identical: same node
// kinds, same split planes, same leaf triangle lists (including order, so
// even the scatter passes must be deterministic), same suspended subtrees.
func sameTree(a, b *Tree) error {
	if a.bounds != b.bounds {
		return fmt.Errorf("bounds differ: %v vs %v", a.bounds, b.bounds)
	}
	var walk func(ia, ib int32, path string) error
	walk = func(ia, ib int32, path string) error {
		na, nb := a.nodes[ia], b.nodes[ib]
		if na.kind() != nb.kind() {
			return fmt.Errorf("node %s: kind %d vs %d", path, na.kind(), nb.kind())
		}
		switch na.kind() {
		case kindInner:
			if na.axis() != nb.axis() || na.pos != nb.pos {
				return fmt.Errorf("node %s: split (%v,%v) vs (%v,%v)", path, na.axis(), na.pos, nb.axis(), nb.pos)
			}
			if err := walk(ia+1, ib+1, path+"L"); err != nil {
				return err
			}
			return walk(na.right(), nb.right(), path+"R")
		case kindLeaf:
			ta := a.leafTris[na.triStart() : na.triStart()+na.triCount()]
			tb := b.leafTris[nb.triStart() : nb.triStart()+nb.triCount()]
			if !slices.Equal(ta, tb) {
				return fmt.Errorf("leaf %s: tris %v vs %v", path, ta, tb)
			}
		case kindDeferred:
			da, db := &a.deferred[na.deferredIdx()], &b.deferred[nb.deferredIdx()]
			if da.bounds != db.bounds || !slices.Equal(da.tris, db.tris) {
				return fmt.Errorf("deferred %s: differs (%d vs %d tris)", path, len(da.tris), len(db.tris))
			}
		}
		return nil
	}
	return walk(a.root, b.root, "·")
}

func TestBuildersDeterministicAcrossWorkerCounts(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	sizes := []int{37, 500, 5000}
	if !testing.Short() {
		sizes = append(sizes, 12000)
	}
	workerCounts := []int{2, 3, 5, 8, 2 + r.Intn(30)}
	t.Logf("randomized worker count: %d", workerCounts[len(workerCounts)-1])

	for _, n := range sizes {
		tris := randomTriangles(r, n, 10, 0.25)
		for _, a := range Algorithms {
			cfg := testConfig(a)
			ref := cfg
			ref.Workers = 1
			want := Build(tris, ref)
			wantCost := want.SAHCost(ref.sahParams())
			for _, w := range workerCounts {
				c := cfg
				c.Workers = w
				got := Build(tris, c)
				if err := sameTree(want, got); err != nil {
					t.Fatalf("%v n=%d workers=%d: tree differs from workers=1: %v", a, n, w, err)
				}
				if gotCost := got.SAHCost(c.sahParams()); gotCost != wantCost {
					t.Fatalf("%v n=%d workers=%d: SAH cost %v, want %v", a, n, w, gotCost, wantCost)
				}
			}
		}
	}
}

func TestBuildersDeterministicWithClipping(t *testing.T) {
	r := rand.New(rand.NewSource(602))
	// Large triangles so the perfect-split clipping path actually runs.
	tris := randomTriangles(r, 3000, 10, 1.2)
	for _, a := range Algorithms {
		cfg := testConfig(a)
		cfg.UseClipping = true
		ref := cfg
		ref.Workers = 1
		want := Build(tris, ref)
		for _, w := range []int{2, 6, 16} {
			c := cfg
			c.Workers = w
			if err := sameTree(want, Build(tris, c)); err != nil {
				t.Fatalf("%v clipped workers=%d: %v", a, w, err)
			}
		}
	}
}

// TestBuildersDeterministicOnScenes is the cross-algorithm determinism test
// over the procedural evaluation scenes: for every algorithm, the parallel
// build must equal the sequential build exactly.
func TestBuildersDeterministicOnScenes(t *testing.T) {
	if testing.Short() {
		t.Skip("scene-scale builds are slow under -short")
	}
	scenes := []*scene.Scene{scene.WoodDoll(), scene.Toasters()}
	for _, sc := range scenes {
		tris := sc.Triangles(0)
		for _, a := range Algorithms {
			cfg := BaseConfig(a)
			cfg.R = 256 // make the lazy builder actually suspend subtrees
			ref := cfg
			ref.Workers = 1
			want := Build(tris, ref)
			wantCost := want.SAHCost(ref.sahParams())
			for _, w := range []int{4, 13} {
				c := cfg
				c.Workers = w
				got := Build(tris, c)
				if err := sameTree(want, got); err != nil {
					t.Fatalf("%v on %s workers=%d: %v", a, sc, w, err)
				}
				if gotCost := got.SAHCost(c.sahParams()); gotCost != wantCost {
					t.Fatalf("%v on %s workers=%d: SAH cost %v, want %v", a, sc, w, gotCost, wantCost)
				}
			}
		}
	}
}

// TestBuilderReuseDeterministic pins the arena-reuse contract: rebuilding a
// scene on a Builder whose storage is dirty from entirely different builds
// must produce a tree bitwise-identical to a fresh Build. Stale bytes in any
// reused buffer that leak into the output would show up here.
func TestBuilderReuseDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(604))
	trisA := randomTriangles(r, 2500, 10, 0.25)
	trisB := randomTriangles(r, 900, 6, 0.8)
	for _, a := range Algorithms {
		for _, w := range []int{1, 4} {
			cfg := testConfig(a)
			cfg.Workers = w
			want := Build(trisA, cfg)

			b := NewBuilder()
			b.Build(trisA, cfg) // dirty the arenas with A...
			b.Build(trisB, cfg) // ...then with a differently-shaped B
			got := b.Build(trisA, cfg)
			if err := sameTree(want, got); err != nil {
				t.Fatalf("%v workers=%d: reused Builder differs from fresh build: %v", a, w, err)
			}
			if gc, wc := got.SAHCost(cfg.sahParams()), want.SAHCost(cfg.sahParams()); gc != wc {
				t.Fatalf("%v workers=%d: reused Builder SAH cost %v, want %v", a, w, gc, wc)
			}
		}
	}
}

// TestBreadthFirstPhasesAgree pins the invariant the in-place/lazy builders'
// determinism rests on: the subtree phase must make the same decisions as
// the breadth-first phase. S=1, workers=1 forces the earliest possible
// switch to subtree tasks; a huge S keeps the build breadth-first to the
// leaves. Both schedules must emit the same tree.
func TestBreadthFirstPhasesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(603))
	tris := randomTriangles(r, 4000, 10, 0.25)
	for _, a := range []Algorithm{AlgoInPlace, AlgoLazy} {
		early := testConfig(a)
		early.S = 1
		early.Workers = 1
		late := testConfig(a)
		late.S = 1 << 20 // switchWidth never reached
		late.Workers = 1
		if err := sameTree(Build(tris, early), Build(tris, late)); err != nil {
			t.Fatalf("%v: subtree phase disagrees with breadth-first phase: %v", a, err)
		}
	}
}
