package kdtree

import (
	"fmt"

	"kdtune/internal/vecmath"
)

// Validate checks the structural invariants of a (fully expanded) tree:
//
//   - node indices are in range and the node graph is a tree (each node
//     reachable exactly once from the root),
//   - leaf triangle ranges index valid triangles,
//   - every non-degenerate input triangle is referenced by at least one
//     leaf whose region overlaps its bounds,
//   - every leaf only references triangles whose bounds overlap the leaf's
//     region (no stray references).
//
// Lazy trees are expanded first (Validate is a testing/debugging facility,
// not a hot path). It returns nil when all invariants hold.
func (t *Tree) Validate() error {
	t.ExpandAll()
	seen := make(map[int]bool) // triangle -> referenced by some leaf
	visited := make([]bool, len(t.nodes))
	if err := t.validateNode(t.root, t.bounds, visited, seen); err != nil {
		return err
	}
	for i, tr := range t.tris {
		if tr.IsDegenerate() {
			continue
		}
		if b := tr.Bounds(); !b.Overlaps(t.bounds) {
			continue
		}
		if !seen[i] {
			return fmt.Errorf("kdtree: triangle %d is not referenced by any leaf", i)
		}
	}
	return nil
}

func (t *Tree) validateNode(idx int32, region vecmath.AABB, visited []bool, seen map[int]bool) error {
	if idx < 0 || int(idx) >= len(t.nodes) {
		return fmt.Errorf("kdtree: node index %d out of range [0,%d)", idx, len(t.nodes))
	}
	if visited[idx] {
		return fmt.Errorf("kdtree: node %d reachable twice (graph is not a tree)", idx)
	}
	visited[idx] = true
	n := t.nodes[idx]
	switch n.kind() {
	case kindInner:
		if n.pos < region.Min.Axis(n.axis()) || n.pos > region.Max.Axis(n.axis()) {
			return fmt.Errorf("kdtree: node %d split %v=%g outside region %v", idx, n.axis(), n.pos, region)
		}
		lb, rb := region.Split(n.axis(), n.pos)
		if err := t.validateNode(idx+1, lb, visited, seen); err != nil {
			return err
		}
		return t.validateNode(n.right(), rb, visited, seen)

	case kindLeaf:
		if n.triStart() < 0 || int(n.triStart()+n.triCount()) > len(t.leafTris) {
			return fmt.Errorf("kdtree: leaf %d range [%d,%d) outside leafTris", idx, n.triStart(), n.triStart()+n.triCount())
		}
		eps := 1e-9 * (1 + t.bounds.Diagonal().Len())
		grown := region.Grow(eps)
		for i := n.triStart(); i < n.triStart()+n.triCount(); i++ {
			ti := t.leafTris[i]
			if ti < 0 || int(ti) >= len(t.tris) {
				return fmt.Errorf("kdtree: leaf %d references invalid triangle %d", idx, ti)
			}
			seen[int(ti)] = true
			if !t.tris[ti].Bounds().Overlaps(grown) {
				return fmt.Errorf("kdtree: leaf %d references triangle %d whose bounds %v miss leaf region %v",
					idx, ti, t.tris[ti].Bounds(), region)
			}
		}
		return nil

	case kindDeferred:
		d := &t.deferred[n.deferredIdx()]
		sub := d.sub.Load()
		if sub == nil {
			return fmt.Errorf("kdtree: deferred node %d not expanded (call ExpandAll first)", idx)
		}
		// Structurally validate the subtree over its own region, with a
		// private seen-set: the subtree only holds this node's triangles.
		subSeen := make(map[int]bool)
		subVisited := make([]bool, len(sub.nodes))
		if err := sub.validateNode(sub.root, sub.bounds, subVisited, subSeen); err != nil {
			return fmt.Errorf("kdtree: deferred node %d: %w", idx, err)
		}
		for _, ti := range d.tris {
			if !t.tris[ti].IsDegenerate() && t.tris[ti].Bounds().Overlaps(sub.bounds) && !subSeen[int(ti)] {
				return fmt.Errorf("kdtree: deferred node %d lost triangle %d during expansion", idx, ti)
			}
			seen[int(ti)] = true
		}
		return nil
	}
	return fmt.Errorf("kdtree: node %d has unknown kind %d", idx, n.kind())
}
