package kdtree

import (
	"fmt"

	"kdtune/internal/vecmath"
)

// DebugDescend walks from the root to the leaf containing point p (points
// exactly on a split plane follow the left child, matching the builders'
// planar convention) and returns the leaf's triangle indices plus a
// description of the last few splits. Debugging/diagnostic aid.
func DebugDescend(t *Tree, p vecmath.Vec3) ([]int32, string) {
	idx := t.root
	chain := ""
	for {
		n := t.nodes[idx]
		switch n.kind() {
		case kindInner:
			side := "L"
			next := idx + 1
			if p.Axis(n.axis()) > n.pos {
				side = "R"
				next = n.right()
			}
			chain += fmt.Sprintf("[%v=%.10g %s]", n.axis(), n.pos, side)
			if len(chain) > 400 {
				chain = chain[len(chain)-400:]
			}
			idx = next
		case kindLeaf:
			return t.leafTris[n.triStart() : n.triStart()+n.triCount()], chain
		case kindDeferred:
			d := &t.deferred[n.deferredIdx()]
			sub := t.expandDeferred(d)
			return DebugDescend(sub, p)
		}
	}
}

// DebugIntersect mirrors Intersect but reports whether the given triangle
// index was ever tested during traversal and with what result.
func DebugIntersect(t *Tree, r vecmath.Ray, tMin, tMax float64, watch int32) (tested bool, result string) {
	inv := r.EffInvDir()
	t0, t1, ok := t.bounds.IntersectRayInv(r.Origin, r.Dir, inv, tMin, tMax)
	if !ok {
		return false, "bounds miss"
	}
	var stack []stackEntry
	node := t.root
	curMin, curMax := t0, t1
	result = "never reached"
	for {
		n := t.nodes[node]
		switch n.kind() {
		case kindInner:
			axis := n.axis()
			o := r.Origin.Axis(axis)
			d := r.Dir.Axis(axis)
			near, far := node+1, n.right()
			if o > n.pos || (o == n.pos && d < 0) {
				near, far = far, near
			}
			if d == 0 {
				if o == n.pos {
					stack = append(stack, stackEntry{far, curMin, curMax})
				}
				node = near
				continue
			}
			// Multiply by the precomputed reciprocal, exactly as Intersect
			// does: a mirror that rounds differently would report different
			// decisions than the traversal it is debugging.
			tSplit := (n.pos - o) * inv.Axis(axis)
			switch {
			case tSplit > curMax || tSplit < 0:
				node = near
			case tSplit < curMin:
				node = far
			default:
				stack = append(stack, stackEntry{far, tSplit, curMax})
				node = near
				curMax = tSplit
			}
			continue
		case kindLeaf:
			for i := n.triStart(); i < n.triStart()+n.triCount(); i++ {
				if t.leafTris[i] == watch {
					tested = true
					th, _, _, hit := t.tris[watch].IntersectRay(r, tMin, tMax)
					result = fmt.Sprintf("tested in leaf, interval [%.12g %.12g], hit=%v t=%.17g", curMin, curMax, hit, th)
				}
			}
		case kindDeferred:
		}
		if len(stack) == 0 {
			return tested, result
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node, curMin, curMax = top.node, top.tMin, top.tMax
	}
}
