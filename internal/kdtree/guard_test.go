package kdtree

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"kdtune/internal/parallel"
	"kdtune/internal/vecmath"
)

// allAlgorithms is every builder BuildGuarded dispatches, paper variants and
// extensions alike.
var allAlgorithms = []Algorithm{
	AlgoNodeLevel, AlgoNested, AlgoInPlace, AlgoLazy, AlgoMedian, AlgoSortOnce,
}

// abortCause builds with the guard and requires a *BuildAborted with the
// expected cause.
func abortCause(t *testing.T, b *Builder, a Algorithm, tris []vecmath.Triangle, g Guard, want AbortCause) *BuildAborted {
	t.Helper()
	tree, err := b.BuildGuarded(tris, testConfig(a), g)
	if err == nil {
		t.Fatalf("%v: guard %+v did not abort (tree %d nodes)", a, g, tree.NumNodes())
	}
	var ba *BuildAborted
	if !errors.As(err, &ba) {
		t.Fatalf("%v: error is %T, want *BuildAborted", a, err)
	}
	if ba.Cause != want {
		t.Fatalf("%v: abort cause %v, want %v", a, ba.Cause, want)
	}
	if ba.Algorithm != a {
		t.Errorf("%v: BuildAborted.Algorithm = %v", a, ba.Algorithm)
	}
	if tree != nil {
		t.Errorf("%v: aborted build returned non-nil tree", a)
	}
	return ba
}

func TestBuildGuardedZeroGuardMatchesBuild(t *testing.T) {
	r := rand.New(rand.NewSource(501))
	tris := randomTriangles(r, 3000, 10, 0.2)
	for _, a := range allAlgorithms {
		want := NewBuilder().Build(tris, testConfig(a))
		got, err := NewBuilder().BuildGuarded(tris, testConfig(a), Guard{})
		if err != nil {
			t.Fatalf("%v: zero-guard build aborted: %v", a, err)
		}
		if err := sameTree(want, got); err != nil {
			t.Errorf("%v: guarded tree differs from plain build: %v", a, err)
		}
	}
}

func TestGuardMaxDepthAborts(t *testing.T) {
	r := rand.New(rand.NewSource(502))
	tris := randomTriangles(r, 4000, 10, 0.2)
	for _, a := range allAlgorithms {
		abortCause(t, NewBuilder(), a, tris, Guard{MaxDepth: 1}, AbortDepth)
	}
}

func TestGuardMaxArenaBytesAborts(t *testing.T) {
	r := rand.New(rand.NewSource(503))
	tris := randomTriangles(r, 4000, 10, 0.2)
	for _, a := range allAlgorithms {
		// 4000 items alone are two orders of magnitude past this budget, so
		// the very first memory check trips.
		abortCause(t, NewBuilder(), a, tris, Guard{MaxArenaBytes: 1 << 10}, AbortMemory)
	}
}

func TestGuardDeadlineAborts(t *testing.T) {
	r := rand.New(rand.NewSource(504))
	tris := randomTriangles(r, 40000, 10, 0.2)
	for _, a := range allAlgorithms {
		// A 1ns deadline expires before the build's first node finishes; a
		// 40k-triangle build takes milliseconds.
		abortCause(t, NewBuilder(), a, tris, Guard{Deadline: time.Nanosecond}, AbortDeadline)
	}
}

// TestPostAbortRebuildIdentical is the acceptance criterion of the guarded
// design: after any abort, the same Builder's next build must be
// bitwise-identical to a fresh Builder's — no arena state can leak across.
func TestPostAbortRebuildIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	tris := randomTriangles(r, 5000, 10, 0.2)
	for _, a := range allAlgorithms {
		var fresh bytes.Buffer
		if err := NewBuilder().Build(tris, testConfig(a)).Serialize(&fresh); err != nil {
			t.Fatalf("%v: serialize: %v", a, err)
		}

		b := NewBuilder()
		b.Build(tris, testConfig(a)) // warm the arenas
		// Abort twice through different causes to disturb the arenas
		// mid-build in different phases.
		abortCause(t, b, a, tris, Guard{MaxDepth: 2}, AbortDepth)
		abortCause(t, b, a, tris, Guard{MaxArenaBytes: 1 << 10}, AbortMemory)

		rebuilt := b.Build(tris, testConfig(a))
		if err := rebuilt.Validate(); err != nil {
			t.Fatalf("%v: post-abort tree invalid: %v", a, err)
		}
		var got bytes.Buffer
		if err := rebuilt.Serialize(&got); err != nil {
			t.Fatalf("%v: serialize: %v", a, err)
		}
		if !bytes.Equal(fresh.Bytes(), got.Bytes()) {
			t.Errorf("%v: post-abort rebuild is not bitwise-identical to a fresh build (%d vs %d bytes)",
				a, fresh.Len(), got.Len())
		}
	}
}

// TestGuardedSteadyStateAllocs: arming a full guard (deadline timer, depth,
// memory ceiling) must not break the pooled-arena allocation budget.
func TestGuardedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless under -race")
	}
	if buildChecks {
		t.Skip("the parallelcheck invariant layer allocates per dispatch; counts are meaningless under -tags parallelcheck")
	}
	const budget = 32.0
	r := rand.New(rand.NewSource(42))
	tris := randomTriangles(r, 4000, 10, 0.2)
	g := Guard{Deadline: time.Hour, MaxDepth: 64, MaxArenaBytes: 1 << 30}
	for _, algo := range Algorithms {
		cfg := BaseConfig(algo)
		cfg.Workers = 1
		cfg.S = 1
		b := NewBuilder()
		mustBuild := func() {
			if _, err := b.BuildGuarded(tris, cfg, g); err != nil {
				t.Fatalf("%v: guarded build aborted: %v", algo, err)
			}
		}
		mustBuild()
		mustBuild()
		avg := testing.AllocsPerRun(5, mustBuild)
		if avg > budget {
			t.Errorf("%v: guarded steady-state rebuild allocates %.1f objects, budget %.0f", algo, avg, budget)
		}
	}
}

func TestBuildAbortedError(t *testing.T) {
	wp := &parallel.WorkerPanic{Chunk: 2, Value: "boom"}
	ba := &BuildAborted{Cause: AbortWorkerPanic, Algorithm: AlgoNested, Panic: wp}
	var gotWP *parallel.WorkerPanic
	if !errors.As(ba, &gotWP) || gotWP != wp {
		t.Errorf("errors.As did not surface the contained WorkerPanic")
	}
	if ba.Error() == "" || (&BuildAborted{Cause: AbortDeadline}).Error() == "" {
		t.Errorf("empty error strings")
	}
	for c := AbortNone; c <= AbortWorkerPanic; c++ {
		if c.String() == "" {
			t.Errorf("AbortCause(%d) has empty String", c)
		}
	}
	if got := AbortCause(99).String(); got != "AbortCause(99)" {
		t.Errorf("unknown cause String = %q", got)
	}
}

// TestGuardDeadlineStaleTimer: a deadline from build N must never abort
// build N+1 — the generation check defuses the stale fire.
func TestGuardDeadlineStaleTimer(t *testing.T) {
	r := rand.New(rand.NewSource(506))
	tris := randomTriangles(r, 500, 10, 0.2)
	b := NewBuilder()
	for i := 0; i < 50; i++ {
		// A deadline slightly above the tiny build time: the timer usually
		// outlives the build and fires (stale) during the next one.
		if _, err := b.BuildGuarded(tris, testConfig(AlgoNodeLevel), Guard{Deadline: 500 * time.Microsecond}); err != nil {
			// A genuine in-build expiry is legal on a loaded machine; only a
			// *systematic* failure would indicate stale fires. Tolerate
			// sporadic aborts.
			continue
		}
	}
	// After all those armed-and-disarmed timers, an unguarded build must
	// succeed — any stale fire into the armed guard would abort it.
	for i := 0; i < 20; i++ {
		tree, err := b.BuildGuarded(tris, testConfig(AlgoNodeLevel), Guard{})
		if err != nil {
			t.Fatalf("stale deadline aborted an unbounded build: %v", err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("tree invalid: %v", err)
		}
	}
}
