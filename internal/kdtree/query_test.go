package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"kdtune/internal/vecmath"
)

func bruteRange(tris []vecmath.Triangle, box vecmath.AABB) map[int]bool {
	out := map[int]bool{}
	for i, tr := range tris {
		if tr.Bounds().Overlaps(box) {
			out[i] = true
		}
	}
	return out
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	tris := randomTriangles(r, 800, 10, 0.3)
	for _, a := range Algorithms {
		tree := Build(tris, testConfig(a))
		for q := 0; q < 100; q++ {
			c := vecmath.V(r.Float64()*10, r.Float64()*10, r.Float64()*10)
			d := vecmath.V(r.Float64()*2, r.Float64()*2, r.Float64()*2)
			box := vecmath.NewAABB(c.Sub(d), c.Add(d))
			want := bruteRange(tris, box)
			got := tree.RangeQuery(box)
			if len(got) != len(want) {
				t.Fatalf("%v query %d: got %d tris, want %d", a, q, len(got), len(want))
			}
			prev := -1
			for _, ti := range got {
				if !want[ti] {
					t.Fatalf("%v query %d: stray triangle %d", a, q, ti)
				}
				if ti <= prev {
					t.Fatalf("%v query %d: result not sorted/unique", a, q)
				}
				prev = ti
			}
		}
	}
}

func TestRangeQueryOutsideBounds(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	tris := randomTriangles(r, 100, 5, 0.2)
	tree := Build(tris, testConfig(AlgoInPlace))
	far := vecmath.NewAABB(vecmath.V(100, 100, 100), vecmath.V(101, 101, 101))
	if got := tree.RangeQuery(far); len(got) != 0 {
		t.Fatalf("far query returned %d triangles", len(got))
	}
}

func TestRangeQueryWholeScene(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	tris := randomTriangles(r, 300, 6, 0.2)
	tree := Build(tris, testConfig(AlgoLazy))
	got := tree.RangeQuery(tree.Bounds().Grow(1))
	if len(got) != len(tris) {
		t.Fatalf("whole-scene query returned %d of %d", len(got), len(tris))
	}
}

func TestNearestNeighborMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	tris := randomTriangles(r, 500, 10, 0.25)
	for _, a := range Algorithms {
		tree := Build(tris, testConfig(a))
		for q := 0; q < 100; q++ {
			p := vecmath.V(r.Float64()*14-2, r.Float64()*14-2, r.Float64()*14-2)
			_, gotD, ok := tree.NearestNeighbor(p)
			if !ok {
				t.Fatalf("%v: no neighbor found", a)
			}
			wantD := math.Inf(1)
			for _, tr := range tris {
				if tr.IsDegenerate() {
					continue
				}
				if d := vecmath.DistToTriangle(p, tr); d < wantD {
					wantD = d
				}
			}
			if math.Abs(gotD-wantD) > 1e-9*(1+wantD) {
				t.Fatalf("%v query %d: NN dist %v, brute %v", a, q, gotD, wantD)
			}
		}
	}
}

func TestNearestNeighborEmptyScene(t *testing.T) {
	tree := Build(nil, testConfig(AlgoNodeLevel))
	if _, _, ok := tree.NearestNeighbor(vecmath.V(0, 0, 0)); ok {
		t.Fatal("nearest neighbor in empty scene")
	}
}

func TestNearestNeighborOnSurface(t *testing.T) {
	tris := []vecmath.Triangle{
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
	}
	tree := Build(tris, testConfig(AlgoNodeLevel))
	ti, d, ok := tree.NearestNeighbor(vecmath.V(0.25, 0.25, 0))
	if !ok || ti != 0 || d > 1e-12 {
		t.Fatalf("on-surface NN: tri %d dist %v ok %v", ti, d, ok)
	}
}
