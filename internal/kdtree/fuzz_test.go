package kdtree

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"kdtune/internal/vecmath"
)

// FuzzReadTree asserts the binary deserialiser rejects arbitrary garbage
// without panicking and that anything it accepts is safe to query.
func FuzzReadTree(f *testing.F) {
	r := rand.New(rand.NewSource(130))
	tree := Build(randomTriangles(r, 40, 5, 0.3), testConfig(AlgoNodeLevel))
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("KDTN"))
	f.Add(good[:len(good)-5])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		tree, err := ReadTree(bytes.NewReader(data))
		if err != nil {
			return
		}
		probe := vecmath.NewRay(vecmath.V(-10, 0.1, 0.2), vecmath.V(1, 0.01, 0.02))
		tree.Intersect(probe, 0, 1e18)
		tree.Occluded(probe, 0, 1e18)
	})
}

// fuzzTriangles decodes raw fuzzer bytes into a triangle soup: 9 float64
// coordinates per triangle, bit-for-bit, so NaNs, infinities, denormals and
// exactly-duplicated vertices all occur naturally.
func fuzzTriangles(data []byte) []vecmath.Triangle {
	const triBytes = 9 * 8
	n := len(data) / triBytes
	if n > 256 {
		n = 256 // bound build cost per fuzz execution
	}
	tris := make([]vecmath.Triangle, n)
	for i := range tris {
		var c [9]float64
		for j := range c {
			c[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*triBytes+j*8:]))
		}
		tris[i] = vecmath.Tri(vecmath.V(c[0], c[1], c[2]), vecmath.V(c[3], c[4], c[5]), vecmath.V(c[6], c[7], c[8]))
	}
	return tris
}

func fuzzSeedBytes(tris ...vecmath.Triangle) []byte {
	var buf bytes.Buffer
	for _, tr := range tris {
		for _, v := range []vecmath.Vec3{tr.A, tr.B, tr.C} {
			for _, x := range []float64{v.X, v.Y, v.Z} {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
				buf.Write(b[:])
			}
		}
	}
	return buf.Bytes()
}

// FuzzBuild hammers every builder with adversarial triangle soups: whatever
// geometry arrives, construction must terminate without panicking, the
// resulting tree must satisfy the structural invariants, and closest-hit
// queries on finite geometry must agree with the brute-force reference.
func FuzzBuild(f *testing.F) {
	nan, inf := math.NaN(), math.Inf(1)
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add(fuzzSeedBytes(
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
	), uint8(1), uint8(1))
	// Zero-area: a point triangle and a collinear sliver.
	f.Add(fuzzSeedBytes(
		vecmath.Tri(vecmath.V(2, 2, 2), vecmath.V(2, 2, 2), vecmath.V(2, 2, 2)),
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 1, 1), vecmath.V(2, 2, 2)),
	), uint8(2), uint8(2))
	// Non-finite vertices mixed with valid geometry.
	f.Add(fuzzSeedBytes(
		vecmath.Tri(vecmath.V(nan, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
		vecmath.Tri(vecmath.V(inf, -inf, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
	), uint8(3), uint8(3))
	// All-coplanar soup: every triangle in the z=0 plane, so every z split
	// is degenerate and planar-triangle placement rules carry all the load.
	coplanar := make([]vecmath.Triangle, 0, 8)
	for i := 0; i < 8; i++ {
		x := float64(i % 4)
		y := float64(i / 4)
		coplanar = append(coplanar, vecmath.Tri(
			vecmath.V(x, y, 0), vecmath.V(x+1, y, 0), vecmath.V(x, y+1, 0)))
	}
	f.Add(fuzzSeedBytes(coplanar...), uint8(0), uint8(2))
	// Many exact duplicates: forces unsplittable leaves past the termination
	// criteria.
	dup := vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0))
	f.Add(fuzzSeedBytes(dup, dup, dup, dup, dup, dup, dup, dup), uint8(1), uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, algoPick, workerPick uint8) {
		tris := fuzzTriangles(data)
		algo := Algorithms[int(algoPick)%len(Algorithms)]
		cfg := testConfig(algo)
		cfg.Workers = 1 + int(workerPick%4)

		tree := Build(tris, cfg)
		tree.ExpandAll()
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: invalid tree from fuzzed soup: %v", algo, err)
		}

		// The differential check only runs on well-conditioned geometry:
		// finite and of moderate magnitude. Beyond that the brute-force
		// reference itself produces numerical artifacts (Möller–Trumbore at
		// 1e120-scale coordinates reports "hits" whose hit points are
		// nowhere near the triangle), so disagreement proves nothing.
		maxAbs := func(v vecmath.Vec3) float64 {
			return math.Max(math.Abs(v.X), math.Max(math.Abs(v.Y), math.Abs(v.Z)))
		}
		wellConditioned := true
		for _, tr := range tris {
			b := tr.Bounds()
			if !b.Min.IsFinite() || !b.Max.IsFinite() ||
				math.Max(maxAbs(b.Min), maxAbs(b.Max)) > 1e6 {
				wellConditioned = false
				break
			}
		}
		if !wellConditioned {
			// Queries must still be panic-free whatever the geometry.
			probe := vecmath.NewRay(vecmath.V(-1, 0.1, 0.2), vecmath.V(1, 0.3, 0.1))
			tree.Intersect(probe, 1e-9, math.Inf(1))
			tree.Occluded(probe, 1e-9, math.Inf(1))
			return
		}
		// Differential probes: rays through the scene from varied origins.
		// The tree must find a hit no farther than the brute-force closest
		// (it may report a different triangle at the same distance).
		for i, probe := range []vecmath.Ray{
			vecmath.NewRay(vecmath.V(-3, 0.25, 0.25), vecmath.V(1, 0.01, 0.02)),
			vecmath.NewRay(vecmath.V(0.3, 0.3, 5), vecmath.V(0, 0, -1)),
			vecmath.NewRay(vecmath.V(0.1, -4, 0), vecmath.V(0.02, 1, 0.01)),
		} {
			want, wantHit := bruteForceClosest(tris, probe, 1e-9, math.Inf(1))
			if wantHit {
				// Trust the reference hit only if it is geometrically
				// plausible: sliver triangles near the determinant epsilon
				// can yield hit points far off the actual triangle.
				p := probe.At(want.T)
				box := tris[want.Tri].Bounds()
				if !box.Grow(1e-6 * (1 + box.Diagonal().Len() + maxAbs(p))).Contains(p) {
					continue
				}
			}
			got, gotHit := tree.Intersect(probe, 1e-9, math.Inf(1))
			if gotHit != wantHit {
				t.Fatalf("%v: probe %d hit=%v, brute force hit=%v", algo, i, gotHit, wantHit)
			}
			if !gotHit {
				continue
			}
			tol := 1e-9 * math.Max(1, math.Abs(want.T))
			if got.T > want.T+tol || got.T < want.T-tol {
				t.Fatalf("%v: probe %d t=%v (tri %d), brute force t=%v (tri %d)",
					algo, i, got.T, got.Tri, want.T, want.Tri)
			}
			if !tree.Occluded(probe, 1e-9, math.Inf(1)) {
				t.Fatalf("%v: probe %d Occluded=false despite closest hit at t=%v", algo, i, got.T)
			}
		}
	})
}
