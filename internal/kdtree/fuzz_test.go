package kdtree

import (
	"bytes"
	"math/rand"
	"testing"

	"kdtune/internal/vecmath"
)

// FuzzReadTree asserts the binary deserialiser rejects arbitrary garbage
// without panicking and that anything it accepts is safe to query.
func FuzzReadTree(f *testing.F) {
	r := rand.New(rand.NewSource(130))
	tree := Build(randomTriangles(r, 40, 5, 0.3), testConfig(AlgoNodeLevel))
	var buf bytes.Buffer
	if err := tree.Serialize(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("KDTN"))
	f.Add(good[:len(good)-5])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		tree, err := ReadTree(bytes.NewReader(data))
		if err != nil {
			return
		}
		probe := vecmath.NewRay(vecmath.V(-10, 0.1, 0.2), vecmath.V(1, 0.01, 0.02))
		tree.Intersect(probe, 0, 1e18)
		tree.Occluded(probe, 0, 1e18)
	})
}
