package kdtree

import (
	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

// SAHCost evaluates the cost model's estimate of the expected cost of
// shooting a random ray through the tree:
//
//	cost = Σ_inner  P(node) · CT  +  Σ_leaf  P(leaf) · N_leaf · CI
//
// with P(x) = A(x)/A(root), the surface-area probability of §III-B.
// Suspended lazy subtrees are charged as leaves over their primitive sets
// (their current, unexpanded state). The value is what the greedy builder
// minimises step by step; Validate-style tests use the invariant that a
// built tree never estimates worse than the single-leaf tree.
func (t *Tree) SAHCost(p sah.Params) float64 {
	rootArea := t.bounds.SurfaceArea()
	if rootArea <= 0 || len(t.nodes) == 0 {
		return 0
	}
	return t.costNode(t.root, t.bounds, p) / rootArea
}

// costNode returns the un-normalised cost contribution (area-weighted) of
// the subtree at idx occupying region.
func (t *Tree) costNode(idx int32, region vecmath.AABB, p sah.Params) float64 {
	n := t.nodes[idx]
	area := region.SurfaceArea()
	switch n.kind() {
	case kindInner:
		lb, rb := region.Split(n.axis(), n.pos)
		return p.CT*area + t.costNode(idx+1, lb, p) + t.costNode(n.right(), rb, p)
	case kindLeaf:
		return area * p.LeafCost(int(n.triCount()))
	default: // deferred
		d := &t.deferred[n.deferredIdx()]
		if sub := d.sub.Load(); sub != nil {
			// Already expanded: charge the real subtree.
			return sub.costNode(sub.root, region, p)
		}
		return area * p.LeafCost(len(d.tris))
	}
}
