package kdtree

import (
	"math"

	"kdtune/internal/vecmath"
)

// Hit describes the closest ray-triangle intersection found by Intersect.
type Hit struct {
	T    float64 // parametric distance along the ray (units of |Dir|)
	Tri  int     // index into Tree.Triangles()
	U, V float64 // barycentric coordinates of the hit point
}

// traversalStackDepth bounds the explicit traversal stack. kD-trees built
// with the default depth cap never exceed ~64 levels; the stack grows
// dynamically past this only in pathological cases.
const traversalStackDepth = 64

// stackEntry is a postponed far-child visit.
type stackEntry struct {
	node       int32
	tMin, tMax float64
}

// boundarySlack widens the tSplit-vs-interval comparisons during traversal.
// The interval endpoints and tSplit are rounded independently (adjacent
// split planes round on their own, and the AABB entry clip is a separate
// computation), so orderings that hold in exact arithmetic can invert by a
// few ulps. Without the slack, a cell the ray only grazes at a boundary
// point can be skipped outright — the differential ray oracle caught a
// planar triangle lying exactly on a split plane whose hit was lost because
// tSplit landed 1 ulp below curMin. The slack is relative (~45 ulps), far
// below any geometric feature size, and only ever causes a few extra node
// visits right at cell boundaries.
const boundarySlack = 1e-14

func splitSlack(curMin, curMax float64) float64 {
	return boundarySlack * math.Max(math.Abs(curMin), math.Abs(curMax))
}

// Intersect finds the closest intersection of r with the scene in the
// parametric interval (tMin, tMax). It is safe for concurrent use; on lazy
// trees the first ray to reach a suspended node expands it (all other rays
// block on that node until the subtree exists).
//
// The traversal is the standard front-to-back kD-tree walk (Ericson, RTCD
// pp. 319–321): descend towards the near child, push the far child with its
// clipped parametric interval, and terminate as soon as a hit closer than
// the entry distance of the next pending subtree is known. Split distances
// are computed with the ray's precomputed reciprocal direction (one multiply
// per inner node instead of a divide), matching the slab clip exactly.
func (t *Tree) Intersect(r vecmath.Ray, tMin, tMax float64) (Hit, bool) {
	inv := r.EffInvDir()
	t0, t1, ok := t.bounds.IntersectRayInv(r.Origin, r.Dir, inv, tMin, tMax)
	if !ok {
		return Hit{}, false
	}
	return t.intersectRange(r, inv, t0, t1, tMin, tMax)
}

// intersectRange walks the tree over the traversal interval [curMin,
// curMax] (already clipped to the tree bounds); candidate hits are accepted
// anywhere in the caller's original open interval (tMin, tMax), which
// matters for triangles that poke out of the node being traversed and for
// flat scenes whose bounds have zero extent.
func (t *Tree) intersectRange(r vecmath.Ray, inv vecmath.Vec3, curMin, curMax, tMin, tMax float64) (Hit, bool) {
	h, ok := t.intersectFrom(r, inv, t.root, curMin, curMax, tMin, tMax, Hit{T: math.Inf(1)}, false)
	if !ok {
		return Hit{}, false
	}
	return h, true
}

// intersectFrom is the scalar traversal core, parameterised on the start
// node and the running best hit so packet traversal can demote a single
// lane mid-walk: a demoted lane resumes here at the divergent node with its
// current interval and best, which continues the walk bitwise-identically
// to a ray that had been scalar from the start. The returned pair is the
// threaded (best, found) state — the caller decides whether an un-found
// Hit{T: +Inf} sentinel should be zeroed.
//
//kdlint:hotpath
func (t *Tree) intersectFrom(r vecmath.Ray, inv vecmath.Vec3, start int32, curMin, curMax, tMin, tMax float64, best Hit, found bool) (Hit, bool) {
	var stackArr [traversalStackDepth]stackEntry
	stack := stackArr[:0]

	// Unpack the ray into axis-indexable form once: the inner-node loop then
	// reads its per-axis components with a single indexed load.
	org := [3]float64{r.Origin.X, r.Origin.Y, r.Origin.Z}
	dir := [3]float64{r.Dir.X, r.Dir.Y, r.Dir.Z}
	idir := [3]float64{inv.X, inv.Y, inv.Z}

	node := start

	for {
		if found && best.T < curMin {
			// This subtree lies entirely beyond the known closest hit —
			// skip it and move to the next pending one. The stack is NOT
			// monotone in tMin (an in-plane graze pushes the far child
			// with the full parent interval, so a near entry can sit below
			// a farther one), so breaking out entirely here would abandon
			// closer pending subtrees — a differential-oracle finding on a
			// z-symmetric scene with a ray lying exactly in the symmetry
			// plane.
			if len(stack) == 0 {
				break
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			node, curMin, curMax = top.node, top.tMin, top.tMax
			continue
		}
		n := t.nodes[node]
		switch n.kind() {
		case kindInner:
			axis := n.axis()
			o := org[axis]
			d := dir[axis]

			near, far := node+1, n.right()
			if o > n.pos || (o == n.pos && d < 0) {
				near, far = far, near
			}

			if d == 0 {
				if o == n.pos {
					// The ray lies exactly in the split plane: it grazes
					// the boundary faces of BOTH children, and planar
					// primitives on the plane live in only one of them.
					//kdlint:allow hotpath.alloc stack spills past the 64-entry stackArr only beyond the builder's depth cap; steady state never grows
					stack = append(stack, stackEntry{far, curMin, curMax})
				}
				// Otherwise the ray stays strictly on the near side.
				node = near
				continue
			}
			tSplit := (n.pos - o) * idir[axis]
			// Boundary comparisons carry a conservative slack: a hit
			// exactly on the split plane (tSplit == curMin or curMax) lies
			// in the degenerate interval of one child, planar primitives
			// live in exactly one of them, and independent rounding can
			// push tSplit a few ulps outside the interval — both children
			// must be visited or the hit is lost (found by differential
			// testing; see boundarySlack).
			slack := splitSlack(curMin, curMax)
			switch {
			case tSplit > curMax+slack || tSplit < 0:
				node = near
			case tSplit < curMin-slack:
				node = far
			default:
				//kdlint:allow hotpath.alloc stack spills past the 64-entry stackArr only beyond the builder's depth cap; steady state never grows
				stack = append(stack, stackEntry{far, tSplit, curMax})
				node = near
				curMax = tSplit
			}
			continue

		case kindLeaf:
			// Leaf candidates stream from the SoA layout: three contiguous
			// precomputed-edge arrays in leaf-reference order (see triSoA);
			// bitwise identical to testing t.tris[leafTris[i]] directly.
			for i := n.triStart(); i < n.triStart()+n.triCount(); i++ {
				if th, u, v, hit := vecmath.IntersectRayPre(t.soa.a[i], t.soa.e1[i], t.soa.e2[i], r, tMin, tMax); hit && th < best.T {
					best = Hit{T: th, Tri: int(t.leafTris[i]), U: u, V: v}
					found = true
				}
			}

		case kindDeferred:
			d := &t.deferred[n.deferredIdx()]
			sub := t.expandDeferred(d)
			if h, hit := sub.intersectRange(r, inv, curMin, curMax, tMin, tMax); hit && h.T < best.T {
				best = h
				found = true
			}
		}

		// Pop the next pending subtree.
		if len(stack) == 0 {
			break
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node, curMin, curMax = top.node, top.tMin, top.tMax
	}
	return best, found
}

// Occluded reports whether any triangle blocks r within (tMin, tMax) — the
// any-hit query used for shadow rays. It shares the traversal of Intersect
// but exits on the first hit.
func (t *Tree) Occluded(r vecmath.Ray, tMin, tMax float64) bool {
	inv := r.EffInvDir()
	t0, t1, ok := t.bounds.IntersectRayInv(r.Origin, r.Dir, inv, tMin, tMax)
	if !ok {
		return false
	}
	return t.occludedRange(r, inv, t0, t1, tMin, tMax)
}

func (t *Tree) occludedRange(r vecmath.Ray, inv vecmath.Vec3, curMin, curMax, tMin, tMax float64) bool {
	return t.occludedFrom(r, inv, t.root, curMin, curMax, tMin, tMax)
}

// occludedFrom is the any-hit traversal core, parameterised on the start
// node for the same reason as intersectFrom: packet lanes demoted at a
// divergent inner node finish the subtree here.
//
//kdlint:hotpath
func (t *Tree) occludedFrom(r vecmath.Ray, inv vecmath.Vec3, start int32, curMin, curMax, tMin, tMax float64) bool {
	var stackArr [traversalStackDepth]stackEntry
	stack := stackArr[:0]
	node := start

	org := [3]float64{r.Origin.X, r.Origin.Y, r.Origin.Z}
	dir := [3]float64{r.Dir.X, r.Dir.Y, r.Dir.Z}
	idir := [3]float64{inv.X, inv.Y, inv.Z}

	for {
		n := t.nodes[node]
		switch n.kind() {
		case kindInner:
			axis := n.axis()
			o := org[axis]
			d := dir[axis]
			near, far := node+1, n.right()
			if o > n.pos || (o == n.pos && d < 0) {
				near, far = far, near
			}
			if d == 0 {
				if o == n.pos {
					// In-plane ray: grazes both children (see Intersect).
					//kdlint:allow hotpath.alloc stack spills past the 64-entry stackArr only beyond the builder's depth cap; steady state never grows
					stack = append(stack, stackEntry{far, curMin, curMax})
				}
				node = near
				continue
			}
			tSplit := (n.pos - o) * idir[axis]
			// Same boundary slack as Intersect (see boundarySlack).
			slack := splitSlack(curMin, curMax)
			switch {
			case tSplit > curMax+slack || tSplit < 0:
				node = near
			case tSplit < curMin-slack:
				node = far
			default:
				//kdlint:allow hotpath.alloc stack spills past the 64-entry stackArr only beyond the builder's depth cap; steady state never grows
				stack = append(stack, stackEntry{far, tSplit, curMax})
				node = near
				curMax = tSplit
			}
			continue

		case kindLeaf:
			for i := n.triStart(); i < n.triStart()+n.triCount(); i++ {
				if _, _, _, hit := vecmath.IntersectRayPre(t.soa.a[i], t.soa.e1[i], t.soa.e2[i], r, tMin, tMax); hit {
					return true
				}
			}

		case kindDeferred:
			d := &t.deferred[n.deferredIdx()]
			sub := t.expandDeferred(d)
			if sub.occludedRange(r, inv, curMin, curMax, tMin, tMax) {
				return true
			}
		}

		if len(stack) == 0 {
			return false
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node, curMin, curMax = top.node, top.tMin, top.tMax
	}
}

// expandDeferred builds the suspended subtree on first use. The once latch
// plays the role of the paper's OpenMP critical section: concurrent rays
// reaching the same node serialise here, every other node stays contention
// free.
func (t *Tree) expandDeferred(d *deferredNode) *Tree {
	d.once.Do(func() {
		// Expand with the sequential sweep recursion; the node holds fewer
		// than R primitives by construction, so per-node parallelism is not
		// worth spawning (and rays are already parallel across pixels). The
		// dedicated Builder is the expansion's per-tree scratch: the subtree
		// Tree borrows (and keeps alive) its storage.
		cfg := t.cfg
		cfg.Algorithm = AlgoNodeLevel
		cfg.Workers = 1
		sub := NewBuilder().buildDeferredSubtree(t, d, cfg)
		d.sub.Store(sub)
	})
	return d.sub.Load()
}

// ExpandAll forces expansion of every suspended subtree. Used by validation
// and by benchmarks that want to charge full construction cost up front.
func (t *Tree) ExpandAll() {
	for i := range t.deferred {
		sub := t.expandDeferred(&t.deferred[i])
		sub.ExpandAll()
	}
}
