//go:build parallelcheck

package kdtree

import "fmt"

// buildChecks enables the kdtree half of the -tags parallelcheck invariant
// layer: BuildGuarded asserts on its abort path that every pooled arena was
// drained back to a pristine state, so an aborted build can never leak a
// stale alias into the next build on the same Builder — the dynamic twin of
// kdlint's static arena-hygiene rule. Default builds compile all of it away.
const buildChecks = true

// assertAbortDrained panics unless the Builder's pooled storage is back to
// the state the next Build expects after an abort: no stranded breadth-first
// subtree arenas, no arena still wired to the live-byte counter, and every
// free-listed arena fully truncated. It runs after BuildGuarded's abort
// cleanup, with the pool drained, so no worker can be mutating the arenas
// concurrently.
func (b *Builder) assertAbortDrained() {
	if n := len(b.bf.subs); n != 0 {
		panic(fmt.Sprintf("kdtree: %d subtree arenas stranded after aborted build", n))
	}
	if b.main.live != nil {
		panic("kdtree: main arena still wired to live-byte accounting after aborted build")
	}
	b.arenaMu.Lock()
	defer b.arenaMu.Unlock()
	for i, a := range b.arenaFree {
		if a.live != nil {
			panic(fmt.Sprintf("kdtree: pooled arena %d still wired to live-byte accounting after aborted build", i))
		}
		if held := len(a.nodes) + len(a.leafTris) + len(a.defs) + len(a.defTris) + len(a.items) + len(a.events); held != 0 {
			panic(fmt.Sprintf("kdtree: pooled arena %d holds %d entries after aborted build, want fully drained", i, held))
		}
	}
}
