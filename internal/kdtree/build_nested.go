package kdtree

import (
	"sync"

	"kdtune/internal/parallel"
	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

// nestedSequentialCutoff is the node size below which the nested builder
// stops parallelising within nodes and falls back to the plain node-level
// recursion: for small primitive lists the fork-join and scan overhead
// exceeds the work (Choi et al. make the same transition from their
// "nested" to per-subtree processing once enough parallelism exists across
// subtrees).
const nestedSequentialCutoff = 2048

// buildNested implements the nested parallel algorithm of §IV-B: subtree
// tasks exactly as in the node-level variant, plus parallel processing of
// the primitive list inside a node. The per-node work — histogramming
// primitive extents and partitioning the list — is expressed as parallel
// passes over primitive chunks followed by short serialised merges, the
// "sequence of parallel prefix operations" structure of the original
// algorithm.
func (c *buildCtx) buildNested() *buildNode {
	items, bounds := c.rootItems()
	if len(items) == 0 {
		return nil
	}
	return c.recurseNested(items, bounds, 0)
}

func (c *buildCtx) recurseNested(items []item, bounds vecmath.AABB, depth int) *buildNode {
	if len(items) < nestedSequentialCutoff {
		return c.recurseNodeLevel(items, bounds, depth)
	}
	if depth >= c.cfg.MaxDepth {
		return c.makeLeaf(items, bounds, depth)
	}

	split, ok := c.parallelBestSplit(items, bounds)
	if !ok || c.params.ShouldTerminate(len(items), split) {
		return c.makeLeaf(items, bounds, depth)
	}

	left, right, lb, rb := c.parallelPartition(items, split, bounds)
	if len(left) == len(items) && len(right) == len(items) {
		return c.makeLeaf(items, bounds, depth)
	}

	c.counters.noteInner()
	n := &buildNode{bounds: bounds, axis: split.Axis, pos: split.Pos}
	if depth < c.spawnCap {
		var wg sync.WaitGroup
		wg.Add(2)
		c.pool.Spawn(func() {
			defer wg.Done()
			n.left = c.recurseNested(left, lb, depth+1)
		})
		c.pool.Spawn(func() {
			defer wg.Done()
			n.right = c.recurseNested(right, rb, depth+1)
		})
		wg.Wait()
	} else {
		n.left = c.recurseNested(left, lb, depth+1)
		n.right = c.recurseNested(right, rb, depth+1)
	}
	return n
}

// parallelBestSplit evaluates the binned SAH split search with per-chunk
// private histograms merged at the barrier (parallel histogram + reduction).
// The chunk geometry and the chunk index both come from the parallel
// package, so no arithmetic here can drift out of sync with the scheduler;
// worker counts <= 0 are normalised inside.
func (c *buildCtx) parallelBestSplit(items []item, bounds vecmath.AABB) (sah.Split, bool) {
	return sah.FindBestSplitBinnedChunks(c.params, bounds, len(items), c.cfg.Bins, c.cfg.Workers,
		func(bs *sah.BinSet, lo, hi int) {
			for i := lo; i < hi; i++ {
				bs.Add(items[i].bounds)
			}
		})
}

// sideFlag classifies one item against a split plane.
type sideFlag uint8

const (
	sideLeft sideFlag = 1 << iota
	sideRight
)

// parallelPartition distributes items into the two children using the
// classic three-phase structure: a parallel classification pass computing
// per-item output counts, exclusive prefix scans turning the counts into
// write offsets, and a parallel scatter pass.
func (c *buildCtx) parallelPartition(items []item, split sah.Split, parent vecmath.AABB) (left, right []item, lb, rb vecmath.AABB) {
	lb, rb = parent.Split(split.Axis, split.Pos)
	n := len(items)
	workers := c.cfg.Workers

	flags := make([]sideFlag, n)
	leftCount := make([]int, n)
	rightCount := make([]int, n)
	// childBoxes caches the narrowed bounds computed during classification
	// so the scatter pass does not redo the (potentially expensive)
	// clipping.
	type narrowed struct{ l, r vecmath.AABB }
	boxes := make([]narrowed, n)

	parallel.For(n, workers, func(loIdx, hiIdx int) {
		for i := loIdx; i < hiIdx; i++ {
			it := items[i]
			lo := it.bounds.Min.Axis(split.Axis)
			hi := it.bounds.Max.Axis(split.Axis)
			goesLeft := lo < split.Pos || (lo == hi && lo == split.Pos)
			goesRight := hi > split.Pos
			if goesLeft {
				if b, ok := c.childBounds(it, lb); ok {
					flags[i] |= sideLeft
					leftCount[i] = 1
					boxes[i].l = b
				}
			}
			if goesRight {
				if b, ok := c.childBounds(it, rb); ok {
					flags[i] |= sideRight
					rightCount[i] = 1
					boxes[i].r = b
				}
			}
		}
	})

	nl := parallel.ExclusiveScan(leftCount, leftCount, workers)
	nr := parallel.ExclusiveScan(rightCount, rightCount, workers)
	left = make([]item, nl)
	right = make([]item, nr)

	parallel.For(n, workers, func(loIdx, hiIdx int) {
		for i := loIdx; i < hiIdx; i++ {
			if flags[i]&sideLeft != 0 {
				left[leftCount[i]] = item{items[i].tri, boxes[i].l}
			}
			if flags[i]&sideRight != 0 {
				right[rightCount[i]] = item{items[i].tri, boxes[i].r}
			}
		}
	})
	return left, right, lb, rb
}
