package kdtree

import (
	"sync"

	"kdtune/internal/parallel"
	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

// nestedSequentialCutoff is the node size below which the nested builder
// stops parallelising within nodes and falls back to the plain node-level
// recursion: for small primitive lists the fork-join and scan overhead
// exceeds the work (Choi et al. make the same transition from their
// "nested" to per-subtree processing once enough parallelism exists across
// subtrees).
const nestedSequentialCutoff = 2048

// buildNested implements the nested parallel algorithm of §IV-B: subtree
// tasks exactly as in the node-level variant, plus parallel processing of
// the primitive list inside a node. The per-node work — histogramming
// primitive extents and partitioning the list — is expressed as parallel
// passes over primitive chunks followed by short serialised merges, the
// "sequence of parallel prefix operations" structure of the original
// algorithm.
func (c *buildCtx) buildNested() vecmath.AABB {
	a := &c.b.main
	items, bounds := c.rootItems(a)
	if len(items) == 0 {
		return vecmath.AABB{}
	}
	c.recurseNested(a, items, bounds, 0)
	return bounds
}

func (c *buildCtx) recurseNested(a *arena, items []item, bounds vecmath.AABB, depth int) {
	if c.checkAbort(depth) {
		return
	}
	if len(items) < nestedSequentialCutoff {
		c.recurseNodeLevel(a, items, bounds, depth)
		return
	}
	if depth >= c.cfg.MaxDepth {
		c.makeLeaf(a, items, depth)
		return
	}

	split, ok := c.parallelBestSplit(items, bounds)
	if !ok || c.params.ShouldTerminate(len(items), split) {
		c.makeLeaf(a, items, depth)
		return
	}

	mark := a.markItems()
	left, right, lb, rb := c.parallelPartition(a, items, split, bounds)
	// A canceled partition returns unusable lists (skipped chunks leave
	// garbage counts); bail before acting on them.
	if c.aborted() {
		a.releaseItems(mark)
		return
	}
	if len(left) == len(items) && len(right) == len(items) {
		a.releaseItems(mark)
		c.makeLeaf(a, items, depth)
		return
	}

	c.counters.noteInner()
	self := a.emitInner(split.Axis, split.Pos)
	if depth < c.spawnCap {
		la, ra := c.b.getArena(), c.b.getArena()
		var wg sync.WaitGroup
		wg.Add(2)
		//kdlint:nocancel subtree task polls the build Canceler via checkAbort at every node
		c.pool.Spawn(func() {
			defer wg.Done()
			c.recurseNested(la, left, lb, depth+1)
		})
		//kdlint:nocancel subtree task polls the build Canceler via checkAbort at every node
		c.pool.Spawn(func() {
			defer wg.Done()
			c.recurseNested(ra, right, rb, depth+1)
		})
		wg.Wait()
		a.graft(la)
		a.patchRight(self, a.graft(ra))
		c.b.putArena(la)
		c.b.putArena(ra)
	} else {
		c.recurseNested(a, left, lb, depth+1)
		a.patchRight(self, int32(len(a.nodes)))
		c.recurseNested(a, right, rb, depth+1)
	}
	a.releaseItems(mark)
}

// parallelBestSplit evaluates the binned SAH split search with per-chunk
// private histograms merged at the barrier (parallel histogram + reduction).
// The chunk geometry and the chunk index both come from the parallel
// package, so no arithmetic here can drift out of sync with the scheduler;
// worker counts <= 0 are normalised inside.
func (c *buildCtx) parallelBestSplit(items []item, bounds vecmath.AABB) (sah.Split, bool) {
	return sah.FindBestSplitBinnedChunksCancel(c.canceler(), c.params, bounds, len(items), c.cfg.Bins, c.cfg.Workers, c.cfg.BinGrain,
		func(bs *sah.BinSet, lo, hi int) {
			for i := lo; i < hi; i++ {
				bs.Add(items[i].bounds)
			}
		})
}

// sideFlag classifies one item against a split plane.
type sideFlag uint8

const (
	sideLeft sideFlag = 1 << iota
	sideRight
)

// parallelPartition distributes items into the two children using the
// classic three-phase structure: a parallel classification pass computing
// per-item output counts, exclusive prefix scans turning the counts into
// write offsets, and a parallel scatter pass. All scratch comes from the
// arena (it dies before the recursion descends); the child lists are carved
// off the item stack at the exact sizes the scans report.
func (c *buildCtx) parallelPartition(a *arena, items []item, split sah.Split, parent vecmath.AABB) (left, right []item, lb, rb vecmath.AABB) {
	lb, rb = parent.Split(split.Axis, split.Pos)
	n := len(items)
	workers := c.cfg.Workers

	a.flags = ensureLen(a.flags, n)
	a.cntL = ensureLen(a.cntL, n)
	a.cntR = ensureLen(a.cntR, n)
	// narrowed caches the child bounds computed during classification so the
	// scatter pass does not redo the (potentially expensive) clipping.
	a.narrowed = ensureLen(a.narrowed, n)
	flags, cntL, cntR, boxes := a.flags, a.cntL, a.cntR, a.narrowed

	cc := c.canceler()
	parallel.ForCancel(cc, n, workers, func(loIdx, hiIdx int) {
		for i := loIdx; i < hiIdx; i++ {
			it := items[i]
			lo := it.bounds.Min.Axis(split.Axis)
			hi := it.bounds.Max.Axis(split.Axis)
			goesLeft := lo < split.Pos || (lo == hi && lo == split.Pos)
			goesRight := hi > split.Pos
			flags[i] = 0
			cntL[i], cntR[i] = 0, 0
			if goesLeft {
				if b, ok := c.childBounds(it, lb); ok {
					flags[i] |= sideLeft
					cntL[i] = 1
					boxes[i].l = b
				}
			}
			if goesRight {
				if b, ok := c.childBounds(it, rb); ok {
					flags[i] |= sideRight
					cntR[i] = 1
					boxes[i].r = b
				}
			}
		}
	})

	// The cancel flag is monotonic, so a clean check here proves every
	// classification chunk ran: the counts below are trustworthy. Skipped
	// chunks would leave garbage in cntL/cntR (ensureLen does not zero), and
	// scanning garbage could demand absurd allocations — hence the bail
	// before each consumer.
	if cc.Canceled() {
		return nil, nil, lb, rb
	}
	nl := parallel.ExclusiveScanCancel(cc, cntL, cntL, workers)
	nr := parallel.ExclusiveScanCancel(cc, cntR, cntR, workers)
	if cc.Canceled() {
		return nil, nil, lb, rb
	}
	left = a.allocItems(nl)
	right = a.allocItems(nr)

	parallel.ForCancel(cc, n, workers, func(loIdx, hiIdx int) {
		for i := loIdx; i < hiIdx; i++ {
			if flags[i]&sideLeft != 0 {
				left[cntL[i]] = item{items[i].tri, boxes[i].l}
			}
			if flags[i]&sideRight != 0 {
				right[cntR[i]] = item{items[i].tri, boxes[i].r}
			}
		}
	})
	return left, right, lb, rb
}
