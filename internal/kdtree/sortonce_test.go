package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"kdtune/internal/sah"
	"kdtune/internal/vecmath"
)

func TestSortOnceValidates(t *testing.T) {
	r := rand.New(rand.NewSource(110))
	tris := randomTriangles(r, 3000, 10, 0.2)
	tree := Build(tris, testConfig(AlgoSortOnce))
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Stats().Algorithm.String() != "sort-once" {
		t.Fatalf("name: %v", tree.Stats().Algorithm)
	}
}

func TestSortOnceTraversalMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	tris := randomTriangles(r, 800, 10, 0.25)
	tree := Build(tris, testConfig(AlgoSortOnce))
	for i := 0; i < 400; i++ {
		o := vecmath.V(r.Float64()*20-5, r.Float64()*20-5, -4)
		ray := vecmath.NewRay(o, vecmath.V(r.NormFloat64()*0.3, r.NormFloat64()*0.3, 1))
		want, wantHit := bruteForceClosest(tris, ray, 1e-9, math.Inf(1))
		got, gotHit := tree.Intersect(ray, 1e-9, math.Inf(1))
		if wantHit != gotHit || (wantHit && math.Abs(got.T-want.T) > 1e-9*(1+want.T)) {
			t.Fatalf("sort-once mismatch on ray %d", i)
		}
	}
}

func TestSortOnceMatchesPerNodeSweepTree(t *testing.T) {
	// Same cost model, same candidate planes: the sort-once engine must
	// choose splits of identical quality to the per-node-sort engine. Tree
	// shapes can differ on cost ties, so compare SAH cost, not topology.
	r := rand.New(rand.NewSource(112))
	tris := randomTriangles(r, 2000, 10, 0.2)
	p := sah.DefaultParams()
	a := Build(tris, testConfig(AlgoNodeLevel)).SAHCost(p)
	b := Build(tris, testConfig(AlgoSortOnce)).SAHCost(p)
	if math.Abs(a-b) > 0.05*a {
		t.Fatalf("sort-once tree cost %v deviates from per-node-sort cost %v", b, a)
	}
}

func TestSortOnceParallelDeterministicQuality(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	tris := randomTriangles(r, 2000, 10, 0.2)
	p := sah.DefaultParams()
	var costs []float64
	for _, workers := range []int{1, 4, 16} {
		cfg := testConfig(AlgoSortOnce)
		cfg.Workers = workers
		costs = append(costs, Build(tris, cfg).SAHCost(p))
	}
	if costs[0] != costs[1] || costs[1] != costs[2] {
		t.Fatalf("tree quality varies with worker count: %v", costs)
	}
}

func TestSortOnceWithClipping(t *testing.T) {
	r := rand.New(rand.NewSource(114))
	tris := randomTriangles(r, 500, 10, 1.2) // big straddling triangles
	cfg := testConfig(AlgoSortOnce)
	cfg.UseClipping = true
	tree := Build(tris, cfg)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		o := vecmath.V(r.Float64()*24-7, r.Float64()*24-7, -6)
		ray := vecmath.NewRay(o, vecmath.V(r.NormFloat64()*0.1, r.NormFloat64()*0.1, 1))
		want, wantHit := bruteForceClosest(tris, ray, 1e-9, math.Inf(1))
		got, gotHit := tree.Intersect(ray, 1e-9, math.Inf(1))
		if wantHit != gotHit || (wantHit && math.Abs(got.T-want.T) > 1e-9*(1+want.T)) {
			t.Fatalf("clipped sort-once mismatch on ray %d", i)
		}
	}
}

func TestSortOnceEdgeCases(t *testing.T) {
	// Empty, single triangle, coplanar grid.
	if tree := Build(nil, testConfig(AlgoSortOnce)); tree == nil {
		t.Fatal("nil tree")
	}
	one := []vecmath.Triangle{vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0))}
	tree := Build(one, testConfig(AlgoSortOnce))
	if _, ok := tree.Intersect(vecmath.NewRay(vecmath.V(0.2, 0.2, -1), vecmath.V(0, 0, 1)), 0, 10); !ok {
		t.Fatal("single-triangle hit missed")
	}
	var grid []vecmath.Triangle
	for i := 0; i < 8; i++ {
		x := float64(i)
		grid = append(grid, vecmath.Tri(vecmath.V(x, 0, 0), vecmath.V(x+1, 0, 0), vecmath.V(x, 1, 0)))
	}
	tree = Build(grid, testConfig(AlgoSortOnce))
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}
