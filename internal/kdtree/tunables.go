package kdtree

import "kdtune/internal/autotune"

// RegisterBuildTunables registers the build-side concurrency tunables with
// the registry, giving them their canonical names, ranges and scale hints in
// one place. The targets are plain ints the caller threads into
// Config.Bins/ScatterGrain/BinGrain/SplitBias per build; the registry makes
// them searchable alongside the paper's CI/CB/S/R cost-model parameters.
//
// These are exactly the parameters the seed froze as constants: hand-derived
// chunk grains and bin counts are hardware guesses, and the thesis of the
// paper (and of Karcher & Guckes for this parameter class) is that such
// guesses must be searched online. All three grains/bias are
// scheduling-only — any fixed vector yields a bitwise-identical tree for
// every worker count; Bins changes the split candidates and therefore the
// tree, which is fine because a comparison always pins the full vector.
func RegisterBuildTunables(reg *autotune.Registry, bins, scatterGrain, binGrain, splitBias *int) error {
	for _, tn := range []autotune.Tunable{
		{Name: "B", Target: bins, Min: 8, Max: 128, Scale: autotune.ScalePow2,
			Desc: "SAH bins per axis in the binned split search"},
		{Name: "G", Target: scatterGrain, Min: 256, Max: 65536, Scale: autotune.ScalePow2,
			Desc: "min (triangle,node) pairs per classify/scatter chunk (in-place builder)"},
		{Name: "GB", Target: binGrain, Min: 512, Max: 32768, Scale: autotune.ScalePow2,
			Desc: "min primitives per chunk of the parallel binned split search"},
		{Name: "SB", Target: splitBias, Min: 0, Max: 3, Step: 1, Scale: autotune.ScaleLinear,
			Desc: "worker-budget bias toward within-node parallelism (each +1 halves the across-nodes width)"},
	} {
		if err := reg.Register(tn); err != nil {
			return err
		}
	}
	return nil
}
