package kdtree

import (
	"sync"

	"kdtune/internal/vecmath"
)

// buildNodeLevel implements the node-level parallel algorithm of §IV-A: the
// Wald–Havran recursion, with the two child subtrees of an inner node
// handed to the task pool ("OpenMP tasks for every recursive call") while
// the recursion is shallower than the spawn budget derived from S.
func (c *buildCtx) buildNodeLevel() *buildNode {
	items, bounds := c.rootItems()
	if len(items) == 0 {
		return nil
	}
	return c.recurseNodeLevel(items, bounds, 0)
}

func (c *buildCtx) recurseNodeLevel(items []item, bounds vecmath.AABB, depth int) *buildNode {
	split, ok := c.decideSplitSweep(items, bounds, depth)
	if !ok {
		return c.makeLeaf(items, bounds, depth)
	}
	left, right, lb, rb := c.partition(items, split, bounds)

	// Guard against degenerate splits that make no progress (all primitives
	// duplicated into both children with no empty-space gain): they would
	// recurse forever below the SAH's radar.
	if len(left) == len(items) && len(right) == len(items) {
		return c.makeLeaf(items, bounds, depth)
	}

	c.counters.noteInner()
	n := &buildNode{bounds: bounds, axis: split.Axis, pos: split.Pos}

	if depth < c.spawnCap {
		var wg sync.WaitGroup
		wg.Add(2)
		c.pool.Spawn(func() {
			defer wg.Done()
			n.left = c.recurseNodeLevel(left, lb, depth+1)
		})
		c.pool.Spawn(func() {
			defer wg.Done()
			n.right = c.recurseNodeLevel(right, rb, depth+1)
		})
		wg.Wait()
	} else {
		n.left = c.recurseNodeLevel(left, lb, depth+1)
		n.right = c.recurseNodeLevel(right, rb, depth+1)
	}
	return n
}
