package kdtree

import (
	"sync"

	"kdtune/internal/vecmath"
)

// buildNodeLevel implements the node-level parallel algorithm of §IV-A: the
// Wald–Havran recursion, with the two child subtrees of an inner node
// handed to the task pool ("OpenMP tasks for every recursive call") while
// the recursion is shallower than the spawn budget derived from S.
func (c *buildCtx) buildNodeLevel() vecmath.AABB {
	a := &c.b.main
	items, bounds := c.rootItems(a)
	if len(items) == 0 {
		return vecmath.AABB{}
	}
	c.recurseNodeLevel(a, items, bounds, 0)
	return bounds
}

// recurseNodeLevel emits the subtree over items into a, in depth-first
// pre-order (self, left subtree, right subtree) so the left child is always
// self+1. When children are built by spawned tasks they emit into private
// arenas that are grafted back in the same order, preserving both the
// layout and bitwise determinism across worker counts.
func (c *buildCtx) recurseNodeLevel(a *arena, items []item, bounds vecmath.AABB, depth int) {
	if c.checkAbort(depth) {
		return
	}
	split, ok := c.decideSplitSweep(a, items, bounds, depth)
	if !ok {
		c.makeLeaf(a, items, depth)
		return
	}
	mark := a.markItems()
	lb, rb := bounds.Split(split.Axis, split.Pos)
	left, right := c.partitionItems(a, items, split.Axis, split.Pos, lb, rb)

	// Guard against degenerate splits that make no progress (all primitives
	// duplicated into both children with no empty-space gain): they would
	// recurse forever below the SAH's radar.
	if len(left) == len(items) && len(right) == len(items) {
		a.releaseItems(mark)
		c.makeLeaf(a, items, depth)
		return
	}

	c.counters.noteInner()
	self := a.emitInner(split.Axis, split.Pos)

	if depth < c.spawnCap {
		la, ra := c.b.getArena(), c.b.getArena()
		var wg sync.WaitGroup
		wg.Add(2)
		//kdlint:nocancel subtree task polls the build Canceler via checkAbort at every node
		c.pool.Spawn(func() {
			defer wg.Done()
			c.recurseNodeLevel(la, left, lb, depth+1)
		})
		//kdlint:nocancel subtree task polls the build Canceler via checkAbort at every node
		c.pool.Spawn(func() {
			defer wg.Done()
			c.recurseNodeLevel(ra, right, rb, depth+1)
		})
		wg.Wait()
		a.graft(la)
		a.patchRight(self, a.graft(ra))
		c.b.putArena(la)
		c.b.putArena(ra)
	} else {
		c.recurseNodeLevel(a, left, lb, depth+1)
		a.patchRight(self, int32(len(a.nodes)))
		c.recurseNodeLevel(a, right, rb, depth+1)
	}
	a.releaseItems(mark)
}
