package kdtree

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"kdtune/internal/vecmath"
)

// node is one entry of the flattened tree arena, packed into 16 bytes so an
// inner node shares a cache line with its left child (which is, by the
// adjacency invariant below, always the next entry):
//
//	pos   — split position (inner nodes; zero otherwise)
//	word1 — bits 0..1: nodeKind, bits 2..3: split axis,
//	        bits 4..31: leaf triangle count
//	word0 — inner: right-child index; leaf: start into Tree.leafTris;
//	        deferred: index into Tree.deferred
//
// The left child of an inner node is implicit: it is the node's own index
// plus one. Every producer of []node (builders, arena grafting, the
// serialization reader) maintains this pre-order adjacency.
type node struct {
	pos   float64
	word0 uint32
	word1 uint32
}

// Compile-time pin of the acceptance criterion: the constant underflows (and
// the build fails) if node ever grows past 16 bytes.
const _ = uint(16 - unsafe.Sizeof(node{}))

// maxLeafCount is the largest leaf triangle count representable in the 28
// count bits of word1. No realistic build approaches it (leaves hold tens of
// primitives); it exists to turn silent truncation into a panic.
const maxLeafCount = 1<<28 - 1

func (n node) kind() nodeKind     { return nodeKind(n.word1 & 3) }
func (n node) axis() vecmath.Axis { return vecmath.Axis((n.word1 >> 2) & 3) }
func (n node) right() int32       { return int32(n.word0) }
func (n node) triStart() int32    { return int32(n.word0) }
func (n node) triCount() int32    { return int32(n.word1 >> 4) }
func (n node) deferredIdx() int32 { return int32(n.word0) }

func innerNode(axis vecmath.Axis, pos float64) node {
	return node{pos: pos, word1: uint32(kindInner) | uint32(axis)<<2}
}

func leafNode(triStart, triCount int32) node {
	if triCount > maxLeafCount {
		panic("kdtree: leaf triangle count overflows node layout")
	}
	return node{word0: uint32(triStart), word1: uint32(kindLeaf) | uint32(triCount)<<4}
}

func deferredRef(slot int32) node {
	return node{word0: uint32(slot), word1: uint32(kindDeferred)}
}

// defRec is the build-time record of one suspended lazy subtree: its cell
// plus a range of defTris. It is converted into the mutex-bearing
// deferredNode only when the finished Tree is assembled.
type defRec struct {
	bounds       vecmath.AABB
	start, count int32
}

// arena is one task's private chunk of the final tree plus all the scratch
// the recursion over that chunk needs. Builders emit nodes, leaf triangle
// references and deferred records directly into it — there is no
// intermediate pointer tree — and parallel subtree tasks each get their own
// arena, concatenated back into the parent with graft. All storage is
// retained across builds (reset only truncates), which is what makes a
// reused Builder allocation-free in the steady state.
type arena struct {
	// Output storage (becomes, or is grafted into, the Tree).
	nodes    []node
	leafTris []int32
	defs     []defRec
	defTris  []int32

	// Stack allocators for data that must survive into child recursion:
	// per-node item lists and (sort-once) per-node event lists. Windows are
	// carved with allocItems/allocEvents and unwound with mark/release in
	// strict LIFO order. Growing the backing array strands the old one, but
	// outstanding windows keep it alive and the stack resumes on the new
	// array, so held slices stay valid.
	items  []item
	events []soEvent

	// Per-node scratch that dies before the recursion descends; plain
	// resize-and-reuse, no stack discipline needed.
	boxes    []vecmath.AABB // decideSplitSweep: bounds column for the sweep
	cls      []uint8        // sort-once: per-slot plane classification
	slotL    []int32        // sort-once: old slot -> left-child slot
	slotR    []int32        // sort-once: old slot -> right-child slot
	evNewL   []soEvent      // sort-once: regenerated straddler events, left
	evNewR   []soEvent      // sort-once: regenerated straddler events, right
	flags    []sideFlag     // nested: classification flags
	cntL     []int          // nested: left write offsets (prefix-scanned)
	cntR     []int          // nested: right write offsets
	narrowed []nbox         // nested: narrowed child boxes from classification

	// live, when non-nil, accumulates the bytes held by the item and event
	// stacks so a guarded build can enforce Guard.MaxArenaBytes. The stacks
	// are where duplication blowup (the CB term) lands; the per-node scratch
	// and node output are bounded by them and deliberately not counted. Only
	// wired up when a memory ceiling is armed, so the default build path
	// pays one nil check per stack operation.
	live *atomic.Int64
}

// Byte sizes of the stack-allocated element types for live accounting.
const (
	itemBytes  = int64(unsafe.Sizeof(item{}))
	eventBytes = int64(unsafe.Sizeof(soEvent{}))
)

// nbox caches the narrowed left/right bounds computed during the nested
// builder's classification pass.
type nbox struct{ l, r vecmath.AABB }

// reset truncates all storage, keeping capacity for the next build.
func (a *arena) reset() {
	a.nodes = a.nodes[:0]
	a.leafTris = a.leafTris[:0]
	a.defs = a.defs[:0]
	a.defTris = a.defTris[:0]
	a.items = a.items[:0]
	a.events = a.events[:0]
}

func (a *arena) markItems() int { return len(a.items) }

func (a *arena) releaseItems(m int) {
	if a.live != nil {
		a.live.Add(-int64(len(a.items)-m) * itemBytes)
	}
	a.items = a.items[:m]
}

// allocItems carves a full-length window of n items off the stack. The
// window is capacity-clamped so appends past n cannot silently bleed into a
// sibling's window.
func (a *arena) allocItems(n int) []item {
	if a.live != nil {
		a.live.Add(int64(n) * itemBytes)
	}
	m := len(a.items)
	if m+n > cap(a.items) {
		grown := make([]item, m, growCap(m+n))
		copy(grown, a.items)
		a.items = grown
	}
	a.items = a.items[:m+n]
	return a.items[m : m+n : m+n]
}

func (a *arena) markEvents() int { return len(a.events) }

func (a *arena) releaseEvents(m int) {
	if a.live != nil {
		a.live.Add(-int64(len(a.events)-m) * eventBytes)
	}
	a.events = a.events[:m]
}

func (a *arena) allocEvents(n int) []soEvent {
	if a.live != nil {
		a.live.Add(int64(n) * eventBytes)
	}
	m := len(a.events)
	if m+n > cap(a.events) {
		grown := make([]soEvent, m, growCap(m+n))
		copy(grown, a.events)
		a.events = grown
	}
	a.events = a.events[:m+n]
	return a.events[m : m+n : m+n]
}

// growCap picks the new backing capacity for a stack allocator: at least
// need, at least double the demand to amortise regrowth.
func growCap(need int) int {
	c := 2 * need
	if c < 64 {
		c = 64
	}
	return c
}

// ensureLen returns s resized to length n, reallocating only when capacity
// is short. Contents are unspecified; callers overwrite every element.
func ensureLen[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n, growCap(n))
	}
	return s[:n]
}

// emitInner appends an inner node with its right child still unset and
// returns its index for patchRight.
func (a *arena) emitInner(axis vecmath.Axis, pos float64) int32 {
	idx := int32(len(a.nodes))
	a.nodes = append(a.nodes, innerNode(axis, pos))
	return idx
}

// patchRight records the right-child index of an inner node once the left
// subtree has been emitted (the left child needs no patching: adjacency).
func (a *arena) patchRight(self, right int32) {
	a.nodes[self].word0 = uint32(right)
}

// emitLeaf appends the items' triangle indices to leafTris and the leaf node
// referencing them.
func (a *arena) emitLeaf(items []item) {
	start := int32(len(a.leafTris))
	for _, it := range items {
		a.leafTris = append(a.leafTris, it.tri)
	}
	a.nodes = append(a.nodes, leafNode(start, int32(len(items))))
}

// emitDeferred appends a suspended-subtree record and the node referencing
// it (lazy builder).
func (a *arena) emitDeferred(items []item, bounds vecmath.AABB) {
	start := int32(len(a.defTris))
	for _, it := range items {
		a.defTris = append(a.defTris, it.tri)
	}
	a.defs = append(a.defs, defRec{bounds: bounds, start: start, count: int32(len(items))})
	a.nodes = append(a.nodes, deferredRef(int32(len(a.defs)-1)))
}

// graft appends sub's finished output onto a, offsetting every index so the
// concatenated storage is self-consistent, and returns the index at which
// sub's root landed. Left-child adjacency survives because graft preserves
// relative node order and shifts all indices uniformly.
func (a *arena) graft(sub *arena) int32 {
	nodeOff := uint32(len(a.nodes))
	leafOff := uint32(len(a.leafTris))
	defOff := uint32(len(a.defs))
	defTriOff := int32(len(a.defTris))
	for _, n := range sub.nodes {
		switch n.kind() {
		case kindInner:
			n.word0 += nodeOff
		case kindLeaf:
			n.word0 += leafOff
		case kindDeferred:
			n.word0 += defOff
		}
		a.nodes = append(a.nodes, n)
	}
	a.leafTris = append(a.leafTris, sub.leafTris...)
	for _, d := range sub.defs {
		d.start += defTriOff
		a.defs = append(a.defs, d)
	}
	a.defTris = append(a.defTris, sub.defTris...)
	return int32(nodeOff)
}

// expandOnce is a resettable sync.Once: lazy deferred nodes live in a pooled
// value slice that the Builder reuses across builds, and sync.Once can
// neither be reset nor be copied under vet's copylocks rules. done is read
// lock-free on the fast path exactly like sync.Once's own implementation.
type expandOnce struct {
	mu   sync.Mutex
	done atomic.Bool
}

func (o *expandOnce) Do(f func()) {
	if o.done.Load() {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.done.Load() {
		defer o.done.Store(true)
		f()
	}
}
