package bvh

import (
	"math"
	"sort"

	"kdtune/internal/vecmath"
)

// RangeQuery returns the indices of all triangles whose bounds overlap the
// query box, in ascending order. Unlike the kD-tree, a BVH references every
// primitive exactly once, so no dedup is needed — which is exactly why this
// is a useful cross-check structure for the kD-tree's duplicate-aware range
// query (internal/oracle compares the two against a linear scan).
func (t *Tree) RangeQuery(box vecmath.AABB) []int {
	if len(t.nodes) == 0 {
		return nil
	}
	var out []int
	var stackArr [64]int32
	stack := append(stackArr[:0], 0)
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[idx]
		if !n.bounds.Overlaps(box) {
			continue
		}
		if n.right < 0 && n.count > 0 {
			for i := n.start; i < n.start+n.count; i++ {
				ti := t.prims[i]
				if t.tris[ti].Bounds().Overlaps(box) {
					out = append(out, int(ti))
				}
			}
			continue
		}
		if n.right >= 0 {
			stack = append(stack, idx+1, n.right)
		}
	}
	sort.Ints(out)
	return out
}

// NearestNeighbor returns the non-degenerate triangle closest to p (by
// Euclidean distance to the triangle surface) and that distance; ok is
// false when the tree holds no such triangle. Branch-and-bound: subtrees
// whose boxes are farther than the incumbent are pruned, nearer child
// first.
func (t *Tree) NearestNeighbor(p vecmath.Vec3) (tri int, dist float64, ok bool) {
	best := math.Inf(1)
	bestTri := -1
	if len(t.nodes) > 0 {
		t.nnNode(0, p, &bestTri, &best)
	}
	if bestTri < 0 {
		return 0, 0, false
	}
	return bestTri, best, true
}

func (t *Tree) nnNode(idx int32, p vecmath.Vec3, bestTri *int, best *float64) {
	n := &t.nodes[idx]
	if vecmath.DistToBox(p, n.bounds) >= *best {
		return
	}
	if n.right < 0 && n.count > 0 {
		for i := n.start; i < n.start+n.count; i++ {
			ti := t.prims[i]
			tr := t.tris[ti]
			if tr.IsDegenerate() {
				continue
			}
			if d := vecmath.DistToTriangle(p, tr); d < *best {
				*best = d
				*bestTri = int(ti)
			}
		}
		return
	}
	if n.right < 0 {
		return
	}
	left, right := idx+1, n.right
	dl := vecmath.DistToBox(p, t.nodes[left].bounds)
	dr := vecmath.DistToBox(p, t.nodes[right].bounds)
	if dr < dl {
		left, right = right, left
	}
	t.nnNode(left, p, bestTri, best)
	t.nnNode(right, p, bestTri, best)
}
