package bvh

import (
	"math"
	"math/rand"
	"testing"

	"kdtune/internal/vecmath"
)

func randomTriangles(r *rand.Rand, n int, extent, size float64) []vecmath.Triangle {
	tris := make([]vecmath.Triangle, n)
	for i := range tris {
		c := vecmath.V(r.Float64()*extent, r.Float64()*extent, r.Float64()*extent)
		tris[i] = vecmath.Tri(
			c.Add(vecmath.V(r.NormFloat64()*size, r.NormFloat64()*size, r.NormFloat64()*size)),
			c.Add(vecmath.V(r.NormFloat64()*size, r.NormFloat64()*size, r.NormFloat64()*size)),
			c.Add(vecmath.V(r.NormFloat64()*size, r.NormFloat64()*size, r.NormFloat64()*size)),
		)
	}
	return tris
}

func bruteClosest(tris []vecmath.Triangle, r vecmath.Ray, tMin, tMax float64) (Hit, bool) {
	best := Hit{T: math.Inf(1)}
	found := false
	for i, tr := range tris {
		if th, u, v, hit := tr.IntersectRay(r, tMin, tMax); hit && th < best.T {
			best = Hit{T: th, Tri: i, U: u, V: v}
			found = true
		}
	}
	return best, found
}

func TestBVHMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(140))
	tris := randomTriangles(r, 800, 10, 0.25)
	tree := Build(tris, Config{Workers: 4})
	for i := 0; i < 400; i++ {
		o := vecmath.V(r.Float64()*20-5, r.Float64()*20-5, -4)
		ray := vecmath.NewRay(o, vecmath.V(r.NormFloat64()*0.3, r.NormFloat64()*0.3, 1))
		want, wantHit := bruteClosest(tris, ray, 1e-9, math.Inf(1))
		got, gotHit := tree.Intersect(ray, 1e-9, math.Inf(1))
		if wantHit != gotHit {
			t.Fatalf("ray %d: hit mismatch", i)
		}
		if wantHit && math.Abs(got.T-want.T) > 1e-9*(1+want.T) {
			t.Fatalf("ray %d: %v vs %v", i, got.T, want.T)
		}
	}
}

func TestBVHOccluded(t *testing.T) {
	r := rand.New(rand.NewSource(141))
	tris := randomTriangles(r, 400, 8, 0.3)
	tree := Build(tris, Config{Workers: 2})
	for i := 0; i < 300; i++ {
		o := vecmath.V(r.Float64()*16-4, r.Float64()*16-4, r.Float64()*16-4)
		p := vecmath.V(r.Float64()*8, r.Float64()*8, r.Float64()*8)
		ray := vecmath.Towards(o, p)
		_, want := bruteClosest(tris, ray, 1e-9, 1)
		if got := tree.Occluded(ray, 1e-9, 1); got != want {
			t.Fatalf("ray %d: occlusion %v want %v", i, got, want)
		}
	}
}

func TestBVHEdgeCases(t *testing.T) {
	if tree := Build(nil, Config{}); tree.NumNodes() != 0 {
		t.Fatal("empty scene should have no nodes")
	}
	empty := Build(nil, Config{})
	if _, ok := empty.Intersect(vecmath.NewRay(vecmath.V(0, 0, -1), vecmath.V(0, 0, 1)), 0, 10); ok {
		t.Fatal("hit in empty BVH")
	}
	if empty.Occluded(vecmath.NewRay(vecmath.V(0, 0, -1), vecmath.V(0, 0, 1)), 0, 10) {
		t.Fatal("occlusion in empty BVH")
	}
	one := []vecmath.Triangle{vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0))}
	tree := Build(one, Config{})
	h, ok := tree.Intersect(vecmath.NewRay(vecmath.V(0.2, 0.2, -1), vecmath.V(0, 0, 1)), 0, 10)
	if !ok || h.Tri != 0 || math.Abs(h.T-1) > 1e-12 {
		t.Fatalf("single triangle: %+v %v", h, ok)
	}
	// Identical centroids (stacked coincident triangles) must terminate.
	var stacked []vecmath.Triangle
	for i := 0; i < 100; i++ {
		stacked = append(stacked, one[0])
	}
	if Build(stacked, Config{}) == nil {
		t.Fatal("stacked build failed")
	}
}

func TestBVHNoDuplication(t *testing.T) {
	// A BVH references each primitive exactly once.
	r := rand.New(rand.NewSource(142))
	tris := randomTriangles(r, 1000, 10, 0.3)
	tree := Build(tris, Config{Workers: 4})
	seen := map[int32]int{}
	for _, p := range tree.prims {
		seen[p]++
	}
	if len(seen) != len(tris) {
		t.Fatalf("BVH references %d distinct triangles, want %d", len(seen), len(tris))
	}
	for ti, c := range seen {
		if c != 1 {
			t.Fatalf("triangle %d referenced %d times", ti, c)
		}
	}
}
