// Package bvh implements a binned-SAH Bounding Volume Hierarchy over
// triangle soups. The paper's related work contrasts kD-tree tuning with
// BVH-based approaches (Ganestam & Doggett tune a BVH ray tracer towards a
// performance target, §II); this package provides that comparison structure
// so the benchmark suite can put the tuned kD-trees next to the other
// standard acceleration structure.
//
// Unlike kD-trees, a BVH partitions primitives (each referenced exactly
// once, no duplication) while letting sibling boxes overlap; builds are
// cheaper and memory is predictable, traversal typically touches more
// nodes. BenchmarkKDTreeVsBVH measures exactly that trade-off.
package bvh

import (
	"math"

	"kdtune/internal/parallel"
	"kdtune/internal/vecmath"
)

// node is one flattened BVH node. Leaves store a primitive range into
// Tree.prims; inner nodes store the index of their right child (the left
// child is the next node in the array: DFS layout).
type node struct {
	bounds vecmath.AABB
	right  int32 // inner: index of right child; leaf: -1
	start  int32 // leaf: first primitive
	count  int32 // leaf: primitive count
}

// Tree is an immutable BVH over a triangle slice.
type Tree struct {
	tris  []vecmath.Triangle
	prims []int32 // triangle indices, permuted so leaves are contiguous
	nodes []node
}

// Config controls construction.
type Config struct {
	// MaxLeaf is the leaf-size cutoff (default 4).
	MaxLeaf int
	// Bins is the per-axis bin count for the SAH split search (default 16).
	Bins int
	// Workers is the parallelism budget for subtree tasks; <=0 = all.
	Workers int
}

func (c Config) normalized() Config {
	if c.MaxLeaf < 1 {
		c.MaxLeaf = 4
	}
	if c.Bins < 2 {
		c.Bins = 16
	}
	return c
}

// buildRef is a primitive reference with cached bounds and centroid.
type buildRef struct {
	tri      int32
	bounds   vecmath.AABB
	centroid vecmath.Vec3
}

// Build constructs a binned-SAH BVH.
func Build(tris []vecmath.Triangle, cfg Config) *Tree {
	cfg = cfg.normalized()
	refs := make([]buildRef, 0, len(tris))
	for i, tr := range tris {
		b := tr.Bounds()
		if !b.Min.IsFinite() || !b.Max.IsFinite() {
			continue
		}
		refs = append(refs, buildRef{tri: int32(i), bounds: b, centroid: b.Center()})
	}
	t := &Tree{tris: tris}
	if len(refs) == 0 {
		return t
	}
	b := &builder{tree: t, cfg: cfg, pool: parallel.NewPool(cfg.Workers)}
	root := b.recurse(refs)
	b.flatten(root)
	return t
}

// buildNode is the pointer-shaped node used during (parallel) construction.
type buildNode struct {
	bounds      vecmath.AABB
	left, right *buildNode
	refs        []buildRef // leaf only
}

type builder struct {
	tree *Tree
	cfg  Config
	pool *parallel.Pool
}

func (b *builder) recurse(refs []buildRef) *buildNode {
	bounds := vecmath.EmptyAABB()
	cb := vecmath.EmptyAABB() // centroid bounds drive the split search
	for _, r := range refs {
		bounds = bounds.Union(r.bounds)
		cb = cb.Extend(r.centroid)
	}
	n := &buildNode{bounds: bounds}
	if len(refs) <= b.cfg.MaxLeaf {
		n.refs = refs
		return n
	}

	axis := cb.LongestAxis()
	lo, hi := cb.Min.Axis(axis), cb.Max.Axis(axis)
	if hi <= lo {
		n.refs = refs
		return n
	}

	// Binned SAH over centroid positions.
	bins := b.cfg.Bins
	type bin struct {
		count  int
		bounds vecmath.AABB
	}
	bs := make([]bin, bins)
	for i := range bs {
		bs[i].bounds = vecmath.EmptyAABB()
	}
	binOf := func(r buildRef) int {
		i := int(float64(bins) * (r.centroid.Axis(axis) - lo) / (hi - lo))
		if i < 0 {
			return 0
		}
		if i >= bins {
			return bins - 1
		}
		return i
	}
	for _, r := range refs {
		i := binOf(r)
		bs[i].count++
		bs[i].bounds = bs[i].bounds.Union(r.bounds)
	}

	// Sweep bin boundaries for the cheapest SAH partition.
	bestCost := math.Inf(1)
	bestSplit := -1
	leftAcc := make([]bin, bins)
	acc := bin{bounds: vecmath.EmptyAABB()}
	for i := 0; i < bins; i++ {
		acc.count += bs[i].count
		acc.bounds = acc.bounds.Union(bs[i].bounds)
		leftAcc[i] = acc
	}
	racc := bin{bounds: vecmath.EmptyAABB()}
	for i := bins - 1; i > 0; i-- {
		racc.count += bs[i].count
		racc.bounds = racc.bounds.Union(bs[i].bounds)
		l := leftAcc[i-1]
		if l.count == 0 || racc.count == 0 {
			continue
		}
		cost := l.bounds.SurfaceArea()*float64(l.count) + racc.bounds.SurfaceArea()*float64(racc.count)
		if cost < bestCost {
			bestCost = cost
			bestSplit = i
		}
	}
	// Compare against leaving a leaf (SAH with unit costs). Oversized
	// nodes are always split so construction keeps making progress.
	leafCost := bounds.SurfaceArea() * float64(len(refs))
	if bestSplit < 0 || (bestCost >= leafCost && len(refs) <= 4*b.cfg.MaxLeaf) {
		n.refs = refs
		return n
	}

	left := make([]buildRef, 0, len(refs)/2)
	right := make([]buildRef, 0, len(refs)/2)
	for _, r := range refs {
		if binOf(r) < bestSplit {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		// Degenerate (identical centroids): split by median index.
		mid := len(refs) / 2
		left, right = refs[:mid], refs[mid:]
	}

	done := make(chan struct{})
	//kdlint:nocancel BVH is the uninstrumented comparison structure; its builds are short and never run under a guard
	b.pool.Spawn(func() {
		defer close(done)
		n.left = b.recurse(left)
	})
	n.right = b.recurse(right)
	<-done
	return n
}

// flatten lays the pointer tree into the arrays (left child immediately
// follows its parent).
func (b *builder) flatten(root *buildNode) {
	t := b.tree
	var walk func(bn *buildNode) int32
	walk = func(bn *buildNode) int32 {
		idx := int32(len(t.nodes))
		t.nodes = append(t.nodes, node{bounds: bn.bounds, right: -1})
		if bn.refs != nil {
			start := int32(len(t.prims))
			for _, r := range bn.refs {
				t.prims = append(t.prims, r.tri)
			}
			t.nodes[idx].start = start
			t.nodes[idx].count = int32(len(bn.refs))
			return idx
		}
		walk(bn.left)
		t.nodes[idx].right = walk(bn.right)
		return idx
	}
	walk(root)
}

// Hit mirrors the kD-tree hit record.
type Hit struct {
	T    float64
	Tri  int
	U, V float64
}

// Intersect returns the closest intersection in (tMin, tMax).
func (t *Tree) Intersect(r vecmath.Ray, tMin, tMax float64) (Hit, bool) {
	best := Hit{T: math.Inf(1)}
	found := false
	if len(t.nodes) == 0 {
		return best, false
	}
	var stackArr [64]int32
	stack := append(stackArr[:0], 0)
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[idx]
		limit := tMax
		if found && best.T < limit {
			limit = best.T
		}
		if _, _, ok := n.bounds.IntersectRay(r, tMin, limit); !ok {
			continue
		}
		if n.right < 0 && n.count > 0 {
			for i := n.start; i < n.start+n.count; i++ {
				ti := t.prims[i]
				if th, u, v, hit := t.tris[ti].IntersectRay(r, tMin, tMax); hit && th < best.T {
					best = Hit{T: th, Tri: int(ti), U: u, V: v}
					found = true
				}
			}
			continue
		}
		if n.right >= 0 {
			stack = append(stack, idx+1, n.right)
		}
	}
	if !found {
		return Hit{}, false
	}
	return best, true
}

// Occluded reports whether anything blocks r in (tMin, tMax).
func (t *Tree) Occluded(r vecmath.Ray, tMin, tMax float64) bool {
	if len(t.nodes) == 0 {
		return false
	}
	var stackArr [64]int32
	stack := append(stackArr[:0], 0)
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[idx]
		if _, _, ok := n.bounds.IntersectRay(r, tMin, tMax); !ok {
			continue
		}
		if n.right < 0 && n.count > 0 {
			for i := n.start; i < n.start+n.count; i++ {
				if _, _, _, hit := t.tris[t.prims[i]].IntersectRay(r, tMin, tMax); hit {
					return true
				}
			}
			continue
		}
		if n.right >= 0 {
			stack = append(stack, idx+1, n.right)
		}
	}
	return false
}

// NumNodes returns the flattened node count.
func (t *Tree) NumNodes() int { return len(t.nodes) }
