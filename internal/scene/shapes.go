package scene

import (
	"math"

	"kdtune/internal/vecmath"
)

// This file is the low-level mesh toolkit the scene generators are built
// from: parametric surfaces, boxes, cylinders, cones, and the exact-count
// padding that lets every generator hit the paper's triangle counts
// precisely.

// v is a local shorthand.
func v(x, y, z float64) vecmath.Vec3 { return vecmath.V(x, y, z) }

// quad appends the two triangles of the quadrilateral a-b-c-d (in winding
// order) to dst.
func quad(dst []vecmath.Triangle, a, b, c, d vecmath.Vec3) []vecmath.Triangle {
	return append(dst,
		vecmath.Tri(a, b, c),
		vecmath.Tri(a, c, d),
	)
}

// gridSurface tessellates the parametric surface f over [0,1]^2 into an
// nu x nv quad grid (2*nu*nv triangles).
func gridSurface(dst []vecmath.Triangle, nu, nv int, f func(u, v float64) vecmath.Vec3) []vecmath.Triangle {
	for i := 0; i < nu; i++ {
		u0 := float64(i) / float64(nu)
		u1 := float64(i+1) / float64(nu)
		for j := 0; j < nv; j++ {
			v0 := float64(j) / float64(nv)
			v1 := float64(j+1) / float64(nv)
			dst = quad(dst, f(u0, v0), f(u1, v0), f(u1, v1), f(u0, v1))
		}
	}
	return dst
}

// box appends the 12 triangles of an axis-aligned box.
func box(dst []vecmath.Triangle, b vecmath.AABB) []vecmath.Triangle {
	lo, hi := b.Min, b.Max
	p := [8]vecmath.Vec3{
		v(lo.X, lo.Y, lo.Z), v(hi.X, lo.Y, lo.Z), v(hi.X, hi.Y, lo.Z), v(lo.X, hi.Y, lo.Z),
		v(lo.X, lo.Y, hi.Z), v(hi.X, lo.Y, hi.Z), v(hi.X, hi.Y, hi.Z), v(lo.X, hi.Y, hi.Z),
	}
	dst = quad(dst, p[0], p[1], p[2], p[3]) // back
	dst = quad(dst, p[5], p[4], p[7], p[6]) // front
	dst = quad(dst, p[4], p[0], p[3], p[7]) // left
	dst = quad(dst, p[1], p[5], p[6], p[2]) // right
	dst = quad(dst, p[3], p[2], p[6], p[7]) // top
	dst = quad(dst, p[4], p[5], p[1], p[0]) // bottom
	return dst
}

// cylinder appends a closed cylinder along +Y: center of the base at c,
// radius r, height h, tessellated into segs side quads plus fan caps
// (segs*4 triangles).
func cylinder(dst []vecmath.Triangle, c vecmath.Vec3, r, h float64, segs int) []vecmath.Triangle {
	if segs < 3 {
		segs = 3
	}
	top := c.Add(v(0, h, 0))
	for i := 0; i < segs; i++ {
		a0 := 2 * math.Pi * float64(i) / float64(segs)
		a1 := 2 * math.Pi * float64(i+1) / float64(segs)
		p0 := c.Add(v(r*math.Cos(a0), 0, r*math.Sin(a0)))
		p1 := c.Add(v(r*math.Cos(a1), 0, r*math.Sin(a1)))
		q0 := p0.Add(v(0, h, 0))
		q1 := p1.Add(v(0, h, 0))
		dst = quad(dst, p0, p1, q1, q0)             // side
		dst = append(dst, vecmath.Tri(c, p1, p0))   // bottom cap
		dst = append(dst, vecmath.Tri(top, q0, q1)) // top cap
	}
	return dst
}

// cone appends an open cone along +Y (segs*2 triangles: side + base fan).
func cone(dst []vecmath.Triangle, c vecmath.Vec3, r, h float64, segs int) []vecmath.Triangle {
	if segs < 3 {
		segs = 3
	}
	apex := c.Add(v(0, h, 0))
	for i := 0; i < segs; i++ {
		a0 := 2 * math.Pi * float64(i) / float64(segs)
		a1 := 2 * math.Pi * float64(i+1) / float64(segs)
		p0 := c.Add(v(r*math.Cos(a0), 0, r*math.Sin(a0)))
		p1 := c.Add(v(r*math.Cos(a1), 0, r*math.Sin(a1)))
		dst = append(dst, vecmath.Tri(apex, p0, p1))
		dst = append(dst, vecmath.Tri(c, p1, p0))
	}
	return dst
}

// hashNoise is a cheap deterministic value-noise in [-1,1] derived from
// integer lattice hashing; good enough to roughen procedural surfaces
// without pulling in a noise library.
func hashNoise(x, y, z int) float64 {
	h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ uint64(z)*0x165667B19E3779F9
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return float64(h%2000000)/1000000 - 1
}

// smoothNoise interpolates hashNoise trilinearly at a continuous point.
func smoothNoise(p vecmath.Vec3) float64 {
	x0, y0, z0 := math.Floor(p.X), math.Floor(p.Y), math.Floor(p.Z)
	fx, fy, fz := p.X-x0, p.Y-y0, p.Z-z0
	ix, iy, iz := int(x0), int(y0), int(z0)
	lerp := func(a, b, t float64) float64 { return a + t*(b-a) }
	c000 := hashNoise(ix, iy, iz)
	c100 := hashNoise(ix+1, iy, iz)
	c010 := hashNoise(ix, iy+1, iz)
	c110 := hashNoise(ix+1, iy+1, iz)
	c001 := hashNoise(ix, iy, iz+1)
	c101 := hashNoise(ix+1, iy, iz+1)
	c011 := hashNoise(ix, iy+1, iz+1)
	c111 := hashNoise(ix+1, iy+1, iz+1)
	return lerp(
		lerp(lerp(c000, c100, fx), lerp(c010, c110, fx), fy),
		lerp(lerp(c001, c101, fx), lerp(c011, c111, fx), fy),
		fz,
	)
}

// padToCount adjusts len(tris) to exactly target by subdividing existing
// triangles in place (centroid fan: +2 triangles, identical surface; edge
// midpoint split: +1 triangle). Geometry is unchanged, only the
// tessellation density grows, so padding never alters what rays see. The
// selection walks deterministically so scene generation is reproducible.
// If len(tris) already exceeds target, padToCount panics — generators are
// written to undershoot and pad up.
func padToCount(tris []vecmath.Triangle, target int) []vecmath.Triangle {
	tris, _ = padStaticPrefix(tris, len(tris), target)
	return tris
}

// padStaticPrefix pads the whole scene to target triangles by densifying
// only the static prefix tris[:staticLen]. Animated generators build their
// static geometry first, then moving parts; padding must never split a
// moving triangle (the fan halves would be appended outside the part's
// range and stop moving). Returns the padded slice and the index shift to
// add to every part range starting at or after staticLen.
func padStaticPrefix(tris []vecmath.Triangle, staticLen, target int) ([]vecmath.Triangle, int) {
	if len(tris) > target {
		panic("scene: generator overshot its triangle budget")
	}
	if staticLen <= 0 && len(tris) < target {
		panic("scene: cannot pad a scene with no static geometry")
	}
	static := append([]vecmath.Triangle(nil), tris[:staticLen]...)
	moving := tris[staticLen:]
	need := target - len(moving)

	idx := 0
	for len(static) < need {
		// Skip (near-)degenerate triangles: splitting them creates more.
		for static[idx].Area() < 1e-12 {
			idx = (idx + 7919) % len(static)
		}
		t := static[idx]
		if need-len(static) >= 2 {
			// Centroid fan: replace t by three triangles sharing the centroid.
			c := t.Centroid()
			static[idx] = vecmath.Tri(t.A, t.B, c)
			static = append(static, vecmath.Tri(t.B, t.C, c), vecmath.Tri(t.C, t.A, c))
		} else {
			// Single extra triangle: split the AB edge at its midpoint.
			m := t.A.Lerp(t.B, 0.5)
			static[idx] = vecmath.Tri(t.A, m, t.C)
			static = append(static, vecmath.Tri(m, t.B, t.C))
		}
		idx = (idx + 7919) % len(static)
	}
	return append(static, moving...), len(static) - staticLen
}
