// Package scene provides the six evaluation scenes of the paper's §V-B and
// the machinery around them: triangle-soup scenes with camera placements,
// point lights, and per-frame animation for the dynamic scenes.
//
// The original models (Stanford Bunny, Dabrovic Sponza and Sibenik, and the
// Utah 3D Animation Repository's Toasters, Wood Doll and Fairy Forest) are
// not redistributable, so the generators in this package build procedural
// stand-ins with the exact triangle counts reported in the paper and
// matching spatial character (see DESIGN.md §4 for the substitution
// rationale). Real models can still be loaded through the Wavefront-OBJ
// reader in obj.go.
package scene

import (
	"fmt"

	"kdtune/internal/vecmath"
)

// View is a camera placement: the renderer derives its ray generator from
// it. FOV is the vertical field of view in degrees.
type View struct {
	Eye    vecmath.Vec3
	LookAt vecmath.Vec3
	Up     vecmath.Vec3
	FOV    float64
}

// Part is a rigid subset of a scene's triangles with its own motion: the
// triangles base[Start:End] are transformed by Motion(frame) to produce
// frame geometry.
type Part struct {
	Start, End int
	Motion     func(frame int) vecmath.Mat4
}

// Scene is a (possibly animated) triangle soup plus viewing parameters.
type Scene struct {
	Name      string
	Frames    int // number of animation frames; 1 for static scenes
	View      View
	Lights    []vecmath.Vec3
	base      []vecmath.Triangle
	parts     []Part // empty for static scenes
	deformers []Deformer

	// CameraPath, when non-nil, overrides View per frame. The paper lists
	// "interactive user inputs, such as ... camera movement" among the
	// context changes that shift the optimal configuration; a camera path
	// exercises exactly that.
	CameraPath func(frame int) View
}

// WithCameraPath installs a per-frame camera path on the scene and raises
// its frame count so the harness actually walks the path. The geometry is
// untouched; only the viewpoint animates (the paper's "camera movement"
// context change).
func (s *Scene) WithCameraPath(frames int, path func(frame int) View) *Scene {
	if frames > s.Frames {
		s.Frames = frames
	}
	s.CameraPath = path
	return s
}

// ViewAt returns the camera placement for a frame: the static View unless
// a CameraPath is installed.
func (s *Scene) ViewAt(frame int) View {
	if s.CameraPath == nil {
		return s.View
	}
	if frame < 0 {
		frame = 0
	}
	if frame >= s.Frames {
		frame = s.Frames - 1
	}
	return s.CameraPath(frame)
}

// Deformer is a non-rigid per-frame vertex modifier (e.g. wind sway); it
// maps a base vertex to its position at the given frame.
type Deformer struct {
	Start, End int
	Deform     func(frame int, v vecmath.Vec3) vecmath.Vec3
}

// NewStatic builds a single-frame scene.
func NewStatic(name string, tris []vecmath.Triangle, view View, lights []vecmath.Vec3) *Scene {
	return &Scene{Name: name, Frames: 1, View: view, Lights: lights, base: tris}
}

// NewAnimated builds a multi-frame scene whose parts move rigidly and whose
// deformers bend vertices per frame.
func NewAnimated(name string, tris []vecmath.Triangle, frames int, view View, lights []vecmath.Vec3, parts []Part, deformers []Deformer) *Scene {
	if frames < 1 {
		frames = 1
	}
	return &Scene{
		Name: name, Frames: frames, View: view, Lights: lights,
		base: tris, parts: parts, deformers: deformers,
	}
}

// NumTriangles returns the triangle count (constant across frames).
func (s *Scene) NumTriangles() int { return len(s.base) }

// IsDynamic reports whether the geometry changes between frames.
func (s *Scene) IsDynamic() bool { return len(s.parts) > 0 || len(s.deformers) > 0 }

// Base returns the frame-0 geometry. The slice is shared; do not modify.
func (s *Scene) Base() []vecmath.Triangle { return s.base }

// Triangles materialises the geometry of the given frame (clamped into
// [0, Frames-1]). Static scenes return the shared base slice; dynamic
// scenes allocate a fresh slice — the paper's workflow rebuilds the kD-tree
// from the previous frame's geometry anyway, so per-frame allocation mirrors
// the real cost structure.
func (s *Scene) Triangles(frame int) []vecmath.Triangle {
	if frame < 0 {
		frame = 0
	}
	if frame >= s.Frames {
		frame = s.Frames - 1
	}
	if !s.IsDynamic() {
		return s.base
	}
	out := make([]vecmath.Triangle, len(s.base))
	copy(out, s.base)
	for _, p := range s.parts {
		m := p.Motion(frame)
		for i := p.Start; i < p.End; i++ {
			out[i] = out[i].Transform(m)
		}
	}
	for _, d := range s.deformers {
		for i := d.Start; i < d.End; i++ {
			out[i] = vecmath.Tri(
				d.Deform(frame, out[i].A),
				d.Deform(frame, out[i].B),
				d.Deform(frame, out[i].C),
			)
		}
	}
	return out
}

// Bounds returns the union of the geometry bounds over all frames (sampled
// per frame; exact for rigid/deformed geometry since every frame is
// materialised).
func (s *Scene) Bounds() vecmath.AABB {
	b := vecmath.EmptyAABB()
	for f := 0; f < s.Frames; f++ {
		for _, tr := range s.Triangles(f) {
			b = b.Union(tr.Bounds())
		}
	}
	return b
}

// String summarises the scene like the paper's §V-B listing.
func (s *Scene) String() string {
	kind := "static"
	if s.IsDynamic() {
		kind = fmt.Sprintf("dynamic, %d frames", s.Frames)
	}
	return fmt.Sprintf("%s (%d triangles, %s)", s.Name, s.NumTriangles(), kind)
}
