package scene

import (
	"math"
	"strings"
	"testing"

	"kdtune/internal/vecmath"
)

func TestSceneTriangleCountsMatchPaper(t *testing.T) {
	want := map[string]int{
		"Bunny":       BunnyTris,
		"Sponza":      SponzaTris,
		"Sibenik":     SibenikTris,
		"Toasters":    ToastersTris,
		"WoodDoll":    WoodDollTris,
		"FairyForest": FairyForestTris,
	}
	for _, s := range All() {
		if got := s.NumTriangles(); got != want[s.Name] {
			t.Errorf("%s: %d triangles, paper says %d", s.Name, got, want[s.Name])
		}
	}
}

func TestSceneFrameCountsMatchPaper(t *testing.T) {
	frames := map[string]int{
		"Bunny": 1, "Sponza": 1, "Sibenik": 1,
		"Toasters": ToastersFrames, "WoodDoll": WoodDollFrames, "FairyForest": FairyForestFrames,
	}
	for _, s := range All() {
		if s.Frames != frames[s.Name] {
			t.Errorf("%s: %d frames, want %d", s.Name, s.Frames, frames[s.Name])
		}
		if s.IsDynamic() != (frames[s.Name] > 1) {
			t.Errorf("%s: IsDynamic = %v", s.Name, s.IsDynamic())
		}
	}
}

func TestSceneGeometryIsSane(t *testing.T) {
	for _, s := range All() {
		tris := s.Triangles(0)
		degenerate := 0
		for _, tr := range tris {
			if !tr.A.IsFinite() || !tr.B.IsFinite() || !tr.C.IsFinite() {
				t.Fatalf("%s: non-finite vertex", s.Name)
			}
			if tr.IsDegenerate() {
				degenerate++
			}
		}
		if frac := float64(degenerate) / float64(len(tris)); frac > 0.01 {
			t.Errorf("%s: %.2f%% degenerate triangles", s.Name, 100*frac)
		}
		b := vecmath.EmptyAABB()
		for _, tr := range tris {
			b = b.Union(tr.Bounds())
		}
		if !b.IsValid() {
			t.Errorf("%s: invalid scene bounds %v", s.Name, b)
		}
		if len(s.Lights) == 0 {
			t.Errorf("%s: no lights", s.Name)
		}
		if s.View.FOV <= 0 || s.View.FOV >= 180 {
			t.Errorf("%s: bad FOV %v", s.Name, s.View.FOV)
		}
		if s.View.Eye == s.View.LookAt {
			t.Errorf("%s: camera looks at itself", s.Name)
		}
	}
}

func TestDynamicScenesActuallyMove(t *testing.T) {
	for _, s := range All() {
		if !s.IsDynamic() {
			continue
		}
		f0 := s.Triangles(0)
		f1 := s.Triangles(s.Frames / 2)
		if len(f0) != len(f1) {
			t.Fatalf("%s: triangle count changed between frames: %d vs %d", s.Name, len(f0), len(f1))
		}
		moved := 0
		for i := range f0 {
			if !f0[i].A.ApproxEq(f1[i].A, 1e-12) {
				moved++
			}
		}
		if moved == 0 {
			t.Errorf("%s: no triangle moved between frames", s.Name)
		}
		if moved == len(f0) && s.Name != "FairyForest" {
			// Toasters/WoodDoll have a static ground: not everything moves.
			t.Errorf("%s: every triangle moved; static ground lost its part boundary?", s.Name)
		}
	}
}

func TestAnimationPreservesRigidParts(t *testing.T) {
	// Rigid motion preserves triangle areas; a torn part (triangle halves
	// left behind by padding) would change area between frames.
	for _, s := range []*Scene{Toasters(), WoodDoll()} {
		f0 := s.Triangles(0)
		fEnd := s.Triangles(s.Frames - 1)
		for i := range f0 {
			a0, a1 := f0[i].Area(), fEnd[i].Area()
			if math.Abs(a0-a1) > 1e-9*(1+a0) {
				t.Fatalf("%s: triangle %d area changed %v -> %v (torn rigid body)", s.Name, i, a0, a1)
			}
		}
	}
}

func TestStaticScenesShareBase(t *testing.T) {
	s := Bunny()
	a := s.Triangles(0)
	b := s.Triangles(0)
	if &a[0] != &b[0] {
		t.Error("static scene should return the shared base slice")
	}
}

func TestFrameClamping(t *testing.T) {
	s := Toasters()
	if len(s.Triangles(-5)) != s.NumTriangles() {
		t.Error("negative frame not clamped")
	}
	if len(s.Triangles(10000)) != s.NumTriangles() {
		t.Error("overflow frame not clamped")
	}
}

func TestFairyForestOcclusion(t *testing.T) {
	// The paper: "The cast rays intersect only with a tiny fraction of the
	// scene's triangles". Verify with a brute ray fan from the camera that
	// nearly every primary ray hits the blocker region near the camera.
	s := FairyForest()
	tris := s.Triangles(0)
	eye := s.View.Eye
	dir := s.View.LookAt.Sub(eye).Normalize()
	right := dir.Cross(s.View.Up).Normalize()
	up := right.Cross(dir)
	tan := math.Tan(s.View.FOV * math.Pi / 360)

	nearHits, total := 0, 0
	for iy := -4; iy <= 4; iy++ {
		for ix := -4; ix <= 4; ix++ {
			d := dir.Add(right.Scale(tan * float64(ix) / 4)).Add(up.Scale(tan * float64(iy) / 4))
			ray := vecmath.NewRay(eye, d)
			best := math.Inf(1)
			for _, tr := range tris {
				if th, _, _, hit := tr.IntersectRay(ray, 1e-9, best); hit {
					best = th
				}
			}
			total++
			if best < 3.0/d.Len()*2 { // hit within a few units of the eye
				nearHits++
			}
		}
	}
	if nearHits < total*9/10 {
		t.Errorf("only %d/%d central rays hit the near blocker; occlusion scenario broken", nearHits, total)
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, n := range Names() {
		s, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%s): %v", n, err)
		}
		if s.Name != n {
			t.Fatalf("ByName(%s) returned %s", n, s.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown scene accepted")
	}
	if len(Names()) != 6 {
		t.Fatal("expected six scenes")
	}
}

func TestSceneString(t *testing.T) {
	if s := Bunny().String(); !strings.Contains(s, "Bunny") || !strings.Contains(s, "static") {
		t.Errorf("String = %q", s)
	}
	if s := Toasters().String(); !strings.Contains(s, "dynamic") {
		t.Errorf("String = %q", s)
	}
}

func TestBoundsCoverAllFrames(t *testing.T) {
	s := WoodDoll()
	b := s.Bounds()
	for f := 0; f < s.Frames; f += 7 {
		for _, tr := range s.Triangles(f) {
			if !b.ContainsBox(tr.Bounds()) {
				t.Fatalf("frame %d triangle escapes scene bounds", f)
			}
		}
	}
}

func TestPadStaticPrefix(t *testing.T) {
	base := []vecmath.Triangle{
		vecmath.Tri(v(0, 0, 0), v(1, 0, 0), v(0, 1, 0)), // static
		vecmath.Tri(v(5, 0, 0), v(6, 0, 0), v(5, 1, 0)), // "moving"
	}
	out, shift := padStaticPrefix(append([]vecmath.Triangle(nil), base...), 1, 7)
	if len(out) != 7 {
		t.Fatalf("padded to %d, want 7", len(out))
	}
	if shift != 5 {
		t.Fatalf("shift = %d, want 5", shift)
	}
	// The moving triangle must be preserved verbatim at its shifted index.
	if out[1+shift] != base[1] {
		t.Fatal("moving triangle displaced or modified by padding")
	}
	// Padding preserves total static area (splits only).
	area := 0.0
	for _, tr := range out[:6] {
		area += tr.Area()
	}
	if math.Abs(area-0.5) > 1e-12 {
		t.Fatalf("static area changed to %v", area)
	}
}

func TestPadToCountExact(t *testing.T) {
	tri := vecmath.Tri(v(0, 0, 0), v(2, 0, 0), v(0, 2, 0))
	for target := 1; target <= 12; target++ {
		out := padToCount([]vecmath.Triangle{tri}, target)
		if len(out) != target {
			t.Fatalf("target %d: got %d", target, len(out))
		}
		area := 0.0
		for _, tr := range out {
			area += tr.Area()
		}
		if math.Abs(area-2) > 1e-9 {
			t.Fatalf("target %d: area drifted to %v", target, area)
		}
	}
}

func TestPadOvershootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overshoot")
		}
	}()
	padToCount(make([]vecmath.Triangle, 5), 3)
}

func TestViewAtWithoutPathIsStatic(t *testing.T) {
	s := Bunny()
	if s.ViewAt(0) != s.View || s.ViewAt(7) != s.View {
		t.Fatal("ViewAt should return the static view when no path is set")
	}
}

func TestWithCameraPath(t *testing.T) {
	s := Bunny()
	base := s.View
	s.WithCameraPath(10, func(f int) View {
		v := base
		v.Eye = v.Eye.Add(vecmath.V(float64(f), 0, 0))
		return v
	})
	if s.Frames != 10 {
		t.Fatalf("frames = %d, want 10", s.Frames)
	}
	if s.ViewAt(3).Eye.X != base.Eye.X+3 {
		t.Fatalf("path not applied: %v", s.ViewAt(3).Eye)
	}
	if s.ViewAt(-1) != s.ViewAt(0) || s.ViewAt(99) != s.ViewAt(9) {
		t.Fatal("frame clamping broken")
	}
	// Geometry is still static: camera paths must not force per-frame
	// triangle copies.
	a, b := s.Triangles(0), s.Triangles(5)
	if &a[0] != &b[0] {
		t.Fatal("camera path caused geometry copies")
	}
	// A path never shrinks an animation's frame count.
	d := Toasters()
	d.WithCameraPath(5, func(int) View { return d.View })
	if d.Frames != ToastersFrames {
		t.Fatalf("camera path shrank frame count to %d", d.Frames)
	}
}
