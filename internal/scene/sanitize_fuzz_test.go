package scene

import (
	"encoding/binary"
	"math"
	"testing"

	"kdtune/internal/kdtree"
	"kdtune/internal/vecmath"
)

// sanitizeFuzzTriangles decodes raw fuzzer bytes into triangles, 9 float64
// coordinates each, bit-for-bit — NaNs, infinities, denormals and exactly
// coincident vertices all arise naturally from the byte stream.
func sanitizeFuzzTriangles(data []byte) []vecmath.Triangle {
	const triBytes = 9 * 8
	n := len(data) / triBytes
	if n > 128 {
		n = 128 // bound per-execution build cost
	}
	tris := make([]vecmath.Triangle, n)
	for i := range tris {
		var c [9]float64
		for j := range c {
			c[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*triBytes+j*8:]))
		}
		tris[i] = vecmath.Tri(vecmath.V(c[0], c[1], c[2]), vecmath.V(c[3], c[4], c[5]), vecmath.V(c[6], c[7], c[8]))
	}
	return tris
}

func sanitizeSeedBytes(tris ...vecmath.Triangle) []byte {
	out := make([]byte, 0, len(tris)*72)
	for _, tr := range tris {
		for _, v := range []vecmath.Vec3{tr.A, tr.B, tr.C} {
			for _, x := range []float64{v.X, v.Y, v.Z} {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
			}
		}
	}
	return out
}

// FuzzSanitize hammers Sanitize with adversarial triangle soups under every
// policy combination: the pass must never panic, its report must account for
// every triangle, and — for the default drop policy — everything it emits
// must survive a guarded build without tripping any limit.
func FuzzSanitize(f *testing.F) {
	nan, inf := math.NaN(), math.Inf(1)
	p := vecmath.V(1, 2, 3)
	f.Add([]byte{}, uint8(0))
	f.Add(sanitizeSeedBytes(
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
	), uint8(0))
	f.Add(sanitizeSeedBytes(
		vecmath.Tri(vecmath.V(nan, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
		vecmath.Tri(vecmath.V(inf, -inf, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
		vecmath.Tri(p, p, p),
		vecmath.Tri(p, p, vecmath.V(4, 5, 6)),
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 1, 1), vecmath.V(2, 2, 2)),
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
	), uint8(1))
	// Subnormal slivers and a denormal-coordinate triangle.
	f.Add(sanitizeSeedBytes(
		vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1e-200, 0, 0), vecmath.V(0, 1e-200, 0)),
		vecmath.Tri(vecmath.V(5e-324, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)),
	), uint8(2))
	// Overflowing cross product from huge finite vertices.
	h := math.MaxFloat64
	f.Add(sanitizeSeedBytes(
		vecmath.Tri(vecmath.V(-h, -h, 0), vecmath.V(h, 0, 0), vecmath.V(0, h, 0)),
	), uint8(4))

	f.Fuzz(func(t *testing.T, data []byte, policyPick uint8) {
		tris := sanitizeFuzzTriangles(data)
		policy := SanitizePolicy{
			NonFinite:  SanitizeAction(policyPick % 3),
			Degenerate: SanitizeAction(policyPick / 3 % 3),
		}
		in := append([]vecmath.Triangle(nil), tris...)
		out, rep, err := Sanitize(in, policy)

		if rep.Input != len(tris) {
			t.Fatalf("report.Input = %d, want %d", rep.Input, len(tris))
		}
		if err != nil {
			if policy.NonFinite != SanitizeReject && policy.Degenerate != SanitizeReject {
				t.Fatalf("error %v without a reject action", err)
			}
			if out != nil {
				t.Fatalf("rejecting pass returned a slice alongside the error")
			}
			return
		}
		if len(out) != rep.Input-rep.Dropped {
			t.Fatalf("len(out)=%d but report says %d kept", len(out), rep.Input-rep.Dropped)
		}
		if rep.NonFinite+rep.Degenerate > rep.Input || rep.Dropped > rep.NonFinite+rep.Degenerate {
			t.Fatalf("inconsistent report %+v", rep)
		}

		if policy != (SanitizePolicy{}) {
			return
		}
		// Default policy: the output contract is "finite bounds, usable
		// normal", and a second pass must be a no-op.
		for i, tr := range out {
			if !tr.A.IsFinite() || !tr.B.IsFinite() || !tr.C.IsFinite() {
				t.Fatalf("triangle %d survived with non-finite vertices", i)
			}
			if !(tr.Normal().Len2() >= minTriangleArea2) {
				t.Fatalf("triangle %d survived with degenerate normal", i)
			}
		}
		again, rep2, err := Sanitize(append([]vecmath.Triangle(nil), out...), policy)
		if err != nil || len(again) != len(out) || rep2.Dropped != 0 {
			t.Fatalf("sanitize is not idempotent: %d -> %d (%+v, %v)", len(out), len(again), rep2, err)
		}
		// Sanitized output must build cleanly under a guard tight enough to
		// catch runaway recursion — no misfires, no panics, a valid tree.
		cfg := kdtree.Config{Algorithm: kdtree.AlgoNodeLevel, Workers: 2}
		g := kdtree.Guard{MaxDepth: 64, MaxArenaBytes: 1 << 30}
		tree, err := kdtree.NewBuilder().BuildGuarded(out, cfg, g)
		if err != nil {
			t.Fatalf("guarded build of sanitized mesh aborted: %v", err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("invalid tree from sanitized mesh: %v", err)
		}
	})
}
