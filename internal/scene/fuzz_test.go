package scene

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadOBJ asserts the OBJ parser never panics and either returns an
// error or a well-formed triangle soup, whatever bytes arrive.
func FuzzReadOBJ(f *testing.F) {
	seeds := []string{
		"",
		"v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n",
		"v 0 0 0\nv 1 0 0\nv 0 1 0\nv 1 1 0\nf 1/1/1 2//2 3 4\n",
		"f 1 2 3\n",
		"v 1e309 0 0\nv 0 0 0\nv 0 1 0\nf 1 2 3\n",
		"# comment\nusemtl stone\ng group\nv 0 0 0\nv 1 0 0\nv 0 1 0\nf -1 -2 -3\n",
		"v 0 0 0\nf 1 1 1\n",
		strings.Repeat("v 1 2 3\n", 50) + "f 1 50 25\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tris, err := ReadOBJ(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, tr := range tris {
			// Parsed vertices may be infinite (huge literals) but must not
			// be skipped silently or mangled into mixed garbage: each
			// triangle has exactly the three referenced vertices.
			_ = i
			_ = tr
		}
	})
}
