package scene

import (
	"bytes"
	"strings"
	"testing"

	"kdtune/internal/vecmath"
)

func TestReadOBJTriangles(t *testing.T) {
	src := `
# comment
v 0 0 0
v 1 0 0
v 0 1 0
v 1 1 0
f 1 2 3
f 2 4 3
`
	tris, err := ReadOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 2 {
		t.Fatalf("got %d triangles, want 2", len(tris))
	}
	if tris[0].A != vecmath.V(0, 0, 0) || tris[0].B != vecmath.V(1, 0, 0) {
		t.Fatalf("first triangle wrong: %v", tris[0])
	}
}

func TestReadOBJPolygonsAndSlashes(t *testing.T) {
	src := `
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
vn 0 0 1
vt 0 0
f 1/1/1 2/1/1 3/1/1 4/1/1
`
	tris, err := ReadOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 2 {
		t.Fatalf("quad should fan into 2 triangles, got %d", len(tris))
	}
}

func TestReadOBJNegativeIndices(t *testing.T) {
	src := `
v 0 0 0
v 1 0 0
v 0 1 0
f -3 -2 -1
`
	tris, err := ReadOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 1 || tris[0].C != vecmath.V(0, 1, 0) {
		t.Fatalf("negative indexing broken: %+v", tris)
	}
}

func TestReadOBJErrors(t *testing.T) {
	bad := []string{
		"v 1 2",            // too few coordinates
		"v a b c",          // non-numeric
		"f 1 2",            // face too small
		"f 1 2 99",         // out of range
		"v 0 0 0\nf 0 1 2", // index 0 invalid
		"f x y z",          // non-numeric face
	}
	for i, src := range bad {
		if _, err := ReadOBJ(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: malformed OBJ accepted", i)
		}
	}
}

func TestOBJRoundTrip(t *testing.T) {
	orig := WoodDoll().Base()[:500]
	var buf bytes.Buffer
	if err := WriteOBJ(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOBJ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip count %d != %d", len(back), len(orig))
	}
	for i := range orig {
		if !back[i].A.ApproxEq(orig[i].A, 1e-9) ||
			!back[i].B.ApproxEq(orig[i].B, 1e-9) ||
			!back[i].C.ApproxEq(orig[i].C, 1e-9) {
			t.Fatalf("triangle %d drifted: %v vs %v", i, back[i], orig[i])
		}
	}
}
