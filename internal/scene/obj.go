package scene

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kdtune/internal/vecmath"
)

// ReadOBJ parses a Wavefront OBJ stream into a triangle soup. Supported
// elements are vertices ("v x y z") and faces ("f i j k ..."); faces with
// more than three vertices are fan-triangulated, vertex indices may be
// negative (relative) and may carry texture/normal suffixes ("f 1/2/3 ..."),
// which are ignored. All other statements (vn, vt, usemtl, o, g, s, mtllib,
// comments) are skipped. This lets users feed the real evaluation models to
// the harness when they have them, in place of the procedural stand-ins.
func ReadOBJ(r io.Reader) ([]vecmath.Triangle, error) {
	var verts []vecmath.Vec3
	var tris []vecmath.Triangle
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "v":
			if len(fields) < 4 {
				return nil, fmt.Errorf("obj line %d: vertex needs 3 coordinates", lineNo)
			}
			var c [3]float64
			for i := 0; i < 3; i++ {
				f, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("obj line %d: bad coordinate %q: %v", lineNo, fields[i+1], err)
				}
				c[i] = f
			}
			verts = append(verts, vecmath.V(c[0], c[1], c[2]))
		case "f":
			if len(fields) < 4 {
				return nil, fmt.Errorf("obj line %d: face needs at least 3 vertices", lineNo)
			}
			idx := make([]int, 0, len(fields)-1)
			for _, f := range fields[1:] {
				// "17/5/3" -> vertex index 17; only the first component counts.
				if slash := strings.IndexByte(f, '/'); slash >= 0 {
					f = f[:slash]
				}
				i, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("obj line %d: bad face index %q: %v", lineNo, f, err)
				}
				if i < 0 {
					i = len(verts) + i + 1 // relative indexing
				}
				if i < 1 || i > len(verts) {
					return nil, fmt.Errorf("obj line %d: face index %d out of range (have %d vertices)", lineNo, i, len(verts))
				}
				idx = append(idx, i-1)
			}
			for k := 2; k < len(idx); k++ {
				tris = append(tris, vecmath.Tri(verts[idx[0]], verts[idx[k-1]], verts[idx[k]]))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obj: %w", err)
	}
	return tris, nil
}

// WriteOBJ dumps a triangle soup as a Wavefront OBJ document (three fresh
// vertices per triangle; no index sharing). Useful for inspecting the
// procedural scenes in external viewers.
func WriteOBJ(w io.Writer, tris []vecmath.Triangle) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# kdtune procedural scene: %d triangles\n", len(tris))
	for _, t := range tris {
		for _, p := range []vecmath.Vec3{t.A, t.B, t.C} {
			if _, err := fmt.Fprintf(bw, "v %g %g %g\n", p.X, p.Y, p.Z); err != nil {
				return err
			}
		}
	}
	for i := range tris {
		if _, err := fmt.Fprintf(bw, "f %d %d %d\n", 3*i+1, 3*i+2, 3*i+3); err != nil {
			return err
		}
	}
	return bw.Flush()
}
