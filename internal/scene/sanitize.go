package scene

import (
	"fmt"

	"kdtune/internal/vecmath"
)

// SanitizeAction selects what Sanitize does with an offending triangle.
type SanitizeAction uint8

const (
	// SanitizeDrop removes the triangle from the output (the default: the
	// builders and the intersector are safe against dropped primitives by
	// construction, but carrying hostile values into SAH sweeps wastes work
	// and — for NaN — can poison every plane comparison of a node).
	SanitizeDrop SanitizeAction = iota
	// SanitizeReject fails the whole mesh with an error naming the first
	// offending triangle — for ingestion paths that must not silently alter
	// user geometry.
	SanitizeReject
	// SanitizeKeep passes the triangle through untouched — for callers that
	// explicitly accept the cost (e.g. degenerate zero-area triangles are
	// harmless to traversal, only wasteful).
	SanitizeKeep
)

func (a SanitizeAction) String() string {
	switch a {
	case SanitizeDrop:
		return "drop"
	case SanitizeReject:
		return "reject"
	case SanitizeKeep:
		return "keep"
	}
	return fmt.Sprintf("SanitizeAction(%d)", uint8(a))
}

// SanitizePolicy decides per defect class. The zero value drops both
// classes, which is what the frame-loop harness wants: every surviving
// triangle has finite bounds and positive area, so no hostile mesh can
// reach the SAH event sweeps.
type SanitizePolicy struct {
	// NonFinite handles triangles with any NaN or ±Inf vertex component.
	NonFinite SanitizeAction
	// Degenerate handles triangles whose area is not positive — collapsed
	// (coincident or collinear) vertices. Subnormal areas count as
	// degenerate: their normals are unusable for intersection anyway.
	Degenerate SanitizeAction
}

// SanitizeReport tallies one Sanitize pass.
type SanitizeReport struct {
	Input      int // triangles examined
	NonFinite  int // triangles with NaN/Inf vertices encountered
	Degenerate int // zero/subnormal-area triangles encountered
	Dropped    int // triangles removed from the output
}

// minTriangleArea2 is the squared-length floor under which a triangle's
// normal — and with it the triangle — counts as degenerate. It matches
// vecmath.Triangle.IsDegenerate, so everything Sanitize passes is also
// intersectable.
const minTriangleArea2 = 1e-300

// Sanitize applies the policy to tris and returns the cleaned slice. The
// output aliases the input's backing array (triangles are filtered in
// place); callers needing the original must copy first. With SanitizeReject
// the first offending triangle aborts the pass with a descriptive error and
// a nil slice.
//
// The classes are checked in order: a non-finite triangle is counted (and
// handled) as non-finite only, even though its area is also unusable.
func Sanitize(tris []vecmath.Triangle, policy SanitizePolicy) ([]vecmath.Triangle, SanitizeReport, error) {
	rep := SanitizeReport{Input: len(tris)}
	out := tris[:0]
	for i, tr := range tris {
		var class string
		var action SanitizeAction
		switch {
		case !tr.A.IsFinite() || !tr.B.IsFinite() || !tr.C.IsFinite():
			rep.NonFinite++
			class, action = "non-finite vertex", policy.NonFinite
		case !(tr.Normal().Len2() >= minTriangleArea2):
			// Negated comparison so a NaN normal (possible from huge finite
			// vertices whose cross product overflows to Inf-Inf) lands here
			// rather than passing as healthy.
			rep.Degenerate++
			class, action = "degenerate (zero area)", policy.Degenerate
		default:
			out = append(out, tr)
			continue
		}
		switch action {
		case SanitizeReject:
			return nil, rep, fmt.Errorf("scene: triangle %d: %s", i, class)
		case SanitizeKeep:
			out = append(out, tr)
		default: // SanitizeDrop
			rep.Dropped++
		}
	}
	return out, rep, nil
}
