package scene

import (
	"math"
	"strings"
	"testing"

	"kdtune/internal/vecmath"
)

func saneTri() vecmath.Triangle {
	return vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0))
}

func nanTri() vecmath.Triangle {
	return vecmath.Tri(vecmath.V(math.NaN(), 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0))
}

func infTri() vecmath.Triangle {
	return vecmath.Tri(vecmath.V(math.Inf(-1), 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0))
}

func pointTri() vecmath.Triangle {
	p := vecmath.V(2, 3, 4)
	return vecmath.Tri(p, p, p)
}

func TestSanitizeDropDefaults(t *testing.T) {
	in := []vecmath.Triangle{saneTri(), nanTri(), pointTri(), infTri(), saneTri()}
	out, rep, err := Sanitize(in, SanitizePolicy{})
	if err != nil {
		t.Fatalf("drop policy errored: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("kept %d triangles, want the 2 sane ones", len(out))
	}
	want := SanitizeReport{Input: 5, NonFinite: 2, Degenerate: 1, Dropped: 3}
	if rep != want {
		t.Fatalf("report %+v, want %+v", rep, want)
	}
	// In-place: output aliases the input's backing array.
	if &out[0] != &in[0] {
		t.Errorf("output does not alias input")
	}
}

func TestSanitizeRejectNamesFirstOffender(t *testing.T) {
	in := []vecmath.Triangle{saneTri(), pointTri(), nanTri()}
	out, rep, err := Sanitize(in, SanitizePolicy{Degenerate: SanitizeReject})
	if err == nil {
		t.Fatalf("reject policy did not error")
	}
	if out != nil {
		t.Fatalf("reject returned a slice alongside the error")
	}
	if !strings.Contains(err.Error(), "triangle 1") || !strings.Contains(err.Error(), "degenerate") {
		t.Errorf("error %q does not name the offender", err)
	}
	if rep.Degenerate != 1 {
		t.Errorf("report %+v stops at the first offender", rep)
	}

	// The same mesh passes when only non-finite triangles reject... until
	// the NaN one is reached.
	_, _, err = Sanitize([]vecmath.Triangle{saneTri(), pointTri()}, SanitizePolicy{NonFinite: SanitizeReject})
	if err != nil {
		t.Errorf("degenerate triangle tripped the NonFinite reject: %v", err)
	}
	_, _, err = Sanitize([]vecmath.Triangle{nanTri()}, SanitizePolicy{NonFinite: SanitizeReject})
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("NaN triangle not rejected: %v", err)
	}
}

func TestSanitizeKeepPassesThrough(t *testing.T) {
	in := []vecmath.Triangle{nanTri(), pointTri(), saneTri()}
	out, rep, err := Sanitize(in, SanitizePolicy{NonFinite: SanitizeKeep, Degenerate: SanitizeKeep})
	if err != nil {
		t.Fatalf("keep policy errored: %v", err)
	}
	if len(out) != 3 || rep.Dropped != 0 {
		t.Fatalf("keep policy altered the mesh: %d kept, report %+v", len(out), rep)
	}
	if rep.NonFinite != 1 || rep.Degenerate != 1 {
		t.Errorf("keep policy must still count defects: %+v", rep)
	}
}

func TestSanitizeEmptyAndClean(t *testing.T) {
	for _, in := range [][]vecmath.Triangle{nil, {}} {
		out, rep, err := Sanitize(in, SanitizePolicy{})
		if err != nil || len(out) != 0 || rep != (SanitizeReport{}) {
			t.Fatalf("empty input: out=%v rep=%+v err=%v", out, rep, err)
		}
	}
	clean := []vecmath.Triangle{saneTri(), saneTri()}
	out, rep, err := Sanitize(clean, SanitizePolicy{})
	if err != nil || len(out) != 2 || rep.Dropped != 0 {
		t.Fatalf("clean mesh was altered: %d kept, %+v, %v", len(out), rep, err)
	}
}

func TestSanitizeSubnormalArea(t *testing.T) {
	// A sliver whose normal is far below minTriangleArea2: numerically
	// present but unusable for intersection.
	s := vecmath.Tri(vecmath.V(0, 0, 0), vecmath.V(1e-200, 0, 0), vecmath.V(0, 1e-200, 0))
	if s.Normal().Len2() >= 1e-300 {
		t.Skip("sliver is healthier than expected on this platform")
	}
	out, rep, err := Sanitize([]vecmath.Triangle{s}, SanitizePolicy{})
	if err != nil || len(out) != 0 || rep.Degenerate != 1 {
		t.Fatalf("subnormal sliver survived: %d kept, %+v, %v", len(out), rep, err)
	}
}

// TestSanitizeOverflowNormal: huge finite vertices whose cross product
// overflows to NaN/Inf must be classified degenerate, not passed as healthy.
func TestSanitizeOverflowNormal(t *testing.T) {
	h := math.MaxFloat64
	tr := vecmath.Tri(vecmath.V(-h, -h, 0), vecmath.V(h, 0, 0), vecmath.V(0, h, 0))
	if tr.A.IsFinite() && tr.B.IsFinite() && tr.C.IsFinite() {
		out, rep, err := Sanitize([]vecmath.Triangle{tr}, SanitizePolicy{})
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if len(out) != 0 {
			t.Fatalf("overflow-normal triangle passed as healthy (report %+v)", rep)
		}
	}
}
