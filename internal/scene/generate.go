package scene

import (
	"math"

	"kdtune/internal/vecmath"
)

// Triangle counts reported in §V-B for the six evaluation scenes. The
// procedural stand-ins hit these exactly (padToCount).
const (
	BunnyTris       = 69666
	SponzaTris      = 66450
	SibenikTris     = 75284
	ToastersTris    = 11141
	WoodDollTris    = 6658
	FairyForestTris = 174117

	ToastersFrames    = 246
	WoodDollFrames    = 29
	FairyForestFrames = 21
)

// Bunny builds the stand-in for the Stanford Bunny (69,666 triangles): a
// compact, dense, blobby object — a noise-displaced sphere — floating above
// a small ground plane, viewed from outside. Like the original, almost all
// triangles are small and uniformly sized, concentrated in a ball.
func Bunny() *Scene {
	var tris []vecmath.Triangle
	// 2*nu*nv <= target; leave room for the ground plane (2 tris).
	nu, nv := 186, 186 // 69192 triangles
	center := v(0, 1.2, 0)
	tris = gridSurface(tris, nu, nv, func(u, w float64) vecmath.Vec3 {
		theta := u * 2 * math.Pi
		phi := w * math.Pi
		dir := v(math.Sin(phi)*math.Cos(theta), math.Cos(phi), math.Sin(phi)*math.Sin(theta))
		// Lumpy displacement gives the bunny-like asymmetric blob.
		r := 1.0 +
			0.25*smoothNoise(dir.Scale(2.1)) +
			0.12*smoothNoise(dir.Scale(5.3).Add(v(7, 3, 1))) +
			0.05*smoothNoise(dir.Scale(11.7).Add(v(1, 9, 4)))
		return center.Add(dir.Scale(r))
	})
	tris = quad(tris, v(-4, -0.2, -4), v(4, -0.2, -4), v(4, -0.2, 4), v(-4, -0.2, 4))
	tris = padToCount(tris, BunnyTris)
	return NewStatic("Bunny", tris, View{
		Eye: v(3.2, 2.4, 3.2), LookAt: center, Up: v(0, 1, 0), FOV: 45,
	}, []vecmath.Vec3{v(5, 8, 3), v(-4, 6, -2)})
}

// Sponza builds the stand-in for the Dabrovic Sponza atrium (66,450
// triangles): an open rectangular courtyard with a colonnade, arcade walls
// and a rough floor, viewed from inside — elongated architecture with a
// wide mix of triangle sizes.
func Sponza() *Scene {
	var tris []vecmath.Triangle
	const L, W, H = 24.0, 12.0, 9.0 // courtyard extents

	// Rough stone floor: displaced height field.
	tris = gridSurface(tris, 96, 48, func(u, w float64) vecmath.Vec3 {
		x, z := (u-0.5)*L, (w-0.5)*W
		return v(x, 0.03*smoothNoise(v(x*2, 0, z*2)), z)
	}) // 9216
	// Four walls with a coarse brick relief.
	wall := func(a, b vecmath.Vec3, nu int) {
		dir := b.Sub(a)
		n := v(dir.Z, 0, -dir.X).Normalize() // horizontal normal
		tris = gridSurface(tris, nu, 24, func(u, w float64) vecmath.Vec3 {
			p := a.Add(dir.Scale(u))
			return v(p.X, w*H, p.Z).Add(n.Scale(0.05 * smoothNoise(v(u*40, w*20, p.X+p.Z))))
		})
	}
	wall(v(-L/2, 0, -W/2), v(L/2, 0, -W/2), 72) // 3456
	wall(v(L/2, 0, W/2), v(-L/2, 0, W/2), 72)   // 3456
	wall(v(L/2, 0, -W/2), v(L/2, 0, W/2), 36)   // 1728
	wall(v(-L/2, 0, W/2), v(-L/2, 0, -W/2), 36) // 1728
	// Two rows of columns with plinths and two gallery levels.
	for _, zRow := range []float64{-W / 2 * 0.6, W / 2 * 0.6} {
		for i := 0; i < 10; i++ {
			x := -L/2 + L*(float64(i)+0.5)/10
			tris = cylinder(tris, v(x, 0, zRow), 0.35, 4.0, 48)   // 192 each
			tris = cylinder(tris, v(x, 4.0, zRow), 0.30, 3.0, 48) // upper level
			tris = box(tris, vecmath.NewAABB(v(x-0.55, 0, zRow-0.55), v(x+0.55, 0.25, zRow+0.55)))
			tris = box(tris, vecmath.NewAABB(v(x-0.5, 3.8, zRow-0.5), v(x+0.5, 4.2, zRow+0.5)))
		}
		// Gallery slabs above each colonnade.
		tris = box(tris, vecmath.NewAABB(v(-L/2, 4.1, zRow-0.9), v(L/2, 4.35, zRow+0.9)))
		tris = box(tris, vecmath.NewAABB(v(-L/2, 7.2, zRow-0.9), v(L/2, 7.45, zRow+0.9)))
	}
	// Decorative clutter: vases (small cones) along the galleries.
	for i := 0; i < 40; i++ {
		x := -L/2 + L*(float64(i)+0.5)/40
		z := math.Copysign(W/2*0.6, float64(i%2)*2-1)
		tris = cone(tris, v(x, 4.35, z), 0.12, 0.5, 24)
	}
	tris = padToCount(tris, SponzaTris)
	return NewStatic("Sponza", tris, View{
		Eye: v(-L/2+2, 2.2, 0), LookAt: v(L/2, 3, 0), Up: v(0, 1, 0), FOV: 55,
	}, []vecmath.Vec3{v(0, 8.5, 0), v(-6, 6, 3)})
}

// Sibenik builds the stand-in for the Sibenik cathedral interior (75,284
// triangles): a long vaulted nave with two rows of columns, a barrel
// ceiling, an apse, and the camera placed inside looking down the nave.
func Sibenik() *Scene {
	var tris []vecmath.Triangle
	const L, W, H = 30.0, 10.0, 12.0

	// Floor with worn-stone relief.
	tris = gridSurface(tris, 120, 40, func(u, w float64) vecmath.Vec3 {
		x, z := (u-0.5)*L, (w-0.5)*W
		return v(x, 0.02*smoothNoise(v(x*3, 1, z*3)), z)
	}) // 9600
	// Barrel-vault ceiling with ribbed relief.
	tris = gridSurface(tris, 120, 48, func(u, w float64) vecmath.Vec3 {
		x := (u - 0.5) * L
		a := (w - 0.5) * math.Pi // -pi/2 .. pi/2 across the width
		rib := 0.06 * math.Abs(math.Sin(u*40*math.Pi))
		r := W/2 + rib
		return v(x, H-W/2+r*math.Cos(a), r*math.Sin(a))
	}) // 11520
	// Side walls up to the vault springing.
	for _, side := range []float64{-1, 1} {
		z := side * W / 2
		tris = gridSurface(tris, 90, 30, func(u, w float64) vecmath.Vec3 {
			x := (u - 0.5) * L
			return v(x, w*(H-W/2), z+side*0.04*smoothNoise(v(x*4, w*10, side)))
		}) // 5400 each
	}
	// End walls.
	for _, end := range []float64{-1, 1} {
		x := end * L / 2
		tris = gridSurface(tris, 30, 36, func(u, w float64) vecmath.Vec3 {
			return v(x, w*H, (u-0.5)*W)
		}) // 2160 each
	}
	// Two rows of heavy columns with capitals.
	for _, zRow := range []float64{-W / 2 * 0.55, W / 2 * 0.55} {
		for i := 0; i < 8; i++ {
			x := -L/2 + L*(float64(i)+0.5)/8
			tris = cylinder(tris, v(x, 0, zRow), 0.5, 6.5, 64) // 256 each
			tris = cylinder(tris, v(x, 6.5, zRow), 0.7, 0.6, 32)
			tris = box(tris, vecmath.NewAABB(v(x-0.8, 0, zRow-0.8), v(x+0.8, 0.3, zRow+0.8)))
		}
	}
	// Apse: half-dome of quads at the far end.
	tris = gridSurface(tris, 48, 24, func(u, w float64) vecmath.Vec3 {
		theta := (u - 0.5) * math.Pi // half circle
		phi := w * math.Pi / 2
		r := W / 2 * 0.9
		return v(L/2-0.2+r*math.Cos(phi)*math.Cos(theta)*0.5, 1+r*math.Sin(phi)*0.8, r*math.Cos(phi)*math.Sin(theta))
	}) // 2304
	// Pews: rows of boxes in the nave.
	for i := 0; i < 12; i++ {
		x := -L/2 + 3 + float64(i)*1.6
		for _, side := range []float64{-1, 1} {
			tris = box(tris, vecmath.NewAABB(v(x, 0, side*0.6), v(x+0.9, 0.9, side*3.2)))
		}
	}
	tris = padToCount(tris, SibenikTris)
	return NewStatic("Sibenik", tris, View{
		Eye: v(-L/2+1.5, 2.5, 0), LookAt: v(L/2, 4, 0), Up: v(0, 1, 0), FOV: 60,
	}, []vecmath.Vec3{v(0, H-1.5, 0), v(L/4, 5, 2)})
}

// Toasters builds the stand-in for the Utah "Toasters" animation (11,141
// triangles, 246 frames): a handful of rigid appliance-like bodies hopping
// and circling over a ground plane.
func Toasters() *Scene {
	var parts []Part
	var tris []vecmath.Triangle

	// Ground plane (static part).
	ground := gridSurface(nil, 16, 16, func(u, w float64) vecmath.Vec3 {
		return v((u-0.5)*20, 0, (w-0.5)*20)
	}) // 512
	tris = append(tris, ground...)

	// Four "toasters": rounded boxes with a slot (two side boxes + dome).
	makeToaster := func(scale float64) []vecmath.Triangle {
		var t []vecmath.Triangle
		t = box(t, vecmath.NewAABB(v(-0.8, 0, -0.5).Scale(scale), v(0.8, 0.9, 0.5).Scale(scale)))
		t = box(t, vecmath.NewAABB(v(-0.7, 0.9, -0.45).Scale(scale), v(-0.1, 1.05, 0.45).Scale(scale)))
		t = box(t, vecmath.NewAABB(v(0.1, 0.9, -0.45).Scale(scale), v(0.7, 1.05, 0.45).Scale(scale)))
		t = cylinder(t, v(0.9*scale, 0.3*scale, 0), 0.08*scale, 0.25*scale, 24) // lever
		// Body shell: displaced dome for roundness.
		t = gridSurface(t, 36, 17, func(u, w float64) vecmath.Vec3 {
			theta := u * 2 * math.Pi
			phi := w * math.Pi / 2
			return v(0.85*math.Cos(theta)*math.Cos(phi), 0.9+0.45*math.Sin(phi), 0.55*math.Sin(theta)*math.Cos(phi)).Scale(scale)
		}) // 1224
		return t
	}
	hopPeriod := 41.0
	for ti := 0; ti < 4; ti++ {
		body := makeToaster(0.8 + 0.15*float64(ti))
		start := len(tris)
		tris = append(tris, body...)
		phase := float64(ti) * math.Pi / 2
		radius := 3.0 + float64(ti)
		parts = append(parts, Part{
			Start: start, End: len(tris),
			Motion: func(frame int) vecmath.Mat4 {
				t := float64(frame)
				angle := 2*math.Pi*t/float64(ToastersFrames) + phase
				hop := math.Abs(math.Sin(math.Pi * t / hopPeriod * (1 + phase/10)))
				pos := v(radius*math.Cos(angle), 1.2*hop, radius*math.Sin(angle))
				return vecmath.Translate(pos).MulMat(vecmath.Rotate(vecmath.AxisY, -angle))
			},
		})
	}
	// Pad by densifying the static ground only, then shift part ranges past
	// the inserted triangles.
	tris, shift := padStaticPrefix(tris, len(ground), ToastersTris)
	for i := range parts {
		parts[i].Start += shift
		parts[i].End += shift
	}
	return NewAnimated("Toasters", tris, ToastersFrames, View{
		Eye: v(9, 6, 9), LookAt: v(0, 0.8, 0), Up: v(0, 1, 0), FOV: 45,
	}, []vecmath.Vec3{v(6, 10, 4)}, parts, nil)
}

// WoodDoll builds the stand-in for the Utah "Wood Doll" animation (6,658
// triangles, 29 frames): an articulated figure whose limbs swing around
// their joints.
func WoodDoll() *Scene {
	var tris []vecmath.Triangle
	var parts []Part

	// Ground.
	tris = gridSurface(tris, 8, 8, func(u, w float64) vecmath.Vec3 {
		return v((u-0.5)*8, 0, (w-0.5)*8)
	}) // 128
	groundLen := len(tris)

	addPart := func(body []vecmath.Triangle, motion func(int) vecmath.Mat4) {
		start := len(tris)
		tris = append(tris, body...)
		parts = append(parts, Part{Start: start, End: len(tris), Motion: motion})
	}
	swing := func(axis vecmath.Axis, pivot vecmath.Vec3, amp, phase float64) func(int) vecmath.Mat4 {
		return func(frame int) vecmath.Mat4 {
			a := amp * math.Sin(2*math.Pi*float64(frame)/float64(WoodDollFrames)+phase)
			return vecmath.RotateAround(axis, a, pivot)
		}
	}

	// Torso (static sway) and head.
	torso := cylinder(nil, v(0, 1.0, 0), 0.32, 0.9, 96)                  // 384
	torso = gridSurface(torso, 48, 25, func(u, w float64) vecmath.Vec3 { // head sphere: 2400
		theta := u * 2 * math.Pi
		phi := w * math.Pi
		return v(0.26*math.Sin(phi)*math.Cos(theta), 2.2+0.26*math.Cos(phi), 0.26*math.Sin(phi)*math.Sin(theta))
	})
	addPart(torso, swing(vecmath.AxisZ, v(0, 1.0, 0), 0.08, 0))

	limb := func(c vecmath.Vec3, r, h float64) []vecmath.Triangle {
		seg := cylinder(nil, c, r, h, 56) // 224 per segment
		return seg
	}
	// Arms: upper+forearm each side, swinging in X.
	addPart(limb(v(-0.45, 1.35, 0), 0.09, 0.55), swing(vecmath.AxisX, v(-0.45, 1.9, 0), 0.9, 0))
	addPart(limb(v(-0.45, 0.85, 0), 0.08, 0.5), swing(vecmath.AxisX, v(-0.45, 1.9, 0), 1.2, 0.4))
	addPart(limb(v(0.45, 1.35, 0), 0.09, 0.55), swing(vecmath.AxisX, v(0.45, 1.9, 0), 0.9, math.Pi))
	addPart(limb(v(0.45, 0.85, 0), 0.08, 0.5), swing(vecmath.AxisX, v(0.45, 1.9, 0), 1.2, math.Pi+0.4))
	// Legs.
	addPart(limb(v(-0.18, 0.45, 0), 0.11, 0.55), swing(vecmath.AxisX, v(-0.18, 1.0, 0), 0.7, math.Pi))
	addPart(limb(v(-0.18, 0.0, 0), 0.1, 0.45), swing(vecmath.AxisX, v(-0.18, 1.0, 0), 0.9, math.Pi-0.3))
	addPart(limb(v(0.18, 0.45, 0), 0.11, 0.55), swing(vecmath.AxisX, v(0.18, 1.0, 0), 0.7, 0))
	addPart(limb(v(0.18, 0.0, 0), 0.1, 0.45), swing(vecmath.AxisX, v(0.18, 1.0, 0), 0.9, -0.3))

	tris, shift := padStaticPrefix(tris, groundLen, WoodDollTris)
	for i := range parts {
		parts[i].Start += shift
		parts[i].End += shift
	}
	return NewAnimated("WoodDoll", tris, WoodDollFrames, View{
		Eye: v(2.6, 1.8, 2.6), LookAt: v(0, 1.1, 0), Up: v(0, 1, 0), FOV: 45,
	}, []vecmath.Vec3{v(3, 5, 2)}, parts, nil)
}
