package scene

import (
	"fmt"
	"math"

	"kdtune/internal/vecmath"
)

// FairyForest builds the stand-in for the Utah "Fairy Forest" animation
// (174,117 triangles, 21 frames). The paper positions the camera up close
// to an object so that most of the scene's geometry is occluded and only a
// tiny fraction of triangles is ever hit by rays — the corner case that
// favours the lazy builder. We reproduce that: a large forest of swaying
// trees behind a big mushroom-cap blocker that fills the whole view, plus a
// rigid "fairy" object circling between the trees.
func FairyForest() *Scene {
	var tris []vecmath.Triangle

	// Static geometry first (padding densifies only this prefix).
	// Rolling forest floor.
	tris = gridSurface(tris, 64, 64, func(u, w float64) vecmath.Vec3 {
		x, z := (u-0.5)*80, (w-0.5)*80
		return v(x, 0.6*smoothNoise(v(x*0.15, 0, z*0.15)), z)
	}) // 8192

	// The blocker: a big mushroom cap right in front of the camera.
	capCenter := v(0, 1.0, 6.0)
	tris = gridSurface(tris, 60, 60, func(u, w float64) vecmath.Vec3 {
		theta := u * 2 * math.Pi
		phi := w * math.Pi
		r := 2.0 * (1 + 0.04*smoothNoise(v(u*9, w*7, 3)))
		return capCenter.Add(v(r*math.Sin(phi)*math.Cos(theta), 0.8*r*math.Cos(phi), r*math.Sin(phi)*math.Sin(theta)))
	}) // 7200
	staticLen := len(tris)

	// Rigid fairy: a small sphere that circles behind the blocker.
	fairyStart := len(tris)
	tris = gridSurface(tris, 24, 13, func(u, w float64) vecmath.Vec3 {
		theta := u * 2 * math.Pi
		phi := w * math.Pi
		return v(0.3*math.Sin(phi)*math.Cos(theta), 2.0+0.3*math.Cos(phi), 0.3*math.Sin(phi)*math.Sin(theta))
	}) // 624
	fairyEnd := len(tris)

	// The forest: rings of trees (cone canopy + cylinder trunk) spread over
	// the field behind the blocker.
	treesStart := len(tris)
	const treeCount = 1200
	for i := 0; i < treeCount; i++ {
		// Sunflower-spiral placement for even coverage without an RNG.
		a := float64(i) * 2.39996322972865332 // golden angle
		r := 6 + 32*math.Sqrt(float64(i)/treeCount)
		x, z := r*math.Cos(a), r*math.Sin(a)
		h := 2.5 + 1.5*(0.5+0.5*smoothNoise(v(x*0.3, 0, z*0.3)))
		tris = cone(tris, v(x, h*0.35, z), 0.9, h, 32)     // 64
		tris = cylinder(tris, v(x, 0, z), 0.18, h*0.4, 16) // 64
	}
	treesEnd := len(tris)

	tris, shift := padStaticPrefix(tris, staticLen, FairyForestTris)
	fairyStart += shift
	fairyEnd += shift
	treesStart += shift
	treesEnd += shift

	parts := []Part{{
		Start: fairyStart, End: fairyEnd,
		Motion: func(frame int) vecmath.Mat4 {
			t := 2 * math.Pi * float64(frame) / float64(FairyForestFrames)
			return vecmath.Translate(v(10*math.Cos(t), 0.5+0.4*math.Sin(3*t), 10*math.Sin(t)))
		},
	}}
	deformers := []Deformer{{
		Start: treesStart, End: treesEnd,
		Deform: func(frame int, p vecmath.Vec3) vecmath.Vec3 {
			// Wind sway: lateral displacement growing with height.
			t := 2 * math.Pi * float64(frame) / float64(FairyForestFrames)
			amp := 0.05 * p.Y
			return p.Add(v(amp*math.Sin(t+p.X*0.2), 0, amp*math.Cos(t+p.Z*0.2)))
		},
	}}

	// Camera hard up against the mushroom cap, looking straight into it:
	// the cap fills the view and occludes the forest.
	return NewAnimated("FairyForest", tris, FairyForestFrames, View{
		Eye: v(0, 1.0, 3.2), LookAt: capCenter, Up: v(0, 1, 0), FOV: 45,
	}, []vecmath.Vec3{v(0, 12, -6), v(8, 6, 10)}, parts, deformers)
}

// All returns the six evaluation scenes in the paper's order (Figure 3):
// the static Bunny, Sponza and Sibenik, then the dynamic Toasters, Wood
// Doll and Fairy Forest.
func All() []*Scene {
	return []*Scene{Bunny(), Sponza(), Sibenik(), Toasters(), WoodDoll(), FairyForest()}
}

// Names lists the scene names in the same order as All, without building
// the geometry.
func Names() []string {
	return []string{"Bunny", "Sponza", "Sibenik", "Toasters", "WoodDoll", "FairyForest"}
}

// ByName builds the named scene (case-sensitive, as listed by Names).
func ByName(name string) (*Scene, error) {
	switch name {
	case "Bunny":
		return Bunny(), nil
	case "Sponza":
		return Sponza(), nil
	case "Sibenik":
		return Sibenik(), nil
	case "Toasters":
		return Toasters(), nil
	case "WoodDoll":
		return WoodDoll(), nil
	case "FairyForest":
		return FairyForest(), nil
	}
	return nil, fmt.Errorf("scene: unknown scene %q (have %v)", name, Names())
}
