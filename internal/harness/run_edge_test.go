package harness

import (
	"math"
	"testing"
	"time"

	"kdtune/internal/kdtree"
)

func framesWithTotals(totals ...time.Duration) []FrameRecord {
	out := make([]FrameRecord, len(totals))
	for i, d := range totals {
		out[i] = FrameRecord{Iteration: i, Total: d}
	}
	return out
}

func TestSteadyStateTimeEdges(t *testing.T) {
	cases := []struct {
		name   string
		totals []time.Duration
		want   time.Duration
	}{
		{"empty run", nil, 0},
		{"single frame", []time.Duration{7 * time.Millisecond}, 7 * time.Millisecond},
		{"two frames keeps tail only", []time.Duration{100 * time.Millisecond, 4 * time.Millisecond},
			4 * time.Millisecond},
		{"three frames drops first two thirds",
			[]time.Duration{90 * time.Millisecond, 80 * time.Millisecond, 5 * time.Millisecond},
			5 * time.Millisecond},
		{"median of tail is outlier robust",
			[]time.Duration{
				50 * time.Millisecond, 50 * time.Millisecond, 50 * time.Millisecond, 50 * time.Millisecond,
				2 * time.Millisecond, 3 * time.Millisecond, 400 * time.Millisecond,
			},
			3 * time.Millisecond},
		{"zero durations stay zero", []time.Duration{0, 0, 0}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &RunResult{Frames: framesWithTotals(tc.totals...)}
			if got := r.SteadyStateTime(); got != tc.want {
				t.Errorf("SteadyStateTime() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSpeedupTraceEdges(t *testing.T) {
	cases := []struct {
		name   string
		totals []time.Duration
		base   time.Duration
		want   []float64
	}{
		{"empty run yields empty trace", nil, time.Second, []float64{}},
		{"single frame", []time.Duration{50 * time.Millisecond}, 100 * time.Millisecond, []float64{2}},
		{"zero frame time maps to zero not Inf",
			[]time.Duration{0, 25 * time.Millisecond}, 50 * time.Millisecond, []float64{0, 2}},
		{"zero base gives zero speedups",
			[]time.Duration{10 * time.Millisecond, 20 * time.Millisecond}, 0, []float64{0, 0}},
		{"slowdown is fractional",
			[]time.Duration{40 * time.Millisecond}, 10 * time.Millisecond, []float64{0.25}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &RunResult{Frames: framesWithTotals(tc.totals...)}
			got := r.SpeedupTrace(tc.base)
			if len(got) != len(tc.want) {
				t.Fatalf("trace length %d, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if math.Abs(got[i]-tc.want[i]) > 1e-12 || math.IsInf(got[i], 0) || math.IsNaN(got[i]) {
					t.Errorf("trace[%d] = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestBestConfigEdges(t *testing.T) {
	cases := []struct {
		name string
		res  RunResult
		want kdtree.Config
	}{
		{
			"zero-value result yields zero parameters",
			RunResult{},
			kdtree.Config{},
		},
		{
			"best parameters and run identity are carried over",
			RunResult{
				Config: RunConfig{Algorithm: kdtree.AlgoLazy, Workers: 3},
				BestCI: 42, BestCB: 7, BestS: 5, BestR: 1024,
			},
			kdtree.Config{Algorithm: kdtree.AlgoLazy, CI: 42, CB: 7, S: 5, R: 1024, Workers: 3},
		},
		{
			"frames and convergence metadata do not leak into the config",
			RunResult{
				Config:      RunConfig{Algorithm: kdtree.AlgoNested},
				Frames:      framesWithTotals(time.Millisecond),
				ConvergedAt: 17, Restarts: 2,
				BestCI: CIMin, BestCB: CBMax, BestS: SMin, BestR: RMax,
			},
			kdtree.Config{Algorithm: kdtree.AlgoNested, CI: CIMin, CB: CBMax, S: SMin, R: RMax},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.res.BestConfig(); got != tc.want {
				t.Errorf("BestConfig() = %+v, want %+v", got, tc.want)
			}
		})
	}
}
