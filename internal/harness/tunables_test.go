package harness

import (
	"math/rand"
	"slices"
	"testing"

	"kdtune/internal/kdtree"
	"kdtune/internal/render"
)

// TestFramesDeterministicAcrossWorkersForRandomVectors is the frame-level
// half of the PR 8 determinism property: for any fixed tunable vector —
// including the render-side packet width and tile size — the rendered
// pixels must be bitwise identical for every worker count. The build-side
// half (tree identity) lives in internal/kdtree.
func TestFramesDeterministicAcrossWorkersForRandomVectors(t *testing.T) {
	r := rand.New(rand.NewSource(811))
	sc := tinyScene()
	tris := sc.Triangles(0)
	vectors := 3
	if testing.Short() {
		vectors = 1
	}
	for i := 0; i < vectors; i++ {
		vars := TunedVars{
			CI: 3 + r.Intn(99), CB: r.Intn(61), S: 1 + r.Intn(8), R: 16 << r.Intn(10),
			Bins: 8 << r.Intn(5), ScatterGrain: 256 << r.Intn(9),
			BinGrain: 512 << r.Intn(7), SplitBias: r.Intn(4),
			PacketWidth: 1 << r.Intn(5), TileSize: 8 << r.Intn(4),
		}
		rc := RunConfig{Scene: sc, Algorithm: kdtree.AlgoInPlace, Workers: 1}

		cfg := vars.buildConfig(rc)
		tree := kdtree.Build(tris, cfg)
		want, _ := render.Render(tree, sc.View, sc.Lights, render.Options{
			Width: 48, Height: 36, Workers: 1,
			PacketWidth: vars.PacketWidth, TileSize: vars.TileSize,
		})
		for _, w := range []int{2, 3 + r.Intn(6)} {
			cfgW := cfg
			cfgW.Workers = w
			treeW := kdtree.Build(tris, cfgW)
			got, _ := render.Render(treeW, sc.View, sc.Lights, render.Options{
				Width: 48, Height: 36, Workers: w,
				PacketWidth: vars.PacketWidth, TileSize: vars.TileSize,
			})
			if !slices.Equal(want.Pix, got.Pix) {
				t.Fatalf("vector %+v workers=%d: frame differs from workers=1", vars, w)
			}
		}
	}
}

// TestRunReportsFullNamedVector pins the report shape the registry refactor
// exists for: a finished run names every registered dimension and carries a
// complete name-keyed tuned vector, and the legacy Best* fields are
// projections of that map, not an independent code path.
func TestRunReportsFullNamedVector(t *testing.T) {
	res := Run(RunConfig{
		Scene: tinyScene(), Algorithm: kdtree.AlgoInPlace,
		Search: SearchNelderMead, Workers: 2,
		Width: 24, Height: 18, MaxIterations: 6, Seed: 5,
	})
	wantNames := []string{"CI", "CB", "S", "B", "G", "GB", "SB", "P", "T"}
	if !slices.Equal(res.ParamNames, wantNames) {
		t.Fatalf("ParamNames = %v, want %v (in-place: no R)", res.ParamNames, wantNames)
	}
	for _, name := range wantNames {
		if _, ok := res.TunedParams[name]; !ok {
			t.Errorf("TunedParams missing %q: %v", name, res.TunedParams)
		}
	}
	if got, want := res.BestCI, res.TunedParams["CI"]; got != want {
		t.Errorf("BestCI = %d, want TunedParams[CI] = %d", got, want)
	}
	if got, want := res.BestP, res.TunedParams["P"]; got != want {
		t.Errorf("BestP = %d, want TunedParams[P] = %d", got, want)
	}
	for _, f := range res.Frames {
		if len(f.Params) != len(res.ParamNames) {
			t.Fatalf("frame %d records %d params, want %d", f.Iteration, len(f.Params), len(res.ParamNames))
		}
	}
	cfg := res.BestConfig()
	if cfg.Bins != res.TunedParams["B"] || cfg.ScatterGrain != res.TunedParams["G"] ||
		cfg.BinGrain != res.TunedParams["GB"] || cfg.SplitBias != res.TunedParams["SB"] {
		t.Errorf("BestConfig scheduling fields %+v do not match TunedParams %v", cfg, res.TunedParams)
	}
}

// TestRunLazyRegistersR: the lazy builder's suspend threshold R joins the
// tree registry, and it must sit between S and B so the exhaustive walk's
// positional strides keep their documented (CI, CB, S, R) meaning.
func TestRunLazyRegistersR(t *testing.T) {
	res := Run(RunConfig{
		Scene: tinyScene(), Algorithm: kdtree.AlgoLazy,
		Search: SearchFixed, Workers: 2,
		Width: 24, Height: 18, MaxIterations: 2,
	})
	wantNames := []string{"CI", "CB", "S", "R", "B", "G", "GB", "SB", "P", "T"}
	if !slices.Equal(res.ParamNames, wantNames) {
		t.Fatalf("ParamNames = %v, want %v", res.ParamNames, wantNames)
	}
	if _, ok := res.TunedParams["R"]; !ok {
		t.Errorf("lazy run's TunedParams missing R: %v", res.TunedParams)
	}
}
