package harness

import (
	"fmt"
	"io"
	"time"

	"kdtune/internal/kdtree"
	"kdtune/internal/scene"
)

// Opts are the shared experiment knobs. The defaults reproduce the paper's
// protocol scaled to one machine; tests and benchmarks shrink Repeats,
// resolution and iteration budgets (the shapes survive scaling, the wall
// clock does not).
type Opts struct {
	Workers       int
	Width, Height int
	Repeats       int // paper: 15 per scene (150 measurement repeats in §V-D4)
	MaxIterations int
	BaseFrames    int       // frames measured for the fixed base config
	Seed          int64     // base RNG seed; repeat i uses Seed+i
	Progress      io.Writer // optional progress log
}

func (o Opts) normalize() Opts {
	if o.Width <= 0 {
		o.Width = 192
	}
	if o.Height <= 0 {
		o.Height = o.Width * 3 / 4
	}
	if o.Repeats <= 0 {
		o.Repeats = 15
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 150
	}
	if o.BaseFrames <= 0 {
		o.BaseFrames = 9
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Opts) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// SpeedupCell is one (scene, algorithm) measurement: the data behind both
// Figure 5 (absolute times) and Figure 6 (speedups).
type SpeedupCell struct {
	Scene                            string
	Algorithm                        kdtree.Algorithm
	Base                             time.Duration // median frame time, base configuration
	Tuned                            time.Duration // median steady-state frame time after tuning
	TunedCI, TunedCB, TunedS, TunedR int
	ConvergedAt                      int
}

// Speedup returns base/tuned.
func (c SpeedupCell) Speedup() float64 {
	if c.Tuned == 0 {
		return 0
	}
	return float64(c.Base) / float64(c.Tuned)
}

// SpeedupExperiment measures base vs tuned frame time for every requested
// scene and algorithm. It backs Figures 5 and 6.
func SpeedupExperiment(sceneNames []string, algos []kdtree.Algorithm, o Opts) ([]SpeedupCell, error) {
	o = o.normalize()
	var out []SpeedupCell
	for _, name := range sceneNames {
		sc, err := scene.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, algo := range algos {
			rc := RunConfig{
				Scene: sc, Algorithm: algo, Workers: o.Workers,
				Width: o.Width, Height: o.Height,
				MaxIterations: o.MaxIterations, Seed: o.Seed,
			}
			base := MeasureFixed(rc, o.BaseFrames)

			rcNM := rc
			rcNM.Search = SearchNelderMead
			res := Run(rcNM)

			// The paper's speedup compares m_a(C_tuned) against
			// m_a(C_base): re-measure the tuned configuration under the
			// same fixed protocol as the base, so exploration frames and
			// lucky-noise incumbent selection cannot contaminate the
			// numerator.
			tuned := MeasureFixed(RunConfig{
				Scene: rc.Scene, Algorithm: algo, Workers: rc.Workers,
				Width: rc.Width, Height: rc.Height,
				Base: res.BestConfig(),
			}, o.BaseFrames)

			cell := SpeedupCell{
				Scene: name, Algorithm: algo,
				Base: base, Tuned: tuned,
				TunedCI: res.BestCI, TunedCB: res.BestCB, TunedS: res.BestS, TunedR: res.BestR,
				ConvergedAt: res.ConvergedAt,
			}
			out = append(out, cell)
			o.logf("%-12s %-10s base %8s tuned %8s speedup %.2fx (conv @%d, C=(%d,%d,%d,%d))",
				name, algo, base.Round(time.Millisecond), cell.Tuned.Round(time.Millisecond),
				cell.Speedup(), cell.ConvergedAt, cell.TunedCI, cell.TunedCB, cell.TunedS, cell.TunedR)
		}
	}
	return out, nil
}

// PrintFigure5 renders the absolute-time comparison of Figure 5.
func PrintFigure5(w io.Writer, cells []SpeedupCell) {
	fmt.Fprintln(w, "Figure 5: absolute frame time, base configuration vs tuned")
	fmt.Fprintf(w, "%-12s %-10s %12s %12s %8s\n", "scene", "algorithm", "base", "tuned", "speedup")
	for _, c := range cells {
		fmt.Fprintf(w, "%-12s %-10s %12s %12s %7.2fx\n",
			c.Scene, c.Algorithm, c.Base.Round(100*time.Microsecond),
			c.Tuned.Round(100*time.Microsecond), c.Speedup())
	}
}

// PrintFigure6 renders the speedup matrix of Figure 6 (scenes x algorithms).
func PrintFigure6(w io.Writer, cells []SpeedupCell) {
	fmt.Fprintln(w, "Figure 6: speedup of the tuned algorithms over their base configurations")
	byScene := map[string]map[kdtree.Algorithm]SpeedupCell{}
	var order []string
	for _, c := range cells {
		if byScene[c.Scene] == nil {
			byScene[c.Scene] = map[kdtree.Algorithm]SpeedupCell{}
			order = append(order, c.Scene)
		}
		byScene[c.Scene][c.Algorithm] = c
	}
	fmt.Fprintf(w, "%-12s", "scene")
	for _, a := range kdtree.Algorithms {
		fmt.Fprintf(w, " %10s", a)
	}
	fmt.Fprintln(w)
	for _, name := range order {
		fmt.Fprintf(w, "%-12s", name)
		for _, a := range kdtree.Algorithms {
			if c, ok := byScene[name][a]; ok {
				fmt.Fprintf(w, " %9.2fx", c.Speedup())
			} else {
				fmt.Fprintf(w, " %10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// ParamDistribution is the Figure 7 statistic: the distribution of one
// tuned parameter over repeated tuning runs, normalised to [0, 100].
type ParamDistribution struct {
	Label   string // scene or platform name
	Param   string // CI, CB, S, R
	Summary Summary
}

// TunedDistribution repeats the tuning run `o.Repeats` times per scene for
// the given algorithm and reports the normalised distribution of each tuned
// parameter (Figures 7a and 7b; the paper uses the in-place algorithm).
func TunedDistribution(sceneNames []string, algo kdtree.Algorithm, o Opts) ([]ParamDistribution, error) {
	o = o.normalize()
	var out []ParamDistribution
	for _, name := range sceneNames {
		sc, err := scene.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, distributionForScene(sc, name, algo, o.Workers, o)...)
	}
	return out, nil
}

// TunedDistributionPlatforms is Figure 7c: the Sibenik scene tuned on each
// simulated hardware platform.
func TunedDistributionPlatforms(sceneName string, algo kdtree.Algorithm, o Opts) ([]ParamDistribution, error) {
	o = o.normalize()
	sc, err := scene.ByName(sceneName)
	if err != nil {
		return nil, err
	}
	var out []ParamDistribution
	for _, p := range Platforms() {
		out = append(out, distributionForScene(sc, p.Name, algo, p.Threads, o)...)
	}
	return out, nil
}

func distributionForScene(sc *scene.Scene, label string, algo kdtree.Algorithm, workers int, o Opts) []ParamDistribution {
	var cis, cbs, ss, rs []float64
	for rep := 0; rep < o.Repeats; rep++ {
		res := Run(RunConfig{
			Scene: sc, Algorithm: algo, Search: SearchNelderMead,
			Workers: workers, Width: o.Width, Height: o.Height,
			MaxIterations: o.MaxIterations, Seed: o.Seed + int64(rep),
		})
		cis = append(cis, Normalize01(float64(res.BestCI), CIMin, CIMax))
		cbs = append(cbs, Normalize01(float64(res.BestCB), CBMin, CBMax))
		ss = append(ss, Normalize01(float64(res.BestS), SMin, SMax))
		rs = append(rs, NormalizeLog2(float64(res.BestR), RMin, RMax))
		o.logf("fig7 %-16s rep %2d -> C=(%d,%d,%d,%d)", label, rep, res.BestCI, res.BestCB, res.BestS, res.BestR)
	}
	out := []ParamDistribution{
		{Label: label, Param: "CI", Summary: Summarize(cis)},
		{Label: label, Param: "CB", Summary: Summarize(cbs)},
		{Label: label, Param: "S", Summary: Summarize(ss)},
	}
	if algo.HasR() {
		out = append(out, ParamDistribution{Label: label, Param: "R", Summary: Summarize(rs)})
	}
	return out
}

// PrintFigure7 renders boxplot rows.
func PrintFigure7(w io.Writer, title string, dists []ParamDistribution) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-16s %-4s %s\n", "label", "prm", "normalized distribution [0,100]")
	for _, d := range dists {
		fmt.Fprintf(w, "%-16s %-4s %s\n", d.Label, d.Param, d.Summary)
	}
}

// ConvergencePoint is one step of the Figure 8 curve.
type ConvergencePoint struct {
	Iteration   int
	MeanSpeedup float64
}

// ConvergenceTrace repeats the tuning run and averages, per iteration, the
// speedup of the measured frame over the base configuration — Figure 8.
func ConvergenceTrace(sceneName string, algo kdtree.Algorithm, o Opts) ([]ConvergencePoint, error) {
	o = o.normalize()
	sc, err := scene.ByName(sceneName)
	if err != nil {
		return nil, err
	}
	rc := RunConfig{
		Scene: sc, Algorithm: algo, Workers: o.Workers,
		Width: o.Width, Height: o.Height, MaxIterations: o.MaxIterations,
	}
	base := MeasureFixed(rc, o.BaseFrames)

	sums := make([]float64, o.MaxIterations)
	counts := make([]int, o.MaxIterations)
	for rep := 0; rep < o.Repeats; rep++ {
		rc.Search = SearchNelderMead
		rc.Seed = o.Seed + int64(rep)
		res := Run(rc)
		for i, s := range res.SpeedupTrace(base) {
			sums[i] += s
			counts[i]++
		}
		o.logf("fig8 %-10s rep %2d: %d frames", sceneName, rep, len(res.Frames))
	}
	var out []ConvergencePoint
	for i := range sums {
		if counts[i] > 0 {
			out = append(out, ConvergencePoint{Iteration: i, MeanSpeedup: sums[i] / float64(counts[i])})
		}
	}
	return out, nil
}

// PrintFigure8 renders the convergence curve as text.
func PrintFigure8(w io.Writer, sceneName string, pts []ConvergencePoint) {
	fmt.Fprintf(w, "Figure 8: mean speedup over time, %s\n", sceneName)
	for _, p := range pts {
		bar := int(p.MeanSpeedup * 20)
		if bar < 0 {
			bar = 0
		}
		if bar > 60 {
			bar = 60
		}
		fmt.Fprintf(w, "iter %3d  %5.2fx |%s\n", p.Iteration, p.MeanSpeedup, bars[:bar])
	}
}

const bars = "############################################################"

// SearchComparison is one algorithm's Figure 9 panel: frame-time
// distributions under the default configuration, Nelder–Mead tuned
// configurations, and the exhaustive-search optimum.
type SearchComparison struct {
	Algorithm  kdtree.Algorithm
	Default    Summary // seconds
	NelderMead Summary
	Exhaustive Summary
	GridSize   int
}

// CompareSearches reproduces §V-D4 on one scene: for each algorithm it
// measures the frame-time distribution of (a) the default configuration,
// (b) configurations found by repeated Nelder–Mead runs, and (c) the best
// configuration of a (strided) exhaustive grid walk.
func CompareSearches(sceneName string, algos []kdtree.Algorithm, strides []int, o Opts) ([]SearchComparison, error) {
	o = o.normalize()
	sc, err := scene.ByName(sceneName)
	if err != nil {
		return nil, err
	}
	var out []SearchComparison
	for _, algo := range algos {
		rc := RunConfig{
			Scene: sc, Algorithm: algo, Workers: o.Workers,
			Width: o.Width, Height: o.Height, MaxIterations: o.MaxIterations,
		}

		// (a) default configuration distribution.
		defTimes := measureConfigTimes(rc, kdtree.BaseConfig(algo), o.BaseFrames)

		// (b) repeated NM optimisations; each contributes its steady-state
		// frame time.
		var nmTimes []float64
		for rep := 0; rep < o.Repeats; rep++ {
			rcNM := rc
			rcNM.Search = SearchNelderMead
			rcNM.Seed = o.Seed + int64(rep)
			res := Run(rcNM)
			// Re-measure the found configuration under the fixed protocol
			// (see SpeedupExperiment for why).
			times := measureConfigTimes(rc, res.BestConfig(), o.BaseFrames)
			med := Summarize(times).Median
			nmTimes = append(nmTimes, med)
			o.logf("fig9 %-10s NM rep %2d -> %.4fs", algo, rep, med)
		}

		// (c) exhaustive walk, then measure its optimum.
		rcEx := rc
		rcEx.Search = SearchExhaustive
		rcEx.ExhaustiveStrides = strides
		rcEx.MaxIterations = 1 << 30 // bounded by the grid size below
		ex := newExhaustiveRun(rcEx, o)
		exTimes := measureConfigTimes(rc, ex, o.BaseFrames)
		o.logf("fig9 %-10s exhaustive best C=(%v,%v,%v,%v)", algo, ex.CI, ex.CB, ex.S, ex.R)

		out = append(out, SearchComparison{
			Algorithm:  algo,
			Default:    Summarize(defTimes),
			NelderMead: Summarize(nmTimes),
			Exhaustive: Summarize(exTimes),
		})
	}
	return out, nil
}

// newExhaustiveRun walks the (strided) grid once and returns the best
// configuration found.
func newExhaustiveRun(rc RunConfig, o Opts) kdtree.Config {
	res := Run(rc)
	return kdtree.Config{
		Algorithm: rc.Algorithm,
		CI:        float64(res.BestCI),
		CB:        float64(res.BestCB),
		S:         res.BestS,
		R:         res.BestR,
	}
}

// measureConfigTimes measures `frames` frame times under a fixed config.
func measureConfigTimes(rc RunConfig, cfg kdtree.Config, frames int) []float64 {
	rc.Search = SearchFixed
	rc.Base = cfg
	rc.MaxIterations = frames
	res := Run(rc)
	out := make([]float64, len(res.Frames))
	for i, f := range res.Frames {
		out[i] = f.Total.Seconds()
	}
	return out
}

// PrintFigure9 renders the search comparison.
func PrintFigure9(w io.Writer, sceneName string, cmps []SearchComparison) {
	fmt.Fprintf(w, "Figure 9: Nelder-Mead vs exhaustive search vs default, %s (seconds)\n", sceneName)
	for _, c := range cmps {
		fmt.Fprintf(w, "%s:\n", c.Algorithm)
		fmt.Fprintf(w, "  default     %s\n", c.Default)
		fmt.Fprintf(w, "  nelder-mead %s\n", c.NelderMead)
		fmt.Fprintf(w, "  exhaustive  %s\n", c.Exhaustive)
	}
}

// PrintTableI lists the tunable parameters per algorithm (Table I).
func PrintTableI(w io.Writer) {
	fmt.Fprintln(w, "Table I: tunable parameters of the four implementations")
	fmt.Fprintln(w, "(a) node-level, nested and in-place:")
	fmt.Fprintln(w, "    CI  cost for intersecting a triangle")
	fmt.Fprintln(w, "    CB  cost for duplication of a primitive")
	fmt.Fprintln(w, "    S   max. number of subtrees per thread")
	fmt.Fprintln(w, "(b) lazy construction: all of the above plus")
	fmt.Fprintln(w, "    R   minimal resolution of a node")
}

// PrintTableII lists the tuning ranges (Table II).
func PrintTableII(w io.Writer) {
	fmt.Fprintln(w, "Table II: tuning parameter ranges")
	fmt.Fprintf(w, "    CI  [%d, %d]\n", CIMin, CIMax)
	fmt.Fprintf(w, "    CB  [%d, %d]\n", CBMin, CBMax)
	fmt.Fprintf(w, "    S   [%d, %d]\n", SMin, SMax)
	fmt.Fprintf(w, "    R   [%d, %d] (limited to powers of 2)\n", RMin, RMax)
}
