package harness

import (
	"math"
	"strings"
	"testing"
	"time"

	"kdtune/internal/kdtree"
)

func TestRunConfigValidate(t *testing.T) {
	ok := func(mut func(*RunConfig)) RunConfig {
		rc := RunConfig{Scene: tinyScene(), Algorithm: kdtree.AlgoInPlace}
		if mut != nil {
			mut(&rc)
		}
		return rc
	}
	cases := []struct {
		name    string
		rc      RunConfig
		wantErr []string // substrings that must all appear; empty = valid
	}{
		{"minimal", ok(nil), nil},
		{"full", ok(func(rc *RunConfig) {
			rc.Width, rc.Height = 1920, 1080
			rc.MaxIterations, rc.PostConverge = 200, 20
			rc.RetuneThreshold, rc.RetuneWindow = 1.5, 5
			rc.DeadlineFactor = 10
			rc.BuildGuard = kdtree.Guard{Deadline: time.Second, MaxDepth: 64, MaxArenaBytes: 1 << 30}
		}), nil},
		{"zero defaults pass", ok(func(rc *RunConfig) {
			rc.Width, rc.Height, rc.MaxIterations = 0, 0, 0
		}), nil},

		{"nil scene", RunConfig{}, []string{"Scene is nil"}},
		{"negative width", ok(func(rc *RunConfig) { rc.Width = -1 }), []string{"Width -1"}},
		{"absurd height", ok(func(rc *RunConfig) { rc.Height = 1 << 20 }), []string{"Height"}},
		{"negative iterations", ok(func(rc *RunConfig) { rc.MaxIterations = -5 }), []string{"MaxIterations"}},
		{"negative post-converge", ok(func(rc *RunConfig) { rc.PostConverge = -1 }), []string{"PostConverge"}},
		{"negative repeat", ok(func(rc *RunConfig) { rc.RepeatFrames = -1 }), []string{"RepeatFrames"}},
		{"nan retune", ok(func(rc *RunConfig) { rc.RetuneThreshold = math.NaN() }), []string{"RetuneThreshold"}},
		{"negative retune window", ok(func(rc *RunConfig) { rc.RetuneWindow = -2 }), []string{"RetuneWindow"}},
		{"nan deadline factor", ok(func(rc *RunConfig) { rc.DeadlineFactor = math.NaN() }), []string{"DeadlineFactor"}},
		{"inf deadline factor", ok(func(rc *RunConfig) { rc.DeadlineFactor = math.Inf(1) }), []string{"DeadlineFactor"}},
		{"negative deadline factor", ok(func(rc *RunConfig) { rc.DeadlineFactor = -1 }), []string{"DeadlineFactor"}},
		{"negative guard deadline", ok(func(rc *RunConfig) { rc.BuildGuard.Deadline = -time.Second }), []string{"BuildGuard.Deadline"}},
		{"negative guard depth", ok(func(rc *RunConfig) { rc.BuildGuard.MaxDepth = -1 }), []string{"BuildGuard.MaxDepth"}},
		{"negative guard bytes", ok(func(rc *RunConfig) { rc.BuildGuard.MaxArenaBytes = -1 }), []string{"BuildGuard.MaxArenaBytes"}},
		{"hostile base config", ok(func(rc *RunConfig) { rc.Base = kdtree.Config{CI: math.NaN()} }), []string{"CI"}},
		{"multi-error", RunConfig{Width: -1, DeadlineFactor: math.NaN()},
			[]string{"Scene is nil", "Width -1", "DeadlineFactor"}},
	}
	for _, tc := range cases {
		err := tc.rc.Validate()
		if len(tc.wantErr) == 0 {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: no error, want mentions of %v", tc.name, tc.wantErr)
			continue
		}
		for _, want := range tc.wantErr {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q missing %q", tc.name, err, want)
			}
		}
	}
}

func TestRunPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("Run accepted a nil-scene config")
		}
		if err, isErr := r.(error); !isErr || !strings.Contains(err.Error(), "Scene is nil") {
			t.Fatalf("panic value %v does not explain the misconfiguration", r)
		}
	}()
	Run(RunConfig{})
}

// TestRunGuardedCleanPathNoAborts: arming the watchdog and static guard on a
// healthy run must not change behaviour — no aborts, no fallbacks, and the
// frame loop completes.
func TestRunGuardedCleanPathNoAborts(t *testing.T) {
	res := Run(RunConfig{
		Scene: tinyScene(), Algorithm: kdtree.AlgoInPlace,
		Search: SearchNelderMead, Workers: 2, Width: 24, Height: 18,
		MaxIterations: 8, Seed: 3,
		DeadlineFactor: 1000, // generous: no healthy probe can trip it
		BuildGuard:     kdtree.Guard{MaxDepth: 64, MaxArenaBytes: 1 << 30},
	})
	if res.AbortedBuilds != 0 || res.FallbackFrames != 0 {
		t.Fatalf("healthy guarded run reported aborts: %+v", res)
	}
	if len(res.Frames) != 8 {
		t.Fatalf("recorded %d frames, want 8", len(res.Frames))
	}
	for _, f := range res.Frames {
		if f.Aborted {
			t.Fatalf("healthy frame flagged aborted: %+v", f)
		}
	}
}
