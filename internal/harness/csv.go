package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV export of experiment results, so the figures can be re-plotted with
// external tooling without re-running the (expensive) measurements.

// WriteSpeedupCSV dumps Figure 5/6 cells: one row per (scene, algorithm).
func WriteSpeedupCSV(w io.Writer, cells []SpeedupCell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"scene", "algorithm", "base_seconds", "tuned_seconds", "speedup",
		"tuned_ci", "tuned_cb", "tuned_s", "tuned_r", "converged_at",
	}); err != nil {
		return err
	}
	for _, c := range cells {
		err := cw.Write([]string{
			c.Scene, c.Algorithm.String(),
			fmt.Sprintf("%.6f", c.Base.Seconds()),
			fmt.Sprintf("%.6f", c.Tuned.Seconds()),
			fmt.Sprintf("%.4f", c.Speedup()),
			strconv.Itoa(c.TunedCI), strconv.Itoa(c.TunedCB),
			strconv.Itoa(c.TunedS), strconv.Itoa(c.TunedR),
			strconv.Itoa(c.ConvergedAt),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDistributionCSV dumps Figure 7 box summaries.
func WriteDistributionCSV(w io.Writer, dists []ParamDistribution) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"label", "param", "min", "q1", "median", "q3", "max", "mean", "n"}); err != nil {
		return err
	}
	for _, d := range dists {
		s := d.Summary
		err := cw.Write([]string{
			d.Label, d.Param,
			fmt.Sprintf("%.4f", s.Min), fmt.Sprintf("%.4f", s.Q1),
			fmt.Sprintf("%.4f", s.Median), fmt.Sprintf("%.4f", s.Q3),
			fmt.Sprintf("%.4f", s.Max), fmt.Sprintf("%.4f", s.Mean),
			strconv.Itoa(s.N),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteConvergenceCSV dumps a Figure 8 curve.
func WriteConvergenceCSV(w io.Writer, pts []ConvergencePoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"iteration", "mean_speedup"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{strconv.Itoa(p.Iteration), fmt.Sprintf("%.4f", p.MeanSpeedup)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFramesCSV dumps the raw per-frame trace of a run, the most granular
// experiment artefact (configuration under test + timings per cycle).
func WriteFramesCSV(w io.Writer, frames []FrameRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"iteration", "frame", "ci", "cb", "s", "r",
		"build_seconds", "render_seconds", "total_seconds",
	}); err != nil {
		return err
	}
	for _, f := range frames {
		err := cw.Write([]string{
			strconv.Itoa(f.Iteration), strconv.Itoa(f.FrameIndex),
			strconv.Itoa(f.CI), strconv.Itoa(f.CB), strconv.Itoa(f.S), strconv.Itoa(f.R),
			fmt.Sprintf("%.6f", f.Build.Seconds()),
			fmt.Sprintf("%.6f", f.Render.Seconds()),
			fmt.Sprintf("%.6f", f.Total.Seconds()),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
