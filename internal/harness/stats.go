// Package harness drives the paper's evaluation (§V): the ray-caster tuning
// workflow of Figure 4, and one experiment driver per table and figure of
// the paper, each returning structured results plus a text formatter that
// prints the same rows/series the paper reports.
package harness

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary is a five-number box-plot summary (plus mean), the statistic
// behind the paper's Figures 7 and 9.
type Summary struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// Summarize computes the five-number summary of xs (which it sorts in
// place). Quartiles use linear interpolation between order statistics.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sort.Float64s(xs)
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	return Summary{
		Min: xs[0], Q1: Percentile(xs, 0.25), Median: Percentile(xs, 0.5),
		Q3: Percentile(xs, 0.75), Max: xs[len(xs)-1],
		Mean: mean, N: len(xs),
	}
}

// Percentile returns the p-quantile (p in [0, 1]) of an ascending-sorted
// sample using linear interpolation between order statistics — the same
// estimator Summarize's quartiles use. It is the one percentile definition
// shared by the bench statistics, the serve-layer latency metrics, and the
// soak driver's assertions, so "p99" means the same number everywhere.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PercentileDuration returns the p-quantile of a duration sample (sorting a
// copy; the input is untouched).
func PercentileDuration(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	sort.Float64s(xs)
	return time.Duration(Percentile(xs, p))
}

// String renders the summary as "min/q1/med/q3/max".
func (s Summary) String() string {
	return fmt.Sprintf("min %.4g | q1 %.4g | med %.4g | q3 %.4g | max %.4g (n=%d)",
		s.Min, s.Q1, s.Median, s.Q3, s.Max, s.N)
}

// Normalize01 linearly maps v from [lo, hi] to [0, 100], the scale used in
// Figure 7 ("parameter ranges have been normalized to [0, 100]").
func Normalize01(v, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	return 100 * (v - lo) / (hi - lo)
}

// NormalizeLog2 maps a power-of-two value from [lo, hi] to [0, 100] on a
// log2 scale, appropriate for the R parameter whose grid is exponential.
func NormalizeLog2(v, lo, hi float64) float64 {
	if v <= 0 || hi <= lo || lo <= 0 {
		return 0
	}
	return 100 * (math.Log2(v) - math.Log2(lo)) / (math.Log2(hi) - math.Log2(lo))
}

// MedianDuration returns the median of a duration slice (sorting a copy).
func MedianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), ds...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[len(cp)/2]
}
