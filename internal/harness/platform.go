package harness

// Platform models one of the paper's evaluation machines by its hardware
// thread count (§V-C). On a single host the parallelism budget is the
// dominant platform knob the tuner reacts to (it shapes the optimal S, and
// indirectly CI/CB via changed build/render balance), so Figure 7c is
// reproduced by capping workers per platform. ISA and cache differences are
// out of scope — see DESIGN.md §4.
type Platform struct {
	Name    string
	Threads int
}

// Platforms returns the paper's four machines:
// a dual AMD Opteron 6168 (2x12 cores), an Intel Xeon E5-1620 (8 threads),
// an Intel i7-4770K (8 threads) and a mobile AMD A8-4500M (4 threads).
func Platforms() []Platform {
	return []Platform{
		{Name: "Opteron-6168x2", Threads: 24},
		{Name: "Xeon-E5-1620", Threads: 8},
		{Name: "i7-4770K", Threads: 8},
		{Name: "A8-4500M", Threads: 4},
	}
}

// ReferencePlatform is the machine most experiments ran on: the dual
// 12-core Opteron.
func ReferencePlatform() Platform { return Platforms()[0] }
