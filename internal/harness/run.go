package harness

import (
	"errors"
	"fmt"
	"math"
	"time"

	"kdtune/internal/autotune"
	"kdtune/internal/kdtree"
	"kdtune/internal/render"
	"kdtune/internal/sah"
	"kdtune/internal/scene"
)

// Table II tuning ranges.
const (
	CIMin, CIMax = 3, 101
	CBMin, CBMax = 0, 60
	SMin, SMax   = 1, 8
	RMin, RMax   = 16, 8192
)

// Render-side tuning ranges (not in the paper's Table II): packet width and
// render tile size, co-tuned with the tree parameters by the online search
// in the spirit of kernel-level tuners (packet traversal is bitwise
// identical to scalar at any width, so both are pure speed knobs). Both are
// power-of-two ranges; P = 1 is the scalar path, giving the tuner a safe
// retreat on scenes where packets do not pay.
const (
	PMin, PMax = 1, kdtree.MaxPacketWidth
	TMin, TMax = 8, 64
)

// Search selects how configurations are chosen during a run.
type Search int

// The three configuration policies compared in the paper.
const (
	SearchFixed      Search = iota // keep the provided base configuration
	SearchNelderMead               // AtuneRT: random seeding + Nelder-Mead
	SearchExhaustive               // grid walk (§V-D4)
)

// RunConfig describes one tuning/measurement run of the Figure 4 workflow.
type RunConfig struct {
	Scene     *scene.Scene
	Algorithm kdtree.Algorithm
	Search    Search

	Workers       int   // parallelism budget (platform simulation); <=0 = all
	Width, Height int   // render resolution (default 192x144)
	Seed          int64 // tuner RNG seed

	// MaxIterations bounds the number of frames processed. For static
	// scenes the loop additionally stops PostConverge frames after the
	// tuner converges (the paper repeats until convergence).
	MaxIterations int
	PostConverge  int

	// RepeatFrames repeats every animation frame this many times, the
	// paper's trick for dynamic scenes whose sequences are too short for
	// convergence ("we artificially extend the sequence by repeating every
	// frame 5 times").
	RepeatFrames int

	// ExhaustiveStrides coarsens the §V-D4 grid (per parameter: CI, CB, S,
	// R). nil = full grid. The exhaustive walk covers only the paper's tree
	// parameters; PacketWidth/TileSize stay at their base values there.
	ExhaustiveStrides []int

	// PacketWidth and TileSize are the base render configuration: rays per
	// traversal packet (1 = scalar) and the square tile edge of the packet
	// path. SearchNelderMead co-tunes both (ranges [PMin, PMax] and
	// [TMin, TMax]); SearchFixed and SearchExhaustive keep them as given.
	// Zero selects the defaults (scalar rendering, 16-pixel tiles).
	PacketWidth int
	TileSize    int

	// Base is the configuration used by SearchFixed and as the speedup
	// reference; zero-value selects kdtree.BaseConfig(Algorithm).
	Base kdtree.Config

	// RetuneThreshold/RetuneWindow enable the tuner's drift detection
	// (restart the search when the converged configuration degrades), for
	// scenes whose context shifts mid-run — e.g. camera paths. Zero
	// disables, matching the paper's main experiments.
	RetuneThreshold float64
	RetuneWindow    int

	// DeadlineFactor arms a per-frame build watchdog: each guarded build
	// gets Guard.Deadline = DeadlineFactor × the fastest successful frame
	// total observed so far (the incumbent). Exploration probes that blow
	// past any sane budget — a pathological (CI, CB) region driving the SAH
	// into million-node trees — are aborted, rendered via the median-split
	// fallback, and reported to the tuner as censored samples instead of
	// stalling the loop. <=0 disables the watchdog; the first frame always
	// runs unguarded-by-deadline (there is no incumbent yet).
	DeadlineFactor float64

	// BuildGuard supplies static guard limits (MaxDepth, MaxArenaBytes, or
	// a fixed Deadline floor) applied to every build of the run. The
	// watchdog deadline is merged in on top: the tighter deadline wins.
	BuildGuard kdtree.Guard
}

// FrameRecord is the measurement of one frame (one Start/Stop cycle).
type FrameRecord struct {
	Iteration    int
	FrameIndex   int
	CI, CB, S, R int
	P, T         int // packet width and tile size the frame rendered with
	// Params is the full registered parameter vector the frame ran with, in
	// RunResult.ParamNames order — the generic form of the legacy fields
	// above, covering the substrate tunables (B, G, GB, SB) too.
	Params []int
	Build  time.Duration
	Render time.Duration
	Total  time.Duration
	// Aborted marks a frame whose guarded build hit a Guard limit; the
	// frame was still rendered, from a median-split fallback tree, and its
	// Build/Total include both the aborted attempt and the fallback build.
	Aborted bool
}

// RunResult aggregates a run.
type RunResult struct {
	Config                       RunConfig
	Frames                       []FrameRecord
	ConvergedAt                  int // iteration index of convergence, -1 if never
	Restarts                     int // drift-triggered search restarts (§V-D4)
	AbortedBuilds                int // guarded builds stopped by a Guard limit
	FallbackFrames               int // frames rendered from the median-split fallback tree
	BestCI, BestCB, BestS, BestR int
	BestP, BestT                 int // best packet width / tile size (base values unless co-tuned)
	BestTotal                    time.Duration

	// ParamNames names every registered tunable of the run in registration
	// order (the dimension order of FrameRecord.Params), and TunedParams is
	// the full named best-found vector — tuned dimensions carry the search
	// optimum, untuned ones their base values. The legacy Best* fields above
	// are projections of TunedParams kept for existing consumers.
	ParamNames  []string
	TunedParams map[string]int

	// Packet-path render counters summed over all frames (see
	// render.RenderStats); Demotions/PacketRays is the run's demotion rate.
	Packets    int
	Demotions  int
	PacketRays int
}

// normalize fills RunConfig defaults.
func (rc RunConfig) normalize() RunConfig {
	if rc.Width <= 0 {
		rc.Width = 192
	}
	if rc.Height <= 0 {
		rc.Height = rc.Width * 3 / 4
	}
	if rc.MaxIterations <= 0 {
		rc.MaxIterations = 150
	}
	if rc.PostConverge <= 0 {
		rc.PostConverge = 10
	}
	if rc.RepeatFrames <= 0 {
		if rc.Scene != nil && rc.Scene.IsDynamic() {
			rc.RepeatFrames = 5 // §V-C
		} else {
			rc.RepeatFrames = 1
		}
	}
	if rc.PacketWidth <= 0 {
		rc.PacketWidth = 1
	}
	if rc.TileSize <= 0 {
		rc.TileSize = 16
	}
	if rc.Base.CI == 0 {
		rc.Base = kdtree.BaseConfig(rc.Algorithm)
	}
	rc.Base.Algorithm = rc.Algorithm
	rc.Base.Workers = rc.Workers
	// The substrate tunables need concrete base values: they seed the tuned
	// program variables and are what untuned searches run with.
	if rc.Base.Bins < 2 {
		rc.Base.Bins = sah.DefaultBins
	}
	if rc.Base.ScatterGrain <= 0 {
		rc.Base.ScatterGrain = kdtree.DefaultScatterGrain
	}
	if rc.Base.BinGrain <= 0 {
		rc.Base.BinGrain = sah.DefaultBinGrain
	}
	if rc.Base.SplitBias < 0 {
		rc.Base.SplitBias = 0
	}
	return rc
}

// maxRunResolution bounds the render resolution Validate accepts; a single
// frame buffer past 16k×16k is an input error, not a measurement.
const maxRunResolution = 1 << 14

// Validate reports every way the run configuration is unusable before any
// work starts. Zero values that normalize fills with defaults (resolution,
// iteration budget, ...) are accepted; contradictory or non-finite values
// are not. Run calls it and panics on error, so a harness misconfiguration
// fails at the top of the run instead of as a hung loop or a nil-scene
// crash frames later.
func (rc RunConfig) Validate() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	check(rc.Scene != nil, "Scene is nil")
	check(rc.Width >= 0 && rc.Width <= maxRunResolution, "Width %d outside [0, %d]", rc.Width, maxRunResolution)
	check(rc.Height >= 0 && rc.Height <= maxRunResolution, "Height %d outside [0, %d]", rc.Height, maxRunResolution)
	check(rc.MaxIterations >= 0, "MaxIterations %d negative", rc.MaxIterations)
	check(rc.PostConverge >= 0, "PostConverge %d negative", rc.PostConverge)
	check(rc.RepeatFrames >= 0, "RepeatFrames %d negative", rc.RepeatFrames)
	check(!math.IsNaN(rc.RetuneThreshold) && !math.IsInf(rc.RetuneThreshold, 0),
		"RetuneThreshold %v is not finite", rc.RetuneThreshold)
	check(rc.RetuneWindow >= 0, "RetuneWindow %d negative", rc.RetuneWindow)
	check(!math.IsNaN(rc.DeadlineFactor) && !math.IsInf(rc.DeadlineFactor, 0) && !(rc.DeadlineFactor < 0),
		"DeadlineFactor %v must be finite and non-negative", rc.DeadlineFactor)
	check(rc.PacketWidth >= 0 && rc.PacketWidth <= kdtree.MaxPacketWidth,
		"PacketWidth %d outside [0, %d]", rc.PacketWidth, kdtree.MaxPacketWidth)
	check(rc.TileSize >= 0 && rc.TileSize <= maxRunResolution, "TileSize %d outside [0, %d]", rc.TileSize, maxRunResolution)
	check(rc.BuildGuard.Deadline >= 0, "BuildGuard.Deadline %v negative", rc.BuildGuard.Deadline)
	check(rc.BuildGuard.MaxDepth >= 0, "BuildGuard.MaxDepth %d negative", rc.BuildGuard.MaxDepth)
	check(rc.BuildGuard.MaxArenaBytes >= 0, "BuildGuard.MaxArenaBytes %d negative", rc.BuildGuard.MaxArenaBytes)
	if err := rc.Base.Validate(); err != nil {
		errs = append(errs, err) // the zero Base ("use defaults") passes
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("harness: invalid run config: %w", errors.Join(errs...))
}

// TunedVars bundles the tuned program variables of one run: the registered
// tunables point into these fields, so the search mutates them directly and
// the per-frame build/render configuration is assembled from them. The zero
// value is not useful — use newTunedVars to seed from a RunConfig.
type TunedVars struct {
	CI, CB, S, R int // Table II cost-model parameters

	// Build-side concurrency tunables (kdtree.RegisterBuildTunables).
	Bins, ScatterGrain, BinGrain, SplitBias int

	// Render-side packet tunables (render.RegisterTunables).
	PacketWidth, TileSize int
}

// newTunedVars seeds the tuned variables from the (normalized) run config's
// base configuration.
func newTunedVars(rc RunConfig) TunedVars {
	return TunedVars{
		CI: int(rc.Base.CI), CB: int(rc.Base.CB), S: rc.Base.S, R: rc.Base.R,
		Bins: rc.Base.Bins, ScatterGrain: rc.Base.ScatterGrain,
		BinGrain: rc.Base.BinGrain, SplitBias: rc.Base.SplitBias,
		PacketWidth: rc.PacketWidth, TileSize: rc.TileSize,
	}
}

// buildConfig assembles the per-frame build configuration from the current
// tuned values.
func (v *TunedVars) buildConfig(rc RunConfig) kdtree.Config {
	return kdtree.Config{
		Algorithm:    rc.Algorithm,
		CI:           float64(v.CI),
		CB:           float64(v.CB),
		S:            v.S,
		R:            v.R,
		Workers:      rc.Workers,
		Bins:         v.Bins,
		ScatterGrain: v.ScatterGrain,
		BinGrain:     v.BinGrain,
		SplitBias:    v.SplitBias,
	}
}

// TreeRegistry composes the paper's Table II cost-model grid over v: CI, CB,
// S, and — for the lazy builder — R. It is the exhaustive walk's search
// space (§V-D4), kept separate from the full registry so ExhaustiveStrides
// keeps its positional (CI, CB, S, R) meaning and the grid stays tractable.
func TreeRegistry(algo kdtree.Algorithm, v *TunedVars) (*autotune.Registry, error) {
	reg := autotune.NewRegistry()
	for _, tn := range []autotune.Tunable{
		{Name: "CI", Target: &v.CI, Min: CIMin, Max: CIMax, Step: 1,
			Desc: "SAH triangle intersection cost"},
		{Name: "CB", Target: &v.CB, Min: CBMin, Max: CBMax, Step: 1,
			Desc: "SAH primitive duplication cost"},
		{Name: "S", Target: &v.S, Min: SMin, Max: SMax, Step: 1,
			Desc: "max subtrees per thread (task spawn budget)"},
	} {
		if err := reg.Register(tn); err != nil {
			return nil, err
		}
	}
	if algo.HasR() {
		if err := reg.Register(autotune.Tunable{
			Name: "R", Target: &v.R, Min: RMin, Max: RMax, Scale: autotune.ScalePow2,
			Desc: "lazy minimal node resolution (primitives)",
		}); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// ComposeRegistry composes the full co-tuned search space of one run over v:
// the Table II cost parameters, then the build-side concurrency tunables
// (B, G, GB, SB), then the render-side packet parameters (P, T). Every
// subsystem registers through the same autotune.Registry mechanism, and the
// registration order here is the canonical dimension order of
// RunResult.ParamNames and FrameRecord.Params.
func ComposeRegistry(algo kdtree.Algorithm, v *TunedVars) (*autotune.Registry, error) {
	reg, err := TreeRegistry(algo, v)
	if err != nil {
		return nil, err
	}
	if err := kdtree.RegisterBuildTunables(reg, &v.Bins, &v.ScatterGrain, &v.BinGrain, &v.SplitBias); err != nil {
		return nil, err
	}
	if err := render.RegisterTunables(reg, &v.PacketWidth, &v.TileSize); err != nil {
		return nil, err
	}
	return reg, nil
}

// Run executes the Figure 4 workflow: per frame, apply the configuration
// under test, rebuild the kD-tree for the frame's geometry, render, and
// report total frame time (m_a = t_c + t_r) to the search. Builds run
// guarded (see DeadlineFactor and BuildGuard): a build stopped by a Guard
// limit is replaced by a median-split fallback build so the frame still
// renders, and the cycle is reported to the tuner as a censored sample.
// Run panics on an invalid RunConfig (see Validate).
func Run(rc RunConfig) *RunResult {
	if err := rc.Validate(); err != nil {
		panic(err)
	}
	rc = rc.normalize()
	res := &RunResult{Config: rc, ConvergedAt: -1}

	// The tuned program variables, initialised to the base configuration.
	// Every registered tunable points into vars; the searches mutate them
	// through the registry.
	vars := newTunedVars(rc)
	fullReg, err := ComposeRegistry(rc.Algorithm, &vars)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	res.ParamNames = fullReg.Names()

	var tuner *autotune.Tuner
	switch rc.Search {
	case SearchNelderMead:
		// The online search owns the full co-tuned space: Table II cost
		// parameters, the build-side concurrency tunables, and the
		// render-side packet parameters.
		tuner = autotune.New(autotune.Options{
			Seed:            rc.Seed,
			RetuneThreshold: rc.RetuneThreshold,
			RetuneWindow:    rc.RetuneWindow,
		})
		if err := tuner.RegisterAll(fullReg); err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
	case SearchExhaustive:
		// The exhaustive walk stays on the paper's Table II grid: composing
		// the substrate dimensions in would explode the §V-D4 comparison
		// from ~thousands of points to millions, and ExhaustiveStrides keeps
		// its positional (CI, CB, S, R) meaning.
		treeReg, err := TreeRegistry(rc.Algorithm, &vars)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		tuner, err = autotune.NewExhaustiveTunerFromRegistry(autotune.Options{Seed: rc.Seed}, treeReg, rc.ExhaustiveStrides)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
	}

	// One Builder and one framebuffer for the whole run: every frame rebuilds
	// into the same arenas and renders into the same pixels, so the steady
	// state of the loop allocates (almost) nothing.
	builder := kdtree.NewBuilder()
	im := render.NewImage(rc.Width, rc.Height)

	// The watchdog incumbent: fastest successful (non-aborted) frame total
	// so far. The deadline for each guarded build derives from it, so the
	// budget tracks what this scene at this resolution actually costs.
	var incumbent time.Duration
	guardFor := func() kdtree.Guard {
		g := rc.BuildGuard
		if rc.DeadlineFactor > 0 && incumbent > 0 {
			d := time.Duration(rc.DeadlineFactor * float64(incumbent))
			if d <= 0 {
				// A sub-nanosecond budget truncates to 0, which Guard reads
				// as "no deadline"; keep the watchdog armed instead.
				d = 1
			}
			if g.Deadline <= 0 || d < g.Deadline {
				g.Deadline = d
			}
		}
		return g
	}

	frameSeq := frameSequence(rc)
	postLeft := rc.PostConverge
	for iter := 0; iter < rc.MaxIterations; iter++ {
		frame := frameSeq(iter)

		if tuner != nil {
			tuner.Start()
		}
		cfg := vars.buildConfig(rc)
		if err := cfg.Validate(); err != nil {
			// Tuner probes stay inside Table II, far within the hard
			// limits; anything else (a corrupted Base leaking through) is
			// repaired rather than crashing the loop mid-run.
			cfg = cfg.Clamped()
		}

		tris := rc.Scene.Triangles(frame)
		t0 := time.Now()
		tree, err := builder.BuildGuarded(tris, cfg, guardFor())
		aborted := err != nil
		if aborted {
			// Graceful degradation: the guarded build was stopped (deadline,
			// depth, memory, or an isolated worker panic). Rebuild with the
			// spatial-median builder — cheap, SAH-free, bounded — on the
			// same Builder (its arenas survive an abort intact), so every
			// frame renders even while the tuner probes pathological
			// configurations.
			res.AbortedBuilds++
			fcfg := cfg
			fcfg.Algorithm = kdtree.AlgoMedian
			// The fallback itself runs guarded too (zero Guard still contains
			// worker panics): if even the median build fails, the frame is
			// recorded but not rendered, rather than crashing the run.
			tree, _ = builder.BuildGuarded(tris, fcfg, kdtree.Guard{})
			if tree != nil {
				res.FallbackFrames++
			}
		}
		tBuild := time.Since(t0)
		if tree != nil {
			st := render.RenderInto(im, tree, rc.Scene.ViewAt(frame), rc.Scene.Lights, render.Options{
				Width: rc.Width, Height: rc.Height, Workers: rc.Workers,
				PacketWidth: vars.PacketWidth, TileSize: vars.TileSize,
			})
			res.Packets += st.Packets
			res.Demotions += st.Demotions
			res.PacketRays += st.PacketRays
		}
		total := time.Since(t0)

		if tuner != nil {
			if aborted {
				// No real measurement exists for this configuration; the
				// tuner records a penalty so the search reflects away from
				// the region instead of re-probing it.
				tuner.StopAborted()
			} else {
				tuner.Stop()
			}
		}
		if !aborted && (incumbent == 0 || total < incumbent) {
			incumbent = total
		}
		res.Frames = append(res.Frames, FrameRecord{
			Iteration: iter, FrameIndex: frame,
			CI: vars.CI, CB: vars.CB, S: vars.S, R: vars.R,
			P: vars.PacketWidth, T: vars.TileSize,
			Params: fullReg.Vector(),
			Build:  tBuild, Render: total - tBuild, Total: total,
			Aborted: aborted,
		})

		if tuner != nil && tuner.Converged() {
			if res.ConvergedAt < 0 {
				res.ConvergedAt = iter
			}
			// For static scenes, keep measuring a little longer for stable
			// post-convergence numbers, then stop; dynamic scenes keep
			// running to the iteration budget (the context keeps changing).
			// An exhausted exhaustive grid has nothing left to explore
			// either way.
			contextChanges := rc.Scene.IsDynamic() || rc.Scene.CameraPath != nil
			if !contextChanges || rc.Search == SearchExhaustive {
				postLeft--
				if postLeft <= 0 {
					break
				}
			}
		}
	}

	// The best-found vector: tuned dimensions carry the search optimum;
	// dimensions the search never moved (everything under SearchFixed, the
	// substrate/render dimensions under SearchExhaustive) stay at their base
	// values, which is what the current targets hold for them.
	base := newTunedVars(rc)
	baseReg, err := ComposeRegistry(rc.Algorithm, &base)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	tp := baseReg.Snapshot()
	if tuner != nil {
		res.Restarts = tuner.Restarts()
		if best, ok := tuner.BestByName(); ok {
			for k, v := range best {
				tp[k] = v
			}
		}
	}
	res.TunedParams = tp
	res.BestCI, res.BestCB, res.BestS = tp["CI"], tp["CB"], tp["S"]
	res.BestR = rc.Base.R
	if rc.Algorithm.HasR() {
		res.BestR = tp["R"]
	}
	res.BestP, res.BestT = tp["P"], tp["T"]
	res.BestTotal = res.SteadyStateTime()
	return res
}

// frameSequence maps iteration index to animation frame following §V-C:
// static scenes repeat frame 0; dynamic scenes walk the sequence with each
// frame repeated RepeatFrames times, wrapping around.
func frameSequence(rc RunConfig) func(iter int) int {
	if !rc.Scene.IsDynamic() && rc.Scene.CameraPath == nil {
		return func(int) int { return 0 }
	}
	total := rc.Scene.Frames * rc.RepeatFrames
	return func(iter int) int {
		return (iter % total) / rc.RepeatFrames
	}
}

// BestConfig assembles the run's best-found parameters into a build
// configuration, including the tuned substrate fields (bins, grains, split
// bias) when the run carried them.
func (r *RunResult) BestConfig() kdtree.Config {
	cfg := kdtree.Config{
		Algorithm: r.Config.Algorithm,
		CI:        float64(r.BestCI),
		CB:        float64(r.BestCB),
		S:         r.BestS,
		R:         r.BestR,
		Workers:   r.Config.Workers,
	}
	if r.TunedParams != nil {
		cfg.Bins = r.TunedParams["B"]
		cfg.ScatterGrain = r.TunedParams["G"]
		cfg.BinGrain = r.TunedParams["GB"]
		cfg.SplitBias = r.TunedParams["SB"]
	}
	return cfg
}

// SteadyStateTime returns the median frame time of the run's last third —
// the post-convergence behaviour, robust to the exploration phase and to
// measurement outliers.
func (r *RunResult) SteadyStateTime() time.Duration {
	if len(r.Frames) == 0 {
		return 0
	}
	tail := r.Frames[len(r.Frames)*2/3:]
	ds := make([]time.Duration, len(tail))
	for i, f := range tail {
		ds[i] = f.Total
	}
	return MedianDuration(ds)
}

// SpeedupTrace returns, per iteration, base/t_i — the convergence curve of
// Figure 8 for a single run (callers average traces across repetitions).
func (r *RunResult) SpeedupTrace(base time.Duration) []float64 {
	out := make([]float64, len(r.Frames))
	for i, f := range r.Frames {
		if f.Total > 0 {
			out[i] = float64(base) / float64(f.Total)
		}
	}
	return out
}

// MeasureFixed measures the scene/algorithm under a fixed configuration:
// the denominator of every speedup in the paper. It renders `frames` frames
// (cycling animation frames for dynamic scenes) and returns the median
// frame time.
func MeasureFixed(rc RunConfig, frames int) time.Duration {
	rc = rc.normalize()
	rc.Search = SearchFixed
	rc.MaxIterations = frames
	res := Run(rc)
	ds := make([]time.Duration, len(res.Frames))
	for i, f := range res.Frames {
		ds[i] = f.Total
	}
	return MedianDuration(ds)
}
