package harness

import (
	"fmt"
	"time"

	"kdtune/internal/autotune"
	"kdtune/internal/kdtree"
	"kdtune/internal/render"
	"kdtune/internal/scene"
)

// Table II tuning ranges.
const (
	CIMin, CIMax = 3, 101
	CBMin, CBMax = 0, 60
	SMin, SMax   = 1, 8
	RMin, RMax   = 16, 8192
)

// Search selects how configurations are chosen during a run.
type Search int

// The three configuration policies compared in the paper.
const (
	SearchFixed      Search = iota // keep the provided base configuration
	SearchNelderMead               // AtuneRT: random seeding + Nelder-Mead
	SearchExhaustive               // grid walk (§V-D4)
)

// RunConfig describes one tuning/measurement run of the Figure 4 workflow.
type RunConfig struct {
	Scene     *scene.Scene
	Algorithm kdtree.Algorithm
	Search    Search

	Workers       int   // parallelism budget (platform simulation); <=0 = all
	Width, Height int   // render resolution (default 192x144)
	Seed          int64 // tuner RNG seed

	// MaxIterations bounds the number of frames processed. For static
	// scenes the loop additionally stops PostConverge frames after the
	// tuner converges (the paper repeats until convergence).
	MaxIterations int
	PostConverge  int

	// RepeatFrames repeats every animation frame this many times, the
	// paper's trick for dynamic scenes whose sequences are too short for
	// convergence ("we artificially extend the sequence by repeating every
	// frame 5 times").
	RepeatFrames int

	// ExhaustiveStrides coarsens the §V-D4 grid (per parameter: CI, CB, S,
	// R). nil = full grid.
	ExhaustiveStrides []int

	// Base is the configuration used by SearchFixed and as the speedup
	// reference; zero-value selects kdtree.BaseConfig(Algorithm).
	Base kdtree.Config

	// RetuneThreshold/RetuneWindow enable the tuner's drift detection
	// (restart the search when the converged configuration degrades), for
	// scenes whose context shifts mid-run — e.g. camera paths. Zero
	// disables, matching the paper's main experiments.
	RetuneThreshold float64
	RetuneWindow    int
}

// FrameRecord is the measurement of one frame (one Start/Stop cycle).
type FrameRecord struct {
	Iteration    int
	FrameIndex   int
	CI, CB, S, R int
	Build        time.Duration
	Render       time.Duration
	Total        time.Duration
}

// RunResult aggregates a run.
type RunResult struct {
	Config                       RunConfig
	Frames                       []FrameRecord
	ConvergedAt                  int // iteration index of convergence, -1 if never
	Restarts                     int // drift-triggered search restarts (§V-D4)
	BestCI, BestCB, BestS, BestR int
	BestTotal                    time.Duration
}

// normalize fills RunConfig defaults.
func (rc RunConfig) normalize() RunConfig {
	if rc.Width <= 0 {
		rc.Width = 192
	}
	if rc.Height <= 0 {
		rc.Height = rc.Width * 3 / 4
	}
	if rc.MaxIterations <= 0 {
		rc.MaxIterations = 150
	}
	if rc.PostConverge <= 0 {
		rc.PostConverge = 10
	}
	if rc.RepeatFrames <= 0 {
		if rc.Scene != nil && rc.Scene.IsDynamic() {
			rc.RepeatFrames = 5 // §V-C
		} else {
			rc.RepeatFrames = 1
		}
	}
	if rc.Base.CI == 0 {
		rc.Base = kdtree.BaseConfig(rc.Algorithm)
	}
	rc.Base.Algorithm = rc.Algorithm
	rc.Base.Workers = rc.Workers
	return rc
}

// Run executes the Figure 4 workflow: per frame, apply the configuration
// under test, rebuild the kD-tree for the frame's geometry, render, and
// report total frame time (m_a = t_c + t_r) to the search.
func Run(rc RunConfig) *RunResult {
	rc = rc.normalize()
	res := &RunResult{Config: rc, ConvergedAt: -1}

	// The tuned program variables, initialised to the base configuration.
	ci, cb, s, r := int(rc.Base.CI), int(rc.Base.CB), rc.Base.S, rc.Base.R

	var tuner *autotune.Tuner
	registerParams := func(t *autotune.Tuner) error {
		if err := t.RegisterNamedParameter("CI", &ci, CIMin, CIMax, 1); err != nil {
			return err
		}
		if err := t.RegisterNamedParameter("CB", &cb, CBMin, CBMax, 1); err != nil {
			return err
		}
		if err := t.RegisterNamedParameter("S", &s, SMin, SMax, 1); err != nil {
			return err
		}
		if rc.Algorithm.HasR() {
			return t.RegisterPow2Parameter("R", &r, RMin, RMax)
		}
		return nil
	}
	switch rc.Search {
	case SearchNelderMead:
		tuner = autotune.New(autotune.Options{
			Seed:            rc.Seed,
			RetuneThreshold: rc.RetuneThreshold,
			RetuneWindow:    rc.RetuneWindow,
		})
		if err := registerParams(tuner); err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
	case SearchExhaustive:
		var err error
		tuner, err = autotune.NewExhaustiveTuner(autotune.Options{Seed: rc.Seed}, registerParams, rc.ExhaustiveStrides)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
	}

	// One Builder and one framebuffer for the whole run: every frame rebuilds
	// into the same arenas and renders into the same pixels, so the steady
	// state of the loop allocates (almost) nothing.
	builder := kdtree.NewBuilder()
	im := render.NewImage(rc.Width, rc.Height)

	frameSeq := frameSequence(rc)
	postLeft := rc.PostConverge
	for iter := 0; iter < rc.MaxIterations; iter++ {
		frame := frameSeq(iter)

		if tuner != nil {
			tuner.Start()
		}
		cfg := kdtree.Config{
			Algorithm: rc.Algorithm,
			CI:        float64(ci),
			CB:        float64(cb),
			S:         s,
			R:         r,
			Workers:   rc.Workers,
		}

		tris := rc.Scene.Triangles(frame)
		t0 := time.Now()
		tree := builder.Build(tris, cfg)
		tBuild := time.Since(t0)
		_ = render.RenderInto(im, tree, rc.Scene.ViewAt(frame), rc.Scene.Lights, render.Options{
			Width: rc.Width, Height: rc.Height, Workers: rc.Workers,
		})
		total := time.Since(t0)

		if tuner != nil {
			tuner.Stop()
		}
		res.Frames = append(res.Frames, FrameRecord{
			Iteration: iter, FrameIndex: frame,
			CI: ci, CB: cb, S: s, R: r,
			Build: tBuild, Render: total - tBuild, Total: total,
		})

		if tuner != nil && tuner.Converged() {
			if res.ConvergedAt < 0 {
				res.ConvergedAt = iter
			}
			// For static scenes, keep measuring a little longer for stable
			// post-convergence numbers, then stop; dynamic scenes keep
			// running to the iteration budget (the context keeps changing).
			// An exhausted exhaustive grid has nothing left to explore
			// either way.
			contextChanges := rc.Scene.IsDynamic() || rc.Scene.CameraPath != nil
			if !contextChanges || rc.Search == SearchExhaustive {
				postLeft--
				if postLeft <= 0 {
					break
				}
			}
		}
	}

	if tuner != nil {
		res.Restarts = tuner.Restarts()
		if best, _, ok := tuner.Best(); ok {
			res.BestCI, res.BestCB, res.BestS = best[0], best[1], best[2]
			if rc.Algorithm.HasR() {
				res.BestR = best[3]
			} else {
				res.BestR = rc.Base.R
			}
		}
	} else {
		res.BestCI, res.BestCB, res.BestS, res.BestR = ci, cb, s, r
	}
	res.BestTotal = res.SteadyStateTime()
	return res
}

// frameSequence maps iteration index to animation frame following §V-C:
// static scenes repeat frame 0; dynamic scenes walk the sequence with each
// frame repeated RepeatFrames times, wrapping around.
func frameSequence(rc RunConfig) func(iter int) int {
	if !rc.Scene.IsDynamic() && rc.Scene.CameraPath == nil {
		return func(int) int { return 0 }
	}
	total := rc.Scene.Frames * rc.RepeatFrames
	return func(iter int) int {
		return (iter % total) / rc.RepeatFrames
	}
}

// BestConfig assembles the run's best-found parameters into a build
// configuration.
func (r *RunResult) BestConfig() kdtree.Config {
	return kdtree.Config{
		Algorithm: r.Config.Algorithm,
		CI:        float64(r.BestCI),
		CB:        float64(r.BestCB),
		S:         r.BestS,
		R:         r.BestR,
		Workers:   r.Config.Workers,
	}
}

// SteadyStateTime returns the median frame time of the run's last third —
// the post-convergence behaviour, robust to the exploration phase and to
// measurement outliers.
func (r *RunResult) SteadyStateTime() time.Duration {
	if len(r.Frames) == 0 {
		return 0
	}
	tail := r.Frames[len(r.Frames)*2/3:]
	ds := make([]time.Duration, len(tail))
	for i, f := range tail {
		ds[i] = f.Total
	}
	return MedianDuration(ds)
}

// SpeedupTrace returns, per iteration, base/t_i — the convergence curve of
// Figure 8 for a single run (callers average traces across repetitions).
func (r *RunResult) SpeedupTrace(base time.Duration) []float64 {
	out := make([]float64, len(r.Frames))
	for i, f := range r.Frames {
		if f.Total > 0 {
			out[i] = float64(base) / float64(f.Total)
		}
	}
	return out
}

// MeasureFixed measures the scene/algorithm under a fixed configuration:
// the denominator of every speedup in the paper. It renders `frames` frames
// (cycling animation frames for dynamic scenes) and returns the median
// frame time.
func MeasureFixed(rc RunConfig, frames int) time.Duration {
	rc = rc.normalize()
	rc.Search = SearchFixed
	rc.MaxIterations = frames
	res := Run(rc)
	ds := make([]time.Duration, len(res.Frames))
	for i, f := range res.Frames {
		ds[i] = f.Total
	}
	return MedianDuration(ds)
}
