package harness

import (
	"fmt"
	"io"
	"time"

	"kdtune/internal/kdtree"
	"kdtune/internal/scene"
)

// The paper's conclusion leaves one degree of freedom unexamined: "the
// question of which algorithm creates the best performance for a given
// scene and given hardware", noting that search techniques cannot handle a
// nominal (unordered) algorithm parameter, so the practical approach is
// "optimizing one algorithm after another and then picking the best". This
// file implements exactly that strategy.

// AlgorithmChoice is the outcome of tuning one algorithm during selection.
type AlgorithmChoice struct {
	Algorithm    kdtree.Algorithm
	Tuned        time.Duration // steady-state frame time after tuning
	CI, CB, S, R int
	ConvergedAt  int
}

// Selection is the result of SelectAlgorithm.
type Selection struct {
	Scene   string
	Choices []AlgorithmChoice // one per algorithm, paper order
	Best    AlgorithmChoice
}

// SelectAlgorithm tunes every construction algorithm on the scene, one
// after another, and returns the algorithm + configuration with the best
// steady-state frame time — the paper's suggested treatment of the nominal
// algorithm parameter.
func SelectAlgorithm(sc *scene.Scene, o Opts) Selection {
	o = o.normalize()
	sel := Selection{Scene: sc.Name}
	for _, algo := range kdtree.Algorithms {
		res := Run(RunConfig{
			Scene: sc, Algorithm: algo, Search: SearchNelderMead,
			Workers: o.Workers, Width: o.Width, Height: o.Height,
			MaxIterations: o.MaxIterations, Seed: o.Seed,
		})
		// Compare algorithms on re-measured tuned configurations, not on
		// tuning-run tails (see SpeedupExperiment).
		tuned := MeasureFixed(RunConfig{
			Scene: sc, Algorithm: algo, Workers: o.Workers,
			Width: o.Width, Height: o.Height, Base: res.BestConfig(),
		}, o.BaseFrames)
		choice := AlgorithmChoice{
			Algorithm: algo, Tuned: tuned,
			CI: res.BestCI, CB: res.BestCB, S: res.BestS, R: res.BestR,
			ConvergedAt: res.ConvergedAt,
		}
		sel.Choices = append(sel.Choices, choice)
		o.logf("select %-12s %-10s tuned %s", sc.Name, algo, choice.Tuned.Round(time.Millisecond))
		if sel.Best.Tuned == 0 || choice.Tuned < sel.Best.Tuned {
			sel.Best = choice
		}
	}
	return sel
}

// PrintSelection renders the per-algorithm results and the winner.
func PrintSelection(w io.Writer, sel Selection) {
	fmt.Fprintf(w, "Algorithm selection on %s (tune each variant, pick the best):\n", sel.Scene)
	for _, c := range sel.Choices {
		marker := " "
		if c.Algorithm == sel.Best.Algorithm {
			marker = "*"
		}
		fmt.Fprintf(w, "%s %-10s %10s  C=(%d,%d,%d,%d)\n",
			marker, c.Algorithm, c.Tuned.Round(100*time.Microsecond), c.CI, c.CB, c.S, c.R)
	}
}
