package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"kdtune/internal/autotune"
	"kdtune/internal/kdtree"
	"kdtune/internal/scene"
)

// Machine-readable benchmark records: `kdbench -bench-json` writes one
// BenchReport per run, and `kdbench -compare old.json new.json` diffs two
// reports and fails on frame-time regressions. The JSON schema is documented
// in DESIGN.md §8.

// BenchSchema identifies the record format; bump on incompatible change.
const BenchSchema = "kdtune-bench/v1"

// HostInfo captures the platform a report was produced on — enough to
// recognise when two reports are not comparable.
type HostInfo struct {
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
}

// Host describes the current process's platform.
func Host() HostInfo {
	return HostInfo{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
}

// BenchStat summarises a sample of durations in milliseconds. CoV is the
// coefficient of variation (stddev/mean), the run-to-run noise indicator.
type BenchStat struct {
	MedianMS float64 `json:"median_ms"`
	IQRMS    float64 `json:"iqr_ms"`
	MeanMS   float64 `json:"mean_ms"`
	CoV      float64 `json:"cov"`
	N        int     `json:"n"`
}

// NewBenchStat computes the summary of a duration sample.
func NewBenchStat(ds []time.Duration) BenchStat {
	if len(ds) == 0 {
		return BenchStat{}
	}
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d) / float64(time.Millisecond)
	}
	sort.Float64s(xs)
	s := Summarize(xs)
	variance := 0.0
	for _, x := range xs {
		variance += (x - s.Mean) * (x - s.Mean)
	}
	variance /= float64(len(xs))
	cov := 0.0
	if s.Mean > 0 {
		cov = math.Sqrt(variance) / s.Mean
	}
	return BenchStat{
		MedianMS: s.Median, IQRMS: s.Q3 - s.Q1, MeanMS: s.Mean, CoV: cov, N: s.N,
	}
}

// BenchSettings records the measurement protocol, so a -compare across
// different protocols can be rejected.
type BenchSettings struct {
	Width         int   `json:"width"`
	Height        int   `json:"height"`
	Workers       int   `json:"workers"`
	MaxIterations int   `json:"max_iterations"`
	MeasureFrames int   `json:"measure_frames"`
	WarmupFrames  int   `json:"warmup_frames"`
	Seed          int64 `json:"seed"`

	// DeadlineFactor is the watchdog multiple armed on every run: builds
	// slower than this many times the incumbent frame total abort and are
	// served from the median fallback. Zero selects the default (10 —
	// generous enough that honest probes never trip it); it is recorded in
	// the report because two runs with different watchdogs measured
	// different protocols.
	DeadlineFactor int `json:"deadline_factor,omitempty"`
}

// BenchResult is one scene x algorithm cell: frame-time statistics under the
// base configuration and under the tuned configuration, plus what the tuner
// chose.
type BenchResult struct {
	Scene     string `json:"scene"`
	Algorithm string `json:"algorithm"`
	Triangles int    `json:"triangles"`
	Dynamic   bool   `json:"dynamic"`

	Base  BenchStat `json:"base_frame"`  // C_base total frame time
	Frame BenchStat `json:"tuned_frame"` // tuned total frame time
	Build BenchStat `json:"tuned_build"` // tuned build component
	Rend  BenchStat `json:"tuned_render"`

	// TunedParams is the full named tuned vector (CI, CB, S, R, B, G, GB,
	// SB, P, T — see RunResult.TunedParams). The individual Tuned* fields
	// below are legacy projections of it, still written so old reports and
	// old readers keep comparing; -compare prefers the map when both sides
	// carry one.
	TunedParams map[string]int `json:"tuned_params,omitempty"`

	TunedCI     int     `json:"tuned_ci"`
	TunedCB     int     `json:"tuned_cb"`
	TunedS      int     `json:"tuned_s"`
	TunedR      int     `json:"tuned_r"`
	ConvergedAt int     `json:"converged_at"` // -1 = never
	Speedup     float64 `json:"speedup"`      // base median / tuned median

	// Render-side tuned parameters (packet width, tile size) and the
	// demotion rate (demoted lanes / packet rays) observed during the tuned
	// measurement frames. Zero TunedP marks a report from before these were
	// tunable; -compare then skips the render-config equality requirement.
	TunedP       int     `json:"tuned_packet,omitempty"`
	TunedT       int     `json:"tuned_tile,omitempty"`
	DemotionRate float64 `json:"demotion_rate,omitempty"`

	// Steady-state allocation profile of one rebuild under the tuned
	// configuration, measured on a warm Builder (heap deltas averaged over
	// several rebuilds). GCPauseMS is the total stop-the-world pause time
	// accumulated across the measured rebuilds, not per build.
	AllocsPerBuild float64 `json:"allocs_per_build"`
	BytesPerBuild  float64 `json:"bytes_per_build"`
	GCPauseMS      float64 `json:"gc_pause_ms"`

	// Guarded-build outcome counters, summed over every Run this cell
	// performed (base measurement, tuning, tuned measurement). Non-zero
	// numbers mean the watchdog fired: some probe or measurement frame blew
	// its deadline and was rendered from the median-split fallback tree.
	AbortedBuilds  int `json:"aborted_builds"`
	FallbackFrames int `json:"fallback_frames"`
}

// Key identifies a result across reports.
func (r BenchResult) Key() string { return r.Scene + "/" + r.Algorithm }

// BenchReport is the top-level record `kdbench -bench-json` emits.
type BenchReport struct {
	Schema      string        `json:"schema"`
	Tag         string        `json:"tag"`
	CreatedUnix int64         `json:"created_unix"`
	Host        HostInfo      `json:"host"`
	Settings    BenchSettings `json:"settings"`
	Results     []BenchResult `json:"results"`
}

// BenchOptions configures RunBench.
type BenchOptions struct {
	Scenes     []*scene.Scene     // default: all evaluation scenes
	Algorithms []kdtree.Algorithm // default: the four paper builders
	Settings   BenchSettings      // zero fields get defaults
	Tag        string             // free-form label stored in the report
	Progress   io.Writer          // optional per-cell progress lines
}

func (o BenchOptions) normalized() BenchOptions {
	if len(o.Scenes) == 0 {
		o.Scenes = scene.All()
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = kdtree.Algorithms
	}
	s := &o.Settings
	if s.Width <= 0 {
		s.Width = 160
	}
	if s.Height <= 0 {
		s.Height = s.Width * 3 / 4
	}
	if s.MaxIterations <= 0 {
		s.MaxIterations = 60
	}
	if s.MeasureFrames <= 0 {
		s.MeasureFrames = 9
	}
	if s.WarmupFrames < 0 {
		s.WarmupFrames = 0
	}
	if s.WarmupFrames == 0 {
		s.WarmupFrames = 2
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.DeadlineFactor <= 0 {
		s.DeadlineFactor = defaultBenchDeadlineFactor
	}
	return o
}

// measureStats renders warmup+measure frames under a fixed configuration,
// discards the warmup (cold caches, first-touch allocation), and summarises
// the rest. The returned RunResult carries the guarded-build counters.
func measureStats(rc RunConfig, s BenchSettings) (frame, build, rend BenchStat, res *RunResult) {
	rc.Search = SearchFixed
	rc.MaxIterations = s.WarmupFrames + s.MeasureFrames
	res = Run(rc)
	frames := res.Frames
	if len(frames) > s.WarmupFrames {
		frames = frames[s.WarmupFrames:]
	}
	var totals, builds, rends []time.Duration
	for _, f := range frames {
		totals = append(totals, f.Total)
		builds = append(builds, f.Build)
		rends = append(rends, f.Render)
	}
	return NewBenchStat(totals), NewBenchStat(builds), NewBenchStat(rends), res
}

// allocMeasureBuilds is how many steady-state rebuilds the allocation probe
// averages over.
const allocMeasureBuilds = 5

// defaultBenchDeadlineFactor is the watchdog multiple RunBench arms when
// BenchSettings.DeadlineFactor is zero: builds slower than this many times
// the incumbent frame total abort.
const defaultBenchDeadlineFactor = 10

// measureBuildAllocs profiles the steady-state allocation behaviour of one
// rebuild under cfg: a fresh Builder is warmed with two builds (first-touch
// arena growth), then heap-counter deltas are taken around several further
// rebuilds of the same geometry. The triangle slice is fetched once outside
// the measured region so scene generation does not pollute the numbers.
func measureBuildAllocs(sc *scene.Scene, cfg kdtree.Config) (allocs, bytes, gcPauseMS float64) {
	tris := sc.Triangles(0)
	b := kdtree.NewBuilder()
	b.Build(tris, cfg) //kdlint:noguard allocation profiling measures the raw build path; guard bookkeeping would pollute the counters
	b.Build(tris, cfg) //kdlint:noguard allocation profiling measures the raw build path; guard bookkeeping would pollute the counters

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < allocMeasureBuilds; i++ {
		b.Build(tris, cfg) //kdlint:noguard allocation profiling measures the raw build path; guard bookkeeping would pollute the counters
	}
	runtime.ReadMemStats(&after)

	n := float64(allocMeasureBuilds)
	allocs = float64(after.Mallocs-before.Mallocs) / n
	bytes = float64(after.TotalAlloc-before.TotalAlloc) / n
	gcPauseMS = float64(after.PauseTotalNs-before.PauseTotalNs) / 1e6
	return allocs, bytes, gcPauseMS
}

// RunBench executes the benchmark protocol for every scene x algorithm pair:
// measure C_base frame times (warmup discarded), tune with Nelder-Mead, then
// re-measure under the tuned configuration.
func RunBench(o BenchOptions) *BenchReport {
	o = o.normalized()
	s := o.Settings
	rep := &BenchReport{
		Schema:      BenchSchema,
		Tag:         o.Tag,
		CreatedUnix: time.Now().Unix(),
		Host:        Host(),
		Settings:    s,
	}
	for _, sc := range o.Scenes {
		for _, algo := range o.Algorithms {
			rc := RunConfig{
				Scene: sc, Algorithm: algo, Workers: s.Workers,
				Width: s.Width, Height: s.Height, Seed: s.Seed,
				// Watchdog: abort any build slower than DeadlineFactor times
				// the fastest frame seen, render the fallback, penalize the
				// sample. The default is generous enough that honest probes
				// never trip it; kdbench -deadline-factor tightens it.
				DeadlineFactor: float64(s.DeadlineFactor),
			}
			baseFrame, _, _, baseRes := measureStats(rc, s)

			tune := rc
			tune.Search = SearchNelderMead
			tune.MaxIterations = s.MaxIterations
			run := Run(tune)

			tuned := rc
			tuned.Base = run.BestConfig()
			tuned.PacketWidth = run.BestP
			tuned.TileSize = run.BestT
			frame, build, rend, tunedRes := measureStats(tuned, s)
			allocsB, bytesB, gcMS := measureBuildAllocs(sc, run.BestConfig())
			abortedB := baseRes.AbortedBuilds + run.AbortedBuilds + tunedRes.AbortedBuilds
			fallbackF := baseRes.FallbackFrames + run.FallbackFrames + tunedRes.FallbackFrames

			speedup := 0.0
			if frame.MedianMS > 0 {
				speedup = baseFrame.MedianMS / frame.MedianMS
			}
			demRate := 0.0
			if tunedRes.PacketRays > 0 {
				demRate = float64(tunedRes.Demotions) / float64(tunedRes.PacketRays)
			}
			res := BenchResult{
				Scene: sc.Name, Algorithm: algo.String(),
				Triangles: sc.NumTriangles(), Dynamic: sc.IsDynamic(),
				Base: baseFrame, Frame: frame, Build: build, Rend: rend,
				TunedParams: run.TunedParams,
				TunedCI:     run.BestCI, TunedCB: run.BestCB,
				TunedS: run.BestS, TunedR: run.BestR,
				TunedP: run.BestP, TunedT: run.BestT,
				DemotionRate:   demRate,
				ConvergedAt:    run.ConvergedAt,
				Speedup:        speedup,
				AllocsPerBuild: allocsB, BytesPerBuild: bytesB, GCPauseMS: gcMS,
				AbortedBuilds: abortedB, FallbackFrames: fallbackF,
			}
			rep.Results = append(rep.Results, res)
			if o.Progress != nil {
				fmt.Fprintf(o.Progress, "bench %-12s %-10s base %.2fms tuned %.2fms (%.2fx) cfg=[%s]\n",
					res.Scene, res.Algorithm, res.Base.MedianMS, res.Frame.MedianMS,
					res.Speedup, autotune.FormatParams(res.TunedParams))
			}
		}
	}
	return rep
}

// WriteBenchReport writes the report as indented JSON.
func WriteBenchReport(w io.Writer, rep *BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteBenchReportFile writes the report to path.
func WriteBenchReportFile(path string, rep *BenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBenchReport(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBenchReport parses a report and validates its schema tag.
func ReadBenchReport(r io.Reader) (*BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench report: %w", err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("bench report: schema %q, want %q", rep.Schema, BenchSchema)
	}
	return &rep, nil
}

// ReadBenchReportFile reads a report from path.
func ReadBenchReportFile(path string) (*BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := ReadBenchReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// Regression is one cell whose frame-time median got worse than the
// threshold allows.
type Regression struct {
	Key            string  // scene/algorithm
	Metric         string  // "base" or "tuned"
	OldMS, NewMS   float64 // frame-time medians
	Pct            float64 // (new-old)/old * 100
	OldCoV, NewCoV float64
}

// PhaseDelta attributes a tuned cell's frame-time change to its phases:
// one entry per (cell, phase) with the old/new medians and the delta. Only
// cells compared under an equal tuned configuration produce entries — a
// phase delta across different configurations measures search luck, not
// code.
type PhaseDelta struct {
	Key          string  // scene/algorithm
	Phase        string  // "frame", "build" or "render"
	OldMS, NewMS float64 // phase medians
	Pct          float64 // (new-old)/old * 100
}

// CompareResult is the outcome of diffing two reports.
type CompareResult struct {
	ThresholdPct float64
	Checked      int          // cells present in both reports
	TunedSkipped []string     // cells whose tuned configs differ (tuned not compared)
	Missing      []string     // keys in old that new lacks
	Faulted      []string     // new-report cells measured through aborts/fallbacks
	Regressions  []Regression // cells past the threshold

	// Per-phase attribution for the same-config tuned cells. Frame and
	// render phases gate (they join Regressions past the threshold); the
	// build phase is informational — build medians on small scenes are
	// noisy, and a genuine build regression surfaces in the frame gate —
	// but BuildImproved/BuildCompared summarise where build time went.
	Phases        []PhaseDelta
	BuildImproved int // same-config cells whose tuned_build median shrank
	BuildCompared int // same-config cells with a comparable build median
}

// OK reports whether the comparison passes: nothing missing, nothing
// regressed, no measurement that silently rode a fallback build.
func (c CompareResult) OK() bool {
	return len(c.Missing) == 0 && len(c.Regressions) == 0 && len(c.Faulted) == 0
}

// CompareBenchReports diffs the frame-time medians of two reports.
//
// Base-configuration cells are always compared: C_base is fixed by
// protocol, so a base median growing past thresholdPct is a genuine code
// slowdown. Tuned cells are compared only when both reports landed on the
// same tuned configuration — when the (noisy, online) searches landed on
// different configs, the two medians measure different work and their delta
// is search luck, not code speed; those cells are listed informationally in
// TunedSkipped instead of gating. Cells present only in the old report are
// flagged as missing (a silently dropped benchmark must fail the gate too);
// cells only in the new report are fine — coverage grew. Finally, any
// new-report cell with nonzero aborted_builds/fallback_frames fails: a
// healthy benchmark must never have measured a median-split fallback tree
// where it claims a tuned one (DESIGN.md §10).
func CompareBenchReports(old, new *BenchReport, thresholdPct float64) CompareResult {
	c := CompareResult{ThresholdPct: thresholdPct}
	newBy := make(map[string]BenchResult, len(new.Results))
	for _, r := range new.Results {
		newBy[r.Key()] = r
	}
	check := func(key, metric string, o, n BenchStat) {
		if o.MedianMS <= 0 {
			return
		}
		pct := (n.MedianMS - o.MedianMS) / o.MedianMS * 100
		if pct > thresholdPct {
			c.Regressions = append(c.Regressions, Regression{
				Key: key, Metric: metric, OldMS: o.MedianMS, NewMS: n.MedianMS,
				Pct: pct, OldCoV: o.CoV, NewCoV: n.CoV,
			})
		}
	}
	for _, o := range old.Results {
		n, ok := newBy[o.Key()]
		if !ok {
			c.Missing = append(c.Missing, o.Key())
			continue
		}
		c.Checked++
		if n.AbortedBuilds > 0 || n.FallbackFrames > 0 {
			c.Faulted = append(c.Faulted, fmt.Sprintf("%s (%d aborted builds, %d fallback frames)",
				o.Key(), n.AbortedBuilds, n.FallbackFrames))
		}
		check(o.Key(), "base", o.Base, n.Base)
		if sameTunedConfig(o, n) {
			// Gate the tuned frame median as before, and the render phase on
			// its own — a render regression can hide inside an unchanged
			// frame median when the build got faster (exactly the trade this
			// PR makes), and the acceptance bar is "build improves, render
			// does not pay for it".
			check(o.Key(), "tuned", o.Frame, n.Frame)
			check(o.Key(), "render", o.Rend, n.Rend)
			// Per-phase attribution (informational for build): where inside
			// the frame did the time move?
			phase := func(name string, os, ns BenchStat) {
				if os.MedianMS <= 0 || ns.MedianMS <= 0 {
					return
				}
				c.Phases = append(c.Phases, PhaseDelta{
					Key: o.Key(), Phase: name, OldMS: os.MedianMS, NewMS: ns.MedianMS,
					Pct: (ns.MedianMS - os.MedianMS) / os.MedianMS * 100,
				})
				if name == "build" {
					c.BuildCompared++
					if ns.MedianMS < os.MedianMS {
						c.BuildImproved++
					}
				}
			}
			phase("frame", o.Frame, n.Frame)
			phase("build", o.Build, n.Build)
			phase("render", o.Rend, n.Rend)
		} else {
			c.TunedSkipped = append(c.TunedSkipped, fmt.Sprintf("%s [%s] -> [%s]",
				o.Key(), formatTunedConfig(o), formatTunedConfig(n)))
		}
	}
	sort.Slice(c.Regressions, func(i, j int) bool { return c.Regressions[i].Pct > c.Regressions[j].Pct })
	sort.Strings(c.Missing)
	sort.Strings(c.Faulted)
	sort.Strings(c.TunedSkipped)
	sort.Slice(c.Phases, func(i, j int) bool {
		if c.Phases[i].Key != c.Phases[j].Key {
			return c.Phases[i].Key < c.Phases[j].Key
		}
		return c.Phases[i].Phase < c.Phases[j].Phase
	})
	return c
}

// sameTunedConfig decides whether two cells' tuned measurements measured the
// same work. When both reports carry the full named vector, the maps must be
// equal — any dimension moving (a different bin count, a different grain)
// makes the medians incomparable. Reports from before tuned_params fall back
// to the legacy field rule: equal tree parameters, and equal render
// parameters when both sides carry them (zero TunedP marks a report from
// before the render tunables existed).
func sameTunedConfig(o, n BenchResult) bool {
	if len(o.TunedParams) > 0 && len(n.TunedParams) > 0 {
		if len(o.TunedParams) != len(n.TunedParams) {
			return false
		}
		for k, v := range o.TunedParams {
			nv, ok := n.TunedParams[k]
			if !ok || nv != v {
				return false
			}
		}
		return true
	}
	sameTree := o.TunedCI == n.TunedCI && o.TunedCB == n.TunedCB &&
		o.TunedS == n.TunedS && o.TunedR == n.TunedR
	sameRender := o.TunedP == 0 || n.TunedP == 0 ||
		(o.TunedP == n.TunedP && o.TunedT == n.TunedT)
	return sameTree && sameRender
}

// formatTunedConfig renders a cell's tuned configuration for the skip list:
// the full named vector when present, the legacy tuple otherwise.
func formatTunedConfig(r BenchResult) string {
	if len(r.TunedParams) > 0 {
		return autotune.FormatParams(r.TunedParams)
	}
	return fmt.Sprintf("%d,%d,%d,%d,P%d,T%d", r.TunedCI, r.TunedCB, r.TunedS, r.TunedR, r.TunedP, r.TunedT)
}

// Format renders the comparison for humans.
func (c CompareResult) Format(w io.Writer) {
	fmt.Fprintf(w, "compared %d cells (threshold %+.1f%%)\n", c.Checked, c.ThresholdPct)
	for _, k := range c.Missing {
		fmt.Fprintf(w, "  MISSING    %-30s present in old report only\n", k)
	}
	for _, k := range c.Faulted {
		fmt.Fprintf(w, "  FAULTED    %s\n", k)
	}
	for _, r := range c.Regressions {
		fmt.Fprintf(w, "  REGRESSION %-30s %-5s %8.2fms -> %8.2fms (%+.1f%%, cov %.2f -> %.2f)\n",
			r.Key, r.Metric, r.OldMS, r.NewMS, r.Pct, r.OldCoV, r.NewCoV)
	}
	for _, p := range c.Phases {
		fmt.Fprintf(w, "  phase      %-30s %-6s %8.2fms -> %8.2fms (%+.1f%%)\n",
			p.Key, p.Phase, p.OldMS, p.NewMS, p.Pct)
	}
	if c.BuildCompared > 0 {
		fmt.Fprintf(w, "  tuned_build improved on %d/%d same-config cells\n", c.BuildImproved, c.BuildCompared)
	}
	for _, k := range c.TunedSkipped {
		fmt.Fprintf(w, "  tuned-config changed, tuned time not compared: %s\n", k)
	}
	if c.OK() {
		fmt.Fprintln(w, "  no regressions")
	}
}
