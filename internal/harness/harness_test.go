package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"kdtune/internal/kdtree"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// tinyScene builds a small static scene so harness tests stay fast.
func tinyScene() *scene.Scene {
	var tris []vecmath.Triangle
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			x, z := float64(i)*0.5, float64(j)*0.5
			y := 0.3 * math.Sin(x+z)
			tris = append(tris,
				vecmath.Tri(vecmath.V(x, y, z), vecmath.V(x+0.5, y, z), vecmath.V(x, y, z+0.5)),
				vecmath.Tri(vecmath.V(x+0.5, y, z), vecmath.V(x+0.5, y, z+0.5), vecmath.V(x, y, z+0.5)),
			)
		}
	}
	return scene.NewStatic("tiny", tris, scene.View{
		Eye: vecmath.V(3, 4, -2), LookAt: vecmath.V(3, 0, 3), Up: vecmath.V(0, 1, 0), FOV: 60,
	}, []vecmath.Vec3{vecmath.V(3, 8, 3)})
}

// tinyDynamic is a two-frame animated scene.
func tinyDynamic(frames int) *scene.Scene {
	base := tinyScene().Base()
	n := len(base)
	body := append([]vecmath.Triangle(nil), base...)
	return scene.NewAnimated("tinydyn", body, frames, scene.View{
		Eye: vecmath.V(3, 4, -2), LookAt: vecmath.V(3, 0, 3), Up: vecmath.V(0, 1, 0), FOV: 60,
	}, []vecmath.Vec3{vecmath.V(3, 8, 3)}, []scene.Part{{
		Start: n / 2, End: n,
		Motion: func(f int) vecmath.Mat4 {
			return vecmath.Translate(vecmath.V(0, 0.1*float64(f), 0))
		},
	}}, nil)
}

func fastOpts() Opts {
	return Opts{
		Workers: 4, Width: 32, Height: 24,
		Repeats: 2, MaxIterations: 12, BaseFrames: 3, Seed: 7,
	}
}

func TestRunFixedRecordsFrames(t *testing.T) {
	res := Run(RunConfig{
		Scene: tinyScene(), Algorithm: kdtree.AlgoInPlace,
		Search: SearchFixed, Workers: 2, Width: 24, Height: 18,
		MaxIterations: 5,
	})
	if len(res.Frames) != 5 {
		t.Fatalf("recorded %d frames, want 5", len(res.Frames))
	}
	for _, f := range res.Frames {
		if f.CI != 17 || f.CB != 10 || f.S != 3 || f.R != 4096 {
			t.Fatalf("fixed run drifted from base config: %+v", f)
		}
		if f.Total <= 0 || f.Build <= 0 {
			t.Fatalf("non-positive timings: %+v", f)
		}
		if f.FrameIndex != 0 {
			t.Fatalf("static scene should stay on frame 0, got %d", f.FrameIndex)
		}
	}
	if res.BestCI != 17 || res.BestR != 4096 {
		t.Fatalf("fixed run best config wrong: %+v", res)
	}
}

func TestRunNelderMeadStaysInBounds(t *testing.T) {
	res := Run(RunConfig{
		Scene: tinyScene(), Algorithm: kdtree.AlgoLazy,
		Search: SearchNelderMead, Workers: 2, Width: 24, Height: 18,
		MaxIterations: 25, Seed: 3,
	})
	if len(res.Frames) == 0 {
		t.Fatal("no frames")
	}
	for _, f := range res.Frames {
		if f.CI < CIMin || f.CI > CIMax || f.CB < CBMin || f.CB > CBMax ||
			f.S < SMin || f.S > SMax || f.R < RMin || f.R > RMax {
			t.Fatalf("configuration escaped Table II ranges: %+v", f)
		}
		if f.R&(f.R-1) != 0 {
			t.Fatalf("R=%d not a power of two", f.R)
		}
	}
	if res.BestTotal <= 0 {
		t.Fatal("no steady-state time")
	}
}

func TestRunNonLazyDoesNotTuneR(t *testing.T) {
	res := Run(RunConfig{
		Scene: tinyScene(), Algorithm: kdtree.AlgoNested,
		Search: SearchNelderMead, Workers: 2, Width: 24, Height: 18,
		MaxIterations: 10, Seed: 5,
	})
	for _, f := range res.Frames {
		if f.R != 4096 {
			t.Fatalf("R changed on a non-lazy algorithm: %+v", f)
		}
	}
}

func TestFrameSequenceDynamic(t *testing.T) {
	sc := tinyDynamic(3)
	rc := RunConfig{Scene: sc, RepeatFrames: 5}.normalize()
	seq := frameSequence(rc)
	// Frames: 0,0,0,0,0, 1,1,1,1,1, 2,2,2,2,2, wrap.
	for i := 0; i < 30; i++ {
		want := (i % 15) / 5
		if got := seq(i); got != want {
			t.Fatalf("seq(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestFrameSequenceStatic(t *testing.T) {
	rc := RunConfig{Scene: tinyScene()}.normalize()
	seq := frameSequence(rc)
	for i := 0; i < 10; i++ {
		if seq(i) != 0 {
			t.Fatal("static scene left frame 0")
		}
	}
}

func TestRunDynamicAdvancesFrames(t *testing.T) {
	res := Run(RunConfig{
		Scene: tinyDynamic(4), Algorithm: kdtree.AlgoInPlace,
		Search: SearchFixed, Workers: 2, Width: 16, Height: 12,
		MaxIterations: 12, RepeatFrames: 2,
	})
	seen := map[int]bool{}
	for _, f := range res.Frames {
		seen[f.FrameIndex] = true
	}
	if len(seen) < 3 {
		t.Fatalf("dynamic run visited only frames %v", seen)
	}
}

func TestMeasureFixedPositive(t *testing.T) {
	d := MeasureFixed(RunConfig{
		Scene: tinyScene(), Algorithm: kdtree.AlgoNodeLevel,
		Workers: 2, Width: 16, Height: 12,
	}, 3)
	if d <= 0 {
		t.Fatal("MeasureFixed returned non-positive duration")
	}
}

func TestExhaustiveRunTerminates(t *testing.T) {
	res := Run(RunConfig{
		Scene: tinyDynamic(2), Algorithm: kdtree.AlgoNodeLevel,
		Search: SearchExhaustive, Workers: 2, Width: 16, Height: 12,
		MaxIterations:     1 << 20,
		ExhaustiveStrides: []int{49, 30, 7}, // 3*3*2 = 18 configs
		PostConverge:      2,
	})
	if len(res.Frames) > 25 {
		t.Fatalf("exhaustive run did not stop at grid end: %d frames", len(res.Frames))
	}
	if res.ConvergedAt < 0 {
		t.Fatal("exhaustive run never finished its grid")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.N != 5 || s.Mean != 3 {
		t.Fatalf("Summarize wrong: %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles wrong: %+v", s)
	}
	if (Summary{}) != Summarize(nil) {
		t.Fatal("empty summarize should be zero")
	}
	one := Summarize([]float64{7})
	if one.Min != 7 || one.Q1 != 7 || one.Max != 7 {
		t.Fatalf("singleton summary wrong: %+v", one)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestNormalize(t *testing.T) {
	if Normalize01(3, 3, 101) != 0 || Normalize01(101, 3, 101) != 100 {
		t.Fatal("Normalize01 endpoints wrong")
	}
	if Normalize01(5, 5, 5) != 0 {
		t.Fatal("degenerate range should map to 0")
	}
	if NormalizeLog2(16, 16, 8192) != 0 || NormalizeLog2(8192, 16, 8192) != 100 {
		t.Fatal("NormalizeLog2 endpoints wrong")
	}
	mid := NormalizeLog2(512, 16, 8192) // log2: 4..13, 512 -> 9 -> (9-4)/9
	if math.Abs(mid-100*5.0/9.0) > 1e-9 {
		t.Fatalf("NormalizeLog2 mid = %v", mid)
	}
}

func TestMedianDuration(t *testing.T) {
	if MedianDuration(nil) != 0 {
		t.Fatal("empty median should be 0")
	}
	ds := []time.Duration{5, 1, 9}
	if MedianDuration(ds) != 5 {
		t.Fatal("median wrong")
	}
	// input must not be reordered
	if ds[0] != 5 || ds[2] != 9 {
		t.Fatal("MedianDuration mutated its input")
	}
}

func TestPlatforms(t *testing.T) {
	ps := Platforms()
	if len(ps) != 4 {
		t.Fatalf("want 4 platforms, got %d", len(ps))
	}
	if ReferencePlatform().Threads != 24 {
		t.Fatalf("reference platform should be the 24-thread Opteron")
	}
	for _, p := range ps {
		if p.Threads < 1 || p.Name == "" {
			t.Fatalf("bad platform %+v", p)
		}
	}
}

func TestSpeedupCell(t *testing.T) {
	c := SpeedupCell{Base: 200 * time.Millisecond, Tuned: 100 * time.Millisecond}
	if c.Speedup() != 2 {
		t.Fatalf("Speedup = %v", c.Speedup())
	}
	if (SpeedupCell{}).Speedup() != 0 {
		t.Fatal("zero cell should have speedup 0")
	}
}

func TestSpeedupExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is slow")
	}
	cells, err := SpeedupExperiment([]string{"WoodDoll"}, []kdtree.Algorithm{kdtree.AlgoInPlace}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells", len(cells))
	}
	c := cells[0]
	if c.Base <= 0 || c.Tuned <= 0 {
		t.Fatalf("missing timings: %+v", c)
	}
	if c.TunedCI < CIMin || c.TunedCI > CIMax {
		t.Fatalf("tuned CI out of range: %+v", c)
	}

	var buf bytes.Buffer
	PrintFigure5(&buf, cells)
	PrintFigure6(&buf, cells)
	out := buf.String()
	if !strings.Contains(out, "WoodDoll") || !strings.Contains(out, "in-place") {
		t.Fatalf("printers lost data:\n%s", out)
	}
}

func TestSpeedupExperimentUnknownScene(t *testing.T) {
	if _, err := SpeedupExperiment([]string{"nope"}, kdtree.Algorithms, fastOpts()); err == nil {
		t.Fatal("unknown scene accepted")
	}
}

func TestPrinters(t *testing.T) {
	var buf bytes.Buffer
	PrintTableI(&buf)
	PrintTableII(&buf)
	out := buf.String()
	for _, want := range []string{"CI", "CB", "S", "R", "[3, 101]", "[0, 60]", "[1, 8]", "powers of 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tables missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	PrintFigure7(&buf, "Figure 7a", []ParamDistribution{
		{Label: "Bunny", Param: "CI", Summary: Summarize([]float64{10, 20, 30})},
	})
	if !strings.Contains(buf.String(), "Bunny") {
		t.Fatal("figure 7 printer lost label")
	}

	buf.Reset()
	PrintFigure8(&buf, "Sponza", []ConvergencePoint{{0, 0.8}, {1, 1.5}})
	if !strings.Contains(buf.String(), "Sponza") || !strings.Contains(buf.String(), "1.50x") {
		t.Fatalf("figure 8 printer wrong:\n%s", buf.String())
	}

	buf.Reset()
	PrintFigure9(&buf, "Sibenik", []SearchComparison{{
		Algorithm: kdtree.AlgoLazy,
		Default:   Summarize([]float64{1}), NelderMead: Summarize([]float64{0.6}),
		Exhaustive: Summarize([]float64{0.5}),
	}})
	if !strings.Contains(buf.String(), "lazy") {
		t.Fatal("figure 9 printer lost algorithm")
	}
}

func TestSpeedupTrace(t *testing.T) {
	r := &RunResult{Frames: []FrameRecord{
		{Total: 200 * time.Millisecond},
		{Total: 100 * time.Millisecond},
	}}
	tr := r.SpeedupTrace(100 * time.Millisecond)
	if len(tr) != 2 || tr[0] != 0.5 || tr[1] != 1.0 {
		t.Fatalf("trace = %v", tr)
	}
}

func TestSelectAlgorithm(t *testing.T) {
	if testing.Short() {
		t.Skip("selection runs four tuning loops")
	}
	sel := SelectAlgorithm(tinyScene(), fastOpts())
	if len(sel.Choices) != 4 {
		t.Fatalf("selection tried %d algorithms", len(sel.Choices))
	}
	if sel.Best.Tuned <= 0 {
		t.Fatal("no winner")
	}
	for _, c := range sel.Choices {
		if c.Tuned < sel.Best.Tuned {
			t.Fatalf("winner %v (%v) is not the fastest; %v took %v",
				sel.Best.Algorithm, sel.Best.Tuned, c.Algorithm, c.Tuned)
		}
	}
	var buf bytes.Buffer
	PrintSelection(&buf, sel)
	if !strings.Contains(buf.String(), sel.Best.Algorithm.String()) {
		t.Fatal("printer lost the winner")
	}
}

func TestCameraPathAdvancesViews(t *testing.T) {
	sc := tinyScene().WithCameraPath(6, func(f int) scene.View {
		v := tinyScene().View
		v.Eye = v.Eye.Add(vecmath.V(float64(f), 0, 0))
		return v
	})
	if sc.ViewAt(0).Eye == sc.ViewAt(5).Eye {
		t.Fatal("camera path does not move the eye")
	}
	// Out-of-range frames clamp.
	if sc.ViewAt(99).Eye != sc.ViewAt(5).Eye {
		t.Fatal("camera path frame not clamped")
	}
	res := Run(RunConfig{
		Scene: sc, Algorithm: kdtree.AlgoInPlace, Search: SearchFixed,
		Workers: 2, Width: 16, Height: 12, MaxIterations: 8, RepeatFrames: 1,
	})
	frames := map[int]bool{}
	for _, f := range res.Frames {
		frames[f.FrameIndex] = true
	}
	if len(frames) < 4 {
		t.Fatalf("camera-path run visited only frames %v", frames)
	}
}

func TestRetuneOptionsReachTuner(t *testing.T) {
	// With drift detection enabled the run must still behave; this is a
	// plumbing test (the adaptation behaviour itself is covered in the
	// autotune package where the cost surface is controllable).
	res := Run(RunConfig{
		Scene: tinyScene(), Algorithm: kdtree.AlgoNodeLevel,
		Search: SearchNelderMead, Workers: 2, Width: 16, Height: 12,
		MaxIterations: 15, Seed: 2,
		RetuneThreshold: 2.0, RetuneWindow: 3,
	})
	if len(res.Frames) == 0 {
		t.Fatal("no frames recorded")
	}
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	cells := []SpeedupCell{{
		Scene: "Sibenik", Algorithm: kdtree.AlgoLazy,
		Base: 200 * time.Millisecond, Tuned: 100 * time.Millisecond,
		TunedCI: 40, TunedCB: 5, TunedS: 2, TunedR: 512, ConvergedAt: 33,
	}}
	if err := WriteSpeedupCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Sibenik,lazy,0.200000,0.100000,2.0000,40,5,2,512,33") {
		t.Fatalf("speedup CSV wrong:\n%s", out)
	}

	buf.Reset()
	if err := WriteDistributionCSV(&buf, []ParamDistribution{
		{Label: "Sponza", Param: "CI", Summary: Summarize([]float64{1, 2, 3})},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Sponza,CI,1.0000") {
		t.Fatalf("distribution CSV wrong:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteConvergenceCSV(&buf, []ConvergencePoint{{3, 1.25}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3,1.2500") {
		t.Fatalf("convergence CSV wrong:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteFramesCSV(&buf, []FrameRecord{{
		Iteration: 1, FrameIndex: 0, CI: 17, CB: 10, S: 3, R: 4096,
		Build: 50 * time.Millisecond, Render: 25 * time.Millisecond, Total: 75 * time.Millisecond,
	}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1,0,17,10,3,4096,0.050000,0.025000,0.075000") {
		t.Fatalf("frames CSV wrong:\n%s", buf.String())
	}
}
