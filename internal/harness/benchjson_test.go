package harness

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kdtune/internal/kdtree"
	"kdtune/internal/scene"
)

func TestNewBenchStat(t *testing.T) {
	if s := NewBenchStat(nil); s != (BenchStat{}) {
		t.Fatalf("empty sample: got %+v, want zero", s)
	}
	ds := []time.Duration{
		4 * time.Millisecond, 2 * time.Millisecond, 6 * time.Millisecond,
		8 * time.Millisecond, 10 * time.Millisecond,
	}
	s := NewBenchStat(ds)
	if s.N != 5 || s.MedianMS != 6 || s.MeanMS != 6 {
		t.Errorf("stat = %+v, want median 6, mean 6, n 5", s)
	}
	if s.IQRMS != 4 { // q1=4, q3=8 with linear interpolation
		t.Errorf("IQR = %g, want 4", s.IQRMS)
	}
	wantCoV := math.Sqrt(8.0) / 6.0 // population stddev of {2,4,6,8,10} is sqrt(8)
	if math.Abs(s.CoV-wantCoV) > 1e-12 {
		t.Errorf("CoV = %g, want %g", s.CoV, wantCoV)
	}
}

func syntheticReport(tag string, frameMS map[string]float64) *BenchReport {
	rep := &BenchReport{Schema: BenchSchema, Tag: tag, Host: Host()}
	for key, ms := range frameMS {
		parts := strings.SplitN(key, "/", 2)
		rep.Results = append(rep.Results, BenchResult{
			Scene: parts[0], Algorithm: parts[1],
			Frame: BenchStat{MedianMS: ms, N: 9},
			Base:  BenchStat{MedianMS: ms * 1.3, N: 9},
		})
	}
	return rep
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep := syntheticReport("trip", map[string]float64{"Sponza/in-place": 12.5})
	rep.Results[0].AllocsPerBuild = 42.5
	rep.Results[0].BytesPerBuild = 8192
	rep.Results[0].GCPauseMS = 0.25
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteBenchReportFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != "trip" || len(got.Results) != 1 || got.Results[0].Frame.MedianMS != 12.5 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	r := got.Results[0]
	if r.AllocsPerBuild != 42.5 || r.BytesPerBuild != 8192 || r.GCPauseMS != 0.25 {
		t.Fatalf("allocation fields mangled: %+v", r)
	}
}

func TestReadBenchReportRejectsWrongSchema(t *testing.T) {
	if _, err := ReadBenchReport(bytes.NewReader([]byte(`{"schema":"bogus/v9"}`))); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ReadBenchReport(bytes.NewReader([]byte(`not json`))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestCompareBenchReports covers the regression gate: a synthetic slowdown
// past the threshold must fail the comparison (kdbench -compare turns a
// non-OK result into a non-zero exit).
func TestCompareBenchReports(t *testing.T) {
	old := syntheticReport("old", map[string]float64{
		"Sponza/in-place": 10, "Sponza/nested": 20, "Bunny/lazy": 5,
	})

	t.Run("regression detected", func(t *testing.T) {
		new := syntheticReport("new", map[string]float64{
			"Sponza/in-place": 12.5, // +25%: regressed (base scales with frame, so both metrics trip)
			"Sponza/nested":   21,   // +5%: within threshold
			"Bunny/lazy":      4,    // improved
		})
		c := CompareBenchReports(old, new, 10)
		if c.OK() {
			t.Fatal("25% slowdown passed the 10% gate")
		}
		if len(c.Regressions) != 2 {
			t.Fatalf("regressions = %+v, want base+tuned for Sponza/in-place", c.Regressions)
		}
		metrics := map[string]bool{}
		for _, r := range c.Regressions {
			if r.Key != "Sponza/in-place" {
				t.Fatalf("regression on %s, want only Sponza/in-place", r.Key)
			}
			if math.Abs(r.Pct-25) > 1e-9 {
				t.Errorf("Pct = %g, want 25", r.Pct)
			}
			metrics[r.Metric] = true
		}
		if !metrics["base"] || !metrics["tuned"] {
			t.Errorf("regression metrics = %v, want both base and tuned", metrics)
		}
		if c.Checked != 3 {
			t.Errorf("Checked = %d, want 3", c.Checked)
		}
	})

	t.Run("changed tuned config is not compared", func(t *testing.T) {
		// The searches landed on different configurations, so the tuned
		// medians measure different work: the cell must be reported, not
		// gated — while its base comparison (fixed C_base) still applies.
		new := syntheticReport("new", map[string]float64{
			"Sponza/in-place": 30, "Sponza/nested": 20, "Bunny/lazy": 5,
		})
		for i := range new.Results {
			if new.Results[i].Key() == "Sponza/in-place" {
				new.Results[i].TunedCI = 42
				new.Results[i].Base = BenchStat{MedianMS: 13, N: 9} // = old's base (10 × 1.3)
			}
		}
		c := CompareBenchReports(old, new, 10)
		if !c.OK() {
			t.Fatalf("config-changed cell gated on tuned time: %+v", c)
		}
		if len(c.TunedSkipped) != 1 || !strings.Contains(c.TunedSkipped[0], "Sponza/in-place") {
			t.Fatalf("TunedSkipped = %v, want Sponza/in-place", c.TunedSkipped)
		}
	})

	t.Run("faulted cell fails", func(t *testing.T) {
		new := syntheticReport("new", map[string]float64{
			"Sponza/in-place": 10, "Sponza/nested": 20, "Bunny/lazy": 5,
		})
		for i := range new.Results {
			if new.Results[i].Key() == "Bunny/lazy" {
				new.Results[i].AbortedBuilds = 2
				new.Results[i].FallbackFrames = 1
			}
		}
		c := CompareBenchReports(old, new, 10)
		if c.OK() {
			t.Fatal("a cell measured through fallback builds passed the gate")
		}
		if len(c.Faulted) != 1 || !strings.Contains(c.Faulted[0], "Bunny/lazy") {
			t.Fatalf("Faulted = %v, want Bunny/lazy", c.Faulted)
		}
	})

	t.Run("missing cell fails", func(t *testing.T) {
		new := syntheticReport("new", map[string]float64{
			"Sponza/in-place": 10, "Sponza/nested": 20,
		})
		c := CompareBenchReports(old, new, 10)
		if c.OK() {
			t.Fatal("dropped benchmark cell passed the gate")
		}
		if len(c.Missing) != 1 || c.Missing[0] != "Bunny/lazy" {
			t.Fatalf("missing = %v, want [Bunny/lazy]", c.Missing)
		}
	})

	t.Run("clean pass", func(t *testing.T) {
		new := syntheticReport("new", map[string]float64{
			"Sponza/in-place": 10.5, "Sponza/nested": 19, "Bunny/lazy": 5,
			"Extra/in-place": 7, // new coverage is fine
		})
		c := CompareBenchReports(old, new, 10)
		if !c.OK() {
			t.Fatalf("clean comparison failed: %+v", c)
		}
	})

	t.Run("format mentions failures", func(t *testing.T) {
		new := syntheticReport("new", map[string]float64{
			"Sponza/in-place": 30, "Sponza/nested": 20,
		})
		var buf bytes.Buffer
		CompareBenchReports(old, new, 10).Format(&buf)
		out := buf.String()
		if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "MISSING") {
			t.Fatalf("format output lacks REGRESSION/MISSING lines:\n%s", out)
		}
	})
}

// TestRunBenchSmall runs the full protocol at a tiny scale on one scene and
// checks the report's shape.
func TestRunBenchSmall(t *testing.T) {
	rep := RunBench(BenchOptions{
		Scenes:     []*scene.Scene{scene.WoodDoll()},
		Algorithms: []kdtree.Algorithm{kdtree.AlgoInPlace},
		Tag:        "unit",
		Settings: BenchSettings{
			Width: 48, MaxIterations: 6, MeasureFrames: 3, WarmupFrames: 1, Seed: 1,
		},
	})
	if rep.Schema != BenchSchema || rep.Tag != "unit" {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if rep.Host.NumCPU <= 0 || rep.Host.GoVersion == "" {
		t.Fatalf("host info incomplete: %+v", rep.Host)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Key() != "WoodDoll/in-place" {
		t.Errorf("key = %q", r.Key())
	}
	if r.Frame.N != 3 || r.Base.N != 3 {
		t.Errorf("warmup discard wrong: frame n=%d base n=%d, want 3", r.Frame.N, r.Base.N)
	}
	if r.Frame.MedianMS <= 0 || r.Speedup <= 0 {
		t.Errorf("degenerate stats: %+v", r)
	}
	if r.TunedCI < CIMin || r.TunedCI > CIMax {
		t.Errorf("tuned CI %d outside [%d, %d]", r.TunedCI, CIMin, CIMax)
	}
	// The allocation probe runs on a warm Builder: the counters must be
	// finite and non-negative, and the steady state of the pooled arenas
	// should stay well under one allocation per triangle.
	if math.IsNaN(r.AllocsPerBuild) || r.AllocsPerBuild < 0 || r.BytesPerBuild < 0 || r.GCPauseMS < 0 {
		t.Errorf("allocation stats degenerate: allocs=%g bytes=%g gc=%g",
			r.AllocsPerBuild, r.BytesPerBuild, r.GCPauseMS)
	}
	if r.AllocsPerBuild > float64(r.Triangles) {
		t.Errorf("steady-state build allocates %.0f objects for %d triangles — arenas not reused?",
			r.AllocsPerBuild, r.Triangles)
	}
	// A zero DeadlineFactor is normalized to the default and recorded in the
	// report, so -compare can see which watchdog protocol was measured.
	if rep.Settings.DeadlineFactor != defaultBenchDeadlineFactor {
		t.Errorf("Settings.DeadlineFactor = %d, want default %d",
			rep.Settings.DeadlineFactor, defaultBenchDeadlineFactor)
	}
}

// TestBenchSettingsDeadlineFactorPassthrough pins that an explicit watchdog
// multiple survives normalization and lands in the report verbatim.
func TestBenchSettingsDeadlineFactorPassthrough(t *testing.T) {
	o := BenchOptions{Settings: BenchSettings{DeadlineFactor: 25}}.normalized()
	if o.Settings.DeadlineFactor != 25 {
		t.Fatalf("DeadlineFactor = %d, want 25", o.Settings.DeadlineFactor)
	}
	o = BenchOptions{}.normalized()
	if o.Settings.DeadlineFactor != defaultBenchDeadlineFactor {
		t.Fatalf("default DeadlineFactor = %d, want %d", o.Settings.DeadlineFactor, defaultBenchDeadlineFactor)
	}
}
