package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kdtune/internal/kdtree"
)

// Golden-file tests pin the exact text of the experiment artefacts (CSV
// exports and figure renderings) so formatting drift is a deliberate,
// reviewed change. Regenerate with:
//
//	go test ./internal/harness/ -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update if intended):\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// goldenCells is a fixed Figure 5/6 dataset with the shapes worth pinning:
// sub-millisecond times, >1 and <1 speedups, and an unconverged run.
func goldenCells() []SpeedupCell {
	return []SpeedupCell{
		{Scene: "Sponza", Algorithm: kdtree.AlgoNodeLevel,
			Base: 42500 * time.Microsecond, Tuned: 31300 * time.Microsecond,
			TunedCI: 35, TunedCB: 12, TunedS: 4, TunedR: 256, ConvergedAt: 38},
		{Scene: "Sponza", Algorithm: kdtree.AlgoLazy,
			Base: 880 * time.Microsecond, Tuned: 910 * time.Microsecond,
			TunedCI: 17, TunedCB: 10, TunedS: 3, TunedR: 4096, ConvergedAt: -1},
		{Scene: "Toasters", Algorithm: kdtree.AlgoInPlace,
			Base: 12 * time.Millisecond, Tuned: 6 * time.Millisecond,
			TunedCI: 80, TunedCB: 0, TunedS: 8, TunedR: 16, ConvergedAt: 51},
	}
}

func goldenDistributions() []ParamDistribution {
	return []ParamDistribution{
		{Label: "Sponza", Param: "CI",
			Summary: Summary{Min: 10, Q1: 22.5, Median: 40, Q3: 57.25, Max: 95, Mean: 43.75, N: 15}},
		{Label: "Sponza", Param: "R",
			Summary: Summary{Min: 0, Q1: 0, Median: 33.3333, Q3: 66.6667, Max: 100, Mean: 40, N: 15}},
		{Label: "FairyForest", Param: "CB",
			Summary: Summary{Min: 5, Q1: 5, Median: 5, Q3: 5, Max: 5, Mean: 5, N: 1}},
	}
}

func goldenConvergence() []ConvergencePoint {
	return []ConvergencePoint{
		{Iteration: 0, MeanSpeedup: 1},
		{Iteration: 1, MeanSpeedup: 0.8437},
		{Iteration: 2, MeanSpeedup: 1.52},
	}
}

func goldenFrames() []FrameRecord {
	return []FrameRecord{
		{Iteration: 0, FrameIndex: 0, CI: 17, CB: 10, S: 3, R: 4096,
			Build: 1500 * time.Microsecond, Render: 3500 * time.Microsecond, Total: 5 * time.Millisecond},
		{Iteration: 1, FrameIndex: 1, CI: 33, CB: 0, S: 1, R: 16,
			Build: 900 * time.Microsecond, Render: 4100 * time.Microsecond, Total: 5 * time.Millisecond},
	}
}

func TestGoldenCSV(t *testing.T) {
	cases := []struct {
		file  string
		write func(*bytes.Buffer) error
	}{
		{"speedup.csv", func(b *bytes.Buffer) error { return WriteSpeedupCSV(b, goldenCells()) }},
		{"distribution.csv", func(b *bytes.Buffer) error { return WriteDistributionCSV(b, goldenDistributions()) }},
		{"convergence.csv", func(b *bytes.Buffer) error { return WriteConvergenceCSV(b, goldenConvergence()) }},
		{"frames.csv", func(b *bytes.Buffer) error { return WriteFramesCSV(b, goldenFrames()) }},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.write(&buf); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.file, buf.Bytes())
		})
	}
}

func TestGoldenFigures(t *testing.T) {
	cases := []struct {
		file  string
		write func(*bytes.Buffer)
	}{
		{"figure5.txt", func(b *bytes.Buffer) { PrintFigure5(b, goldenCells()) }},
		{"figure6.txt", func(b *bytes.Buffer) { PrintFigure6(b, goldenCells()) }},
		{"figure7.txt", func(b *bytes.Buffer) { PrintFigure7(b, "Figure 7a: per-scene", goldenDistributions()) }},
		{"figure8.txt", func(b *bytes.Buffer) { PrintFigure8(b, "Sponza", goldenConvergence()) }},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			var buf bytes.Buffer
			tc.write(&buf)
			checkGolden(t, tc.file, buf.Bytes())
		})
	}
}
