package vecmath

// Triangle-box clipping via Sutherland–Hodgman against the six box planes.
//
// The SAH event sweep needs, for every primitive, the bounds of the part of
// the primitive that actually lies inside the current node. Using the raw
// triangle AABB instead ("loose" bounds) is cheaper but produces split
// candidates outside the node and over-counts straddling primitives; the
// Wald–Havran builder the paper bases its implementations on uses clipped
// ("perfect") bounds, so we provide both.

// maxClipVerts bounds the vertex count of a triangle clipped against six
// planes: each plane can add at most one vertex, 3 + 6 = 9.
const maxClipVerts = 9

// clipPolyAxis clips the polygon in src against the half-space
// {axis <= bound} (side=+1) or {axis >= bound} (side=-1), writing the result
// to dst and returning it. dst must not alias src.
func clipPolyAxis(dst, src []Vec3, axis Axis, bound float64, side float64) []Vec3 {
	dst = dst[:0]
	n := len(src)
	if n == 0 {
		return dst
	}
	inside := func(p Vec3) bool {
		if side > 0 {
			return p.Axis(axis) <= bound
		}
		return p.Axis(axis) >= bound
	}
	prev := src[n-1]
	prevIn := inside(prev)
	for i := 0; i < n; i++ {
		cur := src[i]
		curIn := inside(cur)
		if curIn != prevIn {
			// Edge crosses the plane: emit the intersection point.
			pa := prev.Axis(axis)
			ca := cur.Axis(axis)
			t := 0.0
			if ca != pa {
				t = (bound - pa) / (ca - pa)
			}
			dst = append(dst, prev.Lerp(cur, t).SetAxis(axis, bound))
		}
		if curIn {
			dst = append(dst, cur)
		}
		prev, prevIn = cur, curIn
	}
	return dst
}

// ClipTriangleBounds returns the bounding box of the portion of triangle t
// that lies inside box b. If the triangle does not intersect the box the
// returned box is empty (ok=false). The result is additionally intersected
// with b so that floating-point drift can never push it outside the node
// bounds.
func ClipTriangleBounds(t Triangle, b AABB) (AABB, bool) {
	var bufA, bufB [maxClipVerts]Vec3
	poly := append(bufA[:0], t.A, t.B, t.C)
	scratch := bufB[:0]

	for a := AxisX; a <= AxisZ; a++ {
		poly, scratch = clipPolyAxis(scratch, poly, a, b.Max.Axis(a), +1), poly
		if len(poly) == 0 {
			return EmptyAABB(), false
		}
		poly, scratch = clipPolyAxis(scratch, poly, a, b.Min.Axis(a), -1), poly
		if len(poly) == 0 {
			return EmptyAABB(), false
		}
	}

	out := EmptyAABB()
	for _, p := range poly {
		out = out.Extend(p)
	}
	out = out.Intersect(b)
	if out.IsEmpty() {
		return EmptyAABB(), false
	}
	return out, true
}
