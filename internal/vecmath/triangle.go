package vecmath

import "math"

// Triangle is the geometric primitive stored in kD-trees: three vertices in
// counter-clockwise winding order.
type Triangle struct {
	A, B, C Vec3
}

// Tri constructs a triangle from its three vertices.
func Tri(a, b, c Vec3) Triangle { return Triangle{a, b, c} }

// Bounds returns the triangle's axis-aligned bounding box.
func (t Triangle) Bounds() AABB {
	return AABB{
		Min: t.A.Min(t.B).Min(t.C),
		Max: t.A.Max(t.B).Max(t.C),
	}
}

// Centroid returns the barycentre of the triangle.
func (t Triangle) Centroid() Vec3 {
	return t.A.Add(t.B).Add(t.C).Scale(1.0 / 3.0)
}

// Normal returns the (unnormalised) geometric normal (B-A) x (C-A).
func (t Triangle) Normal() Vec3 {
	return t.B.Sub(t.A).Cross(t.C.Sub(t.A))
}

// UnitNormal returns the normalised geometric normal, or the zero vector
// for degenerate triangles.
func (t Triangle) UnitNormal() Vec3 { return t.Normal().Normalize() }

// Area returns the triangle's surface area.
func (t Triangle) Area() float64 { return 0.5 * t.Normal().Len() }

// IsDegenerate reports whether the triangle has (numerically) zero area or
// non-finite vertices. Degenerate triangles are skipped by intersection and
// never produce hits.
func (t Triangle) IsDegenerate() bool {
	if !t.A.IsFinite() || !t.B.IsFinite() || !t.C.IsFinite() {
		return true
	}
	return t.Normal().Len2() < 1e-300
}

// Transform returns the triangle with m applied to every vertex.
func (t Triangle) Transform(m Mat4) Triangle {
	return Triangle{m.ApplyPoint(t.A), m.ApplyPoint(t.B), m.ApplyPoint(t.C)}
}

// epsIntersect guards the Möller–Trumbore determinant against rays parallel
// to the triangle plane.
const epsIntersect = 1e-12

// IntersectRay intersects ray r with the triangle using the Möller–Trumbore
// algorithm. On a hit it returns the parametric distance t (in units of
// |r.Dir|) with t in (tMin, tMax), plus the barycentric coordinates (u, v)
// of the hit point with respect to vertices B and C.
func (t Triangle) IntersectRay(r Ray, tMin, tMax float64) (tHit, u, v float64, hit bool) {
	return IntersectRayPre(t.A, t.B.Sub(t.A), t.C.Sub(t.A), r, tMin, tMax)
}

// IntersectRayPre is IntersectRay over a triangle in precomputed-edge form:
// vertex a plus the edge vectors e1 = B-A and e2 = C-A. Callers that store
// many triangles this way (the kD-tree's SoA leaf layout) skip the two edge
// subtractions per test; results are bitwise identical to IntersectRay as
// long as e1/e2 were produced by exactly those subtractions.
func IntersectRayPre(a, e1, e2 Vec3, r Ray, tMin, tMax float64) (tHit, u, v float64, hit bool) {
	p := r.Dir.Cross(e2)
	det := e1.Dot(p)
	if math.Abs(det) < epsIntersect {
		return 0, 0, 0, false
	}
	inv := 1 / det
	s := r.Origin.Sub(a)
	u = s.Dot(p) * inv
	if u < 0 || u > 1 {
		return 0, 0, 0, false
	}
	q := s.Cross(e1)
	v = r.Dir.Dot(q) * inv
	if v < 0 || u+v > 1 {
		return 0, 0, 0, false
	}
	tHit = e2.Dot(q) * inv
	if tHit <= tMin || tHit >= tMax {
		return 0, 0, 0, false
	}
	return tHit, u, v, true
}
