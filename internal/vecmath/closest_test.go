package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

func TestClosestPointVertexRegions(t *testing.T) {
	tr := Tri(V(0, 0, 0), V(2, 0, 0), V(0, 2, 0))
	cases := []struct{ p, want Vec3 }{
		{V(-1, -1, 0), V(0, 0, 0)}, // behind A
		{V(3, -1, 0), V(2, 0, 0)},  // beyond B
		{V(-1, 3, 0), V(0, 2, 0)},  // beyond C
	}
	for _, c := range cases {
		if got := ClosestPointOnTriangle(c.p, tr); !got.ApproxEq(c.want, 1e-12) {
			t.Errorf("closest(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestClosestPointEdgeRegions(t *testing.T) {
	tr := Tri(V(0, 0, 0), V(2, 0, 0), V(0, 2, 0))
	got := ClosestPointOnTriangle(V(1, -1, 0), tr)
	if !got.ApproxEq(V(1, 0, 0), 1e-12) {
		t.Errorf("edge AB: %v", got)
	}
	got = ClosestPointOnTriangle(V(-1, 1, 0), tr)
	if !got.ApproxEq(V(0, 1, 0), 1e-12) {
		t.Errorf("edge AC: %v", got)
	}
	got = ClosestPointOnTriangle(V(2, 2, 0), tr)
	if !got.ApproxEq(V(1, 1, 0), 1e-12) {
		t.Errorf("edge BC: %v", got)
	}
}

func TestClosestPointInterior(t *testing.T) {
	tr := Tri(V(0, 0, 0), V(2, 0, 0), V(0, 2, 0))
	got := ClosestPointOnTriangle(V(0.5, 0.5, 3), tr)
	if !got.ApproxEq(V(0.5, 0.5, 0), 1e-12) {
		t.Errorf("interior projection: %v", got)
	}
	if d := DistToTriangle(V(0.5, 0.5, 3), tr); math.Abs(d-3) > 1e-12 {
		t.Errorf("DistToTriangle = %v, want 3", d)
	}
}

func TestClosestPointIsActuallyClosest(t *testing.T) {
	// Property: the returned point is on the triangle and no sampled point
	// of the triangle is closer.
	r := rand.New(rand.NewSource(60))
	for trial := 0; trial < 300; trial++ {
		tr := randTri(r, 4)
		if tr.IsDegenerate() {
			continue
		}
		p := randVec(r, 8)
		cp := ClosestPointOnTriangle(p, tr)
		dBest := cp.Sub(p).Len()
		// Sample barycentric grid.
		for i := 0; i <= 10; i++ {
			for j := 0; i+j <= 10; j++ {
				u, v := float64(i)/10, float64(j)/10
				q := tr.A.Scale(1 - u - v).Add(tr.B.Scale(u)).Add(tr.C.Scale(v))
				if q.Sub(p).Len() < dBest-1e-9 {
					t.Fatalf("sampled point %v closer than 'closest' %v (to %v)", q, cp, p)
				}
			}
		}
		// The closest point lies on the triangle plane within bounds.
		n := tr.UnitNormal()
		if off := math.Abs(cp.Sub(tr.A).Dot(n)); off > 1e-9 {
			t.Fatalf("closest point off plane by %v", off)
		}
	}
}

func TestDistToBox(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1))
	if DistToBox(V(0.5, 0.5, 0.5), b) != 0 {
		t.Fatal("interior point should have distance 0")
	}
	if d := DistToBox(V(2, 0.5, 0.5), b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("face distance = %v", d)
	}
	if d := DistToBox(V(2, 2, 0.5), b); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("edge distance = %v", d)
	}
	if d := DistToBox(V(2, 2, 2), b); math.Abs(d-math.Sqrt(3)) > 1e-12 {
		t.Fatalf("corner distance = %v", d)
	}
}
