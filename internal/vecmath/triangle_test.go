package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

func randTri(r *rand.Rand, scale float64) Triangle {
	return Tri(randVec(r, scale), randVec(r, scale), randVec(r, scale))
}

func TestTriangleBoundsContainVertices(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		tr := randTri(r, 10)
		b := tr.Bounds()
		if !b.Contains(tr.A) || !b.Contains(tr.B) || !b.Contains(tr.C) {
			t.Fatalf("bounds %v miss a vertex of %v", b, tr)
		}
	}
}

func TestTriangleAreaAndNormal(t *testing.T) {
	tr := Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0))
	if math.Abs(tr.Area()-0.5) > 1e-12 {
		t.Fatalf("Area = %v", tr.Area())
	}
	n := tr.UnitNormal()
	if !n.ApproxEq(V(0, 0, 1), 1e-12) {
		t.Fatalf("UnitNormal = %v", n)
	}
}

func TestTriangleCentroid(t *testing.T) {
	tr := Tri(V(0, 0, 0), V(3, 0, 0), V(0, 3, 0))
	if !tr.Centroid().ApproxEq(V(1, 1, 0), 1e-12) {
		t.Fatalf("Centroid = %v", tr.Centroid())
	}
}

func TestDegenerateTriangles(t *testing.T) {
	if Tri(V(0, 0, 0), V(1, 1, 1), V(2, 2, 2)).IsDegenerate() == false {
		t.Fatal("collinear triangle not degenerate")
	}
	if Tri(V(0, 0, 0), V(0, 0, 0), V(1, 0, 0)).IsDegenerate() == false {
		t.Fatal("repeated-vertex triangle not degenerate")
	}
	nan := math.NaN()
	if Tri(V(nan, 0, 0), V(1, 0, 0), V(0, 1, 0)).IsDegenerate() == false {
		t.Fatal("NaN triangle not degenerate")
	}
	if Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0)).IsDegenerate() {
		t.Fatal("healthy triangle reported degenerate")
	}
	// Degenerate triangles never produce hits.
	d := Tri(V(0, 0, 0), V(1, 1, 1), V(2, 2, 2))
	if _, _, _, hit := d.IntersectRay(NewRay(V(0.5, 0.5, -1), V(0, 0, 1)), 0, 100); hit {
		t.Fatal("degenerate triangle produced a hit")
	}
}

func TestIntersectRayHit(t *testing.T) {
	tr := Tri(V(0, 0, 0), V(2, 0, 0), V(0, 2, 0))
	r := NewRay(V(0.5, 0.5, -3), V(0, 0, 1))
	tHit, u, v, hit := tr.IntersectRay(r, 0, math.Inf(1))
	if !hit {
		t.Fatal("ray should hit triangle")
	}
	if math.Abs(tHit-3) > 1e-12 {
		t.Fatalf("tHit = %v, want 3", tHit)
	}
	// Hit point = A + u*(B-A) + v*(C-A) must equal ray.At(tHit).
	p := tr.A.Add(tr.B.Sub(tr.A).Scale(u)).Add(tr.C.Sub(tr.A).Scale(v))
	if !p.ApproxEq(r.At(tHit), 1e-9) {
		t.Fatalf("barycentric reconstruction %v != hit point %v", p, r.At(tHit))
	}
}

func TestIntersectRayMissOutside(t *testing.T) {
	tr := Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0))
	misses := []Ray{
		NewRay(V(2, 2, -1), V(0, 0, 1)),     // outside the triangle
		NewRay(V(0.2, 0.2, -1), V(1, 0, 0)), // parallel to plane
		NewRay(V(0.2, 0.2, 1), V(0, 0, 1)),  // behind: hit at negative t
	}
	for i, r := range misses {
		if _, _, _, hit := tr.IntersectRay(r, 0, math.Inf(1)); hit {
			t.Errorf("case %d: expected miss", i)
		}
	}
}

func TestIntersectRayRespectsInterval(t *testing.T) {
	tr := Tri(V(0, 0, 0), V(2, 0, 0), V(0, 2, 0))
	r := NewRay(V(0.5, 0.5, -3), V(0, 0, 1))
	if _, _, _, hit := tr.IntersectRay(r, 0, 2.9); hit {
		t.Fatal("hit beyond tMax accepted")
	}
	if _, _, _, hit := tr.IntersectRay(r, 3.1, 100); hit {
		t.Fatal("hit before tMin accepted")
	}
}

func TestQuickIntersectionPointOnPlane(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	hits := 0
	for i := 0; i < 2000; i++ {
		tr := randTri(r, 5)
		if tr.IsDegenerate() {
			continue
		}
		// Aim roughly at the centroid so a good fraction of rays hit.
		o := randVec(r, 15)
		ray := NewRay(o, tr.Centroid().Sub(o).Add(randVec(r, 0.5)))
		tHit, _, _, hit := tr.IntersectRay(ray, 1e-9, math.Inf(1))
		if !hit {
			continue
		}
		hits++
		p := ray.At(tHit)
		n := tr.UnitNormal()
		dist := math.Abs(p.Sub(tr.A).Dot(n))
		if dist > 1e-6*(1+p.Len()) {
			t.Fatalf("hit point %v off plane by %v", p, dist)
		}
	}
	if hits < 100 {
		t.Fatalf("too few hits (%d) for the property to be meaningful", hits)
	}
}

func TestTriangleTransform(t *testing.T) {
	tr := Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0))
	moved := tr.Transform(Translate(V(5, 0, 0)))
	if !moved.A.ApproxEq(V(5, 0, 0), 1e-12) || !moved.B.ApproxEq(V(6, 0, 0), 1e-12) {
		t.Fatalf("Transform wrong: %v", moved)
	}
	if math.Abs(moved.Area()-tr.Area()) > 1e-12 {
		t.Fatal("rigid transform changed area")
	}
}
