// Package vecmath provides the small linear-algebra and computational
// geometry substrate used by the kD-tree builders, the SAH cost model and
// the ray caster: 3-component vectors, 4x4 affine transforms, axis-aligned
// bounding boxes, rays, triangles, ray-triangle intersection and
// triangle-box clipping.
//
// Everything operates on float64. The package is allocation-free on its hot
// paths (intersection, box arithmetic) so it can be called per primitive and
// per ray without pressuring the garbage collector.
package vecmath

import (
	"fmt"
	"math"
)

// Axis identifies one of the three coordinate axes. It doubles as an index
// into Vec3 components and as the split-axis tag stored in kD-tree nodes.
type Axis int

// The three coordinate axes.
const (
	AxisX Axis = 0
	AxisY Axis = 1
	AxisZ Axis = 2
)

// String returns "X", "Y" or "Z".
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "X"
	case AxisY:
		return "Y"
	case AxisZ:
		return "Z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Next returns the next axis in cyclic X->Y->Z->X order.
func (a Axis) Next() Axis { return (a + 1) % 3 }

// Vec3 is a three-component vector (or point) in double precision.
type Vec3 struct {
	X, Y, Z float64
}

// V constructs a Vec3 from its components.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Splat returns the vector (s, s, s).
func Splat(s float64) Vec3 { return Vec3{s, s, s} }

// Axis returns component a of v.
func (v Vec3) Axis(a Axis) float64 {
	switch a {
	case AxisX:
		return v.X
	case AxisY:
		return v.Y
	default:
		return v.Z
	}
}

// SetAxis returns a copy of v with component a replaced by s.
func (v Vec3) SetAxis(a Axis, s float64) Vec3 {
	switch a {
	case AxisX:
		v.X = s
	case AxisY:
		v.Y = s
	default:
		v.Z = s
	}
	return v
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Mul returns the component-wise product v * w.
func (v Vec3) Mul(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Scale returns s * v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Recip returns the component-wise reciprocal (1/x, 1/y, 1/z). Zero
// components map to ±Inf following IEEE semantics, which is exactly what
// slab tests want for axis-parallel rays.
func (v Vec3) Recip() Vec3 { return Vec3{1 / v.X, 1 / v.Y, 1 / v.Z} }

// Dot returns the scalar product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Len2 returns the squared Euclidean length of v.
func (v Vec3) Len2() float64 { return v.Dot(v) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged so callers never observe NaN components.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// Lerp returns v + t*(w-v), the linear interpolation between v (t=0) and
// w (t=1).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + t*(w.X-v.X),
		v.Y + t*(w.Y-v.Y),
		v.Z + t*(w.Z-v.Z),
	}
}

// MaxAxis returns the axis of the largest component of v, preferring X over
// Y over Z on ties.
func (v Vec3) MaxAxis() Axis {
	a := AxisX
	if v.Y > v.Axis(a) {
		a = AxisY
	}
	if v.Z > v.Axis(a) {
		a = AxisZ
	}
	return a
}

// IsFinite reports whether all components are finite (neither NaN nor Inf).
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// ApproxEq reports whether v and w differ by at most eps in every component.
func (v Vec3) ApproxEq(w Vec3, eps float64) bool {
	return math.Abs(v.X-w.X) <= eps &&
		math.Abs(v.Y-w.Y) <= eps &&
		math.Abs(v.Z-w.Z) <= eps
}

// String formats v as (x, y, z) with compact precision.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.6g, %.6g, %.6g)", v.X, v.Y, v.Z)
}
