package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

func TestIdentityIsNeutral(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	id := Identity()
	for i := 0; i < 100; i++ {
		p := randVec(r, 10)
		if !id.ApplyPoint(p).ApproxEq(p, 1e-12) {
			t.Fatalf("identity moved point %v", p)
		}
		if !id.ApplyDir(p).ApproxEq(p, 1e-12) {
			t.Fatalf("identity changed direction %v", p)
		}
	}
}

func TestTranslateAffectsPointsNotDirs(t *testing.T) {
	m := Translate(V(1, 2, 3))
	if !m.ApplyPoint(V(0, 0, 0)).ApproxEq(V(1, 2, 3), 1e-12) {
		t.Fatal("translate wrong on point")
	}
	if !m.ApplyDir(V(1, 0, 0)).ApproxEq(V(1, 0, 0), 1e-12) {
		t.Fatal("translate should not affect directions")
	}
}

func TestRotatePreservesLength(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		axis := Axis(r.Intn(3))
		m := Rotate(axis, r.Float64()*2*math.Pi)
		v := randVec(r, 5)
		got := m.ApplyDir(v)
		if math.Abs(got.Len()-v.Len()) > 1e-9*(1+v.Len()) {
			t.Fatalf("rotation changed length: %v -> %v", v, got)
		}
		// Component along the rotation axis is invariant.
		if math.Abs(got.Axis(axis)-v.Axis(axis)) > 1e-9 {
			t.Fatalf("rotation about %v changed that component", axis)
		}
	}
}

func TestRotateQuarterTurn(t *testing.T) {
	m := Rotate(AxisZ, math.Pi/2)
	got := m.ApplyDir(V(1, 0, 0))
	if !got.ApproxEq(V(0, 1, 0), 1e-12) {
		t.Fatalf("quarter turn about Z: %v", got)
	}
}

func TestMulMatComposition(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		a := RotateAround(Axis(r.Intn(3)), r.Float64(), randVec(r, 3))
		b := Translate(randVec(r, 3))
		p := randVec(r, 5)
		composed := a.MulMat(b).ApplyPoint(p)
		sequential := a.ApplyPoint(b.ApplyPoint(p))
		if !composed.ApproxEq(sequential, 1e-9) {
			t.Fatalf("(a*b)p != a(bp): %v vs %v", composed, sequential)
		}
	}
}

func TestRotateAroundFixesPivot(t *testing.T) {
	pivot := V(3, -2, 1)
	m := RotateAround(AxisY, 1.234, pivot)
	if !m.ApplyPoint(pivot).ApproxEq(pivot, 1e-9) {
		t.Fatal("pivot moved under RotateAround")
	}
}

func TestScale(t *testing.T) {
	m := ScaleUniform(2)
	if !m.ApplyPoint(V(1, 2, 3)).ApproxEq(V(2, 4, 6), 1e-12) {
		t.Fatal("uniform scale wrong")
	}
	n := ScaleVec(V(1, 2, 3))
	if !n.ApplyPoint(V(1, 1, 1)).ApproxEq(V(1, 2, 3), 1e-12) {
		t.Fatal("per-axis scale wrong")
	}
}
