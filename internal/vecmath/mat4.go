package vecmath

import "math"

// Mat4 is a 4x4 matrix in row-major order, used for the affine transforms
// that drive the animated scenes (rigid motion, scaling, articulation).
type Mat4 struct {
	M [4][4]float64
}

// Identity returns the identity transform.
func Identity() Mat4 {
	var m Mat4
	for i := 0; i < 4; i++ {
		m.M[i][i] = 1
	}
	return m
}

// Translate returns the transform that adds v to every point.
func Translate(v Vec3) Mat4 {
	m := Identity()
	m.M[0][3] = v.X
	m.M[1][3] = v.Y
	m.M[2][3] = v.Z
	return m
}

// ScaleUniform returns the transform scaling every point by s about the
// origin.
func ScaleUniform(s float64) Mat4 { return ScaleVec(Splat(s)) }

// ScaleVec returns the transform scaling each axis by the corresponding
// component of s about the origin.
func ScaleVec(s Vec3) Mat4 {
	m := Identity()
	m.M[0][0] = s.X
	m.M[1][1] = s.Y
	m.M[2][2] = s.Z
	return m
}

// Rotate returns the rotation by angle radians about the given axis through
// the origin.
func Rotate(axis Axis, angle float64) Mat4 {
	c, s := math.Cos(angle), math.Sin(angle)
	m := Identity()
	switch axis {
	case AxisX:
		m.M[1][1], m.M[1][2] = c, -s
		m.M[2][1], m.M[2][2] = s, c
	case AxisY:
		m.M[0][0], m.M[0][2] = c, s
		m.M[2][0], m.M[2][2] = -s, c
	default:
		m.M[0][0], m.M[0][1] = c, -s
		m.M[1][0], m.M[1][1] = s, c
	}
	return m
}

// RotateAround returns the rotation by angle about the given axis through
// pivot p instead of the origin.
func RotateAround(axis Axis, angle float64, p Vec3) Mat4 {
	return Translate(p).MulMat(Rotate(axis, angle)).MulMat(Translate(p.Neg()))
}

// MulMat returns the matrix product m * n (n applied first).
func (m Mat4) MulMat(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			sum := 0.0
			for k := 0; k < 4; k++ {
				sum += m.M[i][k] * n.M[k][j]
			}
			r.M[i][j] = sum
		}
	}
	return r
}

// ApplyPoint transforms point p (implicit homogeneous coordinate 1).
func (m Mat4) ApplyPoint(p Vec3) Vec3 {
	x := m.M[0][0]*p.X + m.M[0][1]*p.Y + m.M[0][2]*p.Z + m.M[0][3]
	y := m.M[1][0]*p.X + m.M[1][1]*p.Y + m.M[1][2]*p.Z + m.M[1][3]
	z := m.M[2][0]*p.X + m.M[2][1]*p.Y + m.M[2][2]*p.Z + m.M[2][3]
	w := m.M[3][0]*p.X + m.M[3][1]*p.Y + m.M[3][2]*p.Z + m.M[3][3]
	if w != 1 && w != 0 {
		return Vec3{x / w, y / w, z / w}
	}
	return Vec3{x, y, z}
}

// ApplyDir transforms direction d (implicit homogeneous coordinate 0), i.e.
// ignores the translation part.
func (m Mat4) ApplyDir(d Vec3) Vec3 {
	return Vec3{
		m.M[0][0]*d.X + m.M[0][1]*d.Y + m.M[0][2]*d.Z,
		m.M[1][0]*d.X + m.M[1][1]*d.Y + m.M[1][2]*d.Z,
		m.M[2][0]*d.X + m.M[2][1]*d.Y + m.M[2][2]*d.Z,
	}
}
