package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBox(r *rand.Rand) AABB {
	return NewAABB(randVec(r, 10), randVec(r, 10))
}

func TestEmptyAABB(t *testing.T) {
	e := EmptyAABB()
	if !e.IsEmpty() {
		t.Fatal("EmptyAABB not empty")
	}
	if e.SurfaceArea() != 0 || e.Volume() != 0 {
		t.Fatal("empty box should have zero area and volume")
	}
	b := NewAABB(V(0, 0, 0), V(1, 2, 3))
	if e.Union(b) != b {
		t.Fatal("empty box is not the union identity")
	}
	if b.Union(e) != b {
		t.Fatal("empty box is not the union identity (right)")
	}
}

func TestNewAABBOrdersCorners(t *testing.T) {
	b := NewAABB(V(1, -2, 3), V(-1, 2, -3))
	if b.Min != V(-1, -2, -3) || b.Max != V(1, 2, 3) {
		t.Fatalf("NewAABB did not normalise corners: %v", b)
	}
}

func TestSurfaceAreaAndVolume(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(2, 3, 4))
	if got := b.SurfaceArea(); got != 2*(6+12+8) {
		t.Fatalf("SurfaceArea = %v", got)
	}
	if got := b.Volume(); got != 24 {
		t.Fatalf("Volume = %v", got)
	}
}

func TestUnionContains(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		a, b := randBox(r), randBox(r)
		u := a.Union(b)
		if !u.ContainsBox(a) || !u.ContainsBox(b) {
			t.Fatalf("union %v does not contain operands %v, %v", u, a, b)
		}
	}
}

func TestIntersectWithin(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		a, b := randBox(r), randBox(r)
		x := a.Intersect(b)
		if x.IsEmpty() {
			continue
		}
		if !a.ContainsBox(x) || !b.ContainsBox(x) {
			t.Fatalf("intersection %v escapes operands %v, %v", x, a, b)
		}
	}
}

func TestSplitPartition(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(10, 10, 10))
	for a := AxisX; a <= AxisZ; a++ {
		l, rr := b.Split(a, 4)
		if l.Max.Axis(a) != 4 || rr.Min.Axis(a) != 4 {
			t.Fatalf("split plane not respected on %v: %v | %v", a, l, rr)
		}
		if math.Abs(l.Volume()+rr.Volume()-b.Volume()) > 1e-9 {
			t.Fatalf("split volumes do not add up on %v", a)
		}
		if l.Union(rr) != b {
			t.Fatalf("split halves do not union to original on %v", a)
		}
	}
}

func TestSplitClampsOutOfRangePlane(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1))
	l, r := b.Split(AxisX, -5)
	if l.IsEmpty() && r != b {
		t.Fatalf("clamped split produced wrong halves: %v | %v", l, r)
	}
	if l.Max.X != 0 {
		t.Fatalf("plane should clamp to box min, got %v", l.Max.X)
	}
	l, r = b.Split(AxisX, 99)
	if r.Min.X != 1 {
		t.Fatalf("plane should clamp to box max, got %v", r.Min.X)
	}
	_ = l
}

func TestContainsAndOverlap(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1))
	if !b.Contains(V(0.5, 0.5, 0.5)) || !b.Contains(V(0, 0, 0)) || !b.Contains(V(1, 1, 1)) {
		t.Fatal("Contains rejects interior/boundary points")
	}
	if b.Contains(V(1.001, 0.5, 0.5)) {
		t.Fatal("Contains accepts exterior point")
	}
	c := NewAABB(V(0.5, 0.5, 0.5), V(2, 2, 2))
	if !b.Overlaps(c) {
		t.Fatal("overlapping boxes reported disjoint")
	}
	d := NewAABB(V(2, 2, 2), V(3, 3, 3))
	if b.Overlaps(d) {
		t.Fatal("disjoint boxes reported overlapping")
	}
	// Touching at a face counts as overlap (shared boundary points).
	e := NewAABB(V(1, 0, 0), V(2, 1, 1))
	if !b.Overlaps(e) {
		t.Fatal("face-touching boxes reported disjoint")
	}
}

func TestGrow(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1)).Grow(0.5)
	if b.Min != V(-0.5, -0.5, -0.5) || b.Max != V(1.5, 1.5, 1.5) {
		t.Fatalf("Grow wrong: %v", b)
	}
}

func TestIntersectRayThrough(t *testing.T) {
	b := NewAABB(V(-1, -1, -1), V(1, 1, 1))
	r := NewRay(V(-5, 0, 0), V(1, 0, 0))
	t0, t1, hit := b.IntersectRay(r, 0, math.Inf(1))
	if !hit {
		t.Fatal("central ray missed the box")
	}
	if math.Abs(t0-4) > 1e-12 || math.Abs(t1-6) > 1e-12 {
		t.Fatalf("entry/exit = %v, %v; want 4, 6", t0, t1)
	}
}

func TestIntersectRayMiss(t *testing.T) {
	b := NewAABB(V(-1, -1, -1), V(1, 1, 1))
	cases := []Ray{
		NewRay(V(-5, 5, 0), V(1, 0, 0)),  // parallel offset
		NewRay(V(-5, 0, 0), V(-1, 0, 0)), // pointing away, clipped by tMin
		NewRay(V(0, 5, 0), V(1, 0, 0)),   // parallel to X inside Y slab? no: outside
	}
	for i, r := range cases {
		if _, _, hit := b.IntersectRay(r, 0, math.Inf(1)); hit {
			t.Errorf("case %d: ray should miss", i)
		}
	}
}

func TestIntersectRayInsideOrigin(t *testing.T) {
	b := NewAABB(V(-1, -1, -1), V(1, 1, 1))
	r := NewRay(V(0, 0, 0), V(0, 0, 1))
	t0, t1, hit := b.IntersectRay(r, 0, math.Inf(1))
	if !hit || t0 != 0 || math.Abs(t1-1) > 1e-12 {
		t.Fatalf("inside-origin ray: t0=%v t1=%v hit=%v", t0, t1, hit)
	}
}

func TestIntersectRayZeroDirComponent(t *testing.T) {
	b := NewAABB(V(-1, -1, -1), V(1, 1, 1))
	// Direction has zero Y and Z; origin inside the Y and Z slabs.
	if _, _, hit := b.IntersectRay(NewRay(V(-3, 0.5, -0.5), V(1, 0, 0)), 0, 100); !hit {
		t.Fatal("axis-parallel ray inside slabs should hit")
	}
	// Same direction but origin outside the Y slab.
	if _, _, hit := b.IntersectRay(NewRay(V(-3, 2, 0), V(1, 0, 0)), 0, 100); hit {
		t.Fatal("axis-parallel ray outside slab should miss")
	}
}

func TestQuickRaySlabConsistency(t *testing.T) {
	// Property: if IntersectRay reports [t0,t1], then points at t0 and t1
	// lie on (or numerically near) the box boundary, and the midpoint is
	// inside the box.
	r := rand.New(rand.NewSource(6))
	f := func() bool {
		b := randBox(r)
		ray := NewRay(randVec(r, 20), randVec(r, 1))
		if ray.Dir.Len2() < 1e-6 {
			return true
		}
		t0, t1, hit := b.IntersectRay(ray, 0, math.Inf(1))
		if !hit {
			return true
		}
		mid := ray.At((t0 + t1) / 2)
		return b.Grow(1e-6 * (1 + b.Diagonal().Len())).Contains(mid)
	}
	for i := 0; i < 500; i++ {
		if !f() {
			t.Fatal("slab midpoint escaped box")
		}
	}
}

func TestQuickUnionMonotone(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz int8) bool {
		a := NewAABB(V(float64(ax), float64(ay), float64(az)), V(float64(bx), float64(by), float64(bz)))
		p := V(float64(cx), float64(cy), float64(cz))
		u := a.Extend(p)
		return u.ContainsBox(a) && u.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAABBString(t *testing.T) {
	if NewAABB(V(0, 0, 0), V(1, 1, 1)).String() == "" {
		t.Fatal("String empty")
	}
}
