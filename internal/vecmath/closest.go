package vecmath

// ClosestPointOnTriangle returns the point of triangle t closest to p
// (Ericson, Real-Time Collision Detection, §5.1.5: Voronoi-region walk).
func ClosestPointOnTriangle(p Vec3, t Triangle) Vec3 {
	ab := t.B.Sub(t.A)
	ac := t.C.Sub(t.A)
	ap := p.Sub(t.A)

	d1 := ab.Dot(ap)
	d2 := ac.Dot(ap)
	if d1 <= 0 && d2 <= 0 {
		return t.A // vertex region A
	}

	bp := p.Sub(t.B)
	d3 := ab.Dot(bp)
	d4 := ac.Dot(bp)
	if d3 >= 0 && d4 <= d3 {
		return t.B // vertex region B
	}

	vc := d1*d4 - d3*d2
	if vc <= 0 && d1 >= 0 && d3 <= 0 {
		v := d1 / (d1 - d3)
		return t.A.Add(ab.Scale(v)) // edge region AB
	}

	cp := p.Sub(t.C)
	d5 := ab.Dot(cp)
	d6 := ac.Dot(cp)
	if d6 >= 0 && d5 <= d6 {
		return t.C // vertex region C
	}

	vb := d5*d2 - d1*d6
	if vb <= 0 && d2 >= 0 && d6 <= 0 {
		w := d2 / (d2 - d6)
		return t.A.Add(ac.Scale(w)) // edge region AC
	}

	va := d3*d6 - d5*d4
	if va <= 0 && d4-d3 >= 0 && d5-d6 >= 0 {
		w := (d4 - d3) / ((d4 - d3) + (d5 - d6))
		return t.B.Add(t.C.Sub(t.B).Scale(w)) // edge region BC
	}

	// Interior: project onto the plane via barycentric coordinates.
	denom := 1 / (va + vb + vc)
	v := vb * denom
	w := vc * denom
	return t.A.Add(ab.Scale(v)).Add(ac.Scale(w))
}

// DistToTriangle returns the Euclidean distance from p to triangle t.
func DistToTriangle(p Vec3, t Triangle) float64 {
	return ClosestPointOnTriangle(p, t).Sub(p).Len()
}

// DistToBox returns the Euclidean distance from p to box b (0 if inside).
func DistToBox(p Vec3, b AABB) float64 {
	q := p.Max(b.Min).Min(b.Max)
	return q.Sub(p).Len()
}
