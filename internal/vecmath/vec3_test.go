package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(r *rand.Rand, scale float64) Vec3 {
	return Vec3{r.NormFloat64() * scale, r.NormFloat64() * scale, r.NormFloat64() * scale}
}

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != V(4, -10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
}

func TestVecAxisAccessors(t *testing.T) {
	v := V(7, 8, 9)
	if v.Axis(AxisX) != 7 || v.Axis(AxisY) != 8 || v.Axis(AxisZ) != 9 {
		t.Fatalf("Axis accessors wrong: %v", v)
	}
	for a := AxisX; a <= AxisZ; a++ {
		w := v.SetAxis(a, -1)
		if w.Axis(a) != -1 {
			t.Errorf("SetAxis(%v) did not set", a)
		}
		if w.Axis(a.Next()) != v.Axis(a.Next()) {
			t.Errorf("SetAxis(%v) clobbered other component", a)
		}
	}
}

func TestAxisStringAndNext(t *testing.T) {
	if AxisX.String() != "X" || AxisY.String() != "Y" || AxisZ.String() != "Z" {
		t.Fatal("Axis.String wrong")
	}
	if Axis(5).String() == "" {
		t.Fatal("out-of-range axis should still format")
	}
	if AxisX.Next() != AxisY || AxisY.Next() != AxisZ || AxisZ.Next() != AxisX {
		t.Fatal("Axis.Next not cyclic")
	}
}

func TestCrossOrthogonality(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randVec(r, 10), randVec(r, 10)
		c := a.Cross(b)
		if math.Abs(c.Dot(a)) > 1e-9*(1+a.Len2())*(1+b.Len()) {
			t.Fatalf("cross not orthogonal to a: %v, %v -> %v", a, b, c)
		}
		if math.Abs(c.Dot(b)) > 1e-9*(1+b.Len2())*(1+a.Len()) {
			t.Fatalf("cross not orthogonal to b: %v, %v -> %v", a, b, c)
		}
	}
}

func TestCrossAnticommutative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := randVec(r, 5), randVec(r, 5)
		if !a.Cross(b).ApproxEq(b.Cross(a).Neg(), 1e-9) {
			t.Fatalf("a x b != -(b x a) for %v, %v", a, b)
		}
	}
}

func TestDotCommutesAndBilinear(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a, b, c := randVec(r, 5), randVec(r, 5), randVec(r, 5)
		if math.Abs(a.Dot(b)-b.Dot(a)) > 1e-12 {
			t.Fatal("dot not commutative")
		}
		lhs := a.Add(b).Dot(c)
		rhs := a.Dot(c) + b.Dot(c)
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("dot not additive: %v vs %v", lhs, rhs)
		}
	}
}

func TestNormalize(t *testing.T) {
	v := V(3, 4, 0).Normalize()
	if math.Abs(v.Len()-1) > 1e-12 {
		t.Fatalf("normalized length = %v", v.Len())
	}
	zero := Vec3{}.Normalize()
	if zero != (Vec3{}) {
		t.Fatalf("Normalize(0) = %v, want zero vector", zero)
	}
	if !zero.IsFinite() {
		t.Fatal("Normalize(0) produced non-finite components")
	}
}

func TestMinMaxLerp(t *testing.T) {
	a, b := V(1, 5, -2), V(3, 0, -4)
	if a.Min(b) != V(1, 0, -4) {
		t.Fatal("Min wrong")
	}
	if a.Max(b) != V(3, 5, -2) {
		t.Fatal("Max wrong")
	}
	if a.Lerp(b, 0) != a || a.Lerp(b, 1) != b {
		t.Fatal("Lerp endpoints wrong")
	}
	mid := a.Lerp(b, 0.5)
	if !mid.ApproxEq(V(2, 2.5, -3), 1e-12) {
		t.Fatalf("Lerp midpoint = %v", mid)
	}
}

func TestMaxAxis(t *testing.T) {
	cases := []struct {
		v    Vec3
		want Axis
	}{
		{V(3, 1, 2), AxisX},
		{V(1, 3, 2), AxisY},
		{V(1, 2, 3), AxisZ},
		{V(2, 2, 2), AxisX}, // tie prefers X
		{V(1, 2, 2), AxisY}, // tie prefers Y over Z
	}
	for _, c := range cases {
		if got := c.v.MaxAxis(); got != c.want {
			t.Errorf("MaxAxis(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	bad := []Vec3{
		{math.NaN(), 0, 0}, {0, math.NaN(), 0}, {0, 0, math.NaN()},
		{math.Inf(1), 0, 0}, {0, math.Inf(-1), 0}, {0, 0, math.Inf(1)},
	}
	for _, v := range bad {
		if v.IsFinite() {
			t.Errorf("%v reported finite", v)
		}
	}
}

func TestSplatAndString(t *testing.T) {
	if Splat(2) != V(2, 2, 2) {
		t.Fatal("Splat wrong")
	}
	if V(1, 2, 3).String() == "" {
		t.Fatal("String empty")
	}
}

func TestQuickLengthScaling(t *testing.T) {
	f := func(x, y, z, s float64) bool {
		// Keep inputs bounded to avoid overflow-driven false negatives.
		x, y, z = math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6)
		s = math.Mod(s, 1e3)
		if math.IsNaN(x + y + z + s) {
			return true
		}
		v := V(x, y, z)
		got := v.Scale(s).Len()
		want := math.Abs(s) * v.Len()
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLerpBetweenMinMax(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz uint8, tt uint8) bool {
		a := V(float64(ax), float64(ay), float64(az))
		b := V(float64(bx), float64(by), float64(bz))
		u := float64(tt) / 255
		p := a.Lerp(b, u)
		lo, hi := a.Min(b), a.Max(b)
		eps := 1e-9
		return p.X >= lo.X-eps && p.X <= hi.X+eps &&
			p.Y >= lo.Y-eps && p.Y <= hi.Y+eps &&
			p.Z >= lo.Z-eps && p.Z <= hi.Z+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
