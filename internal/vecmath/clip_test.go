package vecmath

import (
	"math/rand"
	"testing"
)

func TestClipTriangleFullyInside(t *testing.T) {
	b := NewAABB(V(-10, -10, -10), V(10, 10, 10))
	tr := Tri(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0))
	got, ok := ClipTriangleBounds(tr, b)
	if !ok {
		t.Fatal("inside triangle reported clipped away")
	}
	want := tr.Bounds()
	if !got.Min.ApproxEq(want.Min, 1e-12) || !got.Max.ApproxEq(want.Max, 1e-12) {
		t.Fatalf("clip of interior triangle changed bounds: %v vs %v", got, want)
	}
}

func TestClipTriangleFullyOutside(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1))
	tr := Tri(V(5, 5, 5), V(6, 5, 5), V(5, 6, 5))
	if _, ok := ClipTriangleBounds(tr, b); ok {
		t.Fatal("exterior triangle reported intersecting")
	}
}

func TestClipTriangleStraddling(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1))
	// Triangle crosses the x=1 face: only the x<=1 part counts.
	tr := Tri(V(0.5, 0.5, 0.5), V(3, 0.5, 0.5), V(0.5, 0.9, 0.5))
	got, ok := ClipTriangleBounds(tr, b)
	if !ok {
		t.Fatal("straddling triangle reported outside")
	}
	if got.Max.X > 1+1e-12 {
		t.Fatalf("clipped bounds escape the box: %v", got)
	}
	if got.Min.X > 0.5+1e-12 {
		t.Fatalf("clipped bounds lost the interior part: %v", got)
	}
}

func TestClipTriangleTighterThanLooseBounds(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1))
	// A big triangle slicing diagonally through the box: clipped bounds
	// must be inside both the box and the raw triangle bounds.
	tr := Tri(V(-5, 0.5, -5), V(5, 0.5, -5), V(0, 0.5, 5))
	got, ok := ClipTriangleBounds(tr, b)
	if !ok {
		t.Fatal("slicing triangle reported outside")
	}
	if !b.ContainsBox(got) {
		t.Fatalf("clipped bounds %v escape node box %v", got, b)
	}
	loose := tr.Bounds().Intersect(b)
	if !loose.ContainsBox(got) {
		t.Fatalf("clipped bounds %v larger than loose bounds %v", got, loose)
	}
}

func TestClipRandomisedInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	clipped, total := 0, 0
	for i := 0; i < 3000; i++ {
		b := randBox(r)
		tr := randTri(r, 8)
		got, ok := ClipTriangleBounds(tr, b)
		if !ok {
			// Then the triangle's AABB either misses the box entirely or
			// only grazes it; a vertex inside the box would be a bug.
			if b.Contains(tr.A) || b.Contains(tr.B) || b.Contains(tr.C) {
				t.Fatalf("triangle with vertex inside box reported outside: %v in %v", tr, b)
			}
			continue
		}
		total++
		eps := 1e-9 * (1 + b.Diagonal().Len())
		if !b.Grow(eps).ContainsBox(got) {
			t.Fatalf("clipped bounds escape box: %v not in %v", got, b)
		}
		loose := tr.Bounds().Intersect(b)
		if !loose.Grow(eps).ContainsBox(got) {
			t.Fatalf("clipped bounds exceed loose bounds: %v not in %v", got, loose)
		}
		if got.SurfaceArea() < loose.SurfaceArea()-eps {
			clipped++
		}
	}
	if total < 100 {
		t.Fatalf("too few intersecting cases: %d", total)
	}
}

func TestClipVertexOnBoundary(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1))
	tr := Tri(V(1, 0, 0), V(1, 1, 0), V(1, 0, 1)) // entirely on the x=1 face
	got, ok := ClipTriangleBounds(tr, b)
	if !ok {
		t.Fatal("face-coplanar triangle reported outside")
	}
	if got.Min.X != 1 || got.Max.X != 1 {
		t.Fatalf("face-coplanar clip bounds wrong: %v", got)
	}
}
