package vecmath

// Ray is a half-infinite line Origin + t*Dir for t >= 0. Dir need not be
// normalised; parametric distances returned by intersection routines are
// expressed in units of |Dir|.
type Ray struct {
	Origin Vec3
	Dir    Vec3
}

// NewRay constructs a ray from origin o towards direction d.
func NewRay(o, d Vec3) Ray { return Ray{Origin: o, Dir: d} }

// At returns the point Origin + t*Dir.
func (r Ray) At(t float64) Vec3 { return r.Origin.Add(r.Dir.Scale(t)) }

// Towards constructs a ray from o pointing at target p. Useful for shadow
// rays: the target is at parametric distance 1.
func Towards(o, p Vec3) Ray { return Ray{Origin: o, Dir: p.Sub(o)} }
