package vecmath

// Ray is a half-infinite line Origin + t*Dir for t >= 0. Dir need not be
// normalised; parametric distances returned by intersection routines are
// expressed in units of |Dir|.
//
// InvDir caches the component-wise reciprocal of Dir. Slab tests and the
// kD-tree inner-node walk replace one division per plane with one
// multiplication when it is present; the constructors fill it in, and
// consumers fall back to computing it once per query for rays assembled as
// bare struct literals. The zero value is the "not set" marker: Recip only
// produces Vec3{} when every Dir component is infinite, and recomputing is
// a no-op there, so the fallback is always safe.
type Ray struct {
	Origin Vec3
	Dir    Vec3
	InvDir Vec3
}

// NewRay constructs a ray from origin o towards direction d.
func NewRay(o, d Vec3) Ray { return Ray{Origin: o, Dir: d, InvDir: d.Recip()} }

// At returns the point Origin + t*Dir.
func (r Ray) At(t float64) Vec3 { return r.Origin.Add(r.Dir.Scale(t)) }

// Towards constructs a ray from o pointing at target p. Useful for shadow
// rays: the target is at parametric distance 1.
func Towards(o, p Vec3) Ray {
	d := p.Sub(o)
	return Ray{Origin: o, Dir: d, InvDir: d.Recip()}
}

// EffInvDir returns the cached reciprocal direction, computing it on the
// fly for rays built as struct literals without one. Query entry points
// call this once per ray so the per-node work is pure multiplication.
func (r Ray) EffInvDir() Vec3 {
	if r.InvDir == (Vec3{}) {
		return r.Dir.Recip()
	}
	return r.InvDir
}
