package vecmath

import (
	"fmt"
	"math"
)

// AABB is an axis-aligned bounding box described by its minimum and maximum
// corners. The zero value is not a valid box; use EmptyAABB as the identity
// for union operations.
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns the identity element for Union: a box that contains
// nothing and leaves any other box unchanged when united with it.
func EmptyAABB() AABB {
	return AABB{
		Min: Splat(math.Inf(1)),
		Max: Splat(math.Inf(-1)),
	}
}

// NewAABB returns the smallest box containing both corner arguments,
// regardless of their ordering.
func NewAABB(a, b Vec3) AABB {
	return AABB{Min: a.Min(b), Max: a.Max(b)}
}

// IsEmpty reports whether the box contains no points (some max component is
// below the corresponding min component).
func (b AABB) IsEmpty() bool {
	return b.Max.X < b.Min.X || b.Max.Y < b.Min.Y || b.Max.Z < b.Min.Z
}

// IsValid reports whether the box is non-empty with finite corners.
func (b AABB) IsValid() bool {
	return !b.IsEmpty() && b.Min.IsFinite() && b.Max.IsFinite()
}

// Diagonal returns Max - Min. For empty boxes components may be negative.
func (b AABB) Diagonal() Vec3 { return b.Max.Sub(b.Min) }

// Center returns the midpoint of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// SurfaceArea returns the total area of the six faces. This is the A(.)
// quantity of the Surface Area Heuristic. Empty boxes have area 0.
func (b AABB) SurfaceArea() float64 {
	if b.IsEmpty() {
		return 0
	}
	d := b.Diagonal()
	return 2 * (d.X*d.Y + d.Y*d.Z + d.Z*d.X)
}

// Volume returns the enclosed volume; 0 for empty boxes.
func (b AABB) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	d := b.Diagonal()
	return d.X * d.Y * d.Z
}

// Union returns the smallest box containing both b and c.
func (b AABB) Union(c AABB) AABB {
	return AABB{Min: b.Min.Min(c.Min), Max: b.Max.Max(c.Max)}
}

// Extend returns the smallest box containing b and the point p.
func (b AABB) Extend(p Vec3) AABB {
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Intersect returns the overlap of b and c, which may be empty.
func (b AABB) Intersect(c AABB) AABB {
	return AABB{Min: b.Min.Max(c.Min), Max: b.Max.Min(c.Max)}
}

// Contains reports whether point p lies inside or on the boundary of b.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// ContainsBox reports whether c lies entirely within b. Empty boxes are
// contained in everything.
func (b AABB) ContainsBox(c AABB) bool {
	if c.IsEmpty() {
		return true
	}
	return b.Contains(c.Min) && b.Contains(c.Max)
}

// Overlaps reports whether b and c share at least one point.
func (b AABB) Overlaps(c AABB) bool {
	return !b.Intersect(c).IsEmpty()
}

// Split cuts the box with the axis-aligned plane {axis = pos} and returns
// the two halves (left has axis-coordinates <= pos). pos is clamped into the
// box's extent so both halves are always valid sub-boxes of b.
func (b AABB) Split(axis Axis, pos float64) (left, right AABB) {
	pos = math.Max(b.Min.Axis(axis), math.Min(b.Max.Axis(axis), pos))
	left, right = b, b
	left.Max = left.Max.SetAxis(axis, pos)
	right.Min = right.Min.SetAxis(axis, pos)
	return left, right
}

// LongestAxis returns the axis along which the box is widest.
func (b AABB) LongestAxis() Axis { return b.Diagonal().MaxAxis() }

// Grow returns the box enlarged by eps in every direction. Used to make the
// scene bounds robust against boundary-exactness issues.
func (b AABB) Grow(eps float64) AABB {
	e := Splat(eps)
	return AABB{Min: b.Min.Sub(e), Max: b.Max.Add(e)}
}

// IntersectRay performs a slab test of ray r against the box over the
// parametric interval [tMin, tMax]. It reports whether the ray overlaps the
// box and, if so, the clipped parametric entry and exit values.
//
// The implementation follows the branchless slab method; division by a zero
// direction component yields +-Inf which the min/max logic handles
// correctly, except for the NaN produced by 0 * Inf, which is avoided by the
// explicit parallel-axis test. The reciprocal direction comes from the
// ray's cached InvDir when present (see Ray.EffInvDir) so the per-axis work
// is a pair of multiplications.
func (b AABB) IntersectRay(r Ray, tMin, tMax float64) (t0, t1 float64, hit bool) {
	return b.IntersectRayInv(r.Origin, r.Dir, r.EffInvDir(), tMin, tMax)
}

// IntersectRayInv is IntersectRay with the reciprocal direction supplied by
// the caller — the form hot loops use after hoisting the reciprocal out of
// the per-node/per-box work.
func (b AABB) IntersectRayInv(origin, dir, inv Vec3, tMin, tMax float64) (t0, t1 float64, hit bool) {
	t0, t1 = tMin, tMax
	for a := AxisX; a <= AxisZ; a++ {
		o := origin.Axis(a)
		lo := b.Min.Axis(a)
		hi := b.Max.Axis(a)
		if dir.Axis(a) == 0 {
			// Ray parallel to the slab: either always inside or never.
			if o < lo || o > hi {
				return 0, 0, false
			}
			continue
		}
		ia := inv.Axis(a)
		tn := (lo - o) * ia
		tf := (hi - o) * ia
		if tn > tf {
			tn, tf = tf, tn
		}
		if tn > t0 {
			t0 = tn
		}
		if tf < t1 {
			t1 = tf
		}
		if t0 > t1 {
			return 0, 0, false
		}
	}
	return t0, t1, true
}

// String formats the box as [min .. max].
func (b AABB) String() string {
	return fmt.Sprintf("[%v .. %v]", b.Min, b.Max)
}
