package autotune

import (
	"math"
	"math/rand"
)

// RandomSearch is the no-structure baseline searcher: every cycle draws an
// independent uniform configuration, and the incumbent is simply the best
// sample so far. The paper's AtuneRT uses random sampling only to seed the
// Nelder–Mead simplex; keeping the pure strategy around lets experiments
// quantify what the simplex search adds over sampling alone.
type RandomSearch struct {
	params  []*Param
	rng     *rand.Rand
	budget  int // evaluations before the search freezes on the incumbent
	current []int

	best     []int
	bestCost float64
	count    int
}

// NewRandomSearch creates the baseline with the given evaluation budget
// (<=0 means never freeze: keep sampling forever).
func NewRandomSearch(params []*Param, budget int, rng *rand.Rand) *RandomSearch {
	return &RandomSearch{
		params:   params,
		rng:      rng,
		budget:   budget,
		bestCost: math.Inf(1),
	}
}

// Next returns the configuration to measure.
func (r *RandomSearch) Next() []int {
	if r.Converged() {
		return append([]int(nil), r.best...)
	}
	cfg := make([]int, len(r.params))
	for i, p := range r.params {
		cfg[i] = r.rng.Intn(len(p.values))
	}
	r.current = cfg
	return cfg
}

// Report records the measured cost.
func (r *RandomSearch) Report(cfg []int, cost float64) {
	r.count++
	if cost < r.bestCost {
		r.bestCost = cost
		r.best = append(r.best[:0], cfg...)
	}
}

// Converged reports whether the sampling budget is exhausted.
func (r *RandomSearch) Converged() bool {
	return r.budget > 0 && r.count >= r.budget && r.best != nil
}

// Evaluations returns the number of samples measured.
func (r *RandomSearch) Evaluations() int { return r.count }

var _ searcher = (*RandomSearch)(nil)

// NewRandomTuner wraps a RandomSearch in the Tuner workflow, mirroring
// NewExhaustiveTuner.
func NewRandomTuner(opts Options, build func(t *Tuner) error, budget int) (*Tuner, error) {
	t := New(opts)
	if err := build(t); err != nil {
		return nil, err
	}
	t.search = NewRandomSearch(t.params, budget, t.rng)
	return t, nil
}
