package autotune

import (
	"reflect"
	"testing"
)

func TestTunableValuesScales(t *testing.T) {
	v := 0
	lin := Tunable{Name: "ci", Target: &v, Min: 3, Max: 11, Step: 4, Scale: ScaleLinear}
	got, err := lin.Values()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{3, 7, 11}; !reflect.DeepEqual(got, want) {
		t.Fatalf("linear values = %v, want %v", got, want)
	}

	p2 := Tunable{Name: "r", Target: &v, Min: 16, Max: 128, Scale: ScalePow2}
	got, err = p2.Values()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{16, 32, 64, 128}; !reflect.DeepEqual(got, want) {
		t.Fatalf("pow2 values = %v, want %v", got, want)
	}

	// Zero Step defaults to 1 on a linear scale.
	lin.Step = 0
	lin.Max = 5
	got, err = lin.Values()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("step-0 linear values = %v, want %v", got, want)
	}
}

func TestRegistryValidation(t *testing.T) {
	v := 0
	reg := NewRegistry()
	if err := reg.Register(Tunable{Name: "", Target: &v, Min: 1, Max: 2}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := reg.Register(Tunable{Name: "g", Target: nil, Min: 1, Max: 2}); err == nil {
		t.Fatal("nil target accepted")
	}
	if err := reg.Register(Tunable{Name: "g", Target: &v, Min: 5, Max: 2}); err == nil {
		t.Fatal("empty range accepted")
	}
	if err := reg.Register(Tunable{Name: "g", Target: &v, Min: 1, Max: 4, Scale: ScalePow2}); err != nil {
		t.Fatalf("valid register: %v", err)
	}
	if err := reg.Register(Tunable{Name: "g", Target: &v, Min: 1, Max: 4, Scale: ScalePow2}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if reg.Len() != 1 {
		t.Fatalf("Len = %d, want 1", reg.Len())
	}
}

func TestRegistryOrderAndLookup(t *testing.T) {
	a, b, c := 1, 2, 3
	reg := NewRegistry()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(reg.Register(Tunable{Name: "ci", Target: &a, Min: 3, Max: 101, Step: 1, Desc: "intersection cost"}))
	must(reg.Register(Tunable{Name: "grain", Target: &b, Min: 256, Max: 65536, Scale: ScalePow2}))
	must(reg.Register(Tunable{Name: "bias", Target: &c, Min: 0, Max: 3, Step: 1}))

	if want := []string{"ci", "grain", "bias"}; !reflect.DeepEqual(reg.Names(), want) {
		t.Fatalf("Names = %v, want %v", reg.Names(), want)
	}
	tn, ok := reg.Lookup("grain")
	if !ok || tn.Scale != ScalePow2 || tn.Target != &b {
		t.Fatalf("Lookup(grain) = %+v, %v", tn, ok)
	}
	if _, ok := reg.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}

	snap := reg.Snapshot()
	if want := map[string]int{"ci": 1, "grain": 2, "bias": 3}; !reflect.DeepEqual(snap, want) {
		t.Fatalf("Snapshot = %v, want %v", snap, want)
	}
	if want := []int{1, 2, 3}; !reflect.DeepEqual(reg.Vector(), want) {
		t.Fatalf("Vector = %v, want %v", reg.Vector(), want)
	}
	if got, want := reg.FormatVector(snap), "ci=1,grain=2,bias=3"; got != want {
		t.Fatalf("FormatVector = %q, want %q", got, want)
	}
	if got, want := FormatParams(snap), "bias=3,ci=1,grain=2"; got != want {
		t.Fatalf("FormatParams = %q, want %q", got, want)
	}
}

// TestRegisterAllComposesSearchSpace drives a real tuning loop whose search
// space was composed entirely from a registry and checks the tuner finds the
// planted optimum, applies it through the registered targets, and reports it
// under the registered names.
func TestRegisterAllComposesSearchSpace(t *testing.T) {
	grain, bins := 0, 0
	reg := NewRegistry()
	if err := reg.Register(Tunable{Name: "G", Target: &grain, Min: 256, Max: 4096, Scale: ScalePow2, Desc: "scatter grain"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Tunable{Name: "B", Target: &bins, Min: 8, Max: 64, Scale: ScalePow2, Desc: "SAH bins"}); err != nil {
		t.Fatal(err)
	}

	tn := New(Options{Seed: 42})
	if err := tn.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	cost := func() float64 {
		// Planted optimum at G=1024, B=32.
		dg := float64(grain - 1024)
		db := float64(bins - 32)
		return dg*dg + db*db*1e3
	}
	for i := 0; i < 200 && !tn.Converged(); i++ {
		tn.Start()
		tn.StopWithCost(cost())
	}
	best, ok := tn.BestByName()
	if !ok {
		t.Fatal("no best after tuning")
	}
	if best["G"] != 1024 || best["B"] != 32 {
		t.Fatalf("best = %v, want G=1024 B=32", best)
	}
	if !tn.ApplyBest() {
		t.Fatal("ApplyBest failed")
	}
	if grain != 1024 || bins != 32 {
		t.Fatalf("targets after ApplyBest: grain=%d bins=%d", grain, bins)
	}
}

func TestRegisterAllRejectsDuplicateAcrossRegistries(t *testing.T) {
	a, b := 0, 0
	r1, r2 := NewRegistry(), NewRegistry()
	if err := r1.Register(Tunable{Name: "x", Target: &a, Min: 1, Max: 4, Scale: ScalePow2}); err != nil {
		t.Fatal(err)
	}
	if err := r2.Register(Tunable{Name: "y", Target: &b, Min: 1, Max: 4, Scale: ScalePow2}); err != nil {
		t.Fatal(err)
	}
	tn := New(Options{Seed: 1})
	if err := tn.RegisterAll(r1); err != nil {
		t.Fatal(err)
	}
	// Composing a second registry onto the same tuner is legal (that is how
	// the harness merges build-side and render-side tunables).
	if err := tn.RegisterAll(r2); err != nil {
		t.Fatal(err)
	}
	if len(tn.Params()) != 2 {
		t.Fatalf("params = %d, want 2", len(tn.Params()))
	}
}

func TestExhaustiveFromRegistry(t *testing.T) {
	a, b := 0, 0
	reg := NewRegistry()
	if err := reg.Register(Tunable{Name: "a", Target: &a, Min: 1, Max: 3, Step: 1}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Tunable{Name: "b", Target: &b, Min: 1, Max: 4, Scale: ScalePow2}); err != nil {
		t.Fatal(err)
	}
	tn, err := NewExhaustiveTunerFromRegistry(Options{Seed: 1}, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for !tn.Converged() {
		tn.Start()
		seen[[2]int{a, b}] = true
		tn.StopWithCost(float64(a*10 + b))
	}
	if len(seen) != 9 { // 3 × 3 grid
		t.Fatalf("visited %d configs, want 9", len(seen))
	}
	best, ok := tn.BestByName()
	if !ok || best["a"] != 1 || best["b"] != 1 {
		t.Fatalf("best = %v, want a=1 b=1", best)
	}
}
