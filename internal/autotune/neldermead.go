package autotune

import (
	"math"
	"math/rand"
)

// searcher is the strategy interface the Tuner drives: Next proposes the
// configuration (as per-parameter value indices) to measure next, Report
// feeds back the measured cost, Converged signals that the search has
// settled.
type searcher interface {
	Next() []int
	Report(cfg []int, cost float64)
	Converged() bool
}

// nmPhase is the Nelder–Mead state machine phase: which proposal the
// searcher is waiting to hear a measurement for.
type nmPhase int

const (
	nmSeeding  nmPhase = iota // random sampling to seed the simplex
	nmReflect                 // awaiting f(reflection point)
	nmExpand                  // awaiting f(expansion point)
	nmContract                // awaiting f(contraction point)
	nmShrink                  // awaiting f of shrunk vertices, one by one
	nmDone
)

// The standard Nelder–Mead coefficients.
const (
	nmAlpha = 1.0 // reflection
	nmGamma = 2.0 // expansion
	nmRho   = 0.5 // contraction
	nmSigma = 0.5 // shrink
)

// vertex is one simplex corner: a point in the normalised [0,1]^d search
// space and its measured cost.
type vertex struct {
	x    []float64
	cost float64
}

// nelderMead implements the paper's search: random samples seed a simplex,
// then the classic Nelder–Mead moves walk it downhill. The search space is
// the cross product of the registered parameters' index ranges, normalised
// per dimension to [0,1]; proposals snap to the nearest grid point when
// emitted. Because online measurements are noisy, convergence is declared
// when the simplex collapses onto (nearly) a single grid cell.
type nelderMead struct {
	params []*Param
	rng    *rand.Rand

	phase      nmPhase
	seedBudget int         // random samples still to draw
	seeds      []vertex    // measured seed points
	forced     [][]float64 // seed points to try before random ones (restart incumbents)

	simplex []vertex // d+1 vertices, sorted best-first after each accept

	// Pending proposal bookkeeping.
	pending    []float64 // continuous coords of the point under evaluation
	reflected  vertex    // kept between reflect and expand/contract phases
	contractIn bool      // inside vs outside contraction
	shrinkIdx  int       // next simplex vertex to re-evaluate during shrink

	evaluations int
}

// newNelderMead creates the searcher. seedSamples is the size of the random
// sampling phase; it is clamped below to d+1 so a full simplex can be
// formed.
func newNelderMead(params []*Param, seedSamples int, rng *rand.Rand) *nelderMead {
	d := len(params)
	if seedSamples < d+1 {
		seedSamples = d + 1
	}
	return &nelderMead{
		params:     params,
		rng:        rng,
		phase:      nmSeeding,
		seedBudget: seedSamples,
	}
}

// dim returns the search-space dimensionality.
func (nm *nelderMead) dim() int { return len(nm.params) }

// snap converts continuous normalised coordinates to parameter indices.
func (nm *nelderMead) snap(x []float64) []int {
	cfg := make([]int, len(x))
	for i, p := range nm.params {
		n := len(p.values)
		idx := int(math.Round(x[i] * float64(n-1)))
		cfg[i] = p.clampIndex(idx)
	}
	return cfg
}

// lift converts parameter indices to normalised coordinates.
func (nm *nelderMead) lift(cfg []int) []float64 {
	x := make([]float64, len(cfg))
	for i, p := range nm.params {
		n := len(p.values)
		if n > 1 {
			x[i] = float64(cfg[i]) / float64(n-1)
		}
	}
	return x
}

// clamp01 keeps proposals inside the box constraints.
func clamp01(x []float64) []float64 {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		} else if v > 1 {
			x[i] = 1
		}
	}
	return x
}

// Next returns the configuration to measure now.
func (nm *nelderMead) Next() []int {
	switch nm.phase {
	case nmSeeding:
		if len(nm.forced) > 0 {
			nm.pending = nm.forced[0]
			nm.forced = nm.forced[1:]
			return nm.snap(nm.pending)
		}
		x := make([]float64, nm.dim())
		for i := range x {
			x[i] = nm.rng.Float64()
		}
		nm.pending = x
		return nm.snap(x)
	case nmDone:
		// Converged: keep proposing the best known vertex (the tuner keeps
		// measuring it so drift detection has fresh data).
		return nm.snap(nm.simplex[0].x)
	default:
		return nm.snap(nm.pending)
	}
}

// Report feeds the measured cost of the configuration last returned by Next.
func (nm *nelderMead) Report(cfg []int, cost float64) {
	nm.evaluations++
	switch nm.phase {
	case nmSeeding:
		nm.seeds = append(nm.seeds, vertex{x: nm.pending, cost: cost})
		nm.seedBudget--
		if nm.seedBudget == 0 {
			nm.buildSimplex()
		}
	case nmReflect:
		nm.onReflect(cost)
	case nmExpand:
		nm.onExpand(cost)
	case nmContract:
		nm.onContract(cost)
	case nmShrink:
		nm.onShrink(cost)
	case nmDone:
		// Re-measurement of the best point: refresh its cost estimate so a
		// drifting environment is reflected in Best queries.
		nm.simplex[0].cost = cost
	}
}

// Converged reports whether the simplex has collapsed to one grid cell.
func (nm *nelderMead) Converged() bool { return nm.phase == nmDone }

// buildSimplex selects the best d+1 distinct-seed vertices, topping up with
// random perturbations if the seeds snapped onto too few grid cells.
func (nm *nelderMead) buildSimplex() {
	sortVertices(nm.seeds)
	d := nm.dim()
	nm.simplex = nm.simplex[:0]
	seenCells := map[string]bool{}
	for _, v := range nm.seeds {
		key := cellKey(nm.snap(v.x))
		if seenCells[key] {
			continue
		}
		seenCells[key] = true
		nm.simplex = append(nm.simplex, v)
		if len(nm.simplex) == d+1 {
			break
		}
	}
	// Degenerate seed set (e.g. tiny search space): duplicate best with
	// axis jitter; duplicates cost nothing extra because they re-measure.
	for len(nm.simplex) < d+1 {
		x := append([]float64(nil), nm.simplex[0].x...)
		axis := len(nm.simplex) - 1
		if axis >= d {
			axis = nm.rng.Intn(d)
		}
		x[axis] = nm.rng.Float64()
		nm.simplex = append(nm.simplex, vertex{x: clamp01(x), cost: math.Inf(1)})
	}
	nm.startIteration()
}

// startIteration orders the simplex, checks convergence, and proposes the
// reflection point.
func (nm *nelderMead) startIteration() {
	sortVertices(nm.simplex)
	if nm.collapsed() {
		nm.phase = nmDone
		return
	}
	centroid := nm.centroidExcludingWorst()
	worst := nm.simplex[len(nm.simplex)-1]
	xr := make([]float64, nm.dim())
	for i := range xr {
		xr[i] = centroid[i] + nmAlpha*(centroid[i]-worst.x[i])
	}
	nm.pending = clamp01(xr)
	nm.phase = nmReflect
}

func (nm *nelderMead) onReflect(cost float64) {
	nm.reflected = vertex{x: append([]float64(nil), nm.pending...), cost: cost}
	best := nm.simplex[0]
	secondWorst := nm.simplex[len(nm.simplex)-2]
	worst := nm.simplex[len(nm.simplex)-1]
	switch {
	case cost < best.cost:
		// Try to go further: expansion.
		centroid := nm.centroidExcludingWorst()
		xe := make([]float64, nm.dim())
		for i := range xe {
			xe[i] = centroid[i] + nmGamma*(nm.reflected.x[i]-centroid[i])
		}
		nm.pending = clamp01(xe)
		nm.phase = nmExpand
	case cost < secondWorst.cost:
		nm.acceptWorst(nm.reflected)
		nm.startIteration()
	default:
		// Contract: outside if the reflection at least beat the worst.
		centroid := nm.centroidExcludingWorst()
		xc := make([]float64, nm.dim())
		if cost < worst.cost {
			nm.contractIn = false
			for i := range xc {
				xc[i] = centroid[i] + nmRho*(nm.reflected.x[i]-centroid[i])
			}
		} else {
			nm.contractIn = true
			for i := range xc {
				xc[i] = centroid[i] + nmRho*(worst.x[i]-centroid[i])
			}
		}
		nm.pending = clamp01(xc)
		nm.phase = nmContract
	}
}

func (nm *nelderMead) onExpand(cost float64) {
	if cost < nm.reflected.cost {
		nm.acceptWorst(vertex{x: append([]float64(nil), nm.pending...), cost: cost})
	} else {
		nm.acceptWorst(nm.reflected)
	}
	nm.startIteration()
}

func (nm *nelderMead) onContract(cost float64) {
	worst := nm.simplex[len(nm.simplex)-1]
	ref := worst.cost
	if !nm.contractIn {
		ref = nm.reflected.cost
	}
	if cost < ref {
		nm.acceptWorst(vertex{x: append([]float64(nil), nm.pending...), cost: cost})
		nm.startIteration()
		return
	}
	// Shrink everything towards the best vertex and re-measure.
	best := nm.simplex[0]
	for i := 1; i < len(nm.simplex); i++ {
		for j := range nm.simplex[i].x {
			nm.simplex[i].x[j] = best.x[j] + nmSigma*(nm.simplex[i].x[j]-best.x[j])
		}
		clamp01(nm.simplex[i].x)
	}
	nm.shrinkIdx = 1
	nm.pending = nm.simplex[1].x
	nm.phase = nmShrink
}

func (nm *nelderMead) onShrink(cost float64) {
	nm.simplex[nm.shrinkIdx].cost = cost
	nm.shrinkIdx++
	if nm.shrinkIdx < len(nm.simplex) {
		nm.pending = nm.simplex[nm.shrinkIdx].x
		return
	}
	nm.startIteration()
}

// acceptWorst replaces the worst vertex.
func (nm *nelderMead) acceptWorst(v vertex) {
	nm.simplex[len(nm.simplex)-1] = v
}

// centroidExcludingWorst averages all simplex vertices but the worst.
func (nm *nelderMead) centroidExcludingWorst() []float64 {
	d := nm.dim()
	c := make([]float64, d)
	n := len(nm.simplex) - 1
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			c[j] += nm.simplex[i].x[j]
		}
	}
	for j := 0; j < d; j++ {
		c[j] /= float64(n)
	}
	return c
}

// collapsed reports whether every simplex vertex snaps to the same
// configuration — the natural convergence criterion on a discrete grid.
func (nm *nelderMead) collapsed() bool {
	key := cellKey(nm.snap(nm.simplex[0].x))
	for _, v := range nm.simplex[1:] {
		if cellKey(nm.snap(v.x)) != key {
			return false
		}
	}
	return true
}

// restart re-seeds the search around (and including) the given best-known
// configuration; used by the tuner's drift detection.
func (nm *nelderMead) restart(bestCfg []int, seedSamples int) {
	d := nm.dim()
	if seedSamples < d+1 {
		seedSamples = d + 1
	}
	nm.seeds = nm.seeds[:0]
	nm.simplex = nm.simplex[:0]
	// Re-measure the incumbent first so a retune can never lose it.
	nm.forced = append(nm.forced[:0], nm.lift(bestCfg))
	nm.seedBudget = seedSamples
	nm.phase = nmSeeding
}

// sortVertices orders by ascending cost (best first), stably so ties keep
// their insertion order.
func sortVertices(vs []vertex) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].cost < vs[j-1].cost; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// cellKey builds a map key from a snapped configuration.
func cellKey(cfg []int) string {
	b := make([]byte, 0, len(cfg)*3)
	for _, v := range cfg {
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(b)
}
