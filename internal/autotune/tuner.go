package autotune

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Sample records one measurement cycle: the configuration (parameter
// values, not indices) that was active and the cost observed for it.
// Censored samples come from aborted cycles (StopAborted): their Cost is a
// synthetic penalty, not a measurement.
type Sample struct {
	Values   []int
	Cost     float64
	Censored bool
}

// abortFallbackCost stands in for the penalty when nothing has been
// measured yet. Large enough to dominate any plausible real cost, but
// finite: an Inf cost would poison the Nelder–Mead centroid arithmetic.
const abortFallbackCost = 1e18

// Options configures a Tuner. The zero value selects sensible defaults.
type Options struct {
	// Seed initialises the random sampling phase; 0 derives a seed from
	// the current time.
	Seed int64
	// SeedSamples is the size of the random sampling phase that seeds the
	// Nelder–Mead simplex (default: 2·(d+1), at least d+1).
	SeedSamples int
	// Clock returns a monotonic timestamp; tests inject a fake. Defaults
	// to time.Now-based monotonic time.
	Clock func() time.Duration
	// RetuneThreshold triggers a search restart when the cost measured for
	// the converged best configuration exceeds the best known cost by this
	// factor for RetuneWindow consecutive cycles (online adaptation to
	// drift, §V-D4 "repeating the optimization as needed"). <=1 disables.
	RetuneThreshold float64
	// RetuneWindow is the number of consecutive bad cycles before a
	// restart (default 5).
	RetuneWindow int
	// AbortPenalty is the cost multiple charged to an aborted cycle
	// (StopAborted): penalty = AbortPenalty × best known cost. It must
	// exceed 1 so Nelder–Mead reliably ranks aborted configurations worst
	// and reflects away from them; <=1 selects the default of 8.
	AbortPenalty float64
}

// Tuner is the online autotuner. It is not safe for concurrent use: the
// client calls RegisterParameter during setup, then alternates Start/Stop
// around the region being tuned (Figure 1).
type Tuner struct {
	opts   Options
	params []*Param
	rng    *rand.Rand
	search searcher

	started    bool
	startStamp time.Duration
	current    []int // indices per parameter of the active configuration

	iterations int
	best       []int // indices of the best configuration of the current search round
	bestCost   float64
	history    []Sample

	// The incumbent carries the best configuration across Retune restarts:
	// Retune invalidates the current round's cost baseline (it reflects a
	// stale context) but Best/ApplyBest must keep answering with real
	// values until the new round has measured something.
	incumbent     []int
	incumbentCost float64

	badStreak int // consecutive over-threshold cycles after convergence
	restarts  int
	censored  int // aborted cycles recorded via StopAborted
}

// New creates a tuner with the given options.
func New(opts Options) *Tuner {
	if opts.Clock == nil {
		base := time.Now()
		opts.Clock = func() time.Duration { return time.Since(base) }
	}
	if opts.Seed == 0 {
		opts.Seed = time.Now().UnixNano()
	}
	if opts.RetuneWindow <= 0 {
		opts.RetuneWindow = 5
	}
	return &Tuner{
		opts:          opts,
		rng:           rand.New(rand.NewSource(opts.Seed)),
		bestCost:      math.Inf(1),
		incumbentCost: math.Inf(1),
	}
}

// RegisterParameter registers the integer variable at v for tuning over the
// closed interval [min, max] with the given stride — the paper's
// RegisterParameter(&N, min, max, step). Must be called before the first
// Start.
func (t *Tuner) RegisterParameter(v *int, min, max, step int) error {
	vals, err := intervalValues(min, max, step)
	if err != nil {
		return err
	}
	return t.register("", v, vals)
}

// RegisterNamedParameter is RegisterParameter with a diagnostic name that
// shows up in History dumps and harness reports.
func (t *Tuner) RegisterNamedParameter(name string, v *int, min, max, step int) error {
	vals, err := intervalValues(min, max, step)
	if err != nil {
		return err
	}
	return t.register(name, v, vals)
}

// RegisterPow2Parameter registers a variable constrained to powers of two
// in [min, max], as the paper's τ_R = [16, 8192] (Table II).
func (t *Tuner) RegisterPow2Parameter(name string, v *int, min, max int) error {
	vals, err := pow2Values(min, max)
	if err != nil {
		return err
	}
	return t.register(name, v, vals)
}

func (t *Tuner) register(name string, v *int, values []int) error {
	if t.search != nil {
		return fmt.Errorf("autotune: cannot register parameters after tuning started")
	}
	if v == nil {
		return fmt.Errorf("autotune: nil parameter target")
	}
	if name == "" {
		name = fmt.Sprintf("param%d", len(t.params))
	}
	t.params = append(t.params, &Param{name: name, target: v, values: values})
	return nil
}

// Params returns the registered parameters in registration order.
func (t *Tuner) Params() []*Param { return t.params }

// ensureSearch lazily builds the searcher on first Start.
func (t *Tuner) ensureSearch() {
	if t.search != nil {
		return
	}
	seeds := t.opts.SeedSamples
	if seeds <= 0 {
		seeds = 2 * (len(t.params) + 1)
	}
	t.search = newNelderMead(t.params, seeds, t.rng)
}

// Start begins a measurement cycle: the configuration under test is written
// into the registered client variables and the clock starts.
func (t *Tuner) Start() {
	if t.started {
		panic("autotune: Start called twice without Stop")
	}
	if len(t.params) == 0 {
		panic("autotune: no parameters registered")
	}
	t.ensureSearch()
	t.current = t.search.Next()
	for i, p := range t.params {
		p.apply(t.current[i])
	}
	t.started = true
	t.startStamp = t.opts.Clock()
}

// Stop ends the measurement cycle: the elapsed time is reported to the
// search, bookkeeping is updated, and the next configuration is chosen (it
// becomes visible to the client at the next Start).
func (t *Tuner) Stop() {
	elapsed := t.opts.Clock() - t.startStamp
	t.StopWithCost(float64(elapsed))
}

// StopWithCost is Stop with an externally supplied cost value, for clients
// whose objective is not wall-clock time (and for deterministic tests).
func (t *Tuner) StopWithCost(cost float64) {
	if !t.started {
		panic("autotune: Stop called without Start")
	}
	t.started = false
	t.iterations++

	values := t.currentValues()
	t.history = append(t.history, Sample{Values: values, Cost: cost})

	wasConverged := t.search.Converged()
	t.search.Report(t.current, cost)

	if cost < t.bestCost {
		t.bestCost = cost
		t.best = append(t.best[:0], t.current...)
	}

	// Drift detection: once converged, persistent degradation of the best
	// configuration triggers a re-tune.
	if wasConverged && t.opts.RetuneThreshold > 1 {
		if cost > t.bestCost*t.opts.RetuneThreshold {
			t.badStreak++
			if t.badStreak >= t.opts.RetuneWindow {
				t.Retune()
			}
		} else {
			t.badStreak = 0
		}
	}
}

// StopAborted ends a measurement cycle whose build or render was aborted
// (deadline, depth, memory, worker panic). The cycle becomes a censored
// sample: no real cost exists, so a penalty — AbortPenalty times the best
// known cost — is reported to the search instead. The penalty ranks the
// configuration decisively worst, so Nelder–Mead reflects away from the
// pathological region instead of re-probing it, while staying finite so the
// simplex arithmetic remains well-defined. A censored cycle never updates
// the round best (and the incumbent only ever receives round bests), so
// Best and ApplyBest can never answer with a censored configuration.
func (t *Tuner) StopAborted() {
	if !t.started {
		panic("autotune: StopAborted called without Start")
	}
	t.started = false
	t.iterations++
	t.censored++

	cost := t.penaltyCost()
	t.history = append(t.history, Sample{Values: t.currentValues(), Cost: cost, Censored: true})

	wasConverged := t.search.Converged()
	t.search.Report(t.current, cost)

	// Drift detection: an abort of the converged configuration is
	// definitionally a bad cycle — if the supposedly-good incumbent region
	// keeps aborting, the context has shifted and a re-tune is due.
	if wasConverged && t.opts.RetuneThreshold > 1 {
		t.badStreak++
		if t.badStreak >= t.opts.RetuneWindow {
			t.Retune()
		}
	}
}

// penaltyCost derives the censored-sample cost from the best measurement
// available: the round best, else the incumbent, else a large finite
// fallback when nothing has been measured at all.
func (t *Tuner) penaltyCost() float64 {
	factor := t.opts.AbortPenalty
	if factor <= 1 {
		factor = 8
	}
	ref := t.bestCost
	if math.IsInf(ref, 0) {
		ref = t.incumbentCost
	}
	if math.IsInf(ref, 0) || ref <= 0 {
		return abortFallbackCost
	}
	return ref * factor
}

// Censored returns how many aborted (penalized) cycles have been recorded.
func (t *Tuner) Censored() int { return t.censored }

// currentValues maps the active index vector to parameter values.
func (t *Tuner) currentValues() []int {
	vals := make([]int, len(t.current))
	for i, p := range t.params {
		vals[i] = p.values[t.current[i]]
	}
	return vals
}

// Converged reports whether the search has settled on a configuration.
func (t *Tuner) Converged() bool {
	return t.search != nil && t.search.Converged()
}

// Iterations returns the number of completed measurement cycles.
func (t *Tuner) Iterations() int { return t.iterations }

// Restarts returns how many drift-triggered re-tunes have happened.
func (t *Tuner) Restarts() int { return t.restarts }

// bestIndices selects the configuration Best/ApplyBest answer with: the
// current round's best once it has measured anything, otherwise the
// incumbent carried over from before the last restart.
func (t *Tuner) bestIndices() ([]int, float64) {
	if t.best != nil {
		return t.best, t.bestCost
	}
	return t.incumbent, t.incumbentCost
}

// Best returns the parameter values and cost of the best configuration
// measured so far (in the current search round, falling back to the
// incumbent right after a restart). ok is false before the first completed
// cycle.
func (t *Tuner) Best() (values []int, cost float64, ok bool) {
	idx, cost := t.bestIndices()
	if idx == nil {
		return nil, 0, false
	}
	values = make([]int, len(idx))
	for i, p := range t.params {
		values[i] = p.values[idx[i]]
	}
	return values, cost, true
}

// ApplyBest writes the best known configuration into the client variables,
// e.g. after tuning is declared finished.
func (t *Tuner) ApplyBest() bool {
	idx, _ := t.bestIndices()
	if idx == nil {
		return false
	}
	for i, p := range t.params {
		p.apply(idx[i])
	}
	return true
}

// History returns all measurement cycles in order. The returned slice is
// shared; callers must not modify it.
func (t *Tuner) History() []Sample { return t.history }

// Retune restarts the search around the incumbent best configuration —
// online adaptation when the measuring context K changes (new scene,
// changed system load). It is a no-op for searchers that do not support
// restarting (only Nelder–Mead does), so Restarts() counts only actual
// restarts.
func (t *Tuner) Retune() {
	if t.search == nil || t.best == nil {
		return
	}
	nm, ok := t.search.(*nelderMead)
	if !ok {
		return
	}
	seeds := t.opts.SeedSamples
	if seeds <= 0 {
		seeds = 2 * (len(t.params) + 1)
	}
	nm.restart(t.best, seeds)
	// Promote the round's best to incumbent, then invalidate the round:
	// the recorded cost may reflect a stale context, but Best() keeps
	// answering with the incumbent until the new round measures.
	t.incumbent = append(t.incumbent[:0], t.best...)
	t.incumbentCost = t.bestCost
	t.best = nil
	t.bestCost = math.Inf(1)
	t.badStreak = 0
	t.restarts++
}
