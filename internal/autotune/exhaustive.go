package autotune

import "math"

// Exhaustive enumerates a (possibly strided) grid over the registered
// parameter space and tracks the optimum. It is the reference the paper
// compares the Nelder–Mead results against in §V-D4 ("Comparison to
// exhaustive search").
//
// Usage mirrors the Tuner but there is no convergence in the online sense —
// the search is Done once the grid is exhausted, after which Next keeps
// returning the optimum.
type Exhaustive struct {
	params  []*Param
	strides []int
	cursor  []int // current index per dimension (pre-stride grid walk)
	done    bool

	current  []int
	best     []int
	bestCost float64
	count    int
}

// NewExhaustive builds an exhaustive searcher over the given parameters.
// strides[i] visits every strides[i]-th value of parameter i (1 = full
// resolution); a nil strides visits everything. The full Table II grid has
// ~483k points, so the harness passes coarser strides (documented in
// DESIGN.md) to keep §V-D4 tractable.
func NewExhaustive(params []*Param, strides []int) *Exhaustive {
	e := &Exhaustive{
		params:   params,
		strides:  make([]int, len(params)),
		cursor:   make([]int, len(params)),
		bestCost: math.Inf(1),
	}
	for i := range params {
		s := 1
		if strides != nil && strides[i] > 1 {
			s = strides[i]
		}
		e.strides[i] = s
	}
	return e
}

// GridSize returns the number of configurations the walk will visit.
func (e *Exhaustive) GridSize() int {
	total := 1
	for i, p := range e.params {
		n := (len(p.values) + e.strides[i] - 1) / e.strides[i]
		total *= n
	}
	return total
}

// Next returns the configuration to measure (indices per parameter).
func (e *Exhaustive) Next() []int {
	if e.done {
		return append([]int(nil), e.best...)
	}
	cfg := make([]int, len(e.cursor))
	copy(cfg, e.cursor)
	e.current = cfg
	return cfg
}

// Report records the cost of the last configuration and advances the walk.
func (e *Exhaustive) Report(cfg []int, cost float64) {
	if e.done {
		return
	}
	e.count++
	if cost < e.bestCost {
		e.bestCost = cost
		e.best = append(e.best[:0], cfg...)
	}
	// Odometer increment with per-dimension stride.
	for d := 0; d < len(e.cursor); d++ {
		e.cursor[d] += e.strides[d]
		if e.cursor[d] < len(e.params[d].values) {
			return
		}
		e.cursor[d] = 0
	}
	e.done = true
}

// Converged reports whether the grid walk has finished.
func (e *Exhaustive) Converged() bool { return e.done }

// Best returns the best configuration (as parameter values) and its cost.
func (e *Exhaustive) Best() (values []int, cost float64, ok bool) {
	if e.best == nil {
		return nil, 0, false
	}
	values = make([]int, len(e.best))
	for i, p := range e.params {
		values[i] = p.values[e.best[i]]
	}
	return values, e.bestCost, true
}

// Evaluations returns the number of configurations measured so far.
func (e *Exhaustive) Evaluations() int { return e.count }

var _ searcher = (*Exhaustive)(nil)

// NewExhaustiveTuner wraps an Exhaustive searcher in the Tuner Start/Stop
// workflow so harness code can drive both searches identically.
func NewExhaustiveTuner(opts Options, build func(t *Tuner) error, strides []int) (*Tuner, error) {
	t := New(opts)
	if err := build(t); err != nil {
		return nil, err
	}
	t.search = NewExhaustive(t.params, strides)
	return t, nil
}

// NewExhaustiveTunerFromRegistry composes the exhaustive grid directly from
// a tunable registry: dimension i of the walk is registry tunable i, and
// strides[i] (nil = full resolution) coarsens it exactly as in
// NewExhaustiveTuner.
func NewExhaustiveTunerFromRegistry(opts Options, reg *Registry, strides []int) (*Tuner, error) {
	return NewExhaustiveTuner(opts, func(t *Tuner) error {
		return t.RegisterAll(reg)
	}, strides)
}
