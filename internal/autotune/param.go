// Package autotune reimplements the online autotuner the paper builds on
// (AtuneRT, Karcher & Pankratius / Tillmann et al.): an application-agnostic
// tuner that optimises integer program variables registered by the client,
// measuring one configuration per Start/Stop cycle and searching the
// configuration space with random sampling that seeds a Nelder–Mead simplex
// search (§III-A).
//
// The client workflow matches the paper's Figure 1:
//
//	tuner := autotune.New()
//	tuner.RegisterParameter(&n, min, max, step)
//	for work() {
//		tuner.Start() // applies the configuration under test
//		doTunedWork(n)
//		tuner.Stop()  // records the measurement, picks the next config
//	}
package autotune

import "fmt"

// Param is one registered tuning parameter: a target variable and the
// discrete set of values it may take (τ in the paper's formalisation —
// most tuning parameters are closed integer intervals, §III-A).
type Param struct {
	name   string
	target *int
	values []int
}

// Name returns the diagnostic name given at registration.
func (p *Param) Name() string { return p.name }

// Values returns the parameter's value set in ascending order. The returned
// slice is shared; callers must not modify it.
func (p *Param) Values() []int { return p.values }

// apply writes the value at index idx into the client variable.
func (p *Param) apply(idx int) { *p.target = p.values[idx] }

// clampIndex snaps an arbitrary index into the valid range.
func (p *Param) clampIndex(i int) int {
	if i < 0 {
		return 0
	}
	if i >= len(p.values) {
		return len(p.values) - 1
	}
	return i
}

// indexOf returns the index of the value closest to v.
func (p *Param) indexOf(v int) int {
	best, bestDist := 0, -1
	for i, pv := range p.values {
		d := pv - v
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// intervalValues enumerates min..max with the given stride.
func intervalValues(min, max, step int) ([]int, error) {
	if step <= 0 {
		return nil, fmt.Errorf("autotune: step %d must be positive", step)
	}
	if max < min {
		return nil, fmt.Errorf("autotune: empty range [%d,%d]", min, max)
	}
	var vals []int
	for v := min; v <= max; v += step {
		vals = append(vals, v)
	}
	return vals, nil
}

// pow2Values enumerates the powers of two in [min,max], e.g. the paper's
// τ_R = [16, 8192] limited to powers of 2 (Table II).
func pow2Values(min, max int) ([]int, error) {
	if min < 1 || max < min {
		return nil, fmt.Errorf("autotune: bad power-of-two range [%d,%d]", min, max)
	}
	var vals []int
	for v := 1; v <= max; v *= 2 {
		if v >= min {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("autotune: no powers of two in [%d,%d]", min, max)
	}
	return vals, nil
}
