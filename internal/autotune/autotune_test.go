package autotune

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// driveTuner runs the Start/Stop loop against a synthetic cost function of
// the parameter values until convergence or maxIters.
func driveTuner(t *Tuner, cost func(vals []int) float64, maxIters int, targets ...*int) int {
	for i := 0; i < maxIters; i++ {
		t.Start()
		vals := make([]int, len(targets))
		for j, p := range targets {
			vals[j] = *p
		}
		t.StopWithCost(cost(vals))
		if t.Converged() {
			return i + 1
		}
	}
	return maxIters
}

func TestRegisterValidation(t *testing.T) {
	tn := New(Options{Seed: 1})
	var v int
	if err := tn.RegisterParameter(&v, 5, 1, 1); err == nil {
		t.Fatal("empty range accepted")
	}
	if err := tn.RegisterParameter(&v, 1, 5, 0); err == nil {
		t.Fatal("zero step accepted")
	}
	if err := tn.RegisterParameter(nil, 1, 5, 1); err == nil {
		t.Fatal("nil target accepted")
	}
	if err := tn.RegisterPow2Parameter("r", &v, 8192, 16); err == nil {
		t.Fatal("inverted pow2 range accepted")
	}
	if err := tn.RegisterParameter(&v, 1, 5, 1); err != nil {
		t.Fatalf("valid registration rejected: %v", err)
	}
	tn.Start()
	tn.StopWithCost(1)
	if err := tn.RegisterParameter(&v, 1, 5, 1); err == nil {
		t.Fatal("registration after tuning started accepted")
	}
}

func TestPow2Values(t *testing.T) {
	vals, err := pow2Values(16, 8192)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}
	if len(vals) != len(want) {
		t.Fatalf("pow2Values = %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("pow2Values = %v, want %v", vals, want)
		}
	}
}

func TestIntervalValues(t *testing.T) {
	vals, err := intervalValues(3, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0] != 3 || vals[1] != 7 || vals[2] != 11 {
		t.Fatalf("intervalValues = %v", vals)
	}
}

func TestTunerAppliesValuesWithinBounds(t *testing.T) {
	tn := New(Options{Seed: 7})
	var a, b int
	if err := tn.RegisterParameter(&a, 3, 101, 1); err != nil {
		t.Fatal(err)
	}
	if err := tn.RegisterPow2Parameter("r", &b, 16, 8192); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tn.Start()
		if a < 3 || a > 101 {
			t.Fatalf("iter %d: a=%d escaped [3,101]", i, a)
		}
		if b < 16 || b > 8192 || b&(b-1) != 0 {
			t.Fatalf("iter %d: b=%d is not a power of two in [16,8192]", i, b)
		}
		tn.StopWithCost(float64(a) + float64(b)/100)
	}
}

func TestConvergesOnConvexQuadratic1D(t *testing.T) {
	tn := New(Options{Seed: 3})
	var n int
	if err := tn.RegisterParameter(&n, 1, 64, 1); err != nil {
		t.Fatal(err)
	}
	cost := func(vals []int) float64 {
		d := float64(vals[0] - 23)
		return 100 + d*d
	}
	iters := driveTuner(tn, cost, 500, &n)
	if !tn.Converged() {
		t.Fatalf("did not converge in %d iterations", iters)
	}
	best, bestCost, ok := tn.Best()
	if !ok {
		t.Fatal("no best")
	}
	if math.Abs(float64(best[0]-23)) > 3 {
		t.Fatalf("best = %v (cost %v), want near 23", best, bestCost)
	}
}

func TestConvergesOnConvexQuadratic4D(t *testing.T) {
	// Dimensionality of the paper's real search space (CI, CB, S, R).
	// Nelder–Mead is vulnerable to local minima (§V-D4 reports outliers
	// with speedup ~1); assert on the median over seeds, not on every run.
	opt := []int{40, 20, 5, 256}
	var costs []float64
	for seed := int64(1); seed <= 5; seed++ {
		tn := New(Options{Seed: seed})
		var ci, cb, s, r int
		if err := tn.RegisterNamedParameter("CI", &ci, 3, 101, 1); err != nil {
			t.Fatal(err)
		}
		if err := tn.RegisterNamedParameter("CB", &cb, 0, 60, 1); err != nil {
			t.Fatal(err)
		}
		if err := tn.RegisterNamedParameter("S", &s, 1, 8, 1); err != nil {
			t.Fatal(err)
		}
		if err := tn.RegisterPow2Parameter("R", &r, 16, 8192); err != nil {
			t.Fatal(err)
		}
		cost := func(v []int) float64 {
			c := 0.0
			for i, o := range opt {
				d := (float64(v[i]) - float64(o)) / float64(o)
				c += d * d
			}
			return 1 + c
		}
		iters := driveTuner(tn, cost, 2000, &ci, &cb, &s, &r)
		best, bestCost, _ := tn.Best()
		if bestCost > 2.0 {
			t.Fatalf("seed %d: catastrophic optimum %v (cost %v) after %d iters", seed, best, bestCost, iters)
		}
		costs = append(costs, bestCost)
	}
	sort.Float64s(costs)
	if med := costs[len(costs)/2]; med > 1.2 {
		t.Fatalf("median optimum cost %v across seeds, want <= 1.2 (costs %v)", med, costs)
	}
}

func TestConvergenceSpeedIsPaperLike(t *testing.T) {
	// The paper reports a "relatively stable state after just about 40
	// iterations" on the 4-D space. Require convergence within a small
	// multiple of that on a smooth cost surface for most seeds.
	within := 0
	for seed := int64(1); seed <= 10; seed++ {
		tn := New(Options{Seed: seed})
		var ci, cb, s, r int
		_ = tn.RegisterNamedParameter("CI", &ci, 3, 101, 1)
		_ = tn.RegisterNamedParameter("CB", &cb, 0, 60, 1)
		_ = tn.RegisterNamedParameter("S", &s, 1, 8, 1)
		_ = tn.RegisterPow2Parameter("R", &r, 16, 8192)
		cost := func(v []int) float64 {
			return math.Abs(float64(v[0])-30)/30 + math.Abs(float64(v[1])-15)/15 +
				math.Abs(float64(v[2])-4)/4 + math.Abs(math.Log2(float64(v[3]))-8)
		}
		iters := driveTuner(tn, cost, 300, &ci, &cb, &s, &r)
		if tn.Converged() && iters <= 120 {
			within++
		}
	}
	if within < 6 {
		t.Fatalf("only %d/10 seeds converged within 120 iterations", within)
	}
}

func TestNoisyMeasurementsStillImprove(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tn := New(Options{Seed: 17})
	var n int
	if err := tn.RegisterParameter(&n, 1, 100, 1); err != nil {
		t.Fatal(err)
	}
	cost := func(vals []int) float64 {
		d := float64(vals[0]-60) / 60
		return (1 + d*d) * (1 + 0.05*rng.NormFloat64())
	}
	driveTuner(tn, cost, 400, &n)
	best, _, _ := tn.Best()
	if math.Abs(float64(best[0]-60)) > 25 {
		t.Fatalf("noisy best = %v, want near 60", best)
	}
}

func TestBestNeverWorseThanFirstSample(t *testing.T) {
	// On any cost surface the tuned result can't be worse than the first
	// configuration measured — the tuner always keeps the incumbent.
	surfaces := []func([]int) float64{
		func(v []int) float64 { return float64(v[0]) },
		func(v []int) float64 { return -float64(v[0]) },
		func(v []int) float64 { return math.Sin(float64(v[0])) * 100 },
		func(v []int) float64 { return float64((v[0] * 7919) % 101) }, // rough
	}
	for si, cost := range surfaces {
		tn := New(Options{Seed: int64(si + 1)})
		var n int
		if err := tn.RegisterParameter(&n, 1, 100, 1); err != nil {
			t.Fatal(err)
		}
		var first float64
		for i := 0; i < 150; i++ {
			tn.Start()
			c := cost([]int{n})
			if i == 0 {
				first = c
			}
			tn.StopWithCost(c)
		}
		_, bestCost, _ := tn.Best()
		if bestCost > first {
			t.Fatalf("surface %d: best %v worse than first sample %v", si, bestCost, first)
		}
	}
}

func TestStartStopDiscipline(t *testing.T) {
	tn := New(Options{Seed: 1})
	var v int
	_ = tn.RegisterParameter(&v, 1, 4, 1)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Stop without Start should panic")
			}
		}()
		tn.StopWithCost(1)
	}()

	tn.Start()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double Start should panic")
			}
		}()
		tn.Start()
	}()
	tn.StopWithCost(1)

	if tn.Iterations() != 1 {
		t.Fatalf("Iterations = %d", tn.Iterations())
	}
	if len(tn.History()) != 1 {
		t.Fatalf("History length = %d", len(tn.History()))
	}
}

func TestStartWithoutParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Options{Seed: 1}).Start()
}

func TestWallClockMeasurement(t *testing.T) {
	// Fake clock: each Stop sees 1ms more than its Start.
	now := time.Duration(0)
	tn := New(Options{Seed: 1, Clock: func() time.Duration {
		now += 500 * time.Microsecond
		return now
	}})
	var v int
	_ = tn.RegisterParameter(&v, 1, 8, 1)
	tn.Start()
	tn.Stop()
	if len(tn.History()) != 1 || tn.History()[0].Cost <= 0 {
		t.Fatalf("wall-clock cost not recorded: %+v", tn.History())
	}
}

func TestApplyBest(t *testing.T) {
	tn := New(Options{Seed: 5})
	var v int
	_ = tn.RegisterParameter(&v, 1, 50, 1)
	if tn.ApplyBest() {
		t.Fatal("ApplyBest before any measurement should report false")
	}
	driveTuner(tn, func(vals []int) float64 {
		d := float64(vals[0] - 10)
		return d * d
	}, 300, &v)
	best, _, _ := tn.Best()
	if !tn.ApplyBest() {
		t.Fatal("ApplyBest failed")
	}
	if v != best[0] {
		t.Fatalf("ApplyBest wrote %d, Best says %d", v, best[0])
	}
}

func TestRetuneAdaptsToShiftedOptimum(t *testing.T) {
	tn := New(Options{Seed: 11, RetuneThreshold: 1.5, RetuneWindow: 3})
	var n int
	_ = tn.RegisterParameter(&n, 1, 100, 1)

	optimum := 20
	cost := func(v int) float64 {
		d := float64(v-optimum) / 10
		return 1 + d*d
	}
	// Converge on the first optimum.
	for i := 0; i < 400 && !tn.Converged(); i++ {
		tn.Start()
		tn.StopWithCost(cost(n))
	}
	if !tn.Converged() {
		t.Fatal("phase 1 did not converge")
	}
	// Shift the world: the old best now costs ~17x its old value.
	optimum = 85
	for i := 0; i < 600; i++ {
		tn.Start()
		tn.StopWithCost(cost(n))
	}
	if tn.Restarts() == 0 {
		t.Fatal("drift never triggered a retune")
	}
	best, _, _ := tn.Best()
	if math.Abs(float64(best[0]-85)) > 25 {
		t.Fatalf("after drift best = %v, want near 85", best)
	}
}

func TestExhaustiveVisitsWholeGrid(t *testing.T) {
	var a, b int
	tn, err := NewExhaustiveTuner(Options{Seed: 1}, func(t *Tuner) error {
		if err := t.RegisterParameter(&a, 0, 4, 1); err != nil {
			return err
		}
		return t.RegisterParameter(&b, 0, 2, 1)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for !tn.Converged() {
		tn.Start()
		seen[[2]int{a, b}] = true
		tn.StopWithCost(float64((a-3)*(a-3) + (b-1)*(b-1)))
	}
	if len(seen) != 15 {
		t.Fatalf("visited %d configs, want 15", len(seen))
	}
	best, cost, _ := tn.Best()
	if best[0] != 3 || best[1] != 1 || cost != 0 {
		t.Fatalf("exhaustive best = %v cost %v, want [3 1] 0", best, cost)
	}
}

func TestExhaustiveStrides(t *testing.T) {
	var a int
	params := []*Param{{name: "a", target: &a, values: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}}
	e := NewExhaustive(params, []int{3})
	if e.GridSize() != 4 {
		t.Fatalf("GridSize = %d, want 4 (indices 0,3,6,9)", e.GridSize())
	}
	visited := []int{}
	for !e.Converged() {
		cfg := e.Next()
		visited = append(visited, cfg[0])
		e.Report(cfg, float64(cfg[0]))
	}
	if len(visited) != 4 || visited[0] != 0 || visited[3] != 9 {
		t.Fatalf("visited = %v", visited)
	}
	if e.Evaluations() != 4 {
		t.Fatalf("Evaluations = %d", e.Evaluations())
	}
	vals, cost, ok := e.Best()
	if !ok || vals[0] != 0 || cost != 0 {
		t.Fatalf("Best = %v %v %v", vals, cost, ok)
	}
}

func TestHistoryRecordsValuesNotIndices(t *testing.T) {
	tn := New(Options{Seed: 2})
	var r int
	_ = tn.RegisterPow2Parameter("R", &r, 16, 8192)
	tn.Start()
	applied := r
	tn.StopWithCost(1)
	h := tn.History()
	if h[0].Values[0] != applied {
		t.Fatalf("history value %d != applied %d", h[0].Values[0], applied)
	}
	if applied&(applied-1) != 0 {
		t.Fatalf("applied R=%d not a power of two", applied)
	}
}

func TestParamAccessors(t *testing.T) {
	tn := New(Options{Seed: 2})
	var v int
	_ = tn.RegisterNamedParameter("CI", &v, 3, 101, 1)
	ps := tn.Params()
	if len(ps) != 1 || ps[0].Name() != "CI" || len(ps[0].Values()) != 99 {
		t.Fatalf("Params() wrong: %+v", ps)
	}
	if ps[0].indexOf(3) != 0 || ps[0].indexOf(101) != 98 || ps[0].indexOf(-100) != 0 {
		t.Fatal("indexOf wrong")
	}
}

func TestRandomSearchFindsGoodConfigs(t *testing.T) {
	var x int
	tn, err := NewRandomTuner(Options{Seed: 21}, func(t *Tuner) error {
		return t.RegisterParameter(&x, 0, 1000, 1)
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for !tn.Converged() {
		tn.Start()
		d := float64(x - 400)
		tn.StopWithCost(d * d)
	}
	best, _, ok := tn.Best()
	if !ok {
		t.Fatal("no best")
	}
	if math.Abs(float64(best[0]-400)) > 150 {
		t.Fatalf("random search best %v far from 400 after 100 samples", best)
	}
	// After convergence the frozen incumbent keeps being proposed.
	tn.Start()
	frozen := x
	tn.StopWithCost(1)
	if frozen != best[0] {
		t.Fatalf("converged random search proposed %d, incumbent %d", frozen, best[0])
	}
}

func TestNelderMeadBeatsRandomOnSmoothSurface(t *testing.T) {
	// What the simplex search adds over pure sampling: with the same
	// evaluation budget on a smooth 4-D bowl, NM's optimum should beat
	// random sampling's on most seeds.
	const budget = 60
	wins, ties := 0, 0
	for seed := int64(1); seed <= 9; seed++ {
		cost := func(v []int) float64 {
			c := 0.0
			for i, o := range []int{40, 20, 5, 50} {
				d := (float64(v[i]) - float64(o)) / (1 + float64(o))
				c += d * d
			}
			return c
		}
		register := func(t *Tuner) error {
			var a, b, c, d int
			targets := []*int{&a, &b, &c, &d}
			for i, p := range targets {
				if err := t.RegisterNamedParameter(fmt.Sprintf("p%d", i), p, 0, 100, 1); err != nil {
					return err
				}
			}
			return nil
		}
		runFor := func(tn *Tuner) float64 {
			for i := 0; i < budget; i++ {
				tn.Start()
				vals := make([]int, 4)
				for j, p := range tn.Params() {
					vals[j] = *p.target
				}
				tn.StopWithCost(cost(vals))
			}
			_, best, _ := tn.Best()
			return best
		}

		nm := New(Options{Seed: seed})
		if err := register(nm); err != nil {
			t.Fatal(err)
		}
		nmBest := runFor(nm)

		rnd, err := NewRandomTuner(Options{Seed: seed}, register, budget)
		if err != nil {
			t.Fatal(err)
		}
		rndBest := runFor(rnd)

		switch {
		case nmBest < rndBest:
			wins++
		case nmBest == rndBest:
			ties++
		}
	}
	if wins+ties < 6 {
		t.Fatalf("Nelder-Mead won only %d/9 seeds against random sampling", wins)
	}
}

func TestExhaustiveWithPow2Parameter(t *testing.T) {
	var ci, r int
	tn, err := NewExhaustiveTuner(Options{Seed: 1}, func(t *Tuner) error {
		if err := t.RegisterParameter(&ci, 3, 101, 14); err != nil {
			return err
		}
		return t.RegisterPow2Parameter("R", &r, 16, 8192)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for !tn.Converged() {
		tn.Start()
		seen[[2]int{ci, r}] = true
		tn.StopWithCost(float64(ci) * float64(r))
	}
	// 8 CI values (3,17,...,101) x 10 R values.
	if len(seen) != 80 {
		t.Fatalf("visited %d configurations, want 80", len(seen))
	}
	best, _, _ := tn.Best()
	if best[0] != 3 || best[1] != 16 {
		t.Fatalf("best = %v, want [3 16]", best)
	}
}

func TestRetuneWithoutHistoryIsNoop(t *testing.T) {
	tn := New(Options{Seed: 1})
	var v int
	_ = tn.RegisterParameter(&v, 1, 4, 1)
	tn.Retune() // no search yet: must not panic
	if tn.Restarts() != 0 {
		t.Fatal("retune counted without a search")
	}
}

func TestRetuneKeepsBestMeaningful(t *testing.T) {
	// Regression test: Retune used to reset bestCost to +Inf while keeping
	// the best indices, so Best() returned ok=true with cost=+Inf.
	tn := New(Options{Seed: 7})
	var v int
	_ = tn.RegisterParameter(&v, 1, 50, 1)
	driveTuner(tn, func(vals []int) float64 {
		d := float64(vals[0] - 30)
		return 1 + d*d
	}, 400, &v)
	wantVals, wantCost, ok := tn.Best()
	if !ok || math.IsInf(wantCost, 1) {
		t.Fatalf("pre-retune Best broken: %v %v %v", wantVals, wantCost, ok)
	}

	tn.Retune()
	if tn.Restarts() != 1 {
		t.Fatalf("Restarts = %d after one Retune", tn.Restarts())
	}
	gotVals, gotCost, ok := tn.Best()
	if !ok {
		t.Fatal("Best reports ok=false right after Retune")
	}
	if math.IsInf(gotCost, 1) {
		t.Fatal("Best reports cost=+Inf right after Retune")
	}
	if gotVals[0] != wantVals[0] || gotCost != wantCost {
		t.Fatalf("incumbent lost across Retune: got (%v, %v), want (%v, %v)",
			gotVals, gotCost, wantVals, wantCost)
	}
	if !tn.ApplyBest() || v != wantVals[0] {
		t.Fatalf("ApplyBest after Retune wrote %d, want %d", v, wantVals[0])
	}

	// The first post-restart measurement becomes the new round's best.
	tn.Start()
	tn.StopWithCost(123.0)
	if _, cost, ok := tn.Best(); !ok || math.IsInf(cost, 1) {
		t.Fatalf("Best after first post-restart cycle: cost=%v ok=%v", cost, ok)
	}
}

func TestRetuneNoOpForNonRestartableSearch(t *testing.T) {
	// Regression test: restarts must not be counted when the searcher
	// cannot restart (only Nelder-Mead supports it).
	var v int
	tn, err := NewExhaustiveTuner(Options{Seed: 3}, func(t *Tuner) error {
		return t.RegisterParameter(&v, 1, 4, 1)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn.Start()
	tn.StopWithCost(5)
	before, beforeCost, ok := tn.Best()
	if !ok {
		t.Fatal("no best after one cycle")
	}
	tn.Retune()
	if tn.Restarts() != 0 {
		t.Fatalf("Restarts = %d for exhaustive search, want 0", tn.Restarts())
	}
	after, afterCost, ok := tn.Best()
	if !ok || after[0] != before[0] || afterCost != beforeCost {
		t.Fatalf("Retune corrupted exhaustive best: (%v,%v,%v) vs (%v,%v)",
			after, afterCost, ok, before, beforeCost)
	}
}
