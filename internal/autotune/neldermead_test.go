package autotune

import (
	"math"
	"math/rand"
	"testing"
)

// mkParams builds two 0..100 step-1 parameters for white-box NM tests.
func mkParams() []*Param {
	var a, b int
	va, _ := intervalValues(0, 100, 1)
	vb, _ := intervalValues(0, 100, 1)
	return []*Param{
		{name: "a", target: &a, values: va},
		{name: "b", target: &b, values: vb},
	}
}

// drive feeds cost(cfg) to the searcher for n steps.
func drive(nm *nelderMead, cost func([]int) float64, n int) {
	for i := 0; i < n && !nm.Converged(); i++ {
		cfg := nm.Next()
		nm.Report(cfg, cost(cfg))
	}
}

func TestNMSeedingPhaseCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nm := newNelderMead(mkParams(), 7, rng)
	for i := 0; i < 7; i++ {
		if nm.phase != nmSeeding {
			t.Fatalf("step %d: expected seeding phase", i)
		}
		cfg := nm.Next()
		nm.Report(cfg, float64(i))
	}
	if nm.phase == nmSeeding {
		t.Fatal("still seeding after the seed budget")
	}
	if len(nm.simplex) != 3 {
		t.Fatalf("simplex size %d, want d+1=3", len(nm.simplex))
	}
}

func TestNMSeedBudgetClampedToDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nm := newNelderMead(mkParams(), 1, rng)
	if nm.seedBudget < 3 {
		t.Fatalf("seed budget %d below d+1", nm.seedBudget)
	}
}

func TestNMSimplexSortedBestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nm := newNelderMead(mkParams(), 6, rng)
	cost := func(cfg []int) float64 { return float64(cfg[0] + cfg[1]) }
	drive(nm, cost, 6)
	for i := 1; i < len(nm.simplex); i++ {
		if nm.simplex[i].cost < nm.simplex[i-1].cost {
			t.Fatal("simplex not sorted best-first")
		}
	}
}

func TestNMProposalsStayInUnitBox(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nm := newNelderMead(mkParams(), 4, rng)
	cost := func(cfg []int) float64 {
		// Push the search towards a corner to provoke clamping.
		return float64((100-cfg[0])*(100-cfg[0]) + cfg[1]*cfg[1])
	}
	for i := 0; i < 200 && !nm.Converged(); i++ {
		cfg := nm.Next()
		for d, p := range nm.params {
			if cfg[d] < 0 || cfg[d] >= len(p.values) {
				t.Fatalf("step %d: index %d out of range", i, cfg[d])
			}
		}
		nm.Report(cfg, cost(cfg))
	}
}

func TestNMConvergesAndStaysConverged(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nm := newNelderMead(mkParams(), 6, rng)
	cost := func(cfg []int) float64 {
		dx, dy := float64(cfg[0]-30), float64(cfg[1]-70)
		return dx*dx + dy*dy
	}
	drive(nm, cost, 500)
	if !nm.Converged() {
		t.Fatal("did not converge on a smooth bowl")
	}
	// After convergence, Next keeps returning the same (best) point and
	// Report refreshes its cost without crashing.
	first := nm.Next()
	nm.Report(first, cost(first))
	second := nm.Next()
	for d := range first {
		if first[d] != second[d] {
			t.Fatal("post-convergence proposals changed")
		}
	}
	best := nm.snap(nm.simplex[0].x)
	if math.Abs(float64(best[0]-30)) > 5 || math.Abs(float64(best[1]-70)) > 5 {
		t.Fatalf("converged to %v, want near (30,70)", best)
	}
}

func TestNMRestartReseedsFromIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nm := newNelderMead(mkParams(), 5, rng)
	cost := func(cfg []int) float64 {
		dx, dy := float64(cfg[0]-20), float64(cfg[1]-20)
		return dx*dx + dy*dy
	}
	drive(nm, cost, 400)
	if !nm.Converged() {
		t.Fatal("phase 1 did not converge")
	}
	incumbent := nm.snap(nm.simplex[0].x)
	nm.restart(incumbent, 5)
	if nm.Converged() {
		t.Fatal("restart did not clear convergence")
	}
	// First proposal after restart is the incumbent itself.
	first := nm.Next()
	for d := range first {
		if first[d] != incumbent[d] {
			t.Fatalf("first post-restart proposal %v, want incumbent %v", first, incumbent)
		}
	}
}

func TestNMLiftSnapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nm := newNelderMead(mkParams(), 3, rng)
	for _, cfg := range [][]int{{0, 0}, {100, 100}, {50, 25}, {1, 99}} {
		back := nm.snap(nm.lift(cfg))
		if back[0] != cfg[0] || back[1] != cfg[1] {
			t.Fatalf("lift/snap round trip %v -> %v", cfg, back)
		}
	}
}

func TestNMSingleValueParameter(t *testing.T) {
	// A parameter with exactly one valid value must not divide by zero or
	// wedge the search.
	var a, b int
	va, _ := intervalValues(5, 5, 1)
	vb, _ := intervalValues(0, 10, 1)
	params := []*Param{
		{name: "a", target: &a, values: va},
		{name: "b", target: &b, values: vb},
	}
	rng := rand.New(rand.NewSource(8))
	nm := newNelderMead(params, 4, rng)
	cost := func(cfg []int) float64 { d := float64(cfg[1] - 3); return d * d }
	drive(nm, cost, 300)
	best := nm.snap(nm.simplex[0].x)
	if best[0] != 0 {
		t.Fatalf("single-value parameter index %d", best[0])
	}
	if math.Abs(float64(vb[best[1]]-3)) > 3 {
		t.Fatalf("best b = %d, want near 3", vb[best[1]])
	}
}

func TestCellKeyDistinguishesConfigs(t *testing.T) {
	if cellKey([]int{1, 2}) == cellKey([]int{2, 1}) {
		t.Fatal("cellKey collision on permuted configs")
	}
	if cellKey([]int{256}) == cellKey([]int{0}) {
		t.Fatal("cellKey ignores high bytes")
	}
}

func TestSortVerticesStable(t *testing.T) {
	vs := []vertex{
		{x: []float64{1}, cost: 2},
		{x: []float64{2}, cost: 1},
		{x: []float64{3}, cost: 2},
	}
	sortVertices(vs)
	if vs[0].cost != 1 || vs[1].x[0] != 1 || vs[2].x[0] != 3 {
		t.Fatalf("sortVertices wrong/unstable: %+v", vs)
	}
}
