package autotune

import (
	"fmt"
	"sort"
)

// Scale is the search-space shaping hint a tunable carries at registration.
// Tørring & Elster ("Analyzing Search Techniques for Autotuning", PAPERS.md)
// show search quality depends on how the space is presented to the searcher:
// a parameter whose useful values span decades (chunk grains, resolutions)
// must be registered on a logarithmic grid, not as a raw integer interval,
// or the search wastes its budget resolving irrelevant low-order digits.
type Scale int

const (
	// ScaleLinear enumerates min..max with the tunable's Step.
	ScaleLinear Scale = iota
	// ScalePow2 enumerates the powers of two in [min, max] — the paper's
	// treatment of τ_R = [16, 8192] (Table II), and the natural grid for
	// grains, bin counts and packet widths.
	ScalePow2
)

// String names the scale hint for diagnostics and -list-params tables.
func (s Scale) String() string {
	switch s {
	case ScaleLinear:
		return "linear"
	case ScalePow2:
		return "pow2"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// Tunable is one named tuning parameter a subsystem registers: the target
// program variable, its closed range, and the scale hint that shapes the
// value grid the searchers walk. Desc is the one-line human description
// surfaced by `kdtune -list-params` and the README tunables table.
type Tunable struct {
	Name   string
	Target *int
	Min    int
	Max    int
	Step   int // ScaleLinear stride; ignored (and defaulted to 1) for ScalePow2
	Scale  Scale
	Desc   string
}

// Values enumerates the tunable's value grid in ascending order.
func (tn Tunable) Values() ([]int, error) {
	switch tn.Scale {
	case ScalePow2:
		return pow2Values(tn.Min, tn.Max)
	case ScaleLinear:
		step := tn.Step
		if step == 0 {
			step = 1
		}
		return intervalValues(tn.Min, tn.Max, step)
	}
	return nil, fmt.Errorf("autotune: tunable %q has unknown scale %d", tn.Name, int(tn.Scale))
}

// Registry is the named tunable registry the tuning harness composes its
// search space from. Subsystems register their tunables (build grains, bin
// counts, packet widths, ...) against it during setup; the harness then
// feeds the whole registry to a Tuner with RegisterAll, so every subsystem
// shares one registration mechanism and every report can name the full
// parameter vector generically.
//
// Registration order is preserved: it defines the dimension order of the
// search space and of every value vector derived from it. A Registry is not
// safe for concurrent mutation.
type Registry struct {
	tunables []Tunable
	byName   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

// Register validates and appends one tunable. Names must be non-empty and
// unique within the registry; the target must be non-nil; the range must
// enumerate at least one value under the declared scale.
func (r *Registry) Register(tn Tunable) error {
	if tn.Name == "" {
		return fmt.Errorf("autotune: tunable with empty name")
	}
	if _, dup := r.byName[tn.Name]; dup {
		return fmt.Errorf("autotune: tunable %q registered twice", tn.Name)
	}
	if tn.Target == nil {
		return fmt.Errorf("autotune: tunable %q has a nil target", tn.Name)
	}
	if _, err := tn.Values(); err != nil {
		return err
	}
	if r.byName == nil {
		r.byName = map[string]int{}
	}
	r.byName[tn.Name] = len(r.tunables)
	r.tunables = append(r.tunables, tn)
	return nil
}

// Len returns the number of registered tunables.
func (r *Registry) Len() int { return len(r.tunables) }

// Tunables returns the registered tunables in registration order. The
// returned slice is shared; callers must not modify it.
func (r *Registry) Tunables() []Tunable { return r.tunables }

// Names returns the tunable names in registration order.
func (r *Registry) Names() []string {
	names := make([]string, len(r.tunables))
	for i, tn := range r.tunables {
		names[i] = tn.Name
	}
	return names
}

// Lookup finds a tunable by name.
func (r *Registry) Lookup(name string) (Tunable, bool) {
	i, ok := r.byName[name]
	if !ok {
		return Tunable{}, false
	}
	return r.tunables[i], true
}

// Snapshot reads the current value of every registered target into a
// name-keyed map — the "full named vector" benchmark cells and traces
// report.
func (r *Registry) Snapshot() map[string]int {
	m := make(map[string]int, len(r.tunables))
	for _, tn := range r.tunables {
		m[tn.Name] = *tn.Target
	}
	return m
}

// Vector reads the current value of every registered target in
// registration order (the positional twin of Snapshot, for per-frame
// records that would drown in per-frame maps).
func (r *Registry) Vector() []int {
	v := make([]int, len(r.tunables))
	for i, tn := range r.tunables {
		v[i] = *tn.Target
	}
	return v
}

// FormatVector renders a name-keyed vector as "name=value,..." in
// registration order (names absent from the map are skipped), so traces and
// compare output print configurations identically everywhere.
func (r *Registry) FormatVector(values map[string]int) string {
	out := make([]byte, 0, 16*len(r.tunables))
	for _, tn := range r.tunables {
		v, ok := values[tn.Name]
		if !ok {
			continue
		}
		if len(out) > 0 {
			out = append(out, ',')
		}
		out = fmt.Appendf(out, "%s=%d", tn.Name, v)
	}
	return string(out)
}

// FormatParams renders an arbitrary name-keyed vector without a registry:
// keys sort alphabetically. Used by report printers that only have the map.
func FormatParams(values map[string]int) string {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]byte, 0, 16*len(keys))
	for _, k := range keys {
		if len(out) > 0 {
			out = append(out, ',')
		}
		out = fmt.Appendf(out, "%s=%d", k, values[k])
	}
	return string(out)
}

// RegisterAll registers every tunable of the registry with the tuner, in
// registration order — the bridge between the subsystem-facing Registry and
// the search: the composed parameter list defines the Nelder–Mead (or
// exhaustive) search space.
func (t *Tuner) RegisterAll(reg *Registry) error {
	for _, tn := range reg.Tunables() {
		if err := t.RegisterTunable(tn); err != nil {
			return err
		}
	}
	return nil
}

// RegisterTunable registers a single tunable spec with the tuner.
func (t *Tuner) RegisterTunable(tn Tunable) error {
	vals, err := tn.Values()
	if err != nil {
		return err
	}
	if tn.Target == nil {
		return fmt.Errorf("autotune: tunable %q has a nil target", tn.Name)
	}
	return t.register(tn.Name, tn.Target, vals)
}

// BestByName returns the tuner's best-known configuration as a name-keyed
// map. ok is false before the first completed cycle. Parameters registered
// without a name keep their synthetic "paramN" names.
func (t *Tuner) BestByName() (map[string]int, bool) {
	values, _, ok := t.Best()
	if !ok {
		return nil, false
	}
	m := make(map[string]int, len(values))
	for i, p := range t.params {
		m[p.Name()] = values[i]
	}
	return m, true
}
