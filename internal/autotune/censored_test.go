package autotune

import (
	"math"
	"testing"
)

func newCensorTuner(t *testing.T, opts Options) (*Tuner, *int) {
	t.Helper()
	tn := New(opts)
	v := new(int)
	if err := tn.RegisterNamedParameter("v", v, 1, 20, 1); err != nil {
		t.Fatal(err)
	}
	return tn, v
}

func TestStopAbortedRequiresStart(t *testing.T) {
	tn, _ := newCensorTuner(t, Options{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatalf("StopAborted without Start did not panic")
		}
	}()
	tn.StopAborted()
}

func TestStopAbortedRecordsCensoredSample(t *testing.T) {
	tn, _ := newCensorTuner(t, Options{Seed: 1})

	tn.Start()
	tn.StopWithCost(100)
	tn.Start()
	tn.StopAborted()

	if got := tn.Censored(); got != 1 {
		t.Fatalf("Censored() = %d, want 1", got)
	}
	if got := tn.Iterations(); got != 2 {
		t.Fatalf("Iterations() = %d; aborted cycles count as iterations", got)
	}
	h := tn.History()
	if len(h) != 2 {
		t.Fatalf("history has %d samples, want 2", len(h))
	}
	if h[0].Censored || !h[1].Censored {
		t.Fatalf("censored flags wrong: %+v", h)
	}
	// Default AbortPenalty is 8× the best measured cost.
	if want := 800.0; h[1].Cost != want {
		t.Fatalf("censored cost %v, want %v", h[1].Cost, want)
	}
	if math.IsInf(h[1].Cost, 0) || math.IsNaN(h[1].Cost) {
		t.Fatalf("censored cost must stay finite for the simplex arithmetic")
	}
}

func TestAbortPenaltyOption(t *testing.T) {
	tn, _ := newCensorTuner(t, Options{Seed: 1, AbortPenalty: 50})
	tn.Start()
	tn.StopWithCost(2)
	tn.Start()
	tn.StopAborted()
	if got := tn.History()[1].Cost; got != 100 {
		t.Fatalf("censored cost %v, want AbortPenalty×best = 100", got)
	}

	// A nonsensical penalty factor (<=1 would rank aborts as good) falls
	// back to the default.
	tn2, _ := newCensorTuner(t, Options{Seed: 1, AbortPenalty: 0.5})
	tn2.Start()
	tn2.StopWithCost(2)
	tn2.Start()
	tn2.StopAborted()
	if got := tn2.History()[1].Cost; got != 16 {
		t.Fatalf("censored cost %v, want default 8×best = 16", got)
	}
}

func TestPenaltyWithoutAnyMeasurement(t *testing.T) {
	// The very first cycle aborts: no best, no incumbent. The penalty must
	// be the large finite fallback, not Inf/NaN/zero.
	tn, _ := newCensorTuner(t, Options{Seed: 1})
	tn.Start()
	tn.StopAborted()
	got := tn.History()[0].Cost
	if got != abortFallbackCost {
		t.Fatalf("first-cycle censored cost %v, want fallback %v", got, abortFallbackCost)
	}
	// And Best has nothing to answer with: the only sample is censored.
	if _, _, ok := tn.Best(); ok {
		t.Fatalf("Best() returned a censored configuration")
	}
	if tn.ApplyBest() {
		t.Fatalf("ApplyBest() applied a censored configuration")
	}
}

// TestBestNeverReturnsCensoredConfig: even when the penalized cost would
// numerically beat the measured ones, a censored sample must not become the
// incumbent.
func TestBestNeverReturnsCensoredConfig(t *testing.T) {
	tn, v := newCensorTuner(t, Options{Seed: 3})

	// One expensive real measurement, then an abort. The penalty (8×best)
	// is higher, but drive the point home across many aborts at varied
	// configurations: Best must keep answering with the measured one.
	tn.Start()
	measured := *v
	tn.StopWithCost(7)
	for i := 0; i < 10; i++ {
		tn.Start()
		tn.StopAborted()
	}
	vals, cost, ok := tn.Best()
	if !ok {
		t.Fatalf("Best() lost the measured configuration")
	}
	if cost != 7 || vals[0] != measured {
		t.Fatalf("Best() = %v at %v, want the measured config %d at 7", vals, cost, measured)
	}
	for _, s := range tn.History()[1:] {
		if !s.Censored {
			t.Fatalf("expected all later samples censored: %+v", s)
		}
		if s.Cost < 7 {
			t.Fatalf("a censored sample undercut the measured best: %+v", s)
		}
	}
}

// TestAbortsDriveRetune: once converged, repeated aborts of the incumbent
// region are definitionally bad cycles and must trigger drift re-tuning.
func TestAbortsDriveRetune(t *testing.T) {
	tn, v := newCensorTuner(t, Options{Seed: 5, RetuneThreshold: 1.5, RetuneWindow: 3})
	cost := func(vals []int) float64 { return float64((vals[0]-10)*(vals[0]-10) + 1) }
	driveTuner(tn, cost, 400, v)
	if !tn.Converged() {
		t.Skip("search did not converge; retune path not reachable")
	}
	before := tn.Restarts()
	for i := 0; i < 3; i++ {
		if tn.Converged() {
			tn.Start()
			tn.StopAborted()
		}
	}
	if tn.Restarts() != before+1 {
		t.Fatalf("3 consecutive aborts after convergence: restarts %d -> %d, want a re-tune",
			before, tn.Restarts())
	}
}

// TestCensoredSamplesSteerSearchAway: a cost cliff implemented via aborts
// (instead of huge measured costs) must still steer Nelder–Mead into the
// measurable region and keep the final best outside the cliff.
func TestCensoredSamplesSteerSearchAway(t *testing.T) {
	tn, v := newCensorTuner(t, Options{Seed: 11})
	for i := 0; i < 300; i++ {
		tn.Start()
		if *v >= 15 { // configurations past the cliff never finish building
			tn.StopAborted()
		} else {
			tn.StopWithCost(float64((*v-8)*(*v-8) + 2))
		}
		if tn.Converged() {
			break
		}
	}
	vals, cost, ok := tn.Best()
	if !ok {
		t.Fatalf("no best found")
	}
	if vals[0] >= 15 {
		t.Fatalf("best landed inside the abort cliff: %v", vals)
	}
	if cost >= tn.penaltyCost() {
		t.Fatalf("best cost %v is a penalty, not a measurement", cost)
	}
}

// TestCensoredGrainDimensionsAvoidExtremes is the registry-level version of
// the cliff test for the PR 8 build tunables: grain dimensions registered
// through a Registry whose extreme values wedge the build (guard abort →
// StopAborted). The search must converge onto a finishable grain, and the
// name-keyed best must stay out of the censored region.
func TestCensoredGrainDimensionsAvoidExtremes(t *testing.T) {
	grain, bins := 4096, 32
	reg := NewRegistry()
	if err := reg.Register(Tunable{Name: "G", Target: &grain, Min: 256, Max: 65536, Scale: ScalePow2,
		Desc: "scatter grain"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Tunable{Name: "B", Target: &bins, Min: 8, Max: 128, Scale: ScalePow2,
		Desc: "SAH bins"}); err != nil {
		t.Fatal(err)
	}
	tn := New(Options{Seed: 17})
	if err := tn.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	aborted := 0
	for i := 0; i < 400; i++ {
		tn.Start()
		if grain >= 32768 {
			// An extreme grain serializes the build past the deadline:
			// every probe there is a guard abort, never a measurement.
			aborted++
			tn.StopAborted()
		} else {
			g := math.Log2(float64(grain))
			b := math.Log2(float64(bins))
			tn.StopWithCost((g-11)*(g-11) + (b-5)*(b-5) + 1)
		}
		if tn.Converged() {
			break
		}
	}
	if aborted == 0 {
		t.Skip("search never probed the extreme-grain region; censoring not exercised")
	}
	best, ok := tn.BestByName()
	if !ok {
		t.Fatalf("no best configuration after censored cycles")
	}
	if best["G"] >= 32768 {
		t.Fatalf("best grain %d sits inside the censored region", best["G"])
	}
	if _, ok := best["B"]; !ok {
		t.Fatalf("BestByName dropped the bins dimension: %v", best)
	}
}
