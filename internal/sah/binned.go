package sah

import (
	"math"
	"sync"

	"kdtune/internal/parallel"
	"kdtune/internal/vecmath"
)

// DefaultBins is the bin count per axis used by the binned split search.
// 32 bins is the common choice in the GPU/breadth-first builder literature
// (Danilewski et al.) and keeps the per-node footprint small.
const DefaultBins = 32

// BinSet accumulates primitive-extent histograms for one node, one set of
// three axes. It exists as a separate type so the nested and in-place
// builders can fill per-worker private BinSets in parallel and merge them —
// the parallel-histogram + prefix-scan structure of Choi et al.
type BinSet struct {
	Bins  int
	Node  vecmath.AABB
	start [3][]int // start[axis][bin]: primitives whose extent begins in bin
	end   [3][]int // end[axis][bin]:   primitives whose extent ends in bin
	count int      // primitives accumulated
}

// NewBinSet creates an empty histogram with the given resolution over node.
// bins < 2 falls back to DefaultBins.
func NewBinSet(node vecmath.AABB, bins int) *BinSet {
	bs := &BinSet{}
	bs.Reset(node, bins)
	return bs
}

// Reset reinitialises bs as an empty histogram over node, reusing the bin
// storage when the resolution fits. It is what makes the binned split search
// allocation-free in the steady state (see binSetPool).
func (bs *BinSet) Reset(node vecmath.AABB, bins int) {
	if bins < 2 {
		bins = DefaultBins
	}
	bs.Bins = bins
	bs.Node = node
	bs.count = 0
	for a := 0; a < 3; a++ {
		if cap(bs.start[a]) < bins {
			bs.start[a] = make([]int, bins)
			bs.end[a] = make([]int, bins)
			continue
		}
		bs.start[a] = bs.start[a][:bins]
		bs.end[a] = bs.end[a][:bins]
		clear(bs.start[a])
		clear(bs.end[a])
	}
}

// binSetPool recycles histograms across split searches: every node of a
// build (tens of thousands per frame) runs one, and the six bin slices are
// the dominant per-node allocation of the binned builders.
var binSetPool = sync.Pool{New: func() any { return new(BinSet) }}

func getBinSet(node vecmath.AABB, bins int) *BinSet {
	bs := binSetPool.Get().(*BinSet)
	bs.Reset(node, bins)
	return bs
}

// setsPool recycles the per-chunk pointer table of the parallel search. A
// pooled slice (rather than a fixed stack array) keeps the table off the
// heap even though it escapes into the ForChunks closure.
var setsPool = sync.Pool{New: func() any { return new([]*BinSet) }}

// binIndex maps a coordinate to its bin along axis, clamped into range.
func (bs *BinSet) binIndex(axis vecmath.Axis, pos float64) int {
	lo := bs.Node.Min.Axis(axis)
	ext := bs.Node.Max.Axis(axis) - lo
	if ext <= 0 {
		return 0
	}
	i := int(float64(bs.Bins) * (pos - lo) / ext)
	if i < 0 {
		return 0
	}
	if i >= bs.Bins {
		return bs.Bins - 1
	}
	return i
}

// Add accumulates one primitive's bounds (already clipped to the node; an
// empty box is ignored).
func (bs *BinSet) Add(b vecmath.AABB) {
	if b.IsEmpty() {
		return
	}
	for a := vecmath.AxisX; a <= vecmath.AxisZ; a++ {
		bs.start[a][bs.binIndex(a, b.Min.Axis(a))]++
		bs.end[a][bs.binIndex(a, b.Max.Axis(a))]++
	}
	bs.count++
}

// Merge folds other into bs. Both must have identical Node and Bins; this is
// the reduction step after per-worker histogramming.
func (bs *BinSet) Merge(other *BinSet) {
	if other.Bins != bs.Bins {
		panic("sah: merging BinSets with different resolutions")
	}
	for a := 0; a < 3; a++ {
		for i := 0; i < bs.Bins; i++ {
			bs.start[a][i] += other.start[a][i]
			bs.end[a][i] += other.end[a][i]
		}
	}
	bs.count += other.count
}

// Count returns the number of primitives accumulated.
func (bs *BinSet) Count() int { return bs.count }

// BestSplit scans the bin boundaries of all three axes (a prefix sum over
// the histograms) and returns the minimum-SAH split, or false if the node
// has no interior bin boundary (e.g. zero-extent node or no primitives).
func (bs *BinSet) BestSplit(p Params) (Split, bool) {
	best := Split{Cost: math.Inf(1)}
	found := false
	areaNode := bs.Node.SurfaceArea()
	if areaNode <= 0 || bs.count == 0 {
		return best, false
	}
	n := bs.count
	for a := vecmath.AxisX; a <= vecmath.AxisZ; a++ {
		lo := bs.Node.Min.Axis(a)
		ext := bs.Node.Max.Axis(a) - lo
		if ext <= 0 {
			continue
		}
		nl, nEnded := 0, 0
		// Boundary after bin i sits at lo + (i+1)/Bins * ext; the last
		// boundary coincides with the node face and is skipped.
		for i := 0; i < bs.Bins-1; i++ {
			nl += bs.start[a][i]
			nEnded += bs.end[a][i]
			nr := n - nEnded
			pos := lo + float64(i+1)/float64(bs.Bins)*ext
			if !splitCandidateValid(bs.Node, a, pos) {
				continue
			}
			l, r := bs.Node.Split(a, pos)
			cost := p.SplitCost(areaNode, l.SurfaceArea(), r.SurfaceArea(), nl, nr, n)
			if cost < best.Cost {
				best = Split{Axis: a, Pos: pos, Cost: cost, NL: nl, NR: nr}
				found = true
			}
		}
	}
	return best, found
}

// FindBestSplitBinned is the convenience single-threaded entry point: build
// one BinSet over prims and return its best split.
func FindBestSplitBinned(p Params, node vecmath.AABB, prims []vecmath.AABB, bins int) (Split, bool) {
	bs := NewBinSet(node, bins)
	for _, b := range prims {
		bs.Add(b)
	}
	return bs.BestSplit(p)
}

// DefaultBinGrain is the default minimum number of primitives binned per
// chunk; below it the fork-join overhead exceeds the histogramming work and
// the search runs inline on the caller. It is a registered tunable
// (kdtree.Config.BinGrain), not a constant of the algorithm: the break-even
// point depends on core count and memory system, exactly the class of
// hand-derived concurrency parameters Karcher & Guckes argue must be
// searched online.
const DefaultBinGrain = 2048

// FindBestSplitBinnedChunks is the parallel histogram + reduction form of
// the binned search (Choi et al.): per-chunk private BinSets are filled
// concurrently and merged in ascending chunk order. fill must call
// bs.Add for every primitive in [lo, hi) — the caller keeps the tight loop
// so primitive storage stays behind one indirection per chunk, not per
// item. grain is the minimum primitives histogrammed per chunk; grain <= 0
// selects DefaultBinGrain.
//
// The result is identical to the sequential search for every worker count
// and every grain — bin counts are integers, bin bounds come from min/max,
// and the merge order is fixed by the explicit chunk index — which is what
// lets the builders guarantee worker-count-independent trees even with the
// grain tuned per build.
func FindBestSplitBinnedChunks(p Params, node vecmath.AABB, n, bins, workers, grain int, fill func(bs *BinSet, lo, hi int)) (Split, bool) {
	return FindBestSplitBinnedChunksCancel(nil, p, node, n, bins, workers, grain, fill)
}

// FindBestSplitBinnedChunksCancel is FindBestSplitBinnedChunks with
// cooperative cancellation: chunks not yet histogrammed when cc is canceled
// are skipped and the partial histograms are discarded, so a guarded build's
// abort propagates through the split search at chunk granularity. A canceled
// search returns (Split{}, false); callers must check cc before trusting
// even that. A nil cc disables cancellation.
func FindBestSplitBinnedChunksCancel(cc *parallel.Canceler, p Params, node vecmath.AABB, n, bins, workers, grain int, fill func(bs *BinSet, lo, hi int)) (Split, bool) {
	if grain <= 0 {
		grain = DefaultBinGrain
	}
	nChunks := parallel.ChunkCount(n, workers, grain)
	if nChunks == 0 || cc.Canceled() { // n <= 0: no primitives, no candidate planes
		return Split{Cost: math.Inf(1)}, false
	}
	sp := setsPool.Get().(*[]*BinSet)
	sets := *sp
	if cap(sets) < nChunks {
		sets = make([]*BinSet, nChunks)
	} else {
		sets = sets[:nChunks]
		clear(sets)
	}
	parallel.ForChunksCancel(cc, n, workers, grain, func(chunk, lo, hi int) {
		bs := getBinSet(node, bins)
		fill(bs, lo, hi)
		sets[chunk] = bs
	})
	if cc.Canceled() {
		// Skipped chunks left nil holes; recycle what was filled and bail.
		for _, bs := range sets {
			if bs != nil {
				binSetPool.Put(bs)
			}
		}
		*sp = sets[:0]
		setsPool.Put(sp)
		return Split{Cost: math.Inf(1)}, false
	}
	total := sets[0]
	for _, bs := range sets[1:] {
		if bs != nil {
			total.Merge(bs)
			binSetPool.Put(bs)
		}
	}
	split, ok := total.BestSplit(p)
	binSetPool.Put(total)
	*sp = sets[:0]
	setsPool.Put(sp)
	return split, ok
}
