package sah

import (
	"math"
	"math/rand"
	"testing"

	"kdtune/internal/vecmath"
)

func v(x, y, z float64) vecmath.Vec3 { return vecmath.V(x, y, z) }

func box(x0, y0, z0, x1, y1, z1 float64) vecmath.AABB {
	return vecmath.NewAABB(v(x0, y0, z0), v(x1, y1, z1))
}

func TestSplitCostMatchesEquation1(t *testing.T) {
	p := Params{CT: 10, CI: 17, CB: 10}
	node := box(0, 0, 0, 2, 1, 1)
	l, r := node.Split(vecmath.AxisX, 1)
	an, al, ar := node.SurfaceArea(), l.SurfaceArea(), r.SurfaceArea()
	// 3 primitives, 2 left, 2 right => one duplicate.
	got := p.SplitCost(an, al, ar, 2, 2, 3)
	want := 10 + al/an*2*17 + ar/an*2*17 + 1*10
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SplitCost = %v, want %v", got, want)
	}
}

func TestLeafCostAndTermination(t *testing.T) {
	p := Params{CT: 10, CI: 5, CB: 0}
	if p.LeafCost(4) != 20 {
		t.Fatalf("LeafCost = %v", p.LeafCost(4))
	}
	if !p.ShouldTerminate(2, Split{Cost: 100}) {
		t.Fatal("cheap leaf should terminate")
	}
	if p.ShouldTerminate(100, Split{Cost: 100}) {
		t.Fatal("expensive leaf should split")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.CT != 10 || p.CI != 17 || p.CB != 10 {
		t.Fatalf("DefaultParams = %+v", p)
	}
}

// twoClusterPrims places two tight clusters of primitive boxes with a gap at
// x=5; the optimal split is obviously inside the gap.
func twoClusterPrims() (vecmath.AABB, []vecmath.AABB) {
	node := box(0, 0, 0, 10, 1, 1)
	var prims []vecmath.AABB
	for i := 0; i < 8; i++ {
		o := float64(i) * 0.1
		prims = append(prims, box(o, 0, 0, o+0.5, 1, 1))    // cluster near x=0
		prims = append(prims, box(9.5-o, 0, 0, 10-o, 1, 1)) // cluster near x=10
	}
	return node, prims
}

func TestSweepFindsGapSplit(t *testing.T) {
	node, prims := twoClusterPrims()
	p := DefaultParams()
	s, ok := FindBestSplitSweep(p, node, prims)
	if !ok {
		t.Fatal("no split found")
	}
	if s.Axis != vecmath.AxisX {
		t.Fatalf("split axis = %v, want X", s.Axis)
	}
	if s.Pos < 1.2 || s.Pos > 8.8 {
		t.Fatalf("split pos = %v, expected inside the gap", s.Pos)
	}
	if s.NL != 8 || s.NR != 8 {
		t.Fatalf("NL/NR = %d/%d, want 8/8", s.NL, s.NR)
	}
	if s.Cost >= p.LeafCost(len(prims)) {
		t.Fatalf("gap split (cost %v) should beat leaf cost %v", s.Cost, p.LeafCost(len(prims)))
	}
}

func TestBinnedFindsGapSplit(t *testing.T) {
	node, prims := twoClusterPrims()
	p := DefaultParams()
	s, ok := FindBestSplitBinned(p, node, prims, 32)
	if !ok {
		t.Fatal("no split found")
	}
	if s.Axis != vecmath.AxisX || s.Pos < 1.2 || s.Pos > 8.8 {
		t.Fatalf("binned split = %+v, expected X inside the gap", s)
	}
}

// bruteForceBestSplit enumerates every primitive-boundary candidate plane on
// every axis directly from the definition of equation (1).
func bruteForceBestSplit(p Params, node vecmath.AABB, prims []vecmath.AABB) (Split, bool) {
	best := Split{Cost: math.Inf(1)}
	found := false
	an := node.SurfaceArea()
	n := 0
	for _, b := range prims {
		if !b.IsEmpty() {
			n++
		}
	}
	for a := vecmath.AxisX; a <= vecmath.AxisZ; a++ {
		for _, b := range prims {
			if b.IsEmpty() {
				continue
			}
			for _, pos := range []float64{b.Min.Axis(a), b.Max.Axis(a)} {
				if pos <= node.Min.Axis(a) || pos >= node.Max.Axis(a) {
					continue
				}
				// Count left/right membership: a primitive overlaps the
				// left side if min < pos, right side if max > pos; planar
				// primitives (min==max==pos) go to the cheaper side.
				nl, nr, planar := 0, 0, 0
				for _, q := range prims {
					if q.IsEmpty() {
						continue
					}
					lo, hi := q.Min.Axis(a), q.Max.Axis(a)
					if lo == hi && lo == pos {
						planar++
						continue
					}
					if lo < pos {
						nl++
					}
					if hi > pos {
						nr++
					}
				}
				l, r := node.Split(a, pos)
				al, ar := l.SurfaceArea(), r.SurfaceArea()
				cL := p.SplitCost(an, al, ar, nl+planar, nr, n)
				cR := p.SplitCost(an, al, ar, nl, nr+planar, n)
				cost := math.Min(cL, cR)
				if cost < best.Cost {
					best = Split{Axis: a, Pos: pos, Cost: cost}
					found = true
				}
			}
		}
	}
	return best, found
}

func TestSweepMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	p := Params{CT: 10, CI: 17, CB: 10}
	for trial := 0; trial < 200; trial++ {
		node := box(0, 0, 0, 4+r.Float64()*6, 4+r.Float64()*6, 4+r.Float64()*6)
		n := 2 + r.Intn(20)
		prims := make([]vecmath.AABB, 0, n)
		for i := 0; i < n; i++ {
			c := v(r.Float64()*node.Max.X, r.Float64()*node.Max.Y, r.Float64()*node.Max.Z)
			d := v(r.Float64(), r.Float64(), r.Float64())
			b := vecmath.NewAABB(c.Sub(d), c.Add(d)).Intersect(node)
			if b.IsEmpty() {
				continue
			}
			prims = append(prims, b)
		}
		if len(prims) == 0 {
			continue
		}
		got, okG := FindBestSplitSweep(p, node, prims)
		want, okW := bruteForceBestSplit(p, node, prims)
		if okG != okW {
			t.Fatalf("trial %d: sweep found=%v brute found=%v", trial, okG, okW)
		}
		if !okG {
			continue
		}
		if math.Abs(got.Cost-want.Cost) > 1e-9*(1+math.Abs(want.Cost)) {
			t.Fatalf("trial %d: sweep cost %v != brute cost %v (sweep %+v, brute %+v)",
				trial, got.Cost, want.Cost, got, want)
		}
	}
}

func TestSweepEmptySpaceCutoff(t *testing.T) {
	// A single small primitive in a huge node: the SAH should cut away the
	// empty space (split near the primitive boundary) rather than keep one
	// big leaf, when CI is high enough.
	node := box(0, 0, 0, 100, 1, 1)
	prims := []vecmath.AABB{box(0, 0, 0, 1, 1, 1)}
	p := Params{CT: 1, CI: 100, CB: 0}
	s, ok := FindBestSplitSweep(p, node, prims)
	if !ok {
		t.Fatal("no split found")
	}
	if s.Axis != vecmath.AxisX || math.Abs(s.Pos-1) > 1e-12 {
		t.Fatalf("expected empty-space split at x=1, got %+v", s)
	}
	if s.NL != 1 || s.NR != 0 {
		t.Fatalf("NL/NR = %d/%d, want 1/0", s.NL, s.NR)
	}
	if p.ShouldTerminate(1, s) {
		t.Fatal("empty-space split should be profitable here")
	}
}

func TestSweepNoCandidates(t *testing.T) {
	p := DefaultParams()
	if _, ok := FindBestSplitSweep(p, box(0, 0, 0, 1, 1, 1), nil); ok {
		t.Fatal("split found with no primitives")
	}
	// All primitive bounds coincide with node faces: no interior candidate.
	node := box(0, 0, 0, 1, 1, 1)
	prims := []vecmath.AABB{node, node}
	if s, ok := FindBestSplitSweep(p, node, prims); ok {
		t.Fatalf("split found with face-only candidates: %+v", s)
	}
	// Empty boxes are ignored.
	if _, ok := FindBestSplitSweep(p, node, []vecmath.AABB{vecmath.EmptyAABB()}); ok {
		t.Fatal("split found with only empty boxes")
	}
}

func TestSweepCountsStraddlers(t *testing.T) {
	node := box(0, 0, 0, 2, 1, 1)
	prims := []vecmath.AABB{
		box(0, 0, 0, 0.8, 1, 1),
		box(0.5, 0, 0, 1.5, 1, 1), // straddles any plane between 0.8 and 1.2
		box(1.2, 0, 0, 2, 1, 1),
	}
	p := Params{CT: 10, CI: 17, CB: 0}
	s, ok := FindBestSplitSweep(p, node, prims)
	if !ok {
		t.Fatal("no split")
	}
	if s.NL+s.NR < len(prims) {
		t.Fatalf("NL+NR = %d < N = %d", s.NL+s.NR, len(prims))
	}
}

func TestHighCBAvoidsStraddlingSplits(t *testing.T) {
	// Three boxes overlapping any interior X plane plus a free plane on Y.
	node := box(0, 0, 0, 1, 1, 1)
	prims := []vecmath.AABB{
		box(0, 0.0, 0, 1, 0.3, 1),
		box(0, 0.35, 0, 1, 0.6, 1),
		box(0, 0.7, 0, 1, 1, 1),
	}
	p := Params{CT: 1, CI: 50, CB: 1000}
	s, ok := FindBestSplitSweep(p, node, prims)
	if !ok {
		t.Fatal("no split")
	}
	if s.Axis != vecmath.AxisY {
		t.Fatalf("expected duplication-free Y split, got %+v", s)
	}
	if s.NL+s.NR != len(prims) {
		t.Fatalf("expected no duplicates, NL+NR = %d", s.NL+s.NR)
	}
}

func TestBinSetMergeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	node := box(0, 0, 0, 10, 10, 10)
	prims := make([]vecmath.AABB, 500)
	for i := range prims {
		c := v(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		d := v(r.Float64(), r.Float64(), r.Float64())
		prims[i] = vecmath.NewAABB(c.Sub(d), c.Add(d)).Intersect(node)
	}
	p := DefaultParams()

	whole := NewBinSet(node, 32)
	for _, b := range prims {
		whole.Add(b)
	}

	partA, partB := NewBinSet(node, 32), NewBinSet(node, 32)
	for i, b := range prims {
		if i%2 == 0 {
			partA.Add(b)
		} else {
			partB.Add(b)
		}
	}
	partA.Merge(partB)

	if partA.Count() != whole.Count() {
		t.Fatalf("merged count %d != whole count %d", partA.Count(), whole.Count())
	}
	sWhole, okW := whole.BestSplit(p)
	sMerged, okM := partA.BestSplit(p)
	if okW != okM || sWhole != sMerged {
		t.Fatalf("merged best split %+v != whole %+v", sMerged, sWhole)
	}
}

func TestBinSetMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBinSet(box(0, 0, 0, 1, 1, 1), 16).Merge(NewBinSet(box(0, 0, 0, 1, 1, 1), 32))
}

func TestBinnedApproximatesSweep(t *testing.T) {
	// Binned cost at its chosen plane must be within a modest factor of the
	// sweep optimum on random scenes (binning only loses plane resolution).
	r := rand.New(rand.NewSource(32))
	p := DefaultParams()
	for trial := 0; trial < 50; trial++ {
		node := box(0, 0, 0, 10, 10, 10)
		n := 50 + r.Intn(200)
		prims := make([]vecmath.AABB, 0, n)
		for i := 0; i < n; i++ {
			c := v(r.Float64()*10, r.Float64()*10, r.Float64()*10)
			d := v(r.Float64()*0.5, r.Float64()*0.5, r.Float64()*0.5)
			b := vecmath.NewAABB(c.Sub(d), c.Add(d)).Intersect(node)
			if !b.IsEmpty() {
				prims = append(prims, b)
			}
		}
		sw, okS := FindBestSplitSweep(p, node, prims)
		bn, okB := FindBestSplitBinned(p, node, prims, 64)
		if !okS || !okB {
			continue
		}
		if bn.Cost < sw.Cost-1e-9 {
			t.Fatalf("trial %d: binned (%v) beat exact sweep (%v)?", trial, bn.Cost, sw.Cost)
		}
		if bn.Cost > sw.Cost*1.5+p.CT {
			t.Fatalf("trial %d: binned cost %v far above sweep %v", trial, bn.Cost, sw.Cost)
		}
	}
}

func TestBinnedDegenerateNode(t *testing.T) {
	p := DefaultParams()
	// Zero-extent node: no valid split, must not panic or divide by zero.
	flat := box(0, 0, 0, 0, 0, 0)
	if _, ok := FindBestSplitBinned(p, flat, []vecmath.AABB{flat}, 8); ok {
		t.Fatal("split found in zero-extent node")
	}
	// Planar node (zero extent on one axis only) still splits on others.
	plane := box(0, 0, 0, 1, 1, 0)
	prims := []vecmath.AABB{box(0, 0, 0, 0.2, 1, 0), box(0.8, 0, 0, 1, 1, 0)}
	if s, ok := FindBestSplitBinned(p, plane, prims, 8); ok && s.Axis == vecmath.AxisZ {
		t.Fatalf("split on zero-extent axis: %+v", s)
	}
}

func TestSweepWorkersEquivalence(t *testing.T) {
	// The parallel event sort must not change the chosen split.
	r := rand.New(rand.NewSource(33))
	node := box(0, 0, 0, 10, 10, 10)
	prims := make([]vecmath.AABB, 20000)
	for i := range prims {
		c := v(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		d := v(r.Float64()*0.3, r.Float64()*0.3, r.Float64()*0.3)
		prims[i] = vecmath.NewAABB(c.Sub(d), c.Add(d)).Intersect(node)
	}
	p := DefaultParams()
	seq, okS := FindBestSplitSweepWorkers(p, node, prims, 1)
	par, okP := FindBestSplitSweepWorkers(p, node, prims, 8)
	if okS != okP || seq != par {
		t.Fatalf("parallel sweep differs: %+v vs %+v", par, seq)
	}
}
