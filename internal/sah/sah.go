// Package sah implements the Surface Area Heuristic cost model of the paper
// (§III-B) and the two split-search strategies the four builders rely on:
//
//   - an event-sweep search in the style of Wald & Havran ("On building fast
//     kd-trees for ray tracing"), which enumerates every candidate plane
//     defined by (clipped) primitive bounds and is exact up to the cost
//     model, and
//   - a binned search in the style of the parallel builders (Choi et al.,
//     Danilewski et al.), which histograms primitive extents into a fixed
//     number of bins per axis and evaluates the SAH only at bin boundaries —
//     cheaper and embarrassingly parallel.
//
// The cost model is controlled by three parameters (Table I):
//
//	CT — cost of traversing an inner node (fixed to 10, §IV-A),
//	CI — cost of intersecting a triangle (tunable, τ_CI = [3, 101]),
//	CB — cost of duplicating a primitive  (tunable, τ_CB = [0, 60]).
//
// Equation (1):
//
//	SAH(h,b) = CT + P(l|b)·Nl·CI + P(r|b)·Nr·CI + (Nl+Nr−Nb)·CB
//
// Equation (2), the termination criterion: stop subdividing b when
// Nb·CI ≤ min_h SAH(h,b).
package sah

import (
	"math"
	"sync"

	"kdtune/internal/parallel"
	"kdtune/internal/vecmath"
)

// FixedCT is the traversal cost the paper pins to an arbitrary value of 10;
// CI and CB are only meaningful relative to it (§IV-A).
const FixedCT = 10.0

// Params bundles the SAH cost parameters.
type Params struct {
	CT float64 // node traversal cost
	CI float64 // triangle intersection cost
	CB float64 // primitive duplication cost
}

// DefaultParams returns the paper's base configuration for the cost model:
// CT=10 with the manually crafted C_base values CI=17, CB=10.
func DefaultParams() Params { return Params{CT: FixedCT, CI: 17, CB: 10} }

// LeafCost returns the cost of intersecting all n primitives of a leaf,
// Nb·CI (left-hand side of equation 2).
func (p Params) LeafCost(n int) float64 { return float64(n) * p.CI }

// SplitCost evaluates equation (1) for a node with surface area areaNode
// split into halves with surface areas areaL/areaR holding nl/nr primitives,
// nb primitives total before the split. areaNode must be positive.
func (p Params) SplitCost(areaNode, areaL, areaR float64, nl, nr, nb int) float64 {
	inv := 1 / areaNode
	return p.CT +
		areaL*inv*float64(nl)*p.CI +
		areaR*inv*float64(nr)*p.CI +
		float64(nl+nr-nb)*p.CB
}

// Split describes the best subdividing plane found for a node.
type Split struct {
	Axis vecmath.Axis // axis the plane is orthogonal to
	Pos  float64      // plane position along Axis
	Cost float64      // SAH(h,b) of this plane, equation (1)
	NL   int          // primitives overlapping the left half (incl. duplicates)
	NR   int          // primitives overlapping the right half (incl. duplicates)
}

// ShouldTerminate applies equation (2): subdivision stops when intersecting
// everything in place is no more expensive than the best split.
func (p Params) ShouldTerminate(n int, best Split) bool {
	return p.LeafCost(n) <= best.Cost
}

// splitCandidateValid rejects planes coincident with the node boundary:
// they cannot separate anything and would allow non-terminating recursion.
func splitCandidateValid(node vecmath.AABB, axis vecmath.Axis, pos float64) bool {
	return pos > node.Min.Axis(axis) && pos < node.Max.Axis(axis)
}

// eventKind orders coincident events so that the sweep sees ends before
// planars before starts at the same plane position.
type eventKind uint8

const (
	eventEnd eventKind = iota
	eventPlanar
	eventStart
)

// event is one endpoint of a primitive's (clipped) extent along an axis.
type event struct {
	pos  float64
	kind eventKind
}

// FindBestSplitSweep runs the event-sweep split search over all three axes.
// prims holds each primitive's bounds clipped to the node (empty boxes are
// ignored). It returns the minimum-cost split and false if no valid
// candidate plane exists.
func FindBestSplitSweep(p Params, node vecmath.AABB, prims []vecmath.AABB) (Split, bool) {
	return FindBestSplitSweepCancel(nil, p, node, prims, 1)
}

// FindBestSplitSweepWorkers is FindBestSplitSweep with a parallelism budget
// for the event sort — sorting dominates the sweep's cost, and the builders
// hand the budget down for the topmost (largest) nodes.
func FindBestSplitSweepWorkers(p Params, node vecmath.AABB, prims []vecmath.AABB, workers int) (Split, bool) {
	return FindBestSplitSweepCancel(nil, p, node, prims, workers)
}

// FindBestSplitSweepCancel is FindBestSplitSweepWorkers with cooperative
// cancellation threaded into the parallel event sort: the sort is the single
// longest uninterruptible stretch of a top-level node's split search, and
// without a cancellation point a guarded build's deadline could not fire
// until it finished. A canceled search returns (Split{}, false); callers
// must check cc before trusting even that. A nil cc disables cancellation.
func FindBestSplitSweepCancel(cc *parallel.Canceler, p Params, node vecmath.AABB, prims []vecmath.AABB, workers int) (Split, bool) {
	best := Split{Cost: math.Inf(1)}
	found := false
	areaNode := node.SurfaceArea()
	if areaNode <= 0 || len(prims) == 0 || cc.Canceled() {
		return best, false
	}

	bufPtr := getEventBuf(2 * len(prims))
	events := *bufPtr
	defer func() {
		*bufPtr = events // retain grown capacity for reuse
		putEventBuf(bufPtr)
	}()
	for axis := vecmath.AxisX; axis <= vecmath.AxisZ; axis++ {
		events = events[:0]
		n := 0
		for _, b := range prims {
			if b.IsEmpty() {
				continue
			}
			lo, hi := b.Min.Axis(axis), b.Max.Axis(axis)
			if lo == hi {
				events = append(events, event{lo, eventPlanar})
			} else {
				events = append(events, event{lo, eventStart}, event{hi, eventEnd})
			}
			n++
		}
		if n == 0 {
			continue
		}
		sortEvents(cc, events, workers)
		if cc.Canceled() {
			return Split{Cost: math.Inf(1)}, false
		}

		nl, nr := 0, n
		for i := 0; i < len(events); {
			pos := events[i].pos
			var pEnd, pPlanar, pStart int
			for i < len(events) && events[i].pos == pos && events[i].kind == eventEnd {
				pEnd++
				i++
			}
			for i < len(events) && events[i].pos == pos && events[i].kind == eventPlanar {
				pPlanar++
				i++
			}
			for i < len(events) && events[i].pos == pos && events[i].kind == eventStart {
				pStart++
				i++
			}

			// Primitives ending or lying exactly at pos leave the right set
			// before the plane at pos is evaluated.
			nr -= pEnd + pPlanar

			if splitCandidateValid(node, axis, pos) {
				l, r := node.Split(axis, pos)
				al, ar := l.SurfaceArea(), r.SurfaceArea()
				// Planar primitives can go to either side; evaluate both
				// placements and keep the cheaper one (Wald–Havran).
				cL := p.SplitCost(areaNode, al, ar, nl+pPlanar, nr, n)
				cR := p.SplitCost(areaNode, al, ar, nl, nr+pPlanar, n)
				cost, dl, dr := cL, pPlanar, 0
				if cR < cL {
					cost, dl, dr = cR, 0, pPlanar
				}
				if cost < best.Cost {
					best = Split{Axis: axis, Pos: pos, Cost: cost, NL: nl + dl, NR: nr + dr}
					found = true
				}
			}

			// Primitives starting or lying at pos belong to the left set for
			// all later planes.
			nl += pStart + pPlanar
		}
	}
	return best, found
}

// sortEvents orders events by (pos, kind) so the sweep sees ends before
// planars before starts at coincident positions.
func sortEvents(cc *parallel.Canceler, ev []event, workers int) {
	parallel.SortFuncCancel(cc, ev, workers, func(a, b event) int {
		switch {
		case a.pos < b.pos:
			return -1
		case a.pos > b.pos:
			return 1
		}
		return int(a.kind) - int(b.kind)
	})
}

// eventBufPool recycles per-node event buffers: the recursive builders call
// the sweep once per node, and the allocation otherwise dominates the
// garbage produced during construction.
var eventBufPool = sync.Pool{New: func() any { return &[]event{} }}

// getEventBuf returns an empty event slice with at least the given capacity.
func getEventBuf(capacity int) *[]event {
	buf := eventBufPool.Get().(*[]event)
	if cap(*buf) < capacity {
		*buf = make([]event, 0, capacity)
	}
	*buf = (*buf)[:0]
	return buf
}

func putEventBuf(buf *[]event) { eventBufPool.Put(buf) }
