package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"kdtune/internal/faultinject"
	"kdtune/internal/kdtree"
	"kdtune/internal/vecmath"
)

// treeCache maps geometry to built kD-trees. Keys are geometry hashes (plus
// the build algorithm), so two scenes with identical triangles share a tree
// and a scene whose animation moved shows up as a different key. Each entry
// carries a generation counter: Invalidate bumps it, demoting the current
// tree to the "stale" rung of the degradation ladder, and the next request
// triggers a rebuild.
//
// Ownership: a Tree borrows its Builder's storage (valid only until that
// Builder's next build), so every cached tree owns the Builder that produced
// it. Rebuilds always take a *different* Builder from the pool and swap
// pointers under the entry lock; the displaced tree's Builder returns to the
// pool only once its reference count drains (see CachedTree.Release). The
// stale tree is therefore untouched by construction — a request served from
// it reads exactly the bytes the original build wrote, which is what makes
// the "stale generation is bitwise-identical" guarantee structural rather
// than probabilistic.
type treeCache struct {
	pool *BuilderPool
	met  *Metrics

	mu      sync.Mutex
	entries map[string]*cacheEntry

	fillSeq atomic.Int64 // faultinject ordinal for SiteServeCache
}

type cacheEntry struct {
	mu    sync.Mutex
	gen   uint64
	cur   *CachedTree // tree for the current generation, nil until built
	stale *CachedTree // newest surviving tree of an older generation
	fill  *fillState  // in-flight full-quality build for the current generation
	fb    *fillState  // in-flight median-fallback build (ladder singleflight)
}

// fillState is the singleflight latch for one in-flight build: concurrent
// requests for the same key wait on done (or their own context) instead of
// building duplicate trees.
type fillState struct {
	gen  uint64
	done chan struct{}
	tree *CachedTree // set before done closes on success
	err  error       // set before done closes on failure
}

// TreeSource says which rung of the ladder produced a tree.
type TreeSource uint8

const (
	SourceHit      TreeSource = iota // current generation, already cached
	SourceBuilt                      // built by this request
	SourceJoined                     // built by a concurrent request we waited on
	SourceStale                      // previous generation served after an aborted build
	SourceFallback                   // median-algorithm fallback after an aborted build
)

func (s TreeSource) String() string {
	switch s {
	case SourceHit:
		return "hit"
	case SourceBuilt:
		return "built"
	case SourceJoined:
		return "joined"
	case SourceStale:
		return "stale"
	case SourceFallback:
		return "fallback"
	}
	return "source(?)"
}

// Degraded reports whether the source is a rung below a fresh current-
// generation tree.
func (s TreeSource) Degraded() bool { return s == SourceStale || s == SourceFallback }

// CachedTree is a built tree plus the Builder whose storage it borrows.
// Requests traverse the tree between acquire and Release; the Builder goes
// back to the pool only when the tree has been retired (displaced from the
// cache) and the last reference dropped — before that, reusing the Builder
// would overwrite the live tree in place.
type CachedTree struct {
	Tree     *kdtree.Tree
	Gen      uint64
	Algo     kdtree.Algorithm
	Fallback bool  // built by the median fallback rung
	BuildNS  int64 // wall time of the build that produced it

	pool    *BuilderPool
	builder *kdtree.Builder

	mu      sync.Mutex
	refs    int
	retired bool
}

func (t *CachedTree) acquire() *CachedTree {
	t.mu.Lock()
	t.refs++
	t.mu.Unlock()
	return t
}

// Release drops the caller's reference. The last release of a retired tree
// returns its Builder to the pool.
func (t *CachedTree) Release() {
	t.mu.Lock()
	t.refs--
	free := t.retired && t.refs == 0
	t.mu.Unlock()
	if free {
		t.pool.Put(t.builder)
	}
}

// retire marks the tree displaced from the cache; the Builder is reclaimed
// now if no request holds it, or by the last Release otherwise.
func (t *CachedTree) retire() {
	t.mu.Lock()
	t.retired = true
	free := t.refs == 0
	t.mu.Unlock()
	if free {
		t.pool.Put(t.builder)
	}
}

func newTreeCache(pool *BuilderPool, met *Metrics) *treeCache {
	return &treeCache{pool: pool, met: met, entries: make(map[string]*cacheEntry)}
}

// GeometryKey hashes the triangle soup (FNV-64a over the float64 bit
// patterns, in index order) and the build algorithm into a cache key. Two
// byte-identical geometries collide deliberately; any moved vertex changes
// the key.
func GeometryKey(tris []vecmath.Triangle, algo kdtree.Algorithm) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(f float64) {
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	for i := range tris {
		t := &tris[i]
		for _, v := range [3]vecmath.Vec3{t.A, t.B, t.C} {
			put(v.X)
			put(v.Y)
			put(v.Z)
		}
	}
	return fmt.Sprintf("g%016x-%s", h.Sum64(), algo)
}

func (c *treeCache) entry(key string) *cacheEntry {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	return e
}

// Invalidate bumps the generation of key: the current tree (if any) becomes
// the stale rung and the next request rebuilds. Returns the new generation.
func (c *treeCache) Invalidate(key string) uint64 {
	e := c.entry(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gen++
	if e.cur != nil {
		if e.stale != nil {
			e.stale.retire()
		}
		e.stale = e.cur
		e.cur = nil
	}
	return e.gen
}

// Generation reports the entry's current generation (0 if never seen).
func (c *treeCache) Generation(key string) uint64 {
	e := c.entry(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gen
}

// Get returns a referenced tree for key, walking the degradation ladder when
// the build cannot finish inside ctx: cached current generation → fresh
// build (joined with any concurrent identical build) → stale generation →
// median-fallback build on the same warm Builder → typed error. The caller
// must Release the returned tree. ctx only bounds this request's waiting and
// building; the returned tree may outlive it.
func (c *treeCache) Get(ctx context.Context, key string, tris []vecmath.Triangle, cfg kdtree.Config, base kdtree.Guard) (*CachedTree, TreeSource, error) {
	e := c.entry(key)

	for {
		e.mu.Lock()
		if e.cur != nil {
			t := e.cur.acquire()
			e.mu.Unlock()
			c.met.CacheHits.Add(1)
			return t, SourceHit, nil
		}
		if f := e.fill; f != nil {
			// Someone is building this generation; wait for them or for our
			// deadline, whichever first.
			e.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, 0, &Error{Status: 504, Code: "deadline", Msg: "deadline expired waiting for tree build"}
			}
			if f.err == nil {
				f.tree.mu.Lock()
				retired := f.tree.retired
				if !retired {
					f.tree.refs++
				}
				f.tree.mu.Unlock()
				if retired {
					continue // displaced between publish and acquire; retry
				}
				return f.tree, SourceJoined, nil
			}
			// The build we joined aborted: fall to the ladder below.
			return c.ladder(ctx, e, tris, cfg, base, nil)
		}
		// We are the builder for this generation.
		f := &fillState{gen: e.gen, done: make(chan struct{})}
		e.fill = f
		e.mu.Unlock()
		c.met.CacheMisses.Add(1)

		tree, err := c.fill(ctx, e, f, tris, cfg, base)
		if err == nil {
			return tree, SourceBuilt, nil
		}
		var warm *kdtree.Builder
		var ba *BuildAbortedError
		if asBuildAborted(err, &ba) {
			warm = ba.builder // aborted builds leave a drained, warm Builder
		}
		return c.ladder(ctx, e, tris, cfg, base, warm)
	}
}

// BuildAbortedError wraps kdtree.BuildAborted with the Builder it aborted
// on, so the ladder can retry the median fallback on the same warm scratch.
type BuildAbortedError struct {
	Aborted *kdtree.BuildAborted
	builder *kdtree.Builder
}

func (e *BuildAbortedError) Error() string { return e.Aborted.Error() }
func (e *BuildAbortedError) Unwrap() error { return e.Aborted }

func asBuildAborted(err error, out **BuildAbortedError) bool {
	ba, ok := err.(*BuildAbortedError)
	if ok {
		*out = ba
	}
	return ok
}

// fill runs the guarded build this request owns and publishes the outcome to
// every waiter. A panic anywhere inside (including an injected SiteServeCache
// panic) is published as a failure before re-raising, so waiters can never
// hang on an abandoned fill latch.
func (c *treeCache) fill(ctx context.Context, e *cacheEntry, f *fillState, tris []vecmath.Triangle, cfg kdtree.Config, base kdtree.Guard) (t *CachedTree, err error) {
	b := c.pool.Get()
	published := false
	publish := func(tree *CachedTree, ferr error) {
		f.tree, f.err = tree, ferr
		published = true
		e.mu.Lock()
		if e.fill == f {
			e.fill = nil
		}
		e.mu.Unlock()
		close(f.done)
	}
	defer func() {
		if !published {
			// Unwinding on a panic: release the latch (and the Builder — the
			// guarded build drains its arenas on any abort path) before the
			// panic continues to the handler's recover middleware.
			c.pool.Put(b)
			publish(nil, &Error{Status: 500, Code: "panic", Msg: "tree build panicked"})
		}
	}()

	if faultinject.Active() {
		faultinject.Check(faultinject.SiteServeCache, int(c.fillSeq.Add(1))-1)
	}

	start := time.Now()
	tree, berr := b.BuildGuarded(tris, cfg, kdtree.GuardFromContext(ctx, base))
	if berr != nil {
		c.met.BuildsAborted.Add(1)
		// Keep the Builder out of the pool: the ladder's median fallback
		// reuses this warm scratch (BuildAbortedError.builder).
		wrapped := &BuildAbortedError{Aborted: berr.(*kdtree.BuildAborted), builder: b}
		publish(nil, wrapped)
		return nil, wrapped
	}
	c.met.BuildsOK.Add(1)
	ct := &CachedTree{
		Tree: tree, Gen: f.gen, Algo: cfg.Algorithm,
		BuildNS: time.Since(start).Nanoseconds(),
		pool:    c.pool, builder: b,
		refs: 1, // the caller's reference
	}
	c.install(e, ct)
	publish(ct, nil)
	return ct, nil
}

// install places a freshly built tree into the entry. If the generation
// moved while the build ran (an Invalidate raced it), the tree is already
// stale: it takes the stale rung instead of the current one.
func (c *treeCache) install(e *cacheEntry, ct *CachedTree) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ct.Gen == e.gen {
		if e.cur != nil {
			e.cur.retire()
		}
		e.cur = ct
		// A successful current-generation build supersedes the stale rung.
		if e.stale != nil {
			e.stale.retire()
			e.stale = nil
		}
		return
	}
	if e.stale != nil {
		e.stale.retire()
	}
	e.stale = ct
}

// ladder is everything below a failed build: serve the stale generation if
// one survives, else rebuild with the median algorithm (cheap, bounded — the
// same fallback the bench watchdog uses) on the warm Builder the abort left
// behind, else surface a typed error. The fallback build is singleflighted
// through its own fillState latch (e.fb): when a joined fill fails, every
// waiter lands here at once, and without the latch each would run a
// redundant median build — a thundering herd of exactly the expensive work
// fault conditions can least afford. warm may be nil when the failed build
// was joined rather than owned.
func (c *treeCache) ladder(ctx context.Context, e *cacheEntry, tris []vecmath.Triangle, cfg kdtree.Config, base kdtree.Guard, warm *kdtree.Builder) (*CachedTree, TreeSource, error) {
	putWarm := func() {
		if warm != nil {
			c.pool.Put(warm)
			warm = nil
		}
	}
	for {
		e.mu.Lock()
		if e.cur != nil {
			// A concurrent waiter's fallback (or a racing full-quality build)
			// landed while we fell: serve it rather than rebuilding.
			t := e.cur.acquire()
			e.mu.Unlock()
			putWarm()
			if t.Fallback {
				c.met.DegradedFallback.Add(1)
				return t, SourceFallback, nil
			}
			c.met.CacheHits.Add(1)
			return t, SourceHit, nil
		}
		if e.stale != nil {
			t := e.stale.acquire()
			e.mu.Unlock()
			putWarm()
			c.met.DegradedStale.Add(1)
			return t, SourceStale, nil
		}
		if f := e.fb; f != nil && f.gen == e.gen {
			// Another waiter already owns the fallback build; join it.
			e.mu.Unlock()
			putWarm()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, 0, &Error{Status: 504, Code: "deadline", Msg: "deadline expired waiting for fallback build"}
			}
			if f.err != nil {
				return nil, 0, f.err
			}
			f.tree.mu.Lock()
			retired := f.tree.retired
			if !retired {
				f.tree.refs++
			}
			f.tree.mu.Unlock()
			if retired {
				continue // displaced between publish and acquire; retry
			}
			c.met.DegradedFallback.Add(1)
			return f.tree, SourceFallback, nil
		}
		if ctx.Err() != nil {
			e.mu.Unlock()
			putWarm()
			return nil, 0, &Error{Status: 504, Code: "deadline", Msg: "deadline expired before fallback build"}
		}
		// We own the fallback build for this generation.
		f := &fillState{gen: e.gen, done: make(chan struct{})}
		e.fb = f
		e.mu.Unlock()
		return c.fallbackFill(ctx, e, f, tris, cfg, base, warm)
	}
}

// fallbackFill runs the median-algorithm rebuild this request owns and
// publishes the outcome to every ladder waiter joined on e.fb. Like fill, a
// panic releases the latch before unwinding so joiners can never hang.
func (c *treeCache) fallbackFill(ctx context.Context, e *cacheEntry, f *fillState, tris []vecmath.Triangle, cfg kdtree.Config, base kdtree.Guard, warm *kdtree.Builder) (t *CachedTree, src TreeSource, err error) {
	b := warm
	if b == nil {
		b = c.pool.Get()
	}
	published := false
	publish := func(tree *CachedTree, ferr error) {
		f.tree, f.err = tree, ferr
		published = true
		e.mu.Lock()
		if e.fb == f {
			e.fb = nil
		}
		e.mu.Unlock()
		close(f.done)
	}
	defer func() {
		if !published {
			c.pool.Put(b)
			publish(nil, &Error{Status: 500, Code: "panic", Msg: "fallback build panicked"})
		}
	}()

	mcfg := cfg
	mcfg.Algorithm = kdtree.AlgoMedian
	start := time.Now()
	tree, berr := b.BuildGuarded(tris, mcfg, kdtree.GuardFromContext(ctx, base))
	if berr != nil {
		c.met.BuildsAborted.Add(1)
		c.pool.Put(b)
		aborted := &Error{Status: 503, Code: "build-aborted",
			Msg: fmt.Sprintf("build and median fallback both aborted: %v", berr)}
		publish(nil, aborted)
		return nil, 0, aborted
	}
	c.met.BuildsOK.Add(1)
	c.met.DegradedFallback.Add(1)
	ct := &CachedTree{
		Tree: tree, Gen: f.gen, Algo: kdtree.AlgoMedian, Fallback: true,
		BuildNS: time.Since(start).Nanoseconds(),
		pool:    c.pool, builder: b,
		refs: 1,
	}
	// The fallback tree is real and current-generation; cache it so the next
	// request hits instead of re-running the ladder. Cache ownership is the
	// un-retired state, not a reference count — a later successful
	// full-quality build (after faults clear) displaces it via install/retire.
	e.mu.Lock()
	installed := ct.Gen == e.gen && e.cur == nil
	if installed {
		e.cur = ct
	}
	e.mu.Unlock()
	publish(ct, nil)
	if !installed {
		// Lost the install race (generation moved, or a racing build landed
		// first): retire now so the caller's Release returns the warm Builder
		// to the pool instead of leaking it to the garbage collector.
		ct.retire()
	}
	return ct, SourceFallback, nil
}
