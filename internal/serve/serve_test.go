package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kdtune/internal/faultinject"
	"kdtune/internal/kdtree"
	"kdtune/internal/render"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// testScene builds a deterministic random triangle soup, big enough that
// builds pass through many node probes (so build faults bite) and small
// enough that the suite stays fast.
func testScene(name string, n int) *scene.Scene {
	rng := rand.New(rand.NewSource(7))
	tris := make([]vecmath.Triangle, n)
	for i := range tris {
		c := vecmath.V(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		tris[i] = vecmath.Tri(
			c,
			c.Add(vecmath.V(rng.Float64()*0.4, rng.Float64()*0.4, 0)),
			c.Add(vecmath.V(0, rng.Float64()*0.4, rng.Float64()*0.4)),
		)
	}
	return scene.NewStatic(name, tris,
		scene.View{Eye: vecmath.V(5, 5, 30), LookAt: vecmath.V(5, 5, 5), Up: vecmath.V(0, 1, 0), FOV: 45},
		[]vecmath.Vec3{vecmath.V(20, 30, 25)})
}

// testServer wires a Server over one small scene with generous deadlines.
func testServer(t *testing.T, sc *scene.Scene, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Scenes:          []*scene.Scene{sc},
		DefaultDeadline: 10 * time.Second,
		Slots:           2,
		MaxQueue:        4,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// get issues a request with optional tenant/deadline headers and decodes the
// JSON body into out (which may be nil).
func get(t *testing.T, url, tenant string, deadlineMS int, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	if deadlineMS > 0 {
		req.Header.Set("X-Deadline-Ms", fmt.Sprint(deadlineMS))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// TestStaleGenerationBitwiseIdentical is the central ladder drill: a frame
// served from the stale generation after an aborted rebuild must be
// bitwise-identical to the offline render of the originally built tree —
// the structural guarantee that stale trees are never touched by later
// builds (the cache swaps Builders instead of reusing them).
func TestStaleGenerationBitwiseIdentical(t *testing.T) {
	sc := testScene("stale-test", 4000)
	s, ts := testServer(t, sc, nil)

	renderURL := ts.URL + "/render?scene=stale-test&width=96&height=72"

	// 1. Clean build + render; record the served checksum.
	var first RenderResponse
	if code := get(t, renderURL, "t", 0, &first); code != 200 {
		t.Fatalf("initial render status %d", code)
	}
	if first.Source != "built" || first.Generation != 0 {
		t.Fatalf("initial render source=%s gen=%d", first.Source, first.Generation)
	}

	// 2. Offline reference: BuildGuarded + RenderInto with the server's
	// exact configuration must produce the same checksum.
	cfg := kdtree.BaseConfig(kdtree.AlgoInPlace)
	tree, err := kdtree.NewBuilder().BuildGuarded(sc.Triangles(0), cfg, kdtree.Guard{}) //kdlint:noctx offline reference build is intentionally unguarded; checksum parity is under test
	if err != nil {
		t.Fatalf("offline build: %v", err)
	}
	im := render.NewImage(96, 72)
	render.RenderInto(im, tree, sc.ViewAt(0), sc.Lights, render.Options{Width: 96, Height: 72}) //kdlint:noctx offline reference render in a test binary; nothing to cancel
	offline := fmt.Sprintf("%016x", FrameChecksum(im))
	if first.Checksum != offline {
		t.Fatalf("served frame %s != offline frame %s", first.Checksum, offline)
	}

	// 3. Invalidate, then make every rebuild abort.
	if code := get(t, ts.URL+"/invalidate?scene=stale-test", "t", 0, nil); code != 200 {
		t.Fatal("invalidate failed")
	}
	in := faultinject.Activate(faultinject.Fault{
		Site: faultinject.SiteBuildNode, Index: -1, Kind: faultinject.KindPanic,
	})

	var stale RenderResponse
	code := get(t, renderURL, "t", 0, &stale)
	in.Deactivate()
	if code != 200 {
		t.Fatalf("stale render status %d", code)
	}
	if stale.Source != "stale" || stale.Degraded != "stale" || stale.Generation != 0 {
		t.Fatalf("stale render source=%s degraded=%s gen=%d", stale.Source, stale.Degraded, stale.Generation)
	}
	if stale.Checksum != offline {
		t.Fatalf("stale frame %s != original frame %s — stale generation was not served bitwise-identically", stale.Checksum, offline)
	}
	if s.met.DegradedStale.Load() == 0 || s.met.BuildsAborted.Load() == 0 {
		t.Fatalf("metrics: stale=%d aborted=%d, want both nonzero",
			s.met.DegradedStale.Load(), s.met.BuildsAborted.Load())
	}

	// 4. Faults cleared: the rebuild succeeds at the new generation and the
	// (static) geometry renders to the same frame again.
	var rebuilt RenderResponse
	if code := get(t, renderURL, "t", 0, &rebuilt); code != 200 {
		t.Fatalf("rebuild render status %d", code)
	}
	if rebuilt.Source != "built" || rebuilt.Generation != 1 {
		t.Fatalf("rebuild source=%s gen=%d", rebuilt.Source, rebuilt.Generation)
	}
	if rebuilt.Checksum != offline {
		t.Fatalf("rebuilt frame %s != offline frame %s", rebuilt.Checksum, offline)
	}
}

// TestMedianFallbackRung: with no stale generation to fall back on, an
// aborted build retries with the median algorithm on the same warm Builder
// and serves that, marked degraded.
func TestMedianFallbackRung(t *testing.T) {
	sc := testScene("fallback-test", 4000)
	s, ts := testServer(t, sc, nil)

	// Count=1: the first build-node probe panics (aborting the in-place
	// build), the median retry runs fault-free.
	in := faultinject.Activate(faultinject.Fault{
		Site: faultinject.SiteBuildNode, Index: -1, Kind: faultinject.KindPanic, Count: 1,
	})
	defer in.Deactivate()

	var br BuildResponse
	if code := get(t, ts.URL+"/build?scene=fallback-test", "t", 0, &br); code != 200 {
		t.Fatalf("build status %d", code)
	}
	if br.Source != "fallback" || br.Degraded != "fallback" || br.Algo != "median" {
		t.Fatalf("fallback build source=%s degraded=%s algo=%s", br.Source, br.Degraded, br.Algo)
	}
	if s.met.DegradedFallback.Load() != 1 {
		t.Fatalf("DegradedFallback = %d, want 1", s.met.DegradedFallback.Load())
	}

	// The fallback tree is cached: the next request is a plain hit.
	var hit BuildResponse
	if code := get(t, ts.URL+"/build?scene=fallback-test", "t", 0, &hit); code != 200 {
		t.Fatalf("hit status %d", code)
	}
	if hit.Source != "hit" || hit.Algo != "median" {
		t.Fatalf("post-fallback source=%s algo=%s", hit.Source, hit.Algo)
	}

	// After invalidation (faults exhausted) the full-quality build displaces it.
	get(t, ts.URL+"/invalidate?scene=fallback-test", "t", 0, nil)
	var full BuildResponse
	if code := get(t, ts.URL+"/build?scene=fallback-test", "t", 0, &full); code != 200 {
		t.Fatalf("rebuild status %d", code)
	}
	if full.Source != "built" || full.Algo != "in-place" || full.Generation != 1 {
		t.Fatalf("rebuild source=%s algo=%s gen=%d", full.Source, full.Algo, full.Generation)
	}
}

// TestLowresRung: a seeded cost estimate that cannot fit the deadline makes
// the server shrink the frame instead of starting a render it must abandon.
func TestLowresRung(t *testing.T) {
	sc := testScene("lowres-test", 2000)
	s, ts := testServer(t, sc, func(c *Config) { c.DefaultDeadline = 2 * time.Second })

	// Seed the estimator white-box: 1ms/pixel says a 160×120 frame "costs"
	// 19.2s against a ~1.6s budget; two halvings (40×30 → 1.2s) fit.
	key := GeometryKey(sc.Triangles(0), kdtree.AlgoInPlace)
	s.est.seed(key+"/p1", 1e6)

	var rr RenderResponse
	if code := get(t, ts.URL+"/render?scene=lowres-test&width=160&height=120", "t", 0, &rr); code != 200 {
		t.Fatalf("render status %d", code)
	}
	if !rr.Lowres || rr.Degraded != "lowres" {
		t.Fatalf("lowres=%v degraded=%q, want reduced-resolution degradation", rr.Lowres, rr.Degraded)
	}
	if rr.Width != 40 || rr.Height != 30 {
		t.Fatalf("served %dx%d, want 40x30 after two halvings", rr.Width, rr.Height)
	}
	if s.met.DegradedLowres.Load() != 1 {
		t.Fatalf("DegradedLowres = %d, want 1", s.met.DegradedLowres.Load())
	}
}

// TestTinyDeadlineTypedError: a deadline the build cannot possibly meet must
// produce a prompt typed error (504 deadline or 503 build-aborted), never a
// hang and never a 200.
func TestTinyDeadlineTypedError(t *testing.T) {
	sc := testScene("deadline-test", 20000)
	s, ts := testServer(t, sc, nil)

	start := time.Now()
	var e Error
	code := get(t, ts.URL+"/build?scene=deadline-test", "t", 1, &e)
	elapsed := time.Since(start)
	if code != 504 && code != 503 {
		t.Fatalf("status %d (code %q), want 504 or 503", code, e.Code)
	}
	if e.Code != "deadline" && e.Code != "build-aborted" {
		t.Fatalf("error code %q", e.Code)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("typed error took %v — deadline did not propagate", elapsed)
	}
	if s.met.Timeouts.Load()+s.met.Errors.Load() == 0 {
		t.Fatal("no timeout/error counted")
	}

	// The same scene with a sane deadline still works: the aborted build
	// left the Builder and cache reusable.
	var br BuildResponse
	if code := get(t, ts.URL+"/build?scene=deadline-test", "t", 0, &br); code != 200 {
		t.Fatalf("follow-up build status %d", code)
	}
	if br.Source != "built" && br.Source != "fallback" {
		t.Fatalf("follow-up source %s", br.Source)
	}
}

// TestQueueShed429: when a tenant's pending count exceeds the bound, the
// server sheds with 429 and a Retry-After hint instead of queueing without
// limit.
func TestQueueShed429(t *testing.T) {
	sc := testScene("shed-test", 2000)
	s, ts := testServer(t, sc, func(c *Config) { c.Slots = 1; c.MaxQueue = 1 })

	// Warm the cache so the slow request below is render-bound.
	if code := get(t, ts.URL+"/build?scene=shed-test", "t", 0, nil); code != 200 {
		t.Fatal("warm build failed")
	}

	// A render stalled by per-row delays occupies the single slot.
	in := faultinject.Activate(faultinject.Fault{
		Site: faultinject.SiteRenderTile, Index: -1, Kind: faultinject.KindDelay, Delay: 20 * time.Millisecond,
	})
	defer in.Deactivate()
	done := make(chan int)
	go func() {
		done <- get(t, ts.URL+"/render?scene=shed-test&width=64&height=48", "t", 0, nil) //kdlint:noctx test goroutine hands its status to the receive at the end of the test
	}()
	// Wait until the slow request is admitted (pending=1).
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.tenant("t").pending.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never became pending")
		}
		time.Sleep(time.Millisecond) //kdlint:noctx bounded poll: the deadline check above fails the test after 5s
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/render?scene=shed-test", nil)
	req.Header.Set("X-Tenant", "t")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("Retry-After-Ms") == "" {
		t.Fatal("429 missing Retry-After headers")
	}
	io.Copy(io.Discard, resp.Body)
	if s.met.Shed429.Load() != 1 {
		t.Fatalf("Shed429 = %d, want 1", s.met.Shed429.Load())
	}
	if code := <-done; code != 200 { //kdlint:noctx joins the slow-request goroutine launched above
		t.Fatalf("slow request finished with %d", code)
	}
}

// TestBreakerTripsAndRecoversE2E drives the per-tenant breaker through its
// full cycle with a fixed fault plan and sequential requests — the
// deterministic trip/half-open/close drill.
func TestBreakerTripsAndRecoversE2E(t *testing.T) {
	sc := testScene("breaker-test", 2000)
	s, ts := testServer(t, sc, func(c *Config) { c.BreakerTrip = 2; c.BreakerCooldown = 2 })

	// Warm the tree so renders are the only faulted work.
	if code := get(t, ts.URL+"/build?scene=breaker-test", "b", 0, nil); code != 200 {
		t.Fatal("warm build failed")
	}
	url := ts.URL + "/render?scene=breaker-test&width=64&height=48"

	// Every render panics while the plan is active.
	in := faultinject.Activate(faultinject.Fault{
		Site: faultinject.SiteRenderTile, Index: -1, Kind: faultinject.KindPanic,
	})
	want := func(step string, wantCode int, state BreakerState) {
		t.Helper()
		var e Error
		code := get(t, url, "b", 0, &e)
		if code != wantCode {
			t.Fatalf("%s: status %d (code %q), want %d", step, code, e.Code, wantCode)
		}
		if got := s.adm.tenant("b").breaker.State(); got != state {
			t.Fatalf("%s: breaker %v, want %v", step, got, state)
		}
	}

	want("failure 1", 500, BreakerClosed)
	want("failure 2 (trips)", 500, BreakerOpen)
	want("shed 1", 503, BreakerOpen)
	want("probe (fails)", 500, BreakerOpen) // cooldown reached → probe admitted, panics, re-opens
	in.Deactivate()
	want("shed 2", 503, BreakerOpen)
	want("probe (succeeds)", 200, BreakerClosed)
	want("healthy again", 200, BreakerClosed)

	if s.met.ShedBreaker.Load() != 2 {
		t.Fatalf("ShedBreaker = %d, want 2", s.met.ShedBreaker.Load())
	}
	if s.met.Panics.Load() != 3 {
		t.Fatalf("Panics = %d, want 3", s.met.Panics.Load())
	}
}

// TestClientErrorsDoNotTripBreaker pins the breaker's failure definition:
// 4xx responses are the requester's fault, not a service failure, so a burst
// of malformed requests far past the trip threshold must leave the breaker
// closed and valid requests unharmed.
func TestClientErrorsDoNotTripBreaker(t *testing.T) {
	sc := testScene("fourxx-test", 1500)
	s, ts := testServer(t, sc, func(c *Config) { c.BreakerTrip = 2; c.BreakerCooldown = 2 })

	if code := get(t, ts.URL+"/build?scene=fourxx-test", "c", 0, nil); code != 200 {
		t.Fatalf("warm build status %d", code)
	}
	for i := 0; i < 6; i++ {
		if code := get(t, ts.URL+"/build?scene=no-such-scene", "c", 0, nil); code != 404 {
			t.Fatalf("bad request #%d status %d, want 404", i, code)
		}
	}
	if st := s.adm.tenant("c").breaker.State(); st != BreakerClosed {
		t.Fatalf("breaker %v after client-error burst, want closed", st)
	}
	if code := get(t, ts.URL+"/build?scene=fourxx-test", "c", 0, nil); code != 200 {
		t.Fatalf("valid request after 4xx burst: status %d, want 200", code)
	}
	if got := s.met.ShedBreaker.Load(); got != 0 {
		t.Fatalf("ShedBreaker = %d, want 0", got)
	}
}

// TestQueryEndpoints smoke-tests /range and /nn through the cache, plus the
// /metrics and /log observability surfaces.
func TestQueryEndpoints(t *testing.T) {
	sc := testScene("query-test", 2000)
	s, ts := testServer(t, sc, nil)

	var rr RangeResponse
	if code := get(t, ts.URL+"/range?scene=query-test&minx=2&miny=2&minz=2&maxx=8&maxy=8&maxz=8&limit=10", "t", 0, &rr); code != 200 {
		t.Fatalf("range status %d", code)
	}
	if rr.Count == 0 || len(rr.Indices) > 10 {
		t.Fatalf("range count=%d len=%d", rr.Count, len(rr.Indices))
	}

	var nn NNResponse
	if code := get(t, ts.URL+"/nn?scene=query-test&x=5&y=5&z=5", "t", 0, &nn); code != 200 {
		t.Fatalf("nn status %d", code)
	}
	if !nn.Found || nn.Distance < 0 {
		t.Fatalf("nn found=%v dist=%g", nn.Found, nn.Distance)
	}

	var snap Snapshot
	if code := get(t, ts.URL+"/metrics", "", 0, &snap); code != 200 {
		t.Fatal("metrics failed")
	}
	if snap.Requests < 2 || snap.CacheHits+snap.CacheMisses == 0 {
		t.Fatalf("snapshot requests=%d cache=%d/%d", snap.Requests, snap.CacheHits, snap.CacheMisses)
	}
	if snap.Tenants["t"].N == 0 {
		t.Fatal("tenant latency window empty")
	}

	var logs []LogRecord
	if code := get(t, ts.URL+"/log?n=10", "", 0, &logs); code != 200 {
		t.Fatal("log failed")
	}
	if len(logs) == 0 {
		t.Fatal("ring log empty after requests")
	}
	_ = s
}
