package serve

import (
	"context"
	"testing"
	"time"

	"kdtune/internal/kdtree"
)

// TestLadderFallbackSingleflight pins that concurrent requests falling to
// the median rung join one in-flight fallback build through the e.fb latch
// instead of each running their own — the thundering-herd guard for fault
// conditions where every waiter of a failed fill lands on the ladder at once.
func TestLadderFallbackSingleflight(t *testing.T) {
	sc := testScene("ladder-sf", 1500)
	tris := sc.Triangles(0)
	pool := NewBuilderPool(2)
	c := newTreeCache(pool, NewMetrics())
	e := c.entry("k")
	cfg := kdtree.BaseConfig(kdtree.AlgoInPlace)

	// Hold the fallback latch as if another waiter owned the build.
	f := &fillState{gen: 0, done: make(chan struct{})}
	e.mu.Lock()
	e.fb = f
	e.mu.Unlock()

	type out struct {
		tree *CachedTree
		src  TreeSource
		err  error
	}
	const waiters = 4
	results := make(chan out, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			tr, src, err := c.ladder(context.Background(), e, tris, cfg, kdtree.Guard{}, nil)
			results <- out{tr, src, err} //kdlint:noctx test goroutine reports into a results channel buffered to the waiter count
		}()
	}

	// While the latch is held, joiners must wait — not build their own trees.
	time.Sleep(50 * time.Millisecond) //kdlint:noctx deliberate settle: the test binary owns the clock, no request deadline applies
	if got := c.met.BuildsOK.Load() + c.met.BuildsAborted.Load(); got != 0 {
		t.Fatalf("joiners ran %d builds while the fallback latch was held, want 0", got)
	}

	// Publish an owner-built fallback tree, as fallbackFill does.
	mcfg := cfg
	mcfg.Algorithm = kdtree.AlgoMedian
	b := pool.Get()
	tree, err := b.BuildGuarded(tris, mcfg, kdtree.Guard{}) //kdlint:noctx reference build is intentionally unguarded; latch semantics, not deadlines, are under test
	if err != nil {
		t.Fatalf("owner build: %v", err)
	}
	ct := &CachedTree{Tree: tree, Gen: 0, Algo: kdtree.AlgoMedian, Fallback: true,
		pool: pool, builder: b, refs: 0}
	e.mu.Lock()
	e.cur = ct
	e.mu.Unlock()
	f.tree = ct
	e.mu.Lock()
	e.fb = nil
	e.mu.Unlock()
	close(f.done)

	for i := 0; i < waiters; i++ {
		r := <-results //kdlint:noctx joins the waiter goroutines above; every one sends exactly once
		if r.err != nil {
			t.Fatalf("waiter %d: %v", i, r.err)
		}
		if r.src != SourceFallback {
			t.Fatalf("waiter %d source = %v, want fallback", i, r.src)
		}
		if r.tree != ct {
			t.Fatalf("waiter %d got a different tree than the published fallback", i)
		}
		r.tree.Release()
	}
	if got := c.met.BuildsOK.Load() + c.met.BuildsAborted.Load(); got != 0 {
		t.Fatalf("joiners ran %d redundant builds, want 0", got)
	}
	if got := c.met.DegradedFallback.Load(); got != waiters {
		t.Fatalf("DegradedFallback = %d, want %d (one per served waiter)", got, waiters)
	}
}

// TestFallbackLostInstallRaceRetires pins that a median-fallback tree which
// loses the install race (the generation moved while it built) is retired,
// so the caller's Release returns its Builder to the pool instead of leaking
// the warm scratch to the garbage collector.
func TestFallbackLostInstallRaceRetires(t *testing.T) {
	sc := testScene("ladder-race", 1500)
	tris := sc.Triangles(0)
	pool := NewBuilderPool(1)
	c := newTreeCache(pool, NewMetrics())
	e := c.entry("k")
	cfg := kdtree.BaseConfig(kdtree.AlgoInPlace)

	// The generation moves (an Invalidate) after the fallback claimed its
	// latch at gen 0 but before it installs.
	c.Invalidate("k")

	f := &fillState{gen: 0, done: make(chan struct{})}
	e.mu.Lock()
	e.fb = f
	e.mu.Unlock()

	ct, src, err := c.fallbackFill(context.Background(), e, f, tris, cfg, kdtree.Guard{}, nil)
	if err != nil {
		t.Fatalf("fallbackFill: %v", err)
	}
	if src != SourceFallback {
		t.Fatalf("source = %v, want fallback", src)
	}

	// The tree still serves this request, but it must not occupy the cache…
	e.mu.Lock()
	cur := e.cur
	e.mu.Unlock()
	if cur == ct {
		t.Fatal("stale-generation fallback installed as current")
	}

	// …and the last Release must return the Builder to the pool.
	ct.Release()
	if got := pool.Size(); got != 1 {
		t.Fatalf("pool size after Release = %d, want 1 (race-losing fallback must retire its Builder)", got)
	}
}
