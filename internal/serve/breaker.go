package serve

import "sync"

// BreakerState is the circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed admits everything; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen sheds everything until the cooldown budget of rejected
	// requests is spent, then transitions to half-open.
	BreakerOpen
	// BreakerHalfOpen has released exactly one probe request and sheds the
	// rest until the probe reports back.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "breaker(?)"
}

// Breaker is a per-tenant circuit breaker. It is deliberately count-based —
// the open state cools down by shedding a fixed number of requests rather
// than by waiting wall-clock time — so its whole state machine is a pure
// function of the request/outcome sequence. Under a fixed fault plan the trip,
// half-open and close transitions land on exactly the same request ordinals
// every run, which is what lets the drill tests assert the ladder
// deterministically.
type Breaker struct {
	trip     int // consecutive failures that open the breaker
	cooldown int // rejected requests while open before a probe is released

	mu       sync.Mutex
	state    BreakerState
	failures int  // consecutive failures while closed
	rejects  int  // requests shed while open
	probing  bool // a half-open probe is in flight
}

// NewBreaker returns a closed breaker that opens after trip consecutive
// failures and releases a probe after cooldown sheds. Non-positive arguments
// select 5 and 10.
func NewBreaker(trip, cooldown int) *Breaker {
	if trip <= 0 {
		trip = 5
	}
	if cooldown <= 0 {
		cooldown = 10
	}
	return &Breaker{trip: trip, cooldown: cooldown}
}

// Allow decides whether a request may proceed. probe marks the single
// half-open canary; its outcome (via Record) decides whether the breaker
// closes again or re-opens. A shed request must NOT call Record; a probe
// that is shed downstream without executing must call CancelProbe.
func (b *Breaker) Allow() (admit, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		b.rejects++
		if b.rejects >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true, true
		}
		return false, false
	default: // BreakerHalfOpen: the probe is out; shed everyone else.
		return false, false
	}
}

// CancelProbe returns a half-open breaker to open when its probe was shed
// after Allow but before executing (queue-full or deadline expiry inside
// admission). Without it the probing flag would never clear — half-open
// sheds every other request, so the tenant would be 503'd forever, and
// precisely under the saturation that sheds probes in the first place.
// Resetting rejects restarts the cooldown so a later request re-probes at a
// deterministic ordinal.
func (b *Breaker) CancelProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probing {
		b.probing = false
		b.state = BreakerOpen
		b.rejects = 0
	}
}

// Record reports the outcome of an admitted request. Degraded-but-served
// responses count as success — the breaker protects against aborts and
// panics, not against the ladder doing its job.
func (b *Breaker) Record(success, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if success {
			b.state = BreakerClosed
			b.failures = 0
			b.rejects = 0
		} else {
			b.state = BreakerOpen
			b.rejects = 0
		}
		return
	}
	if b.state != BreakerClosed {
		// A non-probe admitted before the trip whose outcome arrives after
		// it: ignore — the probe alone decides the half-open verdict.
		return
	}
	if success {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= b.trip {
		b.state = BreakerOpen
		b.rejects = 0
	}
}

// State returns the current position (for /metrics and tests).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
