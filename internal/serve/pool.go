package serve

import (
	"sync"
	"sync/atomic"

	"kdtune/internal/kdtree"
)

// BuilderPool is a sharded free list of warm kdtree.Builders. A Builder's
// value is its retained scratch (arenas, worker pool, SoA backing): the
// steady state of a serving process should rebuild trees allocation-free,
// exactly like the paper's frame loop. Sharding by a cheap counter keeps the
// lock from serialising concurrent cache fills.
//
// The cache's ownership discipline (see treeCache) is what makes pooling
// safe: a Tree borrows its Builder's storage, so a Builder is returned to
// the pool only when no cached Tree references it any more — or immediately
// after an aborted build, whose contract guarantees drained, reusable
// arenas.
type BuilderPool struct {
	shards []poolShard
	next   atomic.Uint32 // round-robin shard cursor (distribution hint only)
}

type poolShard struct {
	mu   sync.Mutex
	free []*kdtree.Builder
}

// NewBuilderPool returns a pool with the given shard count (minimum 1).
func NewBuilderPool(shards int) *BuilderPool {
	if shards < 1 {
		shards = 1
	}
	return &BuilderPool{shards: make([]poolShard, shards)}
}

// Get hands out a warm Builder, allocating a fresh one when every shard is
// empty.
func (p *BuilderPool) Get() *kdtree.Builder {
	n := len(p.shards)
	start := int(p.next.Add(1)-1) % n
	for i := 0; i < n; i++ {
		s := &p.shards[(start+i)%n]
		s.mu.Lock()
		if k := len(s.free); k > 0 {
			b := s.free[k-1]
			s.free = s.free[:k-1]
			s.mu.Unlock()
			return b
		}
		s.mu.Unlock()
	}
	return kdtree.NewBuilder()
}

// Put returns a Builder whose storage is no longer borrowed by any Tree.
func (p *BuilderPool) Put(b *kdtree.Builder) {
	if b == nil {
		return
	}
	s := &p.shards[int(p.next.Load())%len(p.shards)]
	s.mu.Lock()
	s.free = append(s.free, b)
	s.mu.Unlock()
}

// Size reports how many Builders are currently pooled (for tests).
func (p *BuilderPool) Size() int {
	total := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		total += len(s.free)
		s.mu.Unlock()
	}
	return total
}
