package serve

import (
	"context"
	"testing"
)

// TestAdmitShedProbeReopensBreaker pins the wiring between admit and
// Breaker.CancelProbe: a half-open probe shed by the queue bound (429) or
// killed waiting for a slot (504) never reaches Record, so admit itself must
// hand the probe back. Before that wiring the breaker stayed half-open
// forever and every later request for the tenant was shed with 503 — exactly
// under the saturation that sheds probes in the first place.
func TestAdmitShedProbeReopensBreaker(t *testing.T) {
	a := newAdmission(1, 1, 1, 1) // trip=1, cooldown=1: every open Allow probes
	ctx := context.Background()
	ten := a.tenant("x")

	// Trip the breaker with one executed failure.
	tk, aerr := a.admit(ctx, ten)
	if aerr != nil {
		t.Fatalf("initial admit: %v", aerr)
	}
	ten.breaker.Record(false, tk.probe)
	tk.close()
	if ten.breaker.State() != BreakerOpen {
		t.Fatalf("breaker = %v after trip, want open", ten.breaker.State())
	}

	// 429 path: the tenant's queue is full when the cooldown releases the
	// probe, so the queue bound sheds it.
	ten.pending.Add(1)
	if _, aerr = a.admit(ctx, ten); aerr == nil || aerr.Status != 429 {
		t.Fatalf("admit with full queue = %v, want 429", aerr)
	}
	ten.pending.Add(-1)
	if st := ten.breaker.State(); st != BreakerOpen {
		t.Fatalf("breaker = %v after queue-shed probe, want open (not stuck half-open)", st)
	}

	// 504 path: the slot is held elsewhere and the probe's deadline expires
	// waiting for it.
	other, aerr := a.admit(ctx, a.tenant("y"))
	if aerr != nil {
		t.Fatalf("slot-holder admit: %v", aerr)
	}
	expired, cancel := context.WithCancel(ctx)
	cancel()
	if _, aerr = a.admit(expired, ten); aerr == nil || aerr.Status != 504 {
		t.Fatalf("admit with expired ctx = %v, want 504", aerr)
	}
	if st := ten.breaker.State(); st != BreakerOpen {
		t.Fatalf("breaker = %v after deadline-shed probe, want open (not stuck half-open)", st)
	}
	other.close()

	// The tenant still recovers: the restarted cooldown releases a fresh
	// probe and its success closes the breaker.
	tk, aerr = a.admit(ctx, ten)
	if aerr != nil {
		t.Fatalf("re-probe admit: %v", aerr)
	}
	if !tk.probe {
		t.Fatal("expected a fresh probe after the shed ones")
	}
	ten.breaker.Record(true, tk.probe)
	tk.close()
	if ten.breaker.State() != BreakerClosed {
		t.Fatalf("breaker = %v after successful re-probe, want closed", ten.breaker.State())
	}
}
