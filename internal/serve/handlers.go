package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"kdtune/internal/kdtree"
	"kdtune/internal/parallel"
	"kdtune/internal/render"
	"kdtune/internal/scene"
	"kdtune/internal/vecmath"
)

// The endpoint implementations. Each runs inside wrap's spine (deadline,
// admission, recover, metrics, log) and returns either a *result or an error
// — typed *Error where the status matters.

// algorithmByName maps the names Algorithm.String produces back to values;
// the serving surface accepts the same spelling the figures use.
func algorithmByName(name string) (kdtree.Algorithm, error) {
	all := append(append([]kdtree.Algorithm{}, kdtree.Algorithms...), kdtree.AlgoMedian, kdtree.AlgoSortOnce)
	for _, a := range all {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, &Error{Status: 400, Code: "bad-algo", Msg: fmt.Sprintf("unknown algorithm %q", name)}
}

// sceneOf resolves the scene, frame and algorithm parameters.
func (s *Server) sceneOf(r *http.Request) (*scene.Scene, int, kdtree.Algorithm, error) {
	q := r.URL.Query()
	name := q.Get("scene")
	if name == "" {
		return nil, 0, 0, &Error{Status: 400, Code: "bad-scene", Msg: "missing scene parameter"}
	}
	sc, ok := s.scenes[name]
	if !ok {
		return nil, 0, 0, &Error{Status: 404, Code: "no-scene", Msg: fmt.Sprintf("unknown scene %q", name)}
	}
	frame := intParam(q.Get("frame"), 0)
	algo := s.cfg.Algorithm
	if an := q.Get("algo"); an != "" {
		var err error
		if algo, err = algorithmByName(an); err != nil {
			return nil, 0, 0, err
		}
	}
	return sc, frame, algo, nil
}

// geomKey memoises GeometryKey per (scene, frame, algorithm): the triangles
// of a given frame are deterministic, so the hash is computed once and the
// per-request cost is a map lookup.
func (s *Server) geomKey(sc *scene.Scene, frame int, algo kdtree.Algorithm, tris []vecmath.Triangle) string {
	memo := fmt.Sprintf("%s\x00%d\x00%d", sc.Name, frame, algo)
	s.keyMu.Lock()
	key, ok := s.keys[memo]
	s.keyMu.Unlock()
	if ok {
		return key
	}
	key = GeometryKey(tris, algo)
	s.keyMu.Lock()
	s.keys[memo] = key
	s.keyMu.Unlock()
	return key
}

// tree walks the cache (and its degradation ladder) for the request's scene.
// The caller must Release the returned tree.
func (s *Server) tree(ctx context.Context, sc *scene.Scene, frame int, algo kdtree.Algorithm) (*CachedTree, string, TreeSource, error) {
	tris := sc.Triangles(frame)
	key := s.geomKey(sc, frame, algo, tris)
	cfg := kdtree.BaseConfig(algo)
	cfg.Workers = s.cfg.Workers
	ct, src, err := s.cache.Get(ctx, key, tris, cfg, s.cfg.Guard)
	return ct, key, src, err
}

// BuildResponse is /build's body.
type BuildResponse struct {
	Scene      string `json:"scene"`
	Frame      int    `json:"frame"`
	Algo       string `json:"algo"`
	Key        string `json:"key"`
	Generation uint64 `json:"generation"`
	Source     string `json:"source"`
	Degraded   string `json:"degraded,omitempty"`
	Nodes      int    `json:"nodes"`
	Triangles  int    `json:"triangles"`
	BuildNS    int64  `json:"build_ns"`
}

func (s *Server) handleBuild(ctx context.Context, r *http.Request, rec *LogRecord) (*result, error) {
	sc, frame, algo, err := s.sceneOf(r)
	if err != nil {
		return nil, err
	}
	ct, key, src, err := s.tree(ctx, sc, frame, algo)
	if err != nil {
		return nil, err
	}
	defer ct.Release()
	degraded := ""
	if src.Degraded() {
		degraded = src.String()
	}
	return &result{
		scene:    sc.Name,
		degraded: degraded,
		body: BuildResponse{
			Scene: sc.Name, Frame: frame, Algo: ct.Algo.String(),
			Key: key, Generation: ct.Gen, Source: src.String(), Degraded: degraded,
			Nodes: ct.Tree.NumNodes(), Triangles: sc.NumTriangles(), BuildNS: ct.BuildNS,
		},
	}, nil
}

// RenderResponse is /render's body. Checksum digests the framebuffer
// (FrameChecksum), so a client — or a drill — can compare a served frame
// bitwise against an offline render without transferring pixels.
type RenderResponse struct {
	Scene      string `json:"scene"`
	Frame      int    `json:"frame"`
	Algo       string `json:"algo"`
	Generation uint64 `json:"generation"`
	Source     string `json:"source"`
	Degraded   string `json:"degraded,omitempty"`

	Width    int    `json:"width"`
	Height   int    `json:"height"`
	Lowres   bool   `json:"lowres,omitempty"`
	Checksum string `json:"checksum"`

	PrimaryRays int `json:"primary_rays"`
	ShadowRays  int `json:"shadow_rays"`
	Hits        int `json:"hits"`
	Packets     int `json:"packets,omitempty"`
	Demotions   int `json:"demotions,omitempty"`

	BuildNS  int64 `json:"build_ns"`
	RenderNS int64 `json:"render_ns"`
}

// renderBudgetFraction is how much of the remaining deadline the lowres
// decision budgets for the render itself; the rest covers serialization and
// scheduling slop.
const renderBudgetFraction = 0.8

func (s *Server) handleRender(ctx context.Context, r *http.Request, rec *LogRecord) (*result, error) {
	sc, frame, algo, err := s.sceneOf(r)
	if err != nil {
		return nil, err
	}
	q := r.URL.Query()
	width := intParam(q.Get("width"), 160)
	height := intParam(q.Get("height"), width*3/4)
	packet := intParam(q.Get("packet"), 1)
	tile := intParam(q.Get("tile"), 0)
	if width < 8 || height < 6 || width > 4096 || height > 4096 {
		return nil, &Error{Status: 400, Code: "bad-size", Msg: "width/height out of range"}
	}

	ct, key, src, err := s.tree(ctx, sc, frame, algo)
	if err != nil {
		return nil, err
	}
	defer ct.Release()

	var degraded []string
	if src.Degraded() {
		degraded = append(degraded, src.String())
	}

	// Lowres rung: if the estimator has seen this (geometry, packet) before
	// and predicts the full frame cannot fit the remaining deadline, shrink
	// until it does rather than render a frame we know we must abandon.
	estKey := fmt.Sprintf("%s/p%d", key, packet)
	w, h := width, height
	lowres := false
	if dl, hasDL := ctx.Deadline(); hasDL {
		budget := float64(time.Until(dl).Nanoseconds()) * renderBudgetFraction
		if est, known := s.est.EstimateNS(estKey, w*h); known && est > budget {
			var steps int
			w, h, steps = shrinkToFit(w, h, est, budget)
			if steps > 0 {
				lowres = true
				degraded = append(degraded, "lowres")
				s.met.DegradedLowres.Add(1)
			}
		}
	}

	var cc parallel.Canceler
	stop := parallel.LinkContext(ctx, &cc)
	im := render.NewImage(w, h)
	start := time.Now()
	st := render.RenderInto(im, ct.Tree, sc.ViewAt(frame), sc.Lights, render.Options{
		Width: w, Height: h, Workers: s.cfg.Workers,
		PacketWidth: packet, TileSize: tile, Cancel: &cc,
	})
	renderNS := time.Since(start).Nanoseconds()
	stop()
	if st.Canceled {
		// The frame is partial; a partial frame is not a degraded success,
		// it is the deadline having run out mid-kernel.
		return nil, &Error{Status: 504, Code: "deadline", Msg: "deadline expired mid-render"}
	}
	s.est.Observe(estKey, w*h, renderNS)

	return &result{
		scene:    sc.Name,
		degraded: strings.Join(degraded, "+"),
		body: RenderResponse{
			Scene: sc.Name, Frame: frame, Algo: ct.Algo.String(),
			Generation: ct.Gen, Source: src.String(), Degraded: strings.Join(degraded, "+"),
			Width: w, Height: h, Lowres: lowres,
			Checksum:    fmt.Sprintf("%016x", FrameChecksum(im)),
			PrimaryRays: st.PrimaryRays, ShadowRays: st.ShadowRays, Hits: st.Hits,
			Packets: st.Packets, Demotions: st.Demotions,
			BuildNS: ct.BuildNS, RenderNS: renderNS,
		},
	}, nil
}

// RangeResponse is /range's body: the indices of triangles overlapping the
// query box (capped at limit, default 64; Count is always the full count).
type RangeResponse struct {
	Scene      string `json:"scene"`
	Generation uint64 `json:"generation"`
	Source     string `json:"source"`
	Degraded   string `json:"degraded,omitempty"`
	Count      int    `json:"count"`
	Indices    []int  `json:"indices"`
}

func (s *Server) handleRange(ctx context.Context, r *http.Request, rec *LogRecord) (*result, error) {
	sc, frame, algo, err := s.sceneOf(r)
	if err != nil {
		return nil, err
	}
	q := r.URL.Query()
	box := vecmath.NewAABB(
		vecmath.V(floatParam(q.Get("minx"), 0), floatParam(q.Get("miny"), 0), floatParam(q.Get("minz"), 0)),
		vecmath.V(floatParam(q.Get("maxx"), 0), floatParam(q.Get("maxy"), 0), floatParam(q.Get("maxz"), 0)),
	)
	limit := intParam(q.Get("limit"), 64)

	ct, _, src, err := s.tree(ctx, sc, frame, algo)
	if err != nil {
		return nil, err
	}
	defer ct.Release()
	ids := ct.Tree.RangeQuery(box)
	count := len(ids)
	if limit >= 0 && count > limit {
		ids = ids[:limit]
	}
	degraded := ""
	if src.Degraded() {
		degraded = src.String()
	}
	return &result{
		scene:    sc.Name,
		degraded: degraded,
		body: RangeResponse{
			Scene: sc.Name, Generation: ct.Gen, Source: src.String(), Degraded: degraded,
			Count: count, Indices: ids,
		},
	}, nil
}

// NNResponse is /nn's body.
type NNResponse struct {
	Scene      string  `json:"scene"`
	Generation uint64  `json:"generation"`
	Source     string  `json:"source"`
	Degraded   string  `json:"degraded,omitempty"`
	Found      bool    `json:"found"`
	Triangle   int     `json:"triangle"`
	Distance   float64 `json:"distance"`
}

func (s *Server) handleNN(ctx context.Context, r *http.Request, rec *LogRecord) (*result, error) {
	sc, frame, algo, err := s.sceneOf(r)
	if err != nil {
		return nil, err
	}
	q := r.URL.Query()
	p := vecmath.V(floatParam(q.Get("x"), 0), floatParam(q.Get("y"), 0), floatParam(q.Get("z"), 0))

	ct, _, src, err := s.tree(ctx, sc, frame, algo)
	if err != nil {
		return nil, err
	}
	defer ct.Release()
	tri, dist, found := ct.Tree.NearestNeighbor(p)
	degraded := ""
	if src.Degraded() {
		degraded = src.String()
	}
	return &result{
		scene:    sc.Name,
		degraded: degraded,
		body: NNResponse{
			Scene: sc.Name, Generation: ct.Gen, Source: src.String(), Degraded: degraded,
			Found: found, Triangle: tri, Distance: dist,
		},
	}, nil
}

// InvalidateResponse is /invalidate's body.
type InvalidateResponse struct {
	Scene      string `json:"scene"`
	Key        string `json:"key"`
	Generation uint64 `json:"generation"`
}

// handleInvalidate bumps the generation of the scene's cache entry: the
// current tree becomes the stale rung, and the next request rebuilds — the
// cache-invalidation path the race drill (SiteServeCache) widens.
func (s *Server) handleInvalidate(ctx context.Context, r *http.Request, rec *LogRecord) (*result, error) {
	sc, frame, algo, err := s.sceneOf(r)
	if err != nil {
		return nil, err
	}
	key := s.geomKey(sc, frame, algo, sc.Triangles(frame))
	gen := s.cache.Invalidate(key)
	return &result{
		scene: sc.Name,
		body:  InvalidateResponse{Scene: sc.Name, Key: key, Generation: gen},
	}, nil
}

// handleMetrics serves the counter snapshot; deliberately outside admission
// so operators can observe a saturated server.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.met.Snap()
	snap.Breakers = s.adm.breakerStates()
	writeJSON(w, 200, snap)
}

// handleLog serves the most recent ring-log records (?n= caps the count).
func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	n := intParam(r.URL.Query().Get("n"), 0)
	writeJSON(w, 200, s.rlog.Snapshot(n))
}

// handleHealthz is the liveness probe: cheap, unsheddable, no admission.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, 200, map[string]any{"ok": true, "scenes": len(s.scenes)})
}

func intParam(raw string, def int) int {
	if raw == "" {
		return def
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return def
	}
	return v
}

func floatParam(raw string, def float64) float64 {
	if raw == "" {
		return def
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return def
	}
	return v
}
