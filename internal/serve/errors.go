package serve

import "fmt"

// Error is the one error shape the service emits: every admitted request
// terminates in a 2xx response or in one of these — never in a hang and
// never in an untyped 500. Code is machine-matchable (the soak driver and
// the drills classify on it); Msg is for humans.
type Error struct {
	Status int    `json:"status"`
	Code   string `json:"code"`
	Msg    string `json:"msg"`

	// RetryAfterMS > 0 tells a well-behaved client how long to back off
	// before retrying (429/503 shedding).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("serve: %d %s: %s", e.Status, e.Code, e.Msg)
}
