package serve

import (
	"time"

	"kdtune/internal/faultinject"
)

// DrillPlan is the standing fault plan behind `kdserve -faults drill` and
// the soak e2e test: a periodic sampling of every server-side failure mode,
// none of which may ever turn into a hung request. The Every-period matching
// keeps the damage recurring (a soak outlasts any fixed Count) while leaving
// the majority of requests clean, so the run exercises the ladder AND still
// proves healthy requests flow.
func DrillPlan() []faultinject.Fault {
	return []faultinject.Fault{
		// Every 11th build-node probe ordinal stalls briefly: builds near a
		// tight deadline abort, driving the stale/fallback rungs.
		{Site: faultinject.SiteBuildNode, Index: 5, Every: 11, Kind: faultinject.KindDelay, Delay: 2 * time.Millisecond},
		// Every 13th render row/tile stalls: renders near the deadline get
		// canceled mid-frame (typed 504) or pushed to the lowres rung.
		{Site: faultinject.SiteRenderTile, Index: 3, Every: 13, Kind: faultinject.KindDelay, Delay: 2 * time.Millisecond},
		// Every 29th render unit panics: the parallel substrate contains it,
		// the recover middleware types it, the breaker hears it.
		{Site: faultinject.SiteRenderTile, Index: 17, Every: 29, Kind: faultinject.KindPanic},
		// Every 7th handler stalls before admission: latency noise.
		{Site: faultinject.SiteServeHandler, Index: 2, Every: 7, Kind: faultinject.KindDelay, Delay: 5 * time.Millisecond},
		// Every 5th slot-wait stalls while holding the pending count: queue
		// pressure, driving 429 shedding under concurrency.
		{Site: faultinject.SiteServeQueue, Index: 1, Every: 5, Kind: faultinject.KindDelay, Delay: 10 * time.Millisecond},
		// Every 9th cache fill stalls before building: widens the window in
		// which an /invalidate races an in-flight build.
		{Site: faultinject.SiteServeCache, Index: 4, Every: 9, Kind: faultinject.KindDelay, Delay: 5 * time.Millisecond},
		// Every 31st cache fill panics outright: the fill latch must still be
		// released (no waiter may hang) and the request gets a typed 500.
		{Site: faultinject.SiteServeCache, Index: 7, Every: 31, Kind: faultinject.KindPanic},
	}
}
