package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kdtune/internal/harness"
)

// Soak driver (the library behind cmd/kdsoak): a mixed-tenant, mixed-
// endpoint client that hammers a kdserve instance and classifies every
// single request — served, degraded, shed-and-retried, timed out, errored,
// or hung. "Hung" is the one class that must stay at zero: a request is hung
// when the server neither answered nor failed within deadline + grace,
// which is exactly the invariant the service's robustness layer exists to
// uphold.

// SoakOptions configures a soak run. Zero values select the noted defaults.
type SoakOptions struct {
	BaseURL string // e.g. "http://127.0.0.1:7474"

	Scenes  []string // scenes to request (default ["Bunny"])
	Tenants []string // tenant mix (default alpha, beta, gamma)

	Requests    int // total requests across all workers (default 200)
	Concurrency int // parallel client workers (default 8)

	DeadlineMS  int           // per-request server deadline (default 500)
	Grace       time.Duration // client-side slack past the deadline before a request counts as hung (default 10s)
	MaxAttempts int           // attempts per request when shed with 429/503 (default 4)

	Seed int64 // RNG seed; every worker derives its own stream (default 1)

	// Render shape for /render requests.
	Width, Height, Packet int // defaults 96×72, packet 4

	Client *http.Client // default: fresh client, no global timeout (per-attempt contexts bound everything)
}

func (o SoakOptions) normalized() SoakOptions {
	if len(o.Scenes) == 0 {
		o.Scenes = []string{"Bunny"}
	}
	if len(o.Tenants) == 0 {
		o.Tenants = []string{"alpha", "beta", "gamma"}
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.DeadlineMS <= 0 {
		o.DeadlineMS = 500
	}
	if o.Grace <= 0 {
		o.Grace = 10 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Width <= 0 {
		o.Width = 96
	}
	if o.Height <= 0 {
		o.Height = 72
	}
	if o.Packet <= 0 {
		o.Packet = 4
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// SoakReport is what a run produced.
type SoakReport struct {
	Sent      int `json:"sent"`       // requests attempted (not counting retries)
	Attempts  int `json:"attempts"`   // HTTP attempts including retries
	Served    int `json:"served"`     // 200, full quality
	Degraded  int `json:"degraded"`   // 200 with a degraded marker (stale/fallback/lowres)
	Shed      int `json:"shed"`       // requests that gave up after MaxAttempts 429/503s
	Timeouts  int `json:"timeouts"`   // typed 504s
	Errors    int `json:"errors"`     // typed 5xx/4xx beyond shedding
	ClientErr int `json:"client_err"` // transport-level failures
	Hung      int `json:"hung"`       // no answer within deadline+grace — MUST be zero

	DegradedBy map[string]int `json:"degraded_by"` // rung -> count

	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	P99 time.Duration `json:"p99"`
}

// String renders the report as the one-screen summary kdsoak prints.
func (r *SoakReport) String() string {
	return fmt.Sprintf(
		"sent %d (attempts %d): served %d degraded %d shed %d timeout %d error %d client-err %d hung %d | p50 %v p95 %v p99 %v | degraded %v",
		r.Sent, r.Attempts, r.Served, r.Degraded, r.Shed, r.Timeouts, r.Errors, r.ClientErr, r.Hung,
		r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond), r.P99.Round(time.Millisecond),
		r.DegradedBy)
}

// soakBody is the subset of every endpoint's response the classifier needs.
type soakBody struct {
	Degraded string `json:"degraded"`
	Code     string `json:"code"`
}

// RunSoak drives the mixed workload until the request budget is spent or ctx
// fires. The returned error covers only setup/ctx problems; per-request
// failures land in the report.
func RunSoak(ctx context.Context, opt SoakOptions) (*SoakReport, error) {
	opt = opt.normalized()
	rep := &SoakReport{DegradedBy: map[string]int{}}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		next      atomic.Int64
		attempts  atomic.Int64
		wg        sync.WaitGroup
	)
	for w := 0; w < opt.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(worker)*7919))
			for {
				n := next.Add(1)
				if int(n) > opt.Requests || ctx.Err() != nil {
					return
				}
				out := soakOne(ctx, opt, rng, &attempts)
				mu.Lock()
				rep.Sent++
				switch out.class {
				case "served":
					rep.Served++
					latencies = append(latencies, out.latency)
				case "degraded":
					rep.Degraded++
					rep.DegradedBy[out.degraded]++
					latencies = append(latencies, out.latency)
				case "shed":
					rep.Shed++
				case "timeout":
					rep.Timeouts++
				case "error":
					rep.Errors++
				case "client-err":
					rep.ClientErr++
				case "hung":
					rep.Hung++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait() //kdlint:noctx soak driver joining its own load workers, each of which exits on ctx.Done; not a request path
	rep.Attempts = int(attempts.Load())
	rep.P50 = harness.PercentileDuration(latencies, 0.50)
	rep.P95 = harness.PercentileDuration(latencies, 0.95)
	rep.P99 = harness.PercentileDuration(latencies, 0.99)
	if err := ctx.Err(); err != nil && rep.Sent < opt.Requests {
		return rep, fmt.Errorf("soak interrupted after %d/%d requests: %w", rep.Sent, opt.Requests, err)
	}
	return rep, nil
}

type soakOutcome struct {
	class    string // served | degraded | shed | timeout | error | client-err | hung
	degraded string
	latency  time.Duration
}

// soakOne issues one logical request, retrying shed attempts with jittered
// backoff that honours the server's Retry-After-Ms hint.
func soakOne(ctx context.Context, opt SoakOptions, rng *rand.Rand, attempts *atomic.Int64) soakOutcome {
	scene := opt.Scenes[rng.Intn(len(opt.Scenes))]
	tenant := opt.Tenants[rng.Intn(len(opt.Tenants))]
	url := soakURL(opt, scene, rng)

	for attempt := 0; attempt < opt.MaxAttempts; attempt++ {
		attempts.Add(1)
		status, body, latency, err := soakAttempt(ctx, opt, url, tenant)
		switch {
		case err != nil && errors.Is(err, context.DeadlineExceeded):
			// The per-attempt context is deadline+grace: the server had all
			// the time the contract allows and never answered.
			return soakOutcome{class: "hung", latency: latency}
		case err != nil && ctx.Err() != nil:
			return soakOutcome{class: "client-err", latency: latency}
		case err != nil:
			return soakOutcome{class: "client-err", latency: latency}
		case status == 200 && body.Degraded != "":
			return soakOutcome{class: "degraded", degraded: body.Degraded, latency: latency}
		case status == 200:
			return soakOutcome{class: "served", latency: latency}
		case status == 429 || status == 503:
			// Shed: back off (server hint + jitter) and try again.
			backoff := time.Duration(5+rng.Intn(10)) * time.Millisecond
			if body.retryAfterMS > 0 {
				backoff = time.Duration(body.retryAfterMS)*time.Millisecond +
					time.Duration(rng.Intn(10))*time.Millisecond
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return soakOutcome{class: "shed", latency: latency}
			}
		case status == 504:
			return soakOutcome{class: "timeout", latency: latency}
		default:
			return soakOutcome{class: "error", latency: latency}
		}
	}
	return soakOutcome{class: "shed"}
}

type soakParsedBody struct {
	soakBody
	retryAfterMS int64
}

// soakAttempt performs one HTTP attempt bounded by deadline+grace.
func soakAttempt(ctx context.Context, opt SoakOptions, url, tenant string) (int, soakParsedBody, time.Duration, error) {
	limit := time.Duration(opt.DeadlineMS)*time.Millisecond + opt.Grace
	actx, cancel := context.WithTimeout(ctx, limit)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
	if err != nil {
		return 0, soakParsedBody{}, 0, err
	}
	req.Header.Set("X-Tenant", tenant)
	req.Header.Set("X-Deadline-Ms", strconv.Itoa(opt.DeadlineMS))
	start := time.Now()
	resp, err := opt.Client.Do(req)
	latency := time.Since(start)
	if err != nil {
		return 0, soakParsedBody{}, latency, err
	}
	defer resp.Body.Close()
	var body soakParsedBody
	json.NewDecoder(resp.Body).Decode(&body.soakBody) // tolerate empty/odd bodies
	latency = time.Since(start)
	if ra := resp.Header.Get("Retry-After-Ms"); ra != "" {
		body.retryAfterMS, _ = strconv.ParseInt(ra, 10, 64)
	}
	return resp.StatusCode, body, latency, nil
}

// soakURL picks an endpoint with a fixed mix: renders dominate (they
// exercise the full ladder), with builds and both query kinds mixed in.
func soakURL(opt SoakOptions, scene string, rng *rand.Rand) string {
	switch p := rng.Intn(100); {
	case p < 50:
		return fmt.Sprintf("%s/render?scene=%s&width=%d&height=%d&packet=%d",
			opt.BaseURL, scene, opt.Width, opt.Height, opt.Packet)
	case p < 70:
		return fmt.Sprintf("%s/build?scene=%s", opt.BaseURL, scene)
	case p < 85:
		lo, hi := rng.Float64()*5, 5+rng.Float64()*5
		return fmt.Sprintf("%s/range?scene=%s&minx=%g&miny=%g&minz=%g&maxx=%g&maxy=%g&maxz=%g",
			opt.BaseURL, scene, lo, lo, lo, hi, hi, hi)
	default:
		return fmt.Sprintf("%s/nn?scene=%s&x=%g&y=%g&z=%g",
			opt.BaseURL, scene, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
	}
}

// WaitReady polls /healthz until the server answers or the timeout expires —
// how kdsoak (and the CI soak-smoke job) synchronises with server startup.
func WaitReady(baseURL string, timeout time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready within %v", baseURL, timeout)
		}
		time.Sleep(50 * time.Millisecond) //kdlint:noctx startup readiness poll bounded by its own deadline check above; not a request path
	}
}
