package serve

import (
	"context"
	"sync"
	"sync/atomic"

	"kdtune/internal/faultinject"
)

// admission is the front door: a per-tenant pending bound (cheap, lock-free,
// sheds with 429 before any queueing happens) in front of a global slot
// semaphore (bounds concurrent tree/render work at the machine's capacity).
// The wait for a slot is context-aware — a request whose deadline expires in
// the queue leaves with a typed 504 instead of occupying a worker later for
// an answer nobody is waiting for.
type admission struct {
	slots    chan struct{}
	maxQueue int // per-tenant pending ceiling (queued + executing)

	trip, cooldown int // breaker parameters for newly seen tenants

	queueSeq atomic.Int64 // faultinject ordinal for SiteServeQueue

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// tenantState is everything the server tracks per tenant: the pending gauge
// the queue bound reads and the circuit breaker.
type tenantState struct {
	name    string
	pending atomic.Int64
	breaker *Breaker
}

func newAdmission(slots, maxQueue, trip, cooldown int) *admission {
	if slots < 1 {
		slots = 4
	}
	if maxQueue < 1 {
		maxQueue = 8
	}
	return &admission{
		slots:    make(chan struct{}, slots),
		maxQueue: maxQueue,
		trip:     trip,
		cooldown: cooldown,
		tenants:  make(map[string]*tenantState),
	}
}

func (a *admission) tenant(name string) *tenantState {
	a.mu.Lock()
	t := a.tenants[name]
	if t == nil {
		t = &tenantState{name: name, breaker: NewBreaker(a.trip, a.cooldown)}
		a.tenants[name] = t
	}
	a.mu.Unlock()
	return t
}

// ticket is a successful admission; close() releases the slot and the
// pending count exactly once.
type ticket struct {
	adm   *admission
	ten   *tenantState
	probe bool // this request is the breaker's half-open canary
	done  atomic.Bool
}

func (tk *ticket) close() {
	if !tk.done.CompareAndSwap(false, true) {
		return
	}
	<-tk.adm.slots //kdlint:noctx buffered-semaphore token return: admit sent on slots before handing out the ticket, so this receive cannot block
	tk.ten.pending.Add(-1)
}

// admit runs the full front door for one request. On rejection the returned
// *Error carries the status (429 queue-full, 503 breaker-open, 504 deadline)
// and a retry hint scaled by the tenant's queue depth.
func (a *admission) admit(ctx context.Context, ten *tenantState) (*ticket, *Error) {
	admitOK, probe := ten.breaker.Allow()
	if !admitOK {
		return nil, &Error{Status: 503, Code: "breaker-open",
			Msg: "tenant circuit breaker is open", RetryAfterMS: a.retryHintMS(ten)}
	}

	pending := ten.pending.Add(1)
	if int(pending) > a.maxQueue {
		ten.pending.Add(-1)
		if probe {
			// The half-open canary died in the queue without executing: hand
			// the probe back so the breaker re-opens and re-probes later,
			// instead of shedding the tenant forever on a probe that never ran.
			ten.breaker.CancelProbe()
		}
		// The shed is not an outcome of admitted work; the breaker only
		// hears about executed requests, so shedding cannot trip it.
		return nil, &Error{Status: 429, Code: "queue-full",
			Msg: "tenant queue is full", RetryAfterMS: a.retryHintMS(ten)}
	}

	if faultinject.Active() {
		// A delay here models a stalled dispatcher: pending stays elevated,
		// which is exactly what drives queue-full shedding in the drills.
		faultinject.Check(faultinject.SiteServeQueue, int(a.queueSeq.Add(1))-1)
	}

	select {
	case a.slots <- struct{}{}:
	case <-ctx.Done():
		ten.pending.Add(-1)
		if probe {
			ten.breaker.CancelProbe()
		}
		return nil, &Error{Status: 504, Code: "deadline",
			Msg: "deadline expired waiting for a work slot"}
	}
	return &ticket{adm: a, ten: ten, probe: probe}, nil
}

// retryHintMS scales the backoff hint with the tenant's queue depth: an idle
// tenant may retry almost immediately, a saturated one is pushed out far
// enough for the queue to drain.
func (a *admission) retryHintMS(ten *tenantState) int64 {
	ms := 5 * (ten.pending.Load() + 1)
	if ms > 1000 {
		ms = 1000
	}
	return ms
}

// breakerStates snapshots every tenant's breaker position for /metrics.
func (a *admission) breakerStates() map[string]string {
	out := map[string]string{}
	a.mu.Lock()
	for name, t := range a.tenants {
		out[name] = t.breaker.State().String()
	}
	a.mu.Unlock()
	return out
}
