// Package serve is the multi-tenant render/query service over the paper's
// kD-tree substrate (cmd/kdserve is its thin binary wrapper). Every request
// carries an end-to-end deadline that propagates as context.Context →
// kdtree.GuardFromContext / parallel.LinkContext into the build and
// traversal kernels, so a request that runs out of time stops consuming the
// machine at the next node or tile boundary.
//
// The robustness contract, in ladder order (DESIGN.md §14):
//
//  1. Admission: a per-tenant circuit breaker (503) in front of a bounded
//     per-tenant queue (429, with Retry-After hints) in front of a global
//     work-slot semaphore (context-aware wait, 504 on expiry). Overload
//     sheds at the door instead of queueing without bound.
//  2. Execution: builds are guarded (BuildGuarded), renders cancelable; a
//     worker panic is contained by the parallel substrate and converted to a
//     typed 500 by the recover middleware.
//  3. Degradation: when a build aborts, the cache serves the stale previous
//     generation bitwise-unchanged; failing that, a median-algorithm
//     fallback build on the warm aborted Builder; renders additionally drop
//     resolution when the cost estimator predicts the deadline cannot fit a
//     full frame.
//
// Every admitted request therefore terminates in success, an explicitly
// degraded success, or a typed error — never a hang, which is the invariant
// cmd/kdsoak drives and asserts.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kdtune/internal/faultinject"
	"kdtune/internal/kdtree"
	"kdtune/internal/scene"
)

// Config sizes the server. Zero values select the defaults noted per field.
type Config struct {
	// Scenes is the servable catalog; empty selects scene.All().
	Scenes []*scene.Scene

	// Algorithm is the default build algorithm for requests that do not name
	// one. The zero value selects the in-place builder (the paper's
	// strongest all-round variant); requests wanting node-level pass
	// algo=node-level explicitly.
	Algorithm kdtree.Algorithm

	// Workers bounds build/render parallelism per request; <=0 GOMAXPROCS.
	Workers int

	// Slots is the global concurrent-work bound (default 4).
	Slots int

	// MaxQueue is the per-tenant pending ceiling, queued + executing
	// (default 8); beyond it requests shed with 429.
	MaxQueue int

	// BreakerTrip / BreakerCooldown parameterise the per-tenant circuit
	// breaker: consecutive failures to open, sheds while open before the
	// half-open probe (defaults 5 and 10).
	BreakerTrip, BreakerCooldown int

	// DefaultDeadline applies when a request carries none (default 2s);
	// MaxDeadline clamps what a request may ask for (default 30s).
	DefaultDeadline, MaxDeadline time.Duration

	// Guard is the base build guard every request tightens with its own
	// deadline (depth/memory ceilings; zero = panic containment only).
	Guard kdtree.Guard

	// LogSize is the request ring-log capacity (default 512).
	LogSize int
}

func (c Config) normalized() Config {
	if len(c.Scenes) == 0 {
		c.Scenes = scene.All()
	}
	if c.Algorithm == kdtree.AlgoNodeLevel {
		c.Algorithm = kdtree.AlgoInPlace
	}
	if c.Slots <= 0 {
		c.Slots = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.LogSize <= 0 {
		c.LogSize = 512
	}
	return c
}

// Server is the service state: scene catalog, tree cache, admission front
// door, metrics, and ring log. Create with New, mount via Handler.
type Server struct {
	cfg    Config
	scenes map[string]*scene.Scene
	pool   *BuilderPool
	cache  *treeCache
	adm    *admission
	met    *Metrics
	rlog   *RequestLog
	est    *costEstimator
	mux    *http.ServeMux

	reqSeq atomic.Int64 // faultinject ordinal for SiteServeHandler

	keyMu sync.Mutex
	keys  map[string]string // "scene\x00frame\x00algo" -> geometry key
}

// New builds a server over cfg.
func New(cfg Config) *Server {
	cfg = cfg.normalized()
	s := &Server{
		cfg:    cfg,
		scenes: make(map[string]*scene.Scene, len(cfg.Scenes)),
		pool:   NewBuilderPool(4),
		met:    NewMetrics(),
		rlog:   NewRequestLog(cfg.LogSize),
		est:    newCostEstimator(),
		mux:    http.NewServeMux(),
		keys:   make(map[string]string),
	}
	for _, sc := range cfg.Scenes {
		s.scenes[sc.Name] = sc
	}
	s.cache = newTreeCache(s.pool, s.met)
	s.adm = newAdmission(cfg.Slots, cfg.MaxQueue, cfg.BreakerTrip, cfg.BreakerCooldown)

	s.mux.HandleFunc("/build", s.wrap("/build", s.handleBuild))
	s.mux.HandleFunc("/render", s.wrap("/render", s.handleRender))
	s.mux.HandleFunc("/range", s.wrap("/range", s.handleRange))
	s.mux.HandleFunc("/nn", s.wrap("/nn", s.handleNN))
	s.mux.HandleFunc("/invalidate", s.wrap("/invalidate", s.handleInvalidate))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/log", s.handleLog)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counter set (drills assert on it directly).
func (s *Server) Metrics() *Metrics { return s.met }

// result is what an endpoint implementation returns on success.
type result struct {
	body     any
	scene    string
	degraded string // "", "stale", "fallback", "lowres"
}

type handlerFunc func(ctx context.Context, r *http.Request, rec *LogRecord) (*result, error)

// wrap is the request spine shared by every work endpoint: deadline
// extraction, the fault-injection handler probe, recover middleware,
// admission (breaker → queue bound → slot), execution, outcome
// classification, breaker feedback, metrics, ring log.
func (s *Server) wrap(path string, fn handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.Requests.Add(1)
		tenant := tenantOf(r)
		rec := &LogRecord{Tenant: tenant, Path: path}
		wrote := false
		finish := func(status int, outcome string) {
			rec.Status, rec.Outcome = status, outcome
			rec.NS = time.Since(start).Nanoseconds()
			s.rlog.Append(rec)
			s.met.ObserveLatency(tenant, time.Since(start))
		}
		defer func() {
			if p := recover(); p != nil {
				// Outermost containment: nothing below may kill the process.
				s.met.Panics.Add(1)
				e := &Error{Status: 500, Code: "panic", Msg: fmt.Sprintf("request panicked: %v", p)}
				if !wrote {
					writeError(w, e)
				}
				rec.Err = e.Msg
				finish(500, "error")
			}
		}()

		ctx, cancel := s.requestContext(r)
		defer cancel()

		if faultinject.Active() {
			faultinject.Check(faultinject.SiteServeHandler, int(s.reqSeq.Add(1))-1)
		}

		ten := s.adm.tenant(tenant)
		tk, aerr := s.adm.admit(ctx, ten)
		if aerr != nil {
			switch aerr.Status {
			case 429:
				s.met.Shed429.Add(1)
			case 503:
				s.met.ShedBreaker.Add(1)
			default:
				s.met.Timeouts.Add(1)
			}
			wrote = true
			writeError(w, aerr)
			rec.Err = aerr.Code
			finish(aerr.Status, "shed")
			return
		}
		s.met.Admitted.Add(1)

		res, err := func() (res *result, err error) {
			defer tk.close()
			defer func() {
				if p := recover(); p != nil {
					s.met.Panics.Add(1)
					err = &Error{Status: 500, Code: "panic",
						Msg: fmt.Sprintf("handler panicked: %v", p)}
				}
			}()
			return fn(ctx, r, rec)
		}()

		var e *Error
		if err != nil {
			e = asError(err)
		}
		// The breaker hears every executed request: served (even degraded)
		// closes it toward health, server-side failures (5xx: aborts,
		// panics, timeouts) push it open. Client errors (4xx: bad-algo,
		// no-scene, …) count as successes — a tenant's malformed requests
		// must not open their breaker against subsequent valid ones.
		ten.breaker.Record(e == nil || e.Status < 500, tk.probe)

		if e != nil {
			switch e.Status {
			case 504:
				s.met.Timeouts.Add(1)
			default:
				s.met.Errors.Add(1)
			}
			wrote = true
			writeError(w, e)
			rec.Err = e.Code
			outcome := "error"
			if e.Status == 504 {
				outcome = "timeout"
			}
			finish(e.Status, outcome)
			return
		}

		rec.Scene = res.scene
		rec.Degraded = res.degraded
		outcome := "ok"
		if res.degraded != "" {
			outcome = "degraded"
		} else {
			s.met.ServedOK.Add(1)
		}
		wrote = true
		writeJSON(w, 200, res.body)
		finish(200, outcome)
	}
}

// requestContext derives the request's deadline context: X-Deadline-Ms
// header or deadline_ms query parameter, clamped to MaxDeadline, defaulting
// to DefaultDeadline. The http.Request context is the base, so a client
// disconnect cancels too.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	raw := r.Header.Get("X-Deadline-Ms")
	if raw == "" {
		raw = r.URL.Query().Get("deadline_ms")
	}
	if raw != "" {
		if ms, err := strconv.ParseInt(raw, 10, 64); err == nil && ms > 0 {
			d = time.Duration(ms) * time.Millisecond
		}
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return context.WithTimeout(r.Context(), d)
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "anon"
}

func asError(err error) *Error {
	if e, ok := err.(*Error); ok {
		return e
	}
	return &Error{Status: 500, Code: "internal", Msg: err.Error()}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, e *Error) {
	if e.RetryAfterMS > 0 {
		secs := (e.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set("Retry-After-Ms", strconv.FormatInt(e.RetryAfterMS, 10))
	}
	writeJSON(w, e.Status, e)
}
