package serve

import "testing"

// TestBreakerDeterministicSequence pins the whole state machine as a pure
// function of the request/outcome sequence — the property that makes
// breaker behaviour reproducible under fixed fault plans.
func TestBreakerDeterministicSequence(t *testing.T) {
	b := NewBreaker(2, 2)

	// Closed: successes keep it closed, a lone failure does not trip.
	for i := 0; i < 3; i++ {
		admit, probe := b.Allow()
		if !admit || probe {
			t.Fatalf("closed Allow #%d = %v,%v", i, admit, probe)
		}
		b.Record(true, probe)
	}
	if admit, probe := b.Allow(); !admit || probe {
		t.Fatal("closed breaker must admit")
	} else {
		b.Record(false, probe)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("one failure tripped a trip=2 breaker: %v", b.State())
	}

	// An interleaved success resets the consecutive count.
	admit, probe := b.Allow()
	b.Record(true, probe)
	admit, probe = b.Allow()
	b.Record(false, probe)
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the consecutive-failure count")
	}

	// Two consecutive failures open it. (A success first clears the single
	// failure left by the block above.)
	admit, probe = b.Allow()
	b.Record(true, probe)
	admit, probe = b.Allow()
	b.Record(false, probe)
	admit, probe = b.Allow()
	b.Record(false, probe)
	if b.State() != BreakerOpen {
		t.Fatalf("state after trip = %v, want open", b.State())
	}

	// Open: exactly cooldown-1 sheds, then the probe is released.
	if admit, _ = b.Allow(); admit {
		t.Fatal("open breaker admitted before cooldown")
	}
	admit, probe = b.Allow()
	if !admit || !probe {
		t.Fatalf("cooldown-th Allow = %v,%v, want probe admission", admit, probe)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v", b.State())
	}

	// Half-open sheds everyone but the probe.
	if admit, _ = b.Allow(); admit {
		t.Fatal("half-open breaker admitted a second request")
	}

	// Probe failure re-opens with a fresh cooldown.
	b.Record(false, true)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if admit, _ = b.Allow(); admit {
		t.Fatal("re-opened breaker admitted before second cooldown")
	}
	admit, probe = b.Allow()
	if !admit || !probe {
		t.Fatal("second cooldown did not release a probe")
	}

	// Probe success closes and fully resets.
	b.Record(true, true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	admit, probe = b.Allow()
	if !admit || probe {
		t.Fatal("closed-again breaker must admit normally")
	}
	b.Record(true, probe)
}

// TestBreakerCancelProbe pins the shed-probe transition: a half-open probe
// that dies inside admission (queue-full or deadline) without executing must
// return the breaker to open with a fresh cooldown — never leave it stuck in
// half-open shedding the tenant forever.
func TestBreakerCancelProbe(t *testing.T) {
	b := NewBreaker(1, 2)
	_, probe := b.Allow()
	b.Record(false, probe) // trips (trip=1)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if admit, _ := b.Allow(); admit {
		t.Fatal("open breaker admitted before cooldown")
	}
	admit, probe := b.Allow() // cooldown reached: probe released
	if !admit || !probe {
		t.Fatalf("Allow = %v,%v, want probe admission", admit, probe)
	}

	// The probe is shed downstream without executing.
	b.CancelProbe()
	if b.State() != BreakerOpen {
		t.Fatalf("state after cancelled probe = %v, want open", b.State())
	}

	// The cooldown restarts deterministically: one shed, then a fresh probe,
	// whose success still closes the breaker.
	if admit, _ := b.Allow(); admit {
		t.Fatal("re-opened breaker admitted before second cooldown")
	}
	admit, probe = b.Allow()
	if !admit || !probe {
		t.Fatal("no fresh probe after a cancelled one")
	}
	b.Record(true, true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful re-probe = %v, want closed", b.State())
	}

	// Outside half-open, CancelProbe is a no-op.
	b.CancelProbe()
	if b.State() != BreakerClosed {
		t.Fatalf("CancelProbe on a closed breaker changed state to %v", b.State())
	}
}

// TestBreakerIgnoresLateNonProbeOutcomes pins that an in-flight request
// finishing after the breaker already tripped cannot flip state — only the
// half-open probe's outcome decides.
func TestBreakerIgnoresLateNonProbeOutcomes(t *testing.T) {
	b := NewBreaker(1, 5)
	admit, probe := b.Allow()
	if !admit {
		t.Fatal("closed breaker must admit")
	}
	b.Record(false, probe) // trips (trip=1)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	// A request admitted before the trip reports success afterwards.
	b.Record(true, false)
	if b.State() != BreakerOpen {
		t.Fatalf("late non-probe success closed the breaker: %v", b.State())
	}
}
