package serve

import (
	"math"
	"sync"

	"kdtune/internal/render"
)

// costEstimator predicts how long a render will take from what recent
// renders of the same (scene-key, packet-width) cost per pixel, as an EWMA.
// The prediction drives the lowest rung of the degradation ladder: when the
// predicted full-resolution render does not fit into what remains of the
// request's deadline, the server shrinks the frame until it does instead of
// starting work it knows it must abandon.
type costEstimator struct {
	mu sync.Mutex
	ns map[string]float64 // key -> EWMA ns per pixel
}

// estimatorAlpha is the EWMA weight of the newest observation. High enough
// to track a camera move within a few frames, low enough that one noisy
// sample does not flip the lowres decision.
const estimatorAlpha = 0.3

func newCostEstimator() *costEstimator {
	return &costEstimator{ns: make(map[string]float64)}
}

// Observe folds one completed render into the estimate.
func (e *costEstimator) Observe(key string, pixels int, ns int64) {
	if pixels <= 0 || ns <= 0 {
		return
	}
	perPixel := float64(ns) / float64(pixels)
	e.mu.Lock()
	old, ok := e.ns[key]
	if !ok {
		e.ns[key] = perPixel
	} else {
		e.ns[key] = old + estimatorAlpha*(perPixel-old)
	}
	e.mu.Unlock()
}

// EstimateNS predicts the cost of rendering the given pixel count; ok is
// false when the key has never been observed (first render of a scene runs
// at full resolution — there is nothing to predict from).
func (e *costEstimator) EstimateNS(key string, pixels int) (ns float64, ok bool) {
	e.mu.Lock()
	perPixel, ok := e.ns[key]
	e.mu.Unlock()
	if !ok {
		return 0, false
	}
	return perPixel * float64(pixels), true
}

// seed pins the estimate directly — the white-box hook the ladder tests use
// to make the lowres decision deterministic instead of timing-dependent.
func (e *costEstimator) seed(key string, nsPerPixel float64) {
	e.mu.Lock()
	e.ns[key] = nsPerPixel
	e.mu.Unlock()
}

// shrinkToFit halves both frame dimensions until the predicted cost fits the
// budget or the floor (32×24) is reached. Returns the chosen dimensions and
// how many halvings were applied.
func shrinkToFit(w, h int, predictNS float64, budgetNS float64) (int, int, int) {
	steps := 0
	for predictNS > budgetNS && (w > 32 || h > 24) {
		w = max(w/2, 32)
		h = max(h/2, 24)
		predictNS /= 4
		steps++
	}
	return w, h, steps
}

// FrameChecksum digests a framebuffer: FNV-64a over the float64 bit patterns
// of every channel in index order. Two frames are bitwise-identical exactly
// when their checksums match, which is how the drills compare a served frame
// against an offline render without shipping pixels around.
func FrameChecksum(im *render.Image) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, f := range im.Pix {
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(bits >> (8 * i)))
			h *= prime64
		}
	}
	return h
}
