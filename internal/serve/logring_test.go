package serve

import (
	"fmt"
	"sync"
	"testing"
)

// TestRequestLogSequential pins ordering and capacity semantics.
func TestRequestLogSequential(t *testing.T) {
	l := NewRequestLog(16)
	for i := 0; i < 40; i++ {
		l.Append(&LogRecord{Tenant: fmt.Sprintf("t%d", i), Status: 200})
	}
	if l.Len() != 40 {
		t.Fatalf("Len = %d, want 40", l.Len())
	}
	snap := l.Snapshot(0)
	if len(snap) != 16 {
		t.Fatalf("snapshot length = %d, want ring capacity 16", len(snap))
	}
	for i, r := range snap {
		wantSeq := int64(24 + i)
		if r.Seq != wantSeq {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, r.Seq, wantSeq)
		}
	}
	small := l.Snapshot(4)
	if len(small) != 4 || small[0].Seq != 36 {
		t.Fatalf("Snapshot(4) = len %d first seq %d", len(small), small[0].Seq)
	}
}

// TestRequestLogConcurrent hammers the ring from many goroutines while a
// reader snapshots continuously — under -race in CI this is the lock-free
// publication proof. Every observed record must be internally consistent
// (the tenant string encodes the status it was published with; a torn
// record would mismatch).
func TestRequestLogConcurrent(t *testing.T) {
	l := NewRequestLog(64)
	const writers, per = 8, 500

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range l.Snapshot(0) {
				if want := fmt.Sprintf("s%d", r.Status); r.Tenant != want {
					t.Errorf("torn record: tenant %q status %d", r.Tenant, r.Status)
					return
				}
			}
		}
	}()

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < per; i++ {
				status := 200 + (w*per+i)%400
				l.Append(&LogRecord{Tenant: fmt.Sprintf("s%d", status), Status: status})
			}
		}(w)
	}
	writerWG.Wait() //kdlint:noctx test joins its own writer goroutines
	close(stop)
	readerWG.Wait() //kdlint:noctx test joins its own reader goroutines

	if l.Len() != writers*per {
		t.Fatalf("Len = %d, want %d", l.Len(), writers*per)
	}
}
