package serve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"kdtune/internal/faultinject"
)

// TestSoakE2EWithDrill is the tentpole acceptance run in miniature: a mixed-
// tenant soak against a server under an active fault plan must complete with
// zero hung requests and nonzero degraded counters, with stale frames served
// bitwise-identically (the stale test proves the checksum; here the plan
// forces the stale rung and the counters prove it fired).
func TestSoakE2EWithDrill(t *testing.T) {
	sc := testScene("soak-test", 4000)
	s, ts := testServer(t, sc, func(c *Config) {
		c.DefaultDeadline = 2 * time.Second
		c.Slots = 4
		c.MaxQueue = 16 // soak bursts; shedding is not what this test drills
	})

	// Pre-warm a clean generation-0 tree, then invalidate it so the soak's
	// builds run against the fault plan with a stale rung available.
	if code := get(t, ts.URL+"/build?scene=soak-test", "warm", 0, nil); code != 200 {
		t.Fatal("warm build failed")
	}
	if code := get(t, ts.URL+"/invalidate?scene=soak-test", "warm", 0, nil); code != 200 {
		t.Fatal("invalidate failed")
	}

	// The standing drill plus an always-abort build fault: every rebuild
	// attempt dies, so every admitted request lands on the stale rung —
	// deterministic degraded traffic regardless of machine speed.
	in := faultinject.Activate(append(DrillPlan(), faultinject.Fault{
		Site: faultinject.SiteBuildNode, Index: -1, Kind: faultinject.KindPanic,
	})...)
	defer in.Deactivate()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := RunSoak(ctx, SoakOptions{
		BaseURL:     ts.URL,
		Scenes:      []string{"soak-test"},
		Tenants:     []string{"alpha", "beta", "gamma"},
		Requests:    120,
		Concurrency: 6,
		DeadlineMS:  1500,
		Grace:       20 * time.Second,
		MaxAttempts: 4,
		Seed:        42,
		Width:       64,
		Height:      48,
		Packet:      4,
	})
	if err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	t.Logf("soak report:\n%s", rep)

	if rep.Hung != 0 {
		t.Fatalf("%d hung requests — the no-hang contract is broken", rep.Hung)
	}
	if rep.Served+rep.Degraded == 0 {
		t.Fatal("soak served nothing")
	}
	if rep.Degraded == 0 {
		t.Fatal("no degraded responses under an always-abort build plan")
	}
	if got := s.met.DegradedStale.Load(); got == 0 {
		t.Fatalf("DegradedStale = %d, want > 0", got)
	}
	if got := s.met.BuildsAborted.Load(); got == 0 {
		t.Fatalf("BuildsAborted = %d, want > 0", got)
	}
	// Every request is accounted for: nothing vanished between admission
	// and outcome classification.
	if total := rep.Served + rep.Degraded + rep.Shed + rep.Timeouts + rep.Errors + rep.ClientErr; total != rep.Sent {
		t.Fatalf("outcome accounting: %d classified of %d sent", total, rep.Sent)
	}
}

// TestWaitReady pins the readiness poller against a live and a dead server.
func TestWaitReady(t *testing.T) {
	sc := testScene("ready-test", 200)
	_, ts := testServer(t, sc, nil)
	if err := WaitReady(ts.URL, 5*time.Second); err != nil {
		t.Fatalf("WaitReady(live): %v", err)
	}
	dead := httptest.NewServer(nil)
	dead.Close()
	if err := WaitReady(dead.URL, 200*time.Millisecond); err == nil {
		t.Fatal("WaitReady succeeded against a closed server")
	}
}
