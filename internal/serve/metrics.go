package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"kdtune/internal/harness"
)

// Metrics is the server's counter set. Everything on the request path is a
// plain atomic; the only lock guards the per-tenant latency windows, taken
// once per completed request. The /metrics endpoint serialises a Snapshot.
type Metrics struct {
	// Admission ladder.
	Requests    atomic.Int64 // everything that reached a handler
	Admitted    atomic.Int64 // passed breaker + queue bound + got a slot
	Shed429     atomic.Int64 // per-tenant queue bound exceeded
	ShedBreaker atomic.Int64 // breaker open (503)
	Timeouts    atomic.Int64 // deadline expired before or during work (504)
	Panics      atomic.Int64 // handler panics recovered into typed 500s
	Errors      atomic.Int64 // other typed errors (500)

	// Outcome ladder for admitted requests.
	ServedOK         atomic.Int64
	DegradedStale    atomic.Int64 // served a previous generation from cache
	DegradedFallback atomic.Int64 // served a median-built fallback tree
	DegradedLowres   atomic.Int64 // served a reduced-resolution frame

	// Tree cache.
	CacheHits     atomic.Int64
	CacheMisses   atomic.Int64
	BuildsOK      atomic.Int64
	BuildsAborted atomic.Int64

	mu  sync.Mutex
	lat map[string]*latWindow
}

// latWindowSize bounds the per-tenant latency sample the percentiles are
// computed over; a ring of the most recent completions.
const latWindowSize = 1024

type latWindow struct {
	buf  []time.Duration
	next int
	full bool
}

// NewMetrics returns a zeroed metric set.
func NewMetrics() *Metrics {
	return &Metrics{lat: make(map[string]*latWindow)}
}

// ObserveLatency records one completed request's server-side latency for the
// tenant's percentile window.
func (m *Metrics) ObserveLatency(tenant string, d time.Duration) {
	m.mu.Lock()
	w := m.lat[tenant]
	if w == nil {
		w = &latWindow{buf: make([]time.Duration, latWindowSize)}
		m.lat[tenant] = w
	}
	w.buf[w.next] = d
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
	m.mu.Unlock()
}

// TenantLatency summarises one tenant's recent latency distribution.
type TenantLatency struct {
	N     int   `json:"n"`
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
}

// Snapshot is the JSON shape of /metrics.
type Snapshot struct {
	Requests    int64 `json:"requests"`
	Admitted    int64 `json:"admitted"`
	Shed429     int64 `json:"shed_429"`
	ShedBreaker int64 `json:"shed_breaker"`
	Timeouts    int64 `json:"timeouts"`
	Panics      int64 `json:"panics"`
	Errors      int64 `json:"errors"`

	ServedOK         int64 `json:"served_ok"`
	DegradedStale    int64 `json:"degraded_stale"`
	DegradedFallback int64 `json:"degraded_fallback"`
	DegradedLowres   int64 `json:"degraded_lowres"`

	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	BuildsOK      int64 `json:"builds_ok"`
	BuildsAborted int64 `json:"builds_aborted"`

	Tenants  map[string]TenantLatency `json:"tenants,omitempty"`
	Breakers map[string]string        `json:"breakers,omitempty"`
}

// Snap collects the counters and per-tenant percentiles. The percentile
// definition is harness.Percentile — the same estimator the bench statistics
// use, so a p99 here and a p99 in a bench report mean the same thing.
func (m *Metrics) Snap() Snapshot {
	s := Snapshot{
		Requests:    m.Requests.Load(),
		Admitted:    m.Admitted.Load(),
		Shed429:     m.Shed429.Load(),
		ShedBreaker: m.ShedBreaker.Load(),
		Timeouts:    m.Timeouts.Load(),
		Panics:      m.Panics.Load(),
		Errors:      m.Errors.Load(),

		ServedOK:         m.ServedOK.Load(),
		DegradedStale:    m.DegradedStale.Load(),
		DegradedFallback: m.DegradedFallback.Load(),
		DegradedLowres:   m.DegradedLowres.Load(),

		CacheHits:     m.CacheHits.Load(),
		CacheMisses:   m.CacheMisses.Load(),
		BuildsOK:      m.BuildsOK.Load(),
		BuildsAborted: m.BuildsAborted.Load(),

		Tenants: map[string]TenantLatency{},
	}
	m.mu.Lock()
	for tenant, w := range m.lat {
		sample := w.buf[:w.next]
		if w.full {
			sample = w.buf
		}
		ds := append([]time.Duration(nil), sample...)
		s.Tenants[tenant] = TenantLatency{
			N:     len(ds),
			P50NS: int64(harness.PercentileDuration(ds, 0.50)),
			P95NS: int64(harness.PercentileDuration(ds, 0.95)),
			P99NS: int64(harness.PercentileDuration(ds, 0.99)),
		}
	}
	m.mu.Unlock()
	return s
}
