package serve

import "sync/atomic"

// LogRecord is one completed request as the ring log remembers it.
type LogRecord struct {
	Seq      int64  `json:"seq"`
	Tenant   string `json:"tenant"`
	Path     string `json:"path"`
	Scene    string `json:"scene,omitempty"`
	Status   int    `json:"status"`
	Outcome  string `json:"outcome"`            // ok | degraded | shed | timeout | error
	Degraded string `json:"degraded,omitempty"` // rung of the ladder, when Outcome == degraded
	Err      string `json:"err,omitempty"`
	NS       int64  `json:"ns"` // wall latency inside the server
}

// RequestLog is a lock-free ring of the most recent requests. Writers claim a
// sequence number with one atomic add and publish the record with one atomic
// pointer store; there is no lock anywhere on the request path, so the log
// can sit inside the handler without becoming the contention point the
// metrics are supposed to diagnose. Readers snapshot racily — a record being
// overwritten mid-snapshot yields either the old or the new pointer, never a
// torn record, because records are immutable after publication.
type RequestLog struct {
	seq   atomic.Int64
	slots []atomic.Pointer[LogRecord]
}

// NewRequestLog returns a ring holding the last size records (minimum 16).
func NewRequestLog(size int) *RequestLog {
	if size < 16 {
		size = 16
	}
	return &RequestLog{slots: make([]atomic.Pointer[LogRecord], size)}
}

// Append publishes a record. The record must not be mutated afterwards.
func (l *RequestLog) Append(r *LogRecord) {
	r.Seq = l.seq.Add(1) - 1
	l.slots[r.Seq%int64(len(l.slots))].Store(r)
}

// Len reports how many records have ever been appended.
func (l *RequestLog) Len() int64 { return l.seq.Load() }

// Snapshot returns up to n of the most recent records, oldest first. Slots
// that were claimed but not yet published are skipped.
func (l *RequestLog) Snapshot(n int) []LogRecord {
	seq := l.seq.Load()
	if n <= 0 || int64(n) > int64(len(l.slots)) {
		n = len(l.slots)
	}
	if int64(n) > seq {
		n = int(seq)
	}
	out := make([]LogRecord, 0, n)
	for s := seq - int64(n); s < seq; s++ {
		r := l.slots[s%int64(len(l.slots))].Load()
		// A slot may hold an older (lapped) or newer record than s; keep
		// whatever is published — the log is best-effort recent history.
		if r != nil {
			out = append(out, *r)
		}
	}
	return out
}
