package parallel

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 7, 100, 1001} {
			seen := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForDefaultWorkers(t *testing.T) {
	var count atomic.Int64
	For(1000, 0, func(lo, hi int) { count.Add(int64(hi - lo)) })
	if count.Load() != 1000 {
		t.Fatalf("covered %d of 1000", count.Load())
	}
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

func TestForEach(t *testing.T) {
	n := 500
	var sum atomic.Int64
	ForEach(n, 4, func(i int) { sum.Add(int64(i)) })
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForGrainSequentialBelowGrain(t *testing.T) {
	calls := 0 // no atomics: must run on the caller goroutine in one chunk
	ForGrain(10, 8, 64, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("expected single chunk [0,10), got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected exactly one sequential chunk, got %d", calls)
	}
}

func TestForGrainChunksRespectGrain(t *testing.T) {
	var mu sync.Mutex
	sizes := []int{}
	ForGrain(1000, 4, 100, func(lo, hi int) {
		mu.Lock()
		sizes = append(sizes, hi-lo)
		mu.Unlock()
	})
	total := 0
	for _, s := range sizes {
		total += s
		if s < 100 && total != 1000 { // only the final remainder may be short
			t.Fatalf("chunk of size %d below grain", s)
		}
	}
	if total != 1000 {
		t.Fatalf("chunks cover %d of 1000", total)
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	var count atomic.Int64
	for i := 0; i < 1000; i++ {
		p.Spawn(func() { count.Add(1) })
	}
	p.Wait()
	if count.Load() != 1000 {
		t.Fatalf("ran %d of 1000 tasks", count.Load())
	}
	spawned, inline := p.Stats()
	if spawned+inline != 1000 {
		t.Fatalf("stats %d+%d != 1000", spawned, inline)
	}
}

func TestPoolRecursiveSpawnNoDeadlock(t *testing.T) {
	// Recursive fork-join like the node-level builder: every task spawns two
	// children down to a depth. With 2 workers most tasks must run inline;
	// the pool must neither deadlock nor lose tasks.
	p := NewPool(2)
	var count atomic.Int64
	var rec func(depth int)
	rec = func(depth int) {
		count.Add(1)
		if depth == 0 {
			return
		}
		var wg sync.WaitGroup
		wg.Add(2)
		p.Spawn(func() { defer wg.Done(); rec(depth - 1) })
		p.Spawn(func() { defer wg.Done(); rec(depth - 1) })
		wg.Wait()
	}
	rec(10)
	p.Wait()
	if want := int64(1<<11 - 1); count.Load() != want {
		t.Fatalf("ran %d tasks, want %d", count.Load(), want)
	}
}

func TestPoolWorkersBudget(t *testing.T) {
	p := NewPool(3)
	if p.Workers() != 3 {
		t.Fatalf("Workers = %d", p.Workers())
	}
	if NewPool(0).Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	// Concurrency never exceeds the slot budget (inline tasks run on
	// spawning goroutines, which are themselves workers or the caller; we
	// check only goroutine-backed tasks here).
	var cur, peak atomic.Int64
	q := NewPool(2)
	block := make(chan struct{})
	for i := 0; i < 16; i++ {
		go q.Spawn(func() {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			<-block
			cur.Add(-1)
		})
	}
	close(block)
	q.Wait()
}

func TestExclusiveScanMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for _, n := range []int{0, 1, 2, 100, 4095, 4096, 4097, 100000} {
		src := make([]int, n)
		for i := range src {
			src[i] = r.Intn(100) - 50
		}
		want := make([]int, n)
		sum := 0
		for i := 0; i < n; i++ {
			want[i] = sum
			sum += src[i]
		}
		got := make([]int, n)
		total := ExclusiveScan(got, src, 8)
		if total != sum {
			t.Fatalf("n=%d: total %d, want %d", n, total, sum)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: dst[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestExclusiveScanInPlace(t *testing.T) {
	n := 50000
	src := make([]int, n)
	for i := range src {
		src[i] = 1
	}
	total := ExclusiveScan(src, src, 4)
	if total != n {
		t.Fatalf("total = %d", total)
	}
	for i := 0; i < n; i++ {
		if src[i] != i {
			t.Fatalf("in-place scan wrong at %d: %d", i, src[i])
		}
	}
}

func TestExclusiveScanFloat(t *testing.T) {
	src := []float64{0.5, 1.5, 2.0}
	dst := make([]float64, 3)
	total := ExclusiveScan(dst, src, 2)
	if total != 4.0 || dst[0] != 0 || dst[1] != 0.5 || dst[2] != 2.0 {
		t.Fatalf("float scan wrong: %v total %v", dst, total)
	}
}

func TestExclusiveScanLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	ExclusiveScan(make([]int, 2), make([]int, 3), 1)
}

func TestQuickScanProperty(t *testing.T) {
	f := func(vals []int16, workers uint8) bool {
		src := make([]int, len(vals))
		for i, v := range vals {
			src[i] = int(v)
		}
		dst := make([]int, len(src))
		total := ExclusiveScan(dst, src, int(workers%8)+1)
		sum := 0
		for i, v := range src {
			if dst[i] != sum {
				return false
			}
			sum += v
		}
		return total == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReduce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got := Reduce(1000, workers, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
		if got != 999*1000/2 {
			t.Fatalf("workers=%d: sum = %d", workers, got)
		}
	}
	// Max-reduction with a non-trivial identity.
	vals := []int{3, 9, 1, 7, 9, 2}
	got := Reduce(len(vals), 3, -1<<62, func(i int) int { return vals[i] }, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
	if got != 9 {
		t.Fatalf("max = %d", got)
	}
	if Reduce(0, 4, 42, func(int) int { return 0 }, func(a, b int) int { return a + b }) != 42 {
		t.Fatal("empty reduce should return identity")
	}
}

func TestSortFuncMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	for _, n := range []int{0, 1, 2, 100, 8191, 8192, 8193, 100000} {
		for _, workers := range []int{1, 2, 7} {
			s := make([]int, n)
			for i := range s {
				s[i] = r.Intn(1000)
			}
			SortFunc(s, workers, func(a, b int) int { return a - b })
			for i := 1; i < n; i++ {
				if s[i-1] > s[i] {
					t.Fatalf("n=%d workers=%d: unsorted at %d", n, workers, i)
				}
			}
		}
	}
}

func TestSortFuncPreservesMultiset(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	n := 50000
	s := make([]int, n)
	counts := map[int]int{}
	for i := range s {
		s[i] = r.Intn(64)
		counts[s[i]]++
	}
	SortFunc(s, 8, func(a, b int) int { return a - b })
	for _, v := range s {
		counts[v]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("value %d count off by %d", k, c)
		}
	}
}

func TestSortFuncStructsByKey(t *testing.T) {
	type kv struct {
		k float64
		v int
	}
	r := rand.New(rand.NewSource(52))
	s := make([]kv, 30000)
	for i := range s {
		s[i] = kv{k: r.Float64(), v: i}
	}
	SortFunc(s, 4, func(a, b kv) int {
		switch {
		case a.k < b.k:
			return -1
		case a.k > b.k:
			return 1
		}
		return 0
	})
	for i := 1; i < len(s); i++ {
		if s[i-1].k > s[i].k {
			t.Fatal("struct sort broken")
		}
	}
}

func TestQuickSortProperty(t *testing.T) {
	f := func(vals []int16, workers uint8) bool {
		s := make([]int, len(vals))
		for i, v := range vals {
			s[i] = int(v)
		}
		SortFunc(s, int(workers%8)+1, func(a, b int) int { return a - b })
		for i := 1; i < len(s); i++ {
			if s[i-1] > s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolWaitWithoutTasks(t *testing.T) {
	p := NewPool(2)
	p.Wait() // must not block
	if s, i := p.Stats(); s != 0 || i != 0 {
		t.Fatal("phantom tasks recorded")
	}
}

func TestForGrainDefensiveGrain(t *testing.T) {
	var count atomic.Int64
	ForGrain(100, 2, 0, func(lo, hi int) { count.Add(int64(hi - lo)) })
	if count.Load() != 100 {
		t.Fatalf("covered %d of 100 with grain 0", count.Load())
	}
	ForGrain(0, 2, 8, func(lo, hi int) { t.Fatal("body called for empty range") })
}

func TestSortFuncEmptyAndSingle(t *testing.T) {
	SortFunc([]int{}, 4, func(a, b int) int { return a - b })
	s := []int{42}
	SortFunc(s, 4, func(a, b int) int { return a - b })
	if s[0] != 42 {
		t.Fatal("singleton mangled")
	}
}
