package parallel

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForChunksContract fuzzes the chunk-index contract over randomized
// (n, workers, grain): every index is covered exactly once, every chunk
// index is in [0, ChunkCount), chunk indices are dense, and chunk ranges
// are ordered by their index.
func TestForChunksContract(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for round := 0; round < 200; round++ {
		n := r.Intn(5000)
		workers := r.Intn(20) - 2 // includes 0 and negatives
		grain := r.Intn(300) - 10
		chunks := ChunkCount(n, workers, grain)

		seen := make([]int32, n)
		type span struct{ lo, hi int }
		spans := make([]span, chunks)
		var called atomic.Int32
		ForChunks(n, workers, grain, func(chunk, lo, hi int) {
			if chunk < 0 || chunk >= chunks {
				t.Errorf("n=%d w=%d g=%d: chunk %d outside [0,%d)", n, workers, grain, chunk, chunks)
				return
			}
			called.Add(1)
			spans[chunk] = span{lo, hi}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		if int(called.Load()) != chunks {
			t.Fatalf("n=%d w=%d g=%d: body ran %d times, ChunkCount says %d", n, workers, grain, called.Load(), chunks)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d w=%d g=%d: index %d visited %d times", n, workers, grain, i, c)
			}
		}
		prev := 0
		for ci, s := range spans {
			if s.lo != prev || s.hi <= s.lo {
				t.Fatalf("n=%d w=%d g=%d: chunk %d spans [%d,%d), want lo=%d", n, workers, grain, ci, s.lo, s.hi, prev)
			}
			prev = s.hi
		}
		if prev != n {
			t.Fatalf("n=%d w=%d g=%d: chunks end at %d, want %d", n, workers, grain, prev, n)
		}
	}
}

func TestForChunksRespectsGrain(t *testing.T) {
	var spans sync.Map
	ForChunks(10000, 16, 1000, func(chunk, lo, hi int) { spans.Store(chunk, hi-lo) })
	spans.Range(func(_, v any) bool {
		if v.(int) < 1000 {
			t.Fatalf("chunk of %d elements below grain 1000", v.(int))
		}
		return true
	})
	if got := ChunkCount(10, 8, 64); got != 1 {
		t.Fatalf("ChunkCount(10,8,64) = %d, want 1 (whole range below grain)", got)
	}
}

// TestReduceAssociativeOnly proves the chunk-indexed Reduce no longer needs
// a commutative merge: partials are merged in ascending chunk order, so an
// order-sensitive (but associative) merge like string concatenation must
// reproduce the sequential result for every worker count.
func TestReduceAssociativeOnly(t *testing.T) {
	n := 500
	want := ""
	for i := 0; i < n; i++ {
		want += fmt.Sprintf("%d,", i)
	}
	for _, workers := range []int{1, 2, 3, 7, 16, 0, -4} {
		got := Reduce(n, workers, "",
			func(i int) string { return fmt.Sprintf("%d,", i) },
			func(a, b string) string { return a + b })
		if got != want {
			t.Fatalf("workers=%d: concat reduce is not in index order", workers)
		}
	}
}

func TestSplitBudget(t *testing.T) {
	for _, tc := range []struct {
		workers, outerN, wantOuter, wantInner int
	}{
		{8, 1, 1, 8},
		{8, 3, 3, 2},
		{8, 8, 8, 1},
		{8, 100, 8, 1},
		{1, 10, 1, 1},
		{0, 0, 0, 0}, // defaults: just check invariants below
		{-3, 5, 0, 0},
	} {
		outer, inner := SplitBudget(tc.workers, tc.outerN)
		if tc.wantOuter != 0 && (outer != tc.wantOuter || inner != tc.wantInner) {
			t.Fatalf("SplitBudget(%d,%d) = (%d,%d), want (%d,%d)",
				tc.workers, tc.outerN, outer, inner, tc.wantOuter, tc.wantInner)
		}
		norm := normWorkers(tc.workers)
		if outer < 1 || inner < 1 || outer*inner > norm {
			t.Fatalf("SplitBudget(%d,%d) = (%d,%d) oversubscribes budget %d",
				tc.workers, tc.outerN, outer, inner, norm)
		}
	}
}

func TestSplitBudgetBias(t *testing.T) {
	for _, tc := range []struct {
		workers, outerN, bias, wantOuter, wantInner int
	}{
		{8, 8, 0, 8, 1}, // bias 0 == SplitBudget
		{8, 8, 1, 4, 2},
		{8, 8, 2, 2, 4},
		{8, 8, 3, 1, 8},
		{8, 8, 9, 1, 8}, // bias beyond the floor saturates at outer=1
		{8, 3, 1, 2, 4}, // halving rounds up: 3 -> 2
		{8, 3, 2, 1, 8},
		{1, 10, 3, 1, 1},
		{6, 5, 1, 3, 2},
	} {
		outer, inner := SplitBudgetBias(tc.workers, tc.outerN, tc.bias)
		if outer != tc.wantOuter || inner != tc.wantInner {
			t.Fatalf("SplitBudgetBias(%d,%d,%d) = (%d,%d), want (%d,%d)",
				tc.workers, tc.outerN, tc.bias, outer, inner, tc.wantOuter, tc.wantInner)
		}
		if outer < 1 || inner < 1 || outer*inner > normWorkers(tc.workers) {
			t.Fatalf("SplitBudgetBias(%d,%d,%d) = (%d,%d) oversubscribes budget",
				tc.workers, tc.outerN, tc.bias, outer, inner)
		}
	}
	// Neutral bias must agree with SplitBudget over a sweep.
	for workers := 1; workers <= 16; workers++ {
		for outerN := 1; outerN <= 20; outerN++ {
			o1, i1 := SplitBudget(workers, outerN)
			o2, i2 := SplitBudgetBias(workers, outerN, 0)
			if o1 != o2 || i1 != i2 {
				t.Fatalf("bias 0 diverges at (%d,%d): (%d,%d) vs (%d,%d)",
					workers, outerN, o1, i1, o2, i2)
			}
		}
	}
}

// TestStressScanReducePool hammers the primitives with randomized shapes
// and concurrent outer callers; run under -race (CI does) to surface
// scheduling-coupling bugs.
func TestStressScanReducePool(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 6
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for round := 0; round < rounds; round++ {
				n := 1 + r.Intn(30000)
				workers := 1 + r.Intn(12)
				src := make([]int, n)
				for i := range src {
					src[i] = r.Intn(200) - 100
				}
				wantSum := 0
				want := make([]int, n)
				for i, v := range src {
					want[i] = wantSum
					wantSum += v
				}
				dst := make([]int, n)
				if total := ExclusiveScan(dst, src, workers); total != wantSum {
					t.Errorf("scan total %d, want %d", total, wantSum)
					return
				}
				for i := range want {
					if dst[i] != want[i] {
						t.Errorf("scan[%d] = %d, want %d", i, dst[i], want[i])
						return
					}
				}
				got := Reduce(n, workers, 0,
					func(i int) int { return src[i] },
					func(a, b int) int { return a + b })
				if got != wantSum {
					t.Errorf("reduce %d, want %d", got, wantSum)
					return
				}
				p := NewPool(workers)
				var count atomic.Int64
				tasks := 1 + r.Intn(200)
				for i := 0; i < tasks; i++ {
					p.Spawn(func() { count.Add(1) })
				}
				p.Wait()
				if int(count.Load()) != tasks {
					t.Errorf("pool ran %d of %d tasks", count.Load(), tasks)
					return
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()
}

// TestForChunksNestedBudget exercises the nested-loop pattern the in-place
// builder uses: an outer ForEach over nodes wrapping inner ForChunks calls
// with a split budget, with per-chunk counting and offset-based writes.
func TestForChunksNestedBudget(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	outerN := 20
	sizes := make([]int, outerN)
	for i := range sizes {
		sizes[i] = r.Intn(20000)
	}
	outerW, innerW := SplitBudget(8, outerN)
	results := make([]int, outerN)
	ForEach(outerN, outerW, func(ni int) {
		n := sizes[ni]
		counts := make([]int, ChunkCount(n, innerW, 256))
		ForChunks(n, innerW, 256, func(chunk, lo, hi int) {
			counts[chunk] = hi - lo
		})
		total := 0
		for _, c := range counts {
			total += c
		}
		results[ni] = total
	})
	for i, got := range results {
		if got != sizes[i] {
			t.Fatalf("nested loop %d covered %d of %d", i, got, sizes[i])
		}
	}
}
