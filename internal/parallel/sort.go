package parallel

import (
	"slices"
	"sync"
)

// sortSequentialCutoff is the subproblem size below which SortFunc falls
// back to the standard library's pattern-defeating quicksort; smaller
// pieces do not amortise goroutine dispatch.
const sortSequentialCutoff = 8192

// SortFunc sorts s by cmp using a parallel merge sort across the given
// worker budget. The sort is not stable. It exists for the large per-node
// event arrays of the SAH sweep: sorting is the dominant cost of the
// Wald–Havran style builders, and the upper tree levels sort arrays with
// millions of entries.
//
// A panic in cmp (on any half, goroutine or caller side) is captured, every
// worker joins, and the first panic is re-raised on the caller as a
// *WorkerPanic — no half is left sorting s after SortFunc returns.
func SortFunc[T any](s []T, workers int, cmp func(a, b T) int) {
	SortFuncCancel(nil, s, workers, cmp)
}

// SortFuncCancel is SortFunc with cooperative cancellation: subproblems that
// have not started when cc is canceled are skipped and pending merges are
// abandoned (in-flight leaf sorts drain). After a canceled call s is an
// unspecified permutation of its elements — callers must check cc.Canceled()
// before relying on the order. A nil cc disables cancellation at no cost.
//
// Cancellation matters here because the sort is the single longest
// uninterruptible stretch of a build: the sort-once builder sorts six events
// per primitive in one call, so without a cancellation point a guarded
// build's deadline could not fire until millions of comparisons finished.
func SortFuncCancel[T any](cc *Canceler, s []T, workers int, cmp func(a, b T) int) {
	if cc.Canceled() {
		return
	}
	workers = normWorkers(workers)
	if workers == 1 || len(s) < sortSequentialCutoff {
		slices.SortFunc(s, cmp)
		return
	}
	buf := make([]T, len(s))
	var box panicBox
	mergeSort(cc, s, buf, workers, cmp, &box)
	box.rethrow()
}

// mergeSort recursively splits s, sorting halves on up to `workers` workers
// and merging into buf. Panics from either half land in box (never unwind
// past a pending join), and a poisoned box — or a canceled cc — skips
// further work.
func mergeSort[T any](cc *Canceler, s, buf []T, workers int, cmp func(a, b T) int, box *panicBox) {
	if box.wp.Load() != nil || cc.Canceled() {
		return
	}
	if workers <= 1 || len(s) < sortSequentialCutoff {
		func() {
			defer box.recoverInto(-1)
			slices.SortFunc(s, cmp)
		}()
		return
	}
	mid := len(s) / 2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mergeSort(cc, s[:mid], buf[:mid], workers/2, cmp, box)
	}()
	mergeSort(cc, s[mid:], buf[mid:], workers-workers/2, cmp, box)
	wg.Wait()

	if box.wp.Load() != nil || cc.Canceled() {
		return
	}
	func() {
		defer box.recoverInto(-1)
		merge(s[:mid], s[mid:], buf, cmp)
		copy(s, buf)
	}()
}

// merge combines two sorted runs into dst (len(dst) == len(a)+len(b)).
func merge[T any](a, b, dst []T, cmp func(x, y T) int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) <= 0 {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	for i < len(a) {
		dst[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		dst[k] = b[j]
		j++
		k++
	}
}
