//go:build parallelcheck

package parallel

import (
	"fmt"
	"math"
	"sync/atomic"
)

// chunkChecks enables the invariant layer: chunk dispatch assertions in
// ForChunks and scan-vs-sequential cross-checks in ExclusiveScan. Build with
// -tags parallelcheck to turn it on (CI does, for the race jobs); the
// default build compiles all of it away.
const chunkChecks = true

// wrapChunkBody instruments a ForChunks body with the chunk-contract
// assertions: every chunk index is in range, dispatched exactly once, and
// its [lo, hi) range agrees with the published geometry (chunks tile [0, n)
// disjointly in ascending index order). When a Canceler is threaded through
// the dispatch, verify additionally asserts that it was consulted at least
// once per chunk — the static kdlint guard rule requires call sites to
// thread a Canceler, and this runtime check proves the substrate actually
// polls it at chunk granularity, so the two layers cross-validate. The
// returned verify func must run after the dispatch completes.
func wrapChunkBody(n, chunks, size int, cc *Canceler, body func(chunk, lo, hi int)) (func(chunk, lo, hi int), func()) {
	checksBefore := cc.checkCount()
	calls := make([]int32, chunks)
	wrapped := func(chunk, lo, hi int) {
		if chunk < 0 || chunk >= chunks {
			panic(fmt.Sprintf("parallel: chunk index %d outside [0,%d)", chunk, chunks))
		}
		if atomic.AddInt32(&calls[chunk], 1) != 1 {
			panic(fmt.Sprintf("parallel: chunk %d dispatched more than once", chunk))
		}
		if lo != chunk*size || lo >= hi || hi > n || (hi-lo != size && hi != n) {
			panic(fmt.Sprintf("parallel: chunk %d range [%d,%d) inconsistent with geometry n=%d size=%d", chunk, lo, hi, n, size))
		}
		body(chunk, lo, hi)
	}
	verify := func() {
		for c := range calls {
			if got := atomic.LoadInt32(&calls[c]); got != 1 {
				panic(fmt.Sprintf("parallel: chunk %d ran %d times, want exactly once", c, got))
			}
		}
		if last := (chunks - 1) * size; last >= n || chunks*size < n {
			panic(fmt.Sprintf("parallel: %d chunks of size %d do not tile [0,%d)", chunks, size, n))
		}
		if cc != nil {
			if got := cc.checkCount() - checksBefore; got < int64(chunks) {
				panic(fmt.Sprintf("parallel: canceler checked %d times across %d chunks, want at least once per chunk", got, chunks))
			}
		}
	}
	return wrapped, verify
}

// verifyScan cross-checks a parallel exclusive scan against the sequential
// reference. Integer scans must match exactly; float scans tolerate the
// reassociation error of the blocked algorithm.
func verifyScan[T Number](src, dst []T, total T) {
	var sum T
	for i, v := range src {
		if !scanNear(float64(dst[i]), float64(sum)) {
			panic(fmt.Sprintf("parallel: scan mismatch at %d: got %v, want %v", i, dst[i], sum))
		}
		sum += v
	}
	if !scanNear(float64(total), float64(sum)) {
		panic(fmt.Sprintf("parallel: scan total mismatch: got %v, want %v", total, sum))
	}
}

// scanNear compares two scan values with a relative tolerance that is zero
// for integers (exact float64 representations compare equal) and absorbs
// reassociation rounding for floats.
func scanNear(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
