package parallel

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLinkContextCancelPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var cc Canceler
	stop := LinkContext(ctx, &cc)
	defer stop()

	if cc.Canceled() {
		t.Fatal("canceled before ctx ended")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !cc.Canceled() {
		if time.Now().After(deadline) {
			t.Fatal("canceler never fired after ctx cancel")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cc.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("reason = %v, want context.Canceled", err)
	}
}

func TestLinkContextDeadlinePropagates(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	var cc Canceler
	stop := LinkContext(ctx, &cc)
	defer stop()

	deadline := time.Now().Add(2 * time.Second)
	for !cc.Canceled() {
		if time.Now().After(deadline) {
			t.Fatal("canceler never fired after ctx deadline")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cc.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("reason = %v, want context.DeadlineExceeded", err)
	}
}

func TestLinkContextStopReleasesWithoutCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var cc Canceler
	stop := LinkContext(ctx, &cc)
	stop() // watcher released; later ctx cancellation must not touch cc
	cancel()
	time.Sleep(5 * time.Millisecond)
	if cc.Canceled() {
		t.Fatal("canceler fired after stop")
	}
}

func TestLinkContextBackgroundIsNoop(t *testing.T) {
	var cc Canceler
	stop := LinkContext(context.Background(), &cc)
	stop()
	if cc.Canceled() {
		t.Fatal("background context canceled the canceler")
	}
	// nil canceler and nil ctx must not panic either.
	LinkContext(context.Background(), nil)()
}

func TestLinkContextCancelAbortsFor(t *testing.T) {
	// A linked canceler actually drains a running ForCancel region: the
	// body spins until cancellation, so the dispatch only returns because
	// the context fired.
	ctx, cancel := context.WithCancel(context.Background())
	var cc Canceler
	stop := LinkContext(ctx, &cc)
	defer stop()

	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	doneCh := make(chan struct{})
	go func() {
		ForCancel(&cc, 64, 4, func(lo, hi int) {
			for !cc.Canceled() {
				time.Sleep(100 * time.Microsecond)
			}
		})
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("ForCancel did not drain after linked context cancel")
	}
}
