package parallel

import (
	"sync"

	"kdtune/internal/faultinject"
)

// chunkGeometry is the single source of truth for how a loop over [0, n) is
// tiled into contiguous chunks: every chunk-dispatching primitive in this
// package derives its schedule from here, so callers never have to
// reverse-engineer chunk boundaries. grain <= 1 imposes no minimum chunk
// size; grain > 1 caps the chunk count so each chunk holds at least grain
// elements (except possibly the final remainder). workers <= 0 selects
// DefaultWorkers().
func chunkGeometry(n, workers, grain int) (chunks, size int) {
	if n <= 0 {
		return 0, 0
	}
	workers = normWorkers(workers)
	if grain > 1 {
		maxChunks := (n + grain - 1) / grain
		if workers > maxChunks {
			workers = maxChunks
		}
	}
	if workers > n {
		workers = n
	}
	size = (n + workers - 1) / workers
	return (n + size - 1) / size, size
}

// ChunkCount returns the number of chunks ForChunks dispatches for the same
// (n, workers, grain) triple. Callers sizing per-chunk result arrays must
// use this instead of re-deriving the geometry themselves.
func ChunkCount(n, workers, grain int) int {
	chunks, _ := chunkGeometry(n, workers, grain)
	return chunks
}

// ForChunks divides [0, n) into contiguous chunks — at most one per worker,
// each at least grain elements long (grain <= 1 disables the floor) — and
// runs body(chunk, lo, hi) on each concurrently. The chunk index is passed
// explicitly so per-chunk outputs can be written without any implicit
// contract between the caller's arithmetic and the scheduler's: chunk is
// always in [0, ChunkCount(n, workers, grain)) and chunks are numbered in
// ascending range order. A single chunk runs inline on the caller.
// workers <= 0 selects DefaultWorkers().
//
// A panic in any chunk body is recovered on the worker, the first one wins,
// and it is re-raised on the caller as a *WorkerPanic after all workers have
// joined — a crashing chunk can never leave detached goroutines writing into
// caller-owned storage.
func ForChunks(n, workers, grain int, body func(chunk, lo, hi int)) {
	ForChunksCancel(nil, n, workers, grain, body)
}

// ForChunksCancel is ForChunks with cooperative cancellation: chunks that
// have not started when cc is canceled are skipped (in-flight chunks drain).
// After a canceled dispatch the per-chunk outputs are an unspecified mix of
// written and untouched — callers must check cc.Canceled() before consuming
// them. A nil cc disables cancellation at no cost.
func ForChunksCancel(cc *Canceler, n, workers, grain int, body func(chunk, lo, hi int)) {
	chunks, size := chunkGeometry(n, workers, grain)
	if chunks == 0 || cc.Canceled() {
		return
	}
	var verify func()
	if chunkChecks {
		body, verify = wrapChunkBody(n, chunks, size, cc, body)
	}
	if chunks == 1 {
		runChunk(nil, cc, 0, 0, n, body)
		if verify != nil && !cc.Canceled() {
			verify()
		}
		return
	}
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		go func(c, lo, hi int) {
			defer wg.Done()
			runChunk(&box, cc, c, lo, hi, body)
		}(c, lo, hi)
	}
	wg.Wait()
	box.rethrow()
	// The invariant check must only run on a clean pass: a canceled dispatch
	// legitimately skips chunks, and a rethrown panic must not be masked by
	// the checker's own "chunk ran 0 times" failure.
	if verify != nil && !cc.Canceled() {
		verify()
	}
}

// runChunk executes one chunk body with the cancellation gate and the fault
// probe. With a box it recovers panics into it (worker goroutines); without
// one the panic propagates on the caller's stack (single-chunk inline path),
// wrapped so both paths deliver the same *WorkerPanic type.
func runChunk(box *panicBox, cc *Canceler, c, lo, hi int, body func(chunk, lo, hi int)) {
	if box != nil {
		defer box.recoverInto(c)
	} else {
		defer func() {
			if r := recover(); r != nil {
				panic(AsWorkerPanic(c, r))
			}
		}()
	}
	if cc.Canceled() {
		return
	}
	faultinject.Check(faultinject.SiteParallelChunk, c)
	body(c, lo, hi)
}

// For divides the index range [0, n) into one contiguous chunk per worker
// and runs body(lo, hi) on each chunk concurrently. It is the analogue of
// "#pragma omp parallel for" with static scheduling. workers <= 0 selects
// DefaultWorkers(); small n degrades gracefully to fewer chunks or a plain
// sequential call. Callers that need to know which chunk they are in must
// use ForChunks instead of deriving it from lo.
func For(n, workers int, body func(lo, hi int)) {
	ForChunksCancel(nil, n, workers, 1, func(_, lo, hi int) { body(lo, hi) })
}

// ForCancel is For with cooperative cancellation (see ForChunksCancel).
func ForCancel(cc *Canceler, n, workers int, body func(lo, hi int)) {
	ForChunksCancel(cc, n, workers, 1, func(_, lo, hi int) { body(lo, hi) })
}

// ForGrain is For with an explicit minimum chunk size (grain). Ranges
// shorter than grain run sequentially; larger ranges are split into chunks
// of at least grain elements, at most one chunk per worker. The grain guards
// against parallelisation overhead dominating tiny loops, the same purpose
// OpenMP's schedule chunk size serves.
func ForGrain(n, workers, grain int, body func(lo, hi int)) {
	ForChunksCancel(nil, n, workers, grain, func(_, lo, hi int) { body(lo, hi) })
}

// ForGrainCancel is ForGrain with cooperative cancellation.
func ForGrainCancel(cc *Canceler, n, workers, grain int, body func(lo, hi int)) {
	ForChunksCancel(cc, n, workers, grain, func(_, lo, hi int) { body(lo, hi) })
}

// ForEach runs body(i) for every i in [0, n) using For with per-chunk
// dispatch. Convenience wrapper for loops whose body is already coarse.
func ForEach(n, workers int, body func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// SplitBudget divides a worker budget between an outer loop of outerN
// independent tasks and the parallelism available inside each task, so that
// nesting parallel loops cannot oversubscribe the budget (outer·inner <=
// workers always holds). Once the outer loop alone saturates the budget the
// inner loops run sequentially. workers <= 0 selects DefaultWorkers().
func SplitBudget(workers, outerN int) (outer, inner int) {
	return SplitBudgetBias(workers, outerN, 0)
}

// SplitBudgetBias is SplitBudget with a discrete inner-parallelism bias:
// each +1 of bias halves the outer width (rounding up, floor 1) and hands
// the freed budget to the inner loops. bias 0 is SplitBudget exactly; the
// useful range is small (0..3 in the builders' registered tunable). The
// bias exists because the neutral split — outer first, leftovers inner — is
// a heuristic, not an optimum: frontiers of few huge nodes profit from
// deeper within-node parallelism than the neutral split grants, and where
// that trade-off lies is a property of the machine, so it is searched
// online instead of hard-coded. The oversubscription invariant
// outer·inner <= workers holds for every bias.
func SplitBudgetBias(workers, outerN, bias int) (outer, inner int) {
	workers = normWorkers(workers)
	if outerN < 1 {
		outerN = 1
	}
	outer = workers
	if outer > outerN {
		outer = outerN
	}
	for ; bias > 0 && outer > 1; bias-- {
		outer = (outer + 1) / 2
	}
	inner = workers / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}
