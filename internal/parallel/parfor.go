package parallel

import "sync"

// For divides the index range [0, n) into one contiguous chunk per worker
// and runs body(lo, hi) on each chunk concurrently. It is the analogue of
// "#pragma omp parallel for" with static scheduling. workers <= 0 selects
// DefaultWorkers(); small n degrades gracefully to fewer chunks or a plain
// sequential call.
func For(n, workers int, body func(lo, hi int)) {
	workers = normWorkers(workers)
	if n <= 0 {
		return
	}
	if workers == 1 || n == 1 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForGrain is For with an explicit minimum chunk size (grain). Ranges
// shorter than grain run sequentially; larger ranges are split into chunks
// of at least grain elements, at most one chunk per worker. The grain guards
// against parallelisation overhead dominating tiny loops, the same purpose
// OpenMP's schedule chunk size serves.
func ForGrain(n, workers, grain int, body func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	if n <= grain {
		if n > 0 {
			body(0, n)
		}
		return
	}
	workers = normWorkers(workers)
	maxChunks := (n + grain - 1) / grain
	if workers > maxChunks {
		workers = maxChunks
	}
	For(n, workers, body)
}

// ForEach runs body(i) for every i in [0, n) using For with per-chunk
// dispatch. Convenience wrapper for loops whose body is already coarse.
func ForEach(n, workers int, body func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}
