package parallel

// Number captures the element types the scan and reduction primitives
// operate on. The builders only ever scan counts (int) and SAH partial sums
// (float64).
type Number interface {
	~int | ~int32 | ~int64 | ~float64
}

// ExclusiveScan computes the exclusive prefix sum of src into dst (dst[i] =
// src[0] + ... + src[i-1], dst[0] = 0) and returns the total sum. dst and
// src must have equal length; dst may alias src.
//
// For inputs past a fixed cutoff the classic two-pass blocked algorithm is
// used: pass one computes per-block sums in parallel, a short sequential
// scan turns them into block offsets, and pass two writes each block's
// prefixes in parallel. This is the "sequence of parallel prefix operations"
// substrate of the nested and in-place builders. Worker panics propagate as
// *WorkerPanic after all workers join (see ForChunks).
func ExclusiveScan[T Number](dst, src []T, workers int) T {
	return ExclusiveScanCancel(nil, dst, src, workers)
}

// ExclusiveScanCancel is ExclusiveScan with cooperative cancellation: blocks
// not yet started when cc is canceled are skipped, which leaves dst and the
// returned total meaningless — callers must check cc.Canceled() before using
// either. A nil cc disables cancellation.
func ExclusiveScanCancel[T Number](cc *Canceler, dst, src []T, workers int) T {
	if len(dst) != len(src) {
		panic("parallel: ExclusiveScan length mismatch")
	}
	n := len(src)
	if n == 0 || cc.Canceled() {
		var zero T
		return zero
	}
	workers = normWorkers(workers)
	const cutoff = 4096
	if workers == 1 || n < cutoff {
		var sum T
		for i := 0; i < n; i++ {
			v := src[i]
			dst[i] = sum
			sum += v
		}
		return sum
	}

	var ref []T
	if chunkChecks {
		ref = append([]T(nil), src...) // dst may alias src
	}

	blocks := workers
	blockLen := (n + blocks - 1) / blocks
	sums := make([]T, blocks)

	ForCancel(cc, blocks, workers, func(bLo, bHi int) {
		for b := bLo; b < bHi; b++ {
			lo, hi := b*blockLen, (b+1)*blockLen
			if lo >= n {
				continue
			}
			if hi > n {
				hi = n
			}
			var s T
			for i := lo; i < hi; i++ {
				s += src[i]
			}
			sums[b] = s
		}
	})
	if cc.Canceled() {
		var zero T
		return zero
	}

	var total T
	for b := 0; b < blocks; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}

	ForCancel(cc, blocks, workers, func(bLo, bHi int) {
		for b := bLo; b < bHi; b++ {
			lo, hi := b*blockLen, (b+1)*blockLen
			if lo >= n {
				continue
			}
			if hi > n {
				hi = n
			}
			run := sums[b]
			for i := lo; i < hi; i++ {
				v := src[i]
				dst[i] = run
				run += v
			}
		}
	})
	if chunkChecks && !cc.Canceled() {
		verifyScan(ref, dst, total)
	}
	return total
}

// Reduce combines f(i) for all i in [0, n) with the associative merge
// function, starting from identity. Each worker folds a contiguous chunk
// locally and the per-chunk partials are merged sequentially in ascending
// chunk order, so merge is called O(workers) times and — because the merge
// order is fixed — the result is deterministic for any worker count as long
// as merge is associative (commutativity is not required). Worker panics
// propagate as *WorkerPanic after all workers join.
func Reduce[T any](n, workers int, identity T, f func(i int) T, merge func(a, b T) T) T {
	return ReduceCancel(nil, n, workers, identity, f, merge)
}

// ReduceCancel is Reduce with cooperative cancellation. A canceled reduction
// returns a meaningless partial fold — callers must check cc.Canceled()
// before using the result. A nil cc disables cancellation.
func ReduceCancel[T any](cc *Canceler, n, workers int, identity T, f func(i int) T, merge func(a, b T) T) T {
	if n <= 0 || cc.Canceled() {
		return identity
	}
	chunks := ChunkCount(n, workers, 1)
	if chunks == 1 {
		acc := identity
		for i := 0; i < n; i++ {
			acc = merge(acc, f(i))
		}
		return acc
	}
	partials := make([]T, chunks)
	ForChunksCancel(cc, n, workers, 1, func(chunk, lo, hi int) {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = merge(acc, f(i))
		}
		partials[chunk] = acc
	})
	acc := identity
	for _, p := range partials {
		acc = merge(acc, p)
	}
	return acc
}
