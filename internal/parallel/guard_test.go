package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"
)

// recoverWorkerPanic runs f and returns the *WorkerPanic it panics with,
// failing the test if f returns normally or panics with anything else.
func recoverWorkerPanic(t *testing.T, f func()) *WorkerPanic {
	t.Helper()
	var wp *WorkerPanic
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("no panic propagated")
			}
			var ok bool
			if wp, ok = r.(*WorkerPanic); !ok {
				t.Fatalf("panic value is %T (%v), want *WorkerPanic", r, r)
			}
		}()
		f()
	}()
	return wp
}

func TestForChunksPanicPropagatesTyped(t *testing.T) {
	const n, workers = 1000, 8
	var ran atomic.Int64
	wp := recoverWorkerPanic(t, func() {
		ForChunks(n, workers, 1, func(chunk, lo, hi int) {
			ran.Add(1)
			if chunk == 3 {
				panic("boom in chunk 3")
			}
		})
	})
	if wp.Chunk != 3 {
		t.Errorf("Chunk = %d, want 3", wp.Chunk)
	}
	if wp.Value != "boom in chunk 3" {
		t.Errorf("Value = %v", wp.Value)
	}
	if len(wp.Stack) == 0 {
		t.Errorf("no stack captured")
	}
	// All chunks had started or finished before the panic reached us — the
	// join-before-rethrow contract means no detached goroutine survives.
	if got := ran.Load(); got < 1 || got > workers {
		t.Errorf("ran = %d chunks, want 1..%d", got, workers)
	}
}

func TestForChunksInlinePanicWrapped(t *testing.T) {
	// A single chunk runs inline on the caller; the panic must still arrive
	// as the same typed value.
	wp := recoverWorkerPanic(t, func() {
		ForChunks(10, 1, 1, func(chunk, lo, hi int) { panic("inline") })
	})
	if wp.Chunk != 0 || wp.Value != "inline" {
		t.Errorf("got chunk=%d value=%v", wp.Chunk, wp.Value)
	}
}

func TestWorkerPanicUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	wp := recoverWorkerPanic(t, func() {
		ForChunks(100, 4, 1, func(chunk, lo, hi int) { panic(sentinel) })
	})
	if !errors.Is(wp, sentinel) {
		t.Errorf("errors.Is(wp, sentinel) = false; Unwrap must expose error panic values")
	}
	// Double wrapping must not happen: re-panicking a *WorkerPanic keeps it.
	if got := AsWorkerPanic(7, wp); got != wp {
		t.Errorf("AsWorkerPanic re-wrapped an existing *WorkerPanic")
	}
}

func TestForChunksFirstPanicWins(t *testing.T) {
	// All chunks panic; exactly one value must come out, and it must carry a
	// valid chunk index.
	const n, workers = 64, 8
	wp := recoverWorkerPanic(t, func() {
		ForChunks(n, workers, 1, func(chunk, lo, hi int) {
			panic(fmt.Sprintf("chunk %d", chunk))
		})
	})
	if wp.Chunk < 0 || wp.Chunk >= workers {
		t.Errorf("Chunk = %d out of range", wp.Chunk)
	}
	if want := fmt.Sprintf("chunk %d", wp.Chunk); wp.Value != want {
		t.Errorf("Value %v does not match Chunk %d", wp.Value, wp.Chunk)
	}
}

func TestCancelerSemantics(t *testing.T) {
	var nilC *Canceler
	if nilC.Canceled() {
		t.Fatalf("nil Canceler reports canceled")
	}
	if nilC.Err() != nil {
		t.Fatalf("nil Canceler has non-nil Err")
	}

	var cc Canceler
	if cc.Canceled() || cc.Err() != nil {
		t.Fatalf("fresh Canceler not clean")
	}
	first, second := errors.New("first"), errors.New("second")
	if !cc.Cancel(first) {
		t.Fatalf("first Cancel lost")
	}
	if cc.Cancel(second) {
		t.Fatalf("second Cancel won")
	}
	if !cc.Canceled() || cc.Err() != first {
		t.Fatalf("state after cancel: canceled=%v err=%v", cc.Canceled(), cc.Err())
	}
	cc.Reset()
	if cc.Canceled() || cc.Err() != nil {
		t.Fatalf("Reset did not re-arm")
	}
	if !cc.Cancel(second) {
		t.Fatalf("Cancel after Reset lost")
	}
	if cc.Err() != second {
		t.Fatalf("Err after re-cancel = %v", cc.Err())
	}
}

func TestForChunksCancelSkipsRemaining(t *testing.T) {
	// Pre-canceled: nothing runs at all.
	var cc Canceler
	cc.Cancel(errors.New("stop"))
	ran := 0
	ForChunksCancel(&cc, 1000, 8, 1, func(chunk, lo, hi int) { ran++ })
	if ran != 0 {
		t.Fatalf("pre-canceled dispatch ran %d chunks", ran)
	}

	// Cancel from inside chunk 0 of a wide grain-forced dispatch: with 1
	// worker the chunks run one after another on sequentialised goroutine
	// scheduling, but the contract is only "not-yet-started chunks are
	// skipped" — so assert the weaker, always-true property: every chunk
	// that DID run started before it observed the cancel flag.
	cc.Reset()
	var ranChunks atomic.Int64
	ForChunksCancel(&cc, 1024, 8, 1, func(chunk, lo, hi int) {
		ranChunks.Add(1)
		cc.Cancel(errors.New("from body"))
	})
	if !cc.Canceled() {
		t.Fatalf("cancel from body lost")
	}
	if got := ranChunks.Load(); got < 1 || got > 8 {
		t.Fatalf("ran %d chunks, want 1..workers", got)
	}
}

func TestExclusiveScanCancelPreCanceled(t *testing.T) {
	var cc Canceler
	cc.Cancel(errors.New("stop"))
	src := make([]int, 10000)
	for i := range src {
		src[i] = 1
	}
	dst := make([]int, len(src))
	if got := ExclusiveScanCancel(&cc, dst, src, 8); got != 0 {
		t.Fatalf("pre-canceled scan returned %d, want zero", got)
	}
}

func TestReduceCancelPreCanceled(t *testing.T) {
	var cc Canceler
	cc.Cancel(errors.New("stop"))
	got := ReduceCancel(&cc, 10000, 8, 0, func(i int) int { return 1 }, func(a, b int) int { return a + b })
	if got != 0 {
		t.Fatalf("pre-canceled reduce returned %d, want identity", got)
	}
}

func TestReducePanicPropagates(t *testing.T) {
	// Reduce runs f inside chunk workers; a panic there must surface typed.
	src := make([]int, 100000)
	wp := recoverWorkerPanic(t, func() {
		ReduceCancel(nil, len(src), 8, 0, func(i int) int {
			if i == 50000 {
				panic("mid-reduce")
			}
			return src[i]
		}, func(a, b int) int { return a + b })
	})
	if wp.Value != "mid-reduce" {
		t.Errorf("Value = %v", wp.Value)
	}
}

func TestPoolPanicRethrownAtWait(t *testing.T) {
	p := NewPool(4)
	// First Spawn into an empty pool always takes a goroutine slot, so the
	// panic is recovered on the worker and stored for Wait.
	p.Spawn(func() { panic("task 0") })
	var wp *WorkerPanic
	func() {
		defer func() {
			if r := recover(); r != nil {
				wp, _ = r.(*WorkerPanic)
			}
		}()
		p.Wait()
	}()
	if wp == nil {
		t.Fatalf("Wait did not rethrow the task panic as *WorkerPanic")
	}
	if wp.Value != "task 0" {
		t.Errorf("Value = %v", wp.Value)
	}
	// Pool stays usable after a drained panic.
	var done atomic.Int64
	p.Spawn(func() { done.Add(1) })
	p.Wait()
	if done.Load() != 1 {
		t.Fatalf("pool unusable after drained panic")
	}
}

func TestPoolPanicHandler(t *testing.T) {
	p := NewPool(2)
	var got atomic.Pointer[WorkerPanic]
	p.SetPanicHandler(func(wp *WorkerPanic) { got.CompareAndSwap(nil, wp) })

	// Guarantee the goroutine path: first Spawn into an empty pool always
	// takes a slot.
	p.Spawn(func() { panic("handled") })
	p.Wait() // must NOT panic: handler consumed it
	wp := got.Load()
	if wp == nil {
		t.Fatalf("handler never called")
	}
	if wp.Value != "handled" {
		t.Errorf("Value = %v", wp.Value)
	}
}

func TestPoolInlinePanicOnCaller(t *testing.T) {
	p := NewPool(1)
	block := make(chan struct{})
	p.Spawn(func() { <-block }) // occupy the only slot
	defer func() {
		close(block)
		p.Wait()
	}()
	// Saturated: this Spawn runs inline and the panic propagates on our own
	// stack (the caller's recovery point owns it — Builder wraps recursion
	// in exactly such a recover).
	defer func() {
		if r := recover(); r == nil {
			t.Errorf("inline panic did not propagate on caller stack")
		}
	}()
	p.Spawn(func() { panic("inline task") })
}

func TestSortFuncPanicPropagates(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s := make([]int, 200000) // above the parallel cutoff
	for i := range s {
		s[i] = r.Int()
	}
	wp := recoverWorkerPanic(t, func() {
		// Every comparison panics; the first recovered one wins and must
		// come out only after both halves have joined (under -race, a
		// detached goroutine still writing s would be caught here).
		SortFunc(s, 8, func(a, b int) int { panic("cmp panic") })
	})
	if wp.Value != "cmp panic" {
		t.Errorf("Value = %v", wp.Value)
	}
}

func TestSortFuncStillSortsAfterPanicRecovery(t *testing.T) {
	// A fresh SortFunc on the same substrate must work right after one
	// aborted — no poisoned shared state.
	func() {
		defer func() { recover() }()
		SortFunc(make([]int, 100000), 4, func(a, b int) int { panic("x") })
	}()
	r := rand.New(rand.NewSource(7))
	s := make([]int, 100000)
	for i := range s {
		s[i] = r.Intn(1000)
	}
	SortFunc(s, 4, func(a, b int) int { return a - b })
	if !slices.IsSorted(s) {
		t.Fatalf("not sorted after prior panic")
	}
}
