//go:build parallelcheck

package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"kdtune/internal/faultinject"
)

// TestInvariantLayerActive makes the -tags parallelcheck CI job fail loudly
// if the invariant layer is ever wired out; the checks themselves run inside
// every ForChunks/ExclusiveScan call of the whole suite.
func TestInvariantLayerActive(t *testing.T) {
	if !chunkChecks {
		t.Fatal("built with parallelcheck but chunkChecks is false")
	}
	// A scan above the parallel cutoff exercises the scan cross-check.
	src := make([]float64, 10000)
	for i := range src {
		src[i] = float64(i%17) * 0.25
	}
	dst := make([]float64, len(src))
	ExclusiveScan(dst, src, 8)
}

// TestCancelerCheckedPerChunk pins the runtime half of the guard-discipline
// contract: a Canceler threaded through ForChunksCancel is consulted at
// least once per dispatched chunk (wrapChunkBody asserts the same thing on
// every clean dispatch; this test also pins the counter delta directly).
func TestCancelerCheckedPerChunk(t *testing.T) {
	var cc Canceler
	const n, workers = 1000, 8
	chunks := ChunkCount(n, workers, 1)
	before := cc.checkCount()
	var ran atomic.Int64
	ForChunksCancel(&cc, n, workers, 1, func(_, lo, hi int) { ran.Add(int64(hi - lo)) })
	if ran.Load() != n {
		t.Fatalf("ran %d iterations, want %d", ran.Load(), n)
	}
	if got := cc.checkCount() - before; got < int64(chunks) {
		t.Fatalf("canceler checked %d times across %d chunks, want at least once per chunk", got, chunks)
	}
}

// TestCancelerCheckedUnderInjection cancels mid-dispatch while an injected
// delay holds every chunk open: chunks that started before the cancel drain,
// later ones are skipped, and each skipped chunk must still have observed a
// cancellation check (the skip IS the check).
func TestCancelerCheckedUnderInjection(t *testing.T) {
	in := faultinject.Activate(faultinject.Fault{
		Site: faultinject.SiteParallelChunk, Index: -1, Kind: faultinject.KindDelay,
		Delay: 2 * time.Millisecond,
	})
	defer in.Deactivate()

	var cc Canceler
	const n, workers = 64, 4
	chunks := ChunkCount(n, workers, 1)
	before := cc.checkCount()
	reason := errors.New("test cancel")
	var ran atomic.Int64
	go func() {
		time.Sleep(time.Millisecond)
		cc.Cancel(reason)
	}()
	ForChunksCancel(&cc, n, workers, 1, func(_, lo, hi int) { ran.Add(1) })
	if !cc.Canceled() || !errors.Is(cc.Err(), reason) {
		t.Fatalf("canceler not canceled with the expected reason: %v", cc.Err())
	}
	if got := cc.checkCount() - before; got < int64(chunks) {
		t.Fatalf("canceler checked %d times across %d dispatched chunks, want at least once per chunk", got, chunks)
	}
	_ = ran.Load() // how many chunks drained is timing-dependent; the check count is the invariant
}
