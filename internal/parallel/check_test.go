//go:build parallelcheck

package parallel

import "testing"

// TestInvariantLayerActive makes the -tags parallelcheck CI job fail loudly
// if the invariant layer is ever wired out; the checks themselves run inside
// every ForChunks/ExclusiveScan call of the whole suite.
func TestInvariantLayerActive(t *testing.T) {
	if !chunkChecks {
		t.Fatal("built with parallelcheck but chunkChecks is false")
	}
	// A scan above the parallel cutoff exercises the scan cross-check.
	src := make([]float64, 10000)
	for i := range src {
		src[i] = float64(i%17) * 0.25
	}
	dst := make([]float64, len(src))
	ExclusiveScan(dst, src, 8)
}
