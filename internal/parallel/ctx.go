package parallel

import (
	"context"
	"sync"
)

// LinkContext ties a Canceler to a context: when ctx is canceled or its
// deadline passes, cc.Cancel(ctx.Err()) fires, so every parallel primitive
// threading cc drains at its next chunk boundary. This is the bridge a
// request-scoped caller (an HTTP handler carrying an end-to-end deadline)
// uses to push context cancellation into the fork-join substrate without
// the substrate importing context itself.
//
// The returned stop function releases the watcher goroutine; it must be
// called exactly once, after the parallel region the Canceler covers has
// joined. Stopping does not un-cancel cc. A ctx that can never be canceled
// (nil Done channel) installs no watcher and stop is a no-op.
func LinkContext(ctx context.Context, cc *Canceler) (stop func()) {
	if ctx == nil || cc == nil {
		return func() {}
	}
	done := ctx.Done()
	if done == nil {
		return func() {}
	}
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-done:
			cc.Cancel(ctx.Err())
		case <-quit:
		}
	}()
	return func() {
		close(quit)
		wg.Wait()
	}
}
