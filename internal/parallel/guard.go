package parallel

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// WorkerPanic is the typed error a panicking worker goroutine is converted
// into. The dispatching primitive (ForChunks and friends, Pool.Spawn,
// SortFunc) recovers the panic on the worker, records the chunk it happened
// in and the worker's stack, and re-raises it on the caller's goroutine —
// turning a process-killing goroutine crash into a panic an enclosing
// recover (kdtree.Builder.BuildGuarded) can contain and classify.
type WorkerPanic struct {
	Chunk int    // chunk index the worker was processing; -1 when not chunked
	Value any    // the original panic value
	Stack []byte // the panicking goroutine's stack at recovery time
}

func (e *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: worker panic in chunk %d: %v", e.Chunk, e.Value)
}

// Unwrap exposes a panic value that is itself an error (e.g. an injected
// fault sentinel) to errors.Is/As chains.
func (e *WorkerPanic) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// AsWorkerPanic wraps a recovered panic value into a *WorkerPanic, capturing
// the current goroutine's stack. A value that already is a *WorkerPanic is
// returned unchanged so re-raised panics keep their original chunk and stack.
func AsWorkerPanic(chunk int, r any) *WorkerPanic {
	if wp, ok := r.(*WorkerPanic); ok {
		return wp
	}
	return &WorkerPanic{Chunk: chunk, Value: r, Stack: debug.Stack()}
}

// panicBox collects the first worker panic of one dispatch.
type panicBox struct {
	wp atomic.Pointer[WorkerPanic]
}

// recoverInto converts an in-flight panic (if any) into a WorkerPanic and
// stores it unless another worker got there first. Must be called deferred.
func (b *panicBox) recoverInto(chunk int) {
	if r := recover(); r != nil {
		b.wp.CompareAndSwap(nil, AsWorkerPanic(chunk, r))
	}
}

// rethrow re-raises the first captured panic on the calling goroutine.
func (b *panicBox) rethrow() {
	if wp := b.wp.Load(); wp != nil {
		panic(wp)
	}
}

// Canceler is a lightweight cooperative cancellation flag shared between the
// initiator of a parallel region and its workers. Cancel is one-shot per
// Reset cycle: the first reason wins and is retained. Canceled is a single
// atomic load, cheap enough to check at every chunk or tree-node boundary;
// a nil *Canceler is valid and never canceled, so un-guarded callers pay
// nothing.
//
// Cancellation is cooperative draining, not preemption: a chunk that is
// already running completes; chunks (and tree nodes) that would start after
// the flag is set are skipped. A primitive that was canceled mid-dispatch
// leaves its outputs in an unspecified state — callers must check Canceled
// before consuming results.
type Canceler struct {
	canceled atomic.Bool
	mu       sync.Mutex
	reason   error

	// checks counts Canceled calls, but only under -tags parallelcheck
	// (chunkChecks folds the increment away otherwise). The invariant layer
	// uses it to assert that every dispatched chunk observed at least one
	// cancellation check — the guarantee BuildGuarded's abort latency
	// depends on.
	checks atomic.Int64
}

// Cancel requests cancellation with the given reason. Only the first call
// since the last Reset takes effect; it reports whether this call was the
// one that canceled.
func (c *Canceler) Cancel(reason error) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.canceled.Load() {
		return false
	}
	c.reason = reason
	c.canceled.Store(true)
	return true
}

// Canceled reports whether cancellation has been requested. Safe on a nil
// receiver (never canceled) and safe to call concurrently from any worker.
func (c *Canceler) Canceled() bool {
	if c == nil {
		return false
	}
	if chunkChecks {
		c.checks.Add(1)
	}
	return c.canceled.Load()
}

// checkCount returns the number of Canceled calls observed so far. It is
// meaningful only under -tags parallelcheck; default builds never increment
// the counter. Safe on a nil receiver.
func (c *Canceler) checkCount() int64 {
	if c == nil {
		return 0
	}
	return c.checks.Load()
}

// Err returns the reason passed to the winning Cancel call, or nil while not
// canceled.
func (c *Canceler) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.canceled.Load() {
		return nil
	}
	return c.reason
}

// Reset re-arms the canceler for a new region. The caller must guarantee no
// worker from the previous region is still running (the usual fork-join
// structure: all primitives join before returning).
func (c *Canceler) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reason = nil
	c.canceled.Store(false)
}
