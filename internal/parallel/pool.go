// Package parallel provides the shared-memory parallel primitives that the
// kD-tree builders are written against. It plays the role OpenMP plays in
// the paper's C++ implementation:
//
//   - Pool.Spawn mirrors "#pragma omp task" (recursive subtree tasks),
//   - For/ForGrain mirror "#pragma omp parallel for" (loops over primitives
//     and rays),
//   - ExclusiveScan/Reduce mirror the parallel prefix operations of the
//     nested and in-place builders (Choi et al.),
//   - per-node sync.Mutex in the lazy builder mirrors "#pragma omp critical".
//
// All primitives take an explicit worker count so the autotuner and the
// platform-simulation harness (Figure 7c) can vary the parallelism budget
// per invocation instead of being pinned to GOMAXPROCS.
//
// Fault containment: every goroutine this package launches (ForChunks
// workers, SortFunc halves, Pool tasks) recovers panics and funnels the
// first one into a typed *WorkerPanic that is either re-raised on the
// caller after all workers join, or handed to a Pool panic handler. No
// primitive can crash the process from a detached goroutine, and none
// returns while a worker it started is still running.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"kdtune/internal/faultinject"
)

// DefaultWorkers returns the parallelism budget used when a caller passes a
// non-positive worker count: the scheduler's GOMAXPROCS value.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// normWorkers clamps a requested worker count into [1, reasonable].
func normWorkers(n int) int {
	if n <= 0 {
		return DefaultWorkers()
	}
	return n
}

// Pool is a bounded task pool for recursive fork-join parallelism. It mimics
// OpenMP's task model: Spawn either runs the task on a fresh goroutine (if a
// worker slot is free) or inline on the caller (if the pool is saturated).
// Running inline when saturated keeps recursive builders deadlock-free and
// caps goroutine count near the worker budget, like OpenMP's task cutoff.
//
// A Pool is reusable; Wait blocks until all spawned tasks (including tasks
// spawned transitively from inside tasks) have finished.
//
// A panic in a task that got its own goroutine is recovered there and either
// delivered to the handler installed with SetPanicHandler or stored and
// re-raised by Wait. A panic in a task that ran inline propagates on the
// calling goroutine's own stack, exactly like any function call — the
// caller's enclosing recovery point (or the handler via Wait, if the unwind
// reaches a joined frame) owns it.
type Pool struct {
	slots      chan struct{}
	wg         sync.WaitGroup
	spawned    atomic.Int64 // tasks that actually got their own goroutine
	inline     atomic.Int64 // tasks that ran inline due to saturation
	dispatched atomic.Int64 // faultinject ordinal for SitePoolTask
	box        panicBox
	onPanic    func(*WorkerPanic)
}

// NewPool creates a pool with the given number of concurrent worker slots.
// workers <= 0 selects DefaultWorkers().
func NewPool(workers int) *Pool {
	return &Pool{slots: make(chan struct{}, normWorkers(workers))}
}

// Workers returns the pool's worker-slot budget.
func (p *Pool) Workers() int { return cap(p.slots) }

// SetPanicHandler installs fn as the sink for panics recovered on pool
// goroutines, replacing the default store-and-rethrow-in-Wait behaviour.
// fn may be called concurrently from multiple tasks. Must be set before any
// Spawn races with it (typically right after NewPool).
func (p *Pool) SetPanicHandler(fn func(*WorkerPanic)) { p.onPanic = fn }

// Spawn runs task, concurrently if a worker slot is available and otherwise
// inline on the calling goroutine. It is safe to call Spawn from inside a
// task.
func (p *Pool) Spawn(task func()) {
	if faultinject.Active() {
		// The probe fires on the dispatching goroutine, before the task is
		// scheduled or run: an injected panic here models a fault at task
		// dispatch and propagates on the spawner's own stack, where its
		// enclosing recovery point owns it. Panicking on the task goroutine
		// before the task body runs would instead strand any join the task
		// was meant to signal (a deadlock no real task panic can cause,
		// since a task's own defers register before its body can fail).
		faultinject.Check(faultinject.SitePoolTask, int(p.dispatched.Add(1))-1)
	}
	select {
	case p.slots <- struct{}{}:
		seq := int(p.spawned.Add(1)) - 1
		p.wg.Add(1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					wp := AsWorkerPanic(seq, r)
					if p.onPanic != nil {
						p.onPanic(wp)
					} else {
						p.box.wp.CompareAndSwap(nil, wp)
					}
				}
				<-p.slots
				p.wg.Done()
			}()
			task()
		}()
	default:
		p.inline.Add(1)
		task()
	}
}

// Wait blocks until every task spawned so far has completed, then re-raises
// the first recovered task panic (as *WorkerPanic) if no panic handler is
// installed. The caller must ensure no further Spawn races with Wait (the
// usual fork-join pattern: recursion has returned, so all Spawns are
// transitively complete once outstanding goroutines drain).
func (p *Pool) Wait() {
	p.wg.Wait()
	if wp := p.box.wp.Swap(nil); wp != nil {
		panic(wp)
	}
}

// Stats reports how many tasks ran on their own goroutine and how many ran
// inline because the pool was saturated. Useful in tests and ablations.
func (p *Pool) Stats() (spawned, inline int64) {
	return p.spawned.Load(), p.inline.Load()
}
