//go:build !parallelcheck

package parallel

// chunkChecks disables the invariant layer in default builds; see
// check_on.go. All call sites guard with `if chunkChecks`, so the stubs
// below are dead code the compiler removes.
const chunkChecks = false

func wrapChunkBody(n, chunks, size int, cc *Canceler, body func(chunk, lo, hi int)) (func(chunk, lo, hi int), func()) {
	return body, func() {}
}

func verifyScan[T Number](src, dst []T, total T) {}
