package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// jsonDiagnostic is the machine-readable form emitted by kdlint -json: one
// object per finding, newline-delimited inside a single JSON array, stable
// field order via struct tags.
type jsonDiagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// WriteJSON renders diags as an indented JSON array (an empty array for no
// findings, never null) so downstream tooling can parse CI output without
// special cases.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Rule:    d.Rule,
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// Relativize rewrites every diagnostic's filename relative to dir (when
// possible), giving stable, repo-rooted paths in terminal and JSON output.
func Relativize(diags []Diagnostic, dir string) {
	for i := range diags {
		if rel, err := filepath.Rel(dir, diags[i].Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}
