package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"kdtune/internal/lint"
	"kdtune/internal/lint/arena"
	"kdtune/internal/lint/atomics"
	"kdtune/internal/lint/ctxflow"
	"kdtune/internal/lint/determinism"
	"kdtune/internal/lint/guard"
	"kdtune/internal/lint/hotpath"
	"kdtune/internal/lint/linttest"
	"kdtune/internal/lint/locks"
	"kdtune/internal/lint/resource"
	"kdtune/internal/lint/tunable"
)

const fixtureRoot = "kdtune/internal/lint/testdata/src/"

// AllRules assembles the production rule set, mirroring cmd/kdlint.
func allRules() []lint.Rule {
	return []lint.Rule{
		determinism.Rule(), guard.Rule(), arena.Rule(), hotpath.Rule(), tunable.Rule(),
		ctxflow.Rule, atomics.Rule, locks.Rule, resource.Rule,
	}
}

// dataflowConfig rescopes the four CFG/dataflow rules onto their fixture
// packages, with the same protocol tables the fixture comments describe.
func dataflowConfig() *lint.Config {
	const lockfx = fixtureRoot + "lockfx"
	const resfx = fixtureRoot + "resfx"
	cfg := lint.DefaultConfig()
	cfg.CtxFlowPackages = []string{fixtureRoot + "ctxfx"}
	cfg.AtomicsPackages = []string{fixtureRoot + "atomfx"}
	cfg.LocksPackages = []string{lockfx}
	cfg.LockOrder = []string{lockfx + ".outer.mu<" + lockfx + ".inner.mu"}
	cfg.LockMethods = map[string]string{lockfx + ".table.get": lockfx + ".table.mu"}
	cfg.ResourcePackages = []string{resfx}
	cfg.Resources = []lint.ResourceSpec{{
		Name:           "conn",
		Acquire:        []string{resfx + ".pool.Get", resfx + ".pool.GetErr"},
		Release:        []string{resfx + ".pool.Put", resfx + ".conn.Close"},
		ConsumeOnStore: true,
	}}
	cfg.Latches = []lint.LatchSpec{{
		Type: resfx + ".latch",
		Fill: []string{resfx + ".latch.publish"},
	}}
	return cfg
}

func TestDeterminismRule(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.DeterminismPackages = []string{fixtureRoot + "detfx"}
	linttest.Run(t, fixtureRoot+"detfx", cfg, []lint.Rule{determinism.Rule()})
}

// TestGuardRule needs no rescoping: the fixture imports the real parallel
// and kdtree packages, so the default config's dispatch and entry tables
// apply as-is.
func TestGuardRule(t *testing.T) {
	linttest.Run(t, fixtureRoot+"guardfx", lint.DefaultConfig(), []lint.Rule{guard.Rule()})
}

func TestArenaRule(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.ArenaPackages = []string{fixtureRoot + "arenafx"}
	linttest.Run(t, fixtureRoot+"arenafx", cfg, []lint.Rule{arena.Rule()})
}

// TestHotpathRule: the rule is driven by //kdlint:hotpath markers, not
// package scoping, so the default config applies.
func TestHotpathRule(t *testing.T) {
	linttest.Run(t, fixtureRoot+"hotfx", lint.DefaultConfig(), []lint.Rule{hotpath.Rule()})
}

// TestTunableRule rescopes TunablePackages onto the fixture; the dispatch
// and SAH argument-position tables are checked against the real signatures
// the fixture imports.
func TestTunableRule(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.TunablePackages = []string{fixtureRoot + "tunablefx"}
	linttest.Run(t, fixtureRoot+"tunablefx", cfg, []lint.Rule{tunable.Rule()})
}

// TestTunableRuleOutOfScope pins the scoping: the same fixture is silent
// when not listed in TunablePackages.
func TestTunableRuleOutOfScope(t *testing.T) {
	pkgs, err := lint.Load("", []string{fixtureRoot + "tunablefx"}, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lint.DefaultConfig() // scopes point at the real repo packages
	for _, d := range lint.Run(pkgs, cfg, []lint.Rule{tunable.Rule()}) {
		t.Errorf("out-of-scope finding: %s", d)
	}
}

// TestPragmaEngine checks that malformed pragmas are diagnosed, reasonless
// pragmas suppress nothing, and valid pragmas suppress the line below.
func TestPragmaEngine(t *testing.T) {
	linttest.Run(t, fixtureRoot+"pragmafx", lint.DefaultConfig(), []lint.Rule{guard.Rule()})
}

// TestRulesCleanOnFixturesOutOfScope pins the scoping logic: determinism
// and arena rules must stay silent on packages not listed in their scope,
// no matter what the code does.
func TestRulesCleanOutOfScope(t *testing.T) {
	pkgs, err := lint.Load("", []string{fixtureRoot + "detfx", fixtureRoot + "arenafx"}, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lint.DefaultConfig() // scopes point at the real repo packages, not the fixtures
	for _, d := range lint.Run(pkgs, cfg, []lint.Rule{determinism.Rule(), arena.Rule()}) {
		t.Errorf("out-of-scope finding: %s", d)
	}
}

// TestLoadTestVariant exercises the -test loading path: the internal test
// variant replaces the plain package and type-checks test files against
// bracket-variant export data.
func TestLoadTestVariant(t *testing.T) {
	pkgs, err := lint.Load("", []string{"kdtune/internal/sah"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1 (variant replaces plain)", len(pkgs))
	}
	p := pkgs[0]
	if p.ForTest != "kdtune/internal/sah" {
		t.Errorf("ForTest = %q, want kdtune/internal/sah", p.ForTest)
	}
	if p.PkgPath() != "kdtune/internal/sah" {
		t.Errorf("PkgPath = %q, want the plain path", p.PkgPath())
	}
	hasTestFile := false
	for _, f := range p.Files {
		if name := p.Fset.Position(f.Pos()).Filename; filepath.Base(name) == "sah_test.go" {
			hasTestFile = true
		}
	}
	if !hasTestFile {
		t.Error("test variant does not include sah_test.go")
	}
}

// TestCtxflowRule: the fixture imports the real parallel and kdtree
// packages, so the default guard/link tables apply; only the scope is
// moved onto the fixture.
func TestCtxflowRule(t *testing.T) {
	linttest.Run(t, fixtureRoot+"ctxfx", dataflowConfig(), []lint.Rule{ctxflow.Rule})
}

func TestAtomicsRule(t *testing.T) {
	linttest.Run(t, fixtureRoot+"atomfx", dataflowConfig(), []lint.Rule{atomics.Rule})
}

func TestLocksRule(t *testing.T) {
	linttest.Run(t, fixtureRoot+"lockfx", dataflowConfig(), []lint.Rule{locks.Rule})
}

func TestResourceRule(t *testing.T) {
	linttest.Run(t, fixtureRoot+"resfx", dataflowConfig(), []lint.Rule{resource.Rule})
}

// TestDataflowRulesOutOfScope pins the scoping: under the default config
// (whose scopes point at the real repo packages) all four fixtures are
// silent no matter what their code does.
func TestDataflowRulesOutOfScope(t *testing.T) {
	pkgs, err := lint.Load("", []string{
		fixtureRoot + "ctxfx", fixtureRoot + "atomfx",
		fixtureRoot + "lockfx", fixtureRoot + "resfx",
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	rules := []lint.Rule{ctxflow.Rule, atomics.Rule, locks.Rule, resource.Rule}
	for _, d := range lint.Run(pkgs, lint.DefaultConfig(), rules) {
		t.Errorf("out-of-scope finding: %s", d)
	}
}

// TestDataflowJSONGolden pins the machine output for the dataflow rule
// names (ctxflow.*, atomics.*, locks.*, resource.*) the same way
// TestJSONGolden does for the AST rules.
func TestDataflowJSONGolden(t *testing.T) {
	pkgs, err := lint.Load("", []string{
		fixtureRoot + "ctxfx", fixtureRoot + "atomfx",
		fixtureRoot + "lockfx", fixtureRoot + "resfx",
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	rules := []lint.Rule{ctxflow.Rule, atomics.Rule, locks.Rule, resource.Rule}
	diags := lint.Run(pkgs, dataflowConfig(), rules)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	lint.Relativize(diags, root)
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "dataflowfx.golden.json")
	if os.Getenv("KDLINT_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with KDLINT_UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output differs from golden file %s:\ngot:\n%s\nwant:\n%s\n(regenerate with KDLINT_UPDATE_GOLDEN=1)", golden, buf.Bytes(), want)
	}
}

// TestJSONGolden pins the machine-readable output format end to end: load
// a fixture, run the full rule set, relativize paths to the module root,
// and compare byte-for-byte with the committed golden file.
func TestJSONGolden(t *testing.T) {
	pkgs, err := lint.Load("", []string{fixtureRoot + "detfx"}, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lint.DefaultConfig()
	cfg.DeterminismPackages = []string{fixtureRoot + "detfx"}
	diags := lint.Run(pkgs, cfg, allRules())
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	lint.Relativize(diags, root)
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "detfx.golden.json")
	if os.Getenv("KDLINT_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with KDLINT_UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output differs from golden file %s:\ngot:\n%s\nwant:\n%s\n(regenerate with KDLINT_UPDATE_GOLDEN=1)", golden, buf.Bytes(), want)
	}
}
