package lint

import (
	"go/ast"
	"go/types"
)

// Callee resolves the function or method a call expression invokes, seeing
// through parentheses and explicit generic instantiation. It returns nil
// for calls of function-typed variables, conversions, and builtins — the
// dynamic cases a static call-site rule cannot attribute to a package.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(f.X)
			continue
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
			continue
		}
		break
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// FuncPkgPath returns the import path of the package declaring fn ("" for
// builtins and universe functions).
func FuncPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// RecvTypeName returns the name of fn's receiver type (pointers stripped),
// or "" for a package-level function.
func RecvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := NamedOf(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// NamedOf returns the named type behind t, stripping pointers and aliases,
// or nil if t is not (a pointer to) a named type.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// CalleeKey renders fn in the form the dataflow rule tables use:
// "<pkgpath>.<Func>" for package-level functions and
// "<pkgpath>.<Type>.<Method>" for methods (pointer receivers stripped).
// It returns "" for nil and for functions without a package.
func CalleeKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if recv := RecvTypeName(fn); recv != "" {
		return fn.Pkg().Path() + "." + recv + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// IsNilIdent reports whether e is the predeclared nil (after parens) — used
// to flag dispatch calls that formally accept a Canceler but thread none.
func IsNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
