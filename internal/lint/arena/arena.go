// Package arena checks pooled-arena alias hygiene in the packages that
// recycle build arenas (Config.ArenaPackages). An arena's slices are owned
// by the pool: after putArena they will be handed to another build and
// overwritten. An alias is therefore only safe while it provably stays
// inside the package, where the stack discipline of the builder scopes its
// lifetime. Two categories police the package's public surface:
//
//	arena.return — an exported function or method returns a slice/pointer
//	               derived from an arena field
//	arena.store  — an arena-derived slice/pointer is stored into a
//	               package-level variable or a field of an exported type,
//	               where it outlives the build that produced it
//
// The one legitimate crossing — Builder.finish retiring an arena from the
// pool and transferring ownership into the Tree — is documented at the site
// with //kdlint:allow arena.store, which is exactly the kind of
// load-bearing comment this rule exists to force.
package arena

import (
	"go/ast"
	"go/token"
	"go/types"

	"kdtune/internal/lint"
)

// Rule returns the arena rule.
func Rule() lint.Rule {
	return lint.Rule{
		Name:  "arena",
		Doc:   "flag pooled-arena aliases crossing the package's public surface",
		Check: check,
	}
}

func check(p *lint.Pass) {
	if !p.InArenaScope() {
		return
	}
	info := p.Pkg.Info

	isArenaType := func(t types.Type) bool {
		n := lint.NamedOf(t)
		if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != p.Pkg.PkgPath() {
			return false
		}
		for _, name := range p.Cfg.ArenaTypes {
			if n.Obj().Name() == name {
				return true
			}
		}
		return false
	}

	// containsArenaSel reports whether e contains a selection of a slice-
	// or pointer-typed field off an arena-typed value. len/cap arguments
	// are skipped: they read a length, not an alias.
	containsArenaSel := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
						return false
					}
				}
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || found {
				return !found
			}
			xt, ok := info.Types[sel.X]
			if !ok || !isArenaType(xt.Type) {
				return true
			}
			if st, ok := info.Types[ast.Expr(sel)]; ok {
				switch st.Type.Underlying().(type) {
				case *types.Slice, *types.Pointer:
					found = true
				}
			}
			return !found
		})
		return found
	}

	// derives reports whether evaluating e yields an alias of arena
	// storage — the syntactic taint this AST-level rule tracks. The
	// expression must itself have alias-capable type (slice or pointer) or
	// be a composite literal carrying a tainted element; len(a.nodes) or
	// a.nodes[i] produce values, not aliases, and stay quiet. One hop only:
	// slicing and addressing keep the taint, passing through a variable
	// drops it, which keeps the rule quiet on the builder's legal internal
	// stack-discipline windows.
	var derives func(e ast.Expr) bool
	compositeDerives := func(cl *ast.CompositeLit) bool {
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if derives(elt) {
				return true
			}
		}
		return false
	}
	derives = func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if cl, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
				return compositeDerives(cl)
			}
		}
		if cl, ok := e.(*ast.CompositeLit); ok {
			return compositeDerives(cl)
		}
		t := typeOf(info, e)
		if t == nil {
			return false
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Pointer:
			return containsArenaSel(e)
		}
		return false
	}

	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if recvIsArena(info, fd, isArenaType) {
				continue // the arena's own methods are the pooling machinery
			}
			exportedSurface := exportedFunc(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ReturnStmt:
					if !exportedSurface {
						return true
					}
					for _, res := range n.Results {
						if derives(res) {
							p.Reportf("arena.return", res.Pos(),
								"%s returns a value aliasing pooled arena storage: the pool recycles it after the build; copy it out or return an owning structure", fd.Name.Name)
						}
					}
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						if i >= len(n.Lhs) || !derives(rhs) {
							continue
						}
						switch lhs := n.Lhs[i].(type) {
						case *ast.Ident:
							if obj, ok := info.Uses[lhs].(*types.Var); ok && obj.Parent() == p.Pkg.Types.Scope() {
								p.Reportf("arena.store", n.Pos(),
									"package variable %s captures pooled arena storage, which outlives the build that filled it", lhs.Name)
							}
						case *ast.SelectorExpr:
							base := lint.NamedOf(typeOf(info, lhs.X))
							if base != nil && base.Obj().Exported() && !isArenaType(base) {
								p.Reportf("arena.store", n.Pos(),
									"field %s of exported type %s captures pooled arena storage: the pool recycles it; transfer ownership explicitly (and document with //kdlint:allow arena.store) or copy", lhs.Sel.Name, base.Obj().Name())
							}
						}
					}
				}
				return true
			})
		}
	}
}

// recvIsArena reports whether fd is a method on an arena type.
func recvIsArena(info *types.Info, fd *ast.FuncDecl, isArena func(types.Type) bool) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return isArena(typeOf(info, fd.Recv.List[0].Type))
}

// exportedFunc reports whether fd is reachable from outside the package: an
// exported package-level function, or an exported method on an exported
// type.
func exportedFunc(info *types.Info, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	n := lint.NamedOf(typeOf(info, fd.Recv.List[0].Type))
	return n != nil && n.Obj().Exported()
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
