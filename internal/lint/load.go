package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for rule checks.
type Package struct {
	Path    string // import path as reported by go list (test variants keep their "[pkg.test]" suffix)
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	ForTest string // for test variants, the import path of the package under test
}

// PkgPath returns the import path rules should scope on: the type-checker's
// package path, which for an internal test variant is the plain path of the
// package under test (the "[pkg.test]" suffix is a go tool naming
// convention, stripped before type checking), so a package's invariants
// also hold for its internal test variant.
func (p *Package) PkgPath() string { return p.Types.Path() }

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
}

// Load lists the patterns with the go tool and type-checks every matched
// package from source. Dependencies are resolved from compiler export data
// (`go list -export`), so loading needs one `go list` invocation and no
// compilation of the packages under analysis themselves.
//
// dir is the working directory for the go tool (""; the process's). With
// includeTests, test variants replace their plain packages and external
// test packages are loaded too.
func Load(dir string, patterns []string, includeTests bool) ([]*Package, error) {
	args := []string{"list", "-export", "-deps", "-json"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	byPath := map[string]*listPkg{}
	var order []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		byPath[lp.ImportPath] = lp
		order = append(order, lp)
	}

	// Select the packages to analyze: non-dep, non-stdlib matches of the
	// patterns. With -test, go list emits the plain package, its internal
	// test variant "pkg [pkg.test]", the external "pkg_test [pkg.test]",
	// and a synthesized "pkg.test" main; analyze the variants (which
	// contain the plain sources plus the test files) and skip the plain
	// duplicate and the synthesized main.
	hasTestVariant := map[string]bool{}
	for _, lp := range order {
		if lp.ForTest != "" && !strings.HasSuffix(strings.Fields(lp.ImportPath)[0], "_test") {
			hasTestVariant[lp.ForTest] = true
		}
	}
	var roots []*listPkg
	for _, lp := range order {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if strings.HasSuffix(lp.ImportPath, ".test") {
			continue // synthesized test main
		}
		if includeTests && lp.ForTest == "" && hasTestVariant[lp.ImportPath] {
			continue // superseded by its test variant
		}
		roots = append(roots, lp)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range roots {
		pkg, err := typecheck(fset, lp, byPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses lp's sources and type-checks them against export data
// for all imports.
func typecheck(fset *token.FileSet, lp *listPkg, byPath map[string]*listPkg) (*Package, error) {
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: cgo packages are not supported by kdlint", lp.ImportPath)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}

	// Resolve imports through compiler export data. The importer is
	// per-package because ImportMap is: inside a test variant, an import of
	// the package under test must resolve to the variant's own export data,
	// not the plain package's.
	lookup := func(path string) (io.ReadCloser, error) {
		dep, ok := byPath[path]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(dep.Export)
	}
	imp := &mappedImporter{
		base: importer.ForCompiler(fset, "gc", lookup),
		imap: lp.ImportMap,
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		// Sizes must match the gc toolchain: the repo pins node layout with
		// unsafe.Sizeof in constant expressions, which the checker must
		// evaluate exactly as the compiler would.
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	// Type-check under the plain import path (bracket suffixes are a go
	// tool naming convention, not part of the language's package path).
	tpath := strings.Fields(lp.ImportPath)[0]
	tpkg, err := conf.Check(tpath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: type checking: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:    lp.ImportPath,
		Name:    lp.Name,
		Dir:     lp.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		ForTest: lp.ForTest,
	}, nil
}

// mappedImporter resolves source-level import paths through a package's
// ImportMap (vendor and test-variant remapping) before loading export data,
// and short-circuits "unsafe", which has no export data.
type mappedImporter struct {
	base types.Importer
	imap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if actual, ok := m.imap[path]; ok {
		path = actual
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.base.Import(path)
}
